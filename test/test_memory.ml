(* Memory-behaviour integration tests (paper §4.3 / §6.3): planning reduces
   allocations without changing results, storages/arenas behave, kills and
   pooling work, footprint accounting is consistent. *)

open Nimble_tensor
open Nimble_ir
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp
module Profiler = Nimble_vm.Profiler
module Pool = Nimble_device.Pool
module Storage = Nimble_vm.Storage

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4)
let rng = Rng.create ~seed:41

(* a static elementwise chain with several intermediates *)
let chain_module () =
  let x = Expr.fresh_var ~ty:(Ty.tensor_of_shape [| 16; 16 |]) "x" in
  let body =
    Expr.op_call "softmax"
      [
        Expr.op_call "softmax"
          [ Expr.op_call "softmax" [ Expr.op_call "softmax" [ Expr.Var x ] ] ];
      ]
  in
  Irmod.of_main (Expr.fn_def [ x ] body)

let options ~plan = { Nimble.default_options with Nimble.memory_plan = plan }

let alloc_count ~plan ~pooling m input =
  let exe = Nimble.compile ~options:(options ~plan) m in
  let vm = Interp.create ~pooling exe in
  ignore (Interp.run_tensors vm [ input ]);
  Profiler.reset (Interp.profiler vm);
  let out = Interp.run_tensors vm [ input ] in
  (out, Pool.total_allocs (Interp.profiler vm).Profiler.pool)

let test_planning_reduces_allocations () =
  let input = Tensor.randn rng [| 16; 16 |] in
  let out_off, n_off = alloc_count ~plan:false ~pooling:false (chain_module ()) input in
  let out_on, n_on = alloc_count ~plan:true ~pooling:true (chain_module ()) input in
  Alcotest.check tensor_eq "results agree" out_off out_on;
  Alcotest.(check bool) (Fmt.str "fewer allocs (%d -> %d)" n_off n_on) true (n_on < n_off)

let test_planning_preserves_dynamic_results () =
  (* dynamic shapes exercise the planner's mixed static/dynamic path *)
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 8 ]) "x" in
  let w = Tensor.randn rng [| 8; 8 |] in
  let body =
    Expr.op_call "softmax"
      [ Expr.op_call "dense" [ Expr.op_call "relu" [ Expr.Var x ]; Expr.Const w ] ]
  in
  let m () = Irmod.of_main (Expr.fn_def [ x ] body) in
  let input = Tensor.randn rng [| 5; 8 |] in
  let out_off, _ = alloc_count ~plan:false ~pooling:false (m ()) input in
  let out_on, _ = alloc_count ~plan:true ~pooling:true (m ()) input in
  Alcotest.check tensor_eq "dynamic results agree" out_off out_on

let test_arena_suballoc_reuse () =
  let s = Storage.create ~device:Nimble_device.Device.cpu ~bytes:1024 ~is_arena:true in
  let a = Storage.alloc_tensor s ~offset:0 ~shape:[| 4 |] ~dtype:Dtype.F32 in
  let b = Storage.alloc_tensor s ~offset:0 ~shape:[| 4 |] ~dtype:Dtype.F32 in
  let c = Storage.alloc_tensor s ~offset:64 ~shape:[| 4 |] ~dtype:Dtype.F32 in
  Alcotest.(check bool) "same slot shared" true (a == b);
  Alcotest.(check bool) "different offset distinct" true (not (a == c));
  let d = Storage.alloc_tensor s ~offset:0 ~shape:[| 2; 2 |] ~dtype:Dtype.F32 in
  Alcotest.(check bool) "different shape distinct" true (not (a == d))

let test_pooling_across_invocations () =
  (* with pooling, repeated inference reuses the same storage instances *)
  let m = chain_module () in
  let exe = Nimble.compile ~options:(options ~plan:true) m in
  let vm = Interp.create ~pooling:true exe in
  let input = Tensor.randn rng [| 16; 16 |] in
  let o1 = Interp.run_tensors vm [ input ] in
  let o2 = Interp.run_tensors vm [ input ] in
  Alcotest.check tensor_eq "idempotent" o1 o2;
  (* distinct inputs still give distinct (correct) answers through the
     reused buffers *)
  let input2 = Tensor.randn rng [| 16; 16 |] in
  let o3 = Interp.run_tensors vm [ input2 ] in
  Alcotest.(check bool) "no stale data" true (not (Tensor.approx_equal o1 o3))

let test_pooling_off_allocates_fresh () =
  let m = chain_module () in
  let exe = Nimble.compile ~options:(options ~plan:true) m in
  let vm = Interp.create ~pooling:false exe in
  let input = Tensor.randn rng [| 16; 16 |] in
  ignore (Interp.run_tensors vm [ input ]);
  let p = Interp.profiler vm in
  let before = Pool.total_allocs p.Profiler.pool in
  ignore (Interp.run_tensors vm [ input ]);
  Alcotest.(check bool) "fresh allocations each run" true
    (Pool.total_allocs p.Profiler.pool > before)

let test_kills_emitted_and_executed () =
  (* kills target dynamically-allocated tensors (static ones are coalesced
     into the arena), so use a dynamic-shape module. With symbolic planning
     these bindable sites are folded into the arena plan instead (no kill
     needed — the arena is rebound per request), so pin the legacy path off
     and check both behaviours. *)
  let mk () =
    let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 8 ]) "x" in
    let body =
      Expr.op_call "softmax"
        [ Expr.op_call "dense" [ Expr.op_call "relu" [ Expr.Var x ]; Expr.Const (Tensor.randn rng [| 8; 8 |]) ] ]
    in
    Irmod.of_main (Expr.fn_def [ x ] body)
  in
  let legacy = { (options ~plan:true) with Nimble.symbolic_plan = false } in
  let m', report = Nimble.optimize ~options:legacy (mk ()) in
  ignore m';
  Alcotest.(check bool) "kills inserted" true (report.Nimble.kills_inserted > 0);
  let _, sym_report = Nimble.optimize ~options:(options ~plan:true) (mk ()) in
  Alcotest.(check int) "symbolic planning supersedes kills" 0
    sym_report.Nimble.kills_inserted

let test_footprint_accounting_consistent () =
  let _, report = Nimble.compile_with_report ~options:(options ~plan:true) (chain_module ()) in
  Alcotest.(check bool) "arena fits in sum" true
    (report.Nimble.arena_bytes <= report.Nimble.unplanned_bytes);
  Alcotest.(check bool) "arena positive" true (report.Nimble.arena_bytes > 0);
  Alcotest.(check int) "one arena" 1 report.Nimble.storages_after_planning

let test_vision_models_plan_cleanly () =
  (* every vision model compiles with planning and runs correctly with the
     arena + pooling *)
  List.iter
    (fun (name, build) ->
      let exe = Nimble.compile ~options:(options ~plan:true) (build ()) in
      let vm = Interp.create ~pooling:true exe in
      let input = Nimble_models.Vision.random_input () in
      let o1 = Interp.run_tensors vm [ input ] in
      let o2 = Interp.run_tensors vm [ input ] in
      Alcotest.check tensor_eq (name ^ " stable across runs") o1 o2)
    Nimble_models.Vision.all

let test_lstm_recursion_safe_with_pooling () =
  (* recursive frames must not share arenas: results stay exact *)
  let w = Nimble_models.Lstm.init_weights Nimble_models.Lstm.small_config in
  let exe = Nimble.compile (Nimble_models.Lstm.ir_module w) in
  let vm = Interp.create ~pooling:true exe in
  let elem_ty = Ty.tensor [ Dim.static 1; Dim.Any ] in
  let adt = Adt.tensor_list ~elem_ty in
  let nil = Adt.ctor_exn adt "Nil" and cons = Adt.ctor_exn adt "Cons" in
  let input xs =
    List.fold_right
      (fun x acc ->
        Nimble_vm.Obj.Adt { tag = cons.Adt.tag; fields = [| Nimble_vm.Obj.tensor x; acc |] })
      xs
      (Nimble_vm.Obj.Adt { tag = nil.Adt.tag; fields = [||] })
  in
  List.iter
    (fun len ->
      let xs = Nimble_models.Lstm.random_sequence w.Nimble_models.Lstm.config ~len in
      let out = Nimble_vm.Obj.to_tensor (Interp.invoke vm [ input xs ]) in
      Alcotest.check tensor_eq
        (Fmt.str "len %d" len)
        (Nimble_models.Lstm.reference w xs)
        out)
    [ 4; 9; 4 ]

let () =
  Alcotest.run "memory"
    [
      ( "planning",
        [
          Alcotest.test_case "reduces allocations" `Quick test_planning_reduces_allocations;
          Alcotest.test_case "dynamic results preserved" `Quick
            test_planning_preserves_dynamic_results;
          Alcotest.test_case "kills emitted" `Quick test_kills_emitted_and_executed;
          Alcotest.test_case "footprint accounting" `Quick test_footprint_accounting_consistent;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "arena suballoc reuse" `Quick test_arena_suballoc_reuse;
          Alcotest.test_case "pooling across invocations" `Quick test_pooling_across_invocations;
          Alcotest.test_case "pooling off" `Quick test_pooling_off_allocates_fresh;
          Alcotest.test_case "vision models" `Slow test_vision_models_plan_cleanly;
          Alcotest.test_case "recursion safe" `Quick test_lstm_recursion_safe_with_pooling;
        ] );
    ]
