(* Determinism tests for the domain pool: every parallelized kernel must
   be bitwise-identical to its 1-domain (fully sequential) run, because
   static chunking assigns each output element to exactly one worker and
   never changes per-element accumulation order. Sizes are deliberately
   odd/prime and straddle the grain gates (n < grain, n = grain + 1). *)

open Nimble_tensor
module Parallel = Nimble_parallel.Parallel

let tensor_bitwise = Alcotest.testable Tensor.pp Tensor.equal
let rng = Rng.create ~seed:7

(* Run [f] at width 1, then at each multi-domain width, and demand exact
   equality. Resets the pool width afterwards so suites stay independent. *)
let check_widths name f =
  Parallel.set_num_domains 1;
  let reference = f () in
  List.iter
    (fun w ->
      Parallel.set_num_domains w;
      Alcotest.check tensor_bitwise
        (Printf.sprintf "%s @ %d domains" name w)
        reference (f ()))
    [ 2; 3; 4 ];
  Parallel.set_num_domains 1

(* ------------------------------ dense ------------------------------ *)

let test_dense_prime () =
  (* n*k > min_work => grain 1 => every row is its own chunk candidate *)
  let a = Tensor.randn rng [| 7; 257 |] and w = Tensor.randn rng [| 131; 257 |] in
  check_widths "dense 7x257x131" (fun () -> Ops_matmul.dense a w)

let test_dense_below_grain () =
  (* tiny: the grain gate must keep this sequential at any width *)
  let a = Tensor.randn rng [| 3; 5 |] and w = Tensor.randn rng [| 4; 5 |] in
  check_widths "dense 3x5x4" (fun () -> Ops_matmul.dense a w)

let test_matmul_transpose_path () =
  let a = Tensor.randn rng [| 33; 65 |] and b = Tensor.randn rng [| 65; 37 |] in
  check_widths "matmul 33x65x37" (fun () -> Ops_matmul.matmul a b)

let test_batch_matmul () =
  let a = Tensor.randn rng [| 5; 11; 67 |] and b = Tensor.randn rng [| 5; 67; 13 |] in
  check_widths "batch_matmul 5x11x67x13" (fun () -> Ops_matmul.batch_matmul a b)

let test_dense_bias () =
  let a = Tensor.randn rng [| 9; 129 |]
  and w = Tensor.randn rng [| 141; 129 |]
  and b = Tensor.randn rng [| 141 |] in
  check_widths "dense_bias 9x129x141" (fun () -> Ops_matmul.dense_bias a w b)

(* --------------------------- elementwise --------------------------- *)

(* elem grain is Parallel.default_min_work: straddle it exactly *)
let n_at_grain = Parallel.default_min_work
let n_over_grain = Parallel.default_min_work + 1

let test_elem_binop () =
  List.iter
    (fun n ->
      let a = Tensor.randn rng [| n |] and b = Tensor.randn rng [| n |] in
      check_widths (Printf.sprintf "add %d" n) (fun () -> Ops_elem.add a b))
    [ 17; n_at_grain; n_over_grain; 40_013 ]

let test_elem_unop () =
  List.iter
    (fun n ->
      let a = Tensor.randn rng [| n |] in
      check_widths (Printf.sprintf "relu %d" n) (fun () -> Ops_elem.relu a))
    [ n_over_grain; 32_771 ]

(* ---------------------------- reductions ---------------------------- *)

let test_reduce_sum_axis () =
  let a = Tensor.randn rng [| 53; 1021 |] in
  check_widths "sum axis=1 53x1021" (fun () -> Ops_reduce.sum ~axis:1 a);
  check_widths "sum axis=0 53x1021" (fun () -> Ops_reduce.sum ~axis:0 a)

let test_reduce_max_inner () =
  let a = Tensor.randn rng [| 31; 67; 19 |] in
  check_widths "max axis=1 31x67x19" (fun () -> Ops_reduce.max ~axis:1 a)

(* ------------------------------- nn -------------------------------- *)

let test_softmax () =
  let a = Tensor.randn rng [| 61; 1021 |] in
  check_widths "softmax 61x1021" (fun () -> Ops_nn.softmax a)

let test_layer_norm () =
  let a = Tensor.randn rng [| 47; 769 |] in
  let gamma = Tensor.randn rng [| 769 |] and beta = Tensor.randn rng [| 769 |] in
  check_widths "layer_norm 47x769" (fun () -> Ops_nn.layer_norm a ~gamma ~beta)

(* ------------------------- pool machinery --------------------------- *)

let test_parallel_for_coverage () =
  (* every index written exactly once, including at awkward grains *)
  List.iter
    (fun (n, grain) ->
      Parallel.set_num_domains 4;
      let hits = Array.make n 0 in
      Parallel.parallel_for ~grain n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Parallel.set_num_domains 1;
      Array.iteri
        (fun i c ->
          if c <> 1 then Alcotest.failf "n=%d grain=%d: index %d hit %d times" n grain i c)
        hits)
    [ (1, 1); (7, 3); (97, 10); (100, 1); (16_385, 4096) ]

let test_counters () =
  Parallel.set_num_domains 4;
  Parallel.reset_counters ();
  let before = Parallel.snapshot () in
  Parallel.parallel_for ~grain:1 64 (fun _ _ -> ());
  Parallel.run_sequential 8 (fun _ _ -> ());
  let d = Parallel.diff ~before ~after:(Parallel.snapshot ()) in
  Parallel.set_num_domains 1;
  Alcotest.(check int) "par_runs" 1 d.Parallel.sn_par_runs;
  Alcotest.(check int) "seq_runs" 1 d.Parallel.sn_seq_runs;
  Alcotest.(check bool) "chunks >= 2" true (d.Parallel.sn_chunks >= 2)

let test_exception_propagates () =
  Parallel.set_num_domains 4;
  let raised =
    try
      Parallel.parallel_for ~grain:1 32 (fun lo _ ->
          if lo >= 8 then failwith "chunk boom");
      false
    with Failure "chunk boom" -> true
  in
  Parallel.set_num_domains 1;
  Alcotest.(check bool) "exception re-raised" true raised;
  (* the pool must still be usable after a failed job *)
  Parallel.set_num_domains 4;
  let total = ref 0 in
  Parallel.parallel_for ~grain:1 16 (fun lo hi -> ignore (lo, hi));
  Parallel.run_sequential 4 (fun lo hi -> total := !total + hi - lo);
  Parallel.set_num_domains 1;
  Alcotest.(check int) "pool alive after failure" 4 !total

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "dense prime" `Quick test_dense_prime;
          Alcotest.test_case "dense below grain" `Quick test_dense_below_grain;
          Alcotest.test_case "matmul transpose path" `Quick test_matmul_transpose_path;
          Alcotest.test_case "batch_matmul" `Quick test_batch_matmul;
          Alcotest.test_case "dense_bias" `Quick test_dense_bias;
          Alcotest.test_case "elementwise binop" `Quick test_elem_binop;
          Alcotest.test_case "elementwise unop" `Quick test_elem_unop;
          Alcotest.test_case "reduce sum axis" `Quick test_reduce_sum_axis;
          Alcotest.test_case "reduce max inner axis" `Quick test_reduce_max_inner;
          Alcotest.test_case "softmax" `Quick test_softmax;
          Alcotest.test_case "layer_norm" `Quick test_layer_norm;
        ] );
      ( "pool",
        [
          Alcotest.test_case "coverage" `Quick test_parallel_for_coverage;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
        ] );
    ]
