(* Fleet-tier chaos suite: breaker state machine under seeded faults,
   SLO admission shedding and its stats split, weighted-fair worker
   shares, snapshot round trips (executable bytes, tunes, arena hints),
   and the headline robustness story — a killed shard warm-restarts from
   the on-disk snapshot by relinking only (no recompile) and keeps
   serving bitwise-identical answers. All fault specs carry fixed seeds;
   breaker transitions are wall-clock-free, so every sequence here
   replays exactly at any NIMBLE_NUM_DOMAINS width. *)

open Nimble_tensor
open Nimble_ir
open Nimble_serve
module Fault = Nimble_fault.Fault
module Interp = Nimble_vm.Interp
module Obj = Nimble_vm.Obj
module Serialize = Nimble_vm.Serialize

let tensor_bitwise = Alcotest.testable Tensor.pp Tensor.equal

let pp_error ppf = function
  | Engine.Rejected -> Fmt.string ppf "rejected"
  | Engine.Timed_out -> Fmt.string ppf "timed_out"
  | Engine.Shed -> Fmt.string ppf "shed"
  | Engine.Tripped -> Fmt.string ppf "tripped"
  | Engine.Failed f -> Interp.pp_failure ppf f
let rng = Rng.create ~seed:97

(* the smallest dense|>relu model with a dynamic leading dimension *)
let feature_dim = 6
let out_dim = 4

let make_module w () =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static feature_dim ]) "x" in
  let body = Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  Irmod.of_main (Expr.fn_def [ x ] body)

let w_a = Tensor.randn rng [| out_dim; feature_dim |]
let w_b = Tensor.randn rng [| out_dim; feature_dim |]

let specs () : Fleet.spec list =
  [
    { Fleet.name = "a"; build = make_module w_a; weight = 3 };
    { Fleet.name = "b"; build = make_module w_b; weight = 1 };
  ]

let fleet_config ~total_workers =
  {
    Fleet.total_workers;
    engine =
      {
        Engine.default_config with
        Engine.workers = 1;
        queue_capacity = 16;
        max_batch = 4;
        max_wait_us = 200.0;
      };
    admission = Some Admission.default_config;
    breaker = Some Breaker.default_config;
  }

let input rows = Obj.tensor (Tensor.randn (Rng.create ~seed:(100 + rows)) [| rows; feature_dim |])

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "nimble_test_fleet_%d_%d" (Unix.getpid ()) !n)
    in
    dir

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

(* resolve a model's snapshot file through the manifest (files live in
   per-generation subdirectories) *)
let manifest_file dir name =
  let manifest =
    let ic = open_in_bin (Filename.concat dir "MANIFEST.json") in
    Fun.protect ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
    |> Nimble_vm.Json.of_string
  in
  let models =
    Nimble_vm.Json.to_list_exn (Nimble_vm.Json.member_exn "models" manifest)
  in
  let m =
    List.find
      (fun m ->
        Nimble_vm.Json.to_string_exn (Nimble_vm.Json.member_exn "name" m) = name)
      models
  in
  Filename.concat dir
    (Nimble_vm.Json.to_string_exn (Nimble_vm.Json.member_exn "file" m))

(* ----------------------------- breaker ------------------------------ *)

let check_state msg expected b =
  Alcotest.(check string) msg (Breaker.state_name expected)
    (Breaker.state_name (Breaker.state b))

(* the full Closed -> Open -> HalfOpen -> Closed cycle, then a failed
   probe re-opening: every transition is a pure function of call order *)
let test_breaker_transitions () =
  let config =
    { Breaker.window = 4; failure_threshold = 0.5; cooldown = 2; probes = 2 }
  in
  let b = Breaker.create ~config () in
  check_state "starts closed" Breaker.Closed b;
  (* fill the window at exactly the threshold: 2 failures / 4 *)
  List.iter
    (fun ok ->
      Alcotest.(check bool) "closed admits" true (Breaker.admit b = Breaker.Allow);
      Breaker.record b ~ok)
    [ true; true; false; false ];
  check_state "trips at threshold" Breaker.Open b;
  (* cooldown: exactly [cooldown] admissions bounce off *)
  Alcotest.(check bool) "open sheds" true (Breaker.admit b = Breaker.Shed);
  Alcotest.(check bool) "open sheds again" true (Breaker.admit b = Breaker.Shed);
  (* cooldown spent: a bounded probe trickle, then over-budget shed *)
  Alcotest.(check bool) "first probe" true (Breaker.admit b = Breaker.Probe);
  check_state "half-open while probing" Breaker.Half_open b;
  Alcotest.(check bool) "second probe" true (Breaker.admit b = Breaker.Probe);
  Alcotest.(check bool) "over probe budget sheds" true (Breaker.admit b = Breaker.Shed);
  Breaker.record ~probe:true b ~ok:true;
  check_state "one success is not enough" Breaker.Half_open b;
  Breaker.record ~probe:true b ~ok:true;
  check_state "all probes succeeded -> closed" Breaker.Closed b;
  let c = Breaker.counters b in
  Alcotest.(check int) "one trip" 1 c.Breaker.c_trips;
  Alcotest.(check int) "three shed" 3 c.Breaker.c_shed;
  Alcotest.(check int) "no reopens" 0 c.Breaker.c_reopens;
  Alcotest.(check int) "one close" 1 c.Breaker.c_closes;
  (* trip again, then fail the probe: immediate re-open *)
  List.iter
    (fun ok ->
      ignore (Breaker.admit b);
      Breaker.record b ~ok)
    [ false; false; false; false ];
  check_state "re-trips" Breaker.Open b;
  ignore (Breaker.admit b);
  ignore (Breaker.admit b);
  Alcotest.(check bool) "probe after cooldown" true (Breaker.admit b = Breaker.Probe);
  Breaker.record ~probe:true b ~ok:false;
  check_state "failed probe re-opens" Breaker.Open b;
  let c = Breaker.counters b in
  Alcotest.(check int) "reopen counted as trip too" 3 c.Breaker.c_trips;
  Alcotest.(check int) "one reopen" 1 c.Breaker.c_reopens

(* an injected breaker_probe fault refuses the trial dispatch itself:
   the lane re-opens without the caller ever reaching the engine *)
let test_breaker_probe_fault () =
  let config =
    { Breaker.window = 2; failure_threshold = 1.0; cooldown = 1; probes = 1 }
  in
  let b = Breaker.create ~config () in
  List.iter
    (fun () ->
      ignore (Breaker.admit b);
      Breaker.record b ~ok:false)
    [ (); () ];
  check_state "tripped" Breaker.Open b;
  Alcotest.(check bool) "cooldown shed" true (Breaker.admit b = Breaker.Shed);
  Fun.protect ~finally:Fault.disable (fun () ->
      Fault.configure "seed=3;breaker_probe=1.0:persistent";
      Alcotest.(check bool) "faulted probe surfaces as shed" true
        (Breaker.admit b = Breaker.Shed));
  check_state "faulted probe re-opened" Breaker.Open b;
  let c = Breaker.counters b in
  Alcotest.(check int) "reopen recorded" 1 c.Breaker.c_reopens;
  (* fault cleared: the same lane recovers through a clean probe *)
  Alcotest.(check bool) "re-armed cooldown sheds" true (Breaker.admit b = Breaker.Shed);
  Alcotest.(check bool) "clean probe allowed" true (Breaker.admit b = Breaker.Probe);
  Breaker.record ~probe:true b ~ok:true;
  check_state "recovers" Breaker.Closed b

(* ------------------------- weighted shares -------------------------- *)

let test_weighted_shares () =
  let fleet = Fleet.create ~config:(fleet_config ~total_workers:4) (specs ()) in
  Fun.protect ~finally:(fun () -> Fleet.shutdown fleet) (fun () ->
      Alcotest.(check (list string)) "models in order" [ "a"; "b" ] (Fleet.models fleet);
      Alcotest.(check (pair int int)) "3:1 split of 4" (3, 3) (Fleet.share fleet ~model:"a");
      Alcotest.(check (pair int int)) "minority share" (1, 1) (Fleet.share fleet ~model:"b");
      (* both models actually serve, proportions notwithstanding, and
         answers stay bitwise-equal to a sequential reference *)
      List.iter
        (fun (model, w) ->
          let x = input 5 in
          match Fleet.run fleet ~model ~shape:[| 5 |] x with
          | Ok (Obj.Tensor served) ->
              let vm =
                Interp.create
                  (Cache.load (Fleet.cache fleet) ~name:model ~build:(make_module w))
              in
              (match Interp.invoke vm [ x ] with
              | Obj.Tensor reference ->
                  Alcotest.check tensor_bitwise
                    (Fmt.str "%s bitwise vs sequential" model)
                    reference.Obj.data served.Obj.data
              | o -> Alcotest.failf "%s reference returned %a" model Obj.pp o)
          | Ok o -> Alcotest.failf "%s served %a" model Obj.pp o
          | Error e -> Alcotest.failf "%s failed: %a" model pp_error e)
        [ ("a", w_a); ("b", w_b) ]);
  (* a worker budget smaller than the model count still gives everyone
     at least one worker *)
  let fleet = Fleet.create ~config:(fleet_config ~total_workers:2) (specs ()) in
  Fun.protect ~finally:(fun () -> Fleet.shutdown fleet) (fun () ->
      let _, wa = Fleet.share fleet ~model:"a" in
      let _, wb = Fleet.share fleet ~model:"b" in
      Alcotest.(check int) "budget respected" 2 (wa + wb);
      Alcotest.(check bool) "everyone serves" true (wa >= 1 && wb >= 1))

(* --------------------------- admission ------------------------------ *)

(* an impossible deadline is shed at the door once the EWMA has any
   observation, and the refusal lands in the s_shed_admission stat (not
   rejected, not timed out) *)
let test_admission_shed_accounting () =
  let fleet = Fleet.create ~config:(fleet_config ~total_workers:2) (specs ()) in
  Fun.protect ~finally:(fun () -> Fleet.shutdown fleet) (fun () ->
      for _ = 1 to 8 do
        match Fleet.run fleet ~model:"a" ~shape:[| 5 |] (input 5) with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "warmup failed: %a" pp_error e
      done;
      (match Fleet.run fleet ~timeout_us:0.01 ~model:"a" ~shape:[| 5 |] (input 5) with
      | Error Engine.Shed -> ()
      | Ok _ -> Alcotest.fail "impossible deadline was admitted"
      | Error e -> Alcotest.failf "expected Shed, got %a" pp_error e);
      let stats = List.assoc "a" (Fleet.model_stats fleet) in
      Alcotest.(check bool) "counted as admission shed" true
        (stats.Stats.s_shed_admission >= 1);
      Alcotest.(check int) "not a queue rejection" 0 stats.Stats.s_rejected;
      Alcotest.(check int) "not an error" 0 stats.Stats.s_errors)

(* ------------------------ snapshot round trip ----------------------- *)

let test_snapshot_roundtrip () =
  let dir = fresh_dir () in
  let fleet = Fleet.create ~config:(fleet_config ~total_workers:2) (specs ()) in
  Fun.protect
    ~finally:(fun () ->
      Fleet.shutdown fleet;
      rm_rf dir)
    (fun () ->
      (* serve each model once so arena hints have an observed bucket *)
      let before =
        List.map
          (fun model ->
            match Fleet.run fleet ~model ~shape:[| 5 |] (input 5) with
            | Ok (Obj.Tensor t) -> (model, t.Obj.data)
            | _ -> Alcotest.failf "%s did not serve" model)
          [ "a"; "b" ]
      in
      Alcotest.(check int) "both models checkpointed" 2 (Fleet.snapshot fleet ~dir);
      let misses = Cache.misses (Fleet.cache fleet) in
      let restored = Fleet.warm_restart fleet ~dir ~model:"a" in
      (* relink-only: the restore must not recompile anything *)
      Alcotest.(check int) "no recompile on restore" misses
        (Cache.misses (Fleet.cache fleet));
      (* the snapshot's executable bytes round-trip bitwise: re-serializing
         the restored exe reproduces the on-disk artifact exactly
         (bytecode, tune table and all) *)
      let ic = open_in_bin (manifest_file dir "a") in
      let on_disk =
        Fun.protect ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check int) "manifest byte count" (String.length on_disk)
        restored.Cache.r_bytes;
      Alcotest.(check bool) "exe bytes round-trip bitwise" true
        (String.equal on_disk (Serialize.to_bytes restored.Cache.r_exe));
      (* arena hints survived the trip and are plausible bucket dims *)
      Alcotest.(check bool) "arena hints restored" true
        (List.length restored.Cache.r_arena_hints >= 1);
      List.iter
        (fun dims ->
          Alcotest.(check bool) "hint has dims" true (Array.length dims >= 1))
        restored.Cache.r_arena_hints;
      (* and the restarted pool still answers bitwise-identically *)
      List.iter
        (fun (model, reference) ->
          match Fleet.run fleet ~model ~shape:[| 5 |] (input 5) with
          | Ok (Obj.Tensor t) ->
              Alcotest.check tensor_bitwise
                (Fmt.str "%s bitwise across restart" model)
                reference t.Obj.data
          | _ -> Alcotest.failf "%s did not serve after restart" model)
        before)

(* ----------------------- snapshot generations ----------------------- *)

(* repeated snapshots rotate: each lands in a fresh gen-N subdirectory,
   the manifest always points at the newest, and only the last two
   generations survive garbage collection *)
let test_snapshot_rotation () =
  let dir = fresh_dir () in
  let fleet = Fleet.create ~config:(fleet_config ~total_workers:2) (specs ()) in
  Fun.protect
    ~finally:(fun () ->
      Fleet.shutdown fleet;
      rm_rf dir)
    (fun () ->
      let reference =
        match Fleet.run fleet ~model:"a" ~shape:[| 4 |] (input 4) with
        | Ok (Obj.Tensor t) -> t.Obj.data
        | _ -> Alcotest.fail "model a did not serve"
      in
      ignore (Fleet.snapshot fleet ~dir);
      Alcotest.(check (list int)) "first snapshot is gen-1" [ 1 ]
        (Cache.generations ~dir);
      ignore (Fleet.snapshot fleet ~dir);
      ignore (Fleet.snapshot fleet ~dir);
      Alcotest.(check (list int)) "only the newest two survive GC" [ 2; 3 ]
        (List.sort compare (Cache.generations ~dir));
      Alcotest.(check bool) "manifest points into gen-3" true
        (String.length (manifest_file dir "a") > 0
        && Filename.basename (Filename.dirname (manifest_file dir "a")) = "gen-3");
      (* keep=1 drops the rollback generation too *)
      ignore (Fleet.snapshot ~keep:1 fleet ~dir);
      Alcotest.(check (list int)) "keep=1 retains only gen-4" [ 4 ]
        (Cache.generations ~dir);
      (* and the rotated snapshot still restores and serves bitwise *)
      let restored = Fleet.warm_restart fleet ~dir ~model:"a" in
      Alcotest.(check string) "right model restored" "a" restored.Cache.r_name;
      match Fleet.run fleet ~model:"a" ~shape:[| 4 |] (input 4) with
      | Ok (Obj.Tensor t) ->
          Alcotest.check tensor_bitwise "bitwise across rotated restart"
            reference t.Obj.data
      | Ok o -> Alcotest.failf "served %a" Obj.pp o
      | Error e -> Alcotest.failf "restarted pool failed: %a" pp_error e)

(* --------------------------- chaos restart -------------------------- *)

(* the headline: kill a model's shard pool outright, then warm-restart
   it from the snapshot; serving resumes with bitwise-equal outputs and
   transient snapshot_io faults during the restore are retried *)
let test_chaos_warm_restart () =
  let dir = fresh_dir () in
  let fleet = Fleet.create ~config:(fleet_config ~total_workers:2) (specs ()) in
  Fun.protect
    ~finally:(fun () ->
      Fleet.shutdown fleet;
      rm_rf dir)
    (fun () ->
      let reference =
        match Fleet.run fleet ~model:"a" ~shape:[| 3 |] (input 3) with
        | Ok (Obj.Tensor t) -> t.Obj.data
        | _ -> Alcotest.fail "did not serve before the kill"
      in
      ignore (Fleet.snapshot fleet ~dir);
      (* simulate the shard crash: its engine is gone *)
      Engine.shutdown (Fleet.engine fleet ~model:"a");
      let restored =
        Fun.protect ~finally:Fault.disable (fun () ->
            Fault.configure "seed=7;snapshot_io=0.3";
            Fleet.warm_restart fleet ~dir ~model:"a")
      in
      Alcotest.(check string) "right model restored" "a" restored.Cache.r_name;
      (match Fleet.run fleet ~model:"a" ~shape:[| 3 |] (input 3) with
      | Ok (Obj.Tensor t) ->
          Alcotest.check tensor_bitwise "bitwise across crash + restart"
            reference t.Obj.data
      | Ok o -> Alcotest.failf "served %a" Obj.pp o
      | Error e -> Alcotest.failf "restarted pool failed: %a" pp_error e);
      (* the other model never stopped serving *)
      match Fleet.run fleet ~model:"b" ~shape:[| 3 |] (input 3) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bystander model failed: %a" pp_error e)

(* ----------------------------- loadgen ------------------------------ *)

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

let test_loadgen_validation () =
  Alcotest.(check bool) "empty mix refused" true
    (raises_invalid (fun () -> Loadgen.validate_mix ~what:"mix" []));
  Alcotest.(check bool) "zero-sum mix refused" true
    (raises_invalid (fun () -> Loadgen.validate_mix ~what:"mix" [ 0.0; 0.0 ]));
  Alcotest.(check bool) "negative weight refused" true
    (raises_invalid (fun () -> Loadgen.validate_mix ~what:"mix" [ 1.0; -1.0 ]));
  Loadgen.validate_mix ~what:"mix" [ 2.0; 1.0 ];
  let fleet = Fleet.create ~config:(fleet_config ~total_workers:2) (specs ()) in
  Fun.protect ~finally:(fun () -> Fleet.shutdown fleet) (fun () ->
      let tenant model share =
        {
          Loadgen.tn_model = model;
          tn_share = share;
          tn_mix = [ ([| 5 |], 1.0) ];
          tn_timeout_us = None;
        }
      in
      let make_input ~model:_ ~shape = input shape.(0) in
      Alcotest.(check bool) "unknown tenant model refused" true
        (raises_invalid (fun () ->
             Loadgen.run_fleet fleet ~tenants:[ tenant "nope" 1.0 ] ~make_input));
      Alcotest.(check bool) "zero-share tenants refused" true
        (raises_invalid (fun () ->
             Loadgen.run_fleet fleet
               ~tenants:[ tenant "a" 0.0; tenant "b" 0.0 ]
               ~make_input));
      Alcotest.(check bool) "no tenants refused" true
        (raises_invalid (fun () -> Loadgen.run_fleet fleet ~tenants:[] ~make_input));
      (* a tiny valid run drains cleanly and tallies everything offered *)
      let config =
        {
          Loadgen.default_config with
          Loadgen.rate_rps = 400.0;
          duration_s = 0.1;
          clients = 2;
          seed = 42;
        }
      in
      let r =
        Loadgen.run_fleet ~config fleet
          ~tenants:[ tenant "a" 3.0; tenant "b" 1.0 ]
          ~make_input
      in
      Alcotest.(check bool) "offered some load" true (r.Loadgen.f_offered > 0);
      Alcotest.(check int) "every outcome accounted for" r.Loadgen.f_offered
        (r.Loadgen.f_ok + r.Loadgen.f_failed + r.Loadgen.f_timed_out
        + r.Loadgen.f_rejected + r.Loadgen.f_shed + r.Loadgen.f_tripped))

(* ------------------------- fleet breakers --------------------------- *)

(* a persistently failing lane trips its breaker through the fleet path:
   clients see Tripped (shed without burning a worker), the bystander
   model keeps serving, and counters expose the trip *)
let test_fleet_breaker_trips () =
  let fleet = Fleet.create ~config:(fleet_config ~total_workers:2) (specs ()) in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      Fleet.shutdown fleet)
    (fun () ->
      Fault.configure "seed=11;kernel_launch=1.0:persistent";
      let failed = ref 0 and tripped = ref 0 in
      for _ = 1 to 40 do
        match Fleet.run fleet ~model:"a" ~shape:[| 5 |] (input 5) with
        | Error (Engine.Failed _) -> incr failed
        | Error Engine.Tripped -> incr tripped
        | _ -> ()
      done;
      Alcotest.(check bool) "lane failed enough to trip" true (!failed >= 16);
      Alcotest.(check bool) "breaker shed the rest" true (!tripped >= 1);
      let c, lanes, open_lanes = Fleet.breaker_totals fleet ~model:"a" in
      Alcotest.(check bool) "trips counted" true (c.Breaker.c_trips >= 1);
      Alcotest.(check int) "one lane" 1 lanes;
      Alcotest.(check int) "lane is open" 1 open_lanes;
      Fault.disable ();
      (* the bystander model was never poisoned *)
      match Fleet.run fleet ~model:"b" ~shape:[| 5 |] (input 5) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "bystander failed: %a" pp_error e)

let () =
  Alcotest.run "fleet"
    [
      ( "breaker",
        [
          Alcotest.test_case "closed->open->halfopen->closed" `Quick
            test_breaker_transitions;
          Alcotest.test_case "breaker_probe fault re-opens" `Quick
            test_breaker_probe_fault;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "weighted worker shares" `Quick test_weighted_shares;
          Alcotest.test_case "admission shed accounting" `Quick
            test_admission_shed_accounting;
          Alcotest.test_case "breaker trips through fleet path" `Quick
            test_fleet_breaker_trips;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "round trip is bitwise" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "generations rotate, GC keeps two" `Quick
            test_snapshot_rotation;
          Alcotest.test_case "killed shard warm-restarts" `Quick
            test_chaos_warm_restart;
        ] );
      ("loadgen", [ Alcotest.test_case "mix validation + drain" `Quick test_loadgen_validation ]);
    ]
