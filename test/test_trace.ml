(* Observability tests: the JSON codec, the trace ring buffer, the Chrome
   export, the profiler/compile reports, and the invariant the CLI's
   --trace/--report pair relies on (kernel spans == kernel invocations). *)

open Nimble_models
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp
module Profiler = Nimble_vm.Profiler
module Trace = Nimble_vm.Trace
module Json = Nimble_vm.Json
module Obj = Nimble_vm.Obj
module Adt = Nimble_ir.Adt

(* ------------------------------ JSON ------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nline\twith \\ and \x07 control");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("big", Json.Float 1.23456789012345e+300);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
        ("o", Json.Obj [ ("nested", Json.List []) ]);
      ]
  in
  let compact = Json.of_string (Json.to_string doc) in
  Alcotest.(check bool) "compact roundtrip" true (compact = doc);
  let pretty = Json.of_string (Json.to_string_pretty doc) in
  Alcotest.(check bool) "pretty roundtrip" true (pretty = doc)

let test_json_parse () =
  (match Json.of_string {| {"a": [1, 2.5, "xAy", null, false]} |} with
  | Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float f; Json.String s; Json.Null; Json.Bool false ]) ]
    ->
      Alcotest.(check (float 1e-9)) "float" 2.5 f;
      Alcotest.(check string) "unicode escape" "xAy" s
  | _ -> Alcotest.fail "unexpected parse");
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted invalid JSON: %s" bad)
    [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

(* ------------------------------ ring ------------------------------ *)

let test_ring_wrap () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record tr ~name:(string_of_int i) ~cat:"t" ~ts_us:(float_of_int i)
      ~dur_us:0.0 []
  done;
  Alcotest.(check int) "total" 10 (Trace.total_recorded tr);
  Alcotest.(check int) "dropped" 6 (Trace.dropped tr);
  Alcotest.(check (list string)) "oldest first, newest retained"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.spans tr));
  Alcotest.(check int) "count_cat" 4 (Trace.count_cat tr "t");
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.total_recorded tr)

let test_export_schema () =
  let tr = Trace.create ~capacity:8 () in
  Trace.record tr ~name:"k" ~cat:Trace.cat_kernel ~ts_us:1.0 ~dur_us:2.0
    [ ("residue", Trace.Int 3); ("dispatch", Trace.Str "hit") ];
  let doc = Json.of_string (Json.to_string (Trace.to_json ~meta:[ ("model", "m") ] tr)) in
  Alcotest.(check (list string))
    "top-level keys"
    [ "displayTimeUnit"; "otherData"; "traceEvents" ]
    (Json.keys doc);
  let other = Json.member_exn "otherData" doc in
  Alcotest.(check string) "schema" "nimble-trace/v1"
    (Json.to_string_exn (Json.member_exn "schema" other));
  Alcotest.(check string) "meta merged" "m"
    (Json.to_string_exn (Json.member_exn "model" other));
  match Json.to_list_exn (Json.member_exn "traceEvents" doc) with
  | [ ev ] ->
      List.iter
        (fun k ->
          match Json.member k ev with
          | Some _ -> ()
          | None -> Alcotest.failf "event missing key %s" k)
        [ "name"; "cat"; "ph"; "pid"; "tid"; "ts"; "dur"; "args" ];
      Alcotest.(check string) "ph is complete-event" "X"
        (Json.to_string_exn (Json.member_exn "ph" ev));
      Alcotest.(check int) "arg survived" 3
        (Json.to_int_exn (Json.member_exn "residue" (Json.member_exn "args" ev)))
  | _ -> Alcotest.fail "expected exactly one trace event"

(* --------------------------- LSTM run --------------------------- *)

let lstm_input_obj xs =
  let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
  let adt = Adt.tensor_list ~elem_ty in
  let nil = Adt.ctor_exn adt "Nil" and cons = Adt.ctor_exn adt "Cons" in
  List.fold_right
    (fun x acc -> Obj.Adt { tag = cons.Adt.tag; fields = [| Obj.tensor x; acc |] })
    xs
    (Obj.Adt { tag = nil.Adt.tag; fields = [||] })

let traced_lstm_run ~seq =
  let w = Lstm.init_weights Lstm.small_config in
  let exe, creport = Nimble.compile_with_report (Lstm.ir_module w) in
  let vm = Nimble.vm exe in
  let tr = Trace.create () in
  Interp.set_trace vm (Some tr);
  let xs = Lstm.random_sequence w.Lstm.config ~len:seq in
  ignore (Interp.invoke vm [ lstm_input_obj xs ]);
  (vm, tr, creport)

let test_kernel_spans_match_profiler () =
  let vm, tr, _ = traced_lstm_run ~seq:9 in
  let prof = Interp.profiler vm in
  Alcotest.(check bool) "kernels ran" true (prof.Profiler.kernel_invocations > 0);
  Alcotest.(check int) "kernel spans == kernel invocations"
    prof.Profiler.kernel_invocations
    (Trace.count_cat tr Trace.cat_kernel);
  Alcotest.(check int) "one root invoke span" 1 (Trace.count_cat tr Trace.cat_invoke);
  Alcotest.(check int) "instr spans == instructions executed"
    (Profiler.total_instrs prof)
    (Trace.count_cat tr Trace.cat_instr)

let test_tracing_preserves_results () =
  let w = Lstm.init_weights Lstm.small_config in
  let exe = Nimble.compile (Lstm.ir_module w) in
  let vm = Nimble.vm exe in
  let xs = Lstm.random_sequence w.Lstm.config ~len:5 in
  let plain = Obj.to_tensor (Interp.invoke vm [ lstm_input_obj xs ]) in
  Interp.set_trace vm (Some (Trace.create ()));
  let traced = Obj.to_tensor (Interp.invoke vm [ lstm_input_obj xs ]) in
  Alcotest.(check bool) "same output with tracing on" true
    (Nimble_tensor.Tensor.approx_equal ~atol:0.0 ~rtol:0.0 plain traced)

(* ----------------------------- reports ----------------------------- *)

let test_profiler_report_json () =
  let vm, _, _ = traced_lstm_run ~seq:6 in
  let doc = Json.of_string (Json.to_string (Profiler.to_json (Interp.profiler vm))) in
  Alcotest.(check string) "schema" "nimble-profile/v1"
    (Json.to_string_exn (Json.member_exn "schema" doc));
  List.iter
    (fun k ->
      match Json.member k doc with
      | Some _ -> ()
      | None -> Alcotest.failf "profile report missing key %s" k)
    [
      "total_seconds"; "kernel_seconds"; "other_seconds"; "alloc_seconds";
      "kernel_invocations"; "shape_func_invocations"; "total_instructions";
      "pool_hits"; "instructions"; "kernels"; "devices"; "dispatch";
    ];
  let prof = Interp.profiler vm in
  Alcotest.(check int) "kernel_invocations serialized"
    prof.Profiler.kernel_invocations
    (Json.to_int_exn (Json.member_exn "kernel_invocations" doc))

let test_compile_report () =
  let _, _, (creport : Nimble.report) = traced_lstm_run ~seq:3 in
  Alcotest.(check bool) "pipeline has passes" true (List.length creport.Nimble.passes >= 10);
  List.iter
    (fun (p : Nimble.pass_stat) ->
      if p.Nimble.pass_name = "dce" then
        Alcotest.(check bool)
          (Fmt.str "dce shrinks or keeps IR (%d -> %d)" p.Nimble.nodes_before
             p.Nimble.nodes_after)
          true
          (p.Nimble.nodes_after <= p.Nimble.nodes_before);
      Alcotest.(check bool) "pass time is non-negative" true (p.Nimble.pass_seconds >= 0.0);
      Alcotest.(check bool) "IR sizes positive" true
        (p.Nimble.nodes_before > 0 && p.Nimble.nodes_after > 0))
    creport.Nimble.passes;
  let doc = Json.of_string (Json.to_string (Nimble.report_to_json creport)) in
  Alcotest.(check string) "schema" "nimble-compile/v1"
    (Json.to_string_exn (Json.member_exn "schema" doc));
  List.iter
    (fun k ->
      match Json.member k doc with
      | Some _ -> ()
      | None -> Alcotest.failf "compile report missing key %s" k)
    [
      "residual_checks"; "primitives"; "storages_before_planning";
      "storages_after_planning"; "arena_bytes"; "unplanned_bytes";
      "kills_inserted"; "device_copies"; "instructions"; "passes";
    ];
  Alcotest.(check int) "passes serialized"
    (List.length creport.Nimble.passes)
    (List.length (Json.to_list_exn (Json.member_exn "passes" doc)))

let test_trace_file_roundtrip () =
  let _, tr, _ = traced_lstm_run ~seq:4 in
  let path = Filename.temp_file "nimble_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save_file ~meta:[ ("model", "lstm") ] tr path;
      let ic = open_in_bin path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let doc = Json.of_string contents in
      let events = Json.to_list_exn (Json.member_exn "traceEvents" doc) in
      Alcotest.(check int) "all retained spans exported"
        (List.length (Trace.spans tr))
        (List.length events))

let () =
  Alcotest.run "trace"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser" `Quick test_json_parse;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wrap + drop" `Quick test_ring_wrap;
          Alcotest.test_case "chrome export schema" `Quick test_export_schema;
        ] );
      ( "vm",
        [
          Alcotest.test_case "kernel spans == profiler" `Quick
            test_kernel_spans_match_profiler;
          Alcotest.test_case "tracing preserves results" `Quick
            test_tracing_preserves_results;
          Alcotest.test_case "trace file roundtrip" `Quick test_trace_file_roundtrip;
        ] );
      ( "reports",
        [
          Alcotest.test_case "profiler json schema" `Quick test_profiler_report_json;
          Alcotest.test_case "compile report" `Quick test_compile_report;
        ] );
    ]
