(* Static-analysis tests: the opcode-exhaustiveness pin, the bytecode
   verifier (positive: every compiler-emitted executable is clean; negative:
   seeded mutations are rejected with located diagnostics), the IR-dialect
   lints on hand-built violating modules, and byte-flip/truncation fuzz over
   the serialized format (outcome is always clean / Format_error /
   Verify_error, never a crash). *)

open Nimble_tensor
open Nimble_ir
open Nimble_vm
module Nimble = Nimble_compiler.Nimble
module Diag = Nimble_analysis.Diag
module Verifier = Nimble_analysis.Verifier
module Lint = Nimble_analysis.Lint

(* ------------------------------------------------------------------ *)
(* Opcode-exhaustiveness pin                                           *)
(* ------------------------------------------------------------------ *)

type reg = int

(* This re-declaration is checked for equality against [Isa.t] by the
   compiler: adding, removing or changing a constructor of the VM ISA makes
   this file fail to build, forcing whoever extends the ISA to extend the
   verifier ([Verifier.handled_opcodes] below pins the count at runtime
   too). *)
type pin = Isa.t =
  | Move of { src : reg; dst : reg }
  | Ret of { result : reg }
  | Invoke of { func_index : int; args : reg array; dst : reg }
  | InvokeClosure of { closure : reg; args : reg array; dst : reg }
  | InvokePacked of {
      packed_index : int;
      args : reg array;
      outs : reg array;
      upper_bound : bool;
    }
  | AllocStorage of {
      size : reg;
      alignment : int;
      dtype : Dtype.t;
      device_id : int;
      arena : bool;
      dst : reg;
    }
  | AllocTensor of {
      storage : reg;
      offset : int;
      shape : int array;
      dtype : Dtype.t;
      dst : reg;
    }
  | AllocTensorReg of {
      storage : reg;
      offset : int;
      shape : reg;
      dtype : Dtype.t;
      plan : int;
      slot : int;
      dst : reg;
    }
  | AllocADT of { tag : int; fields : reg array; dst : reg }
  | AllocClosure of { func_index : int; captured : reg array; dst : reg }
  | GetField of { obj : reg; index : int; dst : reg }
  | GetTag of { obj : reg; dst : reg }
  | If of { test : reg; target : reg; true_offset : int; false_offset : int }
  | Goto of int
  | LoadConst of { index : int; dst : reg }
  | LoadConsti of { value : int64; dst : reg }
  | DeviceCopy of { src : reg; dst_device_id : int; dst : reg }
  | ShapeOf of { tensor : reg; dst : reg }
  | ReshapeTensor of { tensor : reg; shape : reg; dst : reg }
  | Fatal of string
  | BindArena of { plan_index : int; dst : reg }

let _pin_is_isa (i : pin) : Isa.t = i

let test_opcode_pin () =
  Alcotest.(check int)
    "verifier handles every opcode" Isa.num_opcodes Verifier.handled_opcodes

(* A hand-assembled two-function executable that uses all 21 instructions
   and satisfies every verifier rule. *)
let all_opcode_exe () =
  let helper =
    { Exe.name = "helper"; arity = 1; register_count = 1; code = [| Isa.Ret { result = 0 } |] }
  in
  let code =
    [|
      Isa.LoadConsti { value = 1L; dst = 1 };
      Isa.Move { src = 0; dst = 2 };
      Isa.LoadConst { index = 0; dst = 3 };
      Isa.AllocStorage
        { size = 3; alignment = 64; dtype = Dtype.F32; device_id = 0; arena = false; dst = 4 };
      Isa.AllocTensor { storage = 4; offset = 0; shape = [| 1 |]; dtype = Dtype.F32; dst = 5 };
      Isa.AllocTensorReg
        { storage = 4; offset = 0; shape = 3; dtype = Dtype.F32; plan = -1; slot = -1; dst = 6 };
      Isa.BindArena { plan_index = 0; dst = 16 };
      Isa.AllocTensorReg
        { storage = 16; offset = 0; shape = 3; dtype = Dtype.F32; plan = 0; slot = 0; dst = 17 };
      Isa.InvokePacked { packed_index = 0; args = [| 0 |]; outs = [| 5 |]; upper_bound = false };
      Isa.AllocADT { tag = 0; fields = [| 1; 2 |]; dst = 7 };
      Isa.GetTag { obj = 7; dst = 8 };
      Isa.GetField { obj = 7; index = 1; dst = 9 };
      Isa.AllocClosure { func_index = 0; captured = [||]; dst = 10 };
      Isa.InvokeClosure { closure = 10; args = [| 2 |]; dst = 11 };
      Isa.Invoke { func_index = 0; args = [| 2 |]; dst = 12 };
      Isa.DeviceCopy { src = 5; dst_device_id = 1; dst = 13 };
      Isa.ShapeOf { tensor = 5; dst = 14 };
      Isa.ReshapeTensor { tensor = 5; shape = 14; dst = 15 };
      Isa.If { test = 1; target = 1; true_offset = 1; false_offset = 2 };
      Isa.Goto 2;
      Isa.Fatal "dispatch failure";
      Isa.Ret { result = 12 };
    |]
  in
  let main = { Exe.name = "main"; arity = 1; register_count = 18; code } in
  let exe =
    Exe.create ~funcs:[| helper; main |]
      ~constants:[| Tensor.ones [| 1 |] |]
      ~packed_names:[| ("k", `Kernel) |]
  in
  let module Sx = Nimble_shape.Sym_expr in
  let size = Sx.mul (Sx.dim 0) (Sx.const 4) in
  Exe.set_plans exe
    [|
      {
        Exe.p_func = 1;
        p_device = 0;
        p_align = 64;
        p_binders = [| { Exe.b_arg = 0; b_dim = 0; b_sym = 0 } |];
        p_slots = [| { Exe.s_offset = Sx.const 0; s_size = size } |];
        p_total = size;
      };
    |];
  exe

let test_all_opcodes_verify () =
  let exe = all_opcode_exe () in
  let opcodes =
    Array.to_list exe.Exe.funcs.(1).Exe.code
    |> List.map Isa.opcode |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check int) "sample covers every opcode" Isa.num_opcodes opcodes;
  Alcotest.(check (list string)) "verifier accepts" []
    (List.map Diag.to_string (Verifier.verify exe));
  (* ... and still accepts after a serialization round trip *)
  let back = Verifier.of_bytes (Serialize.to_bytes exe) in
  Alcotest.(check int) "instructions preserved"
    (Exe.instruction_count exe) (Exe.instruction_count back)

(* ------------------------------------------------------------------ *)
(* Negative cases: seeded bytecode mutations                           *)
(* ------------------------------------------------------------------ *)

let mk_exe ?(arity = 1) ?(nregs = 8) ?(constants = [||]) ?(packed = [||]) code =
  Exe.create
    ~funcs:[| { Exe.name = "f"; arity; register_count = nregs; code } |]
    ~constants ~packed_names:packed

(* The serializer happily round-trips these (it checks format, not
   semantics), so each must be caught by the verifier at load time with a
   diagnostic locating function "f" at the seeded pc. *)
let expect_reject name ~pc exe =
  let bytes = Serialize.to_bytes exe in
  (* the decoder itself must accept: these are semantic, not format, bugs *)
  ignore (Serialize.of_bytes bytes);
  match Verifier.of_bytes bytes with
  | _ -> Alcotest.failf "%s: verifier accepted a corrupt executable" name
  | exception Verifier.Verify_error ds ->
      Alcotest.(check bool)
        (name ^ ": diagnostic located at f@" ^ string_of_int pc)
        true
        (List.exists (fun d -> d.Diag.d_where = "f" && d.Diag.d_pc = pc) ds)

let test_rejects_use_before_def () =
  expect_reject "use before def" ~pc:0
    (mk_exe ~arity:0 ~nregs:4 [| Isa.Move { src = 3; dst = 0 }; Isa.Ret { result = 0 } |])

let test_rejects_register_out_of_bounds () =
  expect_reject "register out of bounds" ~pc:0
    (mk_exe ~nregs:4 [| Isa.Ret { result = 9 } |])

let test_rejects_jump_out_of_bounds () =
  expect_reject "jump out of bounds" ~pc:0
    (mk_exe [| Isa.Goto 5; Isa.Ret { result = 0 } |])

let test_rejects_bad_constant_index () =
  expect_reject "constant index" ~pc:0
    (mk_exe [| Isa.LoadConst { index = 3; dst = 1 }; Isa.Ret { result = 1 } |])

let test_rejects_bad_device_id () =
  expect_reject "device id" ~pc:0
    (mk_exe
       [|
         Isa.AllocStorage
           { size = 0; alignment = 64; dtype = Dtype.F32; device_id = 7; arena = false; dst = 1 };
         Isa.Ret { result = 1 };
       |])

let test_rejects_bad_packed_index () =
  expect_reject "packed index" ~pc:0
    (mk_exe
       [|
         Isa.InvokePacked { packed_index = 2; args = [| 0 |]; outs = [| 0 |]; upper_bound = false };
         Isa.Ret { result = 0 };
       |])

let test_rejects_unallocated_out_register () =
  expect_reject "kernel out not alloc-backed" ~pc:0
    (mk_exe
       ~packed:[| ("k", `Kernel) |]
       [|
         Isa.InvokePacked { packed_index = 0; args = [| 0 |]; outs = [| 0 |]; upper_bound = false };
         Isa.Ret { result = 0 };
       |])

let test_rejects_fallthrough () =
  expect_reject "fallthrough" ~pc:0 (mk_exe [| Isa.Move { src = 0; dst = 1 } |])

let test_rejects_def_not_on_all_paths () =
  (* r2 is defined on the true path only; the join at the Ret is Unset *)
  expect_reject "def on one path only" ~pc:2
    (mk_exe ~nregs:4
       [|
         Isa.If { test = 0; target = 0; true_offset = 1; false_offset = 2 };
         Isa.LoadConsti { value = 5L; dst = 2 };
         Isa.Ret { result = 2 };
       |])

let test_rejects_getfield_out_of_arity () =
  expect_reject "field index vs ADT arity" ~pc:1
    (mk_exe ~nregs:4
       [|
         Isa.AllocADT { tag = 0; fields = [| 0; 0 |]; dst = 1 };
         Isa.GetField { obj = 1; index = 5; dst = 2 };
         Isa.Ret { result = 2 };
       |])

let test_rejects_tensor_as_storage () =
  expect_reject "tensor used as storage" ~pc:1
    (mk_exe ~nregs:4
       [|
         Isa.AllocADT { tag = 0; fields = [||]; dst = 1 };
         Isa.AllocTensor { storage = 1; offset = 0; shape = [| 1 |]; dtype = Dtype.F32; dst = 2 };
         Isa.Ret { result = 2 };
       |])

let test_rejects_empty_function () =
  expect_reject "empty function" ~pc:(-1) (mk_exe [||])

let test_rejects_bad_guard_argument () =
  (* guards are attached post-assembly, so verify directly *)
  let exe = mk_exe [| Isa.Ret { result = 0 } |] in
  Exe.set_guards exe
    [| [| { Exe.g_arg = 3; g_name = "x"; g_dims = [||]; g_dtype = None } |] |];
  match Verifier.verify exe with
  | [] -> Alcotest.fail "guard on argument 3 of an arity-1 function accepted"
  | d :: _ ->
      Alcotest.(check string) "located in f" "f" d.Diag.d_where;
      Alcotest.(check int) "no pc (entry guard)" (-1) d.Diag.d_pc

(* ------------------------------------------------------------------ *)
(* Pipeline invariant: everything the compiler emits verifies clean    *)
(* ------------------------------------------------------------------ *)

let example_modules () : (string * Irmod.t) list =
  (* the same three modules the CLI's `lint all` covers (examples/) *)
  let rng = Rng.create ~seed:42 in
  let quickstart =
    let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 16 ]) "x" in
    let w = Tensor.randn ~scale:0.2 rng [| 8; 16 |] in
    let b = Tensor.randn ~scale:0.2 rng [| 8 |] in
    Irmod.of_main
      (Expr.fn_def [ x ]
         (Expr.op_call "tanh"
            [
              Expr.op_call "bias_add"
                [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ]; Expr.Const b ];
            ]))
  in
  let detection =
    let boxes = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 5 ]) "boxes" in
    let kept = Expr.fresh_var "kept" in
    let scores = Expr.fresh_var "scores" in
    Irmod.of_main
      (Expr.fn_def [ boxes ]
         (Expr.Let
            ( kept,
              Expr.op_call ~attrs:[ ("iou", Attrs.Float 0.45) ] "nms" [ Expr.Var boxes ],
              Expr.Let
                ( scores,
                  Expr.op_call
                    ~attrs:[ ("begins", Attrs.Ints [ 0; 0 ]); ("ends", Attrs.Ints [ 1000000; 1 ]) ]
                    "strided_slice" [ Expr.Var kept ],
                  Expr.op_call "sqrt" [ Expr.Var scores ] ) )))
  in
  let arange =
    let s = Expr.fresh_var ~ty:(Ty.scalar ()) "stop" in
    Irmod.of_main
      (Expr.fn_def [ s ]
         (Expr.op_call "arange"
            [ Expr.const_scalar 0.0; Expr.Var s; Expr.const_scalar 1.0 ]))
  in
  [ ("ex:quickstart", quickstart); ("ex:detection", detection); ("ex:arange", arange) ]

let zoo_modules () : (string * Irmod.t) list =
  let open Nimble_models in
  [
    ("lstm", Lstm.ir_module (Lstm.init_weights Lstm.small_config));
    ("gru", Gru.ir_module (Gru.init_weights Gru.small_config));
    ("treelstm", Tree_lstm.ir_module (Tree_lstm.init_weights Tree_lstm.small_config));
    ("bert", Bert.ir_module (Bert.init_weights Bert.small_config));
    ("decoder", Decoder.ir_module (Decoder.init_weights Decoder.default_config));
    ("seq2seq", Seq2seq.ir_module (Seq2seq.init_weights Seq2seq.default_config));
  ]
  @ List.map (fun (n, build) -> (n, build ())) Vision.all

let assert_clean name options m =
  let exe, report = Nimble.compile_with_report ~options m in
  Alcotest.(check bool)
    (name ^ ": verify stats recorded") true
    (List.exists (fun s -> s.Nimble.verify_name = "bytecode") report.Nimble.verify);
  List.iter
    (fun (s : Nimble.verify_stat) ->
      Alcotest.(check int)
        (Fmt.str "%s: %s violations" name s.Nimble.verify_name)
        0 s.Nimble.violations)
    report.Nimble.verify;
  Alcotest.(check (list string))
    (name ^ ": no diagnostics") []
    (List.map Diag.to_string report.Nimble.verify_diags);
  Alcotest.(check (list string))
    (name ^ ": emitted executable re-verifies") []
    (List.map Diag.to_string (Verifier.verify exe))

let test_pipeline_clean_zoo () =
  List.iter (fun (n, m) -> assert_clean n Nimble.default_options m) (zoo_modules ())

let test_pipeline_clean_examples () =
  List.iter
    (fun (n, m) -> assert_clean n Nimble.default_options m)
    (example_modules ())

let test_pipeline_clean_gpu () =
  (* heterogeneous placement inserts device copies; the device lint and the
     bytecode verifier must accept the result too *)
  List.iter
    (fun (n, m) ->
      assert_clean (n ^ "@gpu") { Nimble.default_options with Nimble.target_device = 1 } m)
    [
      ( "lstm",
        Nimble_models.Lstm.ir_module
          (Nimble_models.Lstm.init_weights Nimble_models.Lstm.small_config) );
    ]

let test_verify_passes_off () =
  let _, report =
    Nimble.compile_with_report
      ~options:{ Nimble.default_options with Nimble.verify_passes = false }
      (snd (List.hd (example_modules ())))
  in
  Alcotest.(check int) "no verify stats when disabled" 0
    (List.length report.Nimble.verify)

(* ------------------------------------------------------------------ *)
(* IR-dialect lints on hand-built violating modules                    *)
(* ------------------------------------------------------------------ *)

let dv = Expr.fresh_var

let contains_diag ~check ~substr diags =
  List.exists
    (fun d ->
      d.Diag.d_check = check
      &&
      let s = Diag.to_string d in
      let n = String.length substr in
      let found = ref false in
      for i = 0 to String.length s - n do
        if String.sub s i n = substr then found := true
      done;
      !found)
    diags

let check_lint name diags ~check ~substr =
  if not (contains_diag ~check ~substr diags) then
    Alcotest.failf "%s: expected a %S diagnostic mentioning %S, got [%s]" name
      check substr
      (String.concat "; " (List.map Diag.to_string diags))

let test_lint_use_after_kill () =
  let s = dv "s" and t = dv "t" and k = dv "k" and u = dv "u" in
  let body =
    Expr.lets
      [
        (s, Expr.op_call "memory.alloc_storage" [ Expr.const_int 4 ]);
        (t, Expr.op_call "memory.alloc_tensor" [ Expr.Var s; Expr.const_int 4 ]);
        (k, Expr.op_call "memory.kill" [ Expr.Var t ]);
        (u, Expr.Var t);
      ]
      (Expr.Var u)
  in
  let m = Irmod.of_main (Expr.fn_def [] body) in
  check_lint "use after kill" (Lint.memory m) ~check:"memory"
    ~substr:"after memory.kill"

let test_lint_double_kill () =
  let s = dv "s" and t = dv "t" and k1 = dv "k1" and k2 = dv "k2" in
  let body =
    Expr.lets
      [
        (s, Expr.op_call "memory.alloc_storage" [ Expr.const_int 4 ]);
        (t, Expr.op_call "memory.alloc_tensor" [ Expr.Var s; Expr.const_int 4 ]);
        (k1, Expr.op_call "memory.kill" [ Expr.Var t ]);
        (k2, Expr.op_call "memory.kill" [ Expr.Var t ]);
      ]
      (Expr.const_int 0)
  in
  let m = Irmod.of_main (Expr.fn_def [] body) in
  check_lint "double kill" (Lint.memory m) ~check:"memory"
    ~substr:"double memory.kill"

let test_lint_tensor_as_storage () =
  let s = dv "s" and t = dv "t" and t2 = dv "t2" in
  let body =
    Expr.lets
      [
        (s, Expr.op_call "memory.alloc_storage" [ Expr.const_int 4 ]);
        (t, Expr.op_call "memory.alloc_tensor" [ Expr.Var s; Expr.const_int 4 ]);
        (t2, Expr.op_call "memory.alloc_tensor" [ Expr.Var t; Expr.const_int 4 ]);
      ]
      (Expr.Var t2)
  in
  let m = Irmod.of_main (Expr.fn_def [] body) in
  check_lint "tensor as storage" (Lint.memory m) ~check:"memory"
    ~substr:"not a memory.alloc_storage result"

let test_lint_unallocated_destination () =
  let x = dv "x" and y = dv "y" and u = dv "u" in
  let body =
    Expr.lets
      [
        ( u,
          Expr.op_call
            ~attrs:[ ("num_inputs", Attrs.Int 1) ]
            "memory.invoke_mut"
            [ Expr.Op "k"; Expr.Var x; Expr.Var y ] );
      ]
      (Expr.Var y)
  in
  let m = Irmod.of_main (Expr.fn_def [ x; y ] body) in
  check_lint "unallocated destination" (Lint.memory m) ~check:"memory"
    ~substr:"not a manifestly allocated tensor"

let test_lint_leak () =
  let s = dv "s" and t = dv "t" in
  let bindings =
    [
      (s, Expr.op_call "memory.alloc_storage" [ Expr.const_int 4 ]);
      (t, Expr.op_call "memory.alloc_tensor" [ Expr.Var s; Expr.const_int 4 ]);
    ]
  in
  let m = Irmod.of_main (Expr.fn_def [] (Expr.lets bindings (Expr.const_int 0))) in
  (* the leak rule is part of the planner's contract: only checked planned *)
  Alcotest.(check (list string)) "unplanned: no leak rule" []
    (List.map Diag.to_string (Lint.memory ~planned:false m));
  check_lint "leak" (Lint.memory ~planned:true m) ~check:"memory" ~substr:"leak"

let test_lint_arena_overlap () =
  let a = dv "a" and t1 = dv "t1" and t2 = dv "t2" and u = dv "u" in
  let alloc v off =
    ( v,
      Expr.op_call
        ~attrs:[ ("offset", Attrs.Int off); ("const_shape", Attrs.Ints [ 4 ]) ]
        "memory.alloc_tensor"
        [ Expr.Var a; Expr.const_int 4 ] )
  in
  let body off2 =
    Expr.lets
      [
        ( a,
          Expr.op_call
            ~attrs:[ ("arena", Attrs.Bool true) ]
            "memory.alloc_storage" [ Expr.const_int 32 ] );
        alloc t1 0;
        alloc t2 off2;
        ( u,
          Expr.op_call
            ~attrs:[ ("num_inputs", Attrs.Int 0) ]
            "memory.invoke_mut"
            [ Expr.Op "k"; Expr.Var t1; Expr.Var t2 ] );
      ]
      (Expr.Var u)
  in
  let overlapping = Irmod.of_main (Expr.fn_def [] (body 0)) in
  check_lint "arena overlap" (Lint.memory ~planned:true overlapping)
    ~check:"memory" ~substr:"overlap";
  (* disjoint offsets for the same live ranges are fine *)
  let disjoint = Irmod.of_main (Expr.fn_def [] (body 4096)) in
  Alcotest.(check (list string)) "disjoint offsets accepted" []
    (List.map Diag.to_string (Lint.memory ~planned:true disjoint))

let test_lint_device_conflict () =
  let x = dv "x" and s = dv "s" and t = dv "t" and u = dv "u" in
  let body =
    Expr.lets
      [
        ( s,
          Expr.op_call
            ~attrs:[ ("device", Attrs.Int 1) ]
            "memory.alloc_storage" [ Expr.const_int 4 ] );
        (t, Expr.op_call "memory.alloc_tensor" [ Expr.Var s; Expr.const_int 4 ]);
        ( u,
          Expr.op_call
            ~attrs:[ ("device", Attrs.Int 0); ("num_inputs", Attrs.Int 1) ]
            "memory.invoke_mut"
            [ Expr.Op "k"; Expr.Var t; Expr.Var t ] );
      ]
      (Expr.Var u)
  in
  let m = Irmod.of_main (Expr.fn_def [ x ] body) in
  check_lint "device conflict" (Lint.device m) ~check:"device"
    ~substr:"without a device_copy"

let test_lint_fusion_policy () =
  (* a fused group containing nms (upper-bound shape function) violates the
     §4.2 policy: only data-independent ops may be fused *)
  let p = dv "p" in
  let prim =
    Expr.fn_def
      ~attrs:
        [
          ("Primitive", Attrs.Int 1);
          ("name", Attrs.Str "bad_fused");
          ("ops", Attrs.Str "relu,nms");
        ]
      [ p ] (Expr.Var p)
  in
  let x = dv "x" in
  let m = Irmod.of_main (Expr.fn_def [ x ] (Expr.call (Expr.Fn prim) [ Expr.Var x ])) in
  check_lint "fusion policy" (Lint.fusion m) ~check:"fusion"
    ~substr:"not data-independent"

(* ------------------------------------------------------------------ *)
(* Byte-flip / truncation fuzz over the serialized format              *)
(* ------------------------------------------------------------------ *)

let classify bytes =
  match Verifier.of_bytes bytes with
  | _ -> `Clean
  | exception Serialize.Format_error _ -> `Rejected
  | exception Verifier.Verify_error _ -> `Rejected
  | exception e ->
      Alcotest.failf "loader crashed instead of rejecting: %s"
        (Printexc.to_string e)

let test_byte_flips_never_crash () =
  let exe = Nimble.compile (snd (List.hd (example_modules ()))) in
  let bytes = Serialize.to_bytes exe in
  let len = String.length bytes in
  let rejected = ref 0 in
  for i = 0 to 199 do
    let pos = i * 131 mod min len 4096 in
    let b = Bytes.of_string bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (i mod 8))));
    match classify (Bytes.to_string b) with
    | `Rejected -> incr rejected
    | `Clean -> () (* flips in constant payloads decode fine *)
  done;
  Alcotest.(check bool) "some flips detected" true (!rejected > 0)

let test_truncations_never_crash () =
  let exe = Nimble.compile (snd (List.hd (example_modules ()))) in
  let bytes = Serialize.to_bytes exe in
  let len = String.length bytes in
  for k = 0 to 40 do
    match classify (String.sub bytes 0 (k * len / 41)) with
    | `Rejected | `Clean -> ()
  done

(* ------------------------------------------------------------------ *)

let test_to_failure () =
  let d = Diag.v ~check:"bytecode" ~where_:"main" ~pc:7 "boom" in
  let f = Verifier.to_failure [ d; d ] in
  Alcotest.(check string) "function" "main" f.Interp.fail_func;
  Alcotest.(check int) "pc" 7 f.Interp.fail_pc

let () =
  Alcotest.run "analysis"
    [
      ( "pin",
        [
          Alcotest.test_case "opcode count" `Quick test_opcode_pin;
          Alcotest.test_case "all opcodes verify + roundtrip" `Quick
            test_all_opcodes_verify;
        ] );
      ( "verifier-rejects",
        [
          Alcotest.test_case "use before def" `Quick test_rejects_use_before_def;
          Alcotest.test_case "register bounds" `Quick test_rejects_register_out_of_bounds;
          Alcotest.test_case "jump bounds" `Quick test_rejects_jump_out_of_bounds;
          Alcotest.test_case "constant index" `Quick test_rejects_bad_constant_index;
          Alcotest.test_case "device id" `Quick test_rejects_bad_device_id;
          Alcotest.test_case "packed index" `Quick test_rejects_bad_packed_index;
          Alcotest.test_case "unallocated out" `Quick test_rejects_unallocated_out_register;
          Alcotest.test_case "fallthrough" `Quick test_rejects_fallthrough;
          Alcotest.test_case "def on one path" `Quick test_rejects_def_not_on_all_paths;
          Alcotest.test_case "getfield arity" `Quick test_rejects_getfield_out_of_arity;
          Alcotest.test_case "tensor as storage" `Quick test_rejects_tensor_as_storage;
          Alcotest.test_case "empty function" `Quick test_rejects_empty_function;
          Alcotest.test_case "guard argument" `Quick test_rejects_bad_guard_argument;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "zoo models verify clean" `Quick test_pipeline_clean_zoo;
          Alcotest.test_case "examples verify clean" `Quick test_pipeline_clean_examples;
          Alcotest.test_case "gpu placement verifies clean" `Quick test_pipeline_clean_gpu;
          Alcotest.test_case "verify_passes off" `Quick test_verify_passes_off;
        ] );
      ( "lints",
        [
          Alcotest.test_case "use after kill" `Quick test_lint_use_after_kill;
          Alcotest.test_case "double kill" `Quick test_lint_double_kill;
          Alcotest.test_case "tensor as storage" `Quick test_lint_tensor_as_storage;
          Alcotest.test_case "unallocated destination" `Quick test_lint_unallocated_destination;
          Alcotest.test_case "leak" `Quick test_lint_leak;
          Alcotest.test_case "arena overlap" `Quick test_lint_arena_overlap;
          Alcotest.test_case "device conflict" `Quick test_lint_device_conflict;
          Alcotest.test_case "fusion policy" `Quick test_lint_fusion_policy;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "byte flips" `Quick test_byte_flips_never_crash;
          Alcotest.test_case "truncations" `Quick test_truncations_never_crash;
        ] );
      ("failure", [ Alcotest.test_case "to_failure" `Quick test_to_failure ]);
    ]
