(* Chaos suite: drive the stack with deterministic fault injection
   (fixed NIMBLE_FAULT_SPEC-style specs, seeded) and check the
   resilience contract end to end — the engine drains every request with
   no hang, every failure arrives through the typed channel, successful
   responses stay bitwise-equal to a fault-free sequential reference,
   transient faults are retried, persistent ones surface immediately,
   and the warm cache survives flaky deserializes. *)

open Nimble_tensor
open Nimble_ir
open Nimble_serve
module Fault = Nimble_fault.Fault
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp
module Obj = Nimble_vm.Obj

let tensor_bitwise = Alcotest.testable Tensor.pp Tensor.equal
let rng = Rng.create ~seed:131

(* the same minimal dynamic model as test_serve: dense + relu over a
   dynamic leading dimension *)
let feature_dim = 6
let out_dim = 4

let make_module w =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static feature_dim ]) "x" in
  let body = Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  Irmod.of_main (Expr.fn_def [ x ] body)

let shared_w = Tensor.randn rng [| out_dim; feature_dim |]
let shared_exe () = Nimble.compile (make_module shared_w)

(* every test leaves injection off, whatever happens *)
let with_fault spec f =
  Fun.protect ~finally:Fault.disable (fun () ->
      Fault.configure spec;
      f ())

(* ------------------------- drain under chaos ------------------------- *)

let test_chaos_drain () =
  let exe = shared_exe () in
  let shapes = [ 1; 2; 3; 5; 7; 8 ] in
  let requests = 60 in
  let jobs =
    Array.init requests (fun i ->
        let rows = List.nth shapes (i mod List.length shapes) in
        (rows, Tensor.randn rng [| rows; feature_dim |]))
  in
  (* fault-free sequential reference, computed before any injection *)
  let reference =
    let vm = Interp.create exe in
    Array.map (fun (_, x) -> Interp.run_tensors vm [ x ]) jobs
  in
  with_fault "seed=11;*=0.05" (fun () ->
      let engine =
        Engine.create
          ~config:
            {
              Engine.default_config with
              workers = 2;
              queue_capacity = 256;
              max_batch = 4;
              max_wait_us = 300.0;
            }
          exe
      in
      let tickets =
        Array.map
          (fun (rows, x) -> Engine.submit engine ~shape:[| rows |] (Obj.tensor x))
          jobs
      in
      let completed = ref 0 and failed = ref 0 and rejected = ref 0 in
      Array.iteri
        (fun i tk ->
          match tk with
          | Error Engine.Rejected -> incr rejected
          | Error _ -> Alcotest.fail "submit produced a non-reject error"
          | Ok tk -> (
              (* the hard guarantee: every accepted request completes *)
              match Engine.wait tk with
              | Ok (Obj.Tensor p) ->
                  incr completed;
                  Alcotest.check tensor_bitwise
                    (Printf.sprintf "request %d bitwise vs reference" i)
                    reference.(i) p.Obj.data
              | Ok _ -> Alcotest.fail "non-tensor result"
              | Error (Engine.Failed fl) ->
                  (* failures must come through the typed channel, with a
                     classified kind *)
                  incr failed;
                  Alcotest.(check bool)
                    (Printf.sprintf "typed kind for %S" fl.Interp.fail_msg)
                    true
                    (List.mem
                       (Interp.kind_name fl.Interp.fail_kind)
                       [ "shape_guard"; "alloc"; "kernel_trap"; "shape_func"; "internal" ])
              | Error Engine.Rejected | Error Engine.Timed_out ->
                  Alcotest.fail "no deadline was set: only Failed is acceptable"))
        tickets;
      Engine.shutdown engine;
      let s = Engine.stats engine in
      Alcotest.(check int) "every ticket accounted" requests
        (!completed + !failed + !rejected);
      Alcotest.(check int) "stats drain" s.Stats.s_submitted
        (s.Stats.s_completed + s.Stats.s_errors + s.Stats.s_rejected
       + s.Stats.s_timeouts);
      Alcotest.(check int) "completions agree" !completed s.Stats.s_completed;
      Alcotest.(check bool) "faults actually fired" true
        (List.exists (fun (_, h) -> h > 0) (Fault.hits ()));
      Alcotest.(check bool) "some requests survived the chaos" true (!completed > 0))

(* ------------------------- transient retries ------------------------- *)

let test_retry_transient () =
  let exe = shared_exe () in
  with_fault "seed=3;kernel_launch=0.4:transient" (fun () ->
      let engine =
        Engine.create
          ~config:
            {
              Engine.default_config with
              workers = 1;
              max_batch = 1;
              max_wait_us = 100.0;
              max_retries = 10;
              retry_backoff_us = 50.0;
            }
          exe
      in
      (* one request at a time on one worker: the attempt stream, and so
         every injection decision, is fully deterministic *)
      let x = Tensor.randn rng [| 3; feature_dim |] in
      for i = 1 to 8 do
        match Engine.run engine ~shape:[| 3 |] (Obj.tensor x) with
        | Ok _ -> ()
        | Error (Engine.Failed fl) ->
            Alcotest.failf "request %d exhausted retries: %a" i Interp.pp_failure fl
        | Error _ -> Alcotest.failf "request %d: unexpected error kind" i
      done;
      Engine.shutdown engine;
      let s = Engine.stats engine in
      Alcotest.(check int) "all completed" 8 s.Stats.s_completed;
      Alcotest.(check bool)
        (Printf.sprintf "retries absorbed the faults (retries=%d)" s.Stats.s_retries)
        true (s.Stats.s_retries > 0);
      Alcotest.(check bool) "kernel_launch faults fired" true
        (match List.assoc_opt "kernel_launch" (Fault.hits ()) with
        | Some h -> h > 0
        | None -> false))

(* ------------------------- persistent faults ------------------------- *)

let test_persistent_not_retried () =
  let exe = shared_exe () in
  with_fault "seed=1;kernel_launch=1.0:persistent" (fun () ->
      let engine =
        Engine.create
          ~config:{ Engine.default_config with workers = 1; max_retries = 5 }
          exe
      in
      let x = Tensor.randn rng [| 2; feature_dim |] in
      (match Engine.run engine ~shape:[| 2 |] (Obj.tensor x) with
      | Error (Engine.Failed fl) ->
          Alcotest.(check string) "classified as a kernel trap" "kernel_trap"
            (Interp.kind_name fl.Interp.fail_kind);
          Alcotest.(check bool) "not transient" false fl.Interp.fail_transient
      | Ok _ -> Alcotest.fail "a rate-1.0 persistent fault cannot succeed"
      | Error _ -> Alcotest.fail "unexpected error kind");
      Engine.shutdown engine;
      let s = Engine.stats engine in
      Alcotest.(check int) "persistent failures are never retried" 0 s.Stats.s_retries;
      Alcotest.(check (list (pair string int))) "failure kind tallied"
        [ ("kernel_trap", 1) ] s.Stats.s_failure_kinds)

(* ---------------------- guards through the engine ---------------------- *)

let test_guard_failure_served () =
  (* an ill-typed input fails fast at function entry, through the same
     typed channel as injected faults — no injection configured at all *)
  let exe = shared_exe () in
  let engine =
    Engine.create ~config:{ Engine.default_config with workers = 1 } exe
  in
  let bad = Tensor.randn rng [| 3; feature_dim + 1 |] in
  (match Engine.run engine ~shape:[| 3 |] (Obj.tensor bad) with
  | Error (Engine.Failed fl) ->
      Alcotest.(check string) "guard kind" "shape_guard"
        (Interp.kind_name fl.Interp.fail_kind)
  | Ok _ -> Alcotest.fail "ill-typed input served"
  | Error _ -> Alcotest.fail "unexpected error kind");
  (* the worker is still healthy: a well-typed request sails through *)
  let good = Tensor.randn rng [| 3; feature_dim |] in
  (match Engine.run engine ~shape:[| 3 |] (Obj.tensor good) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "well-typed request failed after a guard trip");
  Engine.shutdown engine

(* ------------------------- flaky deserialize ------------------------- *)

let test_cache_survives_flaky_deserialize () =
  (* seed 4 draws fault, fault, success at the deserialize point: the
     cold load must retry twice and then succeed *)
  with_fault "seed=4;deserialize=0.6:transient" (fun () ->
      let cache = Cache.create () in
      let exe =
        Cache.load cache ~name:"chaotic" ~build:(fun () -> make_module shared_w)
      in
      Alcotest.(check bool) "linked after retries" true (Nimble_vm.Exe.linked exe);
      let attempts =
        match List.assoc_opt "deserialize" (Fault.attempts ()) with
        | Some a -> a
        | None -> 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "retried at least once (attempts=%d)" attempts)
        true (attempts > 1))

(* -------------------------- worker restarts -------------------------- *)

let test_worker_restart () =
  let exe = shared_exe () in
  with_fault "seed=7;worker_loop=1.0:persistent" (fun () ->
      let engine =
        Engine.create
          ~config:{ Engine.default_config with workers = 1; max_batch = 2 }
          exe
      in
      let x = Tensor.randn rng [| 2; feature_dim |] in
      (* every batch dies in the worker loop: requests must still be
         answered (as internal failures), not stranded *)
      for _ = 1 to 3 do
        match Engine.run engine ~shape:[| 2 |] (Obj.tensor x) with
        | Error (Engine.Failed fl) ->
            Alcotest.(check string) "stranded requests answered as internal"
              "internal"
              (Interp.kind_name fl.Interp.fail_kind)
        | Ok _ -> Alcotest.fail "a rate-1.0 worker_loop fault cannot succeed"
        | Error _ -> Alcotest.fail "unexpected error kind"
      done;
      Engine.shutdown engine;
      let s = Engine.stats engine in
      Alcotest.(check bool)
        (Printf.sprintf "workers restarted (restarts=%d)" s.Stats.s_worker_restarts)
        true
        (s.Stats.s_worker_restarts >= 3))

let () =
  Alcotest.run "chaos"
    [
      ( "engine",
        [
          Alcotest.test_case "full drain under 5% chaos" `Quick test_chaos_drain;
          Alcotest.test_case "transient faults retried" `Quick test_retry_transient;
          Alcotest.test_case "persistent faults surface" `Quick test_persistent_not_retried;
          Alcotest.test_case "guard failures served" `Quick test_guard_failure_served;
          Alcotest.test_case "worker restarts" `Quick test_worker_restart;
        ] );
      ( "cache",
        [
          Alcotest.test_case "flaky deserialize retried" `Quick
            test_cache_survives_flaky_deserialize;
        ] );
    ]
