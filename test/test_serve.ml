(* Serving-engine tests: bucket policy, queue backpressure, the warm
   executable cache's serialize→link round trip, deadline timeouts,
   graceful-shutdown draining, and the headline guarantee — results
   served through the concurrent batching engine are bitwise-equal
   (Tensor.equal) to sequential single-request runs. *)

open Nimble_tensor
open Nimble_ir
open Nimble_serve
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp
module Obj = Nimble_vm.Obj

let tensor_bitwise = Alcotest.testable Tensor.pp Tensor.equal
let rng = Rng.create ~seed:97

(* dense(x, w) |> relu with a dynamic leading dimension: the smallest
   model that still exercises kernels, shape funcs and allocation *)
let feature_dim = 6
let out_dim = 4

let make_module w =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static feature_dim ]) "x" in
  let body = Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  Irmod.of_main (Expr.fn_def [ x ] body)

let shared_w = Tensor.randn rng [| out_dim; feature_dim |]
let shared_exe () = Nimble.compile (make_module shared_w)

(* ------------------------------ bucket ------------------------------ *)

let test_bucket_exact () =
  Alcotest.(check string) "identity" "7x6" (Bucket.key_string Bucket.Exact [| 7; 6 |]);
  Alcotest.(check string) "distinct" "8x6" (Bucket.key_string Bucket.Exact [| 8; 6 |])

let test_bucket_pad () =
  let p = Bucket.Pad { multiple = 8; max_over = 4.0 } in
  Alcotest.(check string) "rounds up" "8x8" (Bucket.key_string p [| 7; 6 |]);
  Alcotest.(check string) "exact multiple kept" "16x8" (Bucket.key_string p [| 16; 8 |]);
  Alcotest.(check string) "shares a bucket" (Bucket.key_string p [| 6; 7 |])
    (Bucket.key_string p [| 8; 8 |])

let test_bucket_cap () =
  (* padding 1x1 to 8x8 is a 64x blowup: the cap must fall back to exact *)
  let p = Bucket.Pad { multiple = 8; max_over = 2.0 } in
  Alcotest.(check string) "cap falls back to exact" "1x1" (Bucket.key_string p [| 1; 1 |]);
  (* 7x6=42 -> 8x8=64 is 1.52x: under the cap, padded *)
  Alcotest.(check string) "under cap pads" "8x8" (Bucket.key_string p [| 7; 6 |])

(* ------------------------------ squeue ------------------------------ *)

let test_squeue_backpressure () =
  let q = Squeue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Squeue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Squeue.try_push q 2);
  Alcotest.(check bool) "full rejects" false (Squeue.try_push q 3);
  Alcotest.(check int) "high water" 2 (Squeue.high_water q);
  Squeue.close q;
  Alcotest.(check bool) "closed rejects" false (Squeue.try_push q 4);
  Alcotest.(check (option int)) "drains 1" (Some 1) (Squeue.pop q);
  Alcotest.(check (option int)) "drains 2" (Some 2) (Squeue.pop q);
  Alcotest.(check (option int)) "then None" None (Squeue.pop q)

(* Close semantics under concurrent producers: domains race try_push
   against a close landing mid-stream. Every element a producer saw
   accepted must be drained by the consumer — close refuses new pushes
   but never drops accepted ones — and nothing deadlocks. *)
let test_squeue_close_race () =
  let producers = 4 and per_producer = 200 in
  let q = Squeue.create ~capacity:32 in
  let accepted = Atomic.make 0 in
  let producer _ =
    Domain.spawn (fun () ->
        for i = 1 to per_producer do
          if Squeue.try_push q i then ignore (Atomic.fetch_and_add accepted 1)
        done)
  in
  let drained = ref 0 in
  let consumer =
    Domain.spawn (fun () ->
        let rec loop () =
          match Squeue.pop q with
          | Some _ ->
              incr drained;
              loop ()
          | None -> ()
        in
        loop ())
  in
  let doms = List.init producers producer in
  (* close races the producers mid-stream *)
  Unix.sleepf 0.002;
  Squeue.close q;
  List.iter Domain.join doms;
  Domain.join consumer;
  Alcotest.(check bool) "closed" true (Squeue.closed q);
  Alcotest.(check int) "accepted == drained" (Atomic.get accepted) !drained;
  Alcotest.(check int) "queue empty after drain" 0 (Squeue.length q);
  (* closed queue keeps refusing; pop keeps returning None *)
  Alcotest.(check bool) "closed rejects" false (Squeue.try_push q 0);
  Alcotest.(check (option int)) "closed pop" None (Squeue.pop q)

(* --------------------------- warm exe cache --------------------------- *)

let test_cache_roundtrip () =
  let cache = Cache.create () in
  let build () = make_module shared_w in
  let exe1 = Cache.load cache ~name:"dense_relu" ~build in
  Alcotest.(check int) "one cold load" 1 (Cache.misses cache);
  let exe2 = Cache.load cache ~name:"dense_relu" ~build in
  Alcotest.(check int) "one warm load" 1 (Cache.hits cache);
  Alcotest.(check bool) "same linked instance" true (exe1 == exe2);
  Alcotest.(check bool) "linked after round trip" true (Nimble_vm.Exe.linked exe1);
  Alcotest.(check bool) "serialized size recorded" true
    (match Cache.serialized_bytes cache ~name:"dense_relu" with
    | Some n -> n > 0
    | None -> false);
  (* the round-tripped executable computes the same function as a
     directly compiled one (to f32 precision — constants are stored as
     float32, matching test_serialize), and is deterministic across
     interpreter instances (bitwise) *)
  let input = Tensor.randn rng [| 5; feature_dim |] in
  let direct = Interp.run_tensors (Nimble.vm (shared_exe ())) [ input ] in
  let via_cache = Interp.run_tensors (Interp.create exe1) [ input ] in
  Alcotest.(check bool) "cold-load result (f32-close to direct compile)" true
    (Tensor.approx_equal ~atol:1e-5 ~rtol:1e-5 direct via_cache);
  let again = Interp.run_tensors (Interp.create exe1) [ input ] in
  Alcotest.check tensor_bitwise "deterministic across interpreters" via_cache again

(* ----------------- concurrency: batched == sequential ----------------- *)

let n_clients = 4
let shapes_per_client = [ 1; 3; 5; 7; 8; 13 ]

let test_concurrent_bitwise () =
  let exe = shared_exe () in
  (* distinct input per (client, shape), pre-generated on one domain so
     the reference and the served run see the very same tensors *)
  let inputs =
    Array.init n_clients (fun _c ->
        List.map
          (fun rows ->
            (rows, Tensor.randn rng [| rows; feature_dim |]))
          shapes_per_client)
  in
  let reference =
    let vm = Interp.create exe in
    Array.map
      (fun per_client ->
        List.map (fun (_, x) -> Interp.run_tensors vm [ x ]) per_client)
      inputs
  in
  let engine =
    Engine.create
      ~config:
        {
          Engine.default_config with
          workers = 2;
          max_batch = 4;
          max_wait_us = 500.0;
          queue_capacity = 256;
        }
      exe
  in
  let client c () =
    List.map
      (fun (rows, x) ->
        match Engine.submit engine ~shape:[| rows |] (Obj.tensor x) with
        | Ok tk -> tk
        | Error _ -> Alcotest.fail "unexpected reject")
      inputs.(c)
    |> List.map Engine.wait
  in
  let domains = List.init n_clients (fun c -> Domain.spawn (client c)) in
  let outcomes = List.map Domain.join domains in
  Engine.shutdown engine;
  List.iteri
    (fun c per_client ->
      List.iteri
        (fun i outcome ->
          match outcome with
          | Ok (Obj.Tensor p) ->
              Alcotest.check tensor_bitwise
                (Printf.sprintf "client %d shape %d" c i)
                (List.nth reference.(c) i)
                p.Obj.data
          | Ok _ -> Alcotest.fail "non-tensor result"
          | Error _ -> Alcotest.fail "request failed")
        per_client)
    outcomes;
  let s = Engine.stats engine in
  Alcotest.(check int) "all submitted" (n_clients * List.length shapes_per_client)
    s.Stats.s_submitted;
  Alcotest.(check int) "all completed" (n_clients * List.length shapes_per_client)
    s.Stats.s_completed;
  Alcotest.(check int) "none rejected" 0 s.Stats.s_rejected;
  Alcotest.(check bool) "batches formed" true (s.Stats.s_batches > 0);
  Alcotest.(check bool) "histogram populated" true (s.Stats.s_batch_hist <> []);
  Alcotest.(check bool) "frames reused" true (s.Stats.s_frame_reuses > 0)

(* -------------------- backpressure and timeouts -------------------- *)

let test_engine_backpressure () =
  let exe = shared_exe () in
  let engine =
    Engine.create
      ~config:
        {
          Engine.default_config with
          workers = 1;
          queue_capacity = 4;
          max_batch = 64;
          max_wait_us = 100.0;
        }
      exe
  in
  Engine.pause engine;
  let x = Tensor.randn rng [| 2; feature_dim |] in
  (* the batcher may stash at most one request before it sees the pause,
     so 6+ rapid submits must overflow a capacity-4 queue *)
  let results =
    List.init 8 (fun _ -> Engine.submit engine ~shape:[| 2 |] (Obj.tensor x))
  in
  let rejected = List.length (List.filter Result.is_error results) in
  Alcotest.(check bool)
    (Printf.sprintf "full queue rejects (got %d)" rejected)
    true (rejected >= 1);
  Engine.resume engine;
  List.iter
    (function Ok tk -> (match Engine.wait tk with
       | Ok _ -> ()
       | Error _ -> Alcotest.fail "accepted request failed")
      | Error Engine.Rejected -> ()
      | Error _ -> Alcotest.fail "unexpected error kind")
    results;
  Engine.shutdown engine;
  let s = Engine.stats engine in
  Alcotest.(check int) "rejects counted" rejected s.Stats.s_rejected;
  Alcotest.(check int) "the rest completed" (8 - rejected) s.Stats.s_completed

let test_engine_timeout () =
  let exe = shared_exe () in
  let engine =
    Engine.create
      ~config:{ Engine.default_config with workers = 1; queue_capacity = 16 }
      exe
  in
  Engine.pause engine;
  let x = Tensor.randn rng [| 2; feature_dim |] in
  let tickets =
    List.init 3 (fun _ ->
        match Engine.submit ~timeout_us:1_000.0 engine ~shape:[| 2 |] (Obj.tensor x) with
        | Ok tk -> tk
        | Error _ -> Alcotest.fail "unexpected reject")
  in
  Unix.sleepf 0.05;
  (* deadlines long gone *)
  Engine.resume engine;
  List.iter
    (fun tk ->
      match Engine.wait tk with
      | Error Engine.Timed_out -> ()
      | Ok _ -> Alcotest.fail "expired request still ran"
      | Error _ -> Alcotest.fail "wrong error kind")
    tickets;
  Engine.shutdown engine;
  let s = Engine.stats engine in
  (* paused-then-expired requests die at flush time, before any worker
     touches them: they land in shed_flush, not in the worker-pickup
     timeouts counter (the client-visible error is Timed_out either way) *)
  Alcotest.(check int) "shed at flush" 3 s.Stats.s_shed_flush;
  Alcotest.(check int) "no pickup timeouts" 0 s.Stats.s_timeouts;
  Alcotest.(check int) "none completed" 0 s.Stats.s_completed

let test_shutdown_drains () =
  let exe = shared_exe () in
  let engine =
    Engine.create
      ~config:{ Engine.default_config with workers = 2; queue_capacity = 64 }
      exe
  in
  let x = Tensor.randn rng [| 3; feature_dim |] in
  let tickets =
    List.init 12 (fun _ ->
        match Engine.submit engine ~shape:[| 3 |] (Obj.tensor x) with
        | Ok tk -> tk
        | Error _ -> Alcotest.fail "unexpected reject")
  in
  (* shutdown must drain every queued request, not drop it *)
  Engine.shutdown engine;
  List.iter
    (fun tk ->
      match Engine.wait tk with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "queued request dropped at shutdown")
    tickets;
  let s = Engine.stats engine in
  Alcotest.(check int) "all completed" 12 s.Stats.s_completed;
  (* shutdown is idempotent *)
  Engine.shutdown engine

(* ------------------------------ loadgen ------------------------------ *)

let test_loadgen_smoke () =
  let exe = shared_exe () in
  let engine =
    Engine.create
      ~config:{ Engine.default_config with workers = 2; queue_capacity = 128 }
      exe
  in
  let inputs = Hashtbl.create 4 in
  let make_input ~shape =
    let rows = shape.(0) in
    match Hashtbl.find_opt inputs rows with
    | Some x -> Obj.tensor x
    | None ->
        let x = Tensor.ones [| rows; feature_dim |] in
        Hashtbl.replace inputs rows x;
        Obj.tensor x
  in
  let r =
    Loadgen.run
      ~config:
        {
          Loadgen.default_config with
          rate_rps = 500.0;
          duration_s = 0.2;
          clients = 2;
          mix = [ ([| 2 |], 0.5); ([| 5 |], 0.3); ([| 9 |], 0.2) ];
        }
      engine ~make_input
  in
  Engine.shutdown engine;
  Alcotest.(check bool) "offered some load" true (r.Loadgen.offered > 0);
  Alcotest.(check bool) "completed what was accepted" true
    (r.Loadgen.summary.Stats.s_completed
     = r.Loadgen.summary.Stats.s_submitted - r.Loadgen.summary.Stats.s_rejected
       - r.Loadgen.summary.Stats.s_timeouts - r.Loadgen.summary.Stats.s_errors);
  Alcotest.(check bool) "latencies measured" true
    (r.Loadgen.summary.Stats.s_completed = 0
     || r.Loadgen.summary.Stats.s_p99_ms >= r.Loadgen.summary.Stats.s_p50_ms)

let () =
  Alcotest.run "serve"
    [
      ( "bucket",
        [
          Alcotest.test_case "exact" `Quick test_bucket_exact;
          Alcotest.test_case "pad rounds up" `Quick test_bucket_pad;
          Alcotest.test_case "cap falls back" `Quick test_bucket_cap;
        ] );
      ( "squeue",
        [
          Alcotest.test_case "backpressure + drain" `Quick test_squeue_backpressure;
          Alcotest.test_case "close race with producers" `Quick test_squeue_close_race;
        ] );
      ("cache", [ Alcotest.test_case "serialize->link round trip" `Quick test_cache_roundtrip ]);
      ( "engine",
        [
          Alcotest.test_case "concurrent batched == sequential (bitwise)" `Quick
            test_concurrent_bitwise;
          Alcotest.test_case "full queue rejects" `Quick test_engine_backpressure;
          Alcotest.test_case "deadline timeouts" `Quick test_engine_timeout;
          Alcotest.test_case "shutdown drains" `Quick test_shutdown_drains;
        ] );
      ("loadgen", [ Alcotest.test_case "open-loop smoke" `Quick test_loadgen_smoke ]);
    ]
