(* VM tests: hand-assembled bytecode exercising each instruction class,
   object model, profiler, error paths. *)

open Nimble_tensor
open Nimble_vm

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-6 ~rtol:1e-6)

(* Assemble a one-function executable. *)
let assemble ?(arity = 0) ?(constants = [||]) ?(packed = []) ~regs code =
  let exe =
    Exe.create
      ~funcs:[| { Exe.name = "main"; arity; register_count = regs; code } |]
      ~constants
      ~packed_names:(Array.of_list (List.map (fun (n, k, _) -> (n, k)) packed))
  in
  List.iter (fun (n, k, f) -> Exe.link exe { Exe.packed_name = n; kind = k; mode = None; run = f }) packed;
  exe

let run ?(args = []) exe = Interp.invoke (Interp.create exe) args

(* ---------------------------- basics ---------------------------- *)

let test_load_const_ret () =
  let t = Tensor.of_float_array [| 2 |] [| 1.; 2. |] in
  let exe =
    assemble ~constants:[| t |] ~regs:2
      [| Isa.LoadConst { index = 0; dst = 0 }; Isa.Ret { result = 0 } |]
  in
  Alcotest.check tensor_eq "const" t (Obj.to_tensor (run exe))

let test_move_and_consti () =
  let exe =
    assemble ~regs:3
      [|
        Isa.LoadConsti { value = 42L; dst = 0 };
        Isa.Move { src = 0; dst = 1 };
        Isa.Ret { result = 1 };
      |]
  in
  match run exe with
  | Obj.Int v -> Alcotest.(check int64) "42" 42L v
  | _ -> Alcotest.fail "expected int"

let test_goto_skips () =
  let exe =
    assemble ~regs:2
      [|
        Isa.LoadConsti { value = 1L; dst = 0 };
        Isa.Goto 2;
        Isa.LoadConsti { value = 99L; dst = 0 };
        Isa.Ret { result = 0 };
      |]
  in
  match run exe with
  | Obj.Int v -> Alcotest.(check int64) "skipped" 1L v
  | _ -> Alcotest.fail "expected int"

let test_if_equal_jumps () =
  (* if r0 == r1 then 100 else 200 *)
  let code tv =
    [|
      Isa.LoadConsti { value = tv; dst = 0 };
      Isa.LoadConsti { value = 5L; dst = 1 };
      Isa.If { test = 0; target = 1; true_offset = 1; false_offset = 3 };
      Isa.LoadConsti { value = 100L; dst = 2 };
      Isa.Goto 2;
      Isa.LoadConsti { value = 200L; dst = 2 };
      Isa.Ret { result = 2 };
    |]
  in
  (match run (assemble ~regs:3 (code 5L)) with
  | Obj.Int v -> Alcotest.(check int64) "equal" 100L v
  | _ -> Alcotest.fail "int");
  match run (assemble ~regs:3 (code 6L)) with
  | Obj.Int v -> Alcotest.(check int64) "not equal" 200L v
  | _ -> Alcotest.fail "int"

(* ---------------------------- ADTs / closures ---------------------------- *)

let test_adt_roundtrip () =
  let exe =
    assemble ~regs:4
      [|
        Isa.LoadConsti { value = 7L; dst = 0 };
        Isa.AllocADT { tag = 3; fields = [| 0 |]; dst = 1 };
        Isa.GetTag { obj = 1; dst = 2 };
        Isa.GetField { obj = 1; index = 0; dst = 3 };
        Isa.Ret { result = 2 };
      |]
  in
  match run exe with
  | Obj.Int tag -> Alcotest.(check int64) "tag" 3L tag
  | _ -> Alcotest.fail "int"

let test_invoke_and_closure () =
  (* fn helper(a) = a; main allocates closure over it and calls it *)
  let helper =
    { Exe.name = "helper"; arity = 2; register_count = 2; code = [| Isa.Ret { result = 1 } |] }
  in
  let main =
    {
      Exe.name = "main";
      arity = 0;
      register_count = 4;
      code =
        [|
          Isa.LoadConsti { value = 11L; dst = 0 };
          (* closure captures r0; calling with one arg passes (captured, arg) *)
          Isa.AllocClosure { func_index = 1; captured = [| 0 |]; dst = 1 };
          Isa.LoadConsti { value = 22L; dst = 2 };
          Isa.InvokeClosure { closure = 1; args = [| 2 |]; dst = 3 };
          Isa.Ret { result = 3 };
        |];
    }
  in
  let exe = Exe.create ~funcs:[| main; helper |] ~constants:[||] ~packed_names:[||] in
  match run exe with
  | Obj.Int v -> Alcotest.(check int64) "arg after captured" 22L v
  | _ -> Alcotest.fail "int"

let test_recursion_limit () =
  (* fn main() = main() *)
  let main =
    {
      Exe.name = "main";
      arity = 0;
      register_count = 1;
      code = [| Isa.Invoke { func_index = 0; args = [||]; dst = 0 }; Isa.Ret { result = 0 } |];
    }
  in
  let exe = Exe.create ~funcs:[| main |] ~constants:[||] ~packed_names:[||] in
  let vm = Interp.create ~max_depth:50 exe in
  Alcotest.check_raises "limit" (Interp.Vm_error "VM recursion limit exceeded") (fun () ->
      ignore (Interp.invoke vm []))

(* ---------------------------- memory + packed ---------------------------- *)

let shape_const dims = Tensor.of_int_array ~dtype:Dtype.I64 [| Array.length dims |] dims

let test_alloc_and_packed () =
  (* storage + tensor alloc + invoke a doubling kernel *)
  let double = ("double", `Kernel, fun ins -> [ Ops_elem.mul_scalar (List.hd ins) 2.0 ]) in
  let exe =
    assemble ~arity:1
      ~constants:[| shape_const [| 3 |] |]
      ~packed:[ double ] ~regs:5
      [|
        Isa.LoadConst { index = 0; dst = 1 };
        Isa.AllocStorage
          { size = 1; alignment = 64; dtype = Dtype.F32; device_id = 0; arena = false; dst = 2 };
        Isa.AllocTensor { storage = 2; offset = 0; shape = [| 3 |]; dtype = Dtype.F32; dst = 3 };
        Isa.InvokePacked { packed_index = 0; args = [| 0 |]; outs = [| 3 |]; upper_bound = false };
        Isa.Ret { result = 3 };
      |]
  in
  let input = Tensor.of_float_array [| 3 |] [| 1.; 2.; 3. |] in
  let out = Obj.to_tensor (run ~args:[ Obj.tensor input ] exe) in
  Alcotest.check tensor_eq "doubled" (Tensor.of_float_array [| 3 |] [| 2.; 4.; 6. |]) out

let test_packed_shape_mismatch_rejected () =
  let bad = ("bad", `Kernel, fun _ -> [ Tensor.zeros [| 4 |] ]) in
  let exe =
    assemble ~arity:1
      ~constants:[| shape_const [| 3 |] |]
      ~packed:[ bad ] ~regs:5
      [|
        Isa.LoadConst { index = 0; dst = 1 };
        Isa.AllocStorage
          { size = 1; alignment = 64; dtype = Dtype.F32; device_id = 0; arena = false; dst = 2 };
        Isa.AllocTensor { storage = 2; offset = 0; shape = [| 3 |]; dtype = Dtype.F32; dst = 3 };
        Isa.InvokePacked { packed_index = 0; args = [| 0 |]; outs = [| 3 |]; upper_bound = false };
        Isa.Ret { result = 3 };
      |]
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (run ~args:[ Obj.tensor (Tensor.zeros [| 3 |]) ] exe);
       false
     with Interp.Vm_error _ -> true)

let test_upper_bound_sliced () =
  (* kernel reports a smaller exact shape than the allocated bound *)
  let shrink = ("shrink", `Kernel, fun _ -> [ Tensor.ones [| 2 |] ]) in
  let exe =
    assemble ~arity:1
      ~constants:[| shape_const [| 5 |] |]
      ~packed:[ shrink ] ~regs:5
      [|
        Isa.LoadConst { index = 0; dst = 1 };
        Isa.AllocStorage
          { size = 1; alignment = 64; dtype = Dtype.F32; device_id = 0; arena = false; dst = 2 };
        Isa.AllocTensor { storage = 2; offset = 0; shape = [| 5 |]; dtype = Dtype.F32; dst = 3 };
        Isa.InvokePacked { packed_index = 0; args = [| 0 |]; outs = [| 3 |]; upper_bound = true };
        Isa.Ret { result = 3 };
      |]
  in
  let out = Obj.to_tensor (run ~args:[ Obj.tensor (Tensor.zeros [| 1 |]) ] exe) in
  Alcotest.(check (array int)) "exact shape" [| 2 |] (Tensor.shape out)

let test_shape_of_reshape () =
  let exe =
    assemble ~arity:1 ~regs:4
      ~constants:[| shape_const [| 3; 2 |] |]
      [|
        Isa.ShapeOf { tensor = 0; dst = 1 };
        Isa.LoadConst { index = 0; dst = 2 };
        Isa.ReshapeTensor { tensor = 0; shape = 2; dst = 3 };
        Isa.Ret { result = 3 };
      |]
  in
  let input = Tensor.of_float_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let out = Obj.to_tensor (run ~args:[ Obj.tensor input ] exe) in
  Alcotest.(check (array int)) "reshaped" [| 3; 2 |] (Tensor.shape out)

let test_device_copy_instruction () =
  let exe =
    assemble ~arity:1 ~regs:2
      [| Isa.DeviceCopy { src = 0; dst_device_id = 1; dst = 1 }; Isa.Ret { result = 1 } |]
  in
  let vm = Interp.create exe in
  match Interp.invoke vm [ Obj.tensor (Tensor.ones [| 4 |]) ] with
  | Obj.Tensor p ->
      Alcotest.(check int) "on gpu" 1 p.Obj.device.Nimble_device.Device.id;
      let prof = Interp.profiler vm in
      Alcotest.(check int) "transfer recorded" 1
        (Nimble_device.Pool.total_transfers prof.Profiler.pool)
  | _ -> Alcotest.fail "tensor expected"

let test_fatal () =
  let exe = assemble ~regs:1 [| Isa.Fatal "boom" |] in
  Alcotest.check_raises "fatal" (Interp.Vm_error "fatal: boom") (fun () -> ignore (run exe))

(* ---------------------------- profiler ---------------------------- *)

let test_profiler_counts () =
  let exe =
    assemble ~regs:2
      [|
        Isa.LoadConsti { value = 1L; dst = 0 };
        Isa.Move { src = 0; dst = 1 };
        Isa.Ret { result = 1 };
      |]
  in
  let vm = Interp.create exe in
  ignore (Interp.invoke vm []);
  let p = Interp.profiler vm in
  Alcotest.(check int) "instr count" 3 (Profiler.total_instrs p);
  Alcotest.(check int) "moves" 1 p.Profiler.instr_counts.(Isa.opcode (Isa.Move { src = 0; dst = 0 }))

let test_isa_has_twenty_opcodes () =
  Alcotest.(check int) "21 instructions (Table A.1 + BindArena)" 21 Isa.num_opcodes

(* ---------------------------- entry guards ---------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let expect_guard_failure vm args substrings =
  match Interp.invoke_result vm args with
  | Ok _ -> Alcotest.fail "ill-typed call passed the entry guard"
  | Error fl ->
      Alcotest.(check string) "failure kind" "shape_guard"
        (Interp.kind_name fl.Interp.fail_kind);
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "message %S mentions %S" fl.Interp.fail_msg s)
            true
            (contains fl.Interp.fail_msg s))
        substrings

(* main(x) = x with x declared as a [3] f32 tensor *)
let guarded_identity ~guards =
  let exe = assemble ~arity:1 ~regs:1 [| Isa.Ret { result = 0 } |] in
  Exe.set_guards exe
    [|
      [|
        {
          Exe.g_arg = 0;
          g_name = "x";
          g_dims = [| Exe.Check_exact 3 |];
          g_dtype = Some Dtype.F32;
        };
      |];
    |];
  Interp.create ~guards exe

let test_guard_exact_dim () =
  let vm = guarded_identity ~guards:true in
  (match Interp.invoke_result vm [ Obj.tensor (Tensor.ones [| 3 |]) ] with
  | Ok _ -> ()
  | Error fl -> Alcotest.failf "well-typed call failed: %a" Interp.pp_failure fl);
  expect_guard_failure vm
    [ Obj.tensor (Tensor.ones [| 4 |]) ]
    [ "argument 0 (x)"; "dim 0 is 4 where 3 was declared" ];
  expect_guard_failure vm
    [ Obj.tensor (Tensor.ones [| 3; 1 |]) ]
    [ "argument 0 (x)"; "rank 2 where 1 was declared" ]

let test_guard_dtype () =
  let vm = guarded_identity ~guards:true in
  expect_guard_failure vm
    [ Obj.tensor (Tensor.of_int_array ~dtype:Dtype.I64 [| 3 |] [| 1; 2; 3 |]) ]
    [ "argument 0 (x)"; "dtype" ]

let test_guard_disabled () =
  (* the same ill-typed calls pass when guards are compiled out of the
     interpreter: identity never inspects the tensor *)
  let vm = guarded_identity ~guards:false in
  List.iter
    (fun x ->
      match Interp.invoke_result vm [ x ] with
      | Ok _ -> ()
      | Error fl -> Alcotest.failf "guards off still failed: %a" Interp.pp_failure fl)
    [
      Obj.tensor (Tensor.ones [| 4 |]);
      Obj.tensor (Tensor.of_int_array ~dtype:Dtype.I64 [| 3 |] [| 1; 2; 3 |]);
    ]

(* main(a, b) = a with both leading dims declared as the same symbolic
   Any — the cross-argument equality of Nimble's gradual typing *)
let test_guard_sym_eq () =
  let exe = assemble ~arity:2 ~regs:2 [| Isa.Ret { result = 0 } |] in
  let guard arg name =
    { Exe.g_arg = arg; g_name = name; g_dims = [| Exe.Check_eq 7 |]; g_dtype = None }
  in
  Exe.set_guards exe [| [| guard 0 "a"; guard 1 "b" |] |];
  let vm = Interp.create exe in
  (match
     Interp.invoke_result vm
       [ Obj.tensor (Tensor.ones [| 5 |]); Obj.tensor (Tensor.ones [| 5 |]) ]
   with
  | Ok _ -> ()
  | Error fl -> Alcotest.failf "equal extents rejected: %a" Interp.pp_failure fl);
  expect_guard_failure vm
    [ Obj.tensor (Tensor.ones [| 5 |]); Obj.tensor (Tensor.ones [| 6 |]) ]
    [ "argument 1 (b)"; "dim 0 is 6 but must equal dim 0 of a (= 5)" ]

(* guards emitted by the compiler from declared parameter types *)
let test_guard_compiled () =
  let module Nimble = Nimble_compiler.Nimble in
  let open Nimble_ir in
  let mk () =
    let x =
      Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 6 ]) "x"
    in
    let w = Tensor.ones [| 4; 6 |] in
    Irmod.of_main
      (Expr.fn_def [ x ] (Expr.op_call "dense" [ Expr.Var x; Expr.Const w ]))
  in
  let vm = Interp.create (Nimble.compile (mk ())) in
  (match Interp.invoke_result vm [ Obj.tensor (Tensor.ones [| 5; 6 |]) ] with
  | Ok _ -> ()
  | Error fl -> Alcotest.failf "well-typed call failed: %a" Interp.pp_failure fl);
  expect_guard_failure vm
    [ Obj.tensor (Tensor.ones [| 5; 7 |]) ]
    [ "(x)"; "dim 1 is 7 where 6 was declared" ];
  (* compiled with guards off, the ill-typed call reaches the kernel: the
     failure (if any) is no longer a shape_guard at entry *)
  let off =
    Interp.create
      (Nimble.compile
         ~options:{ Nimble.default_options with Nimble.runtime_guards = false }
         (mk ()))
  in
  match Interp.invoke_result off [ Obj.tensor (Tensor.ones [| 5; 7 |]) ] with
  | Ok _ -> ()
  | Error fl ->
      Alcotest.(check bool)
        (Printf.sprintf "not a guard failure: %s" fl.Interp.fail_msg)
        true
        (fl.Interp.fail_kind <> Interp.Shape_guard)

let () =
  Alcotest.run "vm"
    [
      ( "control",
        [
          Alcotest.test_case "load const / ret" `Quick test_load_const_ret;
          Alcotest.test_case "move / consti" `Quick test_move_and_consti;
          Alcotest.test_case "goto" `Quick test_goto_skips;
          Alcotest.test_case "if equality" `Quick test_if_equal_jumps;
          Alcotest.test_case "fatal" `Quick test_fatal;
        ] );
      ( "data",
        [
          Alcotest.test_case "adt" `Quick test_adt_roundtrip;
          Alcotest.test_case "invoke / closure" `Quick test_invoke_and_closure;
          Alcotest.test_case "recursion limit" `Quick test_recursion_limit;
        ] );
      ( "memory",
        [
          Alcotest.test_case "alloc + packed" `Quick test_alloc_and_packed;
          Alcotest.test_case "shape mismatch rejected" `Quick test_packed_shape_mismatch_rejected;
          Alcotest.test_case "upper bound sliced" `Quick test_upper_bound_sliced;
          Alcotest.test_case "shape_of / reshape" `Quick test_shape_of_reshape;
          Alcotest.test_case "device copy" `Quick test_device_copy_instruction;
        ] );
      ( "guards",
        [
          Alcotest.test_case "exact dim + rank" `Quick test_guard_exact_dim;
          Alcotest.test_case "dtype" `Quick test_guard_dtype;
          Alcotest.test_case "disabled" `Quick test_guard_disabled;
          Alcotest.test_case "symbolic cross-argument equality" `Quick test_guard_sym_eq;
          Alcotest.test_case "compiler-emitted" `Quick test_guard_compiled;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "instruction counts" `Quick test_profiler_counts;
          Alcotest.test_case "20-instruction ISA" `Quick test_isa_has_twenty_opcodes;
        ] );
    ]
