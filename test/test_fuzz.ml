(* Differential fuzzing: random dataflow graphs are compiled through the
   full Nimble pipeline (ANF, CSE, fusion, manifest alloc, device placement,
   memory planning, bytecode, VM) and checked bit-for-bit against direct
   kernel evaluation — with both static and dynamic leading dimensions, and
   against the static executor where applicable. *)

open Nimble_tensor
open Nimble_ir
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp

(* ---------------------------------------------------------------- *)
(* Random graph generator: a chain of ops over (rows, cols) matrices  *)
(* with random reuse of earlier values (DAG edges).                   *)
(* ---------------------------------------------------------------- *)

type node =
  | Unary of string * int  (* op, input index *)
  | Binary of string * int * int
  | Dense of Tensor.t * int  (* weight (cols, cols), input index *)
  | Softmax of int

let unary_ops = [| "relu"; "tanh"; "sigmoid"; "negative"; "abs" |]
let binary_ops = [| "add"; "subtract"; "multiply"; "maximum"; "minimum" |]

let gen_graph rng ~cols ~length : node list =
  List.init length (fun i ->
      let pick_input () = Rng.int rng (i + 1) in
      match Rng.int rng 4 with
      | 0 -> Unary (unary_ops.(Rng.int rng (Array.length unary_ops)), pick_input ())
      | 1 ->
          Binary
            ( binary_ops.(Rng.int rng (Array.length binary_ops)),
              pick_input (),
              pick_input () )
      | 2 -> Dense (Tensor.randn ~scale:0.3 rng [| cols; cols |], pick_input ())
      | _ -> Softmax (pick_input ()))

(* Direct evaluation: values.(0) is the input. *)
let eval_graph (nodes : node list) (input : Tensor.t) : Tensor.t =
  let values = ref [| input |] in
  List.iter
    (fun node ->
      let v i = !values.(i) in
      let out =
        match node with
        | Unary (op, i) ->
            List.hd (Nimble_codegen.Op_eval.eval op ~attrs:[] [ v i ])
        | Binary (op, i, j) ->
            List.hd (Nimble_codegen.Op_eval.eval op ~attrs:[] [ v i; v j ])
        | Dense (w, i) -> Ops_matmul.dense (v i) w
        | Softmax i -> Ops_nn.softmax ~axis:(-1) (v i)
      in
      values := Array.append !values [| out |])
    nodes;
  !values.(Array.length !values - 1)

(* IR construction for the same graph. *)
let build_module (nodes : node list) ~(rows : Dim.t) ~cols : Irmod.t =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ rows; Dim.static cols ]) "x" in
  let exprs = ref [| Expr.Var x |] in
  List.iter
    (fun node ->
      let v i = !exprs.(i) in
      let e =
        match node with
        | Unary (op, i) -> Expr.op_call op [ v i ]
        | Binary (op, i, j) -> Expr.op_call op [ v i; v j ]
        | Dense (w, i) -> Expr.op_call "dense" [ v i; Expr.Const w ]
        | Softmax i -> Expr.op_call ~attrs:[ ("axis", Attrs.Int (-1)) ] "softmax" [ v i ]
      in
      exprs := Array.append !exprs [| e |])
    nodes;
  Irmod.of_main (Expr.fn_def [ x ] !exprs.(Array.length !exprs - 1))

let close = Tensor.approx_equal ~atol:1e-3 ~rtol:1e-3

let prop_vm_matches_direct_static =
  QCheck.Test.make ~name:"random graph: VM = direct eval (static shapes)" ~count:40
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 10))
    (fun (seed, length) ->
      let rng = Rng.create ~seed in
      let cols = 2 + Rng.int rng 6 in
      let rows = 1 + Rng.int rng 6 in
      let nodes = gen_graph rng ~cols ~length in
      let m = build_module nodes ~rows:(Dim.static rows) ~cols in
      let vm = Nimble.vm (Nimble.compile m) in
      let input = Tensor.randn ~scale:0.5 rng [| rows; cols |] in
      close (eval_graph nodes input) (Interp.run_tensors vm [ input ]))

let prop_vm_matches_direct_dynamic =
  QCheck.Test.make ~name:"random graph: VM = direct eval (Any rows)" ~count:40
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 10))
    (fun (seed, length) ->
      let rng = Rng.create ~seed in
      let cols = 2 + Rng.int rng 6 in
      let nodes = gen_graph rng ~cols ~length in
      let m = build_module nodes ~rows:Dim.Any ~cols in
      let vm = Nimble.vm (Nimble.compile m) in
      (* one compiled executable, several runtime extents *)
      List.for_all
        (fun rows ->
          let input = Tensor.randn ~scale:0.5 rng [| rows; cols |] in
          close (eval_graph nodes input) (Interp.run_tensors vm [ input ]))
        [ 1; 3; 9 ])

let prop_static_executor_agrees =
  QCheck.Test.make ~name:"random graph: static executor = VM" ~count:25
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 8))
    (fun (seed, length) ->
      let rng = Rng.create ~seed in
      let cols = 2 + Rng.int rng 5 in
      let rows = 1 + Rng.int rng 5 in
      let nodes = gen_graph rng ~cols ~length in
      let m () = build_module nodes ~rows:(Dim.static rows) ~cols in
      let vm = Nimble.vm (Nimble.compile (m ())) in
      let plan = Nimble.compile_static (m ()) in
      let input = Tensor.randn ~scale:0.5 rng [| rows; cols |] in
      close
        (Interp.run_tensors vm [ input ])
        (Nimble_compiler.Static_exec.run plan [ input ]))

let prop_options_do_not_change_results =
  QCheck.Test.make ~name:"random graph: optimization flags preserve semantics" ~count:20
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 8))
    (fun (seed, length) ->
      let rng = Rng.create ~seed in
      let cols = 2 + Rng.int rng 5 in
      let nodes = gen_graph rng ~cols ~length in
      let input = Tensor.randn ~scale:0.5 rng [| 4; cols |] in
      let run options =
        let m = build_module nodes ~rows:Dim.Any ~cols in
        Interp.run_tensors (Nimble.vm (Nimble.compile ~options m)) [ input ]
      in
      let base = run Nimble.default_options in
      List.for_all
        (fun options -> close base (run options))
        [
          { Nimble.default_options with Nimble.fuse = false };
          { Nimble.default_options with Nimble.memory_plan = false };
          { Nimble.default_options with Nimble.dense_dispatch = None };
          { Nimble.default_options with Nimble.dense_dispatch = Some 2 };
        ])

let prop_emitted_bytecode_validates =
  QCheck.Test.make ~name:"random graph: emitted bytecode passes validation" ~count:30
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 10))
    (fun (seed, length) ->
      let rng = Rng.create ~seed in
      let cols = 2 + Rng.int rng 6 in
      let nodes = gen_graph rng ~cols ~length in
      let m = build_module nodes ~rows:Dim.Any ~cols in
      let exe = Nimble.compile m in
      Nimble_vm.Exe.validate exe = []
      && Nimble_analysis.Verifier.verify exe = [])

let prop_serialization_roundtrip_runs =
  QCheck.Test.make ~name:"random graph: serialize/load/relink runs identically" ~count:15
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 8))
    (fun (seed, length) ->
      let rng = Rng.create ~seed in
      let cols = 2 + Rng.int rng 5 in
      let nodes = gen_graph rng ~cols ~length in
      let m = build_module nodes ~rows:Dim.Any ~cols in
      let exe = Nimble.compile m in
      let loaded = Nimble_vm.Serialize.of_bytes (Nimble_vm.Serialize.to_bytes exe) in
      List.iter (Nimble_vm.Exe.link loaded) (Nimble_compiler.Emitter.link_table m);
      let input = Tensor.randn ~scale:0.5 rng [| 3; cols |] in
      close
        (Interp.run_tensors (Nimble.vm exe) [ input ])
        (Interp.run_tensors (Interp.create loaded) [ input ]))

let () =
  Alcotest.run "fuzz"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_vm_matches_direct_static;
            prop_vm_matches_direct_dynamic;
            prop_static_executor_agrees;
            prop_options_do_not_change_results;
            prop_emitted_bytecode_validates;
            prop_serialization_roundtrip_runs;
          ] );
    ]
