(* Online-specialization suite: domain-safety of the dispatch counters
   and last-selection slot, live tuned-kernel installs (bitwise-equal
   outputs, eviction at the cap), the tuner's measurement protocol, the
   synchronous close-the-loop path, NMBLEXE4 tune-table persistence
   (roundtrip, verifier rejections, warm-restart relink), dead-register
   compaction, and chaos — kernel_launch faults while the tuner installs
   into a serving engine. *)

open Nimble_tensor
open Nimble_ir
module Serve = Nimble_serve
module Fault = Nimble_fault.Fault
module Nimble = Nimble_compiler.Nimble
module Emitter = Nimble_compiler.Emitter
module Interp = Nimble_vm.Interp
module Obj = Nimble_vm.Obj
module Exe = Nimble_vm.Exe
module Serialize = Nimble_vm.Serialize
module Verifier = Nimble_analysis.Verifier
module Compact = Nimble_analysis.Compact
module Diag = Nimble_analysis.Diag
module Dispatch = Nimble_codegen.Dispatch
module Tuner = Nimble_codegen.Tuner
module Autotune = Nimble_codegen.Autotune

let tensor_bitwise = Alcotest.testable Tensor.pp Tensor.equal
let rng = Rng.create ~seed:211

(* the same minimal dynamic model as test_serve: dense + relu over a
   dynamic leading dimension *)
let feature_dim = 6
let out_dim = 4

let make_module w =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static feature_dim ]) "x" in
  let body = Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  Irmod.of_main (Expr.fn_def [ x ] body)

let shared_w = Tensor.randn rng [| out_dim; feature_dim |]

(* sparse dispatch (2 of 8 residues) so uncovered extents exist to tune *)
let sparse_opts = { Nimble.default_options with Nimble.dense_dispatch = Some 2 }

let link_options =
  {
    Emitter.dense_dispatch = sparse_opts.Nimble.dense_dispatch;
    profile_extern = sparse_opts.Nimble.profile_extern;
    guards = sparse_opts.Nimble.runtime_guards;
  }

(* the dense dispatcher the executable's packed kernel routes through
   (newest registration of that name wins across relinks) *)
let dispatcher exe =
  Array.to_list exe.Exe.packed_names
  |> List.filter_map (fun (name, kind) ->
         match kind with `Kernel -> Dispatch.find ~name | `Shape_func -> None)
  |> function
  | d :: _ -> d
  | [] -> Alcotest.fail "no dense dispatcher registered for executable"

let kernel_name exe =
  match
    Array.find_opt (fun (_, kind) -> kind = `Kernel) exe.Exe.packed_names
  with
  | Some (n, _) -> n
  | None -> Alcotest.fail "executable has no packed kernel"

let shape_func_name exe =
  match
    Array.find_opt (fun (_, kind) -> kind = `Shape_func) exe.Exe.packed_names
  with
  | Some (n, _) -> n
  | None -> Alcotest.fail "executable has no shape function"

(* ----------------------- histogram & counters ----------------------- *)

let test_extent_histogram () =
  let d = Dispatch.create ~name:"hist_test" ~num_kernels:2 () in
  let w = Tensor.randn rng [| out_dim; feature_dim |] in
  let call m = ignore (Dispatch.run d (Tensor.randn rng [| m; feature_dim |]) w) in
  List.iter call [ 5; 5; 5; 8; 8; 13 ];
  Alcotest.(check (list (pair int int)))
    "exact per-extent counts"
    [ (5, 3); (8, 2); (13, 1) ]
    (Dispatch.extent_histogram d);
  Alcotest.(check (option (pair int int)))
    "weight dims observed" (Some (out_dim, feature_dim)) (Dispatch.observed_dims d);
  let hits, misses = Dispatch.stats d in
  Alcotest.(check int) "every call routed" 6 (hits + misses)

let test_counters_concurrent () =
  let d = Dispatch.create ~name:"conc_test" ~num_kernels:2 () in
  let per_domain = 400 and n_domains = 4 in
  let worker seed () =
    let rng = Rng.create ~seed in
    let w = Tensor.randn rng [| out_dim; feature_dim |] in
    for i = 1 to per_domain do
      let m = 1 + ((i + seed) mod 7) in
      ignore (Dispatch.run d (Tensor.randn rng [| m; feature_dim |]) w)
    done
  in
  let domains = List.init n_domains (fun i -> Domain.spawn (worker (100 + i))) in
  List.iter Domain.join domains;
  let hits, misses = Dispatch.stats d in
  let total = hits + misses + Dispatch.tuned_calls d in
  Alcotest.(check int) "atomic counters lose nothing" (n_domains * per_domain) total;
  let hist_total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 (Dispatch.extent_histogram d)
  in
  Alcotest.(check int) "histogram agrees" (n_domains * per_domain) hist_total

let test_reset_snapshots_concurrent () =
  let d = Dispatch.create ~name:"reset_test" ~num_kernels:2 () in
  Dispatch.install_tuned d ~extent:42 ~tile_m:4;
  let stop = Atomic.make false in
  let mutator seed () =
    let rng = Rng.create ~seed in
    let w = Tensor.randn rng [| out_dim; feature_dim |] in
    while not (Atomic.get stop) do
      ignore (Dispatch.run d (Tensor.randn rng [| 1 + (seed mod 9); feature_dim |]) w)
    done
  in
  let domains = List.init 3 (fun i -> Domain.spawn (mutator (7 + i))) in
  (* snapshots and resets race the mutators: none may crash or produce a
     torn snapshot (negative or inconsistent counters) *)
  for _ = 1 to 50 do
    List.iter
      (fun (s : Dispatch.snapshot) ->
        Alcotest.(check bool) "snapshot counters non-negative" true
          (s.Dispatch.snap_hits >= 0 && s.Dispatch.snap_misses >= 0
          && s.Dispatch.snap_tuned_calls >= 0))
      (Dispatch.snapshots ());
    Dispatch.reset_counters ()
  done;
  Atomic.set stop true;
  List.iter Domain.join domains;
  Dispatch.reset_counters ();
  Alcotest.(check (pair int int)) "reset zeroes stats" (0, 0) (Dispatch.stats d);
  Alcotest.(check int) "reset zeroes tuned calls" 0 (Dispatch.tuned_calls d);
  Alcotest.(check (list (pair int int)))
    "reset zeroes histogram" [] (Dispatch.extent_histogram d);
  Alcotest.(check (option int))
    "installed entries survive reset" (Some 4) (Dispatch.pretuned d ~extent:42)

let test_last_selection_domain_local () =
  let d = Dispatch.create ~name:"dls_test" ~tile:8 ~num_kernels:8 () in
  let w = Tensor.randn rng [| out_dim; feature_dim |] in
  ignore (Dispatch.run d (Tensor.randn rng [| 3; feature_dim |]) w);
  let mine = Dispatch.last_selection () in
  Alcotest.(check bool) "this domain saw its hit" true
    (match mine with Some ("dls_test", Dispatch.Hit 3) -> true | _ -> false);
  (* another domain's selection must not leak into this domain's slot *)
  let theirs =
    Domain.join
      (Domain.spawn (fun () ->
           ignore (Dispatch.run d (Tensor.randn rng [| 5; feature_dim |]) w);
           Dispatch.last_selection ()))
  in
  Alcotest.(check bool) "other domain saw its own hit" true
    (match theirs with Some ("dls_test", Dispatch.Hit 5) -> true | _ -> false);
  Alcotest.(check bool) "this domain's slot unchanged" true
    (Dispatch.last_selection () = mine);
  Dispatch.clear_last_selection ();
  Alcotest.(check bool) "clear is local too" true (Dispatch.last_selection () = None)

(* --------------------------- live installs --------------------------- *)

let test_install_live_bitwise () =
  let d = Dispatch.create ~name:"install_test" ~num_kernels:0 () in
  let w = Tensor.randn rng [| out_dim; feature_dim |] in
  let extent = 21 in
  let x = Tensor.randn rng [| extent; feature_dim |] in
  let reference = Dispatch.run d x w in
  (* readers hammer the dispatcher while installs/replacements land *)
  let stop = Atomic.make false in
  let readers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let bad = ref 0 in
            while not (Atomic.get stop) do
              if not (Tensor.equal reference (Dispatch.run d x w)) then incr bad
            done;
            !bad))
  in
  List.iter
    (fun tile_m -> Dispatch.install_tuned d ~extent ~tile_m)
    [ 1; 2; 4; 8; 16; 4 ];
  ignore (Dispatch.run d x w);
  Atomic.set stop true;
  let bad = List.fold_left (fun acc dm -> acc + Domain.join dm) 0 readers in
  Alcotest.(check int) "bitwise-equal across every install" 0 bad;
  Alcotest.(check bool) "tuned entry now serves" true (Dispatch.tuned_calls d > 0);
  Alcotest.(check bool) "last install wins" true
    (match Dispatch.last_selection () with
    | Some ("install_test", Dispatch.Tuned 21) -> true
    | _ -> false);
  Alcotest.(check (option int)) "replacement kept one entry" (Some 4)
    (Dispatch.pretuned d ~extent)

let test_install_eviction () =
  let d = Dispatch.create ~name:"evict_test" ~num_kernels:0 () in
  Dispatch.install_tuned ~max_exact:2 d ~extent:5 ~tile_m:1;
  Dispatch.install_tuned ~max_exact:2 d ~extent:6 ~tile_m:2;
  Dispatch.install_tuned ~max_exact:2 d ~extent:7 ~tile_m:4;
  Alcotest.(check (list (pair int int)))
    "oldest evicted at the cap" [ (6, 2); (7, 4) ] (Dispatch.tuned_decisions d);
  Alcotest.(check int) "eviction counted" 1
    (Dispatch.snapshot_of d).Dispatch.snap_evictions;
  Alcotest.check_raises "non-positive extent rejected"
    (Invalid_argument "Dispatch.install_tuned: extent 0") (fun () ->
      Dispatch.install_tuned d ~extent:0 ~tile_m:1);
  Alcotest.check_raises "non-positive tile rejected"
    (Invalid_argument "Dispatch.install_tuned: tile_m 0") (fun () ->
      Dispatch.install_tuned d ~extent:3 ~tile_m:0)

(* ------------------------- tuner measurement ------------------------- *)

let test_tuner_protocol () =
  let r =
    Tuner.tune ~static_stand_in:12 ~eval_extents:[ 12; 5 ] ~repeats:2 ~warmup:1
      ~n:out_dim ~k:feature_dim ()
  in
  Alcotest.(check int) "repeats surfaced in result" 2 r.Tuner.repeats;
  Alcotest.(check int) "warmup surfaced in result" 1 r.Tuner.warmup;
  Alcotest.(check int) "tuned on the stand-in" 12 r.Tuner.tuned_on;
  Alcotest.(check bool) "winner comes from the search space" true
    (List.mem r.Tuner.best Tuner.default_space);
  Alcotest.(check bool) "cross-eval covered both extents" true
    (List.for_all
       (fun m -> List.exists (fun (e : Tuner.measurement) -> e.Tuner.shape_m = m)
            r.Tuner.cross_eval)
       [ 12; 5 ]);
  (* monotonic-clock medians: strictly positive wall time per point *)
  Alcotest.(check bool) "monotonic timings positive" true
    (List.for_all (fun (e : Tuner.measurement) -> e.Tuner.seconds > 0.0)
       r.Tuner.cross_eval);
  let s = Tuner.measure ~repeats:2 ~warmup:1 ~n:out_dim ~k:feature_dim
      { Tuner.tile_m = 4 } 12
  in
  Alcotest.(check bool) "measure is positive" true (s > 0.0)

(* ----------------------- close the loop (sync) ----------------------- *)

let test_sync_close_the_loop () =
  (* zero every registered dispatcher so only this test's extent is hot *)
  Dispatch.reset_counters ();
  let d = Dispatch.create ~name:"sync_loop_test" ~num_kernels:0 () in
  let w = Tensor.randn rng [| out_dim; feature_dim |] in
  let hot = 19 in
  let x = Tensor.randn rng [| hot; feature_dim |] in
  let reference = Dispatch.run d x w in
  for _ = 2 to 24 do
    ignore (Dispatch.run d x w)
  done;
  let au =
    Autotune.create
      ~config:
        {
          Autotune.default_config with
          Autotune.hot_threshold = 16;
          scan_interval = 2;
          synchronous = true;
          repeats = 1;
          warmup = 0;
        }
      ()
  in
  (* observe counts batches; every scan_interval-th triggers a scan, and
     in synchronous mode the tune+install completes before observe returns *)
  Autotune.observe au;
  Autotune.observe au;
  let summary = Autotune.summary au in
  Alcotest.(check int) "two observations" 2 summary.Autotune.au_observations;
  Alcotest.(check int) "one scan at the interval" 1 summary.Autotune.au_scans;
  Alcotest.(check int) "hot extent queued once" 1 summary.Autotune.au_queued;
  Alcotest.(check int) "nothing pending after sync run" 0 summary.Autotune.au_pending;
  (match Autotune.installs au with
  | [ inst ] ->
      Alcotest.(check string) "tuned this dispatcher" "sync_loop_test"
        inst.Autotune.in_kernel;
      Alcotest.(check int) "tuned the hot extent" hot inst.Autotune.in_extent;
      Alcotest.(check bool) "tile from the space" true
        (List.mem { Tuner.tile_m = inst.Autotune.in_tile_m } Tuner.default_space);
      Alcotest.(check bool) "hit rate before was all-miss" true
        (inst.Autotune.in_hit_rate_before = 0.0);
      Alcotest.(check bool) "tuning time measured" true (inst.Autotune.in_seconds > 0.0)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 install, got %d" (List.length l)));
  Alcotest.(check bool) "winner installed live" true
    (Dispatch.pretuned d ~extent:hot <> None);
  (* the specialized kernel now serves the hot extent, bitwise-equal *)
  Alcotest.check tensor_bitwise "re-tuned output bitwise" reference
    (Dispatch.run d x w);
  Alcotest.(check bool) "tuned entry fires" true (Dispatch.tuned_calls d > 0);
  (* a second scan skips the already-tuned extent: nothing new queued *)
  Autotune.scan au;
  Alcotest.(check int) "pretuned extent not requeued" 1
    (Autotune.summary au).Autotune.au_queued;
  Autotune.shutdown au;
  Alcotest.(check bool) "hit rate reflects tuned traffic" true
    (Autotune.hit_rate d > 0.0)

(* --------------------- persistence & verification --------------------- *)

let test_tune_table_roundtrip () =
  let exe = Nimble.compile ~options:sparse_opts (make_module shared_w) in
  let tunes =
    [| { Exe.tn_kernel = kernel_name exe; tn_extent = 21; tn_tile_m = 4 };
       { Exe.tn_kernel = kernel_name exe; tn_extent = 13; tn_tile_m = 8 } |]
  in
  Exe.set_tunes exe tunes;
  Alcotest.(check (list string)) "tune table verifies" []
    (List.map Diag.to_string (Verifier.verify exe));
  let exe2 = Verifier.of_bytes (Serialize.to_bytes exe) in
  Alcotest.(check int) "decisions survive the roundtrip" 2 (Array.length exe2.Exe.tunes);
  Array.iteri
    (fun i (tn : Exe.tune) ->
      Alcotest.(check string) "kernel preserved" tunes.(i).Exe.tn_kernel tn.Exe.tn_kernel;
      Alcotest.(check int) "extent preserved" tunes.(i).Exe.tn_extent tn.Exe.tn_extent;
      Alcotest.(check int) "tile preserved" tunes.(i).Exe.tn_tile_m tn.Exe.tn_tile_m)
    exe2.Exe.tunes

let test_verifier_rejects_bad_tunes () =
  let exe = Nimble.compile ~options:sparse_opts (make_module shared_w) in
  let kernel = kernel_name exe in
  let tune_diags tunes =
    Exe.set_tunes exe tunes;
    Verifier.verify exe |> List.filter (fun d -> d.Diag.d_check = "tune_table")
  in
  let expect_reject name tunes =
    Alcotest.(check bool) name true (tune_diags tunes <> [])
  in
  expect_reject "unknown kernel"
    [| { Exe.tn_kernel = "no_such_kernel"; tn_extent = 5; tn_tile_m = 2 } |];
  expect_reject "shape function is not a kernel"
    [| { Exe.tn_kernel = shape_func_name exe; tn_extent = 5; tn_tile_m = 2 } |];
  expect_reject "non-positive extent"
    [| { Exe.tn_kernel = kernel; tn_extent = 0; tn_tile_m = 2 } |];
  expect_reject "tile_m out of range"
    [| { Exe.tn_kernel = kernel; tn_extent = 5; tn_tile_m = 512 } |];
  expect_reject "duplicate (kernel, extent)"
    [| { Exe.tn_kernel = kernel; tn_extent = 5; tn_tile_m = 2 };
       { Exe.tn_kernel = kernel; tn_extent = 5; tn_tile_m = 4 } |];
  Alcotest.(check (list string)) "valid table accepted again" []
    (List.map Diag.to_string
       (tune_diags [| { Exe.tn_kernel = kernel; tn_extent = 5; tn_tile_m = 2 } |]))

let test_warm_restart_pretuned () =
  (* cold path: compile, serialize, verify, link — keeping the processed
     module in hand, since kernel names are baked into the artifact *)
  let m = make_module shared_w in
  let compiled = Nimble.compile ~options:sparse_opts m in
  let exe = Verifier.of_bytes (Serialize.to_bytes compiled) in
  List.iter (Exe.link exe) (Emitter.link_table ~options:link_options m);
  Alcotest.(check int) "no decisions yet" 0 (Serve.Cache.persist_tunes exe);
  (* reference through the guarded-fallback route, before any install (the
     serialized constants are f32-rounded, so the reference must come from
     a roundtripped executable too) *)
  let x = Tensor.randn rng [| 21; feature_dim |] in
  let reference = Interp.run_tensors (Interp.create exe) [ x ] in
  (* serve-time specialization lands in the live table *)
  Dispatch.install_tuned (dispatcher exe) ~extent:21 ~tile_m:4;
  Alcotest.(check int) "decision persisted" 1 (Serve.Cache.persist_tunes exe);
  Alcotest.(check (list string)) "persisted table verifies" []
    (List.map Diag.to_string (Verifier.verify exe));
  (* warm restart: decode the checkpoint, relink, replay the table *)
  let exe2 = Verifier.of_bytes (Serialize.to_bytes exe) in
  List.iter (Exe.link exe2) (Emitter.link_table ~options:link_options m);
  Alcotest.(check int) "decision replayed on relink" 1 (Serve.Cache.apply_tunes exe2);
  Alcotest.(check (option int)) "restart comes back pre-specialized" (Some 4)
    (Dispatch.pretuned (dispatcher exe2) ~extent:21);
  (* the tuned route answers bitwise-identically to the fallback route,
     and the kernel span attributes the call to the tuned selection *)
  let tr = Nimble_vm.Trace.create () in
  let vm2 = Interp.create exe2 in
  Interp.set_trace vm2 (Some tr);
  Alcotest.check tensor_bitwise "pre-specialized run bitwise" reference
    (Interp.run_tensors vm2 [ x ]);
  let tuned_span =
    List.exists
      (fun (s : Nimble_vm.Trace.span) ->
        s.Nimble_vm.Trace.cat = Nimble_vm.Trace.cat_kernel
        && List.mem ("dispatch", Nimble_vm.Trace.Str "tuned") s.Nimble_vm.Trace.args
        && List.mem ("extent", Nimble_vm.Trace.Int 21) s.Nimble_vm.Trace.args)
      (Nimble_vm.Trace.spans tr)
  in
  Alcotest.(check bool) "kernel span tagged dispatch=tuned" true tuned_span

(* ------------------------ register compaction ------------------------ *)

let test_compact_registers () =
  let loose = { sparse_opts with Nimble.compact_registers = false } in
  let exe = Nimble.compile ~options:loose (make_module shared_w) in
  let x = Tensor.randn rng [| 9; feature_dim |] in
  let reference = Interp.run_tensors (Interp.create exe) [ x ] in
  let before = Compact.register_count exe in
  let removed = Compact.run exe in
  Alcotest.(check bool) "compaction removes dead slots" true (removed > 0);
  Alcotest.(check int) "delta accounted" (before - removed) (Compact.register_count exe);
  Alcotest.(check (list string)) "compacted code verifies" []
    (List.map Diag.to_string (Verifier.verify exe));
  Alcotest.check tensor_bitwise "compacted run bitwise" reference
    (Interp.run_tensors (Interp.create exe) [ x ]);
  let report_exe, report = Nimble.compile_with_report (make_module shared_w) in
  Alcotest.(check bool) "report carries the delta" true
    (report.Nimble.registers_after <= report.Nimble.registers_before);
  Alcotest.(check int) "default pipeline already compact" 0 (Compact.run report_exe)

(* ------------------------------- chaos ------------------------------- *)

let with_fault spec f =
  Fun.protect ~finally:Fault.disable (fun () ->
      Fault.configure spec;
      f ())

(* transient kernel-launch faults while the background tuner installs into
   the live table of a serving engine: every accepted request must drain
   (Ok bitwise-equal or a typed failure), and the hot extent must still
   end up specialized *)
let test_chaos_install_under_faults () =
  Dispatch.reset_counters ();
  let m = make_module shared_w in
  let exe = Nimble.compile ~options:sparse_opts m in
  let hot = 21 in
  let requests = 60 in
  let jobs =
    Array.init requests (fun i ->
        let rows = if i mod 4 < 3 then hot else 8 in
        (rows, Tensor.randn rng [| rows; feature_dim |]))
  in
  let reference =
    let vm = Interp.create exe in
    Array.map (fun (_, x) -> Interp.run_tensors vm [ x ]) jobs
  in
  let au =
    Autotune.create
      ~config:
        {
          Autotune.default_config with
          Autotune.hot_threshold = 8;
          scan_interval = 2;
          repeats = 1;
          warmup = 0;
        }
      ()
  in
  with_fault "seed=5;kernel_launch=0.3:transient" (fun () ->
      let engine =
        Serve.Engine.create
          ~config:
            {
              Serve.Engine.default_config with
              Serve.Engine.workers = 2;
              queue_capacity = 256;
              max_batch = 4;
              max_wait_us = 300.0;
            }
          ~autotune:au exe
      in
      let tickets =
        Array.map
          (fun (rows, x) ->
            Serve.Engine.submit engine ~shape:[| rows |] (Obj.tensor x))
          jobs
      in
      let completed = ref 0 and failed = ref 0 and rejected = ref 0 in
      Array.iteri
        (fun i tk ->
          match tk with
          | Error Serve.Engine.Rejected -> incr rejected
          | Error _ -> Alcotest.fail "submit produced a non-reject error"
          | Ok tk -> (
              match Serve.Engine.wait tk with
              | Ok (Obj.Tensor p) ->
                  incr completed;
                  Alcotest.check tensor_bitwise
                    (Printf.sprintf "request %d bitwise under chaos" i)
                    reference.(i) p.Obj.data
              | Ok _ -> Alcotest.fail "non-tensor result"
              | Error (Serve.Engine.Failed _) -> incr failed
              | Error Serve.Engine.Rejected | Error Serve.Engine.Timed_out ->
                  Alcotest.fail "no deadline was set: only Failed is acceptable"))
        tickets;
      Serve.Engine.shutdown engine;
      Alcotest.(check int) "no stranded requests" requests
        (!completed + !failed + !rejected);
      Alcotest.(check bool) "faults actually fired" true
        (List.exists (fun (_, h) -> h > 0) (Fault.hits ())));
  (* tuning work queued during the chaos window finishes off-path *)
  Autotune.drain au;
  Autotune.shutdown au;
  Alcotest.(check bool) "hot extent specialized despite chaos" true
    (Dispatch.pretuned (dispatcher exe) ~extent:hot <> None);
  (* the installed kernel answers bitwise-equal once injection is off *)
  let vm = Interp.create exe in
  Array.iteri
    (fun i (_, x) ->
      Alcotest.check tensor_bitwise
        (Printf.sprintf "request %d bitwise after chaos" i)
        reference.(i)
        (Interp.run_tensors vm [ x ]))
    jobs

let () =
  Alcotest.run "autotune"
    [
      ( "dispatch",
        [
          Alcotest.test_case "extent histogram" `Quick test_extent_histogram;
          Alcotest.test_case "counters exact across domains" `Quick
            test_counters_concurrent;
          Alcotest.test_case "reset/snapshots race mutators" `Quick
            test_reset_snapshots_concurrent;
          Alcotest.test_case "last selection is domain-local" `Quick
            test_last_selection_domain_local;
          Alcotest.test_case "live installs stay bitwise" `Quick
            test_install_live_bitwise;
          Alcotest.test_case "eviction at the cap" `Quick test_install_eviction;
        ] );
      ( "tuner",
        [
          Alcotest.test_case "measurement protocol surfaced" `Quick
            test_tuner_protocol;
          Alcotest.test_case "synchronous close-the-loop" `Quick
            test_sync_close_the_loop;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "tune table roundtrip" `Quick test_tune_table_roundtrip;
          Alcotest.test_case "verifier rejects bad tables" `Quick
            test_verifier_rejects_bad_tunes;
          Alcotest.test_case "warm restart pre-specialized" `Quick
            test_warm_restart_pretuned;
        ] );
      ( "compact",
        [
          Alcotest.test_case "dead registers removed, bitwise" `Quick
            test_compact_registers;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "install under kernel_launch faults" `Quick
            test_chaos_install_under_faults;
        ] );
    ]
