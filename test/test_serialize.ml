(* Serialization tests: instruction/tensor/executable round trips, file IO,
   relinking, corrupt-input rejection — the deployment flow of §5. *)

open Nimble_tensor
open Nimble_ir
open Nimble_vm
module Nimble = Nimble_compiler.Nimble

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-6 ~rtol:1e-6)
let rng = Rng.create ~seed:31

let sample_instrs : Isa.t list =
  [
    Isa.Move { src = 1; dst = 2 };
    Isa.Ret { result = 0 };
    Isa.Invoke { func_index = 3; args = [| 1; 2 |]; dst = 4 };
    Isa.InvokeClosure { closure = 0; args = [| 7 |]; dst = 1 };
    Isa.InvokePacked { packed_index = 2; args = [| 0; 1 |]; outs = [| 3 |]; upper_bound = true };
    Isa.AllocStorage
      { size = 1; alignment = 64; dtype = Dtype.F32; device_id = 1; arena = true; dst = 2 };
    Isa.AllocTensor { storage = 0; offset = 128; shape = [| 2; 3 |]; dtype = Dtype.I64; dst = 1 };
    Isa.AllocTensorReg
      { storage = 0; offset = 0; shape = 5; dtype = Dtype.U8; plan = -1; slot = -1; dst = 6 };
    Isa.AllocADT { tag = 4; fields = [| 1; 2; 3 |]; dst = 0 };
    Isa.AllocClosure { func_index = 9; captured = [||]; dst = 1 };
    Isa.GetField { obj = 1; index = 2; dst = 3 };
    Isa.GetTag { obj = 4; dst = 5 };
    Isa.If { test = 1; target = 2; true_offset = 3; false_offset = -4 };
    Isa.Goto (-7);
    Isa.LoadConst { index = 12; dst = 1 };
    Isa.LoadConsti { value = -123456789L; dst = 2 };
    Isa.DeviceCopy { src = 1; dst_device_id = 1; dst = 2 };
    Isa.ShapeOf { tensor = 3; dst = 4 };
    Isa.ReshapeTensor { tensor = 1; shape = 2; dst = 3 };
    Isa.Fatal "match failure";
  ]

let roundtrip exe = Serialize.of_bytes (Serialize.to_bytes exe)

let test_every_instruction_roundtrips () =
  let exe =
    Exe.create
      ~funcs:
        [|
          {
            Exe.name = "main";
            arity = 2;
            register_count = 16;
            code = Array.of_list sample_instrs;
          };
        |]
      ~constants:[||] ~packed_names:[||]
  in
  let back = roundtrip exe in
  Alcotest.(check int) "instr count" (List.length sample_instrs)
    (Array.length back.Exe.funcs.(0).Exe.code);
  List.iteri
    (fun i orig ->
      let got = back.Exe.funcs.(0).Exe.code.(i) in
      Alcotest.(check string)
        (Fmt.str "instr %d" i)
        (Fmt.str "%a" Isa.pp orig)
        (Fmt.str "%a" Isa.pp got))
    sample_instrs

let test_tensor_constants_roundtrip () =
  let constants =
    [|
      Tensor.randn rng [| 3; 4 |];
      Tensor.of_int_array ~dtype:Dtype.I64 [| 2 |] [| -5; 1000000 |];
      Tensor.of_int_array ~dtype:Dtype.I32 [| 2 |] [| -5; 7 |];
      Tensor.of_int_array ~dtype:Dtype.U8 [| 3 |] [| 0; 128; 255 |];
      Tensor.randn ~dtype:Dtype.F64 rng [| 2; 2 |];
      Tensor.scalar 3.5;
    |]
  in
  let exe =
    Exe.create
      ~funcs:[| { Exe.name = "main"; arity = 0; register_count = 1; code = [| Isa.Ret { result = 0 } |] } |]
      ~constants ~packed_names:[||]
  in
  let back = roundtrip exe in
  Array.iteri
    (fun i t ->
      (* f32 constants lose at most float32 precision *)
      Alcotest.(check bool)
        (Fmt.str "const %d" i)
        true
        (Tensor.approx_equal ~atol:1e-5 ~rtol:1e-5 t back.Exe.constants.(i)))
    constants

let test_packed_names_and_relink () =
  let exe =
    Exe.create
      ~funcs:[| { Exe.name = "main"; arity = 0; register_count = 1; code = [| Isa.Ret { result = 0 } |] } |]
      ~constants:[||]
      ~packed_names:[| ("k1", `Kernel); ("k1$shape", `Shape_func) |]
  in
  let back = roundtrip exe in
  Alcotest.(check bool) "unlinked after load" false (Exe.linked back);
  Exe.link back { Exe.packed_name = "k1"; kind = `Kernel; mode = None; run = (fun x -> x) };
  Exe.link back { Exe.packed_name = "k1$shape"; kind = `Shape_func; mode = Some "data_indep"; run = (fun x -> x) };
  Alcotest.(check bool) "linked" true (Exe.linked back);
  Alcotest.check_raises "unknown name"
    (Invalid_argument "Exe.link: executable has no packed function nope") (fun () ->
      Exe.link back { Exe.packed_name = "nope"; kind = `Kernel; mode = None; run = (fun x -> x) })

let test_compiled_module_roundtrip_and_run () =
  (* full flow: compile -> serialize -> load -> relink -> run *)
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 6 ]) "x" in
  let w = Tensor.randn rng [| 4; 6 |] in
  let body = Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  let m = Irmod.of_main (Expr.fn_def [ x ] body) in
  let exe = Nimble.compile m in
  let loaded = roundtrip exe in
  List.iter (Exe.link loaded) (Nimble_compiler.Emitter.link_table m);
  let input = Tensor.randn rng [| 5; 6 |] in
  let out = Interp.run_tensors (Interp.create loaded) [ input ] in
  Alcotest.check tensor_eq "same result" (Ops_elem.relu (Ops_matmul.dense input w)) out

let test_file_roundtrip () =
  let exe =
    Exe.create
      ~funcs:[| { Exe.name = "main"; arity = 0; register_count = 1; code = [| Isa.Ret { result = 0 } |] } |]
      ~constants:[| Tensor.ones [| 2 |] |]
      ~packed_names:[||]
  in
  let path = Filename.temp_file "nimble_test" ".exe" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () ->
      Serialize.save_file exe path;
      let back = Serialize.load_file path in
      Alcotest.(check int) "constants" 1 (Array.length back.Exe.constants))

let test_corrupt_input_rejected () =
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Serialize.of_bytes "NOTANEXE++++");
       false
     with Serialize.Format_error _ -> true);
  Alcotest.(check bool) "truncated" true
    (try
       ignore (Serialize.of_bytes "NMBLEXE2\x05");
       false
     with Serialize.Format_error _ -> true);
  (* valid header, garbage body *)
  Alcotest.(check bool) "garbage body" true
    (try
       ignore (Serialize.of_bytes ("NMBLEXE2" ^ String.make 40 '\xff'));
       false
     with Serialize.Format_error _ -> true)

(* The decoder only checks the wire format; a semantically corrupt
   executable (here: a register index past register_count, as a splicing
   attacker or a bit flip in the register field would produce) decodes fine
   and must be caught by the bytecode verifier layered on top. *)
let test_verifier_catches_what_decoder_accepts () =
  let exe =
    Exe.create
      ~funcs:
        [|
          {
            Exe.name = "spliced";
            arity = 1;
            register_count = 2;
            code = [| Isa.Move { src = 0; dst = 99 }; Isa.Ret { result = 0 } |];
          };
        |]
      ~constants:[||] ~packed_names:[||]
  in
  let bytes = Serialize.to_bytes exe in
  ignore (Serialize.of_bytes bytes);
  (* format fine *)
  match Nimble_analysis.Verifier.of_bytes bytes with
  | _ -> Alcotest.fail "verifier accepted an out-of-range register"
  | exception Nimble_analysis.Verifier.Verify_error (d :: _) ->
      Alcotest.(check string) "located function" "spliced"
        d.Nimble_analysis.Diag.d_where;
      Alcotest.(check int) "located pc" 0 d.Nimble_analysis.Diag.d_pc
  | exception Nimble_analysis.Verifier.Verify_error [] ->
      Alcotest.fail "empty diagnostic list"

let prop_lstm_exe_roundtrip_stable =
  QCheck.Test.make ~name:"serialized size deterministic" ~count:5 QCheck.unit (fun () ->
      let w = Nimble_models.Lstm.init_weights Nimble_models.Lstm.small_config in
      let exe = Nimble.compile (Nimble_models.Lstm.ir_module w) in
      let b1 = Serialize.to_bytes exe in
      let b2 = Serialize.to_bytes (roundtrip exe) in
      String.length b1 = String.length b2)

let () =
  Alcotest.run "serialize"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "every instruction" `Quick test_every_instruction_roundtrips;
          Alcotest.test_case "tensor constants" `Quick test_tensor_constants_roundtrip;
          Alcotest.test_case "packed names + relink" `Quick test_packed_names_and_relink;
          Alcotest.test_case "compiled module runs after reload" `Quick
            test_compiled_module_roundtrip_and_run;
          Alcotest.test_case "file io" `Quick test_file_roundtrip;
          QCheck_alcotest.to_alcotest prop_lstm_exe_roundtrip_stable;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "corrupt input" `Quick test_corrupt_input_rejected;
          Alcotest.test_case "verifier catches what decoder accepts" `Quick
            test_verifier_catches_what_decoder_accepts;
        ] );
    ]
