(* Shape-value dominance suite: the classification pass must prove the
   posenc model's data-dependent arange static (so fusion crosses the
   formerly dynamic boundary and the result stays bitwise-identical to
   the unclassified pipeline at several dynamic shapes), must NOT prove
   genuinely value-dependent sites (unique; an arange fed by a runtime
   scalar), and the dataflow engine the analyses are re-hosted on must
   agree with a naive round-robin fixpoint on seeded random CFGs. The
   cross-function ADT arity check rides the same engine and is covered
   on hand-built executables at the bottom. *)

open Nimble_tensor
open Nimble_ir
module Nimble = Nimble_compiler.Nimble
module Posenc = Nimble_models.Posenc
module Classify = Nimble_analysis.Classify
module Dataflow = Nimble_analysis.Dataflow
module Verifier = Nimble_analysis.Verifier
module Diag = Nimble_analysis.Diag
module Interp = Nimble_vm.Interp
module Exe = Nimble_vm.Exe
module Isa = Nimble_vm.Isa

let tensor_bitwise = Alcotest.testable Tensor.pp Tensor.equal
let tensor_approx =
  Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4)

(* ------------------------------------------------------------------ *)
(* Posenc: the proven site fuses and stays bitwise at dynamic shapes   *)
(* ------------------------------------------------------------------ *)

let no_classify = { Nimble.default_options with Nimble.classify = false }

let test_posenc_proven_and_fused () =
  let w = Posenc.init_weights Posenc.default_config in
  let m () = Posenc.ir_module w in
  let _, report = Nimble.compile_with_report (m ()) in
  Alcotest.(check int) "one candidate site" 1 report.Nimble.sites_total;
  Alcotest.(check int) "the arange is proven" 1 report.Nimble.classified_static;
  Alcotest.(check bool) "a fused group crosses the boundary" true
    (report.Nimble.fused_across_dynamic >= 1);
  let row =
    List.find (fun r -> r.Nimble.cls_fn = "main") report.Nimble.classify_table
  in
  Alcotest.(check int) "table row sites" 1 row.Nimble.cls_sites;
  Alcotest.(check int) "table row proven" 1 row.Nimble.cls_proven;
  Alcotest.(check bool) "table row fused" true (row.Nimble.cls_fused >= 1);
  (* classification buys strictly coarser kernels than the §4.2 policy
     alone: the Opaque arange no longer splits its consumers *)
  let _, control = Nimble.compile_with_report ~options:no_classify (m ()) in
  Alcotest.(check int) "pass off: nothing counted or proven" 0
    (control.Nimble.sites_total + control.Nimble.classified_static);
  Alcotest.(check bool)
    (Fmt.str "fewer primitives (%d < %d)" report.Nimble.primitives
       control.Nimble.primitives)
    true
    (report.Nimble.primitives < control.Nimble.primitives)

let test_posenc_bitwise_at_dynamic_shapes () =
  let w = Posenc.init_weights Posenc.default_config in
  let vm = Nimble.vm (Nimble.compile (Posenc.ir_module w)) in
  let vm_control =
    Nimble.vm (Nimble.compile ~options:no_classify (Posenc.ir_module w))
  in
  List.iter
    (fun len ->
      let x = Posenc.random_input w ~len in
      let out = Interp.run_tensors vm [ x ] in
      let control = Interp.run_tensors vm_control [ x ] in
      Alcotest.check tensor_bitwise
        (Fmt.str "len=%d bitwise vs unclassified pipeline" len)
        control out;
      Alcotest.check tensor_approx
        (Fmt.str "len=%d vs reference" len)
        (Posenc.reference w x) out)
    [ 3; 7; 19 ]

(* ------------------------------------------------------------------ *)
(* Negative cases: genuinely value-dependent sites stay dynamic        *)
(* ------------------------------------------------------------------ *)

let test_unique_not_proven () =
  (* unique's output extent depends on the tensor's VALUES — no shape
     chain can dominate it, so it must be counted but never proven *)
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any ]) "x" in
  let m = Irmod.of_main (Expr.fn_def [ x ] (Expr.op_call "unique" [ Expr.Var x ])) in
  let _, report = Nimble.compile_with_report m in
  Alcotest.(check int) "site counted" 1 report.Nimble.sites_total;
  Alcotest.(check int) "not proven" 0 report.Nimble.classified_static;
  Alcotest.(check int) "nothing fused across it" 0 report.Nimble.fused_across_dynamic

let test_runtime_scalar_arange_not_proven () =
  (* the stop value is a runtime argument, not shape-derived: the chain
     bottoms out at an unknown scalar and the proof must not fire *)
  let s = Expr.fresh_var ~ty:(Ty.scalar ()) "stop" in
  let m =
    Irmod.of_main
      (Expr.fn_def [ s ]
         (Expr.op_call "arange"
            [ Expr.const_scalar 0.0; Expr.Var s; Expr.const_scalar 1.0 ]))
  in
  let summary = Classify.run m in
  Alcotest.(check int) "site counted" 1 summary.Classify.sites_total;
  Alcotest.(check int) "not proven" 0 summary.Classify.classified_static

(* ------------------------------------------------------------------ *)
(* Engine equivalence: Dataflow.solve vs a naive round-robin fixpoint  *)
(* ------------------------------------------------------------------ *)

(* Reference solver: iterate all nodes in order until nothing changes.
   Same lattice contract as the engine (join_into in place, pure
   transfer); any disagreement is an engine bug. *)
let naive_solve ~direction ~num_nodes ~successors ~transfer ~copy ~join_into
    ~seeds =
  let flow_succs =
    match direction with
    | Dataflow.Forward -> successors
    | Dataflow.Backward ->
        let preds = Array.make num_nodes [] in
        for n = 0 to num_nodes - 1 do
          List.iter
            (fun s ->
              if s >= 0 && s < num_nodes then preds.(s) <- n :: preds.(s))
            (successors n)
        done;
        fun n -> preds.(n)
  in
  let states = Array.make num_nodes None in
  List.iter
    (fun (n, st) ->
      states.(n) <-
        (match states.(n) with
        | None -> Some (copy st)
        | Some acc ->
            ignore (join_into ~into:acc st);
            Some acc))
    seeds;
  let changed = ref true in
  while !changed do
    changed := false;
    for n = 0 to num_nodes - 1 do
      match states.(n) with
      | None -> ()
      | Some st ->
          let out = transfer n (copy st) in
          List.iter
            (fun s ->
              if s >= 0 && s < num_nodes then
                match states.(s) with
                | None ->
                    states.(s) <- Some (copy out);
                    changed := true
                | Some acc -> if join_into ~into:acc out then changed := true)
            (flow_succs n)
    done
  done;
  states

(* gen/kill bit-vector analysis over a seeded random CFG; must-join
   (intersection), the verifier's lattice shape *)
let test_engine_matches_naive_on_seeded_cfgs () =
  List.iter
    (fun seed ->
      let rng = Rng.create ~seed in
      let num_nodes = 3 + Rng.int rng 14 in
      let bits = 8 in
      let succs =
        Array.init num_nodes (fun _ ->
            List.filter
              (fun _ -> Rng.int rng 3 = 0)
              (List.init num_nodes Fun.id))
      in
      let gen = Array.init num_nodes (fun _ -> Rng.int rng (1 lsl bits)) in
      let kill = Array.init num_nodes (fun _ -> Rng.int rng (1 lsl bits)) in
      let transfer n st = st land lnot kill.(n) lor gen.(n) in
      let copy st = st in
      (* intersection join on an int state needs a box to mutate *)
      let solve_with engine direction =
        let states =
          engine ~direction ~num_nodes
            ~successors:(fun n -> succs.(n))
            ~transfer:(fun n r -> ref (transfer n !r))
            ~copy:(fun r -> ref !r)
            ~join_into:(fun ~into s ->
              let j = !into land !s in
              if j <> !into then begin
                into := j;
                true
              end
              else false)
            ~seeds:[ (0, ref ((1 lsl bits) - 1)) ]
        in
        Array.map (Option.map ( ! )) states
      in
      ignore copy;
      List.iter
        (fun direction ->
          let got = solve_with Dataflow.solve direction in
          let want = solve_with naive_solve direction in
          Alcotest.(check (array (option int)))
            (Fmt.str "seed=%d dir=%s" seed
               (match direction with
               | Dataflow.Forward -> "fwd"
               | Dataflow.Backward -> "bwd"))
            want got)
        [ Dataflow.Forward; Dataflow.Backward ])
    [ 1; 2; 3; 5; 8; 13; 21; 34 ]

(* ------------------------------------------------------------------ *)
(* Cross-function ADT arity (Invoke / closure boundaries)              *)
(* ------------------------------------------------------------------ *)

let mk_funcs funcs = Exe.create ~funcs ~constants:[||] ~packed_names:[||]

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let cross_diags exe =
  List.filter
    (fun d -> contains ~affix:"caller" (Diag.to_string d))
    (Verifier.verify exe)

let callee_getfield ?(index = 5) name =
  {
    Exe.name;
    arity = 1;
    register_count = 4;
    code = [| Isa.GetField { obj = 0; index; dst = 1 }; Isa.Ret { result = 1 } |];
  }

let caller_invoke name ~callee_index =
  {
    Exe.name;
    arity = 1;
    register_count = 4;
    code =
      [|
        Isa.AllocADT { tag = 0; fields = [| 0; 0 |]; dst = 1 };
        Isa.Invoke { func_index = callee_index; args = [| 1 |]; dst = 2 };
        Isa.Ret { result = 2 };
      |];
  }

let test_cross_adt_reports_bad_field () =
  (* f builds a 2-field ADT and passes it to g, which reads field 5:
     invisible to the per-function pass, caught by the summary *)
  let exe = mk_funcs [| callee_getfield "g"; caller_invoke "f" ~callee_index:0 |] in
  match cross_diags exe with
  | [ d ] ->
      Alcotest.(check string) "located in g" "g" d.Diag.d_where;
      Alcotest.(check int) "at the GetField" 0 d.Diag.d_pc
  | ds -> Alcotest.failf "expected 1 cross-function diagnostic, got %d" (List.length ds)

let test_cross_adt_silent_without_call_sites () =
  (* no visible caller: g is an external entry point (the interpreter
     invokes any function by name), so nothing may be assumed *)
  let exe = mk_funcs [| callee_getfield "g" |] in
  Alcotest.(check int) "no diagnostics" 0 (List.length (cross_diags exe))

let test_cross_adt_joins_mixed_arities_to_unknown () =
  (* two callers pass 2- and 3-field constructors: the join degrades to
     unknown and the read is not speculated about *)
  let caller3 name ~callee_index =
    {
      Exe.name;
      arity = 1;
      register_count = 5;
      code =
        [|
          Isa.AllocADT { tag = 0; fields = [| 0; 0; 0 |]; dst = 1 };
          Isa.Invoke { func_index = callee_index; args = [| 1 |]; dst = 2 };
          Isa.Ret { result = 2 };
        |];
    }
  in
  let exe =
    mk_funcs
      [|
        callee_getfield "g";
        caller_invoke "f2" ~callee_index:0;
        caller3 "f3" ~callee_index:0;
      |]
  in
  Alcotest.(check int) "no diagnostics" 0 (List.length (cross_diags exe))

let test_cross_adt_closure_captured_prefix () =
  (* the ADT reaches g as a captured closure value; the free parameter
     past the prefix is filled at InvokeClosure sites the summary does
     not track and must stay unconstrained *)
  let g =
    {
      Exe.name = "g";
      arity = 2;
      register_count = 6;
      code =
        [|
          Isa.GetField { obj = 0; index = 5; dst = 2 };
          (* reading through the untracked free parameter is fine *)
          Isa.GetField { obj = 1; index = 9; dst = 3 };
          Isa.Ret { result = 2 };
        |];
    }
  in
  let f =
    {
      Exe.name = "f";
      arity = 1;
      register_count = 4;
      code =
        [|
          Isa.AllocADT { tag = 0; fields = [| 0; 0 |]; dst = 1 };
          Isa.AllocClosure { func_index = 0; captured = [| 1 |]; dst = 2 };
          Isa.Ret { result = 2 };
        |];
    }
  in
  let exe = mk_funcs [| g; f |] in
  match cross_diags exe with
  | [ d ] ->
      Alcotest.(check string) "located in g" "g" d.Diag.d_where;
      Alcotest.(check int) "at the captured-prefix GetField" 0 d.Diag.d_pc
  | ds -> Alcotest.failf "expected 1 cross-function diagnostic, got %d" (List.length ds)

let test_cross_adt_tag_dispatch_guard () =
  (* a GetTag between the summary and the read means the code is
     dispatching on the constructor: the field count is forgotten, as in
     the per-function pass *)
  let g =
    {
      Exe.name = "g";
      arity = 1;
      register_count = 4;
      code =
        [|
          Isa.GetTag { obj = 0; dst = 1 };
          Isa.GetField { obj = 0; index = 5; dst = 2 };
          Isa.Ret { result = 2 };
        |];
    }
  in
  let exe = mk_funcs [| g; caller_invoke "f" ~callee_index:0 |] in
  Alcotest.(check int) "no diagnostics" 0 (List.length (cross_diags exe))

let test_cross_adt_chain_two_calls_deep () =
  (* f builds the ADT, passes it to mid, mid forwards it to g: the
     summary needs a second collection round to see through mid *)
  let mid =
    {
      Exe.name = "mid";
      arity = 1;
      register_count = 4;
      code =
        [|
          Isa.Invoke { func_index = 0; args = [| 0 |]; dst = 1 };
          Isa.Ret { result = 1 };
        |];
    }
  in
  let exe =
    mk_funcs
      [| callee_getfield "g"; mid; caller_invoke "f" ~callee_index:1 |]
  in
  match cross_diags exe with
  | [ d ] -> Alcotest.(check string) "located in g" "g" d.Diag.d_where
  | ds -> Alcotest.failf "expected 1 cross-function diagnostic, got %d" (List.length ds)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "classify"
    [
      ( "posenc",
        [
          Alcotest.test_case "proven site fuses across the boundary" `Quick
            test_posenc_proven_and_fused;
          Alcotest.test_case "bitwise at three dynamic shapes" `Quick
            test_posenc_bitwise_at_dynamic_shapes;
        ] );
      ( "negative",
        [
          Alcotest.test_case "unique stays dynamic" `Quick test_unique_not_proven;
          Alcotest.test_case "runtime-scalar arange stays dynamic" `Quick
            test_runtime_scalar_arange_not_proven;
        ] );
      ( "engine",
        [
          Alcotest.test_case "solve matches naive fixpoint on seeded CFGs"
            `Quick test_engine_matches_naive_on_seeded_cfgs;
        ] );
      ( "cross_adt",
        [
          Alcotest.test_case "caller-built ADT bounds-checked" `Quick
            test_cross_adt_reports_bad_field;
          Alcotest.test_case "external entry points unconstrained" `Quick
            test_cross_adt_silent_without_call_sites;
          Alcotest.test_case "mixed arities join to unknown" `Quick
            test_cross_adt_joins_mixed_arities_to_unknown;
          Alcotest.test_case "closure captured prefix tracked" `Quick
            test_cross_adt_closure_captured_prefix;
          Alcotest.test_case "tag dispatch forgets the field count" `Quick
            test_cross_adt_tag_dispatch_guard;
          Alcotest.test_case "summary flows two calls deep" `Quick
            test_cross_adt_chain_two_calls_deep;
        ] );
    ]
