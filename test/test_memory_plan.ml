(* Symbolic memory planning (docs/MEMORY.md): the compiled plan evaluated
   at sampled shapes must reproduce the planner's concrete layout, served
   results must stay bitwise-equal to sequential runs with the persistent
   arena reused, and storage_alloc faults against the arena must surface
   through the typed channel without corrupting later requests. *)

open Nimble_tensor
open Nimble_ir
open Nimble_serve
module Fault = Nimble_fault.Fault
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp
module Exe = Nimble_vm.Exe
module Obj = Nimble_vm.Obj
module Profiler = Nimble_vm.Profiler
module Sx = Nimble_shape.Sym_expr

let tensor_bitwise = Alcotest.testable Tensor.pp Tensor.equal
let rng = Rng.create ~seed:177

(* dense + relu over a dynamic leading dimension: one bindable symbolic
   dim, several dynamic allocation sites *)
let feature_dim = 6
let out_dim = 4
let shared_w = Tensor.randn rng [| out_dim; feature_dim |]

let make_module () =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static feature_dim ]) "x" in
  let body =
    Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const shared_w ] ]
  in
  Irmod.of_main (Expr.fn_def [ x ] body)

let symbolic_exe () = Nimble.compile (make_module ())

let legacy_exe () =
  Nimble.compile
    ~options:{ Nimble.default_options with Nimble.symbolic_plan = false }
    (make_module ())

(* the dim environment a [BindArena] would build for input shape [shape]:
   each binder reads one dimension of one argument *)
let env_of_plan (p : Exe.plan) (shape : int array) sym =
  match
    Array.find_opt (fun b -> b.Exe.b_sym = sym) p.Exe.p_binders
  with
  | Some b when b.Exe.b_arg = 0 -> shape.(b.Exe.b_dim)
  | Some b -> Alcotest.failf "binder reads argument %d (model has one)" b.Exe.b_arg
  | None -> Alcotest.failf "no binder for symbolic dim %d" sym

let sampled_rows = [ 1; 2; 3; 5; 7; 8; 16; 31; 64 ]

(* Evaluating the symbolic plan at a concrete shape must equal planning
   that shape concretely: the planner tiles the distinct slots
   consecutively (aligned, first-fit over the concrete sizes) after the
   arena's static prefix, so replaying that layout rule over the
   evaluated sizes must land on exactly the evaluated offsets. *)
let test_plan_matches_concrete () =
  let exe = symbolic_exe () in
  Alcotest.(check bool) "a symbolic plan was emitted" true
    (Array.length exe.Exe.plans > 0);
  Array.iter
    (fun (p : Exe.plan) ->
      let align n =
        (n + p.Exe.p_align - 1) / p.Exe.p_align * p.Exe.p_align
      in
      List.iter
        (fun rows ->
          let lookup = env_of_plan p [| rows; feature_dim |] in
          let total = Sx.eval lookup p.Exe.p_total in
          let offs =
            Array.map (fun s -> Sx.eval lookup s.Exe.s_offset) p.Exe.p_slots
          in
          let sizes =
            Array.map (fun s -> Sx.eval lookup s.Exe.s_size) p.Exe.p_slots
          in
          (* concrete replay: consecutive aligned tiling from the static
             prefix (the first slot's offset, a constant of the plan) *)
          let expect = ref offs.(0) in
          Array.iteri
            (fun i off ->
              Alcotest.(check int)
                (Fmt.str "rows=%d slot %d offset" rows i)
                !expect off;
              expect := align (off + sizes.(i)))
            offs;
          (* every slot stays inside the arena at this shape *)
          Array.iteri
            (fun i off ->
              Alcotest.(check bool)
                (Fmt.str "rows=%d slot %d fits total %d" rows i total)
                true
                (off >= 0 && off + sizes.(i) <= total))
            offs)
        sampled_rows)
    exe.Exe.plans

(* One pooled VM across many shapes (large, small, large again): every
   run must be bitwise-equal to a legacy (unplanned) compile of the same
   module, and rebinding — not allocating — must carry the repeats. *)
let test_eval_once_rebind_per_request () =
  let exe = symbolic_exe () in
  let legacy = legacy_exe () in
  let vm = Interp.create ~pooling:true exe in
  let order = sampled_rows @ List.rev sampled_rows @ sampled_rows in
  List.iter
    (fun rows ->
      let x = Tensor.randn rng [| rows; feature_dim |] in
      let got = Interp.run_tensors vm [ x ] in
      let want = Interp.run_tensors (Interp.create legacy) [ x ] in
      Alcotest.check tensor_bitwise (Fmt.str "rows=%d bitwise" rows) want got)
    order;
  Alcotest.(check bool) "persistent arena was rebound" true
    ((Interp.profiler vm).Profiler.arena_rebinds > 0)

(* Serving through the engine with arena reuse on: outputs bitwise-equal
   to a sequential reference, and the engine's stats show the arena
   being reused rather than reallocated. *)
let test_served_bitwise_with_arena_reuse () =
  let exe = symbolic_exe () in
  let shapes = [ 1; 2; 3; 5; 7; 8 ] in
  let requests = 48 in
  let jobs =
    Array.init requests (fun i ->
        let rows = List.nth shapes (i mod List.length shapes) in
        (rows, Tensor.randn rng [| rows; feature_dim |]))
  in
  let reference =
    let vm = Interp.create exe in
    Array.map (fun (_, x) -> Interp.run_tensors vm [ x ]) jobs
  in
  let engine =
    Engine.create
      ~config:
        {
          Engine.default_config with
          workers = 2;
          queue_capacity = 128;
          max_batch = 4;
          max_wait_us = 300.0;
        }
      exe
  in
  let tickets =
    Array.map (fun (rows, x) -> Engine.submit engine ~shape:[| rows |] (Obj.tensor x)) jobs
  in
  Array.iteri
    (fun i tk ->
      match tk with
      | Error _ -> Alcotest.failf "request %d rejected (queue sized to fit)" i
      | Ok tk -> (
          match Engine.wait tk with
          | Ok (Obj.Tensor p) ->
              Alcotest.check tensor_bitwise
                (Fmt.str "request %d bitwise vs sequential" i)
                reference.(i) p.Obj.data
          | Ok _ -> Alcotest.fail "non-tensor result"
          | Error _ -> Alcotest.failf "request %d failed" i))
    tickets;
  Engine.shutdown engine;
  let s = Engine.stats engine in
  Alcotest.(check int) "all completed" requests s.Stats.s_completed;
  Alcotest.(check bool) "arenas were reused across requests" true
    (s.Stats.s_arena_reuses > 0);
  Alcotest.(check bool)
    (Fmt.str "allocs/request %.3f stays below 1" s.Stats.s_allocs_per_request)
    true
    (s.Stats.s_allocs_per_request < 1.0)

(* every test leaves injection off, whatever happens *)
let with_fault spec f =
  Fun.protect ~finally:Fault.disable (fun () ->
      Fault.configure spec;
      f ())

(* Chaos against the persistent arena: transient storage_alloc faults
   fire on the arena create/grow path (exact bucketing + growing shapes
   force repeated grows); retries must absorb them, every request must
   complete bitwise-correct, and the arena must stay usable after a
   failed bind attempt. *)
let test_chaos_storage_alloc_on_arena () =
  let exe = symbolic_exe () in
  let jobs =
    Array.init 32 (fun i ->
        let rows = 1 + (i mod 8) in
        (rows, Tensor.randn rng [| rows; feature_dim |]))
  in
  let reference =
    let vm = Interp.create exe in
    Array.map (fun (_, x) -> Interp.run_tensors vm [ x ]) jobs
  in
  with_fault "seed=5;storage_alloc=0.5:transient" (fun () ->
      let engine =
        Engine.create
          ~config:
            {
              Engine.default_config with
              workers = 1;
              queue_capacity = 64;
              max_batch = 1;
              max_wait_us = 100.0;
              max_retries = 12;
              retry_backoff_us = 20.0;
              policy = Bucket.Exact;
            }
          exe
      in
      Array.iteri
        (fun i (rows, x) ->
          match Engine.run engine ~shape:[| rows |] (Obj.tensor x) with
          | Ok (Obj.Tensor p) ->
              Alcotest.check tensor_bitwise
                (Fmt.str "request %d bitwise under chaos" i)
                reference.(i) p.Obj.data
          | Ok _ -> Alcotest.fail "non-tensor result"
          | Error (Engine.Failed fl) ->
              Alcotest.failf "request %d exhausted retries: %a" i
                Interp.pp_failure fl
          | Error _ -> Alcotest.failf "request %d: unexpected error kind" i)
        jobs;
      Engine.shutdown engine;
      let alloc_attempts =
        List.assoc_opt "storage_alloc" (Fault.attempts ())
      in
      Alcotest.(check bool) "arena allocations were fault-checked" true
        (match alloc_attempts with Some n -> n > 0 | None -> false))

let () =
  Alcotest.run "memory_plan"
    [
      ( "symbolic",
        [
          Alcotest.test_case "plan matches concrete layout" `Quick
            test_plan_matches_concrete;
          Alcotest.test_case "eval once, rebind per request" `Quick
            test_eval_once_rebind_per_request;
        ] );
      ( "serving",
        [
          Alcotest.test_case "served bitwise with arena reuse" `Quick
            test_served_bitwise_with_arena_reuse;
          Alcotest.test_case "chaos: storage_alloc vs persistent arena" `Quick
            test_chaos_storage_alloc_on_arena;
        ] );
    ]
