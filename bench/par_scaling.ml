(** Domain-pool scaling table: hot kernels at 1/2/4/8 domains.

    Each row is one kernel workload (static shapes from the paper's
    evaluation plus odd/prime "dynamic" shapes that stress chunk-boundary
    handling); each column re-runs it with the pool forced to that width
    via {!Nimble_parallel.Parallel.set_num_domains}. Cells are median
    wall-clock milliseconds. Results are bitwise-identical across
    columns by construction (each output element is written by exactly
    one worker in an unchanged accumulation order); the dedicated check
    lives in [test/test_parallel.ml].

    Note: on a single-core host the pool still fans out, so columns > 1
    show scheduling overhead rather than speedup — the table is an
    honest record of whatever the host provides. *)

module Parallel = Nimble_parallel.Parallel
module Tensor = Nimble_tensor.Tensor
module Ops_matmul = Nimble_tensor.Ops_matmul
module Ops_elem = Nimble_tensor.Ops_elem
module Ops_nn = Nimble_tensor.Ops_nn
module Ops_reduce = Nimble_tensor.Ops_reduce

let widths = [ 1; 2; 4; 8 ]

(* Time [f] at every pool width; [repeats] caps cost on the heavy rows. *)
let scale ?(repeats = 3) f =
  List.map
    (fun w ->
      Parallel.set_num_domains w;
      Some (Bench_util.wall ~repeats f *. 1e3))
    widths

let run () =
  let default_width = Parallel.num_domains () in
  let rng = Nimble_tensor.Rng.create ~seed:42 in
  let randn = Tensor.randn rng in
  (* static shape from the dense benchmarks *)
  let a1k = randn [| 1024; 1024 |] and w1k = randn [| 1024; 1024 |] in
  (* prime m/k/n: the dynamic-shape case, chunks never divide evenly *)
  let ap = randn [| 509; 509 |] and wp = randn [| 509; 509 |] in
  let ba = randn [| 8; 128; 128 |] and bb = randn [| 8; 128; 128 |] in
  let ea = randn [| 4_194_304 |] and eb = randn [| 4_194_304 |] in
  let sm = randn [| 512; 1021 |] in
  let ra = randn [| 512; 2048 |] in
  (* below every grain gate: must stay sequential at any width *)
  let small_a = randn [| 16; 64 |] and small_w = randn [| 64; 64 |] in
  let rows =
    [
      ( "dense 1024x1024x1024 (static)",
        scale ~repeats:1 (fun () -> Ops_matmul.dense a1k w1k) );
      ( "dense 509x509x509 (prime/dynamic)",
        scale (fun () -> Ops_matmul.dense ap wp) );
      ( "batch_matmul 8x128x128x128",
        scale (fun () -> Ops_matmul.batch_matmul ba bb) );
      ("elementwise add 4M", scale (fun () -> Ops_elem.add ea eb));
      ("softmax 512x1021", scale (fun () -> Ops_nn.softmax sm));
      ( "reduce sum axis=1 512x2048",
        scale (fun () -> Ops_reduce.sum ~axis:1 ra) );
      ( "dense 16x64x64 (below grain)",
        scale ~repeats:5 (fun () -> Ops_matmul.dense small_a small_w) );
    ]
  in
  Parallel.set_num_domains default_width;
  Bench_util.print_table ~title:"Parallel kernel scaling (domain pool)"
    ~unit:"ms / run"
    ~columns:(List.map (fun w -> Printf.sprintf "%dd" w) widths)
    rows
