(** Online-specialization benchmark: the profile-guided shape
    specialization loop ([Nimble_codegen.Autotune]) closed end to end
    under serving load.

    A dense model compiled with a {e sparse} dispatch table (2 of 8
    residue kernels) serves a skewed shape mix whose dominant extent
    falls on an uncovered residue, so most calls take the guarded
    fallback. The [before] phase measures that steady state; an attached
    autotuner observes the live extent histogram, tunes the hot extent in
    the background and installs the winner into the live dispatch table;
    the [after] phase measures the re-tuned steady state. The committed
    [BENCH_tune.json] baseline ([nimble-tune/v1], gated by
    tools/bench_check) records both phases plus two invariants: outputs
    stay bitwise-equal across the install, and a warm restart
    ([Serve.Cache.persist_tunes] → serialize → relink →
    [Serve.Cache.apply_tunes]) comes back pre-specialized. *)

open Nimble_tensor
open Nimble_ir
module Serve = Nimble_serve
module Json = Nimble_vm.Json
module Nimble = Nimble_compiler.Nimble
module Dispatch = Nimble_codegen.Dispatch
module Autotune = Nimble_codegen.Autotune

(* dense(x: Any x feat, w) |> relu with the leading dim symbolic; larger
   than the serve bench so the guarded-vs-specialized gap is visible *)
let feature_dim = 128
let out_dim = 64

let build_module () =
  let rng = Rng.create ~seed:13 in
  let w = Tensor.randn rng [| out_dim; feature_dim |] in
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static feature_dim ]) "x" in
  let body = Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  Irmod.of_main (Expr.fn_def [ x ] body)

(* only 2 of the 8 residue kernels are compiled in, so the skewed mix's
   dominant extent (21 ≡ 5 mod 8) starts on the guarded fallback — the
   situation the online tuner exists to fix *)
let compile_opts =
  { Nimble.default_options with Nimble.dense_dispatch = Some 2; autotune = true }

(* 80% of traffic at the uncovered extent, the rest on covered residues *)
let hot_rows = 21
let mix = [ ([| hot_rows |], 8.0); ([| 8 |], 1.0); ([| 16 |], 1.0) ]

let engine_config =
  {
    Serve.Engine.default_config with
    Serve.Engine.workers = 2;
    queue_capacity = 128;
    max_batch = 8;
    max_wait_us = 1000.0;
  }

let duration_s = 0.35

let make_inputs () =
  let rng = Rng.create ~seed:17 in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (shape, _) ->
      if not (Hashtbl.mem tbl shape.(0)) then
        Hashtbl.add tbl shape.(0)
          (Nimble_vm.Obj.tensor (Tensor.randn rng [| shape.(0); feature_dim |])))
    mix;
  fun ~shape -> Hashtbl.find tbl shape.(0)

(* the dense dispatcher the model's packed kernel routes through (newest
   registration wins across relinks) *)
let dispatcher exe =
  Array.to_list exe.Nimble_vm.Exe.packed_names
  |> List.filter_map (fun (name, kind) ->
         match kind with `Kernel -> Dispatch.find ~name | `Shape_func -> None)
  |> function
  | d :: _ -> d
  | [] -> failwith "autotune bench: no dense dispatcher registered"

type phase = {
  ph_name : string;
  ph_hit_rate : float;
  ph_p50_ms : float;
  ph_p99_ms : float;
  ph_throughput : float;
  ph_hits : int;
  ph_misses : int;
  ph_tuned_calls : int;
  ph_installs : int;
}

(* one measurement window: zeroed dispatch counters, a fresh engine over
   the shared executable (engine stats are cumulative), the skewed mix *)
let run_phase ?autotune ~name exe =
  Dispatch.reset_counters ();
  let engine = Serve.Engine.create ~config:engine_config ?autotune exe in
  let config =
    {
      Serve.Loadgen.default_config with
      Serve.Loadgen.rate_rps = 700.0;
      duration_s;
      clients = 2;
      mix;
      seed = 42;
    }
  in
  let result = Serve.Loadgen.run ~config engine ~make_input:(make_inputs ()) in
  Serve.Engine.shutdown engine;
  let d = dispatcher exe in
  let hits, misses = Dispatch.stats d in
  let tuned = Dispatch.tuned_calls d in
  let total = hits + misses + tuned in
  let s = result.Serve.Loadgen.summary in
  {
    ph_name = name;
    ph_hit_rate = (if total = 0 then 0.0 else float_of_int (hits + tuned) /. float_of_int total);
    ph_p50_ms = s.Serve.Stats.s_p50_ms;
    ph_p99_ms = s.Serve.Stats.s_p99_ms;
    ph_throughput = result.Serve.Loadgen.achieved_rps;
    ph_hits = hits;
    ph_misses = misses;
    ph_tuned_calls = tuned;
    ph_installs = 0;
  }

let phase_json p : Json.t =
  Json.Obj
    [
      ("label", Json.String (Fmt.str "%s/skew-%d" p.ph_name hot_rows));
      ("phase", Json.String p.ph_name);
      ("hit_rate", Json.Float p.ph_hit_rate);
      ("p50_ms", Json.Float p.ph_p50_ms);
      ("p99_ms", Json.Float p.ph_p99_ms);
      ("throughput_rps", Json.Float p.ph_throughput);
      ("hits", Json.Int p.ph_hits);
      ("misses", Json.Int p.ph_misses);
      ("tuned_calls", Json.Int p.ph_tuned_calls);
      ("installs", Json.Int p.ph_installs);
    ]

let doc_json ~phases ~bitwise_ok ~warm_restart_pretuned : Json.t =
  Json.Obj
    [
      ("schema", Json.String "nimble-tune/v1");
      ( "title",
        Json.String "Online shape specialization: hot-extent re-tuning under load" );
      ("model", Json.String (Fmt.str "dense_relu Anyx%d->%d dispatch/2" feature_dim out_dim));
      ("hot_extent", Json.Int hot_rows);
      ("points", Json.List (List.map phase_json phases));
      ("bitwise_ok", Json.Bool bitwise_ok);
      ("warm_restart_pretuned", Json.Bool warm_restart_pretuned);
    ]

let link_options =
  {
    Nimble_compiler.Emitter.dense_dispatch = compile_opts.Nimble.dense_dispatch;
    profile_extern = compile_opts.Nimble.profile_extern;
    guards = compile_opts.Nimble.runtime_guards;
  }

(* relink a serialized copy of [exe] exactly as a restarted server does
   (the Cache cold path: decode, verify, link, replay the tune table) and
   report whether the hot extent came back pre-specialized. [m] is the
   processed module the executable was emitted from — kernel names are
   baked into the artifact, so relinking must use the same module. *)
let warm_restart_check ~m exe =
  let persisted = Serve.Cache.persist_tunes exe in
  let bytes = Nimble_vm.Serialize.to_bytes exe in
  let exe2 = Nimble_analysis.Verifier.of_bytes bytes in
  List.iter (Nimble_vm.Exe.link exe2)
    (Nimble_compiler.Emitter.link_table ~options:link_options m);
  let applied = Serve.Cache.apply_tunes exe2 in
  let pretuned =
    Dispatch.pretuned (dispatcher exe2) ~extent:hot_rows <> None
  in
  persisted >= 1 && applied >= 1 && pretuned

let run () =
  (* the Cache cold path, inlined so the processed module stays in hand
     for the warm-restart relink below *)
  let m = build_module () in
  let compiled = Nimble.compile ~options:compile_opts m in
  let bytes = Nimble_vm.Serialize.to_bytes compiled in
  let exe = Nimble_analysis.Verifier.of_bytes bytes in
  List.iter (Nimble_vm.Exe.link exe)
    (Nimble_compiler.Emitter.link_table ~options:link_options m);
  ignore (Serve.Cache.apply_tunes exe);
  (* reference output for the hot extent, captured before any install *)
  let inputs = make_inputs () in
  let hot_input = inputs ~shape:[| hot_rows |] in
  let ref_out = Nimble_vm.Interp.invoke (Nimble.vm exe) [ hot_input ] in
  (* [before]: no tuner — the untuned steady state, where the dominant
     extent pays the guarded fallback on every call *)
  let before = run_phase ~name:"before" exe in
  (* [tuning]: the tuner is attached and observing the live engine; the
     hot extent crosses the threshold mid-window and the specialized
     kernel is installed into the live table while requests flow *)
  let tuner =
    Autotune.create
      ~config:
        {
          Autotune.default_config with
          Autotune.hot_threshold = 32;
          scan_interval = 8;
        }
      ()
  in
  let tuning = run_phase ~autotune:tuner ~name:"tuning" exe in
  (* close the loop: make sure the final window was scanned, then wait
     for the background installs to land before the re-tuned phase *)
  Autotune.scan tuner;
  Autotune.drain tuner;
  Autotune.shutdown tuner;
  let summary = Autotune.summary tuner in
  let installs = List.length summary.Autotune.au_installs in
  let tuning = { tuning with ph_installs = installs } in
  (* [after]: no tuner again — the re-tuned steady state *)
  let after =
    { (run_phase ~name:"after" exe) with ph_installs = installs }
  in
  let after_out = Nimble_vm.Interp.invoke (Nimble.vm exe) [ hot_input ] in
  let bitwise_ok =
    match (ref_out, after_out) with
    | Nimble_vm.Obj.Tensor a, Nimble_vm.Obj.Tensor b ->
        Tensor.equal a.Nimble_vm.Obj.data b.Nimble_vm.Obj.data
    | _ -> false
  in
  let warm_restart_pretuned = warm_restart_check ~m exe in
  let phases = [ before; tuning; after ] in
  if !Bench_util.json_mode then
    print_endline (Json.to_string (doc_json ~phases ~bitwise_ok ~warm_restart_pretuned))
  else begin
    Bench_util.print_table
      ~title:
        (Fmt.str
           "Online specialization (dense_relu Anyx%d->%d, dispatch/2, hot extent %d)"
           feature_dim out_dim hot_rows)
      ~unit:"phase"
      ~columns:[ "hit rate"; "p50 ms"; "p99 ms"; "rps"; "tuned calls" ]
      (List.map
         (fun p ->
           ( p.ph_name,
             [
               Some p.ph_hit_rate;
               Some p.ph_p50_ms;
               Some p.ph_p99_ms;
               Some p.ph_throughput;
               Some (float_of_int p.ph_tuned_calls);
             ] ))
         phases);
    Fmt.pr
      "@.%d install(s) for hot extent %d; bitwise across install: %b; warm \
       restart pre-specialized: %b@."
      installs hot_rows bitwise_ok warm_restart_pretuned
  end
