(** Benchmark harness entry point.

    [dune exec bench/main.exe] regenerates every table and figure of the
    paper's evaluation (Section 6); a subcommand selects one:

    {[ dune exec bench/main.exe -- table1|table2|table3|table4|figure3|memplan|ablations|par_scaling|serve|autotune|chaos|fleet|micro|all ]} *)

let micro () =
  (* Bechamel micro-benchmarks: one per experiment area, measuring the
     primitive the experiment rests on. *)
  Fmt.pr "@.Bechamel micro-benchmarks (ns/run, OLS on monotonic clock)@.";
  let rng = Nimble_tensor.Rng.create ~seed:123 in
  let a = Nimble_tensor.Tensor.randn rng [| 16; 256 |] in
  let w = Nimble_tensor.Tensor.randn rng [| 256; 256 |] in
  let report name f = Fmt.pr "  %-44s %12.0f ns@." name (Bench_util.bechamel_ns name f) in
  (* tables 1-3 rest on kernel execution *)
  report "dense 16x256x256 (residue kernel)" (fun () ->
      ignore (Nimble_codegen.Dense_kernels.residue_kernel ~residue:0 a w));
  (* figure 3 rests on the guarded-vs-specialized gap *)
  report "dense 16x256x256 (guarded kernel)" (fun () ->
      ignore (Nimble_codegen.Dense_kernels.guarded_kernel a w));
  (* table 4 rests on VM instruction dispatch being cheap *)
  let x = Nimble_ir.Expr.fresh_var ~ty:(Nimble_ir.Ty.tensor_of_shape [| 4 |]) "x" in
  let m =
    Nimble_ir.Irmod.of_main
      (Nimble_ir.Expr.fn_def [ x ]
         (Nimble_ir.Expr.op_call "add" [ Nimble_ir.Expr.Var x; Nimble_ir.Expr.Var x ]))
  in
  let vm = Nimble_compiler.Nimble.vm (Nimble_compiler.Nimble.compile m) in
  let input = Nimble_tensor.Tensor.ones [| 4 |] in
  (* warm execution context (reused register frame), as a serving worker
     holds: the dispatch cost without per-call frame allocation *)
  let ctx = Nimble_vm.Interp.context () in
  report "VM round trip (1-op module, warm frame)" (fun () ->
      ignore (Nimble_vm.Interp.run_tensors ~ctx vm [ input ]));
  (* memplan rests on allocation cost *)
  report "alloc_storage 64KiB (accounted bigarray)" (fun () ->
      ignore
        (Nimble_vm.Storage.create ~device:Nimble_device.Device.cpu ~bytes:65536
           ~is_arena:false))

let sections : (string * (unit -> unit)) list =
  [
    ("table1", Table1.run);
    ("table2", Table2.run);
    ("table3", Table3.run);
    ("table4", Table4.run);
    ("figure3", Figure3.run);
    ("memplan", Memplan.run);
    ("ablations", Ablations.run);
    ("par_scaling", Par_scaling.run);
    ("serve", Serve_bench.run);
    ("autotune", Autotune_bench.run);
    ("chaos", Chaos_bench.run);
    ("fleet", Fleet_bench.run);
    ("micro", micro);
  ]

let run_section name =
  match List.assoc_opt name sections with
  | Some f ->
      let t0 = Unix.gettimeofday () in
      f ();
      if not !Bench_util.json_mode then
        Fmt.pr "[%s completed in %.1f s]@." name (Unix.gettimeofday () -. t0)
  | None ->
      Fmt.epr "unknown section %s; available: %s, all@." name
        (String.concat ", " (List.map fst sections));
      exit 1

let () =
  (* [--json] anywhere on the command line switches every table to one
     nimble-bench/v1 JSON line on stdout (and silences the prose banner). *)
  let names =
    List.filter
      (fun a ->
        match a with
        | "--json" ->
            Bench_util.json_mode := true;
            false
        | "--profile-json" ->
            Nimble_runner.json_dump := true;
            false
        | _ -> true)
      (match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [])
  in
  if not !Bench_util.json_mode then begin
    Fmt.pr "Nimble reproduction benchmark harness@.";
    Fmt.pr
      "(platform latencies are trace-driven cost-model estimates; Table 4, Figure 3 and \
       memplan are real host measurements — see DESIGN.md)@."
  end;
  match names with
  | [] | [ "all" ] -> List.iter (fun (name, _) -> run_section name) sections
  | names -> List.iter run_section names
