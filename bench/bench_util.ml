(** Shared benchmark utilities: wall-clock timing, Bechamel glue, and
    paper-style table rendering. *)

let now () = Unix.gettimeofday ()

(** Wall-clock a thunk (one warmup + median of [repeats]). *)
let wall ?(repeats = 3) f =
  ignore (f ());
  let times =
    List.init repeats (fun _ ->
        let t0 = now () in
        ignore (f ());
        now () -. t0)
  in
  List.nth (List.sort Float.compare times) (repeats / 2)

(** Nanoseconds per run via Bechamel (monotonic clock, OLS). *)
let bechamel_ns ?(quota_s = 0.5) name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota_s) ~kde:None
      ~stabilize:false ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances test in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  match Hashtbl.fold (fun _ v acc -> v :: acc) results [] with
  | [ ols ] -> (
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> est
      | _ -> Float.nan)
  | _ -> Float.nan

(* --------------------------- tables --------------------------- *)

(** When set (bench [--json]), {!print_table} emits each table as one
    compact [nimble-bench/v1] JSON line on stdout instead of ASCII art, so
    harness output can be diffed and post-processed. *)
let json_mode = ref false

(** A table as [nimble-bench/v1] JSON: missing cells become [null]. *)
let table_json ~title ~unit ~columns rows : Nimble_vm.Json.t =
  let open Nimble_vm.Json in
  let cell = function Some v -> Float v | None -> Null in
  Obj
    [
      ("schema", String "nimble-bench/v1");
      ("title", String title);
      ("unit", String unit);
      ("columns", List (Stdlib.List.map (fun c -> String c) columns));
      ( "rows",
        List
          (Stdlib.List.map
             (fun (label, cells) ->
               Obj
                 [
                   ("label", String label);
                   ("cells", List (Stdlib.List.map cell cells));
                 ])
             rows) );
    ]

let rule width = String.make width '-'

let print_table_ascii ~title ~unit ~columns rows =
  let label_w =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 10 rows
  in
  let col_w = 12 in
  let width = label_w + 2 + (List.length columns * (col_w + 1)) in
  Fmt.pr "@.%s@." title;
  Fmt.pr "%s@." (rule width);
  Fmt.pr "%-*s  " label_w unit;
  List.iter (fun c -> Fmt.pr "%*s " col_w c) columns;
  Fmt.pr "@.%s@." (rule width);
  List.iter
    (fun (label, cells) ->
      Fmt.pr "%-*s  " label_w label;
      List.iter
        (fun c ->
          match c with
          | Some v -> Fmt.pr "%*.1f " col_w v
          | None -> Fmt.pr "%*s " col_w "-")
        cells;
      Fmt.pr "@.")
    rows;
  Fmt.pr "%s@." (rule width)

(** Print a table: header row + rows of (label, cells); one JSON line per
    table instead when {!json_mode} is set. *)
let print_table ~title ~unit ~columns rows =
  if !json_mode then
    print_endline (Nimble_vm.Json.to_string (table_json ~title ~unit ~columns rows))
  else print_table_ascii ~title ~unit ~columns rows

let us v = v *. 1e6
