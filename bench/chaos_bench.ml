(** Chaos benchmark: the serving engine under deterministic fault
    injection (docs/ROBUSTNESS.md).

    One fixed scenario — a seeded [NIMBLE_FAULT_SPEC]-style spec over
    every well-known injection point — drives a request sweep through
    the engine and reports how the resilience machinery absorbed it:
    completions vs typed failures, retries, worker restarts, per-point
    injection counters, and whether every successful response stayed
    bitwise-equal to a fault-free sequential reference. With bench
    [--json] the section prints one [nimble-chaos/v1] JSON line (the
    committed [BENCH_chaos.json] baseline, gated by tools/bench_check);
    otherwise a human summary. *)

open Nimble_tensor
open Nimble_ir
module Serve = Nimble_serve
module Fault = Nimble_fault.Fault
module Interp = Nimble_vm.Interp
module Json = Nimble_vm.Json

let feature_dim = 64
let out_dim = 32
let requests = 96
let fault_spec = "seed=11;*=0.02"

let build_module w =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static feature_dim ]) "x" in
  let body = Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  Irmod.of_main (Expr.fn_def [ x ] body)

let engine_config =
  {
    Serve.Engine.default_config with
    Serve.Engine.workers = 2;
    queue_capacity = 256;
    max_batch = 8;
    max_wait_us = 500.0;
    max_retries = 3;
    retry_backoff_us = 50.0;
  }

type outcome = {
  o_completed : int;
  o_failed : int;
  o_rejected : int;
  o_bitwise_ok : bool;
  o_stats : Serve.Stats.summary;
  o_attempts : (string * int) list;
  o_hits : (string * int) list;
}

let run_scenario () =
  let rng = Rng.create ~seed:7 in
  let w = Tensor.randn rng [| out_dim; feature_dim |] in
  let exe = Nimble_compiler.Nimble.compile (build_module w) in
  let shapes = [| 4; 8; 12; 16; 24; 32 |] in
  let jobs =
    Array.init requests (fun i ->
        let rows = shapes.(i mod Array.length shapes) in
        (rows, Tensor.randn rng [| rows; feature_dim |]))
  in
  (* fault-free sequential reference, before injection is configured *)
  let reference =
    let vm = Interp.create exe in
    Array.map (fun (_, x) -> Interp.run_tensors vm [ x ]) jobs
  in
  Fun.protect ~finally:Fault.disable (fun () ->
      Fault.configure fault_spec;
      let engine = Serve.Engine.create ~config:engine_config exe in
      let tickets =
        Array.map
          (fun (rows, x) ->
            Serve.Engine.submit engine ~shape:[| rows |] (Nimble_vm.Obj.tensor x))
          jobs
      in
      let completed = ref 0 and failed = ref 0 and rejected = ref 0 in
      let bitwise_ok = ref true in
      Array.iteri
        (fun i tk ->
          match tk with
          | Error _ -> incr rejected
          | Ok tk -> (
              match Serve.Engine.wait tk with
              | Ok (Nimble_vm.Obj.Tensor p) ->
                  incr completed;
                  if not (Tensor.equal reference.(i) p.Nimble_vm.Obj.data) then
                    bitwise_ok := false
              | Ok _ -> bitwise_ok := false
              | Error _ -> incr failed))
        tickets;
      Serve.Engine.shutdown engine;
      {
        o_completed = !completed;
        o_failed = !failed;
        o_rejected = !rejected;
        o_bitwise_ok = !bitwise_ok;
        o_stats = Serve.Engine.stats engine;
        o_attempts = Fault.attempts ();
        o_hits = Fault.hits ();
      })

let doc_json (o : outcome) : Json.t =
  let s = o.o_stats in
  Json.Obj
    [
      ("schema", Json.String "nimble-chaos/v1");
      ("title", Json.String "Serving engine under deterministic fault injection");
      ("model", Json.String (Fmt.str "dense_relu Anyx%d->%d" feature_dim out_dim));
      ("spec", Json.String fault_spec);
      ("requests", Json.Int requests);
      ("completed", Json.Int o.o_completed);
      ("failed", Json.Int o.o_failed);
      ("rejected", Json.Int o.o_rejected);
      ("retries", Json.Int s.Serve.Stats.s_retries);
      ("worker_restarts", Json.Int s.Serve.Stats.s_worker_restarts);
      ("bitwise_ok", Json.Bool o.o_bitwise_ok);
      ( "failure_kinds",
        Json.Obj
          (List.map
             (fun (k, n) -> (k, Json.Int n))
             s.Serve.Stats.s_failure_kinds) );
      ( "fault_points",
        Json.Obj
          (List.map
             (fun (point, attempts) ->
               let hits =
                 match List.assoc_opt point o.o_hits with Some h -> h | None -> 0
               in
               ( point,
                 Json.Obj
                   [ ("attempts", Json.Int attempts); ("hits", Json.Int hits) ] ))
             o.o_attempts) );
    ]

let run () =
  let o = run_scenario () in
  if !Bench_util.json_mode then print_endline (Json.to_string (doc_json o))
  else begin
    Fmt.pr
      "Chaos (%s over dense_relu Anyx%d->%d, %d requests, %d workers):@."
      fault_spec feature_dim out_dim requests
      engine_config.Serve.Engine.workers;
    Fmt.pr
      "  completed %d, failed %d, rejected %d; bitwise vs reference: %b@."
      o.o_completed o.o_failed o.o_rejected o.o_bitwise_ok;
    Fmt.pr "@.%a@." Serve.Stats.pp_summary o.o_stats;
    List.iter
      (fun (point, attempts) ->
        let hits =
          match List.assoc_opt point o.o_hits with Some h -> h | None -> 0
        in
        Fmt.pr "  fault point %-14s %6d attempts, %d injected@." point attempts hits)
      o.o_attempts
  end
