(** Fleet benchmark: graceful degradation of the multi-model tier past
    saturation (docs/SERVING.md).

    Four phases over a two-model fleet (a weight-3 "hot" model and a
    weight-1 "cold" one, splitting one worker budget):

    - {b rate sweep} — multi-tenant open-loop load at multiples of the
      measured saturation throughput, at least three of them past it.
      Requests carry deadlines, so past saturation the SLO admission
      controller sheds at the door instead of letting goodput collapse;
      the no-collapse invariant (goodput at 2x saturation >= half the
      peak) is recorded and gated by tools/bench_check.
    - {b breaker chaos} — a persistent [kernel_launch] fault spec makes
      one lane fail deterministically: the (model, bucket) breakers
      trip, shed while Open, and the client-visible [Tripped] tally
      proves requests stopped burning workers.
    - {b snapshot / warm restart} — the fleet checkpoints (executables,
      tune tables, arena hints) and one model is warm-restarted from
      disk; the relink-only claim is checked via the cache's miss
      counter (a restore must not recompile), and cold-load vs restart
      wall times are reported.
    - {b bitwise} — one served request per model is compared against a
      fault-free sequential reference VM.

    With bench [--json] the section prints one [nimble-fleet/v1] JSON
    line (the committed [BENCH_fleet.json] baseline, gated by
    tools/bench_check); otherwise a human summary. *)

open Nimble_tensor
open Nimble_ir
module Serve = Nimble_serve
module Fault = Nimble_fault.Fault
module Interp = Nimble_vm.Interp
module Json = Nimble_vm.Json

(* heavy enough that saturation sits at a rate the open-loop generator
   can comfortably exceed 3x on any host *)
let hot_feature = 256

let hot_out = 128
let cold_feature = 128
let cold_out = 64

let build_model ~seed ~feature ~out () =
  let rng = Rng.create ~seed in
  let w = Tensor.randn rng [| out; feature |] in
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static feature ]) "x" in
  let body =
    Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ]
  in
  Irmod.of_main (Expr.fn_def [ x ] body)

let specs () : Serve.Fleet.spec list =
  [
    {
      Serve.Fleet.name = "hot";
      build = build_model ~seed:7 ~feature:hot_feature ~out:hot_out;
      weight = 3;
    };
    {
      Serve.Fleet.name = "cold";
      build = build_model ~seed:8 ~feature:cold_feature ~out:cold_out;
      weight = 1;
    };
  ]

let fleet_config =
  {
    Serve.Fleet.total_workers = 4;
    engine =
      {
        Serve.Engine.default_config with
        Serve.Engine.workers = 4;
        queue_capacity = 64;
        max_batch = 8;
        max_wait_us = 1000.0;
      };
    admission = Some Serve.Admission.default_config;
    breaker = Some Serve.Breaker.default_config;
  }

let deadline_us = 10_000.0
let hot_rows = [ 4; 8; 16 ]
let cold_rows = [ 8 ]

(* inputs pre-generated per (model, rows): client domains share them
   read-only, keeping the generator allocation-free on the hot path *)
let make_input =
  let rng = Rng.create ~seed:11 in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (model, feature, rows_list) ->
      List.iter
        (fun rows ->
          Hashtbl.replace tbl (model, rows)
            (Nimble_vm.Obj.tensor (Tensor.randn rng [| rows; feature |])))
        rows_list)
    [ ("hot", hot_feature, hot_rows); ("cold", cold_feature, cold_rows) ];
  fun ~model ~shape -> Hashtbl.find tbl (model, shape.(0))

let tenants : Serve.Loadgen.tenant list =
  [
    {
      Serve.Loadgen.tn_model = "hot";
      tn_share = 3.0;
      tn_mix = List.map (fun r -> ([| r |], 1.0)) hot_rows;
      tn_timeout_us = Some deadline_us;
    };
    {
      Serve.Loadgen.tn_model = "cold";
      tn_share = 1.0;
      tn_mix = List.map (fun r -> ([| r |], 1.0)) cold_rows;
      tn_timeout_us = Some deadline_us;
    };
  ]

let new_fleet () = Serve.Fleet.create ~config:fleet_config (specs ())

(* one measurement point: a fresh fleet (stats are cumulative) under a
   bursty multi-tenant arrival stream at [rate] for [duration] *)
let run_point ~rate ~duration =
  let fleet = new_fleet () in
  let cfg =
    {
      Serve.Loadgen.default_config with
      Serve.Loadgen.rate_rps = rate;
      duration_s = duration;
      clients = 2;
      process = Serve.Loadgen.Bursty { burst = 4 };
      seed = 42;
    }
  in
  let r = Serve.Loadgen.run_fleet ~config:cfg fleet ~tenants ~make_input in
  Serve.Fleet.shutdown fleet;
  r

let goodput (r : Serve.Loadgen.fleet_result) =
  float_of_int r.Serve.Loadgen.f_ok /. Float.max 1e-9 r.Serve.Loadgen.f_wall_s

(* breaker chaos: every kernel launch fails persistently, so the lane
   trips after one failure window and keeps shedding while Open *)
let chaos_spec = "seed=11;kernel_launch=1.0:persistent"
let chaos_requests = 60

let run_breaker_chaos () =
  let fleet = new_fleet () in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      Serve.Fleet.shutdown fleet)
    (fun () ->
      Fault.configure chaos_spec;
      let input = make_input ~model:"hot" ~shape:[| 8 |] in
      let failed = ref 0 and tripped = ref 0 in
      for _ = 1 to chaos_requests do
        match Serve.Fleet.run fleet ~model:"hot" ~shape:[| 8 |] input with
        | Ok _ -> ()
        | Error Serve.Engine.Tripped -> incr tripped
        | Error (Serve.Engine.Failed _) -> incr failed
        | Error _ -> ()
      done;
      let counters, lanes, open_lanes =
        Serve.Fleet.breaker_totals fleet ~model:"hot"
      in
      (!failed, !tripped, counters, lanes, open_lanes))

(* snapshot / warm restart / bitwise: checkpoint a fleet, restart one
   model from disk, and prove the restore never recompiled and the
   restarted pool still answers bitwise-identically to a sequential
   reference *)
let run_snapshot_phase () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "nimble_fleet_bench_%d" (Unix.getpid ()))
  in
  let t0 = Unix.gettimeofday () in
  let fleet = new_fleet () in
  let cold_start_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Fleet.shutdown fleet;
      (* best-effort cleanup of the scratch snapshot *)
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Sys.rmdir dir with Sys_error _ -> ()
      end)
    (fun () ->
      (* serve each (model, shape) once so arena hints are observed and
         the bitwise baseline has an answer to compare against *)
      let reference =
        List.map
          (fun (model, rows) ->
            let input = make_input ~model ~shape:[| rows |] in
            let served =
              match Serve.Fleet.run fleet ~model ~shape:[| rows |] input with
              | Ok (Nimble_vm.Obj.Tensor t) -> Some t.Nimble_vm.Obj.data
              | _ -> None
            in
            (model, rows, input, served))
          [ ("hot", 8); ("cold", 8) ]
      in
      let snapshot_models = Serve.Fleet.snapshot fleet ~dir in
      let misses_before = Serve.Cache.misses (Serve.Fleet.cache fleet) in
      let t1 = Unix.gettimeofday () in
      let restored = Serve.Fleet.warm_restart fleet ~dir ~model:"hot" in
      let warm_restart_ms = 1e3 *. (Unix.gettimeofday () -. t1) in
      let relink_only =
        Serve.Cache.misses (Serve.Fleet.cache fleet) = misses_before
      in
      (* the restarted pool must still answer, bitwise-identically to a
         sequential reference VM over the restored executable *)
      let bitwise_ok =
        List.for_all
          (fun (model, rows, input, served) ->
            match
              (served, Serve.Fleet.run fleet ~model ~shape:[| rows |] input)
            with
            | Some before, Ok (Nimble_vm.Obj.Tensor after) ->
                let vm =
                  Interp.create
                    (if model = "hot" then restored.Serve.Cache.r_exe
                     else
                       Serve.Cache.load (Serve.Fleet.cache fleet) ~name:model
                         ~build:(build_model ~seed:8 ~feature:cold_feature
                                   ~out:cold_out))
                in
                let seq =
                  match Interp.invoke vm [ input ] with
                  | Nimble_vm.Obj.Tensor t -> t.Nimble_vm.Obj.data
                  | _ -> before
                in
                Tensor.equal before after.Nimble_vm.Obj.data
                && Tensor.equal before seq
            | _ -> false)
          reference
      in
      ( cold_start_ms,
        warm_restart_ms,
        relink_only,
        snapshot_models,
        restored.Serve.Cache.r_arena_hints,
        bitwise_ok ))

type point = {
  pt_label : string;
  pt_rate : float;
  pt_past_saturation : bool;
  pt_result : Serve.Loadgen.fleet_result;
}

let sweep () =
  (* calibrate: saturation = goodput under a far-overloaded offered rate *)
  let cal = run_point ~rate:20_000.0 ~duration:0.3 in
  let saturation = Float.max 50.0 (goodput cal) in
  let multiples = [ 0.5; 1.0; 1.5; 2.0; 3.0 ] in
  let points =
    List.map
      (fun m ->
        let rate = m *. saturation in
        {
          pt_label = Fmt.str "%.1fx" m;
          pt_rate = rate;
          pt_past_saturation = m > 1.0;
          pt_result = run_point ~rate ~duration:0.4;
        })
      multiples
  in
  (saturation, points)

let point_json (p : point) : Json.t =
  let r = p.pt_result in
  Json.Obj
    [
      ("label", Json.String p.pt_label);
      ("offered_rate_rps", Json.Float p.pt_rate);
      ("past_saturation", Json.Bool p.pt_past_saturation);
      ("offered", Json.Int r.Serve.Loadgen.f_offered);
      ("ok", Json.Int r.Serve.Loadgen.f_ok);
      ("goodput_rps", Json.Float (goodput r));
      ("shed", Json.Int r.Serve.Loadgen.f_shed);
      ("tripped", Json.Int r.Serve.Loadgen.f_tripped);
      ("rejected", Json.Int r.Serve.Loadgen.f_rejected);
      ("timed_out", Json.Int r.Serve.Loadgen.f_timed_out);
      ("failed", Json.Int r.Serve.Loadgen.f_failed);
    ]

let run () =
  let saturation, points = sweep () in
  let peak =
    List.fold_left (fun acc p -> Float.max acc (goodput p.pt_result)) 0.0 points
  in
  let g2x =
    match List.find_opt (fun p -> p.pt_label = "2.0x") points with
    | Some p -> goodput p.pt_result
    | None -> 0.0
  in
  let chaos_failed, chaos_tripped, bc, lanes, open_lanes =
    run_breaker_chaos ()
  in
  let ( cold_start_ms,
        warm_restart_ms,
        relink_only,
        snapshot_models,
        arena_hints,
        bitwise_ok ) =
    run_snapshot_phase ()
  in
  let shed_total =
    List.fold_left (fun acc p -> acc + p.pt_result.Serve.Loadgen.f_shed) 0 points
    + bc.Serve.Breaker.c_shed
  in
  let tripped_total =
    List.fold_left
      (fun acc p -> acc + p.pt_result.Serve.Loadgen.f_tripped)
      0 points
    + chaos_tripped
  in
  if !Bench_util.json_mode then
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("schema", Json.String "nimble-fleet/v1");
              ( "title",
                Json.String
                  "Multi-model fleet: graceful degradation past saturation" );
              ( "models",
                Json.List
                  (List.map
                     (fun (s : Serve.Fleet.spec) ->
                       Json.Obj
                         [
                           ("name", Json.String s.Serve.Fleet.name);
                           ("weight", Json.Int s.Serve.Fleet.weight);
                         ])
                     (specs ())) );
              ("saturation_rps", Json.Float saturation);
              ("points", Json.List (List.map point_json points));
              ("peak_goodput_rps", Json.Float peak);
              ("goodput_at_2x_rps", Json.Float g2x);
              ("shed_total", Json.Int shed_total);
              ("tripped_total", Json.Int tripped_total);
              ("trips", Json.Int bc.Serve.Breaker.c_trips);
              ("breaker_lanes", Json.Int lanes);
              ("breaker_open_lanes", Json.Int open_lanes);
              ("chaos_spec", Json.String chaos_spec);
              ("chaos_failed", Json.Int chaos_failed);
              ("cold_start_ms", Json.Float cold_start_ms);
              ("warm_restart_ms", Json.Float warm_restart_ms);
              ("warm_restart_relink_only", Json.Bool relink_only);
              ("snapshot_models", Json.Int snapshot_models);
              ("arena_hints", Json.Int (List.length arena_hints));
              ("bitwise_ok", Json.Bool bitwise_ok);
            ]))
  else begin
    Fmt.pr
      "Fleet (hot w=3 + cold w=1, %d workers, deadline %.0f us; saturation \
       %.0f rps):@."
      fleet_config.Serve.Fleet.total_workers deadline_us saturation;
    List.iter
      (fun p ->
        let r = p.pt_result in
        Fmt.pr
          "  %-5s offered %.0f rps -> goodput %7.0f rps  (ok %d, shed %d, \
           tripped %d, rejected %d, timed out %d)@."
          p.pt_label p.pt_rate (goodput r) r.Serve.Loadgen.f_ok
          r.Serve.Loadgen.f_shed r.Serve.Loadgen.f_tripped
          r.Serve.Loadgen.f_rejected r.Serve.Loadgen.f_timed_out)
      points;
    Fmt.pr "  no-collapse: goodput@2x %.0f rps vs peak %.0f rps -> %b@." g2x
      peak
      (g2x >= 0.5 *. peak);
    Fmt.pr
      "  breaker chaos (%s): %d failed, %d tripped; %d trips, %d shed over \
       %d lanes (%d open)@."
      chaos_spec chaos_failed chaos_tripped bc.Serve.Breaker.c_trips
      bc.Serve.Breaker.c_shed lanes open_lanes;
    Fmt.pr
      "  snapshot: %d models; cold start %.1f ms vs warm restart %.1f ms \
       (relink only: %b, %d arena hints); bitwise %b@."
      snapshot_models cold_start_ms warm_restart_ms relink_only
      (List.length arena_hints) bitwise_ok
  end
