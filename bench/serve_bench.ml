(** Serving-engine benchmark: throughput and latency of the shape-bucketed
    dynamic batcher (lib/serve) across a grid of arrival rates and shape
    mixes.

    Each point drives a fresh {!Nimble_serve.Engine} (engine statistics
    are cumulative) with the open-loop {!Nimble_serve.Loadgen}; the
    executable comes from one warm {!Nimble_serve.Cache}, so the first
    point pays the cold serialize → relink load and the rest are warm
    hits. With bench [--json] the section prints one [nimble-serve/v1]
    JSON line (the committed [BENCH_serve.json] baseline, gated by
    tools/bench_check); otherwise a paper-style table plus per-point
    engine summaries. *)

open Nimble_tensor
open Nimble_ir
module Serve = Nimble_serve
module Json = Nimble_vm.Json
module Nimble = Nimble_compiler.Nimble

(* dense(x: Any x feat, w) |> relu — a small dynamic-shape model whose
   leading dimension varies per request, so bucketing has work to do *)
let feature_dim = 64
let out_dim = 32

let build_module () =
  let rng = Rng.create ~seed:7 in
  let w = Tensor.randn rng [| out_dim; feature_dim |] in
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static feature_dim ]) "x" in
  let body = Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  Irmod.of_main (Expr.fn_def [ x ] body)

(* one (rate, mix) measurement point; rows = the dynamic leading dim *)
type point = { p_rate : float; p_mix_name : string; p_rows : (int * float) list }

let points =
  [
    { p_rate = 300.0; p_mix_name = "uniform-8"; p_rows = [ (8, 1.0) ] };
    {
      p_rate = 600.0;
      p_mix_name = "mixed-4-16";
      p_rows = [ (4, 1.0); (8, 2.0); (16, 1.0) ];
    };
    {
      p_rate = 1200.0;
      p_mix_name = "mixed-4-32";
      p_rows = [ (4, 1.0); (8, 1.0); (16, 1.0); (32, 1.0) ];
    };
  ]

let engine_config =
  {
    Serve.Engine.default_config with
    Serve.Engine.workers = 2;
    queue_capacity = 128;
    max_batch = 8;
    max_wait_us = 1000.0;
  }

let duration_s = 0.4

(* inputs are pre-generated per distinct shape (client domains share
   them read-only): content is irrelevant to throughput, and this keeps
   the generator allocation-free on the hot path *)
let make_inputs rows_list =
  let rng = Rng.create ~seed:11 in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (rows, _) ->
      if not (Hashtbl.mem tbl rows) then
        Hashtbl.add tbl rows
          (Nimble_vm.Obj.tensor (Tensor.randn rng [| rows; feature_dim |])))
    rows_list;
  fun ~shape -> Hashtbl.find tbl shape.(0)

let run_point exe p =
  let engine = Serve.Engine.create ~config:engine_config exe in
  let config =
    {
      Serve.Loadgen.default_config with
      Serve.Loadgen.rate_rps = p.p_rate;
      duration_s;
      clients = 2;
      mix = List.map (fun (rows, w) -> ([| rows |], w)) p.p_rows;
      seed = 42;
    }
  in
  let result = Serve.Loadgen.run ~config engine ~make_input:(make_inputs p.p_rows) in
  Serve.Engine.shutdown engine;
  result

(* each point is driven twice: once with the symbolic memory plan (the
   served configuration, [r]) and once with it disabled ([r_unplanned]),
   so the committed baseline records the allocation collapse the plan
   buys — compare [allocs_per_request] against
   [allocs_per_request_unplanned] *)
let point_json p (r : Serve.Loadgen.result) (r_unplanned : Serve.Loadgen.result)
    : Json.t =
  let s = r.Serve.Loadgen.summary in
  let su = r_unplanned.Serve.Loadgen.summary in
  Json.Obj
    [
      ("label", Json.String (Fmt.str "%.0frps/%s" p.p_rate p.p_mix_name));
      ("rate_rps", Json.Float p.p_rate);
      ("mix", Json.String p.p_mix_name);
      ("offered", Json.Int r.Serve.Loadgen.offered);
      ("completed", Json.Int s.Serve.Stats.s_completed);
      ("throughput_rps", Json.Float r.Serve.Loadgen.achieved_rps);
      ("p50_ms", Json.Float s.Serve.Stats.s_p50_ms);
      ("p99_ms", Json.Float s.Serve.Stats.s_p99_ms);
      ("mean_batch", Json.Float s.Serve.Stats.s_mean_batch);
      ( "batch_hist",
        Json.Obj
          (List.map
             (fun (size, n) -> (string_of_int size, Json.Int n))
             s.Serve.Stats.s_batch_hist) );
      ("rejected", Json.Int s.Serve.Stats.s_rejected);
      ("timeouts", Json.Int s.Serve.Stats.s_timeouts);
      ("queue_depth_hwm", Json.Int s.Serve.Stats.s_queue_depth_hwm);
      ("allocs_per_request", Json.Float s.Serve.Stats.s_allocs_per_request);
      ("arena_reuses", Json.Int s.Serve.Stats.s_arena_reuses);
      ( "allocs_per_request_unplanned",
        Json.Float su.Serve.Stats.s_allocs_per_request );
    ]

let doc_json results : Json.t =
  Json.Obj
    [
      ("schema", Json.String "nimble-serve/v1");
      ("title", Json.String "Serving engine: shape-bucketed dynamic batching");
      ("model", Json.String (Fmt.str "dense_relu Anyx%d->%d" feature_dim out_dim));
      ( "engine",
        Json.Obj
          [
            ("workers", Json.Int engine_config.Serve.Engine.workers);
            ("max_batch", Json.Int engine_config.Serve.Engine.max_batch);
            ("max_wait_us", Json.Float engine_config.Serve.Engine.max_wait_us);
            ("queue_capacity", Json.Int engine_config.Serve.Engine.queue_capacity);
          ] );
      ( "points",
        Json.List (List.map (fun (p, r, ru) -> point_json p r ru) results) );
    ]

let run () =
  let cache = Serve.Cache.create () in
  let exe = Serve.Cache.load cache ~name:"dense_relu" ~build:build_module in
  let exe_unplanned =
    Serve.Cache.load cache ~name:"dense_relu_unplanned"
      ~options:{ Nimble.default_options with Nimble.symbolic_plan = false }
      ~build:build_module
  in
  let results =
    List.map (fun p -> (p, run_point exe p, run_point exe_unplanned p)) points
  in
  if !Bench_util.json_mode then print_endline (Json.to_string (doc_json results))
  else begin
    Bench_util.print_table
      ~title:
        (Fmt.str "Serving engine (dense_relu Anyx%d->%d, %d workers, batch<=%d)"
           feature_dim out_dim engine_config.Serve.Engine.workers
           engine_config.Serve.Engine.max_batch)
      ~unit:"offered rps / mix"
      ~columns:[ "achieved"; "p50 ms"; "p99 ms"; "mean batch"; "allocs/req" ]
      (List.map
         (fun (p, (r : Serve.Loadgen.result), _) ->
           let s = r.Serve.Loadgen.summary in
           ( Fmt.str "%.0f %s" p.p_rate p.p_mix_name,
             [
               Some r.Serve.Loadgen.achieved_rps;
               Some s.Serve.Stats.s_p50_ms;
               Some s.Serve.Stats.s_p99_ms;
               Some s.Serve.Stats.s_mean_batch;
               Some s.Serve.Stats.s_allocs_per_request;
             ] ))
         results);
    List.iter
      (fun (p, (r : Serve.Loadgen.result), (ru : Serve.Loadgen.result)) ->
        Fmt.pr "@.%.0f rps, %s:@.%a@.(unplanned allocs/request %.3f)@."
          p.p_rate p.p_mix_name Serve.Stats.pp_summary r.Serve.Loadgen.summary
          ru.Serve.Loadgen.summary.Serve.Stats.s_allocs_per_request)
      results
  end
