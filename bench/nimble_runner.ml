(** Drive the Nimble VM under the performance simulator.

    Kernel executions inside the VM already report to the trace; this
    wrapper additionally converts the VM profiler's counters (instructions
    executed, kernels launched, bytes transferred) into framework events so
    the estimator can price the VM's own dynamism-handling overhead. *)

module Trace = Nimble_codegen.Trace
module Interp = Nimble_vm.Interp
module Profiler = Nimble_vm.Profiler
module Pool = Nimble_device.Pool

(** When set (bench [--profile-json]), every {!invoke} appends one compact
    [nimble-profile/v1] JSON line to stdout with the VM profiler's
    cumulative state after the call — the same schema the CLI's
    [--report] embeds (see [docs/OBSERVABILITY.md]). *)
let json_dump = ref false

type snapshot = { instrs : int; kernels : int; transfer_bytes : int }

let snapshot vm =
  let p = Interp.profiler vm in
  let transfer_bytes =
    Hashtbl.fold
      (fun _ (s : Pool.stats) acc -> acc + s.Pool.transfer_bytes_in)
      p.Profiler.pool.Pool.per_device 0
  in
  {
    instrs = Profiler.total_instrs p;
    kernels = p.Profiler.kernel_invocations;
    transfer_bytes;
  }

(** Invoke the VM once, emitting VM-overhead events for the delta of the
    profiler counters.
    @param ctx reuse a warm execution context (register frame) across
    calls, as the serving workers do. *)
let invoke ?ctx vm args =
  let before = snapshot vm in
  let result = Interp.invoke ?ctx vm args in
  let after = snapshot vm in
  Trace.record_framework "vm_instruction" ~amount:(after.instrs - before.instrs) ();
  Trace.record_framework "vm_kernel_launch" ~amount:(after.kernels - before.kernels) ();
  if after.transfer_bytes > before.transfer_bytes then
    Trace.record_framework "vm_transfer_bytes"
      ~amount:(after.transfer_bytes - before.transfer_bytes)
      ();
  if !json_dump then
    print_endline (Nimble_vm.Json.to_string (Profiler.to_json (Interp.profiler vm)));
  result
