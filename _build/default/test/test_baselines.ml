(* Baseline framework tests: every baseline must compute exactly what the
   reference computes (their differences are architectural, not numerical),
   and must emit the framework events its cost model prices. *)

open Nimble_tensor
open Nimble_models
open Nimble_baselines
module Trace = Nimble_codegen.Trace

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4)

let capture f =
  let events = ref [] in
  let result = Trace.with_listener (fun ev -> events := ev :: !events) f in
  (result, List.rev !events)

let count_framework kind events =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Trace.Framework { kind = k; amount } when k = kind -> acc + amount
      | _ -> acc)
    0 events

let count_ops events =
  List.length (List.filter (function Trace.Op_exec _ -> true | _ -> false) events)

(* ---------------------------- LSTM ---------------------------- *)

let lstm_w = Lstm.init_weights Lstm.small_config
let lstm_xs = Lstm.random_sequence Lstm.small_config ~len:5
let lstm_ref = Lstm.reference lstm_w lstm_xs

let test_eager_lstm () =
  let out, events = capture (fun () -> Eager.lstm lstm_w lstm_xs) in
  Alcotest.check tensor_eq "matches reference" lstm_ref out;
  Alcotest.(check bool) "dispatch events" true (count_framework "eager_dispatch" events > 0);
  Alcotest.(check bool) "graph nodes per op" true
    (count_framework "eager_graph_node" events = count_framework "eager_dispatch" events);
  Alcotest.(check int) "host step per token" 5 (count_framework "eager_host_step" events)

let test_graph_cf_lstm () =
  let out, events = capture (fun () -> Graph_cf.lstm lstm_w lstm_xs) in
  Alcotest.check tensor_eq "matches reference" lstm_ref out;
  (* 5 control-flow primitives per loop iteration *)
  List.iter
    (fun p ->
      Alcotest.(check int) ("cf_" ^ p) 5 (count_framework ("cf_" ^ p) events))
    [ "Enter"; "Merge"; "Switch"; "NextIteration"; "Exit" ]

let test_hybrid_lstm_bind_caching () =
  Hybrid.reset_cache ();
  let out, events1 = capture (fun () -> Hybrid.lstm lstm_w lstm_xs) in
  Alcotest.check tensor_eq "matches reference" lstm_ref out;
  Alcotest.(check bool) "bind on first call" true (count_framework "hybrid_bind" events1 > 0);
  let _, events2 = capture (fun () -> Hybrid.lstm lstm_w lstm_xs) in
  Alcotest.(check int) "no rebind on same shape" 0 (count_framework "hybrid_bind" events2);
  Alcotest.(check int) "subgraph exec per step" 5
    (count_framework "hybrid_subgraph_exec" events2)

let test_padded_lstm () =
  let out = Padded.lstm ~max_len:16 lstm_w lstm_xs in
  Alcotest.check tensor_eq "padding preserves result" lstm_ref out;
  Alcotest.(check bool) "waste fraction" true
    (abs_float (Padded.waste ~max_len:10 [ 5; 5 ] -. 0.5) < 1e-9)

let test_padded_rejects_overflow () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Padded.lstm ~max_len:3 lstm_w lstm_xs);
       false
     with Invalid_argument _ -> true)

(* ---------------------------- Tree-LSTM ---------------------------- *)

let tree_w = Tree_lstm.init_weights Tree_lstm.small_config

let make_tree seed tokens =
  let rng = Rng.create ~seed in
  let rec build n =
    if n <= 1 then
      Tree_lstm.Leaf (Tensor.randn ~scale:0.5 rng [| 1; Tree_lstm.small_config.Tree_lstm.input_size |])
    else
      let left = 1 + Rng.int rng (n - 1) in
      Tree_lstm.Node (build left, build (n - left))
  in
  build tokens

let test_eager_tree_lstm () =
  let t = make_tree 4 9 in
  let expected = Tree_lstm.reference tree_w t in
  let out, events = capture (fun () -> Eager.tree_lstm tree_w t) in
  Alcotest.check tensor_eq "matches reference" expected out;
  (* one recursion event per tree node: 9 leaves -> 17 nodes *)
  Alcotest.(check int) "per-node recursion" 17 (count_framework "eager_host_recursion" events)

let test_fold_tree_lstm_batching () =
  List.iter
    (fun tokens ->
      let t = make_tree (100 + tokens) tokens in
      let expected = Tree_lstm.reference tree_w t in
      let out, events = capture (fun () -> Fold.tree_lstm tree_w t) in
      Alcotest.check tensor_eq (Fmt.str "tokens=%d" tokens) expected out;
      (* recompilation charged per node, per input *)
      Alcotest.(check int)
        (Fmt.str "recompile nodes=%d" tokens)
        ((2 * tokens) - 1)
        (count_framework "fold_recompile" events);
      (* batching means strictly fewer kernel invocations than eager *)
      let _, eager_events = capture (fun () -> Eager.tree_lstm tree_w t) in
      if tokens > 2 then
        Alcotest.(check bool) "fewer kernels than eager" true
          (count_ops events < count_ops eager_events))
    [ 1; 2; 5; 12 ]

(* ---------------------------- BERT ---------------------------- *)

let bert_w = Bert.init_weights Bert.small_config

let test_all_bert_baselines_agree () =
  let x = Bert.embed bert_w (Bert.random_ids bert_w ~len:7) in
  let expected = Bert.reference bert_w x in
  Hybrid.reset_cache ();
  Alcotest.check tensor_eq "eager" expected (Eager.bert bert_w x);
  Alcotest.check tensor_eq "graph" expected (Graph_cf.bert bert_w x);
  Alcotest.check tensor_eq "hybrid" expected (Hybrid.bert bert_w x)

let test_hybrid_bert_bucketing () =
  Hybrid.reset_cache ();
  let run len =
    capture (fun () -> Hybrid.bert bert_w (Bert.embed bert_w (Bert.random_ids bert_w ~len)))
  in
  let _, e1 = run 7 in
  let _, e2 = run 9 in
  (* 7 and 9 share the 16-bucket: second call must not rebind *)
  Alcotest.(check bool) "first binds" true (count_framework "hybrid_bind" e1 > 0);
  Alcotest.(check int) "bucketed reuse" 0 (count_framework "hybrid_bind" e2);
  let _, e3 = run 20 in
  Alcotest.(check bool) "new bucket binds" true (count_framework "hybrid_bind" e3 > 0)

let prop_fold_matches_reference =
  QCheck.Test.make ~name:"fold batching = reference for random trees" ~count:20
    (QCheck.int_range 1 15) (fun tokens ->
      let t = make_tree (1000 + tokens) tokens in
      Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4
        (Tree_lstm.reference tree_w t)
        (Fold.tree_lstm tree_w t))

let prop_eager_lstm_matches_reference =
  QCheck.Test.make ~name:"eager lstm = reference for random lengths" ~count:15
    (QCheck.int_range 1 12) (fun len ->
      let xs = Lstm.random_sequence Lstm.small_config ~len in
      Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4
        (Lstm.reference lstm_w xs)
        (Eager.lstm lstm_w xs))

let () =
  Alcotest.run "baselines"
    [
      ( "lstm",
        [
          Alcotest.test_case "eager (PyTorch-like)" `Quick test_eager_lstm;
          Alcotest.test_case "graph+cf (TF-like)" `Quick test_graph_cf_lstm;
          Alcotest.test_case "hybrid binds (MXNet-like)" `Quick test_hybrid_lstm_bind_caching;
          Alcotest.test_case "padded static" `Quick test_padded_lstm;
          Alcotest.test_case "padded overflow" `Quick test_padded_rejects_overflow;
          QCheck_alcotest.to_alcotest prop_eager_lstm_matches_reference;
        ] );
      ( "tree_lstm",
        [
          Alcotest.test_case "eager recursion" `Quick test_eager_tree_lstm;
          Alcotest.test_case "fold dynamic batching" `Quick test_fold_tree_lstm_batching;
          QCheck_alcotest.to_alcotest prop_fold_matches_reference;
        ] );
      ( "bert",
        [
          Alcotest.test_case "all baselines agree" `Quick test_all_bert_baselines_agree;
          Alcotest.test_case "hybrid bucketing" `Quick test_hybrid_bert_bucketing;
        ] );
    ]
