(* Model tests: each IR build must compile through the full Nimble pipeline
   and agree numerically with the reference (direct-kernel) execution. *)

open Nimble_tensor
open Nimble_models
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp
module Obj = Nimble_vm.Obj
module Adt = Nimble_ir.Adt

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-3 ~rtol:1e-3)

(* ------------------------- LSTM ------------------------- *)

let lstm_input_obj (w : Lstm.weights) xs =
  let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
  let adt = Adt.tensor_list ~elem_ty in
  ignore w;
  let nil = Adt.ctor_exn adt "Nil" and cons = Adt.ctor_exn adt "Cons" in
  List.fold_right
    (fun x acc -> Obj.Adt { tag = cons.Adt.tag; fields = [| Obj.tensor x; acc |] })
    xs
    (Obj.Adt { tag = nil.Adt.tag; fields = [||] })

let test_lstm_matches_reference () =
  let w = Lstm.init_weights Lstm.small_config in
  let exe = Nimble.compile (Lstm.ir_module w) in
  let vm = Nimble.vm exe in
  List.iter
    (fun len ->
      let xs = Lstm.random_sequence w.Lstm.config ~len in
      let out = Obj.to_tensor (Interp.invoke vm [ lstm_input_obj w xs ]) in
      let expected = Lstm.reference w xs in
      Alcotest.check tensor_eq (Fmt.str "len=%d" len) expected out)
    [ 1; 2; 5; 9 ]

let test_lstm_two_layers () =
  let w = Lstm.init_weights { Lstm.small_config with Lstm.num_layers = 2 } in
  let exe = Nimble.compile (Lstm.ir_module w) in
  let vm = Nimble.vm exe in
  let xs = Lstm.random_sequence w.Lstm.config ~len:6 in
  let out = Obj.to_tensor (Interp.invoke vm [ lstm_input_obj w xs ]) in
  Alcotest.check tensor_eq "2-layer" (Lstm.reference w xs) out

let test_lstm_one_executable_many_lengths () =
  (* the same compiled executable must serve every sequence length *)
  let w = Lstm.init_weights Lstm.small_config in
  let exe = Nimble.compile (Lstm.ir_module w) in
  let vm = Nimble.vm exe in
  List.iter
    (fun len ->
      let xs = Lstm.random_sequence w.Lstm.config ~len in
      let out = Obj.to_tensor (Interp.invoke vm [ lstm_input_obj w xs ]) in
      Alcotest.(check (array int))
        (Fmt.str "shape len=%d" len)
        [| 1; w.Lstm.config.Lstm.hidden_size |]
        (Tensor.shape out))
    [ 3; 7; 11 ]

(* ------------------------- Tree-LSTM ------------------------- *)

let rec tree_obj (leaf : Adt.ctor) (node : Adt.ctor) = function
  | Tree_lstm.Leaf x -> Obj.Adt { tag = leaf.Adt.tag; fields = [| Obj.tensor x |] }
  | Tree_lstm.Node (l, r) ->
      Obj.Adt
        { tag = node.Adt.tag; fields = [| tree_obj leaf node l; tree_obj leaf node r |] }

let random_tree (config : Tree_lstm.config) ~tokens ~seed =
  let rng = Rng.create ~seed in
  let leaf () = Tree_lstm.Leaf (Tensor.randn ~scale:0.5 rng [| 1; config.Tree_lstm.input_size |]) in
  let rec build n = if n <= 1 then leaf () else
    let left = 1 + Rng.int rng (n - 1) in
    Tree_lstm.Node (build left, build (n - left))
  in
  build tokens

let test_tree_lstm_matches_reference () =
  let w = Tree_lstm.init_weights Tree_lstm.small_config in
  let leaf, node = Tree_lstm.ctors w in
  let exe = Nimble.compile (Tree_lstm.ir_module w) in
  let vm = Nimble.vm exe in
  List.iter
    (fun tokens ->
      let t = random_tree w.Tree_lstm.config ~tokens ~seed:(100 + tokens) in
      let out = Obj.to_tensor (Interp.invoke vm [ tree_obj leaf node t ]) in
      let expected = Tree_lstm.reference w t in
      Alcotest.check tensor_eq (Fmt.str "tokens=%d" tokens) expected out)
    [ 1; 2; 4; 7 ]

let test_tree_lstm_output_is_distribution () =
  let w = Tree_lstm.init_weights Tree_lstm.small_config in
  let t = random_tree w.Tree_lstm.config ~tokens:5 ~seed:55 in
  let out = Tree_lstm.reference w t in
  let total = Tensor.item (Ops_reduce.sum out) in
  Alcotest.(check bool) "softmax sums to 1" true (Float.abs (total -. 1.0) < 1e-4)

(* ------------------------- BERT ------------------------- *)

let test_bert_matches_reference () =
  let w = Bert.init_weights Bert.small_config in
  let exe = Nimble.compile (Bert.ir_module w) in
  let vm = Nimble.vm exe in
  List.iter
    (fun len ->
      let x = Bert.embed w (Bert.random_ids w ~len) in
      let out = Interp.run_tensors vm [ x ] in
      let expected = Bert.reference w x in
      Alcotest.check tensor_eq (Fmt.str "seq=%d" len) expected out)
    [ 3; 8; 13 ]

let test_bert_static_build () =
  let w = Bert.init_weights Bert.small_config in
  let exe = Nimble.compile (Bert.ir_module_static w ~seq_len:8) in
  let vm = Nimble.vm exe in
  let x = Bert.embed w (Bert.random_ids w ~len:8) in
  let out = Interp.run_tensors vm [ x ] in
  Alcotest.check tensor_eq "static seq=8" (Bert.reference w x) out

let test_bert_static_executor () =
  let w = Bert.init_weights Bert.small_config in
  let plan = Nimble.compile_static (Bert.ir_module_static w ~seq_len:8) in
  let x = Bert.embed w (Bert.random_ids w ~len:8) in
  let out = Nimble_compiler.Static_exec.run plan [ x ] in
  Alcotest.check tensor_eq "static executor" (Bert.reference w x) out

(* ------------------------- Vision ------------------------- *)

let test_vision_compile_and_run () =
  List.iter
    (fun (name, build) ->
      let m = build () in
      let exe = Nimble.compile m in
      let vm = Nimble.vm exe in
      let out = Interp.run_tensors vm [ Vision.random_input () ] in
      Alcotest.(check int) (name ^ " classes") 10 (Tensor.shape out).(1))
    Vision.all

let () =
  Alcotest.run "models"
    [
      ( "lstm",
        [
          Alcotest.test_case "matches reference" `Quick test_lstm_matches_reference;
          Alcotest.test_case "two layers" `Quick test_lstm_two_layers;
          Alcotest.test_case "one exe, many lengths" `Quick
            test_lstm_one_executable_many_lengths;
        ] );
      ( "tree_lstm",
        [
          Alcotest.test_case "matches reference" `Quick test_tree_lstm_matches_reference;
          Alcotest.test_case "softmax head" `Quick test_tree_lstm_output_is_distribution;
        ] );
      ( "bert",
        [
          Alcotest.test_case "matches reference (dynamic)" `Quick test_bert_matches_reference;
          Alcotest.test_case "static build" `Quick test_bert_static_build;
          Alcotest.test_case "static executor" `Quick test_bert_static_executor;
        ] );
      ("vision", [ Alcotest.test_case "compile and run" `Slow test_vision_compile_and_run ]);
    ]
