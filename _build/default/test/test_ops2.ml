(* Tests for the second wave of operators (erf, power, where, log_softmax,
   comparison and logical ops): registry/relations/shape-funcs/kernels agree,
   and everything compiles end-to-end through the VM. *)

open Nimble_tensor
open Nimble_ir
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4)
let rng = Rng.create ~seed:71

let new_ops =
  [
    "erf"; "power"; "less_equal"; "greater_equal"; "not_equal"; "logical_and";
    "logical_or"; "logical_not"; "where"; "log_softmax";
  ]

let test_registered_everywhere () =
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " in op registry") true (Op.exists name);
      Alcotest.(check bool)
        (name ^ " has type relation")
        true
        (Nimble_typing.Relations.find name <> None);
      Alcotest.(check bool)
        (name ^ " has shape function")
        true
        (Nimble_shape.Shape_func.find name <> None))
    new_ops

let eval1 name ?(attrs = []) args = Nimble_codegen.Op_eval.eval1 name ~attrs args

let test_kernels () =
  let x = Tensor.of_float_array [| 3 |] [| 1.; 2.; 3. |] in
  let y = Tensor.of_float_array [| 3 |] [| 3.; 2.; 1. |] in
  Alcotest.check tensor_eq "power" (Tensor.of_float_array [| 3 |] [| 1.; 4.; 3. |])
    (eval1 "power" [ x; y ]);
  Alcotest.(check (list int)) "le" [ 1; 1; 0 ]
    (Array.to_list (Tensor.to_int_array (eval1 "less_equal" [ x; y ])));
  Alcotest.(check (list int)) "ge" [ 0; 1; 1 ]
    (Array.to_list (Tensor.to_int_array (eval1 "greater_equal" [ x; y ])));
  Alcotest.(check (list int)) "ne" [ 1; 0; 1 ]
    (Array.to_list (Tensor.to_int_array (eval1 "not_equal" [ x; y ])));
  let b0 = Tensor.of_int_array ~dtype:Dtype.U8 [| 2 |] [| 1; 0 |] in
  let b1 = Tensor.of_int_array ~dtype:Dtype.U8 [| 2 |] [| 1; 1 |] in
  Alcotest.(check (list int)) "and" [ 1; 0 ]
    (Array.to_list (Tensor.to_int_array (eval1 "logical_and" [ b0; b1 ])));
  Alcotest.(check (list int)) "or" [ 1; 1 ]
    (Array.to_list (Tensor.to_int_array (eval1 "logical_or" [ b0; b1 ])));
  Alcotest.(check (list int)) "not" [ 0; 1 ]
    (Array.to_list (Tensor.to_int_array (eval1 "logical_not" [ b0 ])));
  Alcotest.check tensor_eq "where" (Tensor.of_float_array [| 2 |] [| 9.; 0. |])
    (eval1 "where" [ b0; Tensor.full [| 2 |] 9.0; Tensor.zeros [| 2 |] ]);
  (* log_softmax = log(softmax) *)
  let z = Tensor.randn rng [| 2; 4 |] in
  Alcotest.check tensor_eq "log_softmax"
    (Ops_elem.log (Ops_nn.softmax ~axis:1 z))
    (eval1 "log_softmax" ~attrs:[ ("axis", Attrs.Int 1) ] [ z ])

let test_e2e_through_vm () =
  (* a graph exercising the new ops, dynamic rows, full pipeline *)
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 6 ]) "x" in
  let body =
    (* where(x > 0, erf(x), -x) then log_softmax rows *)
    Expr.op_call ~attrs:[ ("axis", Attrs.Int (-1)) ] "log_softmax"
      [
        Expr.op_call "where"
          [
            Expr.op_call "greater" [ Expr.Var x; Expr.const_scalar 0.0 ];
            Expr.op_call "erf" [ Expr.Var x ];
            Expr.op_call "negative" [ Expr.Var x ];
          ];
      ]
  in
  let m = Irmod.of_main (Expr.fn_def [ x ] body) in
  let vm = Nimble.vm (Nimble.compile m) in
  List.iter
    (fun rows ->
      let input = Tensor.randn rng [| rows; 6 |] in
      let expected =
        Ops_nn.log_softmax ~axis:(-1)
          (Ops_elem.where
             (Ops_elem.greater input (Tensor.scalar 0.0))
             (Ops_elem.erf input) (Ops_elem.neg input))
      in
      Alcotest.check tensor_eq (Fmt.str "rows=%d" rows) expected
        (Interp.run_tensors vm [ input ]))
    [ 1; 4; 9 ]

let test_elemwise_new_ops_fuse () =
  (* erf and where participate in fusion like any elementwise op *)
  let x = Expr.fresh_var ~ty:(Ty.tensor_of_shape [| 4 |]) "x" in
  let body = Expr.op_call "erf" [ Expr.op_call "relu" [ Expr.Var x ] ] in
  let m = Irmod.of_main (Expr.fn_def [ x ] body) in
  let m = Nimble_passes.Anf.run m in
  ignore (Nimble_typing.Infer.infer_module m);
  let m = Nimble_passes.Fusion.run m in
  let fn = Irmod.func_exn m "main" in
  match Nimble_passes.Fusion.primitives_of fn.Expr.body with
  | [ p ] ->
      Alcotest.(check (list string)) "fused" [ "relu"; "erf" ]
        (Nimble_passes.Fusion.primitive_ops p)
  | ps -> Alcotest.failf "expected 1 primitive, got %d" (List.length ps)

let prop_where_select_semantics =
  QCheck.Test.make ~name:"where = manual select" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (m, n) ->
      let rng = Rng.create ~seed:(m * 31 + n) in
      let a = Tensor.randn rng [| m; n |] and b = Tensor.randn rng [| m; n |] in
      let c = Ops_elem.greater a b in
      let out = Ops_elem.where c a b in
      let expected = Ops_elem.maximum a b in
      Tensor.approx_equal out expected)

let prop_log_softmax_stable =
  QCheck.Test.make ~name:"log_softmax finite under large inputs" ~count:30
    (QCheck.int_range 1 5) (fun n ->
      let rng = Rng.create ~seed:n in
      let x = Tensor.randn ~scale:100.0 rng [| n; 4 |] in
      let out = Ops_nn.log_softmax ~axis:1 x in
      Array.for_all (fun v -> not (Float.is_nan v)) (Tensor.to_float_array out))

let () =
  Alcotest.run "ops2"
    [
      ( "registration",
        [ Alcotest.test_case "all layers" `Quick test_registered_everywhere ] );
      ("kernels", [ Alcotest.test_case "values" `Quick test_kernels ]);
      ( "pipeline",
        [
          Alcotest.test_case "e2e through VM" `Quick test_e2e_through_vm;
          Alcotest.test_case "new ops fuse" `Quick test_elemwise_new_ops_fuse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_where_select_semantics; prop_log_softmax_stable ] );
    ]
