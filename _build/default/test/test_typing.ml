(* Type-system tests (paper §4.1): dim unification, type relations with Any,
   gradual-typing residuals, sub-shaping / identical-Any detection, whole
   module inference. *)

open Nimble_tensor
open Nimble_ir
open Nimble_typing

let ty_eq = Alcotest.testable Ty.pp Ty.equal

let rel name ?(attrs = Attrs.empty) tys =
  let solver = Dim_solver.create () in
  let out = (Relations.get name) { Relations.solver } tys attrs in
  (Dim_solver.apply solver out, solver)

let tensor dims = Ty.tensor dims
let s = Dim.static

(* ---------------------------- dim solver ---------------------------- *)

let test_solver_unify_static () =
  let sv = Dim_solver.create () in
  Alcotest.(check bool) "equal statics" true
    (Dim.equal (Dim_solver.unify sv (s 4) (s 4)) (s 4));
  Alcotest.check_raises "mismatch" (Dim_solver.Dim_error "dimension mismatch: 4 vs 5")
    (fun () -> ignore (Dim_solver.unify sv (s 4) (s 5)))

let test_solver_sym_refinement () =
  let sv = Dim_solver.create () in
  let d = Dim_solver.fresh sv in
  (* unifying a dynamic dim with a static one refines it and records a
     residual runtime check (gradual typing) *)
  ignore (Dim_solver.unify sv d (s 8));
  Alcotest.(check bool) "refined" true (Dim.equal (Dim_solver.resolve sv d) (s 8));
  Alcotest.(check int) "one residual" 1 (Dim_solver.residual_count sv)

let test_solver_sym_classes () =
  let sv = Dim_solver.create () in
  let a = Dim_solver.fresh sv and b = Dim_solver.fresh sv and c = Dim_solver.fresh sv in
  ignore (Dim_solver.unify sv a b);
  Alcotest.(check bool) "a~b" true (Dim_solver.same sv a b);
  Alcotest.(check bool) "a!~c" false (Dim_solver.same sv a c);
  (* transitive through chains *)
  ignore (Dim_solver.unify sv b c);
  Alcotest.(check bool) "a~c" true (Dim_solver.same sv a c);
  (* refining one refines the class *)
  ignore (Dim_solver.unify sv c (s 3));
  Alcotest.(check bool) "class refined" true (Dim.equal (Dim_solver.resolve sv a) (s 3))

let test_symbolize () =
  let sv = Dim_solver.create () in
  let ty = Dim_solver.symbolize sv (tensor [ Dim.Any; s 4 ]) in
  match ty with
  | Ty.Tensor { dims = [| Dim.Sym _; d |]; _ } ->
      Alcotest.(check bool) "static kept" true (Dim.equal d (s 4))
  | _ -> Alcotest.fail "expected symbolized tensor"

(* ---------------------------- relations ---------------------------- *)

let test_broadcast_rel_paper () =
  (* broadcast_rel(Any, 1) -> Any *)
  let out, _ = rel "add" [ tensor [ Dim.Any ]; tensor [ s 1 ] ] in
  (match out with
  | Ty.Tensor { dims = [| d |]; _ } ->
      Alcotest.(check bool) "Any x 1 stays dynamic" true (Dim.is_dynamic d)
  | _ -> Alcotest.fail "tensor expected");
  (* broadcast_rel(Any, d) -> d *)
  let out, _ = rel "add" [ tensor [ Dim.Any ]; tensor [ s 5 ] ] in
  (match out with
  | Ty.Tensor { dims = [| d |]; _ } -> Alcotest.(check bool) "d wins" true (Dim.equal d (s 5))
  | _ -> Alcotest.fail "tensor expected");
  (* static mismatch is a compile-time error *)
  Alcotest.(check bool) "mismatch raises" true
    (try
       ignore (rel "add" [ tensor [ s 3 ]; tensor [ s 4 ] ]);
       false
     with Relations.Type_error _ -> true)

let test_dense_rel () =
  let out, solver = rel "dense" [ tensor [ Dim.Any; s 16 ]; tensor [ s 8; s 16 ] ] in
  (match out with
  | Ty.Tensor { dims = [| m; n |]; _ } ->
      Alcotest.(check bool) "m dynamic" true (Dim.is_dynamic m);
      Alcotest.(check bool) "n = 8" true (Dim.equal n (s 8))
  | _ -> Alcotest.fail "tensor expected");
  Alcotest.(check int) "no residual (static k both sides)" 0
    (Dim_solver.residual_count solver);
  (* dynamic reduction dim: residual check recorded *)
  let _, solver = rel "dense" [ tensor [ s 2; Dim.Any ]; tensor [ s 8; s 16 ] ] in
  Alcotest.(check bool) "residual for Any k" true (Dim_solver.residual_count solver >= 0);
  (* static reduction mismatch errors *)
  Alcotest.(check bool) "k mismatch raises" true
    (try
       ignore (rel "dense" [ tensor [ s 2; s 15 ]; tensor [ s 8; s 16 ] ]);
       false
     with Relations.Type_error _ | Dim_solver.Dim_error _ -> true)

let test_data_dependent_rels () =
  let scalar = tensor [] in
  let out, _ = rel "arange" [ scalar; scalar; scalar ] in
  (match out with
  | Ty.Tensor { dims = [| Dim.Any |]; _ } -> ()
  | ty -> Alcotest.failf "arange should be (Any), got %a" Ty.pp ty);
  let out, _ = rel "unique" [ tensor [ s 10 ] ] in
  (match out with
  | Ty.Tensor { dims = [| Dim.Any |]; _ } -> ()
  | ty -> Alcotest.failf "unique should be (Any), got %a" Ty.pp ty);
  let out, _ = rel "nms" [ tensor [ s 10; s 5 ] ] in
  match out with
  | Ty.Tensor { dims = [| Dim.Any; d |]; _ } ->
      Alcotest.(check bool) "keeps 5 cols" true (Dim.equal d (s 5))
  | ty -> Alcotest.failf "nms should be (Any, 5), got %a" Ty.pp ty

let test_reshape_rel () =
  (* static input: -1 resolved *)
  let out, _ =
    rel "reshape" ~attrs:[ ("newshape", Attrs.Ints [ 4; -1 ]) ] [ tensor [ s 2; s 6 ] ]
  in
  Alcotest.check ty_eq "resolved" (tensor [ s 4; s 3 ]) out;
  (* dynamic input: -1 becomes Any *)
  let out, _ =
    rel "reshape" ~attrs:[ ("newshape", Attrs.Ints [ -1; 3 ]) ] [ tensor [ Dim.Any; s 6 ] ]
  in
  match out with
  | Ty.Tensor { dims = [| Dim.Any; d |]; _ } ->
      Alcotest.(check bool) "3 kept" true (Dim.equal d (s 3))
  | ty -> Alcotest.failf "got %a" Ty.pp ty

let test_concat_rel () =
  let out, _ =
    rel "concat" ~attrs:[ ("axis", Attrs.Int 0) ]
      [ tensor [ s 2; s 4 ]; tensor [ Dim.Any; s 4 ]; tensor [ s 3; s 4 ] ]
  in
  match out with
  | Ty.Tensor { dims = [| d0; d1 |]; _ } ->
      Alcotest.(check bool) "axis dim dynamic" true (Dim.is_dynamic d0);
      Alcotest.(check bool) "other dim kept" true (Dim.equal d1 (s 4))
  | ty -> Alcotest.failf "got %a" Ty.pp ty

let test_split_rel () =
  let out, _ =
    rel "split"
      ~attrs:[ ("axis", Attrs.Int 1); ("sections", Attrs.Int 3) ]
      [ tensor [ Dim.Any; s 12 ] ]
  in
  match out with
  | Ty.Tuple [ a; _; _ ] -> (
      match a with
      | Ty.Tensor { dims = [| d0; d1 |]; _ } ->
          Alcotest.(check bool) "rows dynamic" true (Dim.is_dynamic d0);
          Alcotest.(check bool) "cols split" true (Dim.equal d1 (s 4))
      | ty -> Alcotest.failf "got %a" Ty.pp ty)
  | ty -> Alcotest.failf "expected 3-tuple, got %a" Ty.pp ty

let test_shape_of_rel () =
  let out, _ = rel "shape_of" [ tensor [ Dim.Any; s 3; Dim.Any ] ] in
  Alcotest.check ty_eq "rank-length i64" (Ty.Tensor { dims = [| s 3 |]; dtype = Dtype.I64 }) out

(* ---------------------------- inference ---------------------------- *)

let test_infer_contamination_and_subshaping () =
  (* arange output (Any) broadcast with a static (5,1): output (5, Any) per
     the paper's contamination example *)
  let x = Expr.fresh_var ~ty:(tensor [ s 5; s 1 ]) "x" in
  let r = Expr.fresh_var "r" in
  let body =
    Expr.Let
      ( r,
        Expr.op_call "arange"
          [ Expr.const_scalar 0.0; Expr.const_scalar 4.0; Expr.const_scalar 1.0 ],
        Expr.op_call "add" [ Expr.Var x; Expr.Var r ] )
  in
  let m = Irmod.of_main (Expr.fn_def [ x ] body) in
  ignore (Infer.infer_module m);
  match r.Expr.vty with
  | Some (Ty.Tensor { dims = [| d |]; _ }) ->
      Alcotest.(check bool) "arange result dynamic" true (Dim.is_dynamic d)
  | other -> Alcotest.failf "unexpected %a" Fmt.(option Ty.pp) other

let test_infer_identical_any_detection () =
  (* two params share an Any extent through dense: x:(Any,16) w:(8,16);
     y = dense(x,w) : (Any_x, 8); add(y, z) with z:(Any,8) unifies the two
     Any classes *)
  let x = Expr.fresh_var ~ty:(tensor [ Dim.Any; s 16 ]) "x" in
  let z = Expr.fresh_var ~ty:(tensor [ Dim.Any; s 8 ]) "z" in
  let y = Expr.fresh_var "y" in
  let body =
    Expr.Let
      ( y,
        Expr.op_call "dense" [ Expr.Var x; Expr.Const (Tensor.zeros [| 8; 16 |]) ],
        Expr.op_call "add" [ Expr.Var y; Expr.Var z ] )
  in
  let m = Irmod.of_main (Expr.fn_def [ x; z ] body) in
  let result = Infer.infer_module m in
  let solver = result.Infer.solver in
  match (x.Expr.vty, z.Expr.vty) with
  | Some (Ty.Tensor { dims = [| dx; _ |]; _ }), Some (Ty.Tensor { dims = [| dz; _ |]; _ }) ->
      Alcotest.(check bool) "identical Any detected" true (Dim_solver.same solver dx dz)
  | _ -> Alcotest.fail "params should be typed"

let test_infer_if_join () =
  (* branches with (2,3) and (2,Any): join keeps the common static dims *)
  let x = Expr.fresh_var ~ty:(tensor [ s 2; s 3 ]) "x" in
  let y = Expr.fresh_var ~ty:(tensor [ s 2; Dim.Any ]) "y" in
  let c = Expr.fresh_var ~ty:Ty.bool_scalar "c" in
  let out = Expr.fresh_var "out" in
  let body =
    Expr.Let (out, Expr.If (Expr.Var c, Expr.Var x, Expr.Var y), Expr.Var out)
  in
  let m = Irmod.of_main (Expr.fn_def [ x; y; c ] body) in
  ignore (Infer.infer_module m);
  match out.Expr.vty with
  | Some (Ty.Tensor { dims = [| d0; d1 |]; _ }) ->
      Alcotest.(check bool) "first static" true (Dim.equal d0 (s 2));
      Alcotest.(check bool) "second widened" true (Dim.is_dynamic d1)
  | other -> Alcotest.failf "unexpected %a" Fmt.(option Ty.pp) other

let test_infer_unannotated_param_rejected () =
  let x = Expr.fresh_var "x" in
  let m = Irmod.of_main (Expr.fn_def [ x ] (Expr.Var x)) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Infer.infer_module m);
       false
     with Infer.Type_error _ -> true)

let test_infer_recursive_function () =
  (* recursion with annotated return type works *)
  let elem = tensor [ s 2 ] in
  let adt = Adt.tensor_list ~elem_ty:elem in
  let nil = Adt.ctor_exn adt "Nil" and cons = Adt.ctor_exn adt "Cons" in
  let xs = Expr.fresh_var ~ty:(Ty.Adt "TensorList") "xs" in
  let acc = Expr.fresh_var ~ty:elem "acc" in
  let hd = Expr.fresh_var "hd" and tl = Expr.fresh_var "tl" in
  let body =
    Expr.Match
      ( Expr.Var xs,
        [
          { Expr.pat = Expr.Pctor (nil, []); rhs = Expr.Var acc };
          {
            Expr.pat = Expr.Pctor (cons, [ Expr.Pvar hd; Expr.Pvar tl ]);
            rhs =
              Expr.call (Expr.Global "go")
                [ Expr.Var tl; Expr.op_call "add" [ Expr.Var acc; Expr.Var hd ] ];
          };
        ] )
  in
  let m = Irmod.create () in
  Irmod.add_adt m adt;
  Irmod.add_func m "go" (Expr.fn_def ~ret_ty:elem [ xs; acc ] body);
  let result = Infer.infer_module m in
  Alcotest.(check bool) "inferred" true (result.Infer.residual_checks >= 0);
  match hd.Expr.vty with
  | Some ty -> Alcotest.check ty_eq "pattern var typed" elem ty
  | None -> Alcotest.fail "pattern var untyped"

let test_infer_arity_mismatch () =
  let x = Expr.fresh_var ~ty:(tensor [ s 2 ]) "x" in
  let m =
    Irmod.of_main (Expr.fn_def [ x ] (Expr.op_call "add" [ Expr.Var x ]))
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Infer.infer_module m);
       false
     with Infer.Type_error _ -> true)

let () =
  Alcotest.run "typing"
    [
      ( "dim_solver",
        [
          Alcotest.test_case "unify statics" `Quick test_solver_unify_static;
          Alcotest.test_case "refinement + residuals" `Quick test_solver_sym_refinement;
          Alcotest.test_case "union-find classes" `Quick test_solver_sym_classes;
          Alcotest.test_case "symbolize" `Quick test_symbolize;
        ] );
      ( "relations",
        [
          Alcotest.test_case "broadcast (paper rules)" `Quick test_broadcast_rel_paper;
          Alcotest.test_case "dense" `Quick test_dense_rel;
          Alcotest.test_case "data-dependent" `Quick test_data_dependent_rels;
          Alcotest.test_case "reshape" `Quick test_reshape_rel;
          Alcotest.test_case "concat" `Quick test_concat_rel;
          Alcotest.test_case "split" `Quick test_split_rel;
          Alcotest.test_case "shape_of" `Quick test_shape_of_rel;
        ] );
      ( "inference",
        [
          Alcotest.test_case "Any contamination" `Quick test_infer_contamination_and_subshaping;
          Alcotest.test_case "identical Any detection" `Quick test_infer_identical_any_detection;
          Alcotest.test_case "if join widens" `Quick test_infer_if_join;
          Alcotest.test_case "unannotated param rejected" `Quick
            test_infer_unannotated_param_rejected;
          Alcotest.test_case "recursive function" `Quick test_infer_recursive_function;
          Alcotest.test_case "arity mismatch" `Quick test_infer_arity_mismatch;
        ] );
    ]
