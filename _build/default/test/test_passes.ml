(* Pass tests: ANF (incl. DAG sharing), CSE, constant folding, DCE, fusion
   (pattern lattice + dynamic policy), manifest alloc, memory planning,
   device placement. *)

open Nimble_tensor
open Nimble_ir
open Nimble_passes

let s = Dim.static
let static_ty sh = Ty.tensor_of_shape (Shape.of_list sh)

let count_pred pred e =
  let n = ref 0 in
  Expr.iter (fun x -> if pred x then incr n) e;
  !n

let count_op name e =
  count_pred (function Expr.Call { callee = Expr.Op o; _ } -> o = name | _ -> false) e

let count_lets e = count_pred (function Expr.Let _ -> true | _ -> false) e

(* ---------------------------- ANF ---------------------------- *)

let test_anf_flattens () =
  let x = Expr.fresh_var ~ty:(static_ty [ 2 ]) "x" in
  let e =
    Expr.op_call "add"
      [ Expr.op_call "relu" [ Expr.Var x ]; Expr.op_call "tanh" [ Expr.Var x ] ]
  in
  let anf = Anf.convert e in
  Alcotest.(check bool) "is anf" true (Anf.is_anf anf);
  Alcotest.(check int) "three bindings" 3 (count_lets anf)

let test_anf_dag_sharing () =
  (* the same physical node used twice must be bound exactly once *)
  let x = Expr.fresh_var ~ty:(static_ty [ 2 ]) "x" in
  let shared = Expr.op_call "relu" [ Expr.Var x ] in
  let e = Expr.op_call "add" [ shared; shared ] in
  let anf = Anf.convert e in
  Alcotest.(check int) "relu bound once" 1 (count_op "relu" anf)

let test_anf_no_exponential_blowup () =
  (* a 30-deep doubling DAG: tree size 2^30, ANF size linear *)
  let x = Expr.fresh_var ~ty:(static_ty [ 2 ]) "x" in
  let e = ref (Expr.Var x) in
  for _ = 1 to 30 do
    e := Expr.op_call "add" [ !e; !e ]
  done;
  let anf = Anf.convert !e in
  Alcotest.(check bool) "linear size" true (Expr.size anf < 200)

let test_anf_branch_scoping () =
  (* a node first used inside a branch must not leak its binding outside *)
  let x = Expr.fresh_var ~ty:(static_ty [ 2 ]) "x" in
  let c = Expr.fresh_var ~ty:Ty.bool_scalar "c" in
  let shared = Expr.op_call "relu" [ Expr.Var x ] in
  let e =
    Expr.op_call "add"
      [ Expr.If (Expr.Var c, shared, Expr.op_call "tanh" [ Expr.Var x ]); shared ]
  in
  let anf = Anf.convert e in
  Alcotest.(check bool) "is anf" true (Anf.is_anf anf);
  (* conservative: relu may be computed twice (once per scope), never shared
     across the branch boundary — check no unbound variable by compiling
     through a var scan *)
  Alcotest.(check bool) "relu computed at least once" true (count_op "relu" anf >= 1)

(* ---------------------------- CSE ---------------------------- *)

let test_cse_dedupes () =
  let x = Expr.fresh_var ~ty:(static_ty [ 2 ]) "x" in
  (* two structurally identical but physically distinct subtrees *)
  let e =
    Expr.op_call "add"
      [ Expr.op_call "relu" [ Expr.Var x ]; Expr.op_call "relu" [ Expr.Var x ] ]
  in
  let m = Irmod.of_main (Expr.fn_def [ x ] e) in
  let m = Anf.run m in
  let m = Cse.run m in
  let m = Dce.run m in
  let fn = Irmod.func_exn m "main" in
  Alcotest.(check int) "one relu" 1 (count_op "relu" fn.Expr.body)

let test_cse_respects_branches () =
  let x = Expr.fresh_var ~ty:(static_ty [ 2 ]) "x" in
  let c = Expr.fresh_var ~ty:Ty.bool_scalar "c" in
  let relu () = Expr.op_call "relu" [ Expr.Var x ] in
  let e = Expr.If (Expr.Var c, relu (), relu ()) in
  let m = Irmod.of_main (Expr.fn_def [ x; c ] e) in
  let m = Anf.run m in
  let m = Cse.run m in
  let fn = Irmod.func_exn m "main" in
  (* each branch keeps its own copy: CSE must not move either out *)
  Alcotest.(check int) "two relus (one per branch)" 2 (count_op "relu" fn.Expr.body)

(* ---------------------------- const fold ---------------------------- *)

let test_const_fold () =
  let e = Expr.op_call "add" [ Expr.const_scalar 2.0; Expr.const_scalar 3.0 ] in
  match Const_fold.fold_expr e with
  | Expr.Const t -> Alcotest.(check (float 0.0)) "folded" 5.0 (Tensor.item t)
  | other -> Alcotest.failf "not folded: %a" Expr.pp other

let test_const_fold_if () =
  let e =
    Expr.If
      ( Expr.Const (Tensor.scalar 1.0),
        Expr.const_scalar 10.0,
        Expr.const_scalar 20.0 )
  in
  match Const_fold.fold_expr e with
  | Expr.Const t -> Alcotest.(check (float 0.0)) "true branch" 10.0 (Tensor.item t)
  | other -> Alcotest.failf "not folded: %a" Expr.pp other

let test_const_fold_skips_effectful () =
  let x = Expr.fresh_var "x" in
  let e =
    Expr.Let
      (x, Expr.op_call "memory.kill" [ Expr.const_scalar 0.0 ], Expr.const_scalar 1.0)
  in
  let folded = Const_fold.fold_expr e in
  Alcotest.(check int) "kill preserved" 1 (count_op "memory.kill" folded)

(* ---------------------------- DCE ---------------------------- *)

let test_dce_removes_dead_chain () =
  let x = Expr.fresh_var ~ty:(static_ty [ 2 ]) "x" in
  let a = Expr.fresh_var "a" and b = Expr.fresh_var "b" in
  let e =
    Expr.Let
      ( a,
        Expr.op_call "relu" [ Expr.Var x ],
        Expr.Let (b, Expr.op_call "tanh" [ Expr.Var a ], Expr.Var x) )
  in
  let swept = Dce.fix e in
  Alcotest.(check int) "all dead removed" 0 (count_lets swept)

let test_dce_keeps_effects () =
  let u = Expr.fresh_var "u" in
  let e =
    Expr.Let
      ( u,
        Expr.op_call "memory.invoke_mut" [ Expr.const_scalar 0.0 ],
        Expr.const_scalar 1.0 )
  in
  Alcotest.(check int) "invoke_mut kept" 1 (count_lets (Dce.fix e))

(* ---------------------------- fusion ---------------------------- *)

let fused_module body params =
  let m = Irmod.of_main (Expr.fn_def params body) in
  let m = Anf.run m in
  ignore (Nimble_typing.Infer.infer_module m);
  Fusion.run m

let primitives m =
  let fn = Irmod.func_exn m "main" in
  Fusion.primitives_of fn.Expr.body

let test_fusion_elemwise_chain () =
  let x = Expr.fresh_var ~ty:(static_ty [ 4 ]) "x" in
  let body =
    Expr.op_call "relu" [ Expr.op_call "tanh" [ Expr.op_call "sigmoid" [ Expr.Var x ] ] ]
  in
  let m = fused_module body [ x ] in
  match primitives m with
  | [ p ] ->
      Alcotest.(check (list string)) "three ops fused" [ "sigmoid"; "tanh"; "relu" ]
        (Fusion.primitive_ops p)
  | ps -> Alcotest.failf "expected 1 primitive, got %d" (List.length ps)

let test_fusion_dense_epilogue () =
  (* dense absorbs following elemwise ops but not a second dense *)
  let x = Expr.fresh_var ~ty:(static_ty [ 4; 8 ]) "x" in
  let w1 = Expr.Const (Tensor.zeros [| 8; 8 |]) in
  let w2 = Expr.Const (Tensor.zeros [| 8; 8 |]) in
  let body =
    Expr.op_call "dense"
      [ Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; w1 ] ]; w2 ]
  in
  let m = fused_module body [ x ] in
  let ps = primitives m in
  Alcotest.(check int) "two primitives" 2 (List.length ps);
  Alcotest.(check (list string)) "first fused with relu" [ "dense"; "relu" ]
    (Fusion.primitive_ops (List.hd ps))

let test_fusion_policy_blocks_data_dependent () =
  (* unique's shape function needs values: must not fuse with its producer *)
  let x = Expr.fresh_var ~ty:(static_ty [ 6 ]) "x" in
  let body = Expr.op_call "unique" [ Expr.op_call "relu" [ Expr.Var x ] ] in
  let m = fused_module body [ x ] in
  let ps = primitives m in
  Alcotest.(check int) "stays separate" 2 (List.length ps);
  List.iter
    (fun p ->
      Alcotest.(check int) "singletons" 1 (List.length (Fusion.primitive_ops p)))
    ps

let test_fusion_opaque_never_fuses () =
  let x = Expr.fresh_var ~ty:(static_ty [ 2; 4 ]) "x" in
  let body = Expr.op_call "relu" [ Expr.op_call "softmax" [ Expr.Var x ] ] in
  let m = fused_module body [ x ] in
  Alcotest.(check int) "softmax alone" 2 (List.length (primitives m))

let test_fusion_multi_consumer_blocks () =
  (* a producer with two consumers must not be duplicated into either *)
  let x = Expr.fresh_var ~ty:(static_ty [ 4 ]) "x" in
  let shared = Expr.op_call "sigmoid" [ Expr.Var x ] in
  let body = Expr.op_call "add" [ Expr.op_call "relu" [ shared ]; shared ] in
  let m = fused_module body [ x ] in
  let total_sigmoids =
    List.fold_left
      (fun acc p ->
        acc + List.length (List.filter (( = ) "sigmoid") (Fusion.primitive_ops p)))
      0 (primitives m)
  in
  Alcotest.(check int) "sigmoid computed once" 1 total_sigmoids

let test_fusion_reduce_closes_group () =
  let x = Expr.fresh_var ~ty:(static_ty [ 4 ]) "x" in
  let body =
    Expr.op_call "relu"
      [ Expr.op_call ~attrs:[ ("axis", Attrs.Int 0) ] "sum"
          [ Expr.op_call "tanh" [ Expr.Var x ] ] ]
  in
  let m = fused_module body [ x ] in
  let ps = primitives m in
  (* tanh fuses into sum; relu after the reduction starts a new group *)
  Alcotest.(check int) "two groups" 2 (List.length ps);
  Alcotest.(check (list string)) "tanh+sum" [ "tanh"; "sum" ]
    (Fusion.primitive_ops (List.hd ps))

(* ---------------------------- manifest alloc ---------------------------- *)

let manifest body params =
  let m = Irmod.of_main (Expr.fn_def params body) in
  let m = Anf.run m in
  let result = Nimble_typing.Infer.infer_module m in
  let m = Type_resolve.run m result.Nimble_typing.Infer.solver in
  let m = Fusion.run m in
  Manifest_alloc.run m

let test_manifest_static () =
  let x = Expr.fresh_var ~ty:(static_ty [ 4 ]) "x" in
  let m = manifest (Expr.op_call "relu" [ Expr.Var x ]) [ x ] in
  let fn = Irmod.func_exn m "main" in
  let storages, tensors = Manifest_alloc.count_allocs fn.Expr.body in
  Alcotest.(check int) "one storage" 1 storages;
  Alcotest.(check int) "one tensor" 1 tensors;
  Alcotest.(check int) "invoke_mut" 1 (count_op "memory.invoke_mut" fn.Expr.body);
  (* static path: no shape functions *)
  Alcotest.(check int) "no shape funcs" 0
    (count_op "memory.invoke_shape_func" fn.Expr.body)

let test_manifest_dynamic_inserts_shape_funcs () =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; s 8 ]) "x" in
  let m = manifest (Expr.op_call "relu" [ Expr.Var x ]) [ x ] in
  let fn = Irmod.func_exn m "main" in
  Alcotest.(check int) "shape func invoked" 1
    (count_op "memory.invoke_shape_func" fn.Expr.body);
  Alcotest.(check int) "shape_of inserted" 1 (count_op "shape_of" fn.Expr.body);
  (* paper fixed point: the shape tensor itself is explicitly allocated *)
  let storages, tensors = Manifest_alloc.count_allocs fn.Expr.body in
  Alcotest.(check int) "two storages (shape + data)" 2 storages;
  Alcotest.(check int) "two tensors" 2 tensors

(* ---------------------------- memory plan ---------------------------- *)

let test_memory_plan_coalesces () =
  let x = Expr.fresh_var ~ty:(static_ty [ 8; 8 ]) "x" in
  let body =
    Expr.op_call "relu"
      [ Expr.op_call "softmax" [ Expr.op_call "tanh" [ Expr.op_call "softmax" [ Expr.Var x ] ] ] ]
  in
  let m = manifest body [ x ] in
  let stats = Memory_plan.run m in
  Alcotest.(check bool) "multiple before" true (stats.Memory_plan.storages_before >= 2);
  Alcotest.(check int) "one arena" 1 stats.Memory_plan.storages_after;
  (* liveness reuse: arena smaller than the sum *)
  Alcotest.(check bool) "arena <= sum" true
    (stats.Memory_plan.arena_bytes <= stats.Memory_plan.sum_bytes)

let test_memory_plan_execution_correct () =
  (* end-to-end: planned executable computes the same values *)
  let x = Expr.fresh_var ~ty:(static_ty [ 8; 8 ]) "x" in
  let body =
    Expr.op_call "add"
      [
        Expr.op_call "softmax" [ Expr.Var x ];
        Expr.op_call "relu" [ Expr.op_call "softmax" [ Expr.Var x ] ];
      ]
  in
  let build plan =
    Nimble_compiler.Nimble.compile
      ~options:{ Nimble_compiler.Nimble.default_options with Nimble_compiler.Nimble.memory_plan = plan }
      (Irmod.of_main (Expr.fn_def [ x ] body))
  in
  let rng = Rng.create ~seed:77 in
  let input = Tensor.randn rng [| 8; 8 |] in
  let run exe = Nimble_vm.Interp.run_tensors (Nimble_vm.Interp.create exe) [ input ] in
  let with_plan = run (build true) and without = run (build false) in
  Alcotest.(check bool) "same results" true
    (Tensor.approx_equal ~atol:1e-6 ~rtol:1e-6 with_plan without)

(* ---------------------------- device placement ---------------------------- *)

let test_device_placement_inserts_copies () =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; s 8 ]) "x" in
  let body =
    Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const (Tensor.zeros [| 4; 8 |]) ] ]
  in
  let m = Irmod.of_main (Expr.fn_def [ x ] body) in
  let m, report =
    Nimble_compiler.Nimble.optimize
      ~options:
        { Nimble_compiler.Nimble.default_options with Nimble_compiler.Nimble.target_device = 1 }
      m
  in
  Alcotest.(check bool) "copies inserted" true (report.Nimble_compiler.Nimble.device_copies > 0);
  Alcotest.(check bool) "device_copy in IR" true (Device_place.count_copies m > 0)

let test_device_placement_cpu_noop () =
  let x = Expr.fresh_var ~ty:(static_ty [ 4; 8 ]) "x" in
  let body = Expr.op_call "relu" [ Expr.Var x ] in
  let m = Irmod.of_main (Expr.fn_def [ x ] body) in
  let m, report = Nimble_compiler.Nimble.optimize m in
  Alcotest.(check int) "no copies on cpu" 0 report.Nimble_compiler.Nimble.device_copies;
  Alcotest.(check int) "none in IR" 0 (Device_place.count_copies m)

let test_gpu_end_to_end () =
  (* dynamic dense on the simulated GPU: copies inserted and execution is
     correct *)
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; s 8 ]) "x" in
  let rng = Rng.create ~seed:13 in
  let w = Tensor.randn rng [| 4; 8 |] in
  let body = Expr.op_call "tanh" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  let m = Irmod.of_main (Expr.fn_def [ x ] body) in
  let exe =
    Nimble_compiler.Nimble.compile
      ~options:
        { Nimble_compiler.Nimble.default_options with Nimble_compiler.Nimble.target_device = 1 }
      m
  in
  let vm = Nimble_vm.Interp.create exe in
  let input = Tensor.randn rng [| 3; 8 |] in
  let out = Nimble_vm.Interp.run_tensors vm [ input ] in
  let expected = Ops_elem.tanh (Ops_matmul.dense input w) in
  Alcotest.(check bool) "gpu result correct" true
    (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4 expected out);
  (* transfers were recorded *)
  let p = Nimble_vm.Interp.profiler vm in
  Alcotest.(check bool) "transfers happened" true
    (Nimble_device.Pool.total_transfers p.Nimble_vm.Profiler.pool > 0)

let () =
  Alcotest.run "passes"
    [
      ( "anf",
        [
          Alcotest.test_case "flattens" `Quick test_anf_flattens;
          Alcotest.test_case "dag sharing" `Quick test_anf_dag_sharing;
          Alcotest.test_case "no exponential blowup" `Quick test_anf_no_exponential_blowup;
          Alcotest.test_case "branch scoping" `Quick test_anf_branch_scoping;
        ] );
      ( "cse",
        [
          Alcotest.test_case "dedupes" `Quick test_cse_dedupes;
          Alcotest.test_case "branch isolation" `Quick test_cse_respects_branches;
        ] );
      ( "const_fold",
        [
          Alcotest.test_case "folds arithmetic" `Quick test_const_fold;
          Alcotest.test_case "folds if" `Quick test_const_fold_if;
          Alcotest.test_case "skips effectful" `Quick test_const_fold_skips_effectful;
        ] );
      ( "dce",
        [
          Alcotest.test_case "removes dead chains" `Quick test_dce_removes_dead_chain;
          Alcotest.test_case "keeps effects" `Quick test_dce_keeps_effects;
        ] );
      ( "fusion",
        [
          Alcotest.test_case "elemwise chain" `Quick test_fusion_elemwise_chain;
          Alcotest.test_case "dense epilogue" `Quick test_fusion_dense_epilogue;
          Alcotest.test_case "dynamic policy blocks data-dep" `Quick
            test_fusion_policy_blocks_data_dependent;
          Alcotest.test_case "opaque never fuses" `Quick test_fusion_opaque_never_fuses;
          Alcotest.test_case "multi-consumer blocks" `Quick test_fusion_multi_consumer_blocks;
          Alcotest.test_case "reduce closes group" `Quick test_fusion_reduce_closes_group;
        ] );
      ( "manifest_alloc",
        [
          Alcotest.test_case "static path" `Quick test_manifest_static;
          Alcotest.test_case "dynamic path (shape funcs)" `Quick
            test_manifest_dynamic_inserts_shape_funcs;
        ] );
      ( "memory_plan",
        [
          Alcotest.test_case "coalesces" `Quick test_memory_plan_coalesces;
          Alcotest.test_case "execution unchanged" `Quick test_memory_plan_execution_correct;
        ] );
      ( "device_place",
        [
          Alcotest.test_case "inserts copies for gpu" `Quick test_device_placement_inserts_copies;
          Alcotest.test_case "cpu is no-op" `Quick test_device_placement_cpu_noop;
          Alcotest.test_case "gpu end to end" `Quick test_gpu_end_to_end;
        ] );
    ]
