(* Performance simulator tests: roofline behaviour, framework event pricing,
   overlap, recording/pricing separation. *)

open Nimble_perfsim
module Trace = Nimble_codegen.Trace

let op flops bytes =
  Trace.Op_exec { op = "dense"; in_shapes = []; out_shapes = []; flops; bytes }

let fw kind amount = Trace.Framework { kind; amount }

let price ?(framework = Framework.Nimble) ?(platform = Platform.intel_cpu)
    ?(launch_per_op = false) events =
  Estimator.price ~platform ~framework ~launch_per_op events

let test_roofline_compute_vs_memory () =
  (* compute-bound: many flops, few bytes *)
  let compute = Platform.kernel_seconds Platform.intel_cpu ~flops:600_000_000 ~bytes:8 in
  Alcotest.(check bool) "compute bound ~1ms" true (compute > 0.5e-3 && compute < 2e-3);
  (* memory-bound: few flops, many bytes *)
  let memory = Platform.kernel_seconds Platform.intel_cpu ~flops:8 ~bytes:200_000_000 in
  Alcotest.(check bool) "memory bound ~1ms" true (memory > 0.5e-3 && memory < 2e-3);
  Alcotest.(check (float 0.0)) "empty kernel free" 0.0
    (Platform.kernel_seconds Platform.intel_cpu ~flops:0 ~bytes:0)

let test_efficiency_ramp () =
  let small = Platform.efficiency Platform.nvidia_gpu ~flops:1000 in
  let large = Platform.efficiency Platform.nvidia_gpu ~flops:1_000_000_000 in
  Alcotest.(check bool) "small inefficient" true (small < 0.01);
  Alcotest.(check bool) "large efficient" true (large > 0.9)

let test_gpu_kernel_floor () =
  (* tiny kernels on the GPU hit the wave-latency floor; the same kernel on
     the CPU does not — the effect behind small-LSTM being slower on T4 *)
  let tiny_gpu = Platform.kernel_seconds Platform.nvidia_gpu ~flops:100 ~bytes:100 in
  let tiny_cpu = Platform.kernel_seconds Platform.intel_cpu ~flops:100 ~bytes:100 in
  Alcotest.(check bool) "gpu floor" true (tiny_gpu >= 6e-6);
  Alcotest.(check bool) "cpu cheaper for tiny kernels" true (tiny_cpu < tiny_gpu)

let test_arm_slower () =
  let f p = Platform.kernel_seconds p ~flops:50_000_000 ~bytes:1_000_000 in
  Alcotest.(check bool) "arm slower than intel" true
    (f Platform.arm_cpu > 3.0 *. f Platform.intel_cpu)

let test_framework_event_pricing () =
  let b = price ~framework:Framework.Pytorch [ fw "eager_dispatch" 100 ] in
  Alcotest.(check bool) "host time" true (b.Estimator.host_s > 0.0);
  (* ARM host work scales by host_speed *)
  let arm = price ~framework:Framework.Pytorch ~platform:Platform.arm_cpu [ fw "eager_dispatch" 100 ] in
  Alcotest.(check bool) "arm scales" true
    (arm.Estimator.host_s > 2.0 *. b.Estimator.host_s);
  (* unknown events are free *)
  let z = price [ fw "unknown_event" 1000 ] in
  Alcotest.(check (float 0.0)) "unknown free" 0.0 z.Estimator.host_s

let test_launch_per_op () =
  let events = [ op 1000 1000; op 1000 1000; op 1000 1000 ] in
  let with_launch = price ~launch_per_op:true events in
  let without = price ~launch_per_op:false events in
  Alcotest.(check bool) "launches counted" true
    (with_launch.Estimator.launch_s > without.Estimator.launch_s);
  Alcotest.(check int) "kernel count" 3 with_launch.Estimator.kernels

let test_vm_events () =
  let b =
    price [ fw "vm_instruction" 100; fw "vm_kernel_launch" 10; fw "vm_transfer_bytes" 12_000_000 ]
      ~platform:Platform.nvidia_gpu
  in
  Alcotest.(check bool) "instr time" true (b.Estimator.host_s > 0.0);
  Alcotest.(check bool) "launch time" true (b.Estimator.launch_s > 0.0);
  (* 12MB over 12GB/s PCIe = 1ms *)
  Alcotest.(check bool) "transfer time ~1ms" true
    (b.Estimator.transfer_s > 0.8e-3 && b.Estimator.transfer_s < 1.2e-3)

let test_gpu_overlap () =
  let events = [ op 1_000_000 1_000_000; fw "eager_dispatch" 1000 ] in
  let b = price ~framework:Framework.Pytorch ~platform:Platform.nvidia_gpu ~launch_per_op:true events in
  let total = Estimator.total Platform.nvidia_gpu Framework.Pytorch b in
  let no_overlap = b.Estimator.kernel_s +. b.Estimator.launch_s +. b.Estimator.host_s in
  Alcotest.(check bool) "overlap hides host work" true (total < no_overlap);
  (* CPU: no overlap *)
  let bc = price ~framework:Framework.Pytorch ~platform:Platform.intel_cpu ~launch_per_op:true events in
  let tc = Estimator.total Platform.intel_cpu Framework.Pytorch bc in
  Alcotest.(check bool) "cpu adds everything" true
    (Float.abs (tc -. (bc.Estimator.kernel_s +. bc.Estimator.launch_s +. bc.Estimator.host_s)) < 1e-12)

let test_lib_quality_portability_claim () =
  (* Nimble holds quality 1 on ARM; frameworks degrade, worse for small kernels *)
  let q fw flops = Framework.lib_quality fw Platform.arm_cpu ~flops in
  Alcotest.(check (float 1e-9)) "nimble portable" 1.0 (q Framework.Nimble 1000);
  Alcotest.(check bool) "pytorch degrades" true (q Framework.Pytorch 1_000_000_000 > 2.0);
  Alcotest.(check bool) "small kernels worse" true
    (q Framework.Pytorch 100_000 > q Framework.Pytorch 1_000_000_000);
  (* on Intel the first-tier libraries hold up *)
  Alcotest.(check (float 1e-9)) "pytorch intel" 1.0
    (Framework.lib_quality Framework.Pytorch Platform.intel_cpu ~flops:1000)

let test_record_then_price () =
  let result, events =
    Estimator.record (fun () ->
        Trace.record_framework "eager_dispatch" ~amount:5 ();
        17)
  in
  Alcotest.(check int) "result passes through" 17 result;
  Alcotest.(check int) "events captured" 1 (List.length events);
  (* the same recording prices differently per platform *)
  let intel = price ~framework:Framework.Pytorch events in
  let arm = price ~framework:Framework.Pytorch ~platform:Platform.arm_cpu events in
  Alcotest.(check bool) "platform matters" true (arm.Estimator.host_s > intel.Estimator.host_s)

let prop_latency_monotone_in_flops =
  QCheck.Test.make ~name:"kernel time monotone in flops" ~count:50
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 1_000_000))
    (fun (f1, f2) ->
      let lo = min f1 f2 and hi = max f1 f2 in
      Platform.kernel_seconds Platform.intel_cpu ~flops:lo ~bytes:0
      <= Platform.kernel_seconds Platform.intel_cpu ~flops:hi ~bytes:0 +. 1e-15)

let () =
  Alcotest.run "perfsim"
    [
      ( "platform",
        [
          Alcotest.test_case "roofline" `Quick test_roofline_compute_vs_memory;
          Alcotest.test_case "efficiency ramp" `Quick test_efficiency_ramp;
          Alcotest.test_case "gpu kernel floor" `Quick test_gpu_kernel_floor;
          Alcotest.test_case "arm slower" `Quick test_arm_slower;
          QCheck_alcotest.to_alcotest prop_latency_monotone_in_flops;
        ] );
      ( "framework",
        [
          Alcotest.test_case "event pricing" `Quick test_framework_event_pricing;
          Alcotest.test_case "launch per op" `Quick test_launch_per_op;
          Alcotest.test_case "vm events" `Quick test_vm_events;
          Alcotest.test_case "gpu overlap" `Quick test_gpu_overlap;
          Alcotest.test_case "library quality (portability)" `Quick
            test_lib_quality_portability_claim;
        ] );
      ( "estimator",
        [ Alcotest.test_case "record then price" `Quick test_record_then_price ] );
    ]
