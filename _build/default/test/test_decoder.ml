(* Decoder (grow-a-tensor loop) and GRU model tests. *)

open Nimble_tensor
open Nimble_models
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp
module Obj = Nimble_vm.Obj
module Adt = Nimble_ir.Adt

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-3 ~rtol:1e-3)

(* ---------------------------- decoder ---------------------------- *)

let test_decoder_matches_reference () =
  let w = Decoder.init_weights Decoder.default_config in
  let exe = Nimble.compile (Decoder.ir_module w) in
  let vm = Nimble.vm exe in
  List.iter
    (fun seed ->
      let h0 = Decoder.random_state ~seed w.Decoder.config in
      let out = Interp.run_tensors vm [ h0 ] in
      let expected = Decoder.reference w h0 in
      Alcotest.check tensor_eq (Fmt.str "seed=%d" seed) expected out)
    [ 1; 7; 23; 99; 123 ]

let test_decoder_output_grows_dynamically () =
  (* different inputs stop at different lengths: the output's leading dim is
     genuinely input-dependent (the paper's grow-tensor case) *)
  let w = Decoder.init_weights Decoder.default_config in
  let exe = Nimble.compile (Decoder.ir_module w) in
  let vm = Nimble.vm exe in
  let lengths =
    List.map
      (fun seed ->
        let out = Interp.run_tensors vm [ Decoder.random_state ~seed w.Decoder.config ] in
        (Tensor.shape out).(0))
      (List.init 12 (fun i -> 7 * (i + 1)))
  in
  List.iter
    (fun l ->
      Alcotest.(check bool) "within budget" true
        (l >= 1 && l <= w.Decoder.config.Decoder.max_steps))
    lengths;
  Alcotest.(check bool) "lengths vary across inputs" true
    (List.length (List.sort_uniq compare lengths) > 1)

let test_decoder_budget_respected () =
  (* an unreachable confidence threshold forces the step budget to bind *)
  let config = { Decoder.default_config with Decoder.confidence = 2.0; max_steps = 5 } in
  let w = Decoder.init_weights config in
  let exe = Nimble.compile (Decoder.ir_module w) in
  let vm = Nimble.vm exe in
  let out = Interp.run_tensors vm [ Decoder.random_state w.Decoder.config ] in
  Alcotest.(check int) "exactly max_steps rows" 5 (Tensor.shape out).(0)

let test_decoder_rows_are_distributions () =
  let w = Decoder.init_weights Decoder.default_config in
  let out = Decoder.reference w (Decoder.random_state w.Decoder.config) in
  let sums = Ops_reduce.sum ~axis:1 out in
  for i = 0 to Tensor.numel sums - 1 do
    Alcotest.(check bool) "row sums to 1" true
      (Float.abs (Tensor.get_float sums i -. 1.0) < 1e-4)
  done

(* ---------------------------- GRU ---------------------------- *)

let list_obj xs =
  let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
  let adt = Adt.tensor_list ~elem_ty in
  let nil = Adt.ctor_exn adt "Nil" and cons = Adt.ctor_exn adt "Cons" in
  List.fold_right
    (fun x acc -> Obj.Adt { tag = cons.Adt.tag; fields = [| Obj.tensor x; acc |] })
    xs
    (Obj.Adt { tag = nil.Adt.tag; fields = [||] })

let test_gru_matches_reference () =
  let w = Gru.init_weights Gru.small_config in
  let exe = Nimble.compile (Gru.ir_module w) in
  let vm = Nimble.vm exe in
  List.iter
    (fun len ->
      let xs = Gru.random_sequence w.Gru.config ~len in
      let out = Obj.to_tensor (Interp.invoke vm [ list_obj xs ]) in
      Alcotest.check tensor_eq (Fmt.str "len=%d" len) (Gru.reference w xs) out)
    [ 1; 3; 8; 14 ]

let test_gru_empty_sequence () =
  (* zero-length input returns the initial (zero) state *)
  let w = Gru.init_weights Gru.small_config in
  let exe = Nimble.compile (Gru.ir_module w) in
  let vm = Nimble.vm exe in
  let out = Obj.to_tensor (Interp.invoke vm [ list_obj [] ]) in
  Alcotest.check tensor_eq "zeros"
    (Tensor.zeros [| 1; w.Gru.config.Gru.hidden_size |])
    out

let prop_gru_any_length =
  QCheck.Test.make ~name:"gru matches reference for any length" ~count:15
    (QCheck.int_range 0 20) (fun len ->
      let w = Gru.init_weights Gru.small_config in
      let exe = Nimble.compile (Gru.ir_module w) in
      let vm = Nimble.vm exe in
      let xs = Gru.random_sequence w.Gru.config ~len in
      let out = Obj.to_tensor (Interp.invoke vm [ list_obj xs ]) in
      Tensor.approx_equal ~atol:1e-3 ~rtol:1e-3 (Gru.reference w xs) out)

(* ---------------------------- Seq2Seq ---------------------------- *)

let test_seq2seq_matches_reference () =
  let w = Seq2seq.init_weights Seq2seq.default_config in
  let exe = Nimble.compile (Seq2seq.ir_module w) in
  let vm = Nimble.vm exe in
  List.iter
    (fun len ->
      let xs = Seq2seq.random_sequence w.Seq2seq.config ~len in
      let out = Obj.to_tensor (Interp.invoke vm [ list_obj xs ]) in
      Alcotest.check tensor_eq (Fmt.str "len=%d" len) (Seq2seq.reference w xs) out)
    [ 1; 4; 9 ]

let test_seq2seq_both_directions_dynamic () =
  (* input length varies AND output length is data-dependent, through one
     compiled executable *)
  let w = Seq2seq.init_weights Seq2seq.default_config in
  let exe = Nimble.compile (Seq2seq.ir_module w) in
  let vm = Nimble.vm exe in
  let out_lens =
    List.map
      (fun len ->
        let xs = Seq2seq.random_sequence w.Seq2seq.config ~len in
        (Tensor.shape (Obj.to_tensor (Interp.invoke vm [ list_obj xs ]))).(0))
      [ 2; 5; 8; 11; 14 ]
  in
  List.iter
    (fun l ->
      Alcotest.(check bool) "within budget" true
        (l >= 1 && l <= w.Seq2seq.config.Seq2seq.max_steps))
    out_lens

let () =
  Alcotest.run "decoder"
    [
      ( "decoder",
        [
          Alcotest.test_case "matches reference" `Quick test_decoder_matches_reference;
          Alcotest.test_case "output grows dynamically" `Quick
            test_decoder_output_grows_dynamically;
          Alcotest.test_case "budget respected" `Quick test_decoder_budget_respected;
          Alcotest.test_case "rows are distributions" `Quick test_decoder_rows_are_distributions;
        ] );
      ( "gru",
        [
          Alcotest.test_case "matches reference" `Quick test_gru_matches_reference;
          Alcotest.test_case "empty sequence" `Quick test_gru_empty_sequence;
          QCheck_alcotest.to_alcotest prop_gru_any_length;
        ] );
      ( "seq2seq",
        [
          Alcotest.test_case "matches reference" `Quick test_seq2seq_matches_reference;
          Alcotest.test_case "dynamic both directions" `Quick
            test_seq2seq_both_directions_dynamic;
        ] );
    ]
