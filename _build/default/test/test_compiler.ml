(* End-to-end tests: IR module -> compile -> VM execution, checked against
   direct kernel evaluation. *)

open Nimble_tensor
open Nimble_ir
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp
module Obj = Nimble_vm.Obj

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4)

let rng = Rng.create ~seed:7

let static_ty s = Ty.tensor_of_shape (Shape.of_list s)
let dyn_ty dims = Ty.tensor dims

(* --- a static elementwise graph: relu(a + b) * a ---------------------- *)
let static_module () =
  let a = Expr.fresh_var ~ty:(static_ty [ 4; 5 ]) "a" in
  let b = Expr.fresh_var ~ty:(static_ty [ 4; 5 ]) "b" in
  let body =
    Expr.op_call "multiply"
      [ Expr.op_call "relu" [ Expr.op_call "add" [ Expr.Var a; Expr.Var b ] ]; Expr.Var a ]
  in
  Irmod.of_main (Expr.fn_def [ a; b ] body)

let expected_static a b = Ops_elem.mul (Ops_elem.relu (Ops_elem.add a b)) a

let test_static_e2e () =
  let m = static_module () in
  let a = Tensor.randn rng [| 4; 5 |] and b = Tensor.randn rng [| 4; 5 |] in
  let exe = Nimble.compile m in
  let vm = Nimble.vm exe in
  let out = Interp.run_tensors vm [ a; b ] in
  Alcotest.check tensor_eq "relu(a+b)*a" (expected_static a b) out

(* --- a dynamic-shape graph: dense with Any rows ------------------------ *)
let dyn_dense_module () =
  let x = Expr.fresh_var ~ty:(dyn_ty [ Dim.Any; Dim.static 16 ]) "x" in
  let w = Expr.fresh_var ~ty:(static_ty [ 8; 16 ]) "w" in
  let b = Expr.fresh_var ~ty:(static_ty [ 8 ]) "b" in
  let body =
    Expr.op_call "tanh"
      [ Expr.op_call "bias_add" [ Expr.op_call "dense" [ Expr.Var x; Expr.Var w ]; Expr.Var b ] ]
  in
  Irmod.of_main (Expr.fn_def [ x; w; b ] body)

let test_dynamic_dense () =
  let m = dyn_dense_module () in
  let exe = Nimble.compile m in
  let vm = Nimble.vm exe in
  let w = Tensor.randn rng [| 8; 16 |] and b = Tensor.randn rng [| 8 |] in
  (* one executable serves several sequence lengths, covering odd residues *)
  List.iter
    (fun rows ->
      let x = Tensor.randn rng [| rows; 16 |] in
      let out = Interp.run_tensors vm [ x; w; b ] in
      let expected = Ops_elem.tanh (Ops_matmul.dense_bias x w b) in
      Alcotest.check tensor_eq (Fmt.str "rows=%d" rows) expected out)
    [ 1; 3; 8; 13; 16; 21 ]

(* --- control flow: if mean(x) > 0 then x+1 else x-1 -------------------- *)
let control_flow_module () =
  let x = Expr.fresh_var ~ty:(static_ty [ 6 ]) "x" in
  let cond =
    Expr.op_call "greater" [ Expr.op_call "mean" [ Expr.Var x ]; Expr.const_scalar 0.0 ]
  in
  let body =
    Expr.If
      ( cond,
        Expr.op_call "add" [ Expr.Var x; Expr.const_scalar 1.0 ],
        Expr.op_call "subtract" [ Expr.Var x; Expr.const_scalar 1.0 ] )
  in
  Irmod.of_main (Expr.fn_def [ x ] body)

let test_control_flow () =
  let m = control_flow_module () in
  let exe = Nimble.compile m in
  let vm = Nimble.vm exe in
  let pos = Tensor.full [| 6 |] 2.0 in
  let neg = Tensor.full [| 6 |] (-2.0) in
  Alcotest.check tensor_eq "positive branch" (Tensor.full [| 6 |] 3.0)
    (Interp.run_tensors vm [ pos ]);
  Alcotest.check tensor_eq "negative branch"
    (Tensor.full [| 6 |] (-3.0))
    (Interp.run_tensors vm [ neg ])

(* --- recursion over an ADT list: sum all tensors ----------------------- *)
let list_sum_module () =
  let elem_ty = static_ty [ 3 ] in
  let list_adt = Adt.tensor_list ~elem_ty in
  let nil = Adt.ctor_exn list_adt "Nil" in
  let cons = Adt.ctor_exn list_adt "Cons" in
  ignore nil;
  let xs = Expr.fresh_var ~ty:(Ty.Adt "TensorList") "xs" in
  let acc = Expr.fresh_var ~ty:elem_ty "acc" in
  let hd = Expr.fresh_var ~ty:elem_ty "hd" in
  let tl = Expr.fresh_var ~ty:(Ty.Adt "TensorList") "tl" in
  let body =
    Expr.Match
      ( Expr.Var xs,
        [
          { Expr.pat = Expr.Pctor (nil, []); rhs = Expr.Var acc };
          {
            Expr.pat = Expr.Pctor (cons, [ Expr.Pvar hd; Expr.Pvar tl ]);
            rhs =
              Expr.call (Expr.Global "sum_list")
                [ Expr.Var tl; Expr.op_call "add" [ Expr.Var acc; Expr.Var hd ] ];
          };
        ] )
  in
  let m = Irmod.create () in
  Irmod.add_adt m list_adt;
  Irmod.add_func m "sum_list" (Expr.fn_def ~ret_ty:elem_ty [ xs; acc ] body);
  let xs0 = Expr.fresh_var ~ty:(Ty.Adt "TensorList") "input" in
  Irmod.add_func m "main"
    (Expr.fn_def [ xs0 ]
       (Expr.call (Expr.Global "sum_list")
          [ Expr.Var xs0; Expr.Const (Tensor.zeros [| 3 |]) ]));
  (m, nil, cons)

let obj_list_of_tensors cons_tag ts =
  List.fold_right
    (fun t acc -> Obj.Adt { tag = cons_tag; fields = [| Obj.tensor t; acc |] })
    ts
    (Obj.Adt { tag = 0 (* Nil is first ctor *); fields = [||] })

let test_adt_recursion () =
  let m, nil, cons = list_sum_module () in
  let exe = Nimble.compile m in
  let vm = Nimble.vm exe in
  let ts = List.init 5 (fun _ -> Tensor.randn rng [| 3 |]) in
  let input =
    List.fold_right
      (fun t acc -> Obj.Adt { tag = cons.Adt.tag; fields = [| Obj.tensor t; acc |] })
      ts
      (Obj.Adt { tag = nil.Adt.tag; fields = [||] })
  in
  let out = Obj.to_tensor (Interp.invoke vm [ input ]) in
  let expected = List.fold_left Ops_elem.add (Tensor.zeros [| 3 |]) ts in
  Alcotest.check tensor_eq "list sum" expected out

(* --- data-dependent shapes: unique ------------------------------------- *)
let test_data_dependent () =
  let x = Expr.fresh_var ~ty:(static_ty [ 8 ]) "x" in
  let m =
    Irmod.of_main
      (Expr.fn_def [ x ]
         (Expr.op_call "add"
            [ Expr.op_call "unique" [ Expr.Var x ]; Expr.const_scalar 0.0 ]))
  in
  let exe = Nimble.compile m in
  let vm = Nimble.vm exe in
  let x = Tensor.of_float_array [| 8 |] [| 1.; 2.; 1.; 3.; 2.; 1.; 4.; 4. |] in
  let out = Interp.run_tensors vm [ x ] in
  Alcotest.check tensor_eq "unique" (Tensor.of_float_array [| 4 |] [| 1.; 2.; 3.; 4. |]) out

(* --- upper-bound shapes: nms ------------------------------------------- *)
let test_upper_bound () =
  let x = Expr.fresh_var ~ty:(static_ty [ 4; 5 ]) "boxes" in
  let m =
    Irmod.of_main
      (Expr.fn_def [ x ]
         (Expr.op_call ~attrs:[ ("iou", Attrs.Float 0.5) ] "nms" [ Expr.Var x ]))
  in
  let exe = Nimble.compile m in
  let vm = Nimble.vm exe in
  (* two overlapping boxes + one distinct: nms keeps 2 of 3 scored boxes *)
  let boxes =
    Tensor.of_float_array [| 4; 5 |]
      [|
        0.9; 0.0; 0.0; 10.0; 10.0;
        0.8; 1.0; 1.0; 10.0; 10.0;
        0.7; 20.0; 20.0; 30.0; 30.0;
        0.6; 21.0; 21.0; 30.0; 30.0;
      |]
  in
  let out = Interp.run_tensors vm [ boxes ] in
  Alcotest.(check int) "kept boxes" 2 (Tensor.shape out).(0)

(* --- compile report sanity --------------------------------------------- *)
let test_report () =
  let m = dyn_dense_module () in
  let _, report = Nimble.compile_with_report m in
  Alcotest.(check bool) "some primitives" true (report.Nimble.primitives >= 1);
  Alcotest.(check bool) "instructions emitted" true (report.Nimble.instructions > 3)

(* --- static executor agrees with the VM -------------------------------- *)
let test_static_executor () =
  let m = static_module () in
  let plan = Nimble.compile_static m in
  let a = Tensor.randn rng [| 4; 5 |] and b = Tensor.randn rng [| 4; 5 |] in
  let out = Nimble_compiler.Static_exec.run plan [ a; b ] in
  Alcotest.check tensor_eq "static executor" (expected_static a b) out

(* --- closures ----------------------------------------------------------- *)
let test_closure () =
  (* let f = fn y -> y + x in f(x) : doubles x through a capture *)
  let x = Expr.fresh_var ~ty:(static_ty [ 3 ]) "x" in
  let y = Expr.fresh_var ~ty:(static_ty [ 3 ]) "y" in
  let f = Expr.fresh_var "f" in
  let body =
    Expr.Let
      ( f,
        Expr.fn [ y ] (Expr.op_call "add" [ Expr.Var y; Expr.Var x ]),
        Expr.call (Expr.Var f) [ Expr.Var x ] )
  in
  let m = Irmod.of_main (Expr.fn_def [ x ] body) in
  let exe = Nimble.compile m in
  let vm = Nimble.vm exe in
  let xv = Tensor.randn rng [| 3 |] in
  Alcotest.check tensor_eq "closure capture" (Ops_elem.add xv xv)
    (Interp.run_tensors vm [ xv ])

let () =
  ignore obj_list_of_tensors;
  Alcotest.run "compiler"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "static elementwise graph" `Quick test_static_e2e;
          Alcotest.test_case "dynamic dense (Any rows)" `Quick test_dynamic_dense;
          Alcotest.test_case "control flow" `Quick test_control_flow;
          Alcotest.test_case "ADT recursion (list sum)" `Quick test_adt_recursion;
          Alcotest.test_case "data-dependent shape (unique)" `Quick test_data_dependent;
          Alcotest.test_case "upper-bound shape (nms)" `Quick test_upper_bound;
          Alcotest.test_case "compile report" `Quick test_report;
          Alcotest.test_case "static executor" `Quick test_static_executor;
          Alcotest.test_case "closure capture" `Quick test_closure;
        ] );
    ]
