(* Tensor substrate tests: shapes, broadcasting, creation, elementwise ops,
   matmul/dense, reductions, shape ops and NN ops — plus qcheck properties
   on the core invariants. *)

open Nimble_tensor

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-5 ~rtol:1e-5)
let rng = Rng.create ~seed:3

(* ---------------------------- shapes ---------------------------- *)

let test_numel_rank () =
  Alcotest.(check int) "numel" 24 (Shape.numel [| 2; 3; 4 |]);
  Alcotest.(check int) "numel scalar" 1 (Shape.numel [||]);
  Alcotest.(check int) "numel zero" 0 (Shape.numel [| 2; 0; 4 |]);
  Alcotest.(check int) "rank" 3 (Shape.rank [| 2; 3; 4 |])

let test_strides () =
  Alcotest.(check (array int)) "strides" [| 12; 4; 1 |] (Shape.strides [| 2; 3; 4 |]);
  Alcotest.(check (array int)) "strides rank1" [| 1 |] (Shape.strides [| 7 |])

let test_linear_unravel () =
  let s = [| 2; 3; 4 |] in
  Alcotest.(check int) "linear" 23 (Shape.linear_index s [| 1; 2; 3 |]);
  Alcotest.(check (array int)) "unravel" [| 1; 2; 3 |] (Shape.unravel s 23);
  Alcotest.check_raises "oob" (Shape.Shape_error "index 3 out of bounds for dim 1 of (2, 3, 4)")
    (fun () -> ignore (Shape.linear_index s [| 0; 3; 0 |]))

let test_broadcast () =
  let check_bc a b expected =
    match (Shape.broadcast a b, expected) with
    | Some got, Some want -> Alcotest.(check (array int)) "bc" want got
    | None, None -> ()
    | Some got, None -> Alcotest.failf "expected failure, got %a" Shape.pp got
    | None, Some _ -> Alcotest.fail "expected success"
  in
  check_bc [| 4; 1 |] [| 1; 5 |] (Some [| 4; 5 |]);
  check_bc [| 5 |] [| 3; 5 |] (Some [| 3; 5 |]);
  check_bc [||] [| 2; 2 |] (Some [| 2; 2 |]);
  check_bc [| 3 |] [| 4 |] None;
  check_bc [| 2; 3 |] [| 3; 2 |] None

let test_reshape_resolve () =
  Alcotest.(check (array int)) "-1 inference" [| 4; 6 |]
    (Shape.resolve_reshape ~from:[| 2; 3; 4 |] [| 4; -1 |]);
  Alcotest.check_raises "bad count" (Shape.Shape_error "reshape from (2, 3) to (4, 2) changes element count")
    (fun () -> ignore (Shape.resolve_reshape ~from:[| 2; 3 |] [| 4; 2 |]))

(* ---------------------------- tensors ---------------------------- *)

let test_create_fill () =
  let t = Tensor.full [| 2; 3 |] 1.5 in
  Alcotest.(check (float 0.0)) "get" 1.5 (Tensor.get t [| 1; 2 |]);
  Alcotest.(check int) "bytes f32" 24 (Tensor.size_in_bytes t);
  let z = Tensor.zeros ~dtype:Dtype.I64 [| 4 |] in
  Alcotest.(check int) "i64 bytes" 32 (Tensor.size_in_bytes z)

let test_dtype_roundtrip () =
  List.iter
    (fun dt ->
      let t = Tensor.of_float_array ~dtype:dt [| 3 |] [| 1.0; 2.0; 3.0 |] in
      Alcotest.(check (list (float 0.0)))
        (Dtype.to_string dt)
        [ 1.0; 2.0; 3.0 ]
        (Array.to_list (Tensor.to_float_array t)))
    Dtype.all

let test_u8_wraps () =
  let t = Tensor.of_int_array ~dtype:Dtype.U8 [| 2 |] [| 256; 300 |] in
  Alcotest.(check (list int)) "wrap" [ 0; 44 ] (Array.to_list (Tensor.to_int_array t))

let test_copy_independent () =
  let a = Tensor.zeros [| 3 |] in
  let b = Tensor.copy a in
  Tensor.set_float b 0 9.0;
  Alcotest.(check (float 0.0)) "original untouched" 0.0 (Tensor.get_float a 0)

let test_blit () =
  let a = Tensor.of_float_array [| 3 |] [| 1.; 2.; 3. |] in
  let b = Tensor.zeros [| 3 |] in
  Tensor.blit ~src:a ~dst:b;
  Alcotest.check tensor_eq "blit" a b

(* ---------------------------- elementwise ---------------------------- *)

let t123 = Tensor.of_float_array [| 3 |] [| 1.; 2.; 3. |]

let test_add_broadcast () =
  let a = Tensor.of_float_array [| 2; 1 |] [| 10.; 20. |] in
  let out = Ops_elem.add a t123 in
  Alcotest.check tensor_eq "broadcast add"
    (Tensor.of_float_array [| 2; 3 |] [| 11.; 12.; 13.; 21.; 22.; 23. |])
    out

let test_activations () =
  let x = Tensor.of_float_array [| 2 |] [| -1.0; 2.0 |] in
  Alcotest.check tensor_eq "relu" (Tensor.of_float_array [| 2 |] [| 0.0; 2.0 |]) (Ops_elem.relu x);
  let s = Ops_elem.sigmoid (Tensor.zeros [| 1 |]) in
  Alcotest.(check (float 1e-6)) "sigmoid(0)" 0.5 (Tensor.get_float s 0);
  let t = Ops_elem.tanh (Tensor.zeros [| 1 |]) in
  Alcotest.(check (float 1e-6)) "tanh(0)" 0.0 (Tensor.get_float t 0)

let test_comparisons_bool_dtype () =
  let out = Ops_elem.less t123 (Tensor.full [| 3 |] 2.5) in
  Alcotest.(check string) "u8" "uint8" (Dtype.to_string (Tensor.dtype out));
  Alcotest.(check (list int)) "values" [ 1; 1; 0 ] (Array.to_list (Tensor.to_int_array out))

let test_where () =
  let cond = Tensor.of_int_array ~dtype:Dtype.U8 [| 3 |] [| 1; 0; 1 |] in
  let out = Ops_elem.where cond t123 (Tensor.full [| 3 |] 9.0) in
  Alcotest.check tensor_eq "where" (Tensor.of_float_array [| 3 |] [| 1.; 9.; 3. |]) out

let test_erf_reference_points () =
  let x = Tensor.of_float_array [| 3 |] [| 0.0; 1.0; -1.0 |] in
  let out = Ops_elem.erf x in
  Alcotest.(check (float 1e-4)) "erf(0)" 0.0 (Tensor.get_float out 0);
  Alcotest.(check (float 1e-4)) "erf(1)" 0.8427 (Tensor.get_float out 1);
  Alcotest.(check (float 1e-4)) "erf(-1)" (-0.8427) (Tensor.get_float out 2)

(* ---------------------------- matmul ---------------------------- *)

let naive_dense a w =
  let m = (Tensor.shape a).(0) and k = (Tensor.shape a).(1) in
  let n = (Tensor.shape w).(0) in
  Tensor.init [| m; n |] (fun idx ->
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        acc := !acc +. (Tensor.get a [| idx.(0); p |] *. Tensor.get w [| idx.(1); p |])
      done;
      !acc)

let test_dense_matches_naive () =
  List.iter
    (fun (m, n, k) ->
      let a = Tensor.randn rng [| m; k |] and w = Tensor.randn rng [| n; k |] in
      Alcotest.check tensor_eq (Fmt.str "%dx%dx%d" m n k) (naive_dense a w)
        (Ops_matmul.dense a w))
    [ (1, 1, 1); (3, 5, 7); (33, 17, 40); (64, 64, 64) ]

let test_matmul_identity () =
  let i3 = Tensor.init [| 3; 3 |] (fun idx -> if idx.(0) = idx.(1) then 1.0 else 0.0) in
  let a = Tensor.randn rng [| 3; 3 |] in
  Alcotest.check tensor_eq "a*I = a" a (Ops_matmul.matmul a i3)

let test_batch_matmul () =
  let a = Tensor.randn rng [| 2; 3; 4 |] and b = Tensor.randn rng [| 2; 4; 5 |] in
  let out = Ops_matmul.batch_matmul a b in
  Alcotest.(check (array int)) "shape" [| 2; 3; 5 |] (Tensor.shape out);
  (* batch 0 equals 2-D matmul of the slices *)
  let a0 = Ops_shape.strided_slice ~begins:[| 0; 0; 0 |] ~ends:[| 1; 3; 4 |] a in
  let b0 = Ops_shape.strided_slice ~begins:[| 0; 0; 0 |] ~ends:[| 1; 4; 5 |] b in
  let m0 = Ops_matmul.matmul (Tensor.reshape a0 [| 3; 4 |]) (Tensor.reshape b0 [| 4; 5 |]) in
  let out0 =
    Tensor.reshape (Ops_shape.strided_slice ~begins:[| 0; 0; 0 |] ~ends:[| 1; 3; 5 |] out) [| 3; 5 |]
  in
  Alcotest.check tensor_eq "batch0" m0 out0

let test_dense_bias () =
  let a = Tensor.randn rng [| 4; 6 |] and w = Tensor.randn rng [| 5; 6 |] in
  let b = Tensor.randn rng [| 5 |] in
  Alcotest.check tensor_eq "dense+bias"
    (Ops_elem.add (Ops_matmul.dense a w) b)
    (Ops_matmul.dense_bias a w b)

(* ---------------------------- reductions ---------------------------- *)

let t2x3 = Tensor.of_float_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |]

let test_reductions () =
  Alcotest.(check (float 1e-6)) "sum all" 21.0 (Tensor.item (Ops_reduce.sum t2x3));
  Alcotest.check tensor_eq "sum axis0"
    (Tensor.of_float_array [| 3 |] [| 5.; 7.; 9. |])
    (Ops_reduce.sum ~axis:0 t2x3);
  Alcotest.check tensor_eq "sum axis1 keepdims"
    (Tensor.of_float_array [| 2; 1 |] [| 6.; 15. |])
    (Ops_reduce.sum ~axis:1 ~keepdims:true t2x3);
  Alcotest.check tensor_eq "mean axis1"
    (Tensor.of_float_array [| 2 |] [| 2.; 5. |])
    (Ops_reduce.mean ~axis:1 t2x3);
  Alcotest.(check (float 1e-6)) "max" 6.0 (Tensor.item (Ops_reduce.max t2x3));
  Alcotest.(check (float 1e-6)) "min" 1.0 (Tensor.item (Ops_reduce.min t2x3))

let test_argmax () =
  let out = Ops_reduce.argmax ~axis:1 t2x3 in
  Alcotest.(check (list int)) "argmax" [ 2; 2 ] (Array.to_list (Tensor.to_int_array out));
  let out0 = Ops_reduce.argmax ~axis:0 t2x3 in
  Alcotest.(check (list int)) "argmax axis0" [ 1; 1; 1 ] (Array.to_list (Tensor.to_int_array out0))

(* ---------------------------- shape ops ---------------------------- *)

let test_transpose () =
  let out = Ops_shape.transpose t2x3 in
  Alcotest.check tensor_eq "transpose"
    (Tensor.of_float_array [| 3; 2 |] [| 1.; 4.; 2.; 5.; 3.; 6. |])
    out;
  (* transpose twice is identity *)
  Alcotest.check tensor_eq "involution" t2x3 (Ops_shape.transpose out)

let test_transpose_axes () =
  let t = Tensor.randn rng [| 2; 3; 4 |] in
  let out = Ops_shape.transpose ~axes:[| 1; 0; 2 |] t in
  Alcotest.(check (array int)) "shape" [| 3; 2; 4 |] (Tensor.shape out);
  Alcotest.(check (float 0.0)) "element" (Tensor.get t [| 1; 2; 3 |]) (Tensor.get out [| 2; 1; 3 |])

let test_concat_split_roundtrip () =
  let a = Tensor.randn rng [| 2; 4 |] and b = Tensor.randn rng [| 2; 4 |] in
  let cat = Ops_shape.concat ~axis:0 [ a; b ] in
  Alcotest.(check (array int)) "cat shape" [| 4; 4 |] (Tensor.shape cat);
  (match Ops_shape.split ~axis:0 ~sections:2 cat with
  | [ a'; b' ] ->
      Alcotest.check tensor_eq "a" a a';
      Alcotest.check tensor_eq "b" b b'
  | _ -> Alcotest.fail "expected 2 sections");
  let cat1 = Ops_shape.concat ~axis:1 [ a; b ] in
  Alcotest.(check (array int)) "cat1 shape" [| 2; 8 |] (Tensor.shape cat1)

let test_slice () =
  let out = Ops_shape.strided_slice ~begins:[| 0; 1 |] ~ends:[| 2; 3 |] t2x3 in
  Alcotest.check tensor_eq "slice"
    (Tensor.of_float_array [| 2; 2 |] [| 2.; 3.; 5.; 6. |])
    out;
  (* negative indices count from the end *)
  let neg = Ops_shape.strided_slice ~begins:[| 0; -2 |] ~ends:[| 1; 3 |] t2x3 in
  Alcotest.check tensor_eq "negative" (Tensor.of_float_array [| 1; 2 |] [| 2.; 3. |]) neg

let test_take () =
  let ids = Tensor.of_int_array [| 2 |] [| 1; 0 |] in
  let out = Ops_shape.take ~axis:0 t2x3 ids in
  Alcotest.check tensor_eq "take rows"
    (Tensor.of_float_array [| 2; 3 |] [| 4.; 5.; 6.; 1.; 2.; 3. |])
    out

let test_arange_unique () =
  let r = Ops_shape.arange ~start:0.0 ~stop:5.0 ~step:2.0 () in
  Alcotest.check tensor_eq "arange" (Tensor.of_float_array [| 3 |] [| 0.; 2.; 4. |]) r;
  let empty = Ops_shape.arange ~start:3.0 ~stop:1.0 ~step:1.0 () in
  Alcotest.(check int) "empty arange" 0 (Tensor.numel empty);
  let u = Ops_shape.unique (Tensor.of_float_array [| 5 |] [| 3.; 1.; 3.; 2.; 1. |]) in
  Alcotest.check tensor_eq "unique order" (Tensor.of_float_array [| 3 |] [| 3.; 1.; 2. |]) u

let test_tile_stack () =
  let t = Tensor.of_float_array [| 2 |] [| 1.; 2. |] in
  Alcotest.check tensor_eq "tile"
    (Tensor.of_float_array [| 4 |] [| 1.; 2.; 1.; 2. |])
    (Ops_shape.tile ~reps:[| 2 |] t);
  let s = Ops_shape.stack [ t; t ] in
  Alcotest.(check (array int)) "stack" [| 2; 2 |] (Tensor.shape s)

(* ---------------------------- NN ops ---------------------------- *)

let test_softmax () =
  let out = Ops_nn.softmax ~axis:1 t2x3 in
  let rows = Ops_reduce.sum ~axis:1 out in
  Alcotest.check tensor_eq "rows sum to 1" (Tensor.ones [| 2 |]) rows;
  (* invariant under shift *)
  let shifted = Ops_nn.softmax ~axis:1 (Ops_elem.add_scalar t2x3 100.0) in
  Alcotest.check tensor_eq "shift invariant" out shifted

let test_layer_norm () =
  let x = Tensor.randn rng [| 4; 8 |] in
  let out = Ops_nn.layer_norm x ~gamma:(Tensor.ones [| 8 |]) ~beta:(Tensor.zeros [| 8 |]) in
  let mu = Ops_reduce.mean ~axis:1 out in
  Alcotest.check (Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-3))
    "zero mean" (Tensor.zeros [| 4 |]) mu;
  let var = Ops_reduce.mean ~axis:1 (Ops_elem.mul out out) in
  Array.iter (fun _ -> ()) (Tensor.shape var);
  for i = 0 to 3 do
    Alcotest.(check bool) "unit variance" true (Float.abs (Tensor.get_float var i -. 1.0) < 0.05)
  done

let test_conv2d_known () =
  (* 1x1x3x3 input, 1x1x2x2 kernel of ones = sliding-window sums *)
  let x = Tensor.of_float_array [| 1; 1; 3; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |] in
  let w = Tensor.ones [| 1; 1; 2; 2 |] in
  let out = Ops_nn.conv2d x w in
  Alcotest.check tensor_eq "conv"
    (Tensor.of_float_array [| 1; 1; 2; 2 |] [| 12.; 16.; 24.; 28. |])
    out

let test_conv2d_padding_stride () =
  let x = Tensor.ones [| 1; 1; 4; 4 |] in
  let w = Tensor.ones [| 1; 1; 3; 3 |] in
  let out = Ops_nn.conv2d ~stride:2 ~padding:1 x w in
  Alcotest.(check (array int)) "shape" [| 1; 1; 2; 2 |] (Tensor.shape out);
  (* corner window covers 4 in-bounds ones *)
  Alcotest.(check (float 0.0)) "corner" 4.0 (Tensor.get out [| 0; 0; 0; 0 |])

let test_pooling () =
  let x = Tensor.of_float_array [| 1; 1; 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let mx = Ops_nn.max_pool2d ~stride:2 ~window:2 x in
  Alcotest.(check (float 0.0)) "max" 4.0 (Tensor.item mx);
  let av = Ops_nn.avg_pool2d ~stride:2 ~window:2 x in
  Alcotest.(check (float 0.0)) "avg" 2.5 (Tensor.item av);
  let g = Ops_nn.global_avg_pool2d x in
  Alcotest.(check (array int)) "gap shape" [| 1; 1 |] (Tensor.shape g);
  Alcotest.(check (float 0.0)) "gap" 2.5 (Tensor.item g)

let test_embedding () =
  let table = Tensor.of_float_array [| 3; 2 |] [| 0.; 1.; 10.; 11.; 20.; 21. |] in
  let ids = Tensor.of_int_array [| 2 |] [| 2; 0 |] in
  Alcotest.check tensor_eq "lookup"
    (Tensor.of_float_array [| 2; 2 |] [| 20.; 21.; 0.; 1. |])
    (Ops_nn.embedding table ids)

let test_nms () =
  let boxes =
    Tensor.of_float_array [| 3; 5 |]
      [| 0.9; 0.; 0.; 10.; 10.; 0.8; 1.; 1.; 10.; 10.; 0.7; 50.; 50.; 60.; 60. |]
  in
  let out = Ops_nn.nms ~iou_threshold:0.5 boxes in
  Alcotest.(check int) "suppressed overlap" 2 (Tensor.shape out).(0);
  (* keeps highest score first *)
  Alcotest.(check (float 0.0)) "best kept" 0.9 (Tensor.get out [| 0; 0 |]);
  let all = Ops_nn.nms ~iou_threshold:0.99 boxes in
  Alcotest.(check int) "loose threshold keeps all" 3 (Tensor.shape all).(0)

(* ---------------------------- properties ---------------------------- *)

let small_shape_gen =
  QCheck.Gen.(list_size (int_range 1 3) (int_range 1 5) >|= Array.of_list)

let arb_shape = QCheck.make ~print:Shape.to_string small_shape_gen

let prop_broadcast_self =
  QCheck.Test.make ~name:"broadcast with self is identity" ~count:100 arb_shape (fun s ->
      match Shape.broadcast s s with Some out -> Shape.equal out s | None -> false)

let prop_broadcast_commutative =
  QCheck.Test.make ~name:"broadcast commutative" ~count:200
    (QCheck.pair arb_shape arb_shape) (fun (a, b) ->
      match (Shape.broadcast a b, Shape.broadcast b a) with
      | Some x, Some y -> Shape.equal x y
      | None, None -> true
      | _ -> false)

let prop_unravel_linear =
  QCheck.Test.make ~name:"unravel inverts linear_index" ~count:200 arb_shape (fun s ->
      let n = Shape.numel s in
      n = 0
      ||
      let rng = Rng.create ~seed:(Shape.numel s) in
      let i = Rng.int rng n in
      Shape.linear_index s (Shape.unravel s i) = i)

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative (same shape)" ~count:50 arb_shape (fun s ->
      let rng = Rng.create ~seed:7 in
      let a = Tensor.randn rng s and b = Tensor.randn rng s in
      Tensor.approx_equal (Ops_elem.add a b) (Ops_elem.add b a))

let prop_dense_distributes =
  QCheck.Test.make ~name:"dense distributes over +" ~count:30
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (m, n) ->
      let k = 6 in
      let rng = Rng.create ~seed:(m + (10 * n)) in
      let a = Tensor.randn rng [| m; k |] in
      let b = Tensor.randn rng [| m; k |] in
      let w = Tensor.randn rng [| n; k |] in
      Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4
        (Ops_matmul.dense (Ops_elem.add a b) w)
        (Ops_elem.add (Ops_matmul.dense a w) (Ops_matmul.dense b w)))

let prop_softmax_distribution =
  QCheck.Test.make ~name:"softmax rows sum to 1" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (m, n) ->
      let rng = Rng.create ~seed:(m * n) in
      let x = Tensor.randn ~scale:3.0 rng [| m; n |] in
      let sums = Ops_reduce.sum ~axis:1 (Ops_nn.softmax ~axis:1 x) in
      Tensor.approx_equal ~atol:1e-5 ~rtol:1e-5 (Tensor.ones [| m |]) sums)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involution (rank 2)" ~count:50
    QCheck.(pair (int_range 1 7) (int_range 1 7))
    (fun (m, n) ->
      let rng = Rng.create ~seed:(m + n) in
      let x = Tensor.randn rng [| m; n |] in
      Tensor.approx_equal x (Ops_shape.transpose (Ops_shape.transpose x)))

let prop_nms_upper_bound =
  QCheck.Test.make ~name:"nms output within upper bound" ~count:50
    (QCheck.int_range 1 12) (fun n ->
      let rng = Rng.create ~seed:n in
      let boxes = Tensor.rand_uniform rng ~lo:0.0 ~hi:20.0 [| n; 5 |] in
      let out = Ops_nn.nms boxes in
      (Tensor.shape out).(0) <= n)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_broadcast_self;
      prop_broadcast_commutative;
      prop_unravel_linear;
      prop_add_commutative;
      prop_dense_distributes;
      prop_softmax_distribution;
      prop_transpose_involution;
      prop_nms_upper_bound;
    ]

let () =
  Alcotest.run "tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "numel/rank" `Quick test_numel_rank;
          Alcotest.test_case "strides" `Quick test_strides;
          Alcotest.test_case "linear/unravel" `Quick test_linear_unravel;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "reshape -1" `Quick test_reshape_resolve;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "create/fill" `Quick test_create_fill;
          Alcotest.test_case "dtype roundtrip" `Quick test_dtype_roundtrip;
          Alcotest.test_case "u8 wraps" `Quick test_u8_wraps;
          Alcotest.test_case "copy is independent" `Quick test_copy_independent;
          Alcotest.test_case "blit" `Quick test_blit;
        ] );
      ( "elementwise",
        [
          Alcotest.test_case "broadcast add" `Quick test_add_broadcast;
          Alcotest.test_case "activations" `Quick test_activations;
          Alcotest.test_case "comparisons" `Quick test_comparisons_bool_dtype;
          Alcotest.test_case "where" `Quick test_where;
          Alcotest.test_case "erf" `Quick test_erf_reference_points;
        ] );
      ( "matmul",
        [
          Alcotest.test_case "dense vs naive" `Quick test_dense_matches_naive;
          Alcotest.test_case "matmul identity" `Quick test_matmul_identity;
          Alcotest.test_case "batch matmul" `Quick test_batch_matmul;
          Alcotest.test_case "dense+bias" `Quick test_dense_bias;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "sum/mean/max/min" `Quick test_reductions;
          Alcotest.test_case "argmax" `Quick test_argmax;
        ] );
      ( "shape_ops",
        [
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "transpose axes" `Quick test_transpose_axes;
          Alcotest.test_case "concat/split roundtrip" `Quick test_concat_split_roundtrip;
          Alcotest.test_case "strided slice" `Quick test_slice;
          Alcotest.test_case "take" `Quick test_take;
          Alcotest.test_case "arange/unique" `Quick test_arange_unique;
          Alcotest.test_case "tile/stack" `Quick test_tile_stack;
        ] );
      ( "nn_ops",
        [
          Alcotest.test_case "softmax" `Quick test_softmax;
          Alcotest.test_case "layer norm" `Quick test_layer_norm;
          Alcotest.test_case "conv2d known values" `Quick test_conv2d_known;
          Alcotest.test_case "conv2d padding/stride" `Quick test_conv2d_padding_stride;
          Alcotest.test_case "pooling" `Quick test_pooling;
          Alcotest.test_case "embedding" `Quick test_embedding;
          Alcotest.test_case "nms" `Quick test_nms;
        ] );
      ("properties", props);
    ]
