(* Inliner pass and executable-validation tests. *)

open Nimble_tensor
open Nimble_ir
open Nimble_passes
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4)
let rng = Rng.create ~seed:51

let static_ty s = Ty.tensor_of_shape (Shape.of_list s)

(* main calls a small helper twice *)
let helper_module () =
  let m = Irmod.create () in
  let a = Expr.fresh_var ~ty:(static_ty [ 4 ]) "a" in
  Irmod.add_func m "double" (Expr.fn_def [ a ] (Expr.op_call "add" [ Expr.Var a; Expr.Var a ]));
  let x = Expr.fresh_var ~ty:(static_ty [ 4 ]) "x" in
  Irmod.add_func m "main"
    (Expr.fn_def [ x ]
       (Expr.call (Expr.Global "double")
          [ Expr.call (Expr.Global "double") [ Expr.Var x ] ]));
  m

let test_inline_and_prune () =
  let m = helper_module () in
  let stats = Inline.run m in
  Alcotest.(check int) "two call sites inlined" 2 stats.Inline.inlined;
  Alcotest.(check int) "helper pruned" 1 stats.Inline.pruned;
  Alcotest.(check (list string)) "only main remains" [ "main" ]
    (List.map fst (Irmod.functions m));
  (* no Global calls left *)
  let fn = Irmod.func_exn m "main" in
  let globals = ref 0 in
  Expr.iter (function Expr.Global _ -> incr globals | _ -> ()) fn.Expr.body;
  Alcotest.(check int) "no global refs" 0 !globals

let test_inline_preserves_semantics () =
  let input = Tensor.randn rng [| 4 |] in
  let expected = Ops_elem.mul_scalar input 4.0 in
  let out =
    Interp.run_tensors (Nimble.vm (Nimble.compile (helper_module ()))) [ input ]
  in
  Alcotest.check tensor_eq "4x" expected out

let test_inline_skips_recursive () =
  (* a self-recursive function must survive untouched *)
  let elem = static_ty [ 2 ] in
  let adt = Adt.tensor_list ~elem_ty:elem in
  let nil = Adt.ctor_exn adt "Nil" and cons = Adt.ctor_exn adt "Cons" in
  let xs = Expr.fresh_var ~ty:(Ty.Adt "TensorList") "xs" in
  let acc = Expr.fresh_var ~ty:elem "acc" in
  let hd = Expr.fresh_var "hd" and tl = Expr.fresh_var "tl" in
  let m = Irmod.create () in
  Irmod.add_adt m adt;
  Irmod.add_func m "go"
    (Expr.fn_def ~ret_ty:elem [ xs; acc ]
       (Expr.Match
          ( Expr.Var xs,
            [
              { Expr.pat = Expr.Pctor (nil, []); rhs = Expr.Var acc };
              {
                Expr.pat = Expr.Pctor (cons, [ Expr.Pvar hd; Expr.Pvar tl ]);
                rhs =
                  Expr.call (Expr.Global "go")
                    [ Expr.Var tl; Expr.op_call "add" [ Expr.Var acc; Expr.Var hd ] ];
              };
            ] )));
  let x0 = Expr.fresh_var ~ty:(Ty.Adt "TensorList") "input" in
  Irmod.add_func m "main"
    (Expr.fn_def [ x0 ]
       (Expr.call (Expr.Global "go") [ Expr.Var x0; Expr.Const (Tensor.zeros [| 2 |]) ]));
  let stats = Inline.run m in
  Alcotest.(check int) "nothing inlined" 0 stats.Inline.inlined;
  Alcotest.(check int) "nothing pruned" 0 stats.Inline.pruned;
  Alcotest.(check bool) "go survives" true (Irmod.find_func m "go" <> None)

let test_inline_respects_size_cap () =
  let m = helper_module () in
  let stats = Inline.run ~max_size:1 m in
  Alcotest.(check int) "too big to inline" 0 stats.Inline.inlined;
  Alcotest.(check bool) "helper kept" true (Irmod.find_func m "double" <> None)

let test_inline_freshens_variables () =
  (* after inlining the same helper twice, every bound vid must be unique *)
  let m = helper_module () in
  ignore (Inline.run m);
  let fn = Irmod.func_exn m "main" in
  let seen = Hashtbl.create 16 in
  let dup = ref false in
  Expr.iter
    (function
      | Expr.Let (v, _, _) ->
          if Hashtbl.mem seen v.Expr.vid then dup := true
          else Hashtbl.add seen v.Expr.vid ()
      | _ -> ())
    fn.Expr.body;
  Alcotest.(check bool) "no duplicate binder ids" false !dup

(* ---------------------------- validation ---------------------------- *)

let test_validate_accepts_compiled () =
  let w = Nimble_models.Lstm.init_weights Nimble_models.Lstm.small_config in
  let exe = Nimble.compile (Nimble_models.Lstm.ir_module w) in
  Alcotest.(check (list string)) "clean" [] (Nimble_vm.Exe.validate exe)

let bad_exe code ~regs =
  Nimble_vm.Exe.create
    ~funcs:[| { Nimble_vm.Exe.name = "main"; arity = 0; register_count = regs; code } |]
    ~constants:[||] ~packed_names:[||]

let test_validate_catches_bad_register () =
  let exe = bad_exe ~regs:1 [| Nimble_vm.Isa.Move { src = 5; dst = 0 }; Nimble_vm.Isa.Ret { result = 0 } |] in
  Alcotest.(check bool) "flagged" true (Nimble_vm.Exe.validate exe <> [])

let test_validate_catches_bad_jump () =
  let exe = bad_exe ~regs:1 [| Nimble_vm.Isa.Goto 99 |] in
  Alcotest.(check bool) "flagged" true (Nimble_vm.Exe.validate exe <> [])

let test_validate_catches_bad_const () =
  let exe =
    bad_exe ~regs:1
      [| Nimble_vm.Isa.LoadConst { index = 3; dst = 0 }; Nimble_vm.Isa.Ret { result = 0 } |]
  in
  Alcotest.(check bool) "flagged" true (Nimble_vm.Exe.validate exe <> [])

let test_validate_catches_fallthrough () =
  let exe = bad_exe ~regs:1 [| Nimble_vm.Isa.Move { src = 0; dst = 0 } |] in
  Alcotest.(check bool) "flagged" true (Nimble_vm.Exe.validate exe <> [])

let test_validate_catches_arity_mismatch () =
  let f0 =
    {
      Nimble_vm.Exe.name = "main";
      arity = 0;
      register_count = 2;
      code =
        [|
          Nimble_vm.Isa.Invoke { func_index = 1; args = [| 0 |]; dst = 1 };
          Nimble_vm.Isa.Ret { result = 1 };
        |];
    }
  in
  let f1 =
    { Nimble_vm.Exe.name = "two"; arity = 2; register_count = 2; code = [| Nimble_vm.Isa.Ret { result = 0 } |] }
  in
  let exe = Nimble_vm.Exe.create ~funcs:[| f0; f1 |] ~constants:[||] ~packed_names:[||] in
  Alcotest.(check bool) "flagged" true (Nimble_vm.Exe.validate exe <> [])

let () =
  Alcotest.run "inline"
    [
      ( "inline",
        [
          Alcotest.test_case "inline + prune" `Quick test_inline_and_prune;
          Alcotest.test_case "semantics preserved" `Quick test_inline_preserves_semantics;
          Alcotest.test_case "recursive skipped" `Quick test_inline_skips_recursive;
          Alcotest.test_case "size cap" `Quick test_inline_respects_size_cap;
          Alcotest.test_case "variables freshened" `Quick test_inline_freshens_variables;
        ] );
      ( "validate",
        [
          Alcotest.test_case "compiled passes" `Quick test_validate_accepts_compiled;
          Alcotest.test_case "bad register" `Quick test_validate_catches_bad_register;
          Alcotest.test_case "bad jump" `Quick test_validate_catches_bad_jump;
          Alcotest.test_case "bad constant" `Quick test_validate_catches_bad_const;
          Alcotest.test_case "fallthrough" `Quick test_validate_catches_fallthrough;
          Alcotest.test_case "arity mismatch" `Quick test_validate_catches_arity_mismatch;
        ] );
    ]
