(* Device substrate tests: ids, pool accounting, peak tracking, transfers. *)

open Nimble_device

let test_device_ids () =
  Alcotest.(check int) "cpu id" 0 Device.cpu.Device.id;
  Alcotest.(check int) "gpu id" 1 Device.gpu.Device.id;
  Alcotest.(check bool) "cpu is cpu" true (Device.is_cpu Device.cpu);
  Alcotest.(check bool) "gpu not cpu" false (Device.is_cpu Device.gpu);
  Alcotest.(check bool) "of_id" true (Device.equal (Device.of_id 1) Device.gpu);
  Alcotest.check_raises "unknown" (Invalid_argument "Device.of_id: unknown device 9")
    (fun () -> ignore (Device.of_id 9))

let test_pool_alloc_free () =
  let pool = Pool.create () in
  Pool.record_alloc pool Device.cpu ~bytes:100;
  Pool.record_alloc pool Device.cpu ~bytes:200;
  Pool.record_free pool Device.cpu ~bytes:100;
  let s = Pool.stats pool Device.cpu in
  Alcotest.(check int) "allocs" 2 s.Pool.allocs;
  Alcotest.(check int) "frees" 1 s.Pool.frees;
  Alcotest.(check int) "live" 200 s.Pool.live_bytes;
  Alcotest.(check int) "peak" 300 s.Pool.peak_bytes;
  Alcotest.(check int) "bytes total" 300 s.Pool.bytes_allocated

let test_pool_peak_tracks_max () =
  let pool = Pool.create () in
  Pool.record_alloc pool Device.cpu ~bytes:50;
  Pool.record_free pool Device.cpu ~bytes:50;
  Pool.record_alloc pool Device.cpu ~bytes:40;
  Alcotest.(check int) "peak is historical max" 50 (Pool.peak_bytes pool Device.cpu)

let test_pool_per_device_isolation () =
  let pool = Pool.create () in
  Pool.record_alloc pool Device.cpu ~bytes:10;
  Pool.record_alloc pool Device.gpu ~bytes:20;
  Alcotest.(check int) "cpu live" 10 (Pool.stats pool Device.cpu).Pool.live_bytes;
  Alcotest.(check int) "gpu live" 20 (Pool.stats pool Device.gpu).Pool.live_bytes;
  Alcotest.(check int) "total allocs" 2 (Pool.total_allocs pool)

let test_pool_transfers () =
  let pool = Pool.create () in
  Pool.record_transfer pool ~dst:Device.gpu ~bytes:4096;
  Pool.record_transfer pool ~dst:Device.gpu ~bytes:4096;
  let s = Pool.stats pool Device.gpu in
  Alcotest.(check int) "count" 2 s.Pool.transfers_in;
  Alcotest.(check int) "bytes" 8192 s.Pool.transfer_bytes_in;
  Alcotest.(check int) "total" 2 (Pool.total_transfers pool)

let test_pool_reset () =
  let pool = Pool.create () in
  Pool.record_alloc pool Device.cpu ~bytes:10;
  Pool.reset pool;
  Alcotest.(check int) "cleared" 0 (Pool.total_allocs pool)

let test_free_never_negative () =
  let pool = Pool.create () in
  Pool.record_free pool Device.cpu ~bytes:999;
  Alcotest.(check int) "clamped" 0 (Pool.stats pool Device.cpu).Pool.live_bytes

let () =
  Alcotest.run "device"
    [
      ("device", [ Alcotest.test_case "ids" `Quick test_device_ids ]);
      ( "pool",
        [
          Alcotest.test_case "alloc/free" `Quick test_pool_alloc_free;
          Alcotest.test_case "peak" `Quick test_pool_peak_tracks_max;
          Alcotest.test_case "per-device" `Quick test_pool_per_device_isolation;
          Alcotest.test_case "transfers" `Quick test_pool_transfers;
          Alcotest.test_case "reset" `Quick test_pool_reset;
          Alcotest.test_case "free clamps" `Quick test_free_never_negative;
        ] );
    ]
