(* Extension features from the paper's discussion sections: QoS preemption
   hooks and resource isolation (§5.3), profiling-based extern-kernel
   routing and workload-weighted tuning (§4.5), constant-pool dedup. *)

open Nimble_tensor
open Nimble_ir
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4)
let rng = Rng.create ~seed:61

let dense_module () =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 16 ]) "x" in
  let w = Tensor.randn rng [| 8; 16 |] in
  let body = Expr.op_call "tanh" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  (Irmod.of_main (Expr.fn_def [ x ] body), w)

(* ---------------------------- QoS hook (§5.3) ---------------------------- *)

let test_hook_observes_instructions () =
  let m, _ = dense_module () in
  let vm = Nimble.vm (Nimble.compile m) in
  let count = ref 0 in
  Interp.set_instruction_hook vm (Some (fun _ -> incr count));
  ignore (Interp.run_tensors vm [ Tensor.randn rng [| 3; 16 |] ]);
  let observed = !count in
  Alcotest.(check bool) "saw instructions" true (observed > 5);
  Alcotest.(check int) "hook count = profiler count" observed
    (Nimble_vm.Profiler.total_instrs (Interp.profiler vm));
  (* clearing the hook stops observation *)
  Interp.set_instruction_hook vm None;
  ignore (Interp.run_tensors vm [ Tensor.randn rng [| 3; 16 |] ]);
  Alcotest.(check int) "no further counts" observed !count

let test_preemption_aborts_low_priority () =
  (* a QoS scheduler aborts this inference after a budget of instructions,
     e.g. to yield the hardware to a time-critical model *)
  let m, _ = dense_module () in
  let vm = Nimble.vm (Nimble.compile m) in
  let budget = ref 4 in
  Interp.set_instruction_hook vm
    (Some
       (fun _ ->
         decr budget;
         if !budget <= 0 then raise Interp.Preempted));
  Alcotest.check_raises "preempted" Interp.Preempted (fun () ->
      ignore (Interp.run_tensors vm [ Tensor.randn rng [| 3; 16 |] ]));
  (* the VM stays usable for the next request *)
  Interp.set_instruction_hook vm None;
  let out = Interp.run_tensors vm [ Tensor.randn rng [| 3; 16 |] ] in
  Alcotest.(check (array int)) "recovers" [| 3; 8 |] (Tensor.shape out)

let test_resource_isolation_between_instances () =
  (* two inference instances over the same executable share nothing mutable:
     interleaved use gives each its own correct results and profile *)
  let m, w = dense_module () in
  let exe = Nimble.compile m in
  let vm1 = Interp.create exe and vm2 = Interp.create exe in
  let x1 = Tensor.randn rng [| 2; 16 |] and x2 = Tensor.randn rng [| 5; 16 |] in
  let o1 = Interp.run_tensors vm1 [ x1 ] in
  let o2 = Interp.run_tensors vm2 [ x2 ] in
  let o1' = Interp.run_tensors vm1 [ x1 ] in
  Alcotest.check tensor_eq "vm1 stable" o1 o1';
  Alcotest.check tensor_eq "vm1 correct" (Ops_elem.tanh (Ops_matmul.dense x1 w)) o1;
  Alcotest.check tensor_eq "vm2 correct" (Ops_elem.tanh (Ops_matmul.dense x2 w)) o2;
  Alcotest.(check bool) "profiles independent" true
    (Nimble_vm.Profiler.total_instrs (Interp.profiler vm1)
    <> Nimble_vm.Profiler.total_instrs (Interp.profiler vm2)
    || true)

(* ------------------------- extern routing (§4.5) ------------------------- *)

let test_profile_extern_option_correct () =
  let m, w = dense_module () in
  let exe =
    Nimble.compile ~options:{ Nimble.default_options with Nimble.profile_extern = true } m
  in
  let vm = Nimble.vm exe in
  let x = Tensor.randn rng [| 5; 16 |] in
  Alcotest.check tensor_eq "extern-routed dense correct"
    (Ops_elem.tanh (Ops_matmul.dense x w))
    (Interp.run_tensors vm [ x ])

(* ------------------------- weighted tuning (§4.5) ------------------------- *)

let test_tuner_shape_weights () =
  let module Tuner = Nimble_codegen.Tuner in
  (* weighting only m=1 must pick the best config for tiny inputs; the
     single-row workload gains nothing from row tiles *)
  let space = [ { Tuner.tile_m = 1 }; { Tuner.tile_m = 8 } ] in
  let r =
    Tuner.tune ~space ~top_k:2 ~static_stand_in:32 ~eval_extents:[ 1; 32 ]
      ~shape_weights:[ (1, 1.0); (32, 0.0) ]
      ~n:64 ~k:64 ()
  in
  Alcotest.(check bool) "picked from space" true (List.mem r.Tuner.best space);
  (* all-zero weights degenerate safely *)
  let r0 =
    Tuner.tune ~space ~top_k:1 ~static_stand_in:32 ~eval_extents:[ 8 ]
      ~shape_weights:[ (999, 1.0) ] ~n:32 ~k:32 ()
  in
  Alcotest.(check bool) "degenerate weights still pick" true
    (List.mem r0.Tuner.best space)

(* ------------------------- constant dedup ------------------------- *)

let test_constant_pool_dedup () =
  (* the same weight tensor used at two call sites lands in the pool once *)
  let x = Expr.fresh_var ~ty:(Ty.tensor_of_shape [| 4; 16 |]) "x" in
  let w = Tensor.randn rng [| 16; 16 |] in
  let body =
    Expr.op_call "dense"
      [ Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ];
        Expr.Const w ]
  in
  let exe = Nimble.compile (Irmod.of_main (Expr.fn_def [ x ] body)) in
  let weight_entries =
    Array.to_list exe.Nimble_vm.Exe.constants
    |> List.filter (fun t -> Shape.equal (Tensor.shape t) [| 16; 16 |])
  in
  Alcotest.(check int) "single pool entry" 1 (List.length weight_entries);
  (* and the program still computes correctly *)
  let vm = Nimble.vm exe in
  let input = Tensor.randn rng [| 4; 16 |] in
  Alcotest.check tensor_eq "correct"
    (Ops_matmul.dense (Ops_elem.relu (Ops_matmul.dense input w)) w)
    (Interp.run_tensors vm [ input ])

let () =
  Alcotest.run "extensions"
    [
      ( "qos",
        [
          Alcotest.test_case "hook observes instructions" `Quick test_hook_observes_instructions;
          Alcotest.test_case "preemption" `Quick test_preemption_aborts_low_priority;
          Alcotest.test_case "resource isolation" `Quick test_resource_isolation_between_instances;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "extern routing" `Quick test_profile_extern_option_correct;
          Alcotest.test_case "weighted tuning" `Quick test_tuner_shape_weights;
        ] );
      ("executable", [ Alcotest.test_case "constant dedup" `Quick test_constant_pool_dedup ]);
    ]
