(* Codegen tests: dense kernel variants agree numerically, residue dispatch
   selects correctly, lowering of fused primitives, composed shape functions,
   the symbolic tuner, and the op-eval kernel library. *)

open Nimble_tensor
open Nimble_ir
open Nimble_codegen

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4)
let rng = Rng.create ~seed:21

(* ---------------------------- dense kernels ---------------------------- *)

let test_kernel_variants_agree () =
  List.iter
    (fun m ->
      let a = Tensor.randn rng [| m; 24 |] and w = Tensor.randn rng [| 10; 24 |] in
      let reference = Ops_matmul.dense a w in
      Alcotest.check tensor_eq
        (Fmt.str "residue m=%d" m)
        reference
        (Dense_kernels.residue_kernel ~residue:(m mod 8) a w);
      Alcotest.check tensor_eq (Fmt.str "guarded m=%d" m) reference
        (Dense_kernels.guarded_kernel a w);
      Alcotest.check tensor_eq (Fmt.str "static m=%d" m) reference
        (Dense_kernels.static_kernel ~m_static:m a w);
      List.iter
        (fun tile_m ->
          Alcotest.check tensor_eq
            (Fmt.str "tiled %d m=%d" tile_m m)
            reference
            (Dense_kernels.tiled_kernel ~tile_m a w))
        [ 1; 2; 4; 8; 16 ])
    [ 1; 7; 8; 9; 16; 23 ]

let test_residue_kernel_rejects_wrong_residue () =
  let a = Tensor.randn rng [| 9; 8 |] and w = Tensor.randn rng [| 4; 8 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Dense_kernels.residue_kernel ~residue:0 a w);
       false
     with Tensor.Type_error _ -> true)

(* ---------------------------- dispatch ---------------------------- *)

let test_dispatch_selects_and_counts () =
  let d = Dispatch.create ~num_kernels:4 () in
  (* residues covered: 0, 2, 4, 6 *)
  let w = Tensor.randn rng [| 4; 8 |] in
  List.iter
    (fun m ->
      let a = Tensor.randn rng [| m; 8 |] in
      Alcotest.check tensor_eq (Fmt.str "m=%d" m) (Ops_matmul.dense a w) (Dispatch.run d a w))
    [ 8; 10; 11; 13; 16 ];
  let hits, misses = Dispatch.stats d in
  (* 8, 10, 16 hit (residues 0, 2, 0); 11, 13 miss (residues 3, 5) *)
  Alcotest.(check int) "hits" 3 hits;
  Alcotest.(check int) "misses" 2 misses

let test_dispatch_code_size_tradeoff () =
  Alcotest.(check int) "8 kernels + fallback" 9 (Dispatch.code_size (Dispatch.create ~num_kernels:8 ()));
  Alcotest.(check int) "no dispatch = 1" 1 (Dispatch.code_size (Dispatch.create ~num_kernels:0 ()))

let test_dispatch_extern_routing () =
  let d = Dispatch.create ~num_kernels:8 () in
  let called = ref false in
  Dispatch.set_extern d (fun a w ->
      called := true;
      Dense_kernels.extern_library_kernel a w);
  let a = Tensor.randn rng [| 4; 8 |] and w = Tensor.randn rng [| 4; 8 |] in
  Alcotest.check tensor_eq "extern result" (Ops_matmul.dense a w) (Dispatch.run d a w);
  Alcotest.(check bool) "extern used" true !called

(* ---------------------------- lowering ---------------------------- *)

let primitive_of body params =
  let m = Irmod.of_main (Expr.fn_def params body) in
  let m = Nimble_passes.Anf.run m in
  ignore (Nimble_typing.Infer.infer_module m);
  let m = Nimble_passes.Fusion.run m in
  let fn = Irmod.func_exn m "main" in
  match Nimble_passes.Fusion.primitives_of fn.Expr.body with
  | [ p ] -> p
  | ps -> Alcotest.failf "expected one primitive, got %d" (List.length ps)

let test_lower_fused_primitive () =
  let x = Expr.fresh_var ~ty:(Ty.tensor_of_shape [| 3; 6 |]) "x" in
  let w = Tensor.randn rng [| 5; 6 |] in
  let body = Expr.op_call "relu" [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ] ] in
  let prim = primitive_of body [ x ] in
  let kernel = Lower.lower ~name:"k" prim in
  let input = Tensor.randn rng [| 3; 6 |] in
  (* constants become primitive parameters during fusion *)
  let out = Kernel.run1 kernel [ input; w ] in
  Alcotest.check tensor_eq "fused dense+relu" (Ops_elem.relu (Ops_matmul.dense input w)) out

let test_lower_wrong_arity_rejected () =
  let x = Expr.fresh_var ~ty:(Ty.tensor_of_shape [| 2 |]) "x" in
  let prim = primitive_of (Expr.op_call "relu" [ Expr.Var x ]) [ x ] in
  let kernel = Lower.lower ~name:"k" prim in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Kernel.run kernel []);
       false
     with Lower.Lower_error _ -> true)

let test_composed_shape_function () =
  (* the shape function of a fused group composes member shape funcs (§4.2) *)
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 6 ]) "x" in
  let w = Tensor.randn rng [| 5; 6 |] in
  let body =
    Expr.op_call "tanh"
      [ Expr.op_call "bias_add"
          [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ];
            Expr.Const (Tensor.zeros [| 5 |]) ] ]
  in
  let prim = primitive_of body [ x ] in
  Alcotest.(check bool) "all data independent" true (Lower.all_data_independent prim);
  let sf = Lower.shape_func_of_primitive ~name:"k" prim in
  (* primitive params: (x, w_const, bias_const) *)
  Alcotest.(check (list (array int))) "composed" [ [| 7; 5 |] ]
    (sf [ [| 7; 6 |]; [| 5; 6 |]; [| 5 |] ])

(* ---------------------------- tuner ---------------------------- *)

let test_tuner_runs_protocol () =
  let result = Tuner.tune ~space:[ { Tuner.tile_m = 1 }; { Tuner.tile_m = 8 } ] ~top_k:2
      ~static_stand_in:32 ~eval_extents:[ 4; 16; 32 ] ~n:32 ~k:32 ()
  in
  Alcotest.(check int) "tuned on stand-in" 32 result.Tuner.tuned_on;
  Alcotest.(check int) "top k kept" 2 (List.length result.Tuner.top_k);
  Alcotest.(check int) "cross eval points" 6 (List.length result.Tuner.cross_eval);
  Alcotest.(check bool) "picked from space" true
    (List.mem result.Tuner.best [ { Tuner.tile_m = 1 }; { Tuner.tile_m = 8 } ])

(* ---------------------------- op eval / trace ---------------------------- *)

let test_op_eval_unknown_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Op_eval.eval "not_an_op" ~attrs:[] []);
       false
     with Op_eval.Eval_error _ -> true)

let test_flops_estimates () =
  Alcotest.(check int) "dense flops" (2 * 4 * 8 * 16)
    (Op_eval.flops "dense" ~attrs:[] [ [| 4; 16 |]; [| 8; 16 |] ] [ [| 4; 8 |] ]);
  Alcotest.(check int) "add flops" 12 (Op_eval.flops "add" ~attrs:[] [ [| 3; 4 |] ] [ [| 3; 4 |] ])

let test_trace_capture () =
  let events = ref [] in
  Trace.with_listener
    (fun ev -> events := ev :: !events)
    (fun () ->
      ignore (Trace.eval_op "add" ~attrs:[] [ Tensor.ones [| 2 |]; Tensor.ones [| 2 |] ]);
      Trace.record_framework "test_event" ~amount:3 ());
  (match !events with
  | [ Trace.Framework { kind; amount }; Trace.Op_exec { op; flops; _ } ] ->
      Alcotest.(check string) "framework kind" "test_event" kind;
      Alcotest.(check int) "amount" 3 amount;
      Alcotest.(check string) "op" "add" op;
      Alcotest.(check int) "flops" 2 flops
  | evs -> Alcotest.failf "unexpected %d events" (List.length evs));
  (* listener removed after with_listener *)
  Alcotest.(check bool) "disabled" false (Trace.enabled ())

let prop_dispatch_any_k_correct =
  QCheck.Test.make ~name:"dispatch correct for any k and m" ~count:60
    QCheck.(pair (int_range 0 8) (int_range 1 30))
    (fun (k, m) ->
      let d = Dispatch.create ~num_kernels:k () in
      let rng = Rng.create ~seed:(k + (100 * m)) in
      let a = Tensor.randn rng [| m; 12 |] and w = Tensor.randn rng [| 6; 12 |] in
      Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4 (Ops_matmul.dense a w) (Dispatch.run d a w))

let () =
  Alcotest.run "codegen"
    [
      ( "dense_kernels",
        [
          Alcotest.test_case "variants agree" `Quick test_kernel_variants_agree;
          Alcotest.test_case "wrong residue rejected" `Quick test_residue_kernel_rejects_wrong_residue;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "select + stats" `Quick test_dispatch_selects_and_counts;
          Alcotest.test_case "code size" `Quick test_dispatch_code_size_tradeoff;
          Alcotest.test_case "extern routing" `Quick test_dispatch_extern_routing;
          QCheck_alcotest.to_alcotest prop_dispatch_any_k_correct;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "fused primitive" `Quick test_lower_fused_primitive;
          Alcotest.test_case "arity check" `Quick test_lower_wrong_arity_rejected;
          Alcotest.test_case "composed shape function" `Quick test_composed_shape_function;
        ] );
      ("tuner", [ Alcotest.test_case "protocol" `Quick test_tuner_runs_protocol ]);
      ( "op_eval",
        [
          Alcotest.test_case "unknown op" `Quick test_op_eval_unknown_rejected;
          Alcotest.test_case "flop estimates" `Quick test_flops_estimates;
          Alcotest.test_case "trace capture" `Quick test_trace_capture;
        ] );
    ]
