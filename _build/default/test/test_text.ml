(* Textual IR format tests: parsing, printing, round trips, and compiling
   parsed programs end-to-end through the VM. *)

open Nimble_tensor
open Nimble_ir
module T = Text_format
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp

let tensor_eq = Alcotest.testable Tensor.pp (Tensor.approx_equal ~atol:1e-4 ~rtol:1e-4)

let simple_src =
  {|
-- a dense + relu model over a dynamic batch
def @main(%x: Tensor[(?, 16), f32]) {
  let %h = dense(%x, randn[(8, 16), seed=3]);
  relu(%h)
}
|}

let test_parse_simple () =
  let m = T.parse_module simple_src in
  let fn = Irmod.func_exn m "main" in
  Alcotest.(check int) "one param" 1 (List.length fn.Expr.params);
  match (List.hd fn.Expr.params).Expr.vty with
  | Some (Ty.Tensor { dims = [| Dim.Any; Dim.Static 16 |]; dtype = Dtype.F32 }) -> ()
  | other -> Alcotest.failf "bad param type %a" Fmt.(option Ty.pp) other

let test_parsed_module_runs () =
  let m = T.parse_module simple_src in
  let vm = Nimble.vm (Nimble.compile m) in
  let w = Tensor.randn (Rng.create ~seed:3) [| 8; 16 |] in
  let rng = Rng.create ~seed:5 in
  List.iter
    (fun rows ->
      let x = Tensor.randn rng [| rows; 16 |] in
      Alcotest.check tensor_eq
        (Fmt.str "rows=%d" rows)
        (Ops_elem.relu (Ops_matmul.dense x w))
        (Interp.run_tensors vm [ x ]))
    [ 1; 5 ]

let test_parse_control_flow () =
  let src =
    {|
def @main(%x: Tensor[(4), f32]) {
  if (greater(mean(%x), 0.0)) {
    add(%x, 1.0)
  } else {
    subtract(%x, 1.0)
  }
}
|}
  in
  let vm = Nimble.vm (Nimble.compile (T.parse_module src)) in
  Alcotest.check tensor_eq "positive" (Tensor.full [| 4 |] 3.0)
    (Interp.run_tensors vm [ Tensor.full [| 4 |] 2.0 ]);
  Alcotest.check tensor_eq "negative"
    (Tensor.full [| 4 |] (-3.0))
    (Interp.run_tensors vm [ Tensor.full [| 4 |] (-2.0) ])

let test_parse_adt_and_recursion () =
  let src =
    {|
type TensorList = Nil() | Cons(Tensor[(2), f32], TensorList)

def @sum_list(%xs: TensorList, %acc: Tensor[(2), f32]) -> Tensor[(2), f32] {
  match (%xs) {
  | Nil() => { %acc }
  | Cons(%hd, %tl) => { @sum_list(%tl, add(%acc, %hd)) }
  }
}

def @main(%xs: TensorList) {
  @sum_list(%xs, zeros[(2), f32])
}
|}
  in
  let m = T.parse_module src in
  let adt = Irmod.adt_exn m "TensorList" in
  let nil = Adt.ctor_exn adt "Nil" and cons = Adt.ctor_exn adt "Cons" in
  let vm = Nimble.vm (Nimble.compile m) in
  let rng = Rng.create ~seed:17 in
  let ts = List.init 4 (fun _ -> Tensor.randn rng [| 2 |]) in
  let input =
    List.fold_right
      (fun t acc ->
        Nimble_vm.Obj.Adt { tag = cons.Adt.tag; fields = [| Nimble_vm.Obj.tensor t; acc |] })
      ts
      (Nimble_vm.Obj.Adt { tag = nil.Adt.tag; fields = [||] })
  in
  let out = Nimble_vm.Obj.to_tensor (Interp.invoke vm [ input ]) in
  let expected = List.fold_left Ops_elem.add (Tensor.zeros [| 2 |]) ts in
  Alcotest.check tensor_eq "sum" expected out

let test_parse_tuples_attrs () =
  let src =
    {|
def @main(%x: Tensor[(2, 6), f32]) {
  let %parts = split(%x) {axis=1, sections=2};
  let %pair = (%parts.0, %parts.1);
  concat(%pair.1, %pair.0) {axis=1}
}
|}
  in
  let vm = Nimble.vm (Nimble.compile (T.parse_module src)) in
  let x = Tensor.of_float_array [| 2; 6 |] [| 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10.; 11. |] in
  let expected =
    Tensor.of_float_array [| 2; 6 |] [| 3.; 4.; 5.; 0.; 1.; 2.; 9.; 10.; 11.; 6.; 7.; 8. |]
  in
  Alcotest.check tensor_eq "swapped halves" expected (Interp.run_tensors vm [ x ])

let test_parse_errors () =
  let bad what src =
    Alcotest.(check bool) what true
      (try
         ignore (T.parse_module src);
         false
       with T.Parse_error _ -> true)
  in
  bad "unbound var" "def @main(%x: Tensor[(2), f32]) { relu(%y) }";
  bad "unknown ctor" "def @main(%x: Tensor[(2), f32]) { Foo(%x) }";
  bad "garbage" "def def def";
  bad "bad type" "def @main(%x: Wat[(2)]) { %x }";
  bad "unterminated" "def @main(%x: Tensor[(2), f32]) { relu(%x) "

(* variable ids differ between parses; compare with digits stripped *)
let normalize s =
  String.to_seq s
  |> Seq.filter (fun c -> not ((c >= '0' && c <= '9') || c = '_'))
  |> String.of_seq

let test_print_parse_roundtrip () =
  (* print -> parse -> print reaches a fixpoint (modulo fresh variable ids),
     and the reparsed module computes the same numbers *)
  let m1 = T.parse_module simple_src in
  let printed1 = T.module_to_string m1 in
  let m2 = T.parse_module printed1 in
  let printed2 = T.module_to_string m2 in
  Alcotest.(check string) "printer fixpoint" (normalize printed1) (normalize printed2);
  let x = Tensor.randn (Rng.create ~seed:8) [| 3; 16 |] in
  let run m = Interp.run_tensors (Nimble.vm (Nimble.compile m)) [ x ] in
  Alcotest.check tensor_eq "same semantics" (run (T.parse_module simple_src)) (run m2)

let test_roundtrip_model_zoo () =
  (* LSTM/GRU/decoder builders print and reparse into modules that still
     compile; randn-free constants survive exactly (zeros/ones) *)
  let check name (m : Irmod.t) =
    let printed = T.module_to_string m in
    let m2 = T.parse_module printed in
    Alcotest.(check (list string))
      (name ^ " functions survive")
      (List.map fst (Irmod.functions m))
      (List.map fst (Irmod.functions m2))
  in
  (* use uniform weights so printing is lossless *)
  let dec =
    Nimble_models.Decoder.init_weights
      { Nimble_models.Decoder.default_config with Nimble_models.Decoder.max_steps = 3 }
  in
  check "decoder" (Nimble_models.Decoder.ir_module dec);
  let gru = Nimble_models.Gru.init_weights Nimble_models.Gru.small_config in
  check "gru" (Nimble_models.Gru.ir_module gru)

let prop_scalar_roundtrip =
  QCheck.Test.make ~name:"scalar literals roundtrip" ~count:100 QCheck.(float_range (-1e6) 1e6)
    (fun v ->
      let src = Fmt.str "def @main(%%x: Tensor[(1), f32]) { add(%%x, %.17g) }" v in
      match T.parse_module src with
      | m -> (
          let fn = Irmod.func_exn m "main" in
          let found = ref None in
          Expr.iter
            (function
              | Expr.Const t when Tensor.numel t = 1 -> found := Some (Tensor.item t)
              | _ -> ())
            fn.Expr.body;
          match !found with Some got -> Float.abs (got -. v) <= Float.abs v *. 1e-12 | None -> false)
      | exception T.Parse_error _ -> false)

let () =
  Alcotest.run "text"
    [
      ( "parse",
        [
          Alcotest.test_case "simple module" `Quick test_parse_simple;
          Alcotest.test_case "parsed module runs" `Quick test_parsed_module_runs;
          Alcotest.test_case "control flow" `Quick test_parse_control_flow;
          Alcotest.test_case "adt + recursion" `Quick test_parse_adt_and_recursion;
          Alcotest.test_case "tuples + attrs" `Quick test_parse_tuples_attrs;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "print/parse fixpoint" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "model zoo" `Quick test_roundtrip_model_zoo;
          QCheck_alcotest.to_alcotest prop_scalar_roundtrip;
        ] );
    ]
