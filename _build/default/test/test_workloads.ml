(* Workload generator tests: determinism, distribution sanity, tree shape. *)

open Nimble_tensor
open Nimble_workloads

let test_rng_determinism () =
  let a = Rng.create ~seed:5 and b = Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create ~seed:6 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    Alcotest.(check bool) "unit interval" true (f >= 0.0 && f < 1.0)
  done

let test_rng_normal_moments () =
  let rng = Rng.create ~seed:2 in
  let n = 20000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.normal rng in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "var ~ 1" true (Float.abs (var -. 1.0) < 0.1)

let test_categorical () =
  let rng = Rng.create ~seed:3 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Rng.categorical rng [| 1.0; 2.0; 1.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  (* middle bucket should be about twice as likely *)
  Alcotest.(check bool) "weighting" true
    (counts.(1) > counts.(0) && counts.(1) > counts.(2))

let test_mrpc_lengths () =
  let ls = Mrpc.lengths 200 in
  Alcotest.(check int) "count" 200 (List.length ls);
  List.iter
    (fun l -> Alcotest.(check bool) "plausible range" true (l >= 1 && l <= 70))
    ls;
  let mean = Mrpc.mean_length 200 in
  Alcotest.(check bool) "mean near 25-30" true (mean > 15.0 && mean < 40.0);
  (* deterministic *)
  Alcotest.(check (list int)) "deterministic" ls (Mrpc.lengths 200)

let test_mrpc_inputs_shapes () =
  let config = Nimble_models.Lstm.small_config in
  let inputs = Mrpc.lstm_inputs config 5 in
  List.iter
    (fun xs ->
      List.iter
        (fun x ->
          Alcotest.(check (array int)) "embedding shape"
            [| 1; config.Nimble_models.Lstm.input_size |]
            (Tensor.shape x))
        xs)
    inputs

let test_sst_trees () =
  let config = Nimble_models.Tree_lstm.small_config in
  let ts = Sst.trees config 50 in
  Alcotest.(check int) "count" 50 (List.length ts);
  List.iter
    (fun t ->
      let n = Nimble_models.Tree_lstm.num_tokens t in
      Alcotest.(check bool) "plausible size" true (n >= 1 && n <= 50))
    ts;
  Alcotest.(check bool) "tokens accumulate" true (Sst.total_tokens ts > 100)

let test_sst_tree_binary_structure () =
  let config = Nimble_models.Tree_lstm.small_config in
  (* every internal node has exactly two children by construction; check
     leaf count = requested tokens *)
  let rng = Rng.create ~seed:8 in
  List.iter
    (fun tokens ->
      let t = Sst.sample_tree rng config ~tokens in
      Alcotest.(check int) "leaf count" tokens (Nimble_models.Tree_lstm.num_tokens t))
    [ 1; 2; 3; 10; 33 ]

let prop_tree_tokens_exact =
  QCheck.Test.make ~name:"sampled tree has requested leaves" ~count:50
    (QCheck.int_range 1 40) (fun tokens ->
      let rng = Rng.create ~seed:tokens in
      let t = Sst.sample_tree rng Nimble_models.Tree_lstm.small_config ~tokens in
      Nimble_models.Tree_lstm.num_tokens t = tokens)

let () =
  Alcotest.run "workloads"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "categorical" `Quick test_categorical;
        ] );
      ( "mrpc",
        [
          Alcotest.test_case "lengths" `Quick test_mrpc_lengths;
          Alcotest.test_case "input shapes" `Quick test_mrpc_inputs_shapes;
        ] );
      ( "sst",
        [
          Alcotest.test_case "trees" `Quick test_sst_trees;
          Alcotest.test_case "binary structure" `Quick test_sst_tree_binary_structure;
          QCheck_alcotest.to_alcotest prop_tree_tokens_exact;
        ] );
    ]
