(* IR tests: dims, types, expressions, traversal, ADTs, modules, ops. *)

open Nimble_tensor
open Nimble_ir

let ty_eq = Alcotest.testable Ty.pp Ty.equal

(* ---------------------------- dims ---------------------------- *)

let test_dim_basic () =
  Alcotest.(check bool) "static" true (Dim.is_static (Dim.static 4));
  Alcotest.(check bool) "any dynamic" true (Dim.is_dynamic Dim.Any);
  Alcotest.(check bool) "sym dynamic" true (Dim.is_dynamic (Dim.Sym 1));
  Alcotest.(check bool) "admits eq" true (Dim.admits (Dim.static 4) 4);
  Alcotest.(check bool) "admits neq" false (Dim.admits (Dim.static 4) 5);
  Alcotest.(check bool) "any admits" true (Dim.admits Dim.Any 17);
  Alcotest.check_raises "negative" (Invalid_argument "Dim.static: negative extent")
    (fun () -> ignore (Dim.static (-1)))

let dim_opt = Alcotest.option (Alcotest.testable Dim.pp Dim.equal)

(* the paper's broadcast rules for Any (§4.1) *)
let test_dim_broadcast_paper_rules () =
  Alcotest.check dim_opt "Any x 1 = Any" (Some Dim.Any) (Dim.broadcast Dim.Any (Dim.static 1));
  Alcotest.check dim_opt "Any x d = d" (Some (Dim.static 7)) (Dim.broadcast Dim.Any (Dim.static 7));
  Alcotest.check dim_opt "Any x Any = Any" (Some Dim.Any) (Dim.broadcast Dim.Any Dim.Any);
  Alcotest.check dim_opt "d x d = d" (Some (Dim.static 3))
    (Dim.broadcast (Dim.static 3) (Dim.static 3));
  Alcotest.check dim_opt "mismatch" None (Dim.broadcast (Dim.static 3) (Dim.static 4));
  Alcotest.check dim_opt "same sym" (Some (Dim.Sym 5)) (Dim.broadcast (Dim.Sym 5) (Dim.Sym 5))

let test_dim_arith () =
  Alcotest.(check bool) "add static" true
    (Dim.equal (Dim.add (Dim.static 2) (Dim.static 3)) (Dim.static 5));
  Alcotest.(check bool) "add any" true (Dim.equal (Dim.add Dim.Any (Dim.static 3)) Dim.Any);
  Alcotest.(check bool) "mul zero" true
    (Dim.equal (Dim.mul (Dim.static 0) Dim.Any) (Dim.static 0))

(* ---------------------------- types ---------------------------- *)

let test_ty_equal_static () =
  let a = Ty.tensor [ Dim.static 2; Dim.Any ] in
  let b = Ty.tensor [ Dim.static 2; Dim.Any ] in
  Alcotest.check ty_eq "structural equal" a b;
  Alcotest.(check bool) "static check" false (Ty.is_static a);
  Alcotest.(check bool) "static check 2" true (Ty.is_static (Ty.tensor_of_shape [| 2; 3 |]))

let test_ty_static_shape () =
  Alcotest.(check (option (array int)))
    "extract" (Some [| 2; 3 |])
    (Ty.static_shape (Ty.tensor_of_shape [| 2; 3 |]));
  Alcotest.(check (option (array int)))
    "dynamic none" None
    (Ty.static_shape (Ty.tensor [ Dim.Any ]))

(* sub-shaping: more specific usable where less specific expected (§4.1) *)
let test_subtyping () =
  let specific = Ty.tensor [ Dim.static 4; Dim.static 8 ] in
  let loose = Ty.tensor [ Dim.Any; Dim.static 8 ] in
  Alcotest.(check bool) "specific <= loose" true (Ty.subtype specific loose);
  Alcotest.(check bool) "loose <= specific fails" false (Ty.subtype loose specific);
  Alcotest.(check bool) "reflexive" true (Ty.subtype loose loose);
  (* function subtyping is contravariant in arguments *)
  let f_specific = Ty.Func ([ loose ], specific) in
  let f_loose = Ty.Func ([ specific ], loose) in
  Alcotest.(check bool) "contravariance" true (Ty.subtype f_specific f_loose)

(* ---------------------------- attrs ---------------------------- *)

let test_attrs () =
  let a =
    Attrs.empty
    |> fun a -> Attrs.set a "axis" (Attrs.Int 1)
    |> fun a -> Attrs.set a "name" (Attrs.Str "x")
    |> fun a -> Attrs.set a "dims" (Attrs.Ints [ 1; 2 ])
  in
  Alcotest.(check (option int)) "int" (Some 1) (Attrs.find_int a "axis");
  Alcotest.(check (option string)) "str" (Some "x") (Attrs.find_str a "name");
  Alcotest.(check (option (list int))) "ints" (Some [ 1; 2 ]) (Attrs.find_ints a "dims");
  Alcotest.(check (option int)) "missing" None (Attrs.find_int a "nope");
  Alcotest.(check int) "default" 7 (Attrs.get_int ~default:7 a "nope");
  (* set overrides *)
  let a = Attrs.set a "axis" (Attrs.Int 2) in
  Alcotest.(check (option int)) "override" (Some 2) (Attrs.find_int a "axis")

(* ---------------------------- expressions ---------------------------- *)

let test_free_vars () =
  let x = Expr.fresh_var "x" and y = Expr.fresh_var "y" in
  let e = Expr.op_call "add" [ Expr.Var x; Expr.Var y ] in
  Alcotest.(check (list int)) "two free" [ x.Expr.vid; y.Expr.vid ]
    (List.map (fun (v : Expr.var) -> v.Expr.vid) (Expr.free_vars e));
  (* let-binding removes the bound var *)
  let e2 = Expr.Let (x, Expr.const_scalar 1.0, e) in
  Alcotest.(check (list int)) "one free" [ y.Expr.vid ]
    (List.map (fun (v : Expr.var) -> v.Expr.vid) (Expr.free_vars e2));
  (* fn params are bound *)
  let e3 = Expr.fn [ x; y ] e in
  Alcotest.(check int) "none free" 0 (List.length (Expr.free_vars e3))

let test_substitute () =
  let x = Expr.fresh_var "x" in
  let e = Expr.op_call "relu" [ Expr.Var x ] in
  let e' = Expr.substitute [ (x.Expr.vid, Expr.const_scalar 2.0) ] e in
  Alcotest.(check int) "no free vars after subst" 0 (List.length (Expr.free_vars e'))

let test_size_and_iter () =
  let x = Expr.fresh_var "x" in
  let e = Expr.op_call "add" [ Expr.Var x; Expr.Var x ] in
  Alcotest.(check int) "size" 4 (Expr.size e);
  let count = ref 0 in
  Expr.iter (fun _ -> incr count) e;
  Alcotest.(check int) "iter count" 4 !count

let test_map_bottom_up () =
  let x = Expr.fresh_var "x" in
  let e = Expr.op_call "relu" [ Expr.op_call "tanh" [ Expr.Var x ] ] in
  (* rewrite tanh -> sigmoid *)
  let e' =
    Expr.map_bottom_up
      (function
        | Expr.Call { callee = Expr.Op "tanh"; args; attrs } ->
            Expr.Call { callee = Expr.Op "sigmoid"; args; attrs }
        | e -> e)
      e
  in
  let found = ref false in
  Expr.iter (function Expr.Op "sigmoid" -> found := true | _ -> ()) e';
  Alcotest.(check bool) "rewritten" true !found

(* ---------------------------- ADTs ---------------------------- *)

let test_adt_tags () =
  let adt = Adt.tensor_list ~elem_ty:(Ty.tensor_of_shape [| 2 |]) in
  let nil = Adt.ctor_exn adt "Nil" and cons = Adt.ctor_exn adt "Cons" in
  Alcotest.(check int) "nil tag" 0 nil.Adt.tag;
  Alcotest.(check int) "cons tag" 1 cons.Adt.tag;
  Alcotest.(check int) "cons arity" 2 (List.length cons.Adt.arg_tys);
  Alcotest.(check bool) "by tag" true
    (match Adt.ctor_by_tag adt 1 with Some c -> Adt.equal_ctor c cons | None -> false);
  Alcotest.check_raises "missing" (Invalid_argument "Adt.ctor_exn: no constructor Foo in TensorList")
    (fun () -> ignore (Adt.ctor_exn adt "Foo"))

(* ---------------------------- modules ---------------------------- *)

let test_module () =
  let m = Irmod.create () in
  let x = Expr.fresh_var ~ty:(Ty.tensor_of_shape [| 2 |]) "x" in
  Irmod.add_func m "f" (Expr.fn_def [ x ] (Expr.Var x));
  Irmod.add_func m "main" (Expr.fn_def [] (Expr.const_scalar 0.0));
  Alcotest.(check (list string)) "order" [ "f"; "main" ]
    (List.map fst (Irmod.functions m));
  Alcotest.(check bool) "find" true (Irmod.find_func m "f" <> None);
  Alcotest.(check bool) "missing" true (Irmod.find_func m "g" = None);
  (* replacing keeps order *)
  Irmod.add_func m "f" (Expr.fn_def [] (Expr.const_scalar 1.0));
  Alcotest.(check (list string)) "order stable" [ "f"; "main" ]
    (List.map fst (Irmod.functions m))

(* ---------------------------- op registry ---------------------------- *)

let test_op_registry () =
  Alcotest.(check bool) "dense exists" true (Op.exists "dense");
  Alcotest.(check bool) "bogus missing" false (Op.exists "bogus_op");
  Alcotest.(check int) "dense arity" 2 (Op.get "dense").Op.arity;
  Alcotest.(check string) "dense pattern" "out_fusable"
    (Op.pattern_to_string (Op.get "dense").Op.pattern);
  Alcotest.(check string) "add pattern" "broadcast"
    (Op.pattern_to_string (Op.get "add").Op.pattern);
  Alcotest.(check string) "softmax opaque" "opaque"
    (Op.pattern_to_string (Op.get "softmax").Op.pattern);
  Alcotest.(check bool) "registry nonempty" true (List.length (Op.all ()) > 40)

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_pretty_printing_smoke () =
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 3 ]) "x" in
  let e = Expr.Let (x, Expr.const_scalar 1.0, Expr.op_call "relu" [ Expr.Var x ]) in
  let s = Expr.to_string e in
  Alcotest.(check bool) "mentions relu" true (contains_substring ~needle:"relu" s);
  (* dynamic dims print as ? *)
  let ty_s = Ty.to_string (Ty.tensor [ Dim.Any; Dim.static 3 ]) in
  Alcotest.(check bool) "Any prints" true (contains_substring ~needle:"?" ty_s)

let () =
  ignore (Tensor.zeros [| 1 |]);
  Alcotest.run "ir"
    [
      ( "dim",
        [
          Alcotest.test_case "basics" `Quick test_dim_basic;
          Alcotest.test_case "broadcast rules (paper)" `Quick test_dim_broadcast_paper_rules;
          Alcotest.test_case "arith" `Quick test_dim_arith;
        ] );
      ( "ty",
        [
          Alcotest.test_case "equality/static" `Quick test_ty_equal_static;
          Alcotest.test_case "static shape extraction" `Quick test_ty_static_shape;
          Alcotest.test_case "sub-shaping" `Quick test_subtyping;
        ] );
      ("attrs", [ Alcotest.test_case "get/set/default" `Quick test_attrs ]);
      ( "expr",
        [
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "substitute" `Quick test_substitute;
          Alcotest.test_case "size/iter" `Quick test_size_and_iter;
          Alcotest.test_case "map bottom up" `Quick test_map_bottom_up;
          Alcotest.test_case "pretty print" `Quick test_pretty_printing_smoke;
        ] );
      ("adt", [ Alcotest.test_case "tags and lookup" `Quick test_adt_tags ]);
      ("module", [ Alcotest.test_case "functions" `Quick test_module ]);
      ("ops", [ Alcotest.test_case "registry" `Quick test_op_registry ]);
    ]
