(* Shape-function tests (paper §4.2): the three modes, runtime shape
   computation, the fusion policy predicate, and agreement between shape
   functions and actual kernel outputs. *)

open Nimble_tensor
open Nimble_ir
open Nimble_shape

let shapes_eq =
  Alcotest.(list (array int))

let run name ?(attrs = Attrs.empty) inputs = Shape_func.run name ~attrs inputs

let test_modes () =
  Alcotest.(check string) "dense" "data_independent"
    (Shape_func.mode_to_string (Shape_func.mode_of "dense"));
  Alcotest.(check string) "arange" "data_dependent"
    (Shape_func.mode_to_string (Shape_func.mode_of "arange"));
  Alcotest.(check string) "unique" "data_dependent"
    (Shape_func.mode_to_string (Shape_func.mode_of "unique"));
  Alcotest.(check string) "nms" "upper_bound"
    (Shape_func.mode_to_string (Shape_func.mode_of "nms"))

let test_fusion_policy_predicate () =
  (* ops with data-independent shape functions may consume fused inputs *)
  Alcotest.(check bool) "dense fusible" true (Shape_func.fusible_as_consumer "dense");
  Alcotest.(check bool) "add fusible" true (Shape_func.fusible_as_consumer "add");
  (* data-dependent / upper-bound may not (paper's fusion policy) *)
  Alcotest.(check bool) "arange not" false (Shape_func.fusible_as_consumer "arange");
  Alcotest.(check bool) "unique not" false (Shape_func.fusible_as_consumer "unique");
  Alcotest.(check bool) "nms not" false (Shape_func.fusible_as_consumer "nms")

let test_data_indep_funcs () =
  Alcotest.check shapes_eq "dense"
    [ [| 3; 8 |] ]
    (run "dense" [ Shape_func.shape_only [| 3; 16 |]; Shape_func.shape_only [| 8; 16 |] ]);
  Alcotest.check shapes_eq "broadcast add"
    [ [| 4; 5 |] ]
    (run "add" [ Shape_func.shape_only [| 4; 1 |]; Shape_func.shape_only [| 5 |] ]);
  Alcotest.check shapes_eq "conv"
    [ [| 1; 8; 16; 16 |] ]
    (run "conv2d"
       ~attrs:[ ("stride", Attrs.Int 2); ("padding", Attrs.Int 1) ]
       [ Shape_func.shape_only [| 1; 3; 32; 32 |]; Shape_func.shape_only [| 8; 3; 3; 3 |] ]);
  Alcotest.check shapes_eq "split"
    [ [| 2; 4 |]; [| 2; 4 |] ]
    (run "split"
       ~attrs:[ ("axis", Attrs.Int 1); ("sections", Attrs.Int 2) ]
       [ Shape_func.shape_only [| 2; 8 |] ])

let test_data_indep_rejects_residual_violation () =
  (* runtime check: dense reduction mismatch is caught by the shape func *)
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (run "dense" [ Shape_func.shape_only [| 3; 15 |]; Shape_func.shape_only [| 8; 16 |] ]);
       false
     with Shape_func.Shape_func_error _ -> true)

let test_data_dep_funcs () =
  let scalar v = Shape_func.with_data (Tensor.scalar v) in
  Alcotest.check shapes_eq "arange" [ [| 5 |] ]
    (run "arange" [ scalar 0.0; scalar 10.0; scalar 2.0 ]);
  Alcotest.check shapes_eq "arange empty" [ [| 0 |] ]
    (run "arange" [ scalar 5.0; scalar 1.0; scalar 1.0 ]);
  let t = Tensor.of_float_array [| 6 |] [| 1.; 1.; 2.; 3.; 3.; 3. |] in
  Alcotest.check shapes_eq "unique" [ [| 3 |] ] (run "unique" [ Shape_func.with_data t ])

let test_data_dep_requires_values () =
  Alcotest.(check bool) "raises without data" true
    (try
       ignore (run "arange" (List.init 3 (fun _ -> Shape_func.shape_only [||])));
       false
     with Shape_func.Shape_func_error _ -> true)

let test_upper_bound_is_bound () =
  (* nms shape function returns the bound from shapes alone *)
  Alcotest.check shapes_eq "bound" [ [| 7; 5 |] ]
    (run "nms" [ Shape_func.shape_only [| 7; 5 |] ]);
  (* and the real kernel never exceeds it *)
  let rng = Rng.create ~seed:5 in
  let boxes = Tensor.rand_uniform rng ~lo:0.0 ~hi:30.0 [| 7; 5 |] in
  let out = Ops_nn.nms boxes in
  Alcotest.(check bool) "kernel within bound" true ((Tensor.shape out).(0) <= 7)

(* Property: for data-independent ops, the shape function agrees with the
   kernel's actual output shape. *)
let agree name ?(attrs = Attrs.empty) inputs =
  let predicted = run name ~attrs (List.map Shape_func.with_data inputs) in
  let actual = Nimble_codegen.Op_eval.eval name ~attrs inputs in
  List.length predicted = List.length actual
  && List.for_all2 (fun p a -> Shape.equal p (Tensor.shape a)) predicted actual

let test_shape_func_agrees_with_kernels () =
  let rng = Rng.create ~seed:9 in
  List.iter
    (fun (name, attrs, inputs) ->
      Alcotest.(check bool) name true (agree name ~attrs inputs))
    [
      ("dense", [], [ Tensor.randn rng [| 5; 12 |]; Tensor.randn rng [| 7; 12 |] ]);
      ("add", [], [ Tensor.randn rng [| 3; 1 |]; Tensor.randn rng [| 1; 4 |] ]);
      ("tanh", [], [ Tensor.randn rng [| 2; 2 |] ]);
      ( "transpose",
        [ ("axes", Attrs.Ints [ 1; 0; 2 ]) ],
        [ Tensor.randn rng [| 2; 3; 4 |] ] );
      ( "strided_slice",
        [ ("begins", Attrs.Ints [ 1; 0 ]); ("ends", Attrs.Ints [ 3; 2 ]) ],
        [ Tensor.randn rng [| 4; 4 |] ] );
      ("sum", [ ("axis", Attrs.Int 0) ], [ Tensor.randn rng [| 3; 5 |] ]);
      ( "max_pool2d",
        [ ("window", Attrs.Int 2); ("stride", Attrs.Int 2) ],
        [ Tensor.randn rng [| 1; 2; 8; 8 |] ] );
      ("concat", [ ("axis", Attrs.Int 0) ],
        [ Tensor.randn rng [| 2; 3 |]; Tensor.randn rng [| 4; 3 |] ]);
      ("reshape", [ ("newshape", Attrs.Ints [ 6; -1 ]) ], [ Tensor.randn rng [| 3; 8 |] ]);
    ]

let prop_dense_shape_func =
  QCheck.Test.make ~name:"dense shape func = kernel shape" ~count:50
    QCheck.(triple (int_range 1 6) (int_range 1 6) (int_range 1 6))
    (fun (m, n, k) ->
      let rng = Rng.create ~seed:(m + n + k) in
      agree "dense" [ Tensor.randn rng [| m; k |]; Tensor.randn rng [| n; k |] ])

let prop_arange_shape_func =
  QCheck.Test.make ~name:"arange shape func = kernel shape" ~count:50
    QCheck.(pair (int_range 0 20) (int_range 1 4))
    (fun (stop, step) ->
      agree "arange"
        [ Tensor.scalar 0.0; Tensor.scalar (float_of_int stop); Tensor.scalar (float_of_int step) ])

let () =
  Alcotest.run "shape_func"
    [
      ( "modes",
        [
          Alcotest.test_case "classification" `Quick test_modes;
          Alcotest.test_case "fusion policy" `Quick test_fusion_policy_predicate;
        ] );
      ( "data_indep",
        [
          Alcotest.test_case "computations" `Quick test_data_indep_funcs;
          Alcotest.test_case "residual check" `Quick test_data_indep_rejects_residual_violation;
        ] );
      ( "data_dep",
        [
          Alcotest.test_case "computations" `Quick test_data_dep_funcs;
          Alcotest.test_case "requires values" `Quick test_data_dep_requires_values;
        ] );
      ("upper_bound", [ Alcotest.test_case "nms bound" `Quick test_upper_bound_is_bound ]);
      ( "agreement",
        Alcotest.test_case "shape funcs match kernels" `Quick test_shape_func_agrees_with_kernels
        :: List.map QCheck_alcotest.to_alcotest [ prop_dense_shape_func; prop_arange_shape_func ]
      );
    ]
