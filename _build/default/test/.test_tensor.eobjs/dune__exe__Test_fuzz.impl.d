test/test_fuzz.ml: Alcotest Array Attrs Dim Expr Irmod List Nimble_codegen Nimble_compiler Nimble_ir Nimble_tensor Nimble_vm Ops_matmul Ops_nn QCheck QCheck_alcotest Rng Tensor Ty
