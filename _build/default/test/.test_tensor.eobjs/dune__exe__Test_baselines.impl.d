test/test_baselines.ml: Alcotest Bert Eager Fmt Fold Graph_cf Hybrid List Lstm Nimble_baselines Nimble_codegen Nimble_models Nimble_tensor Padded QCheck QCheck_alcotest Rng Tensor Tree_lstm
