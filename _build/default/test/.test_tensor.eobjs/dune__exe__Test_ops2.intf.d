test/test_ops2.mli:
