test/test_shape.ml: Alcotest Array Attrs List Nimble_codegen Nimble_ir Nimble_shape Nimble_tensor Ops_nn QCheck QCheck_alcotest Rng Shape Shape_func Tensor
