test/test_models.ml: Alcotest Array Bert Float Fmt List Lstm Nimble_compiler Nimble_ir Nimble_models Nimble_tensor Nimble_vm Ops_reduce Rng Tensor Tree_lstm Vision
