test/test_extensions.ml: Alcotest Array Dim Expr Irmod List Nimble_codegen Nimble_compiler Nimble_ir Nimble_tensor Nimble_vm Ops_elem Ops_matmul Rng Shape Tensor Ty
