test/test_inline.ml: Adt Alcotest Expr Hashtbl Inline Irmod List Nimble_compiler Nimble_ir Nimble_models Nimble_passes Nimble_tensor Nimble_vm Ops_elem Rng Shape Tensor Ty
