test/test_perfsim.ml: Alcotest Estimator Float Framework List Nimble_codegen Nimble_perfsim Platform QCheck QCheck_alcotest
