test/test_vm.ml: Alcotest Array Dtype Exe Interp Isa List Nimble_device Nimble_tensor Nimble_vm Obj Ops_elem Profiler Tensor
