test/test_typing.ml: Adt Alcotest Attrs Dim Dim_solver Dtype Expr Fmt Infer Irmod Nimble_ir Nimble_tensor Nimble_typing Relations Tensor Ty
