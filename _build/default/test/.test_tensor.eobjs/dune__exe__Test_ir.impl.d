test/test_ir.ml: Adt Alcotest Attrs Dim Expr Irmod List Nimble_ir Nimble_tensor Op String Tensor Ty
