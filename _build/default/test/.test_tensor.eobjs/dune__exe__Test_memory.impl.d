test/test_memory.ml: Adt Alcotest Dim Dtype Expr Fmt Irmod List Nimble_compiler Nimble_device Nimble_ir Nimble_models Nimble_tensor Nimble_vm Rng Tensor Ty
