test/test_workloads.ml: Alcotest Array Float List Mrpc Nimble_models Nimble_tensor Nimble_workloads QCheck QCheck_alcotest Rng Sst Tensor
