test/test_tensor.ml: Alcotest Array Dtype Float Fmt List Nimble_tensor Ops_elem Ops_matmul Ops_nn Ops_reduce Ops_shape QCheck QCheck_alcotest Rng Shape Tensor
