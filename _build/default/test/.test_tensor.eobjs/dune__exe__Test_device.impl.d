test/test_device.ml: Alcotest Device Nimble_device Pool
