test/test_decoder.mli:
