test/test_decoder.ml: Alcotest Array Decoder Float Fmt Gru List Nimble_compiler Nimble_ir Nimble_models Nimble_tensor Nimble_vm Ops_reduce QCheck QCheck_alcotest Seq2seq Tensor
