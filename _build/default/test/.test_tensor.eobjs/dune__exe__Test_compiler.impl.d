test/test_compiler.ml: Adt Alcotest Array Attrs Dim Expr Fmt Irmod List Nimble_compiler Nimble_ir Nimble_tensor Nimble_vm Ops_elem Ops_matmul Rng Shape Tensor Ty
