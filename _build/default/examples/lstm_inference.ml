(** LSTM inference with dynamic control flow (paper §6, Table 1 workload).

    Compiles an LSTM once and feeds it sentences of different lengths — the
    sequence is a [TensorList] ADT, so the recursion over it executes as VM
    control flow (Match/Invoke instructions), not host-language loops.
    Cross-checks against the reference implementation and against the
    PyTorch-like eager baseline, then reports per-length host latency.

    Run with: [dune exec examples/lstm_inference.exe] *)

open Nimble_tensor
open Nimble_models
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp
module Obj = Nimble_vm.Obj
module Adt = Nimble_ir.Adt

let list_obj xs =
  let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
  let adt = Adt.tensor_list ~elem_ty in
  let nil = Adt.ctor_exn adt "Nil" and cons = Adt.ctor_exn adt "Cons" in
  List.fold_right
    (fun x acc -> Obj.Adt { tag = cons.Adt.tag; fields = [| Obj.tensor x; acc |] })
    xs
    (Obj.Adt { tag = nil.Adt.tag; fields = [||] })

let () =
  let config = { Lstm.input_size = 64; hidden_size = 96; num_layers = 2 } in
  let w = Lstm.init_weights config in
  Fmt.pr "LSTM: input %d, hidden %d, %d layers — compiled once, dynamic length@."
    config.Lstm.input_size config.Lstm.hidden_size config.Lstm.num_layers;
  let exe = Nimble.compile (Lstm.ir_module w) in
  let vm = Nimble.vm exe in
  Fmt.pr "executable: %d instructions, %d constants@."
    (Nimble_vm.Exe.instruction_count exe)
    (Array.length exe.Nimble_vm.Exe.constants);
  List.iter
    (fun len ->
      let xs = Lstm.random_sequence config ~len in
      let t0 = Unix.gettimeofday () in
      let out = Obj.to_tensor (Interp.invoke vm [ list_obj xs ]) in
      let vm_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
      (* reference + eager baseline agree with the VM *)
      let reference = Lstm.reference w xs in
      let eager = Nimble_baselines.Eager.lstm w xs in
      assert (Tensor.approx_equal ~atol:1e-3 ~rtol:1e-3 reference out);
      assert (Tensor.approx_equal ~atol:1e-3 ~rtol:1e-3 reference eager);
      Fmt.pr "length %3d: out %a  host %.2f ms  (reference and eager agree)@." len
        Shape.pp (Tensor.shape out) vm_ms)
    [ 4; 11; 23; 40 ]
