(** Detection post-processing with data-dependent output shapes (paper §4.2).

    The pipeline runs entirely inside the compiled executable:

    - [nms] keeps a data-dependent subset of boxes (its shape function is
      {e upper-bound}: the exact survivor count is only known after the
      kernel runs);
    - the kept scores are thresholded and rescaled — elementwise ops over an
      [Any]-rows tensor;
    - [arange] manufactures per-box indices whose extent is data-dependent.

    None of this is expressible in a static-shape compiler; the VM's shape
    functions size every intermediate at runtime.

    Run with: [dune exec examples/detection_postprocess.exe] *)

open Nimble_tensor
open Nimble_ir
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp

let build_module () =
  (* boxes : (Any, 5) rows of (score, x1, y1, x2, y2) *)
  let boxes = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 5 ]) "boxes" in
  let kept = Expr.fresh_var "kept" in
  let scores = Expr.fresh_var "scores" in
  let body =
    Expr.Let
      ( kept,
        Expr.op_call ~attrs:[ ("iou", Attrs.Float 0.45) ] "nms" [ Expr.Var boxes ],
        Expr.Let
          ( scores,
            (* first column of the survivors: (Any, 1) *)
            Expr.op_call
              ~attrs:
                [ ("begins", Attrs.Ints [ 0; 0 ]); ("ends", Attrs.Ints [ 1000000; 1 ]) ]
              "strided_slice" [ Expr.Var kept ],
            (* calibrated confidence = sqrt(score), still (Any, 1) *)
            Expr.op_call "sqrt" [ Expr.Var scores ] ) )
  in
  Irmod.of_main (Expr.fn_def [ boxes ] body)

let random_boxes rng n =
  Tensor.init [| n; 5 |] (fun idx ->
      match idx.(1) with
      | 0 -> Rng.uniform rng ~lo:0.05 ~hi:1.0 (* score *)
      | 1 | 2 -> Rng.uniform rng ~lo:0.0 ~hi:80.0 (* x1, y1 *)
      | _ -> Rng.uniform rng ~lo:20.0 ~hi:100.0 (* x2, y2 *))

let () =
  let exe = Nimble.compile (build_module ()) in
  let vm = Nimble.vm exe in
  Fmt.pr "Detection post-processing: nms (upper-bound shape) + dynamic slicing@.";
  let rng = Rng.create ~seed:2718 in
  List.iter
    (fun n ->
      let input = random_boxes rng n in
      let out = Interp.run_tensors vm [ input ] in
      let survivors = (Tensor.shape out).(0) in
      Fmt.pr "  %3d candidate boxes -> %3d kept (output %a)@." n survivors Shape.pp
        (Tensor.shape out);
      assert (survivors <= n))
    [ 4; 16; 64; 128 ];
  (* arange: index vector whose extent is a runtime value *)
  let s = Expr.fresh_var ~ty:(Ty.scalar ()) "stop" in
  let arange_mod =
    Irmod.of_main
      (Expr.fn_def [ s ]
         (Expr.op_call "arange" [ Expr.const_scalar 0.0; Expr.Var s; Expr.const_scalar 1.0 ]))
  in
  let vm2 = Nimble.vm (Nimble.compile arange_mod) in
  List.iter
    (fun stop ->
      let out = Interp.run_tensors vm2 [ Tensor.scalar (float_of_int stop) ] in
      Fmt.pr "  arange(0, %2d) -> %a@." stop Shape.pp (Tensor.shape out))
    [ 3; 11 ];
  Fmt.pr "every intermediate above was sized by a runtime shape function@."
