examples/quickstart.mli:
