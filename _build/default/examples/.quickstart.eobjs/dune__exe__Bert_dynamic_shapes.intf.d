examples/bert_dynamic_shapes.mli:
