examples/lstm_inference.mli:
