examples/detection_postprocess.mli:
