examples/lstm_inference.ml: Array Fmt List Lstm Nimble_baselines Nimble_compiler Nimble_ir Nimble_models Nimble_tensor Nimble_vm Shape Tensor Unix
