examples/treelstm_sentiment.mli:
