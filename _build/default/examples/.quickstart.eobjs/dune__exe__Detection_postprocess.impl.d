examples/detection_postprocess.ml: Array Attrs Dim Expr Fmt Irmod List Nimble_compiler Nimble_ir Nimble_tensor Nimble_vm Rng Shape Tensor Ty
