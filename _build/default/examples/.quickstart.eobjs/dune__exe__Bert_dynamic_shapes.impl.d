examples/bert_dynamic_shapes.ml: Array Bert Filename Fmt List Nimble_compiler Nimble_models Nimble_tensor Nimble_vm Shape Sys Tensor Unix
