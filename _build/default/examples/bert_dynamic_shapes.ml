(** BERT with dynamic sequence lengths (paper §6, Table 3 workload), plus
    executable serialization.

    Compiles a small BERT whose sequence dimension is [Any], saves the
    platform-independent bytecode to disk, reloads it, relinks the kernels,
    and serves inputs of several lengths — the deployment flow the paper's
    VM design enables.

    Run with: [dune exec examples/bert_dynamic_shapes.exe] *)

open Nimble_tensor
open Nimble_models
module Nimble = Nimble_compiler.Nimble
module Serialize = Nimble_vm.Serialize

let () =
  let w = Bert.init_weights Bert.small_config in
  let m = Bert.ir_module w in
  let exe = Nimble.compile m in
  Fmt.pr "BERT (%d layers, hidden %d, %d heads), sequence dimension = Any@."
    w.Bert.config.Bert.num_layers w.Bert.config.Bert.hidden_size
    w.Bert.config.Bert.num_heads;

  (* Serialize the executable: bytecode + constants + kernel names. *)
  let path = Filename.temp_file "bert" ".nimble" in
  Serialize.save_file exe path;
  let bytes = (Unix.stat path).Unix.st_size in
  Fmt.pr "saved executable: %s (%d bytes, %d instructions)@." path bytes
    (Nimble_vm.Exe.instruction_count exe);

  (* Load it back and relink the platform-dependent kernels by name. *)
  let loaded = Serialize.load_file path in
  List.iter (Nimble_vm.Exe.link loaded) (Nimble_compiler.Emitter.link_table m);
  assert (Nimble_vm.Exe.linked loaded);
  Fmt.pr "reloaded and relinked %d packed functions@."
    (Array.length loaded.Nimble_vm.Exe.packed_names);

  let vm = Nimble.vm loaded in
  List.iter
    (fun len ->
      let x = Bert.embed w (Bert.random_ids w ~len) in
      let t0 = Unix.gettimeofday () in
      let out = Nimble_vm.Interp.run_tensors vm [ x ] in
      let ms = 1e3 *. (Unix.gettimeofday () -. t0) in
      let expected = Bert.reference w x in
      assert (Tensor.approx_equal ~atol:1e-3 ~rtol:1e-3 expected out);
      Fmt.pr "seq %3d -> %a  host %.2f ms  (matches reference)@." len Shape.pp
        (Tensor.shape out) ms)
    [ 5; 12; 27; 48 ];
  Sys.remove path
