(** Quickstart: build a small dynamic-shape model in the IR, compile it with
    Nimble, inspect the executable, and run it on inputs of different sizes
    with one compiled artifact.

    Run with: [dune exec examples/quickstart.exe] *)

open Nimble_tensor
open Nimble_ir
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp

let () =
  (* A model over a dynamically-sized batch of 16-feature rows:
       f(x) = tanh(dense(x, w) + b)
     The first dimension of [x] is Any — unknown until runtime. *)
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 16 ]) "x" in
  let rng = Rng.create ~seed:42 in
  let w = Tensor.randn ~scale:0.2 rng [| 8; 16 |] in
  let b = Tensor.randn ~scale:0.2 rng [| 8 |] in
  let body =
    Expr.op_call "tanh"
      [
        Expr.op_call "bias_add"
          [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ]; Expr.Const b ];
      ]
  in
  let m = Irmod.of_main (Expr.fn_def [ x ] body) in
  Fmt.pr "=== IR module ===@.%a@." Irmod.pp m;

  (* Compile: type inference with Any, fusion, manifest alloc, device
     placement, memory planning, bytecode emission. *)
  let exe, report = Nimble.compile_with_report m in
  Fmt.pr "=== compile report ===@.%a@.@." Nimble.pp_report report;
  Fmt.pr "=== disassembly ===@.%a@." Nimble_vm.Exe.disassemble exe;

  (* One executable serves every batch size. *)
  let vm = Nimble.vm exe in
  List.iter
    (fun rows ->
      let input = Tensor.randn rng [| rows; 16 |] in
      let out = Interp.run_tensors vm [ input ] in
      Fmt.pr "batch %2d -> output %a, first element %+.4f@." rows Shape.pp
        (Tensor.shape out) (Tensor.get_float out 0))
    [ 1; 3; 8; 17 ];

  (* The profiler shows where time went. *)
  Fmt.pr "@.=== profiler ===@.%a@." Nimble_vm.Profiler.pp (Interp.profiler vm)
