(** Tree-LSTM sentiment classification over dynamic data structures
    (paper §6, Table 2 workload).

    Each input is a binary constituency tree (an ADT); the compiled
    executable recursively evaluates whatever shape arrives — the paper's
    "dynamic data structure" case that most frameworks cannot compile.
    Also demonstrates TF-Fold-style dynamic batching producing identical
    results.

    Run with: [dune exec examples/treelstm_sentiment.exe] *)

open Nimble_tensor
open Nimble_models
module Nimble = Nimble_compiler.Nimble
module Obj = Nimble_vm.Obj
module Adt = Nimble_ir.Adt

let rec tree_obj (leaf : Adt.ctor) (node : Adt.ctor) = function
  | Tree_lstm.Leaf x -> Obj.Adt { tag = leaf.Adt.tag; fields = [| Obj.tensor x |] }
  | Tree_lstm.Node (l, r) ->
      Obj.Adt
        { tag = node.Adt.tag; fields = [| tree_obj leaf node l; tree_obj leaf node r |] }

let rec depth = function
  | Tree_lstm.Leaf _ -> 1
  | Tree_lstm.Node (l, r) -> 1 + Stdlib.max (depth l) (depth r)

let () =
  let config = { Tree_lstm.input_size = 48; hidden_size = 64; num_classes = 5 } in
  let w = Tree_lstm.init_weights config in
  let leaf, node = Tree_lstm.ctors w in
  let exe = Nimble.compile (Tree_lstm.ir_module w) in
  let vm = Nimble.vm exe in
  Fmt.pr "Tree-LSTM sentiment (5 classes), hidden %d — one executable, any tree@."
    config.Tree_lstm.hidden_size;
  let trees = Nimble_workloads.Sst.trees config 5 in
  List.iteri
    (fun i t ->
      let probs =
        Obj.to_tensor (Nimble_vm.Interp.invoke vm [ tree_obj leaf node t ])
      in
      (* the Fold-style dynamically-batched execution matches exactly *)
      let folded = Nimble_baselines.Fold.tree_lstm w t in
      assert (Tensor.approx_equal ~atol:1e-3 ~rtol:1e-3 probs folded);
      let pred = Tensor.item_int (Ops_reduce.argmax ~axis:1 probs) in
      Fmt.pr "tree %d: %2d tokens, depth %2d -> class %d  probs %a@." i
        (Tree_lstm.num_tokens t) (depth t) pred Tensor.pp probs)
    trees;
  Fmt.pr "(Fold-style dynamic batching produced identical outputs)@."
