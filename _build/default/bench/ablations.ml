(** Ablations for the design choices called out in DESIGN.md:

    - operator fusion on/off (primitive count, kernel launches, latency);
    - heterogeneous device placement: unification + upload caching vs naive
      per-use copies (transfer count and bytes on the simulated GPU);
    - the pad-to-max static reduction vs native dynamism (wasted compute);
    - symbolic-kernel tuning (template search + cross-shape evaluation). *)

open Nimble_models
module Nimble = Nimble_compiler.Nimble
module Estimator = Nimble_perfsim.Estimator
module Platform = Nimble_perfsim.Platform
module Framework = Nimble_perfsim.Framework
module Pool = Nimble_device.Pool
module Profiler = Nimble_vm.Profiler

let bert_config =
  { Bert.num_layers = 2; hidden_size = 128; num_heads = 4; ffn_size = 512; vocab_size = 2000 }

let fusion_ablation () =
  let w = Bert.init_weights bert_config in
  let x = Bert.embed w (Bert.random_ids w ~len:32) in
  let report fuse =
    let exe, rep =
      Nimble.compile_with_report
        ~options:{ Nimble.default_options with Nimble.fuse }
        (Bert.ir_module w)
    in
    let vm = Nimble.vm exe in
    let _, events =
      Estimator.record (fun () ->
          Nimble_vm.Obj.to_tensor (Nimble_runner.invoke vm [ Nimble_vm.Obj.tensor x ]))
    in
    let b =
      Estimator.price ~platform:Platform.intel_cpu ~framework:Framework.Nimble
        ~launch_per_op:false events
    in
    let launches =
      Option.value ~default:0 (List.assoc_opt "vm_kernel_launch" b.Estimator.events)
    in
    (rep.Nimble.primitives, launches, Estimator.total Platform.intel_cpu Framework.Nimble b)
  in
  let p_on, l_on, t_on = report true in
  let p_off, l_off, t_off = report false in
  Fmt.pr "@.Ablation: operator fusion (BERT %dx%d, seq 32)@." bert_config.Bert.num_layers
    bert_config.Bert.hidden_size;
  Fmt.pr "  fusion on : %3d primitives, %4d kernel launches, est. %.2f ms (Intel)@."
    p_on l_on (1e3 *. t_on);
  Fmt.pr "  fusion off: %3d primitives, %4d kernel launches, est. %.2f ms (Intel)@."
    p_off l_off (1e3 *. t_off)

let placement_ablation () =
  (* a dynamic dense chain on the simulated GPU target *)
  let w = Bert.init_weights bert_config in
  let x = Bert.embed w (Bert.random_ids w ~len:24) in
  let transfers cache_copies =
    let m = Bert.ir_module w in
    let m, _ = Nimble.optimize ~options:{ Nimble.default_options with Nimble.target_device = 1; device_placement = false } m in
    ignore (Nimble_passes.Device_place.run ~cache_copies m);
    let m = Nimble_passes.Dce.run m in
    let exe = Nimble_compiler.Emitter.emit_module m in
    let vm = Nimble.vm exe in
    ignore (Nimble_vm.Interp.invoke vm [ Nimble_vm.Obj.tensor x ]);
    let p = Nimble_vm.Interp.profiler vm in
    let bytes =
      Hashtbl.fold
        (fun _ (s : Pool.stats) acc -> acc + s.Pool.transfer_bytes_in)
        p.Profiler.pool.Pool.per_device 0
    in
    (Pool.total_transfers p.Profiler.pool, bytes)
  in
  let t_unif, b_unif = transfers true in
  let t_naive, b_naive = transfers false in
  (* static comparison: shape functions on the host (the paper's rule) vs
     misplaced on the device — count the copies the analysis must insert *)
  let copies_with_sf_dev dev =
    let m = Bert.ir_module w in
    let m, _ =
      Nimble.optimize
        ~options:
          { Nimble.default_options with Nimble.target_device = 1; device_placement = false }
        m
    in
    (Nimble_passes.Device_place.run ~shape_func_device:dev m)
      .Nimble_passes.Device_place.copies_inserted
  in
  let host_copies = copies_with_sf_dev 0 in
  let dev_copies = copies_with_sf_dev 1 in
  Fmt.pr "@.Ablation: device placement on simulated GPU (BERT %dx%d, seq 24)@."
    bert_config.Bert.num_layers bert_config.Bert.hidden_size;
  Fmt.pr "  unification + upload caching: %4d transfers, %8d bytes@." t_unif b_unif;
  Fmt.pr "  naive per-use copies:         %4d transfers, %8d bytes@." t_naive b_naive;
  Fmt.pr "  device copies in bytecode: shape funcs on host %d vs misplaced on device %d@."
    host_copies dev_copies

let padding_ablation () =
  let config = { Lstm.small_config with Lstm.hidden_size = 64 } in
  let w = Lstm.init_weights config in
  let corpus = Nimble_workloads.Mrpc.lstm_inputs config 6 in
  let lengths = List.map List.length corpus in
  let max_len = 64 in
  let run_est f =
    let _, events = Estimator.record f in
    Estimator.total Platform.intel_cpu Framework.Nimble
      (Estimator.price ~platform:Platform.intel_cpu ~framework:Framework.Nimble
         ~launch_per_op:true events)
  in
  (* both paths run the same instrumented static executor; the only
     difference is the padding *)
  let t_dynamic =
    run_est (fun () ->
        List.map
          (fun xs -> Nimble_baselines.Padded.lstm ~max_len:(List.length xs) w xs)
          corpus)
  in
  let t_padded =
    run_est (fun () -> List.map (Nimble_baselines.Padded.lstm ~max_len w) corpus)
  in
  Fmt.pr "@.Ablation: pad-to-max static reduction vs native dynamism (LSTM)@.";
  Fmt.pr "  native dynamic shapes: est. %.2f ms for the corpus@." (1e3 *. t_dynamic);
  Fmt.pr "  padded to %d:          est. %.2f ms (%.0f%% compute wasted on padding)@."
    max_len (1e3 *. t_padded)
    (100.0 *. Nimble_baselines.Padded.waste ~max_len lengths)

let tuner_demo () =
  let result = Nimble_codegen.Tuner.tune ~n:256 ~k:256 () in
  Fmt.pr "@.Symbolic kernel tuning (dense n=256 k=256, symbolic rows)@.";
  Fmt.pr "  tuned on static stand-in m=%d; top-%d configs cross-evaluated on %d extents@."
    result.Nimble_codegen.Tuner.tuned_on
    (List.length result.Nimble_codegen.Tuner.top_k)
    (List.length result.Nimble_codegen.Tuner.cross_eval
    / Stdlib.max 1 (List.length result.Nimble_codegen.Tuner.top_k));
  Fmt.pr "  selected row tile: %d@." result.Nimble_codegen.Tuner.best.Nimble_codegen.Tuner.tile_m

let run () =
  fusion_ablation ();
  placement_ablation ();
  padding_ablation ();
  tuner_demo ()
