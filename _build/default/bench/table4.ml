(** Table 4: overhead of handling dynamism — BERT latency under TVM-style
    static compilation vs Nimble's dynamic VM, with Nimble's time split into
    kernel invocation vs other instructions.

    This is a *real self-measurement*: the static executor (direct closure
    calls over a statically-shaped compile) and the VM (dynamic compile with
    shape functions, dynamic allocation, instruction dispatch) both run on
    the host, and the VM profiler separates kernel time from the rest. The
    three platform rows price the same traces with the cost models. *)

open Nimble_models
module Estimator = Nimble_perfsim.Estimator
module Platform = Nimble_perfsim.Platform
module Framework = Nimble_perfsim.Framework
module Nimble = Nimble_compiler.Nimble
module Profiler = Nimble_vm.Profiler

(* BERT-base is too heavy for repeated pure-OCaml wall-clock runs; this
   mid-size configuration keeps the instruction mix identical. *)
let config =
  { Bert.num_layers = 4; hidden_size = 256; num_heads = 4; ffn_size = 1024; vocab_size = 5000 }

let seq_len = 128

let run () =
  let w = Bert.init_weights config in
  let x = Bert.embed w (Bert.random_ids w ~len:seq_len) in
  (* TVM-style static compile + graph executor *)
  let static_plan = Nimble.compile_static (Bert.ir_module_static w ~seq_len) in
  let run_static () = Nimble_compiler.Static_exec.run static_plan [ x ] in
  (* Nimble dynamic compile + VM *)
  let exe = Nimble.compile (Bert.ir_module w) in
  let vm = Nimble.vm exe in
  let run_vm () = Nimble_vm.Obj.to_tensor (Nimble_runner.invoke vm [ Nimble_vm.Obj.tensor x ]) in
  (* --- real host measurement ---------------------------------------- *)
  let t_static = Bench_util.wall ~repeats:3 run_static in
  Profiler.reset (Nimble_vm.Interp.profiler vm);
  let t_vm = Bench_util.wall ~repeats:3 run_vm in
  let prof = Nimble_vm.Interp.profiler vm in
  let runs = 4.0 (* warmup + 3 *) in
  let kernel_host = prof.Profiler.kernel_seconds /. runs in
  let other_host = Profiler.other_seconds prof /. runs in
  (* numerics agree *)
  let a = run_static () and b = run_vm () in
  if not (Nimble_tensor.Tensor.approx_equal ~atol:1e-2 ~rtol:1e-2 a b) then
    failwith "Table4: static and VM outputs disagree";
  (* --- per-platform pricing of the recorded traces ------------------- *)
  let _, static_events = Estimator.record (fun () -> run_static ()) in
  let _, vm_events = Estimator.record (fun () -> run_vm ()) in
  let rows =
    List.map
      (fun platform ->
        let sb =
          Estimator.price ~platform ~framework:Framework.Nimble ~launch_per_op:true
            static_events
        in
        let vb =
          Estimator.price ~platform ~framework:Framework.Nimble ~launch_per_op:false
            vm_events
        in
        let tvm_ms = 1e3 *. Estimator.total platform Framework.Nimble sb in
        let nimble_ms = 1e3 *. Estimator.total platform Framework.Nimble vb in
        let kernel_ms = 1e3 *. vb.Estimator.kernel_s in
        let others_ms = nimble_ms -. kernel_ms in
        ( platform.Platform.name,
          [ Some tvm_ms; Some nimble_ms; Some kernel_ms; Some others_ms ] ))
      Platform.all
  in
  Bench_util.print_table
    ~title:
      (Fmt.str
         "Table 4: BERT (seq len %d, %d layers x %d hidden) — TVM static vs Nimble"
         seq_len config.Bert.num_layers config.Bert.hidden_size)
    ~unit:"ms"
    ~columns:[ "TVM lat."; "Nimble lat."; "kernel lat."; "others" ]
    rows;
  Fmt.pr
    "host measured: static executor %.2f ms | Nimble VM %.2f ms (kernels %.2f ms, \
     other instructions %.2f ms, overhead %.1f%%)@."
    (1e3 *. t_static) (1e3 *. t_vm) (1e3 *. kernel_host) (1e3 *. other_host)
    (100.0 *. (t_vm -. t_static) /. t_static)
