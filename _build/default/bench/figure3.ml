(** Figure 3: relative latency of symbolic codegen vs static codegen for
    three dense operators from BERT, varying the number of residue-dispatch
    kernels (dispatch/8, /4, /2, no dispatch).

    This is a *real measurement*: the static, residue-specialized and
    boundary-guarded kernels are distinct loop nests executed on the host;
    the guarded kernel's inner-loop checks are exactly the cost the paper's
    symbolic codegen eliminates through dispatch. Latency is averaged over
    an MRPC-like mix of sequence lengths covering all residues mod 8. *)

open Nimble_tensor
module Dk = Nimble_codegen.Dense_kernels
module Dispatch = Nimble_codegen.Dispatch

(* The three dense shapes of a BERT-base layer (n, k). *)
let dense_ops =
  [ ("Dense1 (768x768)", 768, 768); ("Dense2 (3072x768)", 3072, 768); ("Dense3 (768x3072)", 768, 3072) ]

(* Sequence lengths covering all eight residues mod 8, so dispatch/8, /4,
   /2 hit their specialized kernels for 8/8, 4/8 and 2/8 of the inputs. *)
let lengths = [ 16; 9; 26; 35; 12; 21; 30; 23 ]

let time_variant ~n ~k (dense : Tensor.t -> Tensor.t -> Tensor.t) =
  let rng = Rng.create ~seed:99 in
  let total = ref 0.0 in
  List.iter
    (fun m ->
      let a = Tensor.randn rng [| m; k |] in
      let w = Tensor.randn rng [| n; k |] in
      ignore (dense a w);
      let t0 = Unix.gettimeofday () in
      ignore (dense a w);
      total := !total +. (Unix.gettimeofday () -. t0))
    lengths;
  !total

let variants () =
  let dispatch k = Dispatch.create ~num_kernels:k () in
  [
    ("static", fun a w -> Dk.residue_kernel ~residue:((Tensor.shape a).(0) mod Dk.tile) a w);
    ("dispatch/8", Dispatch.run (dispatch 8));
    ("dispatch/4", Dispatch.run (dispatch 4));
    ("dispatch/2", Dispatch.run (dispatch 2));
    ("no dispatch", fun a w -> Dk.guarded_kernel a w);
  ]

let run () =
  Fmt.pr "@.Figure 3: relative latency of symbolic vs static dense codegen@.";
  Fmt.pr "(100%% = static-shape kernel; measured on host, lengths %a)@."
    Fmt.(list ~sep:(any ",") int)
    lengths;
  let columns = List.map fst (variants ()) in
  let rows =
    List.map
      (fun (name, n, k) ->
        let times = List.map (fun (_, f) -> time_variant ~n ~k f) (variants ()) in
        let base = List.hd times in
        (name, List.map (fun t -> Some (100.0 *. t /. base)) times))
      dense_ops
  in
  Bench_util.print_table ~title:"relative latency (%)" ~unit:"op" ~columns rows
