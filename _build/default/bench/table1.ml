(** Table 1: LSTM inference latency (µs/token), 1- and 2-layer models,
    {Nimble, PyTorch, MXNet, TensorFlow} x {Intel CPU, Nvidia GPU, ARM CPU}.

    Every system executes the same MRPC-like corpus for real (outputs are
    cross-checked); latency comes from pricing each system's recorded trace
    under the three platform models. *)

open Nimble_tensor
open Nimble_models
module Estimator = Nimble_perfsim.Estimator
module Platform = Nimble_perfsim.Platform
module Framework = Nimble_perfsim.Framework
module Nimble = Nimble_compiler.Nimble
module Obj = Nimble_vm.Obj
module Adt = Nimble_ir.Adt

let corpus_size = 4

let lstm_input_obj xs =
  let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
  let adt = Adt.tensor_list ~elem_ty in
  let nil = Adt.ctor_exn adt "Nil" and cons = Adt.ctor_exn adt "Cons" in
  List.fold_right
    (fun x acc -> Obj.Adt { tag = cons.Adt.tag; fields = [| Obj.tensor x; acc |] })
    xs
    (Obj.Adt { tag = nil.Adt.tag; fields = [||] })

type system = {
  sys_name : string;
  framework : Framework.t;
  launch_per_op : bool;
  run : Tensor.t list list -> Tensor.t list;  (** corpus -> outputs *)
}

let systems (w : Lstm.weights) =
  let exe = Nimble.compile (Lstm.ir_module w) in
  let vm = Nimble.vm exe in
  [
    {
      sys_name = "Nimble";
      framework = Framework.Nimble;
      launch_per_op = false;
      run =
        (fun corpus ->
          List.map
            (fun xs -> Obj.to_tensor (Nimble_runner.invoke vm [ lstm_input_obj xs ]))
            corpus);
    };
    {
      sys_name = "PyTorch";
      framework = Framework.Pytorch;
      launch_per_op = true;
      run = (fun corpus -> List.map (Nimble_baselines.Eager.lstm w) corpus);
    };
    {
      sys_name = "MXNet";
      framework = Framework.Mxnet;
      launch_per_op = true;
      run =
        (fun corpus ->
          Nimble_baselines.Hybrid.reset_cache ();
          List.map (Nimble_baselines.Hybrid.lstm w) corpus);
    };
    {
      sys_name = "TensorFlow";
      framework = Framework.Tensorflow;
      launch_per_op = true;
      run = (fun corpus -> List.map (Nimble_baselines.Graph_cf.lstm w) corpus);
    };
  ]

let run_config ~num_layers =
  let config = { Lstm.default_config with Lstm.num_layers } in
  let w = Lstm.init_weights config in
  let corpus = Nimble_workloads.Mrpc.lstm_inputs config corpus_size in
  let tokens = List.fold_left (fun acc xs -> acc + List.length xs) 0 corpus in
  let reference = List.map (Lstm.reference w) corpus in
  let rows =
    List.map
      (fun sys ->
        let outputs, events = Estimator.record (fun () -> sys.run corpus) in
        (* cross-check numerics against the reference implementation *)
        List.iter2
          (fun a b ->
            if not (Tensor.approx_equal ~atol:1e-3 ~rtol:1e-3 a b) then
              Fmt.failwith "Table1: %s output mismatch" sys.sys_name)
          reference outputs;
        let cells =
          List.map
            (fun platform ->
              let b =
                Estimator.price ~platform ~framework:sys.framework
                  ~launch_per_op:sys.launch_per_op events
              in
              Some
                (Bench_util.us (Estimator.total platform sys.framework b)
                /. float_of_int tokens))
            Platform.all
        in
        (sys.sys_name, cells))
      (systems w)
  in
  (rows, tokens)

let run () =
  let columns = List.map (fun p -> p.Platform.name) Platform.all in
  List.iter
    (fun num_layers ->
      let rows, tokens = run_config ~num_layers in
      Bench_util.print_table
        ~title:
          (Fmt.str
             "Table 1 (%d layer%s): LSTM inference latency, MRPC-like lengths (%d \
              tokens)"
             num_layers
             (if num_layers > 1 then "s" else "")
             tokens)
        ~unit:"us/token" ~columns rows)
    [ 1; 2 ]
