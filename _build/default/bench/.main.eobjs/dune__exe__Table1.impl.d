bench/table1.ml: Bench_util Fmt List Lstm Nimble_baselines Nimble_compiler Nimble_ir Nimble_models Nimble_perfsim Nimble_runner Nimble_tensor Nimble_vm Nimble_workloads Tensor
