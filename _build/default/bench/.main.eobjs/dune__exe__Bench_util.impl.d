bench/bench_util.ml: Analyze Bechamel Benchmark Float Fmt Hashtbl List Staged Stdlib String Test Time Toolkit Unix
