bench/memplan.ml: Bench_util Bert Float Fmt List Nimble_compiler Nimble_device Nimble_models Nimble_vm Stdlib Vision
