bench/figure3.ml: Array Bench_util Fmt List Nimble_codegen Nimble_tensor Rng Tensor Unix
