bench/table3.ml: Bench_util Bert Fmt List Nimble_baselines Nimble_compiler Nimble_models Nimble_perfsim Nimble_runner Nimble_tensor Nimble_vm Tensor
