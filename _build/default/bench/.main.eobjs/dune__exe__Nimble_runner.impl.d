bench/nimble_runner.ml: Hashtbl Nimble_codegen Nimble_device Nimble_vm
