bench/main.mli:
