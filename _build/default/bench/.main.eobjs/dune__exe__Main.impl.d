bench/main.ml: Ablations Array Bench_util Figure3 Fmt List Memplan Nimble_codegen Nimble_compiler Nimble_device Nimble_ir Nimble_tensor Nimble_vm String Sys Table1 Table2 Table3 Table4 Unix
