(** Table 2: Tree-LSTM inference latency (µs/token) on SST-like trees,
    {Nimble, PyTorch, TF Fold} x {Intel CPU, ARM CPU}.

    The paper omits the GPU column (tree control flow cannot saturate a
    GPU) and TF Fold on ARM (it does not build there); this harness prints
    the same cells. *)

open Nimble_tensor
open Nimble_models
module Estimator = Nimble_perfsim.Estimator
module Platform = Nimble_perfsim.Platform
module Framework = Nimble_perfsim.Framework
module Nimble = Nimble_compiler.Nimble
module Obj = Nimble_vm.Obj
module Adt = Nimble_ir.Adt

let corpus_size = 4

let rec tree_obj (leaf : Adt.ctor) (node : Adt.ctor) = function
  | Tree_lstm.Leaf x -> Obj.Adt { tag = leaf.Adt.tag; fields = [| Obj.tensor x |] }
  | Tree_lstm.Node (l, r) ->
      Obj.Adt
        { tag = node.Adt.tag; fields = [| tree_obj leaf node l; tree_obj leaf node r |] }

let run () =
  let w = Tree_lstm.init_weights Tree_lstm.default_config in
  let leaf, node = Tree_lstm.ctors w in
  let corpus = Nimble_workloads.Sst.trees w.Tree_lstm.config corpus_size in
  let tokens = Nimble_workloads.Sst.total_tokens corpus in
  let reference = List.map (Tree_lstm.reference w) corpus in
  let exe = Nimble.compile (Tree_lstm.ir_module w) in
  let vm = Nimble.vm exe in
  let platforms = [ Platform.intel_cpu; Platform.arm_cpu ] in
  let check name outputs =
    List.iter2
      (fun a b ->
        if not (Tensor.approx_equal ~atol:1e-3 ~rtol:1e-3 a b) then
          Fmt.failwith "Table2: %s output mismatch" name)
      reference outputs
  in
  let row name framework ~launch_per_op ~on_arm run =
    let outputs, events = Estimator.record run in
    check name outputs;
    let cells =
      List.map
        (fun platform ->
          if platform.Platform.name = "ARM CPU" && not on_arm then None
          else
            let b = Estimator.price ~platform ~framework ~launch_per_op events in
            Some
              (Bench_util.us (Estimator.total platform framework b)
              /. float_of_int tokens))
        platforms
    in
    (name, cells)
  in
  let rows =
    [
      row "Nimble" Framework.Nimble ~launch_per_op:false ~on_arm:true (fun () ->
          List.map
            (fun t -> Obj.to_tensor (Nimble_runner.invoke vm [ tree_obj leaf node t ]))
            corpus);
      row "PyTorch" Framework.Pytorch ~launch_per_op:true ~on_arm:true (fun () ->
          List.map (Nimble_baselines.Eager.tree_lstm w) corpus);
      (* TF Fold does not build on ARM (paper, Table 2 note) *)
      row "TF Fold" Framework.Tf_fold ~launch_per_op:true ~on_arm:false (fun () ->
          List.map (Nimble_baselines.Fold.tree_lstm w) corpus);
    ]
  in
  Bench_util.print_table
    ~title:
      (Fmt.str "Table 2: Tree-LSTM inference latency, SST-like trees (%d tokens)" tokens)
    ~unit:"us/token"
    ~columns:(List.map (fun p -> p.Platform.name) platforms)
    rows
