(** Table 3: BERT inference latency (µs/token) with variable sequence
    lengths, {Nimble, PyTorch, MXNet, TensorFlow} x {Intel, Nvidia, ARM}.

    Uses the BERT-base architecture (12 x 768 x 12). Real execution of
    full-base matmuls in pure OCaml is expensive, so the corpus is a small
    number of short MRPC-like sentences; µs/token is dominated by the
    per-token dense work and is stable in length. *)

open Nimble_tensor
open Nimble_models
module Estimator = Nimble_perfsim.Estimator
module Platform = Nimble_perfsim.Platform
module Framework = Nimble_perfsim.Framework
module Nimble = Nimble_compiler.Nimble

let lengths = [ 16; 24 ]

let run () =
  let w = Bert.init_weights Bert.base_config in
  let corpus = List.map (fun len -> Bert.embed w (Bert.random_ids w ~len)) lengths in
  let tokens = List.fold_left ( + ) 0 lengths in
  let reference = List.map (Bert.reference w) corpus in
  let exe = Nimble.compile (Bert.ir_module w) in
  let vm = Nimble.vm exe in
  let check name outputs =
    List.iter2
      (fun a b ->
        if not (Tensor.approx_equal ~atol:1e-2 ~rtol:1e-2 a b) then
          Fmt.failwith "Table3: %s output mismatch" name)
      reference outputs
  in
  let row name framework ~launch_per_op run =
    let outputs, events = Estimator.record run in
    check name outputs;
    let cells =
      List.map
        (fun platform ->
          let b = Estimator.price ~platform ~framework ~launch_per_op events in
          Some
            (Bench_util.us (Estimator.total platform framework b) /. float_of_int tokens))
        Platform.all
    in
    (name, cells)
  in
  let rows =
    [
      row "Nimble" Framework.Nimble ~launch_per_op:false (fun () ->
          List.map
            (fun x ->
              Nimble_vm.Obj.to_tensor
                (Nimble_runner.invoke vm [ Nimble_vm.Obj.tensor x ]))
            corpus);
      row "PyTorch" Framework.Pytorch ~launch_per_op:true (fun () ->
          List.map (Nimble_baselines.Eager.bert w) corpus);
      row "MXNet" Framework.Mxnet ~launch_per_op:true (fun () ->
          Nimble_baselines.Hybrid.reset_cache ();
          List.map (Nimble_baselines.Hybrid.bert w) corpus);
      row "TensorFlow" Framework.Tensorflow ~launch_per_op:true (fun () ->
          List.map (Nimble_baselines.Graph_cf.bert w) corpus);
    ]
  in
  Bench_util.print_table
    ~title:
      (Fmt.str "Table 3: BERT-base inference latency, variable lengths %a (%d tokens)"
         Fmt.(list ~sep:(any ",") int)
         lengths tokens)
    ~unit:"us/token"
    ~columns:(List.map (fun p -> p.Platform.name) Platform.all)
    rows
