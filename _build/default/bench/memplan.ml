(** Memory-planning study (paper §6.3): allocation-count reduction and
    allocation-latency reduction on BERT, and memory footprint on the
    vision models.

    Real self-measurements: the planner's effect is read off the compile
    reports and off the VM profiler's allocation timers with planning
    enabled vs disabled. *)

open Nimble_models
module Nimble = Nimble_compiler.Nimble
module Profiler = Nimble_vm.Profiler
module Pool = Nimble_device.Pool

let bert_config =
  { Bert.num_layers = 4; hidden_size = 128; num_heads = 4; ffn_size = 512; vocab_size = 2000 }

let opts ~plan = { Nimble.default_options with Nimble.memory_plan = plan }

let run_vm_alloc_stats ~pooling exe input =
  let vm = Nimble_vm.Interp.create ~pooling exe in
  (* warmup, then measure one inference *)
  ignore (Nimble_vm.Interp.invoke vm [ input ]);
  Profiler.reset (Nimble_vm.Interp.profiler vm);
  ignore (Nimble_vm.Interp.invoke vm [ input ]);
  let p = Nimble_vm.Interp.profiler vm in
  (Pool.total_allocs p.Profiler.pool, p.Profiler.alloc_seconds)

let bert_section () =
  let w = Bert.init_weights bert_config in
  let x = Bert.embed w (Bert.random_ids w ~len:48) in
  let input = Nimble_vm.Obj.tensor x in
  let exe_off, rep_off = Nimble.compile_with_report ~options:(opts ~plan:false) (Bert.ir_module w) in
  let exe_on, rep_on = Nimble.compile_with_report ~options:(opts ~plan:true) (Bert.ir_module w) in
  let allocs_off, lat_off = run_vm_alloc_stats ~pooling:false exe_off input in
  let allocs_on, lat_on = run_vm_alloc_stats ~pooling:true exe_on input in
  Fmt.pr "@.Memory planning on BERT (%d layers x %d hidden, seq 48):@."
    bert_config.Bert.num_layers bert_config.Bert.hidden_size;
  ignore rep_off;
  Fmt.pr "  static storage allocations (compile-time): %d -> %d (%.0f%% reduction)@."
    rep_on.Nimble.storages_before_planning rep_on.Nimble.storages_after_planning
    (100.0
    *. (1.0
       -. float_of_int rep_on.Nimble.storages_after_planning
          /. float_of_int (Stdlib.max 1 rep_on.Nimble.storages_before_planning)));
  Fmt.pr "  runtime buffer allocations per inference:  %d -> %d (%.0f%% reduction)@."
    allocs_off allocs_on
    (100.0 *. (1.0 -. (float_of_int allocs_on /. float_of_int (Stdlib.max 1 allocs_off))));
  Fmt.pr "  allocation latency per inference:          %.3f ms -> %.3f ms (%.0f%% reduction)@."
    (1e3 *. lat_off) (1e3 *. lat_on)
    (100.0 *. (1.0 -. (lat_on /. Float.max 1e-9 lat_off)));
  Fmt.pr "  kills inserted: %d@." rep_on.Nimble.kills_inserted

let rep_ratio (rep : Nimble.report) =
  float_of_int rep.Nimble.arena_bytes
  /. float_of_int (Stdlib.max 1 rep.Nimble.unplanned_bytes)

let vision_section () =
  Fmt.pr "@.Memory footprint on vision models (planned arena vs un-coalesced sum):@.";
  let rows =
    List.map
      (fun (name, build) ->
        let _, rep = Nimble.compile_with_report ~options:(opts ~plan:true) (build ()) in
        let arena = float_of_int rep.Nimble.arena_bytes /. 1024.0 in
        let unplanned = float_of_int rep.Nimble.unplanned_bytes /. 1024.0 in
        let ratio = 100.0 *. rep_ratio rep in
        (name, [ Some arena; Some unplanned; Some ratio ]))
      Vision.all
  in
  Bench_util.print_table ~title:"vision model footprint" ~unit:"model"
    ~columns:[ "arena KiB"; "sum KiB"; "arena/sum %" ]
    rows

let run () =
  bert_section ();
  vision_section ()
