(** Operator type relations (paper §4.1).

    A relation maps argument types (which may contain [Any]/[Sym] dims) and
    call attributes to the output type, unifying dimensions through the
    {!Dim_solver} and recording residual runtime checks where static
    reasoning is impossible (gradual typing). *)

open Nimble_tensor
open Nimble_ir

exception Type_error of string

let err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type ctx = { solver : Dim_solver.t }

type rel = ctx -> Ty.t list -> Attrs.t -> Ty.t

let registry : (string, rel) Hashtbl.t = Hashtbl.create 64

let register name rel =
  if not (Op.exists name) then
    Fmt.invalid_arg "Relations.register: unknown op %s" name;
  Hashtbl.replace registry name rel

let find name = Hashtbl.find_opt registry name

let get name =
  match find name with
  | Some r -> r
  | None -> err "no type relation registered for operator %s" name

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let as_tensor op = function
  | Ty.Tensor { dims; dtype } -> (dims, dtype)
  | ty -> err "%s: expected a tensor argument, got %a" op Ty.pp ty

let arg op n args =
  match List.nth_opt args n with
  | Some a -> a
  | None -> err "%s: missing argument %d" op n

let tensor_arg op n args = as_tensor op (arg op n args)

let expect_rank op r dims =
  if Array.length dims <> r then
    err "%s: expected rank %d, got rank %d" op r (Array.length dims)

(** Broadcast two dim vectors following the paper's Any rules. *)
let broadcast_dims ctx op (a : Dim.t array) (b : Dim.t array) : Dim.t array =
  let ra = Array.length a and rb = Array.length b in
  let r = max ra rb in
  Array.init r (fun i ->
      let da = if i < r - ra then Dim.Static 1 else a.(i - (r - ra)) in
      let db = if i < r - rb then Dim.Static 1 else b.(i - (r - rb)) in
      let da = Dim_solver.resolve ctx.solver da in
      let db = Dim_solver.resolve ctx.solver db in
      if Dim_solver.same ctx.solver da db then da
      else
        match (da, db) with
        | (Dim.Sym _ | Dim.Any), (Dim.Sym _ | Dim.Any) ->
            (* the identical-Any analysis (§4.1): two dynamic dims meeting in
               a broadcast almost always denote the same extent; unify their
               classes (gradual typing covers the residual 1-vs-d case) *)
            Dim_solver.unify ~context:op ctx.solver da db
        | _ -> (
            match Dim.broadcast da db with
            | Some d -> d
            | None ->
                err "%s: cannot broadcast %a with %a" op Dim.pp da Dim.pp db))

(* ------------------------------------------------------------------ *)
(* Relation definitions                                                *)
(* ------------------------------------------------------------------ *)

let identity_rel name : rel =
 fun _ctx args _attrs ->
  let dims, dtype = tensor_arg name 0 args in
  Ty.Tensor { dims; dtype }

let broadcast_rel ?out_dtype name : rel =
 fun ctx args _attrs ->
  let da, ta = tensor_arg name 0 args in
  let db, tb = tensor_arg name 1 args in
  let dims = broadcast_dims ctx name da db in
  let dtype = match out_dtype with Some dt -> dt | None -> Dtype.promote ta tb in
  Ty.Tensor { dims; dtype }

let () =
  List.iter
    (fun name -> register name (broadcast_rel name))
    [ "add"; "subtract"; "multiply"; "divide"; "maximum"; "minimum"; "power" ];
  List.iter
    (fun name -> register name (broadcast_rel ~out_dtype:Dtype.U8 name))
    [
      "equal"; "less"; "greater"; "less_equal"; "greater_equal"; "not_equal";
      "logical_and"; "logical_or";
    ];
  List.iter
    (fun name -> register name (identity_rel name))
    [
      "negative"; "abs"; "exp"; "log"; "sqrt"; "tanh"; "sigmoid"; "relu";
      "gelu"; "erf"; "softmax"; "log_softmax"; "device_copy";
    ];
  register "logical_not" (fun _ctx args _attrs ->
      let dims, _ = as_tensor "logical_not" (arg "logical_not" 0 args) in
      Ty.Tensor { dims; dtype = Dtype.U8 });
  register "where" (fun ctx args _attrs ->
      let dc, _ = tensor_arg "where(cond)" 0 args in
      let da, ta = tensor_arg "where(a)" 1 args in
      let db, tb = tensor_arg "where(b)" 2 args in
      let d1 = broadcast_dims ctx "where" dc da in
      let dims = broadcast_dims ctx "where" d1 db in
      Ty.Tensor { dims; dtype = Dtype.promote ta tb })

let () =
  register "cast" (fun _ctx args attrs ->
      let dims, _ = tensor_arg "cast" 0 args in
      let dt =
        match Attrs.find_str attrs "dtype" with
        | Some s -> (
            match Dtype.of_string s with
            | Some dt -> dt
            | None -> err "cast: bad dtype %s" s)
        | None -> err "cast: missing dtype attr"
      in
      Ty.Tensor { dims; dtype = dt })

let () =
  register "bias_add" (fun ctx args _attrs ->
      let dd, td = tensor_arg "bias_add" 0 args in
      let db, _ = tensor_arg "bias_add" 1 args in
      expect_rank "bias_add(bias)" 1 db;
      if Array.length dd = 0 then err "bias_add: data must have rank >= 1";
      let last = dd.(Array.length dd - 1) in
      ignore (Dim_solver.unify ~context:"bias_add" ctx.solver last db.(0));
      Ty.Tensor { dims = dd; dtype = td })

let () =
  register "dense" (fun ctx args _attrs ->
      let dd, _ = tensor_arg "dense" 0 args in
      let dw, _ = tensor_arg "dense" 1 args in
      expect_rank "dense(data)" 2 dd;
      expect_rank "dense(weight)" 2 dw;
      ignore (Dim_solver.unify ~context:"dense reduction" ctx.solver dd.(1) dw.(1));
      Ty.Tensor { dims = [| dd.(0); dw.(0) |]; dtype = Dtype.F32 });
  register "matmul" (fun ctx args _attrs ->
      let da, _ = tensor_arg "matmul" 0 args in
      let db, _ = tensor_arg "matmul" 1 args in
      expect_rank "matmul(a)" 2 da;
      expect_rank "matmul(b)" 2 db;
      ignore (Dim_solver.unify ~context:"matmul reduction" ctx.solver da.(1) db.(0));
      Ty.Tensor { dims = [| da.(0); db.(1) |]; dtype = Dtype.F32 });
  register "batch_matmul" (fun ctx args _attrs ->
      let da, _ = tensor_arg "batch_matmul" 0 args in
      let db, _ = tensor_arg "batch_matmul" 1 args in
      expect_rank "batch_matmul(a)" 3 da;
      expect_rank "batch_matmul(b)" 3 db;
      let b = Dim_solver.unify ~context:"batch_matmul batch" ctx.solver da.(0) db.(0) in
      ignore (Dim_solver.unify ~context:"batch_matmul reduction" ctx.solver da.(2) db.(1));
      Ty.Tensor { dims = [| b; da.(1); db.(2) |]; dtype = Dtype.F32 })

let conv_out_dim (d : Dim.t) ~kernel ~stride ~padding : Dim.t =
  match d with
  | Dim.Static n -> Dim.Static (((n + (2 * padding) - kernel) / stride) + 1)
  | Dim.Any | Dim.Sym _ -> Dim.Any

let () =
  register "conv2d" (fun ctx args attrs ->
      let dd, _ = tensor_arg "conv2d" 0 args in
      let dw, _ = tensor_arg "conv2d" 1 args in
      expect_rank "conv2d(data)" 4 dd;
      expect_rank "conv2d(weight)" 4 dw;
      let stride = Attrs.get_int ~default:1 attrs "stride" in
      let padding = Attrs.get_int ~default:0 attrs "padding" in
      ignore (Dim_solver.unify ~context:"conv2d channels" ctx.solver dd.(1) dw.(1));
      let kh, kw =
        match (dw.(2), dw.(3)) with
        | Dim.Static kh, Dim.Static kw -> (kh, kw)
        | _ -> err "conv2d: kernel spatial dims must be static"
      in
      let oh = conv_out_dim dd.(2) ~kernel:kh ~stride ~padding in
      let ow = conv_out_dim dd.(3) ~kernel:kw ~stride ~padding in
      Ty.Tensor { dims = [| dd.(0); dw.(0); oh; ow |]; dtype = Dtype.F32 })

let pool_rel name : rel =
 fun _ctx args attrs ->
  let dd, dt = tensor_arg name 0 args in
  expect_rank name 4 dd;
  let window = Attrs.get_int attrs "window" in
  let stride = Attrs.get_int ~default:2 attrs "stride" in
  let out d =
    match d with
    | Dim.Static n -> Dim.Static (((n - window) / stride) + 1)
    | Dim.Any | Dim.Sym _ -> Dim.Any
  in
  Ty.Tensor { dims = [| dd.(0); dd.(1); out dd.(2); out dd.(3) |]; dtype = dt }

let () =
  register "max_pool2d" (pool_rel "max_pool2d");
  register "avg_pool2d" (pool_rel "avg_pool2d");
  register "global_avg_pool2d" (fun _ctx args _attrs ->
      let dd, dt = tensor_arg "global_avg_pool2d" 0 args in
      expect_rank "global_avg_pool2d" 4 dd;
      Ty.Tensor { dims = [| dd.(0); dd.(1) |]; dtype = dt })

let () =
  register "layer_norm" (fun ctx args _attrs ->
      let dd, dt = tensor_arg "layer_norm" 0 args in
      let dg, _ = tensor_arg "layer_norm(gamma)" 1 args in
      let db, _ = tensor_arg "layer_norm(beta)" 2 args in
      expect_rank "layer_norm(gamma)" 1 dg;
      expect_rank "layer_norm(beta)" 1 db;
      if Array.length dd = 0 then err "layer_norm: data must have rank >= 1";
      let last = dd.(Array.length dd - 1) in
      ignore (Dim_solver.unify ~context:"layer_norm gamma" ctx.solver last dg.(0));
      ignore (Dim_solver.unify ~context:"layer_norm beta" ctx.solver last db.(0));
      Ty.Tensor { dims = dd; dtype = dt });
  register "batch_norm" (fun ctx args _attrs ->
      let dd, dt = tensor_arg "batch_norm" 0 args in
      expect_rank "batch_norm" 4 dd;
      List.iteri
        (fun i name ->
          let dp, _ = tensor_arg ("batch_norm(" ^ name ^ ")") (i + 1) args in
          expect_rank ("batch_norm(" ^ name ^ ")") 1 dp;
          ignore (Dim_solver.unify ~context:"batch_norm param" ctx.solver dd.(1) dp.(0)))
        [ "gamma"; "beta"; "mean"; "var" ];
      Ty.Tensor { dims = dd; dtype = dt })

let () =
  register "reshape" (fun _ctx args attrs ->
      let dims, dt = tensor_arg "reshape" 0 args in
      let target = Attrs.get_ints attrs "newshape" in
      let all_static = Array.for_all Dim.is_static dims in
      if all_static && not (List.mem (-1) target) then begin
        (* fully static: validate element counts now *)
        let total =
          Array.fold_left
            (fun acc d -> match d with Dim.Static n -> acc * n | _ -> acc)
            1 dims
        in
        let target_total = List.fold_left ( * ) 1 target in
        if total <> target_total then
          err "reshape: element count %d -> %d" total target_total
      end;
      let out_dims =
        List.map
          (fun d ->
            if d = -1 then
              if all_static then
                let total =
                  Array.fold_left
                    (fun acc dd -> match dd with Dim.Static n -> acc * n | _ -> acc)
                    1 dims
                in
                let known =
                  List.fold_left (fun acc x -> if x = -1 then acc else acc * x) 1 target
                in
                if known > 0 && total mod known = 0 then Dim.Static (total / known)
                else err "reshape: cannot infer -1"
              else Dim.Any
            else Dim.static d)
          target
      in
      Ty.Tensor { dims = Array.of_list out_dims; dtype = dt })

let () =
  register "transpose" (fun _ctx args attrs ->
      let dims, dt = tensor_arg "transpose" 0 args in
      let r = Array.length dims in
      let axes =
        match Attrs.find_ints attrs "axes" with
        | Some a -> Array.of_list a
        | None -> Array.init r (fun i -> r - 1 - i)
      in
      if Array.length axes <> r then err "transpose: axes rank mismatch";
      Ty.Tensor { dims = Array.map (fun ax -> dims.(Shape.normalize_axis ~rank:r ax)) axes; dtype = dt });
  register "expand_dims" (fun _ctx args attrs ->
      let dims, dt = tensor_arg "expand_dims" 0 args in
      let axis = Attrs.get_int attrs "axis" in
      let r = Array.length dims in
      let a = if axis < 0 then axis + r + 1 else axis in
      if a < 0 || a > r then err "expand_dims: bad axis %d" axis;
      let out =
        Array.init (r + 1) (fun i ->
            if i < a then dims.(i) else if i = a then Dim.Static 1 else dims.(i - 1))
      in
      Ty.Tensor { dims = out; dtype = dt });
  register "squeeze" (fun _ctx args attrs ->
      let dims, dt = tensor_arg "squeeze" 0 args in
      let axis = Shape.normalize_axis ~rank:(Array.length dims) (Attrs.get_int attrs "axis") in
      (match dims.(axis) with
      | Dim.Static 1 -> ()
      | Dim.Static n -> err "squeeze: axis %d has extent %d" axis n
      | Dim.Any | Dim.Sym _ -> () (* residual: checked at runtime *));
      let out =
        Array.init (Array.length dims - 1) (fun i -> if i < axis then dims.(i) else dims.(i + 1))
      in
      Ty.Tensor { dims = out; dtype = dt })

let () =
  register "concat" (fun ctx args attrs ->
      (match args with [] -> err "concat: no arguments" | _ -> ());
      let axis = Attrs.get_int attrs "axis" in
      let first_dims, dt = tensor_arg "concat" 0 args in
      let r = Array.length first_dims in
      let axis = Shape.normalize_axis ~rank:r axis in
      let out = Array.copy first_dims in
      List.iteri
        (fun i ty ->
          if i > 0 then begin
            let dims, _ = as_tensor "concat" ty in
            if Array.length dims <> r then err "concat: rank mismatch";
            Array.iteri
              (fun j d ->
                if j = axis then out.(j) <- Dim.add out.(j) d
                else out.(j) <- Dim_solver.unify ~context:"concat" ctx.solver out.(j) d)
              dims
          end)
        args;
      Ty.Tensor { dims = out; dtype = dt });
  register "split" (fun _ctx args attrs ->
      let dims, dt = tensor_arg "split" 0 args in
      let axis = Shape.normalize_axis ~rank:(Array.length dims) (Attrs.get_int attrs "axis") in
      let sections = Attrs.get_int attrs "sections" in
      if sections <= 0 then err "split: sections must be positive";
      let part =
        match dims.(axis) with
        | Dim.Static n ->
            if n mod sections <> 0 then err "split: %d not divisible by %d" n sections;
            Dim.Static (n / sections)
        | Dim.Any | Dim.Sym _ -> Dim.Any
      in
      let piece = Array.mapi (fun i d -> if i = axis then part else d) dims in
      Ty.Tuple (List.init sections (fun _ -> Ty.Tensor { dims = piece; dtype = dt })));
  register "strided_slice" (fun _ctx args attrs ->
      let dims, dt = tensor_arg "strided_slice" 0 args in
      let begins = Array.of_list (Attrs.get_ints attrs "begins") in
      let ends = Array.of_list (Attrs.get_ints attrs "ends") in
      let r = Array.length dims in
      if Array.length begins <> r || Array.length ends <> r then
        err "strided_slice: begins/ends rank mismatch";
      let out =
        Array.mapi
          (fun i d ->
            match d with
            | Dim.Static n ->
                let norm v = if v < 0 then v + n else v in
                let lo = Stdlib.max 0 (Stdlib.min (norm begins.(i)) n) in
                let hi = Stdlib.max lo (Stdlib.min (norm ends.(i)) n) in
                Dim.Static (hi - lo)
            | Dim.Any | Dim.Sym _ ->
                if begins.(i) >= 0 && ends.(i) >= begins.(i) then
                  (* window fully specified: extent known even for Any input
                     modulo clamping; be conservative *)
                  Dim.Any
                else Dim.Any)
          dims
      in
      Ty.Tensor { dims = out; dtype = dt });
  register "take" (fun _ctx args attrs ->
      let dd, dt = tensor_arg "take" 0 args in
      let di, it = tensor_arg "take(indices)" 1 args in
      if not (Dtype.is_int it) then err "take: indices must be integer";
      let axis = Shape.normalize_axis ~rank:(Array.length dd) (Attrs.get_int ~default:0 attrs "axis") in
      let out =
        Array.concat
          [ Array.sub dd 0 axis; di; Array.sub dd (axis + 1) (Array.length dd - axis - 1) ]
      in
      Ty.Tensor { dims = out; dtype = dt });
  register "tile" (fun _ctx args attrs ->
      let dims, dt = tensor_arg "tile" 0 args in
      let reps = Array.of_list (Attrs.get_ints attrs "reps") in
      if Array.length reps <> Array.length dims then err "tile: reps rank mismatch";
      let out = Array.mapi (fun i d -> Dim.mul d (Dim.Static reps.(i))) dims in
      Ty.Tensor { dims = out; dtype = dt });
  register "embedding" (fun _ctx args _attrs ->
      let dt_dims, dt = tensor_arg "embedding" 0 args in
      let di, it = tensor_arg "embedding(ids)" 1 args in
      if not (Dtype.is_int it) then err "embedding: ids must be integer";
      expect_rank "embedding(table)" 2 dt_dims;
      Ty.Tensor { dims = Array.append di [| dt_dims.(1) |]; dtype = dt })

let reduce_rel ?(out_dtype : Dtype.t option) name : rel =
 fun _ctx args attrs ->
  let dims, dt = tensor_arg name 0 args in
  let dt = match out_dtype with Some d -> d | None -> dt in
  match Attrs.find_int attrs "axis" with
  | None -> Ty.Tensor { dims = [||]; dtype = dt }
  | Some axis ->
      let axis = Shape.normalize_axis ~rank:(Array.length dims) axis in
      let keepdims = Attrs.get_bool attrs "keepdims" in
      let out =
        if keepdims then Array.mapi (fun i d -> if i = axis then Dim.Static 1 else d) dims
        else
          Array.init (Array.length dims - 1) (fun i ->
              if i < axis then dims.(i) else dims.(i + 1))
      in
      Ty.Tensor { dims = out; dtype = dt }

let () =
  register "sum" (reduce_rel "sum");
  register "max" (reduce_rel "max");
  register "min" (reduce_rel "min");
  register "mean" (reduce_rel "mean");
  register "argmax" (reduce_rel ~out_dtype:Dtype.I64 "argmax")

(* Data-dependent output shapes: the type system can only say Any (§4.1). *)
let () =
  register "arange" (fun _ctx args attrs ->
      List.iteri
        (fun i ty ->
          let dims, _ = as_tensor "arange" ty in
          if Array.length dims <> 0 then err "arange: argument %d must be scalar" i)
        args;
      let dt =
        match Attrs.find_str attrs "dtype" with
        | Some s -> Option.value ~default:Dtype.F32 (Dtype.of_string s)
        | None -> Dtype.F32
      in
      Ty.Tensor { dims = [| Dim.Any |]; dtype = dt });
  register "unique" (fun _ctx args _attrs ->
      let dims, dt = tensor_arg "unique" 0 args in
      expect_rank "unique" 1 dims;
      Ty.Tensor { dims = [| Dim.Any |]; dtype = dt });
  register "nms" (fun ctx args _attrs ->
      let dims, dt = tensor_arg "nms" 0 args in
      expect_rank "nms" 2 dims;
      ignore (Dim_solver.unify ~context:"nms box width" ctx.solver dims.(1) (Dim.Static 5));
      Ty.Tensor { dims = [| Dim.Any; Dim.Static 5 |]; dtype = dt })

(* Dynamism/memory dialect. *)
let () =
  register "shape_of" (fun _ctx args _attrs ->
      let dims, _ = tensor_arg "shape_of" 0 args in
      Ty.Tensor { dims = [| Dim.Static (Array.length dims) |]; dtype = Dtype.I64 });
  register "reshape_tensor" (fun _ctx args _attrs ->
      let _, dt = tensor_arg "reshape_tensor" 0 args in
      let sdims, st = tensor_arg "reshape_tensor(shape)" 1 args in
      if not (Dtype.is_int st) then err "reshape_tensor: shape must be integer";
      expect_rank "reshape_tensor(shape)" 1 sdims;
      let rank =
        match sdims.(0) with
        | Dim.Static r -> r
        | Dim.Any | Dim.Sym _ -> err "reshape_tensor: output rank must be static"
      in
      Ty.Tensor { dims = Array.make rank Dim.Any; dtype = dt });
  register "memory.alloc_storage" (fun _ctx _args _attrs -> Ty.Storage);
  register "memory.alloc_tensor" (fun _ctx _args attrs ->
      let dt =
        match Attrs.find_str attrs "dtype" with
        | Some s -> Option.value ~default:Dtype.F32 (Dtype.of_string s)
        | None -> Dtype.F32
      in
      match Attrs.find_ints attrs "const_shape" with
      | Some shape -> Ty.Tensor { dims = Array.of_list (List.map Dim.static shape); dtype = dt }
      | None ->
          let rank = Attrs.get_int ~default:1 attrs "rank" in
          Ty.Tensor { dims = Array.make rank Dim.Any; dtype = dt });
  register "memory.invoke_mut" (fun _ctx _args _attrs -> Ty.unit);
  register "memory.kill" (fun _ctx _args _attrs -> Ty.unit);
  register "memory.invoke_shape_func" (fun _ctx _args _attrs ->
      (* destination-passing: outputs are pre-allocated shape tensors *)
      Ty.unit)
