lib/typing/infer.ml: Adt Array Dim Dim_solver Dtype Expr Fmt Hashtbl Irmod List Nimble_ir Nimble_tensor Op Relations String Tensor Ty
