lib/typing/dim_solver.ml: Array Dim Fmt Hashtbl List Nimble_ir Ty
