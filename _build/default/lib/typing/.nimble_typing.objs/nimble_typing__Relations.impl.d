lib/typing/relations.ml: Array Attrs Dim Dim_solver Dtype Fmt Hashtbl List Nimble_ir Nimble_tensor Op Option Shape Stdlib Ty
