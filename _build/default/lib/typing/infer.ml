(** Type inference and checking for Nimble IR modules (paper §4.1).

    Walks every function, assigning a type to every variable. [Any] dims in
    parameter annotations become fresh symbolic classes; relations unify
    classes across the program (the sub-shaping / identical-[Any] analysis);
    static mismatches are compile-time errors; dynamic-vs-static conflicts
    become residual runtime checks carried by the solver. *)

open Nimble_tensor
open Nimble_ir

exception Type_error = Relations.Type_error

let err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type result = {
  solver : Dim_solver.t;
  residual_checks : int;
      (** dynamic-dim checks deferred to runtime (gradual typing) *)
}

type env = { mutable vars : (int * Ty.t) list; globals : (string, Ty.t) Hashtbl.t }

let lookup env (v : Expr.var) =
  match List.assoc_opt v.vid env.vars with
  | Some ty -> ty
  | None -> (
      match v.vty with
      | Some ty -> ty
      | None -> err "unbound variable %%%s#%d" v.vname v.vid)

let bind env (v : Expr.var) ty =
  v.vty <- Some ty;
  env.vars <- (v.vid, ty) :: env.vars

(** Join of two types at a control-flow merge: dims that are not provably
    equal become [Any] (the paper's contamination behaviour, limited by
    sub-shaping where the solver knows better). *)
let rec join solver a b =
  match (a, b) with
  | Ty.Tensor x, Ty.Tensor y ->
      if not (Dtype.equal x.dtype y.dtype) then
        err "branch dtype mismatch: %a vs %a" Ty.pp a Ty.pp b;
      if Array.length x.dims <> Array.length y.dims then
        err "branch rank mismatch: %a vs %a" Ty.pp a Ty.pp b;
      let dims =
        Array.map2
          (fun da db ->
            let da = Dim_solver.resolve solver da in
            let db = Dim_solver.resolve solver db in
            if Dim_solver.same solver da db || Dim.equal da db then da else Dim.Any)
          x.dims y.dims
      in
      Ty.Tensor { dims; dtype = x.dtype }
  | Ty.Tuple xs, Ty.Tuple ys when List.length xs = List.length ys ->
      Ty.Tuple (List.map2 (join solver) xs ys)
  | Ty.Adt x, Ty.Adt y when String.equal x y -> a
  | Ty.Storage, Ty.Storage -> a
  | Ty.Func _, Ty.Func _ when Ty.equal a b -> a
  | _, _ -> err "branch type mismatch: %a vs %a" Ty.pp a Ty.pp b

(** Check an argument against a parameter type, unifying dims. *)
let rec coerce solver ~what arg_ty param_ty =
  match (arg_ty, param_ty) with
  | Ty.Tensor x, Ty.Tensor y ->
      if not (Dtype.equal x.dtype y.dtype) then
        err "%s: dtype mismatch %a vs %a" what Ty.pp arg_ty Ty.pp param_ty;
      if Array.length x.dims <> Array.length y.dims then
        err "%s: rank mismatch %a vs %a" what Ty.pp arg_ty Ty.pp param_ty;
      Array.iter2
        (fun da db -> ignore (Dim_solver.unify ~context:what solver da db))
        x.dims y.dims
  | Ty.Tuple xs, Ty.Tuple ys when List.length xs = List.length ys ->
      List.iter2 (coerce solver ~what) xs ys
  | Ty.Adt x, Ty.Adt y when String.equal x y -> ()
  | Ty.Storage, Ty.Storage -> ()
  | Ty.Func _, Ty.Func _ when Ty.equal arg_ty param_ty -> ()
  | _, _ -> err "%s: type mismatch %a vs %a" what Ty.pp arg_ty Ty.pp param_ty

let is_condition_ty = function
  | Ty.Tensor { dims = [||]; _ } -> true
  | _ -> false

let rec infer_expr solver env (e : Expr.t) : Ty.t =
  match e with
  | Expr.Var v -> lookup env v
  | Expr.Global g -> (
      match Hashtbl.find_opt env.globals g with
      | Some ty -> ty
      | None -> err "unknown global @%s" g)
  | Expr.Op name -> err "bare operator %s outside a call" name
  | Expr.Ctor c -> Ty.Func (c.Adt.arg_tys, Ty.Adt c.Adt.adt_name)
  | Expr.Const t -> Ty.tensor_of_shape ~dtype:(Tensor.dtype t) (Tensor.shape t)
  | Expr.Tuple es -> Ty.Tuple (List.map (infer_expr solver env) es)
  | Expr.Proj (e1, i) -> (
      match infer_expr solver env e1 with
      | Ty.Tuple ts ->
          if i < 0 || i >= List.length ts then err "tuple index %d out of range" i;
          List.nth ts i
      | ty -> err "projection from non-tuple %a" Ty.pp ty)
  | Expr.Call { callee = Expr.Op name; args; attrs } ->
      let def = Op.get name in
      if def.Op.arity >= 0 && List.length args <> def.Op.arity then
        err "%s: expected %d arguments, got %d" name def.Op.arity (List.length args);
      let arg_tys = List.map (infer_expr solver env) args in
      (Relations.get name) { Relations.solver } arg_tys attrs
  | Expr.Call { callee = Expr.Ctor c; args; _ } ->
      let arg_tys = List.map (infer_expr solver env) args in
      if List.length arg_tys <> List.length c.Adt.arg_tys then
        err "constructor %s: arity mismatch" c.Adt.ctor_name;
      List.iter2
        (fun a p ->
          coerce solver ~what:("constructor " ^ c.Adt.ctor_name) a
            (Dim_solver.symbolize solver p))
        arg_tys c.Adt.arg_tys;
      Ty.Adt c.Adt.adt_name
  | Expr.Call { callee; args; _ } -> (
      let callee_ty = infer_expr solver env callee in
      match callee_ty with
      | Ty.Func (param_tys, ret_ty) ->
          if List.length args <> List.length param_tys then
            err "call arity mismatch: %d args for %a" (List.length args) Ty.pp callee_ty;
          let arg_tys = List.map (infer_expr solver env) args in
          (* Each call site gets fresh symbolic instances of the callee's Any
             dims so unrelated calls do not contaminate each other. *)
          List.iter2
            (fun a p -> coerce solver ~what:"call" a (Dim_solver.symbolize solver p))
            arg_tys param_tys;
          Dim_solver.symbolize solver ret_ty
      | ty -> err "call of non-function %a" Ty.pp ty)
  | Expr.Fn fn -> infer_fn solver env fn
  | Expr.Let (v, bound, body) ->
      let bound_ty = infer_expr solver env bound in
      bind env v bound_ty;
      infer_expr solver env body
  | Expr.If (c, t, f) ->
      let cond_ty = infer_expr solver env c in
      if not (is_condition_ty cond_ty) then
        err "if condition must be a scalar tensor, got %a" Ty.pp cond_ty;
      let tt = infer_expr solver env t in
      let ft = infer_expr solver env f in
      join solver tt ft
  | Expr.Match (scrut, clauses) -> (
      let scrut_ty = infer_expr solver env scrut in
      let adt_name =
        match scrut_ty with
        | Ty.Adt n -> n
        | ty -> err "match scrutinee must be an ADT, got %a" Ty.pp ty
      in
      let clause_ty { Expr.pat; rhs } =
        bind_pattern solver env adt_name pat;
        infer_expr solver env rhs
      in
      match clauses with
      | [] -> err "match with no clauses"
      | first :: rest ->
          List.fold_left
            (fun acc cl -> join solver acc (clause_ty cl))
            (clause_ty first) rest)

and bind_pattern solver env adt_name (p : Expr.pat) =
  match p with
  | Expr.Pwild -> ()
  | Expr.Pvar v -> bind env v (Ty.Adt adt_name)
  | Expr.Pctor (c, ps) ->
      if not (String.equal c.Adt.adt_name adt_name) then
        err "pattern constructor %s does not belong to %s" c.Adt.ctor_name adt_name;
      if List.length ps <> List.length c.Adt.arg_tys then
        err "pattern %s: arity mismatch" c.Adt.ctor_name;
      List.iter2
        (fun sub_pat field_ty ->
          match (sub_pat, field_ty) with
          | Expr.Pwild, _ -> ()
          | Expr.Pvar v, ty -> bind env v (Dim_solver.symbolize solver ty)
          | Expr.Pctor _, Ty.Adt nested -> bind_pattern solver env nested sub_pat
          | Expr.Pctor _, ty ->
              err "nested constructor pattern against non-ADT field %a" Ty.pp ty)
        ps c.Adt.arg_tys

and infer_fn solver env (fn : Expr.fn) : Ty.t =
  let saved = env.vars in
  let param_tys =
    List.map
      (fun (v : Expr.var) ->
        match v.vty with
        | Some ty ->
            let ty = Dim_solver.symbolize solver ty in
            bind env v ty;
            ty
        | None -> err "parameter %%%s#%d must be annotated" v.vname v.vid)
      fn.params
  in
  let body_ty = infer_expr solver env fn.body in
  (match fn.ret_ty with
  | Some declared -> coerce solver ~what:"return" body_ty (Dim_solver.symbolize solver declared)
  | None -> ());
  env.vars <- saved;
  Ty.Func (param_tys, body_ty)

(** Declared type of a global function, from its annotations. Recursive
    functions must annotate their return type. *)
let declared_fn_ty (name : string) (fn : Expr.fn) : Ty.t =
  let param_tys =
    List.map
      (fun (v : Expr.var) ->
        match v.vty with
        | Some ty -> ty
        | None -> err "@%s: parameter %%%s must be annotated" name v.vname)
      fn.params
  in
  let ret =
    match fn.ret_ty with
    | Some ty -> ty
    | None -> Ty.fresh_var () (* placeholder; filled in after body inference *)
  in
  Ty.Func (param_tys, ret)

(** Infer types for a whole module, mutating variable annotations in place.
    Returns the dim solver (whose residuals count the runtime checks that
    gradual typing deferred). *)
let infer_module (m : Irmod.t) : result =
  let solver = Dim_solver.create () in
  let globals = Hashtbl.create 8 in
  List.iter
    (fun (name, fn) -> Hashtbl.replace globals name (declared_fn_ty name fn))
    (Irmod.functions m);
  List.iter
    (fun (name, fn) ->
      let env = { vars = []; globals } in
      match infer_fn solver env fn with
      | Ty.Func (params, body_ty) -> (
          (* Fill in an unannotated return type now that we know it. *)
          match Hashtbl.find_opt globals name with
          | Some (Ty.Func (_, Ty.Var _)) ->
              Hashtbl.replace globals name (Ty.Func (params, body_ty))
          | _ -> ())
      | _ -> assert false)
    (Irmod.functions m);
  { solver; residual_checks = Dim_solver.residual_count solver }

(** Type of an expression under an empty environment (for tests). *)
let infer_standalone (e : Expr.t) : Ty.t * result =
  let solver = Dim_solver.create () in
  let env = { vars = []; globals = Hashtbl.create 1 } in
  let ty = infer_expr solver env e in
  (ty, { solver; residual_checks = Dim_solver.residual_count solver })
