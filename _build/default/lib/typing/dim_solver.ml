(** Union-find over symbolic dimensions.

    Implements the paper's sub-shaping analysis (§4.1): every [Any] dimension
    is replaced with a fresh [Sym] class; type relations unify classes that
    must denote the same extent; a class may be refined to a static extent.
    Unifying a dynamic dim against a static one records a *residual check* —
    the gradual-typing obligation that is re-verified at runtime by the shape
    functions. *)

open Nimble_ir

type node = Root of Dim.t | Link of int

type residual = { sym_id : int; expected : Dim.t; context : string }

type t = {
  classes : (int, node) Hashtbl.t;
  mutable residuals : residual list;
}

exception Dim_error of string

let err fmt = Fmt.kstr (fun s -> raise (Dim_error s)) fmt

let create () = { classes = Hashtbl.create 32; residuals = [] }

let fresh t =
  let d = Dim.fresh_sym () in
  (match d with
  | Dim.Sym id -> Hashtbl.replace t.classes id (Root d)
  | Dim.Static _ | Dim.Any -> assert false);
  d

let rec find_root t id =
  match Hashtbl.find_opt t.classes id with
  | None ->
      Hashtbl.replace t.classes id (Root (Dim.Sym id));
      (id, Dim.Sym id)
  | Some (Root d) -> (id, d)
  | Some (Link parent) ->
      let root = find_root t parent in
      Hashtbl.replace t.classes id (Link (fst root));
      root

(** The most specific known value of a dimension. *)
let resolve t (d : Dim.t) : Dim.t =
  match d with
  | Dim.Static _ | Dim.Any -> d
  | Dim.Sym id -> snd (find_root t id)

(** Replace every [Any] in a type with a fresh symbolic class. *)
let rec symbolize t (ty : Ty.t) : Ty.t =
  match ty with
  | Ty.Tensor { dims; dtype } ->
      let dims =
        Array.map (function Dim.Any -> fresh t | (Dim.Static _ | Dim.Sym _) as d -> d) dims
      in
      Ty.Tensor { dims; dtype }
  | Ty.Tuple ts -> Ty.Tuple (List.map (symbolize t) ts)
  | Ty.Func (args, ret) -> Ty.Func (List.map (symbolize t) args, symbolize t ret)
  | Ty.Adt _ | Ty.Storage | Ty.Var _ -> ty

(** Unify two dims; returns the representative. Static-vs-static mismatch is
    a compile-time error; dynamic-vs-static records a residual runtime check
    and refines the class. *)
let unify ?(context = "") t a b : Dim.t =
  let a = resolve t a and b = resolve t b in
  match (a, b) with
  | Dim.Static x, Dim.Static y ->
      if x = y then a else err "dimension mismatch: %d vs %d%s" x y
        (if context = "" then "" else " in " ^ context)
  | Dim.Any, d | d, Dim.Any -> d
  | Dim.Sym i, Dim.Sym j ->
      if i = j then a
      else begin
        let ri, _ = find_root t i and rj, _ = find_root t j in
        if ri <> rj then Hashtbl.replace t.classes rj (Link ri);
        Dim.Sym ri
      end
  | Dim.Sym i, (Dim.Static _ as s) | (Dim.Static _ as s), Dim.Sym i ->
      let ri, _ = find_root t i in
      Hashtbl.replace t.classes ri (Root s);
      t.residuals <- { sym_id = ri; expected = s; context } :: t.residuals;
      s

(** Are two dims known to denote the same extent? *)
let same t a b =
  match (resolve t a, resolve t b) with
  | Dim.Static x, Dim.Static y -> x = y
  | Dim.Sym i, Dim.Sym j -> fst (find_root t i) = fst (find_root t j)
  | _, _ -> false

(** Rewrite a type, resolving every [Sym] to its representative. *)
let rec apply t (ty : Ty.t) : Ty.t =
  match ty with
  | Ty.Tensor { dims; dtype } -> Ty.Tensor { dims = Array.map (resolve t) dims; dtype }
  | Ty.Tuple ts -> Ty.Tuple (List.map (apply t) ts)
  | Ty.Func (args, ret) -> Ty.Func (List.map (apply t) args, apply t ret)
  | Ty.Adt _ | Ty.Storage | Ty.Var _ -> ty

let residuals t = t.residuals
let residual_count t = List.length t.residuals
