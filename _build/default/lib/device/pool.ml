(** Per-device memory-pool accounting.

    Tracks allocation counts, live bytes and peak footprint per device, plus
    cross-device transfer bytes. The memory-planning experiment (paper §6.3)
    reads these counters; the allocations themselves are served by the OCaml
    GC (suballocation is simulated by the accounting, which is what the
    experiment measures). *)

type stats = {
  mutable allocs : int;
  mutable frees : int;
  mutable bytes_allocated : int;
  mutable live_bytes : int;
  mutable peak_bytes : int;
  mutable transfers_in : int;
  mutable transfer_bytes_in : int;
}

let fresh_stats () =
  {
    allocs = 0;
    frees = 0;
    bytes_allocated = 0;
    live_bytes = 0;
    peak_bytes = 0;
    transfers_in = 0;
    transfer_bytes_in = 0;
  }

type t = { per_device : (int, stats) Hashtbl.t }

let create () = { per_device = Hashtbl.create 4 }

let stats t (d : Device.t) =
  match Hashtbl.find_opt t.per_device d.Device.id with
  | Some s -> s
  | None ->
      let s = fresh_stats () in
      Hashtbl.replace t.per_device d.Device.id s;
      s

let record_alloc t d ~bytes =
  let s = stats t d in
  s.allocs <- s.allocs + 1;
  s.bytes_allocated <- s.bytes_allocated + bytes;
  s.live_bytes <- s.live_bytes + bytes;
  if s.live_bytes > s.peak_bytes then s.peak_bytes <- s.live_bytes

let record_free t d ~bytes =
  let s = stats t d in
  s.frees <- s.frees + 1;
  s.live_bytes <- Stdlib.max 0 (s.live_bytes - bytes)

let record_transfer t ~dst ~bytes =
  let s = stats t dst in
  s.transfers_in <- s.transfers_in + 1;
  s.transfer_bytes_in <- s.transfer_bytes_in + bytes

let total_allocs t =
  Hashtbl.fold (fun _ s acc -> acc + s.allocs) t.per_device 0

let total_transfers t =
  Hashtbl.fold (fun _ s acc -> acc + s.transfers_in) t.per_device 0

let peak_bytes t (d : Device.t) = (stats t d).peak_bytes

let reset t = Hashtbl.reset t.per_device

let pp ppf t =
  Hashtbl.iter
    (fun id s ->
      Fmt.pf ppf "device %d: allocs=%d frees=%d live=%dB peak=%dB transfers_in=%d@."
        id s.allocs s.frees s.live_bytes s.peak_bytes s.transfers_in)
    t.per_device
