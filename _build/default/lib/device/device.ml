(** Execution devices.

    The paper targets heterogeneous platforms (host CPU + accelerator). In
    this reproduction the host CPU is real and the accelerator is simulated:
    tensors carry a device id, kernels check placement, [device_copy] moves
    data, and the accounting in {!Pool} feeds the cost models. *)

type kind = Cpu | Gpu

type t = { id : int; kind : kind; name : string }

let cpu = { id = 0; kind = Cpu; name = "cpu" }
let gpu = { id = 1; kind = Gpu; name = "gpu(sim)" }

let all = [ cpu; gpu ]

let of_id id =
  match List.find_opt (fun d -> d.id = id) all with
  | Some d -> d
  | None -> Fmt.invalid_arg "Device.of_id: unknown device %d" id

let equal a b = a.id = b.id
let is_cpu d = d.kind = Cpu
let pp ppf d = Fmt.string ppf d.name
let to_string d = d.name
