lib/device/pool.ml: Device Fmt Hashtbl Stdlib
