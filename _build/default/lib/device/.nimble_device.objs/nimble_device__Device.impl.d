lib/device/device.ml: Fmt List
