lib/shape/shape_func.ml: Array Attrs Float Fmt Hashtbl List Nimble_ir Nimble_tensor Op Shape Stdlib Tensor
