lib/shape/shape_func.mli: Attrs Nimble_ir Nimble_tensor Shape Tensor
