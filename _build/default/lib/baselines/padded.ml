(** Pad-to-maximum static baseline (the §2.1 "reduce the dynamic model to a
    static one" approach): every sequence is padded to a fixed maximum
    length so a statically-unrolled network can run it. The wasted compute
    on padding tokens is real — this is the ablation showing why static
    reduction is not a substitute for native dynamism. *)

open Nimble_tensor
open Nimble_models

module Ops = Instrumented.Make_ops (struct
  let dispatch_event = "static_node_exec"
  let graph_event = None
end)

module Lstm_cell = Lstm.Cell (Ops)

(** LSTM over a sequence padded to [max_len] zero embeddings. The true last
    hidden state is selected by index (as masking-based deployments do). *)
let lstm ~max_len (w : Lstm.weights) (xs : Tensor.t list) : Tensor.t =
  let hs = w.Lstm.config.Lstm.hidden_size in
  let input = w.Lstm.config.Lstm.input_size in
  let n = List.length xs in
  if n > max_len then invalid_arg "Padded.lstm: sequence longer than max_len";
  let padded = xs @ List.init (max_len - n) (fun _ -> Tensor.zeros [| 1; input |]) in
  let zero () = Tensor.zeros [| 1; hs |] in
  let run_layer lw seq =
    let (_, _), outputs =
      List.fold_left
        (fun ((h, c), acc) x ->
          let h', c' = Lstm_cell.step lw ~hidden_size:hs x (h, c) in
          ((h', c'), h' :: acc))
        ((zero (), zero ()), [])
        seq
    in
    List.rev outputs
  in
  let final = List.fold_left (fun seq lw -> run_layer lw seq) padded w.Lstm.layers in
  (* select the hidden state at the true length *)
  List.nth final (n - 1)

(** Fraction of compute wasted on padding for a given length distribution —
    reported by the ablation bench. *)
let waste ~max_len lengths =
  let total = List.fold_left ( + ) 0 lengths in
  let padded = max_len * List.length lengths in
  1.0 -. (float_of_int total /. float_of_int padded)
