(** MXNet-like hybrid baseline.

    Symbolic graphs with [foreach]/[while_loop]-style control-flow operators
    that spawn a subgraph executor per iteration, plus shape bucketing: the
    executor is re-specialized ("bind") the first time each input shape is
    seen, and cached afterwards. Per-op dispatch is cheaper than eager
    (C++ engine) but each control-flow step pays a subgraph-executor setup. *)

open Nimble_tensor
open Nimble_models
module Trace = Nimble_codegen.Trace

module Ops = Instrumented.Make_ops (struct
  let dispatch_event = "hybrid_dispatch"
  let graph_event = None
end)

module Lstm_cell = Lstm.Cell (Ops)
module Bert_enc = Bert.Encoder (Ops)

(* Shape-bucket cache: (model, shape signature) -> already specialized? *)
let bucket_cache : (string, unit) Hashtbl.t = Hashtbl.create 16

let bind_if_new ~model ~signature ~graph_nodes =
  let key = model ^ ":" ^ signature in
  if not (Hashtbl.mem bucket_cache key) then begin
    Hashtbl.replace bucket_cache key ();
    (* executor specialization: one action per graph node *)
    Trace.record_framework "hybrid_bind" ~amount:graph_nodes ()
  end

let reset_cache () = Hashtbl.reset bucket_cache

let lstm (w : Lstm.weights) (xs : Tensor.t list) : Tensor.t =
  let hs = w.Lstm.config.Lstm.hidden_size in
  bind_if_new ~model:"lstm"
    ~signature:(string_of_int (List.length xs))
    ~graph_nodes:(12 * w.Lstm.config.Lstm.num_layers);
  let zero () = Tensor.zeros [| 1; hs |] in
  let run_layer lw seq =
    let (_, _), outputs =
      List.fold_left
        (fun ((h, c), acc) x ->
          (* control-flow operator spawns a subgraph executor per step *)
          Trace.record_framework "hybrid_subgraph_exec" ();
          let h', c' = Lstm_cell.step lw ~hidden_size:hs x (h, c) in
          ((h', c'), h' :: acc))
        ((zero (), zero ()), [])
        seq
    in
    List.rev outputs
  in
  let final = List.fold_left (fun seq lw -> run_layer lw seq) xs w.Lstm.layers in
  match List.rev final with last :: _ -> last | [] -> zero ()

let bert (w : Bert.weights) (x : Tensor.t) : Tensor.t =
  (* bucketed specialization: sequence lengths share an executor per
     16-token bucket, so binds amortize across a corpus *)
  let bucket = ((Tensor.shape x).(0) + 15) / 16 * 16 in
  bind_if_new ~model:"bert"
    ~signature:(string_of_int bucket)
    ~graph_nodes:(16 * w.Bert.config.Bert.num_layers);
  Bert_enc.encode w x
