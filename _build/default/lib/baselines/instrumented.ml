(** Instrumented operator sets for the baseline frameworks.

    Each baseline executes the *same kernels* as Nimble (so outputs are
    bit-comparable) but through its own dispatch architecture, reporting
    the framework-side actions it performs — per-op dynamic dispatch,
    trace/graph node construction, control-flow primitives, recompilation —
    to {!Nimble_codegen.Trace}. The performance simulator prices those
    actions per platform; the kernel work itself is priced from the same
    trace events Nimble's kernels emit. *)

open Nimble_tensor
open Nimble_models
module Trace = Nimble_codegen.Trace

module type CONFIG = sig
  val dispatch_event : string
  (** emitted once per operator call (framework dispatch cost) *)

  val graph_event : string option
  (** emitted once per operator call when the framework also materializes a
      graph/trace node per invocation (define-by-run frameworks) *)
end

module Make_ops (C : CONFIG) : Model_ops.OPS with type t = Tensor.t = struct
  type t = Tensor.t

  (* A boxed dispatch table: op name -> kernel, looked up per call, the way
     a framework's dynamic dispatch works. *)
  let table : (string, Nimble_ir.Attrs.t -> Tensor.t list -> Tensor.t list) Hashtbl.t =
    Hashtbl.create 32

  let () =
    List.iter
      (fun name ->
        Hashtbl.replace table name (fun attrs args ->
            Nimble_codegen.Op_eval.eval name ~attrs args))
      [
        "add"; "subtract"; "multiply"; "sigmoid"; "tanh"; "gelu"; "relu";
        "dense"; "bias_add"; "softmax"; "layer_norm"; "split"; "strided_slice";
        "reshape"; "transpose"; "batch_matmul"; "concat"; "conv2d";
        "max_pool2d"; "global_avg_pool2d"; "batch_norm";
      ]

  let dispatch name attrs args =
    Trace.record_framework C.dispatch_event ();
    (match C.graph_event with
    | Some ev -> Trace.record_framework ev ()
    | None -> ());
    let kernel =
      match Hashtbl.find_opt table name with
      | Some k -> k
      | None -> fun attrs args -> Nimble_codegen.Op_eval.eval name ~attrs args
    in
    let outs = kernel attrs args in
    Trace.record_op name ~attrs args outs;
    outs

  let one name attrs args =
    match dispatch name attrs args with
    | [ t ] -> t
    | _ -> invalid_arg (name ^ ": expected single output")

  let const t = t
  let dense a b = one "dense" [] [ a; b ]
  let bias_add a b = one "bias_add" [] [ a; b ]
  let add a b = one "add" [] [ a; b ]
  let sub a b = one "subtract" [] [ a; b ]
  let mul a b = one "multiply" [] [ a; b ]
  let sigmoid a = one "sigmoid" [] [ a ]
  let tanh a = one "tanh" [] [ a ]
  let gelu a = one "gelu" [] [ a ]
  let softmax ~axis a = one "softmax" [ ("axis", Nimble_ir.Attrs.Int axis) ] [ a ]
  let layer_norm a ~gamma ~beta = one "layer_norm" [] [ a; gamma; beta ]

  let split ~axis ~sections a =
    dispatch "split"
      [ ("axis", Nimble_ir.Attrs.Int axis); ("sections", Nimble_ir.Attrs.Int sections) ]
      [ a ]

  let slice ~begins ~ends a =
    one "strided_slice"
      [
        ("begins", Nimble_ir.Attrs.Ints (Array.to_list begins));
        ("ends", Nimble_ir.Attrs.Ints (Array.to_list ends));
      ]
      [ a ]

  let reshape s a =
    one "reshape" [ ("newshape", Nimble_ir.Attrs.Ints (Array.to_list s)) ] [ a ]

  let transpose ~axes a =
    one "transpose" [ ("axes", Nimble_ir.Attrs.Ints (Array.to_list axes)) ] [ a ]

  let batch_matmul a b = one "batch_matmul" [] [ a; b ]
  let mul_scalar c a = one "multiply" [] [ a; Tensor.scalar c ]
  let concat ~axis ts = one "concat" [ ("axis", Nimble_ir.Attrs.Int axis) ] ts
  let relu a = one "relu" [] [ a ]

  let conv2d ~stride ~padding d w =
    one "conv2d"
      [ ("stride", Nimble_ir.Attrs.Int stride); ("padding", Nimble_ir.Attrs.Int padding) ]
      [ d; w ]

  let max_pool2d ~window ~stride a =
    one "max_pool2d"
      [ ("window", Nimble_ir.Attrs.Int window); ("stride", Nimble_ir.Attrs.Int stride) ]
      [ a ]

  let global_avg_pool2d a = one "global_avg_pool2d" [] [ a ]

  let batch_norm a ~gamma ~beta ~mean ~var =
    one "batch_norm" [] [ a; gamma; beta; mean; var ]
end
