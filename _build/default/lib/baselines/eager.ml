(** PyTorch-like define-by-run baseline.

    Control flow runs in the host language; every operator call goes through
    dynamic dispatch and materializes a trace node (the autograd-graph
    construction PyTorch performs even in inference mode unless disabled —
    and the per-path graph construction the paper charges eager frameworks
    with). Tree handling happens entirely in host code, mirroring how
    PyTorch's Python tree recursion dominates its Tree-LSTM latency. *)

open Nimble_tensor
open Nimble_models
module Trace = Nimble_codegen.Trace

module Ops = Instrumented.Make_ops (struct
  let dispatch_event = "eager_dispatch"
  let graph_event = Some "eager_graph_node"
end)

module Lstm_cell = Lstm.Cell (Ops)
module Tree_cell = Tree_lstm.Cell (Ops)
module Bert_enc = Bert.Encoder (Ops)

(** LSTM over a sequence; host-language loop per timestep. *)
let lstm (w : Lstm.weights) (xs : Tensor.t list) : Tensor.t =
  let hs = w.Lstm.config.Lstm.hidden_size in
  let zero () = Tensor.zeros [| 1; hs |] in
  let run_layer lw seq =
    Trace.record_framework "eager_loop_setup" ();
    let (_, _), outputs =
      List.fold_left
        (fun ((h, c), acc) x ->
          (* per-iteration host-language step (Python interpreter analogue) *)
          Trace.record_framework "eager_host_step" ();
          let h', c' = Lstm_cell.step lw ~hidden_size:hs x (h, c) in
          ((h', c'), h' :: acc))
        ((zero (), zero ()), [])
        seq
    in
    List.rev outputs
  in
  let final = List.fold_left (fun seq lw -> run_layer lw seq) xs w.Lstm.layers in
  match List.rev final with last :: _ -> last | [] -> zero ()

(** Tree-LSTM; host-language recursion per tree node. *)
let tree_lstm (w : Tree_lstm.weights) (t : Tree_lstm.tree) : Tensor.t =
  let rec eval = function
    | Tree_lstm.Leaf x ->
        Trace.record_framework "eager_host_recursion" ();
        Tree_cell.leaf w x
    | Tree_lstm.Node (l, r) ->
        Trace.record_framework "eager_host_recursion" ();
        Tree_cell.node w (eval l) (eval r)
  in
  Tree_cell.classify w (fst (eval t))

(** BERT; straight-line eager execution. *)
let bert (w : Bert.weights) (x : Tensor.t) : Tensor.t = Bert_enc.encode w x
