lib/baselines/eager.ml: Bert Instrumented List Lstm Nimble_codegen Nimble_models Nimble_tensor Tensor Tree_lstm
