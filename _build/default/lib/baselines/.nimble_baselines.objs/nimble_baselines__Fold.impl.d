lib/baselines/fold.ml: Array List Nimble_codegen Nimble_models Nimble_tensor Ops_elem Ops_matmul Ops_nn Ops_shape Stdlib Tensor Tree_lstm
