lib/baselines/hybrid.ml: Array Bert Hashtbl Instrumented List Lstm Nimble_codegen Nimble_models Nimble_tensor Tensor
