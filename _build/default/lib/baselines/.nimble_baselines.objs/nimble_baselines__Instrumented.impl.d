lib/baselines/instrumented.ml: Array Hashtbl List Model_ops Nimble_codegen Nimble_ir Nimble_models Nimble_tensor Tensor
