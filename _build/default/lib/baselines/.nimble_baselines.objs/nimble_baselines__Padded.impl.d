lib/baselines/padded.ml: Instrumented List Lstm Nimble_models Nimble_tensor Tensor
