lib/baselines/graph_cf.ml: Bert Instrumented List Lstm Nimble_codegen Nimble_models Nimble_tensor Tensor
