(** TensorFlow Fold-like dynamic-batching baseline for tree models.

    Fold analyzes each input's structure, groups operations at the same
    depth, and emits a batched graph for that input — which buys batched
    kernels at the price of a *per-input recompilation* (the behaviour the
    paper measures: "it has to re-compile upon every input"). The batching
    here is real: all leaves are processed with one set of batched kernels,
    then each tree level up, with outputs scattered back to nodes. *)

open Nimble_tensor
open Nimble_models
module Trace = Nimble_codegen.Trace

(* Batched Tree-LSTM math over k rows at once (direct kernels; Fold lowers
   to TensorFlow ops, which are the same kernels). *)
let col_slice t ~rows ~h i =
  Ops_shape.strided_slice ~begins:[| 0; i * h |] ~ends:[| rows; (i + 1) * h |] t

let batched_leaf (w : Tree_lstm.weights) (xs : Tensor.t list) =
  let h = w.Tree_lstm.config.Tree_lstm.hidden_size in
  let rows = List.length xs in
  let x = Ops_shape.concat ~axis:0 xs in
  let pre = Ops_matmul.dense_bias x w.Tree_lstm.w_leaf w.Tree_lstm.b_leaf in
  Trace.record_op "dense" ~attrs:[] [ x; w.Tree_lstm.w_leaf ] [ pre ];
  let i = Ops_elem.sigmoid (col_slice pre ~rows ~h 0) in
  let o = Ops_elem.sigmoid (col_slice pre ~rows ~h 1) in
  let u = Ops_elem.tanh (col_slice pre ~rows ~h 2) in
  let c = Ops_elem.mul i u in
  let hid = Ops_elem.mul o (Ops_elem.tanh c) in
  Trace.record_op "sigmoid" ~attrs:[] [ pre ] [ i; o ];
  (hid, c)

let batched_node (w : Tree_lstm.weights) ~(hl : Tensor.t) ~(cl : Tensor.t) ~(hr : Tensor.t)
    ~(cr : Tensor.t) =
  let h = w.Tree_lstm.config.Tree_lstm.hidden_size in
  let rows = (Tensor.shape hl).(0) in
  let h_sum = Ops_elem.add hl hr in
  let pre = Ops_matmul.dense_bias h_sum w.Tree_lstm.u_iou w.Tree_lstm.b_iou in
  Trace.record_op "dense" ~attrs:[] [ h_sum; w.Tree_lstm.u_iou ] [ pre ];
  let i = Ops_elem.sigmoid (col_slice pre ~rows ~h 0) in
  let o = Ops_elem.sigmoid (col_slice pre ~rows ~h 1) in
  let u = Ops_elem.tanh (col_slice pre ~rows ~h 2) in
  let fl = Ops_elem.sigmoid (Ops_matmul.dense_bias hl w.Tree_lstm.u_f w.Tree_lstm.b_f) in
  let fr = Ops_elem.sigmoid (Ops_matmul.dense_bias hr w.Tree_lstm.u_f w.Tree_lstm.b_f) in
  Trace.record_op "dense" ~attrs:[] [ hl; w.Tree_lstm.u_f ] [ fl ];
  Trace.record_op "dense" ~attrs:[] [ hr; w.Tree_lstm.u_f ] [ fr ];
  let c =
    Ops_elem.add (Ops_elem.mul i u) (Ops_elem.add (Ops_elem.mul fl cl) (Ops_elem.mul fr cr))
  in
  let hid = Ops_elem.mul o (Ops_elem.tanh c) in
  (hid, c)

(* Tree flattening: assign heights, collect nodes per height. *)
type node_ref = { height : int; index : int }

let rec tree_height = function
  | Tree_lstm.Leaf _ -> 0
  | Tree_lstm.Node (l, r) -> 1 + Stdlib.max (tree_height l) (tree_height r)

let row t ~h i =
  Ops_shape.strided_slice ~begins:[| i; 0 |] ~ends:[| i + 1; h |] t

(** Run one tree through Fold-style dynamic batching. *)
let tree_lstm (w : Tree_lstm.weights) (t : Tree_lstm.tree) : Tensor.t =
  let hdim = w.Tree_lstm.config.Tree_lstm.hidden_size in
  (* --- per-input analysis + graph compilation (the Fold overhead) ----- *)
  let n_nodes = ref 0 in
  let rec count = function
    | Tree_lstm.Leaf _ -> incr n_nodes
    | Tree_lstm.Node (l, r) ->
        incr n_nodes;
        count l;
        count r
  in
  count t;
  Trace.record_framework "fold_recompile" ~amount:!n_nodes ();
  (* --- schedule: nodes per height --------------------------------- *)
  let max_h = tree_height t in
  let leaves = ref [] in
  let by_height = Array.make (max_h + 1) [] in
  let rec assign node : node_ref =
    match node with
    | Tree_lstm.Leaf x ->
        let index = List.length !leaves in
        leaves := !leaves @ [ x ];
        { height = 0; index }
    | Tree_lstm.Node (l, r) ->
        let rl = assign l and rr = assign r in
        let height = 1 + Stdlib.max rl.height rr.height in
        let index = List.length by_height.(height) in
        by_height.(height) <- by_height.(height) @ [ (rl, rr) ];
        { height; index }
  in
  let root = assign t in
  (* --- execute level by level ------------------------------------- *)
  (* states.(h) = (H, C) matrices whose rows are that level's nodes *)
  let states : (Tensor.t * Tensor.t) array =
    Array.make (max_h + 1) (Tensor.zeros [| 1; hdim |], Tensor.zeros [| 1; hdim |])
  in
  states.(0) <- batched_leaf w !leaves;
  let state_of (r : node_ref) =
    let hmat, cmat = states.(r.height) in
    (row hmat ~h:hdim r.index, row cmat ~h:hdim r.index)
  in
  for level = 1 to max_h do
    let pairs = by_height.(level) in
    if pairs <> [] then begin
      Trace.record_framework "fold_gather" ~amount:(List.length pairs) ();
      let hl = Ops_shape.concat ~axis:0 (List.map (fun (l, _) -> fst (state_of l)) pairs) in
      let cl = Ops_shape.concat ~axis:0 (List.map (fun (l, _) -> snd (state_of l)) pairs) in
      let hr = Ops_shape.concat ~axis:0 (List.map (fun (_, r) -> fst (state_of r)) pairs) in
      let cr = Ops_shape.concat ~axis:0 (List.map (fun (_, r) -> snd (state_of r)) pairs) in
      states.(level) <- batched_node w ~hl ~cl ~hr ~cr
    end
  done;
  let root_h, _ = state_of root in
  let logits = Ops_matmul.dense_bias root_h w.Tree_lstm.w_out w.Tree_lstm.b_out in
  Trace.record_op "dense" ~attrs:[] [ root_h; w.Tree_lstm.w_out ] [ logits ];
  Ops_nn.softmax ~axis:(-1) logits
