(** TensorFlow-like define-then-run baseline.

    The model is a static dataflow graph executed by a scheduler; dynamic
    sequence length is handled with control-flow primitives in the graph
    (Enter / Merge / Switch / NextIteration / Exit, per Yu et al.). The
    graph is built once per model — no per-input construction — but every
    loop iteration executes the control-flow primitive nodes in addition to
    the compute nodes, which is the overhead the paper attributes to this
    architecture. Tree-structured models cannot be expressed (the paper
    runs Tree-LSTM only on PyTorch and TF Fold). *)

open Nimble_tensor
open Nimble_models
module Trace = Nimble_codegen.Trace

module Ops = Instrumented.Make_ops (struct
  let dispatch_event = "graph_node_exec"
  let graph_event = None
end)

module Lstm_cell = Lstm.Cell (Ops)
module Bert_enc = Bert.Encoder (Ops)

(* The five control-flow primitives executed per loop iteration. *)
let cf_primitives = [ "Enter"; "Merge"; "Switch"; "NextIteration"; "Exit" ]

let run_cf_iteration () =
  List.iter (fun p -> Trace.record_framework ("cf_" ^ p) ()) cf_primitives

(** LSTM as a while_loop graph. One-time graph construction is charged per
    process (amortized to zero across a corpus), per-iteration control-flow
    primitives are charged per timestep. *)
let lstm (w : Lstm.weights) (xs : Tensor.t list) : Tensor.t =
  let hs = w.Lstm.config.Lstm.hidden_size in
  let zero () = Tensor.zeros [| 1; hs |] in
  let run_layer lw seq =
    let (_, _), outputs =
      List.fold_left
        (fun ((h, c), acc) x ->
          run_cf_iteration ();
          let h', c' = Lstm_cell.step lw ~hidden_size:hs x (h, c) in
          ((h', c'), h' :: acc))
        ((zero (), zero ()), [])
        seq
    in
    List.rev outputs
  in
  let final = List.fold_left (fun seq lw -> run_layer lw seq) xs w.Lstm.layers in
  match List.rev final with last :: _ -> last | [] -> zero ()

(** BERT: a static graph fed variable-length inputs; no control flow, the
    scheduler just walks the graph (per-node cost charged by the ops). *)
let bert (w : Bert.weights) (x : Tensor.t) : Tensor.t = Bert_enc.encode w x
