(** Types of the Nimble IR.

    Tensor types carry per-dimension [Dim.t] (which may be [Any]); function
    and tuple types support closures and multi-output operators; ADT types
    (referenced by name, monomorphic) support dynamic data structures like
    the Tree-LSTM's tree. [Var] is an inference-time type variable. *)

open Nimble_tensor

type t =
  | Tensor of { dims : Dim.t array; dtype : Dtype.t }
  | Tuple of t list
  | Func of t list * t
  | Adt of string
  | Storage  (** a raw memory region from [memory.alloc_storage] (§4.3) *)
  | Var of int

let tensor ?(dtype = Dtype.F32) dims = Tensor { dims = Array.of_list dims; dtype }

let tensor_of_shape ?(dtype = Dtype.F32) (s : Shape.t) =
  Tensor { dims = Array.map Dim.static s; dtype }

let scalar ?(dtype = Dtype.F32) () = Tensor { dims = [||]; dtype }
let bool_scalar = Tensor { dims = [||]; dtype = Dtype.U8 }
let unit = Tuple []

let var_counter = ref 0

let fresh_var () =
  incr var_counter;
  Var !var_counter

let rec equal a b =
  match (a, b) with
  | Tensor x, Tensor y ->
      Dtype.equal x.dtype y.dtype
      && Array.length x.dims = Array.length y.dims
      && Array.for_all2 Dim.equal x.dims y.dims
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Func (xs, xr), Func (ys, yr) ->
      List.length xs = List.length ys && List.for_all2 equal xs ys && equal xr yr
  | Adt x, Adt y -> String.equal x y
  | Storage, Storage -> true
  | Var x, Var y -> x = y
  | (Tensor _ | Tuple _ | Func _ | Adt _ | Storage | Var _), _ -> false

(** Fully static: no [Any] or [Sym] dims anywhere. *)
let rec is_static = function
  | Tensor { dims; _ } -> Array.for_all Dim.is_static dims
  | Tuple ts -> List.for_all is_static ts
  | Func (args, ret) -> List.for_all is_static args && is_static ret
  | Adt _ -> false
  | Storage -> true
  | Var _ -> false

(** Extract the concrete shape if every dim is static. *)
let static_shape = function
  | Tensor { dims; _ } when Array.for_all Dim.is_static dims ->
      Some
        (Array.map (function Dim.Static n -> n | Dim.Any | Dim.Sym _ -> 0) dims)
  | Tensor _ | Tuple _ | Func _ | Adt _ | Storage | Var _ -> None

(** Sub-shaping (paper §4.1): [a] is usable where [b] is expected when every
    dimension of [a] is at least as specific as [b]'s. *)
let rec subtype a b =
  match (a, b) with
  | Tensor x, Tensor y ->
      Dtype.equal x.dtype y.dtype
      && Array.length x.dims = Array.length y.dims
      && Array.for_all2
           (fun da db ->
             match (da, db) with
             | _, Dim.Any -> true
             | Dim.Sym i, Dim.Sym j -> i = j
             | Dim.Static m, Dim.Static n -> m = n
             | (Dim.Static _ | Dim.Any | Dim.Sym _), _ -> false)
           x.dims y.dims
  | Tuple xs, Tuple ys ->
      List.length xs = List.length ys && List.for_all2 subtype xs ys
  | Func (xs, xr), Func (ys, yr) ->
      (* contravariant in arguments, covariant in result *)
      List.length xs = List.length ys
      && List.for_all2 subtype ys xs
      && subtype xr yr
  | Adt x, Adt y -> String.equal x y
  | Storage, Storage -> true
  | Var x, Var y -> x = y
  | (Tensor _ | Tuple _ | Func _ | Adt _ | Storage | Var _), _ -> false

let rec pp ppf = function
  | Tensor { dims; dtype } ->
      Fmt.pf ppf "Tensor[(%a), %a]" Fmt.(array ~sep:(any ", ") Dim.pp) dims
        Dtype.pp dtype
  | Tuple [] -> Fmt.string ppf "()"
  | Tuple ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp) ts
  | Func (args, ret) ->
      Fmt.pf ppf "fn(%a) -> %a" Fmt.(list ~sep:(any ", ") pp) args pp ret
  | Adt name -> Fmt.string ppf name
  | Storage -> Fmt.string ppf "Storage"
  | Var id -> Fmt.pf ppf "'t%d" id

let to_string t = Fmt.str "%a" pp t
