(** Operator registry.

    Each primitive operator has a name, an arity, and a fusion [pattern]
    (the TVM-style operator-pattern lattice that drives the fusion pass).
    Type relations and shape functions are registered against these names by
    [Nimble_typing] and [Nimble_shape]. *)

type pattern =
  | Elemwise  (** 1:1 elementwise map *)
  | Broadcast  (** elementwise after broadcasting *)
  | Injective  (** output index is a function of input index (reshape, ...) *)
  | Comm_reduce  (** commutative reduction *)
  | Out_fusable  (** complex-out-fusable: dense/conv — elemwise epilogues fuse *)
  | Opaque  (** never fused *)

let pattern_to_string = function
  | Elemwise -> "elemwise"
  | Broadcast -> "broadcast"
  | Injective -> "injective"
  | Comm_reduce -> "comm_reduce"
  | Out_fusable -> "out_fusable"
  | Opaque -> "opaque"

type def = {
  name : string;
  arity : int;  (** -1 for variadic *)
  pattern : pattern;
  description : string;
}

let registry : (string, def) Hashtbl.t = Hashtbl.create 64

let register ~name ~arity ~pattern ~description =
  if Hashtbl.mem registry name then
    Fmt.invalid_arg "Op.register: duplicate operator %s" name;
  Hashtbl.replace registry name { name; arity; pattern; description }

let find name = Hashtbl.find_opt registry name

let get name =
  match find name with
  | Some d -> d
  | None -> Fmt.invalid_arg "Op.get: unknown operator %s" name

let exists name = Hashtbl.mem registry name
let all () = Hashtbl.fold (fun _ d acc -> d :: acc) registry []

let () =
  let r = register in
  (* elementwise / broadcast *)
  r ~name:"add" ~arity:2 ~pattern:Broadcast ~description:"broadcasting add";
  r ~name:"subtract" ~arity:2 ~pattern:Broadcast ~description:"broadcasting subtract";
  r ~name:"multiply" ~arity:2 ~pattern:Broadcast ~description:"broadcasting multiply";
  r ~name:"divide" ~arity:2 ~pattern:Broadcast ~description:"broadcasting divide";
  r ~name:"maximum" ~arity:2 ~pattern:Broadcast ~description:"broadcasting max";
  r ~name:"minimum" ~arity:2 ~pattern:Broadcast ~description:"broadcasting min";
  r ~name:"equal" ~arity:2 ~pattern:Broadcast ~description:"elementwise =, u8 output";
  r ~name:"less" ~arity:2 ~pattern:Broadcast ~description:"elementwise <, u8 output";
  r ~name:"greater" ~arity:2 ~pattern:Broadcast ~description:"elementwise >, u8 output";
  r ~name:"negative" ~arity:1 ~pattern:Elemwise ~description:"unary negation";
  r ~name:"abs" ~arity:1 ~pattern:Elemwise ~description:"absolute value";
  r ~name:"exp" ~arity:1 ~pattern:Elemwise ~description:"exponential";
  r ~name:"log" ~arity:1 ~pattern:Elemwise ~description:"natural log";
  r ~name:"sqrt" ~arity:1 ~pattern:Elemwise ~description:"square root";
  r ~name:"tanh" ~arity:1 ~pattern:Elemwise ~description:"hyperbolic tangent";
  r ~name:"sigmoid" ~arity:1 ~pattern:Elemwise ~description:"logistic sigmoid";
  r ~name:"relu" ~arity:1 ~pattern:Elemwise ~description:"rectified linear";
  r ~name:"gelu" ~arity:1 ~pattern:Elemwise ~description:"gaussian error linear unit";
  r ~name:"cast" ~arity:1 ~pattern:Elemwise ~description:"dtype cast (attr: dtype)";
  r ~name:"erf" ~arity:1 ~pattern:Elemwise ~description:"error function";
  r ~name:"power" ~arity:2 ~pattern:Broadcast ~description:"elementwise power";
  r ~name:"less_equal" ~arity:2 ~pattern:Broadcast ~description:"elementwise <=, u8 output";
  r ~name:"greater_equal" ~arity:2 ~pattern:Broadcast ~description:"elementwise >=, u8 output";
  r ~name:"not_equal" ~arity:2 ~pattern:Broadcast ~description:"elementwise <>, u8 output";
  r ~name:"logical_and" ~arity:2 ~pattern:Broadcast ~description:"elementwise and, u8";
  r ~name:"logical_or" ~arity:2 ~pattern:Broadcast ~description:"elementwise or, u8";
  r ~name:"logical_not" ~arity:1 ~pattern:Elemwise ~description:"elementwise not, u8";
  r ~name:"where" ~arity:3 ~pattern:Broadcast ~description:"elementwise select";
  r ~name:"log_softmax" ~arity:1 ~pattern:Opaque ~description:"log softmax (attr: axis)";
  (* injective / shape manipulation *)
  r ~name:"reshape" ~arity:1 ~pattern:Injective ~description:"reshape (attr: newshape)";
  r ~name:"transpose" ~arity:1 ~pattern:Injective ~description:"transpose (attr: axes)";
  r ~name:"expand_dims" ~arity:1 ~pattern:Injective ~description:"insert axis (attr: axis)";
  r ~name:"squeeze" ~arity:1 ~pattern:Injective ~description:"remove axis (attr: axis)";
  r ~name:"concat" ~arity:(-1) ~pattern:Injective ~description:"concatenate (attr: axis)";
  r ~name:"split" ~arity:1 ~pattern:Injective
    ~description:"split into equal sections (attrs: axis, sections)";
  r ~name:"strided_slice" ~arity:1 ~pattern:Injective
    ~description:"slice (attrs: begins, ends)";
  r ~name:"take" ~arity:2 ~pattern:Injective ~description:"gather rows (attr: axis)";
  r ~name:"tile" ~arity:1 ~pattern:Injective ~description:"repeat (attr: reps)";
  (* reductions *)
  r ~name:"sum" ~arity:1 ~pattern:Comm_reduce ~description:"sum (attrs: axis?, keepdims)";
  r ~name:"max" ~arity:1 ~pattern:Comm_reduce ~description:"max (attrs: axis?, keepdims)";
  r ~name:"min" ~arity:1 ~pattern:Comm_reduce ~description:"min (attrs: axis?, keepdims)";
  r ~name:"mean" ~arity:1 ~pattern:Comm_reduce ~description:"mean (attrs: axis?, keepdims)";
  r ~name:"argmax" ~arity:1 ~pattern:Comm_reduce ~description:"argmax (attr: axis)";
  (* heavy kernels *)
  r ~name:"dense" ~arity:2 ~pattern:Out_fusable ~description:"(m,k) x (n,k)^T";
  r ~name:"matmul" ~arity:2 ~pattern:Out_fusable ~description:"(m,k) x (k,n)";
  r ~name:"batch_matmul" ~arity:2 ~pattern:Out_fusable ~description:"(b,m,k) x (b,k,n)";
  r ~name:"conv2d" ~arity:2 ~pattern:Out_fusable
    ~description:"NCHW conv (attrs: stride, padding)";
  r ~name:"bias_add" ~arity:2 ~pattern:Broadcast ~description:"add bias on last axis";
  (* composite NN ops *)
  r ~name:"softmax" ~arity:1 ~pattern:Opaque ~description:"softmax (attr: axis)";
  r ~name:"layer_norm" ~arity:3 ~pattern:Opaque ~description:"layer norm (gamma, beta)";
  r ~name:"batch_norm" ~arity:5 ~pattern:Opaque
    ~description:"inference batch norm (gamma, beta, mean, var)";
  r ~name:"max_pool2d" ~arity:1 ~pattern:Opaque
    ~description:"max pooling (attrs: window, stride)";
  r ~name:"avg_pool2d" ~arity:1 ~pattern:Opaque
    ~description:"avg pooling (attrs: window, stride)";
  r ~name:"global_avg_pool2d" ~arity:1 ~pattern:Opaque ~description:"global avg pool";
  r ~name:"embedding" ~arity:2 ~pattern:Injective ~description:"embedding lookup";
  (* data-dependent output shapes (paper §4.2) *)
  r ~name:"arange" ~arity:3 ~pattern:Opaque
    ~description:"range [start, stop, step); data-dependent shape";
  r ~name:"unique" ~arity:1 ~pattern:Opaque
    ~description:"unique elements; data-dependent shape";
  r ~name:"nms" ~arity:1 ~pattern:Opaque
    ~description:"non-maximum suppression; upper-bound shape (attrs: iou, score)";
  (* dynamism / memory dialect (paper §4.3-4.4) *)
  r ~name:"shape_of" ~arity:1 ~pattern:Opaque ~description:"runtime shape as i64 tensor";
  r ~name:"reshape_tensor" ~arity:2 ~pattern:Opaque
    ~description:"reshape to a runtime shape tensor";
  r ~name:"device_copy" ~arity:1 ~pattern:Opaque
    ~description:"cross-device copy (attrs: src_device, dst_device)";
  r ~name:"memory.alloc_storage" ~arity:1 ~pattern:Opaque
    ~description:"allocate a storage region (attrs: alignment, device, dtype)";
  r ~name:"memory.alloc_tensor" ~arity:2 ~pattern:Opaque
    ~description:"allocate a tensor in a storage (attrs: offset, const_shape?, dtype)";
  r ~name:"memory.invoke_mut" ~arity:(-1) ~pattern:Opaque
    ~description:"destination-passing call of a primitive";
  r ~name:"memory.kill" ~arity:1 ~pattern:Opaque ~description:"free a tensor early";
  r ~name:"memory.invoke_shape_func" ~arity:(-1) ~pattern:Opaque
    ~description:"invoke the shape function of a primitive"
