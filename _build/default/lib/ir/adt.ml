(** Algebraic data type definitions (monomorphic).

    Dynamic data structures in the paper's models — the token list consumed
    by the LSTM, the tree consumed by the Tree-LSTM — are encoded as ADTs.
    Each constructor carries a dense integer [tag] used by the VM's
    [AllocADT]/[GetTag] instructions. *)

type ctor = {
  ctor_name : string;
  tag : int;
  adt_name : string;
  arg_tys : Ty.t list;
}

type def = { name : string; ctors : ctor list }

let define ~name ctor_specs =
  let ctors =
    List.mapi
      (fun tag (ctor_name, arg_tys) -> { ctor_name; tag; adt_name = name; arg_tys })
      ctor_specs
  in
  { name; ctors }

let find_ctor def name = List.find_opt (fun c -> String.equal c.ctor_name name) def.ctors

let ctor_exn def name =
  match find_ctor def name with
  | Some c -> c
  | None -> Fmt.invalid_arg "Adt.ctor_exn: no constructor %s in %s" name def.name

let ctor_by_tag def tag = List.find_opt (fun c -> c.tag = tag) def.ctors

let equal_ctor a b =
  String.equal a.ctor_name b.ctor_name && String.equal a.adt_name b.adt_name

let pp_ctor ppf c = Fmt.pf ppf "%s.%s" c.adt_name c.ctor_name

let pp ppf def =
  let pp_one ppf c =
    Fmt.pf ppf "| %s(%a)" c.ctor_name Fmt.(list ~sep:(any ", ") Ty.pp) c.arg_tys
  in
  Fmt.pf ppf "type %s = %a" def.name Fmt.(list ~sep:(any " ") pp_one) def.ctors

(** The list-of-tensors ADT used by the LSTM model: a sequence whose length
    is only known at runtime (dynamic control flow driver). *)
let tensor_list ~elem_ty =
  define ~name:"TensorList"
    [ ("Nil", []); ("Cons", [ elem_ty; Ty.Adt "TensorList" ]) ]

(** The binary-tree ADT used by the Tree-LSTM model. *)
let tensor_tree ~leaf_ty =
  define ~name:"TensorTree"
    [
      ("Leaf", [ leaf_ty ]);
      ("Node", [ Ty.Adt "TensorTree"; Ty.Adt "TensorTree" ]);
    ]
