lib/ir/ty.ml: Array Dim Dtype Fmt List Nimble_tensor Shape String
