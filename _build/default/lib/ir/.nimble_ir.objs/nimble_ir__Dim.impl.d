lib/ir/dim.ml: Fmt
