lib/ir/expr.ml: Adt Attrs Dtype Fmt Hashtbl Int List Nimble_tensor Set Shape Tensor Ty
