lib/ir/adt.ml: Fmt List String Ty
