lib/ir/text_format.ml: Adt Array Attrs Dim Dtype Expr Fmt Hashtbl Irmod List Nimble_tensor Op Rng Shape String Tensor Ty
