lib/ir/op.ml: Fmt Hashtbl
