lib/ir/text_format.mli: Format Irmod
