lib/ir/attrs.ml: Fmt List
