lib/ir/irmod.ml: Adt Expr Fmt Hashtbl List
