(** Textual format for Nimble IR modules — the parser/printer pair that
    plays the role of the paper's framework frontends.

    {[
      type TensorList = Nil() | Cons(Tensor[(1, ?), f32], TensorList)

      def @main(%x: Tensor[(?, 16), f32]) {
        let %h = dense(%x, randn[(8, 16), seed=3]);
        relu(%h)
      }
    ]}

    Surface syntax: [let %v = e; e], [if (c) { e } else { e }],
    [match (e) { | Ctor(%a, %b) => { e } ... }], [fn (%p: ty) { e }],
    tuples [(e, e)], projection [e.0], operator / [@global] / constructor
    calls with optional [{k=v}] attributes, [-- line comments], and tensor
    literals: scalars, [zeros[(d,...), dt]], [ones[...]],
    [randn[..., seed=n]], and the lossless dense form
    [tensor[(d,...), dt; v, v, ...]] the printer emits for arbitrary data. *)

exception Parse_error of string

(** Parse a textual module.
    @raise Parse_error with a descriptive message on malformed input. *)
val parse_module : string -> Irmod.t

(** Print a module in the same format; [parse_module] of the output yields
    an equivalent module (fresh variable ids aside). Function-typed or
    unannotated parameters cannot be printed. *)
val print_module : Format.formatter -> Irmod.t -> unit

val module_to_string : Irmod.t -> string
