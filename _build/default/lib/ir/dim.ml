(** Compile-time tensor dimensions.

    [Static n] is a known extent; [Any] is the paper's statically-unknown
    dimension (§4.1); [Sym id] is an [Any] that type inference has proven
    equal to other occurrences with the same [id] — the "identical Any"
    analysis that enables shape-specialized codegen. *)

type t =
  | Static of int
  | Any
  | Sym of int

let static n =
  if n < 0 then invalid_arg "Dim.static: negative extent";
  Static n

let is_static = function Static _ -> true | Any | Sym _ -> false
let is_dynamic d = not (is_static d)

let equal a b =
  match (a, b) with
  | Static x, Static y -> x = y
  | Any, Any -> true
  | Sym x, Sym y -> x = y
  | (Static _ | Any | Sym _), _ -> false

(** Whether a runtime extent [n] is admissible for this dimension — the
    gradual-typing residual check. *)
let admits d n =
  match d with
  | Static m -> m = n
  | Any | Sym _ -> n >= 0

let pp ppf = function
  | Static n -> Fmt.int ppf n
  | Any -> Fmt.string ppf "?"
  | Sym id -> Fmt.pf ppf "s%d" id

let to_string d = Fmt.str "%a" pp d

(* Fresh symbolic ids, used by the sub-shaping analysis and by shape-function
   insertion. *)
let sym_counter = ref 0

let fresh_sym () =
  incr sym_counter;
  Sym !sym_counter

(** Broadcast relation for one dimension pair (paper §4.1):
    - [broadcast Any (Static 1)] is [Any]
    - [broadcast Any (Static d)] is [Static d] when [d > 1]
    - [broadcast Any Any] is [Any]. *)
let broadcast a b =
  match (a, b) with
  | Static 1, d | d, Static 1 -> Some d
  | Static x, Static y -> if x = y then Some (Static x) else None
  | Sym x, Sym y when x = y -> Some (Sym x)
  | (Any | Sym _), Static d | Static d, (Any | Sym _) ->
      (* d > 1 here (the d = 1 case matched above): the output must be d; the
         residual check that the dynamic side is 1 or d happens at runtime. *)
      Some (Static d)
  | (Any | Sym _), (Any | Sym _) -> Some Any

(** Try to add two dims statically (used by concat relations). *)
let add a b =
  match (a, b) with
  | Static x, Static y -> Static (x + y)
  | _, _ -> Any

let mul a b =
  match (a, b) with
  | Static x, Static y -> Static (x * y)
  | Static 0, _ | _, Static 0 -> Static 0
  | _, _ -> Any
