(** Attribute maps attached to operator calls and functions (like Relay's
    call attrs): static configuration such as a reshape target, a concat
    axis, a convolution stride, or a device annotation. *)

type value =
  | Int of int
  | Float of float
  | Bool of bool
  | Str of string
  | Ints of int list

type t = (string * value) list

let empty : t = []
let is_empty (t : t) = t = []

let find (t : t) key = List.assoc_opt key t

let find_int t key =
  match find t key with Some (Int i) -> Some i | _ -> None

let find_float t key =
  match find t key with Some (Float f) -> Some f | _ -> None

let find_bool t key =
  match find t key with Some (Bool b) -> Some b | _ -> None

let find_str t key =
  match find t key with Some (Str s) -> Some s | _ -> None

let find_ints t key =
  match find t key with Some (Ints l) -> Some l | _ -> None

let get_int ?default t key =
  match (find_int t key, default) with
  | Some i, _ -> i
  | None, Some d -> d
  | None, None -> Fmt.invalid_arg "Attrs.get_int: missing %s" key

let get_float ?default t key =
  match (find_float t key, default) with
  | Some f, _ -> f
  | None, Some d -> d
  | None, None -> Fmt.invalid_arg "Attrs.get_float: missing %s" key

let get_bool ?(default = false) t key =
  match find_bool t key with Some b -> b | None -> default

let get_ints ?default t key =
  match (find_ints t key, default) with
  | Some l, _ -> l
  | None, Some d -> d
  | None, None -> Fmt.invalid_arg "Attrs.get_ints: missing %s" key

let set (t : t) key v : t = (key, v) :: List.remove_assoc key t

let pp_value ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Bool b -> Fmt.bool ppf b
  | Str s -> Fmt.pf ppf "%S" s
  | Ints l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") int) l

let pp ppf (t : t) =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string pp_value))
    t
