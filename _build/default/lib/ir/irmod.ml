(** An IR module: named global functions plus ADT definitions.

    The unit of compilation — Nimble compiles one module into one VM
    executable. "main" is the conventional entry point. *)

type t = {
  funcs : (string, Expr.fn) Hashtbl.t;
  adts : (string, Adt.def) Hashtbl.t;
  mutable func_order : string list;  (** insertion order, for stable output *)
}

let create () = { funcs = Hashtbl.create 8; adts = Hashtbl.create 4; func_order = [] }

let add_func t name fn =
  if not (Hashtbl.mem t.funcs name) then t.func_order <- t.func_order @ [ name ];
  Hashtbl.replace t.funcs name fn

let find_func t name = Hashtbl.find_opt t.funcs name

let func_exn t name =
  match find_func t name with
  | Some f -> f
  | None -> Fmt.invalid_arg "Irmod.func_exn: no function %s" name

let add_adt t (def : Adt.def) = Hashtbl.replace t.adts def.name def

let find_adt t name = Hashtbl.find_opt t.adts name

let adt_exn t name =
  match find_adt t name with
  | Some d -> d
  | None -> Fmt.invalid_arg "Irmod.adt_exn: no ADT %s" name

let functions t = List.map (fun name -> (name, Hashtbl.find t.funcs name)) t.func_order

let adts t = Hashtbl.fold (fun _ d acc -> d :: acc) t.adts []

(** Build a module whose "main" is a single function. *)
let of_main ?(adts = []) fn =
  let t = create () in
  List.iter (add_adt t) adts;
  add_func t "main" fn;
  t

(** Map every function body (e.g. to run a pass module-wide). *)
let map_funcs t f =
  List.iter
    (fun (name, fn) -> Hashtbl.replace t.funcs name (f name fn))
    (functions t)

let pp ppf t =
  List.iter (fun d -> Fmt.pf ppf "%a@." Adt.pp d) (adts t);
  List.iter
    (fun (name, fn) -> Fmt.pf ppf "def @@%s %a@." name Expr.pp (Expr.Fn fn))
    (functions t)

let to_string t = Fmt.str "%a" pp t
