(** Textual format for Nimble IR modules: a parser and a printer that
    round-trip, playing the role of the paper's framework frontends — models
    can be written, stored and loaded as text.

    {[
      type TensorList = Nil() | Cons(Tensor[(1, ?), f32], TensorList)

      def @main(%x: Tensor[(?, 16), f32]) {
        let %h = dense(%x, randn[(8, 16), seed=3]);
        let %b = relu(%h);
        concat(%h, %b) {axis=1}
      }
    ]}

    Expressions: [let %v = e; e], [if (c) { e } else { e }],
    [match (e) { | Ctor(%a, %b) => { e } ... }], [fn (%p: ty) { e }],
    tuple [(e, e)], projection [e.0], op/global/constructor calls with
    optional [{k=v, ...}] attributes, scalar literals, and tensor literals
    [zeros[(d,...)]], [ones[...]], [randn[..., seed=n]]. *)

open Nimble_tensor

exception Parse_error of string

let err fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ================================================================== *)
(* Lexer                                                               *)
(* ================================================================== *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | LIDENT of string  (** lowercase identifier *)
  | UIDENT of string  (** capitalized identifier *)
  | VAR of string  (** %name *)
  | GLOBAL of string  (** @name *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI | COLON | EQUALS | BAR | DOT | QUESTION
  | ARROW  (** -> *)
  | FATARROW  (** => *)
  | EOF

let pp_token ppf = function
  | INT i -> Fmt.pf ppf "int %d" i
  | FLOAT f -> Fmt.pf ppf "float %g" f
  | STRING s -> Fmt.pf ppf "string %S" s
  | LIDENT s -> Fmt.pf ppf "ident %s" s
  | UIDENT s -> Fmt.pf ppf "Ident %s" s
  | VAR s -> Fmt.pf ppf "%%%s" s
  | GLOBAL s -> Fmt.pf ppf "@%s" s
  | LPAREN -> Fmt.string ppf "(" | RPAREN -> Fmt.string ppf ")"
  | LBRACE -> Fmt.string ppf "{" | RBRACE -> Fmt.string ppf "}"
  | LBRACKET -> Fmt.string ppf "[" | RBRACKET -> Fmt.string ppf "]"
  | COMMA -> Fmt.string ppf "," | SEMI -> Fmt.string ppf ";"
  | COLON -> Fmt.string ppf ":" | EQUALS -> Fmt.string ppf "="
  | BAR -> Fmt.string ppf "|" | DOT -> Fmt.string ppf "."
  | QUESTION -> Fmt.string ppf "?"
  | ARROW -> Fmt.string ppf "->" | FATARROW -> Fmt.string ppf "=>"
  | EOF -> Fmt.string ppf "<eof>"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let read_while pred start =
    let j = ref start in
    while !j < n && pred src.[!j] do incr j done;
    let s = String.sub src start (!j - start) in
    i := !j;
    s
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && peek 1 = Some '-' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '-' && peek 1 = Some '>' then begin
      emit ARROW;
      i := !i + 2
    end
    else if c = '=' && peek 1 = Some '>' then begin
      emit FATARROW;
      i := !i + 2
    end
    else if c = '%' then begin
      incr i;
      emit (VAR (read_while is_ident_char !i))
    end
    else if c = '@' then begin
      incr i;
      emit (GLOBAL (read_while is_ident_char !i))
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && src.[!i] <> '"' do incr i done;
      if !i >= n then err "unterminated string literal";
      emit (STRING (String.sub src start (!i - start)));
      incr i
    end
    else if (c >= '0' && c <= '9') || (c = '-' && (match peek 1 with Some d -> d >= '0' && d <= '9' | None -> false)) then begin
      let start = !i in
      if c = '-' then incr i;
      let _ = read_while (fun ch -> (ch >= '0' && ch <= '9') || ch = '.' || ch = 'e' || ch = 'E' || ch = '-' || ch = '+') !i in
      let lit = String.sub src start (!i - start) in
      if String.contains lit '.' || String.contains lit 'e' || String.contains lit 'E'
      then emit (FLOAT (float_of_string lit))
      else emit (INT (int_of_string lit))
    end
    else if (c >= 'a' && c <= 'z') || c = '_' then
      emit (LIDENT (read_while is_ident_char !i))
    else if c >= 'A' && c <= 'Z' then
      let word = read_while is_ident_char !i in
      if word = "Tensor" || word = "Storage" then emit (UIDENT word)
      else emit (UIDENT word)
    else begin
      (match c with
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | '{' -> emit LBRACE
      | '}' -> emit RBRACE
      | '[' -> emit LBRACKET
      | ']' -> emit RBRACKET
      | ',' -> emit COMMA
      | ';' -> emit SEMI
      | ':' -> emit COLON
      | '=' -> emit EQUALS
      | '|' -> emit BAR
      | '.' -> emit DOT
      | '?' -> emit QUESTION
      | c -> err "unexpected character %C" c);
      incr i
    end
  done;
  List.rev (EOF :: !toks)

(* ================================================================== *)
(* Parser                                                              *)
(* ================================================================== *)

type parser_state = {
  mutable toks : token list;
  mutable vars : (string * Expr.var) list;  (** in-scope name -> var *)
  adts : (string, Adt.def) Hashtbl.t;
}

let current p = match p.toks with t :: _ -> t | [] -> EOF

let advance p = match p.toks with _ :: rest -> p.toks <- rest | [] -> ()

let expect p t =
  if current p = t then advance p
  else err "expected %a, found %a" pp_token t pp_token (current p)

let parse_lident p =
  match current p with
  | LIDENT s -> advance p; s
  | t -> err "expected identifier, found %a" pp_token t

let parse_int p =
  match current p with
  | INT v -> advance p; v
  | t -> err "expected integer, found %a" pp_token t

let dtype_of_name = function
  | "f32" -> Dtype.F32
  | "f64" -> Dtype.F64
  | "i32" -> Dtype.I32
  | "i64" -> Dtype.I64
  | "u8" -> Dtype.U8
  | s -> err "unknown dtype %s" s

let dtype_name = function
  | Dtype.F32 -> "f32"
  | Dtype.F64 -> "f64"
  | Dtype.I32 -> "i32"
  | Dtype.I64 -> "i64"
  | Dtype.U8 -> "u8"

(* --------------------------- types --------------------------- *)

let rec parse_ty p : Ty.t =
  match current p with
  | UIDENT "Tensor" ->
      advance p;
      expect p LBRACKET;
      expect p LPAREN;
      let dims = ref [] in
      while current p <> RPAREN do
        (match current p with
        | INT v -> advance p; dims := Dim.static v :: !dims
        | QUESTION -> advance p; dims := Dim.Any :: !dims
        | t -> err "expected dimension, found %a" pp_token t);
        if current p = COMMA then advance p
      done;
      expect p RPAREN;
      expect p COMMA;
      let dt = dtype_of_name (parse_lident p) in
      expect p RBRACKET;
      Ty.Tensor { dims = Array.of_list (List.rev !dims); dtype = dt }
  | UIDENT "Storage" -> advance p; Ty.Storage
  | UIDENT name -> advance p; Ty.Adt name
  | LPAREN ->
      advance p;
      let tys = ref [] in
      while current p <> RPAREN do
        tys := parse_ty p :: !tys;
        if current p = COMMA then advance p
      done;
      expect p RPAREN;
      Ty.Tuple (List.rev !tys)
  | t -> err "expected a type, found %a" pp_token t

(* --------------------------- attrs --------------------------- *)

let parse_attr_value p : Attrs.value =
  match current p with
  | INT v -> advance p; Attrs.Int v
  | FLOAT v -> advance p; Attrs.Float v
  | STRING s -> advance p; Attrs.Str s
  | LIDENT "true" -> advance p; Attrs.Bool true
  | LIDENT "false" -> advance p; Attrs.Bool false
  | LBRACKET ->
      advance p;
      let vs = ref [] in
      while current p <> RBRACKET do
        vs := parse_int p :: !vs;
        if current p = COMMA then advance p
      done;
      expect p RBRACKET;
      Attrs.Ints (List.rev !vs)
  | t -> err "expected attribute value, found %a" pp_token t

let parse_attrs p : Attrs.t =
  if current p <> LBRACE then Attrs.empty
  else begin
    advance p;
    let attrs = ref [] in
    while current p <> RBRACE do
      let key = parse_lident p in
      expect p EQUALS;
      let v = parse_attr_value p in
      attrs := (key, v) :: !attrs;
      if current p = COMMA then advance p
    done;
    expect p RBRACE;
    List.rev !attrs
  end

(* --------------------------- tensor literals --------------------------- *)

(* zeros[(2, 3)] | ones[(2, 3), f32] | randn[(2, 3), seed=7] *)
let parse_tensor_literal p kind : Tensor.t =
  expect p LBRACKET;
  expect p LPAREN;
  let dims = ref [] in
  while current p <> RPAREN do
    dims := parse_int p :: !dims;
    if current p = COMMA then advance p
  done;
  expect p RPAREN;
  let shape = Array.of_list (List.rev !dims) in
  let dtype = ref Dtype.F32 in
  let seed = ref 0 in
  while current p = COMMA do
    advance p;
    match current p with
    | LIDENT "seed" ->
        advance p;
        expect p EQUALS;
        seed := parse_int p
    | LIDENT dt -> advance p; dtype := dtype_of_name dt
    | t -> err "expected dtype or seed=, found %a" pp_token t
  done;
  expect p RBRACKET;
  match kind with
  | `Zeros -> Tensor.zeros ~dtype:!dtype shape
  | `Ones -> Tensor.ones ~dtype:!dtype shape
  | `Randn -> Tensor.randn ~dtype:!dtype (Rng.create ~seed:!seed) shape

(* tensor[(d, ...), dtype; v, v, ...] — the lossless dense literal the
   printer emits for arbitrary constants *)
let parse_dense_literal p : Tensor.t =
  expect p LBRACKET;
  expect p LPAREN;
  let dims = ref [] in
  while current p <> RPAREN do
    dims := parse_int p :: !dims;
    if current p = COMMA then advance p
  done;
  expect p RPAREN;
  expect p COMMA;
  let dtype = dtype_of_name (parse_lident p) in
  let shape = Array.of_list (List.rev !dims) in
  expect p SEMI;
  let vals = ref [] in
  let parse_num () =
    match current p with
    | FLOAT v -> advance p; v
    | INT v -> advance p; float_of_int v
    | t -> err "expected a number in tensor literal, found %a" pp_token t
  in
  while current p <> RBRACKET do
    vals := parse_num () :: !vals;
    if current p = COMMA then advance p
  done;
  expect p RBRACKET;
  Tensor.of_float_array ~dtype shape (Array.of_list (List.rev !vals))

(* --------------------------- expressions --------------------------- *)

let lookup_var p name =
  match List.assoc_opt name p.vars with
  | Some v -> v
  | None -> err "unbound variable %%%s" name

let lookup_ctor p name =
  let found = ref None in
  Hashtbl.iter
    (fun _ def -> match Adt.find_ctor def name with Some c -> found := Some c | None -> ())
    p.adts;
  match !found with Some c -> c | None -> err "unknown constructor %s" name

let rec parse_expr p : Expr.t =
  match current p with
  | LIDENT "let" ->
      advance p;
      let name = match current p with VAR s -> advance p; s | t -> err "expected %%var, found %a" pp_token t in
      (* optional annotation *)
      let ty = if current p = COLON then (advance p; Some (parse_ty p)) else None in
      expect p EQUALS;
      let bound = parse_expr p in
      expect p SEMI;
      let v = Expr.fresh_var ?ty name in
      let saved = p.vars in
      p.vars <- (name, v) :: p.vars;
      let body = parse_expr p in
      p.vars <- saved;
      Expr.Let (v, bound, body)
  | LIDENT "if" ->
      advance p;
      expect p LPAREN;
      let c = parse_expr p in
      expect p RPAREN;
      expect p LBRACE;
      let t = parse_expr p in
      expect p RBRACE;
      expect p (LIDENT "else");
      expect p LBRACE;
      let f = parse_expr p in
      expect p RBRACE;
      Expr.If (c, t, f)
  | LIDENT "match" ->
      advance p;
      expect p LPAREN;
      let scrut = parse_expr p in
      expect p RPAREN;
      expect p LBRACE;
      let clauses = ref [] in
      while current p = BAR do
        advance p;
        let pat = parse_pattern p in
        expect p FATARROW;
        expect p LBRACE;
        let saved = p.vars in
        List.iter (fun (v : Expr.var) -> p.vars <- (v.Expr.vname, v) :: p.vars) (Expr.pat_vars pat);
        let rhs = parse_expr p in
        p.vars <- saved;
        expect p RBRACE;
        clauses := { Expr.pat; rhs } :: !clauses
      done;
      expect p RBRACE;
      Expr.Match (scrut, List.rev !clauses)
  | LIDENT "fn" ->
      advance p;
      expect p LPAREN;
      let params = parse_params p in
      expect p RPAREN;
      expect p LBRACE;
      let saved = p.vars in
      List.iter (fun (v : Expr.var) -> p.vars <- (v.Expr.vname, v) :: p.vars) params;
      let body = parse_expr p in
      p.vars <- saved;
      expect p RBRACE;
      Expr.fn params body
  | _ -> parse_postfix p

and parse_params p : Expr.var list =
  let params = ref [] in
  while current p <> RPAREN do
    (match current p with
    | VAR name ->
        advance p;
        expect p COLON;
        let ty = parse_ty p in
        params := Expr.fresh_var ~ty name :: !params
    | t -> err "expected %%param, found %a" pp_token t);
    if current p = COMMA then advance p
  done;
  List.rev !params

and parse_pattern p : Expr.pat =
  match current p with
  | LIDENT "_" -> advance p; Expr.Pwild
  | VAR name -> advance p; Expr.Pvar (Expr.fresh_var name)
  | UIDENT cname ->
      advance p;
      let ctor = lookup_ctor p cname in
      expect p LPAREN;
      let pats = ref [] in
      while current p <> RPAREN do
        pats := parse_pattern p :: !pats;
        if current p = COMMA then advance p
      done;
      expect p RPAREN;
      Expr.Pctor (ctor, List.rev !pats)
  | t -> err "expected a pattern, found %a" pp_token t

and parse_postfix p : Expr.t =
  let e = ref (parse_atom p) in
  while current p = DOT do
    advance p;
    let i = parse_int p in
    e := Expr.Proj (!e, i)
  done;
  !e

and parse_call_args p : Expr.t list =
  expect p LPAREN;
  let args = ref [] in
  while current p <> RPAREN do
    args := parse_expr p :: !args;
    if current p = COMMA then advance p
  done;
  expect p RPAREN;
  List.rev !args

and parse_atom p : Expr.t =
  match current p with
  | VAR name ->
      advance p;
      let v = lookup_var p name in
      if current p = LPAREN then
        (* closure call *)
        Expr.call (Expr.Var v) (parse_call_args p)
      else Expr.Var v
  | GLOBAL name ->
      advance p;
      if current p = LPAREN then Expr.call (Expr.Global name) (parse_call_args p)
      else Expr.Global name
  | FLOAT v -> advance p; Expr.const_scalar v
  | INT v -> advance p; Expr.const_scalar (float_of_int v)
  | LIDENT "tensor" -> advance p; Expr.Const (parse_dense_literal p)
  | LIDENT "zeros" -> advance p; Expr.Const (parse_tensor_literal p `Zeros)
  | LIDENT "ones" -> advance p; Expr.Const (parse_tensor_literal p `Ones)
  | LIDENT "randn" -> advance p; Expr.Const (parse_tensor_literal p `Randn)
  | LIDENT op_name when Op.exists op_name ->
      advance p;
      let args = parse_call_args p in
      let attrs = parse_attrs p in
      Expr.op_call ~attrs op_name args
  | UIDENT cname ->
      advance p;
      let ctor = lookup_ctor p cname in
      Expr.ctor_call ctor (parse_call_args p)
  | LPAREN ->
      advance p;
      let first = parse_expr p in
      if current p = RPAREN then begin
        advance p;
        first
      end
      else begin
        let es = ref [ first ] in
        while current p = COMMA do
          advance p;
          es := parse_expr p :: !es
        done;
        expect p RPAREN;
        Expr.Tuple (List.rev !es)
      end
  | t -> err "expected an expression, found %a" pp_token t

(* --------------------------- top level --------------------------- *)

let parse_adt_def p : Adt.def =
  expect p (LIDENT "type");
  let name = match current p with UIDENT s -> advance p; s | t -> err "expected type name, found %a" pp_token t in
  expect p EQUALS;
  let ctors = ref [] in
  let parse_ctor () =
    let cname = match current p with UIDENT s -> advance p; s | t -> err "expected constructor, found %a" pp_token t in
    expect p LPAREN;
    let tys = ref [] in
    while current p <> RPAREN do
      tys := parse_ty p :: !tys;
      if current p = COMMA then advance p
    done;
    expect p RPAREN;
    ctors := (cname, List.rev !tys) :: !ctors
  in
  parse_ctor ();
  while current p = BAR do
    advance p;
    parse_ctor ()
  done;
  Adt.define ~name (List.rev !ctors)

let parse_fun_def p : string * Expr.fn =
  expect p (LIDENT "def");
  let name = match current p with GLOBAL s -> advance p; s | t -> err "expected @name, found %a" pp_token t in
  expect p LPAREN;
  let params = parse_params p in
  expect p RPAREN;
  let ret_ty = if current p = ARROW then (advance p; Some (parse_ty p)) else None in
  expect p LBRACE;
  let saved = p.vars in
  List.iter (fun (v : Expr.var) -> p.vars <- (v.Expr.vname, v) :: p.vars) params;
  let body = parse_expr p in
  p.vars <- saved;
  expect p RBRACE;
  (name, Expr.fn_def ?ret_ty params body)

(** Parse a textual module. *)
let parse_module (src : string) : Irmod.t =
  let p = { toks = tokenize src; vars = []; adts = Hashtbl.create 4 } in
  let m = Irmod.create () in
  let rec go () =
    match current p with
    | EOF -> ()
    | LIDENT "type" ->
        let def = parse_adt_def p in
        Hashtbl.replace p.adts def.Adt.name def;
        Irmod.add_adt m def;
        go ()
    | LIDENT "def" ->
        let name, fn = parse_fun_def p in
        Irmod.add_func m name fn;
        go ()
    | t -> err "expected 'type' or 'def' at top level, found %a" pp_token t
  in
  go ();
  m

(* ================================================================== *)
(* Printer (emits the same format; constants print as literals when    *)
(* recognizable, otherwise as inline data via zeros + note)            *)
(* ================================================================== *)

let print_dim ppf = function
  | Dim.Static n -> Fmt.int ppf n
  | Dim.Any | Dim.Sym _ -> Fmt.string ppf "?"

let rec print_ty ppf = function
  | Ty.Tensor { dims; dtype } ->
      Fmt.pf ppf "Tensor[(%a), %s]" Fmt.(array ~sep:(any ", ") print_dim) dims
        (dtype_name dtype)
  | Ty.Tuple ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") print_ty) ts
  | Ty.Adt name -> Fmt.string ppf name
  | Ty.Storage -> Fmt.string ppf "Storage"
  | Ty.Func _ | Ty.Var _ -> err "cannot print function or inference types"

let var_name (v : Expr.var) = Fmt.str "%s_%d" v.Expr.vname v.Expr.vid

(* Constants are printed as literals when they are recognizably uniform;
   arbitrary data falls back to zeros with a comment (lossy — weights should
   be attached programmatically or via the serialized executable). *)
let print_const ppf (t : Tensor.t) =
  let shape = Tensor.shape t in
  if Tensor.numel t = 1 && Shape.rank shape = 0 then
    Fmt.pf ppf "%.17g" (Tensor.item t)
  else
    let v0 = if Tensor.numel t > 0 then Tensor.get_float t 0 else 0.0 in
    let uniform =
      let ok = ref true in
      for i = 0 to Tensor.numel t - 1 do
        if Tensor.get_float t i <> v0 then ok := false
      done;
      !ok
    in
    let dims = Fmt.str "(%a)" Fmt.(array ~sep:(any ", ") int) shape in
    if uniform && v0 = 0.0 then Fmt.pf ppf "zeros[%s, %s]" dims (dtype_name (Tensor.dtype t))
    else if uniform && v0 = 1.0 then Fmt.pf ppf "ones[%s, %s]" dims (dtype_name (Tensor.dtype t))
    else begin
      (* lossless dense literal *)
      Fmt.pf ppf "tensor[%s, %s;" dims (dtype_name (Tensor.dtype t));
      for i = 0 to Tensor.numel t - 1 do
        if i > 0 then Fmt.pf ppf ",";
        Fmt.pf ppf " %.17g" (Tensor.get_float t i)
      done;
      Fmt.pf ppf "]"
    end

let rec print_expr ppf (e : Expr.t) =
  match e with
  | Expr.Var v -> Fmt.pf ppf "%%%s" (var_name v)
  | Expr.Global g -> Fmt.pf ppf "@%s" g
  | Expr.Op o -> Fmt.string ppf o
  | Expr.Ctor c -> Fmt.pf ppf "%s" c.Adt.ctor_name
  | Expr.Const t -> print_const ppf t
  | Expr.Tuple es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") print_expr) es
  | Expr.Proj (e1, i) -> Fmt.pf ppf "%a.%d" print_expr e1 i
  | Expr.Call { callee = Expr.Op name; args; attrs } ->
      Fmt.pf ppf "%s(%a)%a" name Fmt.(list ~sep:(any ", ") print_expr) args print_attrs attrs
  | Expr.Call { callee = Expr.Ctor c; args; _ } ->
      Fmt.pf ppf "%s(%a)" c.Adt.ctor_name Fmt.(list ~sep:(any ", ") print_expr) args
  | Expr.Call { callee = Expr.Global g; args; _ } ->
      Fmt.pf ppf "@%s(%a)" g Fmt.(list ~sep:(any ", ") print_expr) args
  | Expr.Call { callee; args; _ } ->
      Fmt.pf ppf "%a(%a)" print_expr callee Fmt.(list ~sep:(any ", ") print_expr) args
  | Expr.Fn fn ->
      Fmt.pf ppf "fn (%a) {@;<1 2>@[<v>%a@]@ }" print_params fn.Expr.params print_expr
        fn.Expr.body
  | Expr.Let (v, bound, body) ->
      Fmt.pf ppf "@[<v>let %%%s = %a;@ %a@]" (var_name v) print_expr bound print_expr body
  | Expr.If (c, t, f) ->
      Fmt.pf ppf "@[<v>if (%a) {@;<1 2>@[<v>%a@]@ } else {@;<1 2>@[<v>%a@]@ }@]"
        print_expr c print_expr t print_expr f
  | Expr.Match (scrut, clauses) ->
      let pp_clause ppf { Expr.pat; rhs } =
        Fmt.pf ppf "| %a => {@;<1 2>@[<v>%a@]@ }" print_pat pat print_expr rhs
      in
      Fmt.pf ppf "@[<v>match (%a) {@ %a@ }@]" print_expr scrut
        Fmt.(list ~sep:(any "@ ") pp_clause)
        clauses

and print_pat ppf = function
  | Expr.Pwild -> Fmt.string ppf "_"
  | Expr.Pvar v -> Fmt.pf ppf "%%%s" (var_name v)
  | Expr.Pctor (c, ps) ->
      Fmt.pf ppf "%s(%a)" c.Adt.ctor_name Fmt.(list ~sep:(any ", ") print_pat) ps

and print_params ppf params =
  Fmt.(list ~sep:(any ", "))
    (fun ppf (v : Expr.var) ->
      match v.Expr.vty with
      | Some ty -> Fmt.pf ppf "%%%s: %a" (var_name v) print_ty ty
      | None -> err "cannot print unannotated parameter %%%s" v.Expr.vname)
    ppf params

and print_attrs ppf (attrs : Attrs.t) =
  if attrs = [] then ()
  else
    let pp_v ppf = function
      | Attrs.Int i -> Fmt.int ppf i
      | Attrs.Float f -> Fmt.pf ppf "%.17g" f
      | Attrs.Bool b -> Fmt.bool ppf b
      | Attrs.Str s -> Fmt.pf ppf "%S" s
      | Attrs.Ints l -> Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ", ") int) l
    in
    Fmt.pf ppf " {%a}"
      Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string pp_v))
      attrs

let print_adt ppf (def : Adt.def) =
  let pp_ctor ppf (c : Adt.ctor) =
    Fmt.pf ppf "%s(%a)" c.Adt.ctor_name Fmt.(list ~sep:(any ", ") print_ty) c.Adt.arg_tys
  in
  Fmt.pf ppf "type %s = %a" def.Adt.name Fmt.(list ~sep:(any " | ") pp_ctor) def.Adt.ctors

(** Print a module in the textual format. *)
let print_module ppf (m : Irmod.t) =
  List.iter (fun def -> Fmt.pf ppf "%a@.@." print_adt def) (Irmod.adts m);
  List.iter
    (fun (name, (fn : Expr.fn)) ->
      match fn.Expr.ret_ty with
      | Some ret ->
          Fmt.pf ppf "@[<v>def @@%s(%a) -> %a {@;<1 2>@[<v>%a@]@ }@]@.@." name
            print_params fn.Expr.params print_ty ret print_expr fn.Expr.body
      | None ->
          Fmt.pf ppf "@[<v>def @@%s(%a) {@;<1 2>@[<v>%a@]@ }@]@.@." name print_params
            fn.Expr.params print_expr fn.Expr.body)
    (Irmod.functions m)

let module_to_string m = Fmt.str "%a" print_module m
