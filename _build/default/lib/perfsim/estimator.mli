(** Trace-driven latency estimation.

    Executors run for real and report kernel executions and framework
    actions to {!Nimble_codegen.Trace}; this module prices a recorded trace
    under a (platform, framework) pair: kernels with the platform roofline
    scaled by the framework's library quality, framework events with the
    calibrated cost table, transfers with the bus model, with host work
    partially hidden behind device execution on GPUs. *)

type breakdown = {
  kernel_s : float;  (** roofline kernel time *)
  launch_s : float;  (** kernel-launch overhead *)
  host_s : float;  (** framework/host bookkeeping (before overlap) *)
  transfer_s : float;  (** host<->device transfers *)
  kernels : int;
  events : (string * int) list;  (** framework event histogram *)
}

(** End-to-end latency: kernels + transfers + non-overlapped host work. *)
val total : Platform.t -> Framework.t -> breakdown -> float

(** [record f] runs [f ()] capturing its trace events, so one real execution
    can be priced under every platform. *)
val record : (unit -> 'a) -> 'a * Nimble_codegen.Trace.event list

(** Price a recorded trace. [launch_per_op] charges one kernel launch per
    operator execution (frameworks launch unfused ops one by one; the
    Nimble VM reports its launches as explicit [vm_kernel_launch] events
    instead). *)
val price :
  platform:Platform.t ->
  framework:Framework.t ->
  ?launch_per_op:bool ->
  Nimble_codegen.Trace.event list ->
  breakdown

(** Run a thunk under the cost model: result + breakdown. *)
val estimate :
  platform:Platform.t ->
  framework:Framework.t ->
  ?launch_per_op:bool ->
  (unit -> 'a) ->
  'a * breakdown

(** Run a thunk and return its result with the estimated latency (s). *)
val latency :
  platform:Platform.t ->
  framework:Framework.t ->
  ?launch_per_op:bool ->
  (unit -> 'a) ->
  'a * float

val pp_breakdown : Format.formatter -> breakdown -> unit
