(** Framework architecture cost models.

    Each system under test emits named framework events for the host-side
    work its architecture performs; this module prices those events
    (calibrated on the paper's Intel columns of Tables 1-3; other platforms
    scale through {!Platform}) and assigns each framework a per-platform,
    kernel-size-dependent library-quality factor — the paper's observation
    that frameworks lean on vendor libraries that are excellent on
    first-tier platforms and degrade on ARM, worst for small kernels. *)

type t = Nimble | Pytorch | Mxnet | Tensorflow | Tf_fold

val name : t -> string
val all : t list

(** Per-event host cost in seconds (Intel-equivalent); unknown events are
    free. Constants carry per-entry justification in the implementation. *)
val event_cost : string -> float

(** How much slower than the roofline this framework's kernels run on this
    platform, as a function of kernel size. Nimble holds ~1 everywhere (the
    portable-performance claim). *)
val lib_quality : t -> Platform.t -> flops:int -> float

(** Fraction of host-side framework time hidden behind device execution on
    GPU platforms. *)
val gpu_overlap : t -> float
