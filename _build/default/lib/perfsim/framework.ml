(** Framework architecture cost models.

    Each system under test emits named framework events for the host-side
    work its architecture performs per inference (dispatch, graph/trace
    construction, control-flow primitives, recompilation, subgraph executor
    setup, VM instructions). This module prices those events (seconds on the
    Intel host; other platforms scale by [Platform.host_speed]) and assigns
    each framework a per-platform *kernel library quality* factor — the
    paper's observation that frameworks lean on vendor libraries (MKL,
    cuDNN) that are excellent on first-tier platforms and poor on ARM,
    while Nimble's generated kernels are portable.

    Event costs are calibrated against the paper's Intel columns (Tables
    1-3) and then *predict* the other columns through the platform models;
    EXPERIMENTS.md records the fit. *)

type t = Nimble | Pytorch | Mxnet | Tensorflow | Tf_fold

let name = function
  | Nimble -> "Nimble"
  | Pytorch -> "PyTorch"
  | Mxnet -> "MXNet"
  | Tensorflow -> "TensorFlow"
  | Tf_fold -> "TF Fold"

let all = [ Nimble; Pytorch; Mxnet; Tensorflow; Tf_fold ]

(** Per-event host cost in seconds (Intel-equivalent). *)
let event_cost = function
  (* --- Nimble VM --- *)
  | "vm_instruction" -> 0.15e-6  (* coarse-grained dispatch loop step *)
  | "vm_kernel_launch" -> 0.0  (* launch priced by the platform model *)
  (* --- PyTorch-like eager --- *)
  | "eager_dispatch" -> 1.8e-6  (* dynamic dispatch through the dispatcher *)
  | "eager_graph_node" -> 0.7e-6  (* per-invocation trace/graph node *)
  | "eager_host_step" -> 18e-6  (* Python-level loop step *)
  | "eager_host_recursion" -> 280e-6
      (* Python-level tree-node recursion: child indexing, per-node module
         calls, state tuples — the cost the paper blames for PyTorch's
         17-20x Tree-LSTM gap *)
  | "eager_loop_setup" -> 4e-6
  (* --- TensorFlow-like graph executor --- *)
  | "graph_node_exec" -> 2.5e-6  (* scheduler dequeue + node execute *)
  | "cf_Enter" | "cf_Merge" | "cf_Switch" | "cf_NextIteration" | "cf_Exit" ->
      38e-6  (* control-flow primitive execution (frames, tags, queues) *)
  (* --- MXNet-like hybrid --- *)
  | "hybrid_dispatch" -> 1.2e-6  (* C++ engine op push *)
  | "hybrid_subgraph_exec" -> 180e-6  (* control-flow op: executor per step *)
  | "hybrid_bind" -> 10e-6  (* per-node executor specialization *)
  (* --- TF Fold --- *)
  | "fold_recompile" -> 90e-6  (* per-node per-input graph rebuild *)
  | "fold_gather" -> 6e-6  (* gather/scatter bookkeeping per node *)
  (* --- static graph executor (TVM-like) --- *)
  | "static_node_exec" -> 0.1e-6
  | _ -> 0.0

(** Kernel-quality factor: how much slower than the roofline this
    framework's kernels run on this platform, as a function of kernel size.
    Nimble generates its own kernels and dispatches to whichever of
    {generated, library} is faster, so it holds quality ~1 everywhere — the
    portable-performance claim. Frameworks match it on platforms with
    first-tier vendor libraries (MKL, cuDNN) and degrade on ARM, where the
    degradation is much worse for small kernels (batch-1 GEMV in an LSTM
    cell) than for large GEMMs (BERT) — the size profile behind the paper's
    per-model ARM ratios. *)
let lib_quality (fw : t) (p : Platform.t) ~flops =
  (* weight of the "small kernel" regime *)
  let small_w = 1.0 -. (float_of_int flops /. (float_of_int flops +. 1e6)) in
  let interp ~large ~small = large +. ((small -. large) *. small_w) in
  match (fw, p.Platform.name) with
  | Nimble, _ -> 1.0
  | Tensorflow, "Intel CPU" -> 1.9 (* paper: TF's BERT kernels trail MKL-path frameworks *)
  | (Pytorch | Mxnet | Tf_fold), "Intel CPU" -> 1.0
  | (Pytorch | Mxnet | Tensorflow | Tf_fold), "Nvidia GPU" -> 1.0
  | Pytorch, "ARM CPU" -> interp ~large:4.5 ~small:14.0
  | Mxnet, "ARM CPU" -> interp ~large:2.8 ~small:40.0
  | Tensorflow, "ARM CPU" -> interp ~large:1.05 ~small:6.0
  | Tf_fold, "ARM CPU" -> interp ~large:4.0 ~small:10.0
  | _, _ -> 1.0

(** Fraction of host-side framework time hidden behind device execution on
    GPU platforms. The paper: Nimble's device placement overlaps nearly all
    bytecode latency with GPU execution; frameworks overlap partially via
    async launch queues. *)
let gpu_overlap = function
  | Nimble -> 0.95
  | Pytorch -> 0.7
  | Mxnet -> 0.7
  | Tensorflow -> 0.1 (* control-flow primitives synchronize with the host *)
  | Tf_fold -> 0.5
