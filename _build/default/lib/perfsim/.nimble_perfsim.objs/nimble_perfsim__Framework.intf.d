lib/perfsim/framework.mli: Platform
