lib/perfsim/estimator.ml: Fmt Framework Hashtbl List Nimble_codegen Option Platform
