lib/perfsim/estimator.mli: Format Framework Nimble_codegen Platform
