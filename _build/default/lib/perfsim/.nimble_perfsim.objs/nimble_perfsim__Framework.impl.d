lib/perfsim/framework.ml: Platform
