lib/perfsim/platform.ml: Float Fmt Stdlib
