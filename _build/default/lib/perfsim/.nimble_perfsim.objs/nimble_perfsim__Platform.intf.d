lib/perfsim/platform.mli: Format
