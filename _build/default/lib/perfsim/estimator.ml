(** Trace-driven latency estimation.

    Runs an executor thunk with a {!Nimble_codegen.Trace} listener
    installed, prices every kernel execution with the platform roofline and
    every framework event with the framework cost table, and returns a
    latency breakdown. The numerics of the thunk are real (its outputs are
    whatever the executor computed); only the clock is modelled. *)

module Trace = Nimble_codegen.Trace

type breakdown = {
  kernel_s : float;  (** roofline kernel time *)
  launch_s : float;  (** kernel-launch overhead *)
  host_s : float;  (** framework/host bookkeeping (before overlap) *)
  transfer_s : float;  (** host<->device transfers *)
  kernels : int;
  events : (string * int) list;  (** framework event histogram *)
}

let total (p : Platform.t) (fw : Framework.t) b =
  (* on GPUs, host-side work — including asynchronous kernel launches —
     overlaps with device execution *)
  let overlap = if p.Platform.is_gpu then Framework.gpu_overlap fw else 0.0 in
  b.kernel_s +. b.transfer_s +. ((1.0 -. overlap) *. (b.host_s +. b.launch_s))

type state = {
  platform : Platform.t;
  framework : Framework.t;
  launch_per_op : bool;
      (** frameworks launch one kernel per op; Nimble's launches arrive as
          explicit [vm_kernel_launch] events from the VM profiler *)
  mutable kernel_s : float;
  mutable launch_s : float;
  mutable host_s : float;
  mutable transfer_s : float;
  mutable kernels : int;
  events : (string, int) Hashtbl.t;
}

let listener st (ev : Trace.event) =
  match ev with
  | Trace.Op_exec { flops; bytes; _ } ->
      let q = Framework.lib_quality st.framework st.platform ~flops in
      st.kernel_s <-
        st.kernel_s +. (q *. Platform.kernel_seconds st.platform ~flops ~bytes);
      st.kernels <- st.kernels + 1;
      if st.launch_per_op then
        st.launch_s <- st.launch_s +. st.platform.Platform.launch_overhead_s
  | Trace.Framework { kind; amount } -> (
      Hashtbl.replace st.events kind
        (amount + Option.value ~default:0 (Hashtbl.find_opt st.events kind));
      match kind with
      | "vm_kernel_launch" ->
          st.launch_s <-
            st.launch_s +. (float_of_int amount *. st.platform.Platform.launch_overhead_s)
      | "vm_transfer_bytes" ->
          st.transfer_s <-
            st.transfer_s +. Platform.transfer_seconds st.platform ~bytes:amount
      | kind ->
          st.host_s <-
            st.host_s
            +. float_of_int amount *. Framework.event_cost kind
               *. st.platform.Platform.host_speed)

(** [record f] runs [f ()] capturing its trace events for later pricing
    under any platform (so one real execution serves all three platforms). *)
let record (f : unit -> 'a) : 'a * Trace.event list =
  let events = ref [] in
  let result = Trace.with_listener (fun ev -> events := ev :: !events) f in
  (result, List.rev !events)

(** Price a recorded trace under a platform/framework pair. *)
let price ~platform ~framework ?(launch_per_op = true) (events : Trace.event list) :
    breakdown =
  let st =
    {
      platform;
      framework;
      launch_per_op;
      kernel_s = 0.0;
      launch_s = 0.0;
      host_s = 0.0;
      transfer_s = 0.0;
      kernels = 0;
      events = Hashtbl.create 16;
    }
  in
  List.iter (listener st) events;
  {
    kernel_s = st.kernel_s;
    launch_s = st.launch_s;
    host_s = st.host_s;
    transfer_s = st.transfer_s;
    kernels = st.kernels;
    events = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.events [];
  }

(** [estimate ~platform ~framework ?launch_per_op f] runs [f ()] under the
    cost model and returns its result and the latency breakdown. *)
let estimate ~platform ~framework ?(launch_per_op = true) (f : unit -> 'a) :
    'a * breakdown =
  let st =
    {
      platform;
      framework;
      launch_per_op;
      kernel_s = 0.0;
      launch_s = 0.0;
      host_s = 0.0;
      transfer_s = 0.0;
      kernels = 0;
      events = Hashtbl.create 16;
    }
  in
  let result = Trace.with_listener (listener st) f in
  ( result,
    {
      kernel_s = st.kernel_s;
      launch_s = st.launch_s;
      host_s = st.host_s;
      transfer_s = st.transfer_s;
      kernels = st.kernels;
      events = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.events [];
    } )

(** Estimated latency in seconds. *)
let latency ~platform ~framework ?launch_per_op f =
  let result, b = estimate ~platform ~framework ?launch_per_op f in
  (result, total platform framework b)

let pp_breakdown ppf (b : breakdown) =
  Fmt.pf ppf "kernel=%.1fus launch=%.1fus host=%.1fus transfer=%.1fus (%d kernels)"
    (b.kernel_s *. 1e6) (b.launch_s *. 1e6) (b.host_s *. 1e6) (b.transfer_s *. 1e6)
    b.kernels
