(** Hardware platform cost models for the paper's three testbeds.

    Platforms are simulated: executors run for real on the host and record
    operator traces; a platform prices each kernel with a roofline
    [max(flops / (peak * eff(flops)), bytes / bandwidth)] where efficiency
    ramps with kernel size, floored by a per-kernel device latency on GPUs.
    Host-side framework work scales by [host_speed]. *)

type t = {
  name : string;
  peak_flops : float;  (** attainable FLOP/s at large kernel sizes *)
  mem_bw : float;  (** attainable memory bandwidth, bytes/s *)
  ramp_flops : float;  (** kernel flops at which efficiency reaches 50% *)
  min_kernel_s : float;  (** device-side execution floor per kernel *)
  launch_overhead_s : float;  (** per-kernel-launch fixed cost *)
  host_speed : float;  (** host-side cost multiplier relative to Intel *)
  transfer_bw : float;  (** host<->device transfer bandwidth, bytes/s *)
  is_gpu : bool;
}

val intel_cpu : t  (** c5.9xlarge-like Intel Skylake *)

val nvidia_gpu : t  (** g4dn-like Nvidia T4 (x86 host drives it) *)

val arm_cpu : t  (** a1.4xlarge-like ARM Cortex-A72 *)

val all : t list

(** Efficiency of a kernel with [flops] work: [flops / (flops + ramp)]. *)
val efficiency : t -> flops:int -> float

(** Roofline cost of one kernel (before library-quality scaling). *)
val kernel_seconds : t -> flops:int -> bytes:int -> float

(** Host<->device transfer cost; 0 on CPUs. *)
val transfer_seconds : t -> bytes:int -> float

val pp : Format.formatter -> t -> unit
