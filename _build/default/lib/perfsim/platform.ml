(** Hardware platform cost models.

    The paper evaluates on three EC2 platforms: Intel Skylake (c5.9xlarge),
    Nvidia T4 (g4dn.4xlarge) and ARM Cortex-A72 (a1.4xlarge). This container
    has one x86-64 host, so those platforms are *simulated*: every executor
    runs for real and records its operator trace; a platform prices each
    kernel with a roofline model

    {[ time = max(flops / (peak * eff(flops)), bytes / bandwidth) ]}

    where [eff] ramps with kernel size (small kernels cannot saturate the
    machine — the effect behind the paper's observation that small-LSTM
    latency on the T4 is *higher* than on the CPU). Host-side framework
    work is scaled by [host_speed]; on GPUs a fraction [overlap] of it
    hides behind device execution (the paper credits device placement for
    Nimble's near-total overlap). *)

type t = {
  name : string;
  peak_flops : float;  (** attainable FLOP/s at large kernel sizes *)
  mem_bw : float;  (** attainable memory bandwidth, bytes/s *)
  ramp_flops : float;  (** kernel flops at which efficiency reaches 50% *)
  min_kernel_s : float;
      (** device-side execution floor per kernel (GPU wave latency) *)
  launch_overhead_s : float;  (** per-kernel-launch fixed cost *)
  host_speed : float;  (** host-side cost multiplier relative to Intel *)
  transfer_bw : float;  (** host<->device transfer bandwidth, bytes/s *)
  is_gpu : bool;
}

let intel_cpu =
  {
    name = "Intel CPU";
    peak_flops = 600e9;
    mem_bw = 200e9;  (* cache-aware effective: recurrent weights stay L2/L3 resident *)
    ramp_flops = 5e4;
    min_kernel_s = 0.0;
    launch_overhead_s = 1e-6;
    host_speed = 1.0;
    transfer_bw = 0.0;
    is_gpu = false;
  }

let nvidia_gpu =
  {
    name = "Nvidia GPU";
    peak_flops = 8e12;
    mem_bw = 300e9;
    ramp_flops = 2e7;
    min_kernel_s = 6e-6;
    launch_overhead_s = 8e-6;
    host_speed = 1.0;  (* the x86 host drives the GPU *)
    transfer_bw = 12e9;  (* PCIe gen3 x16 effective *)
    is_gpu = true;
  }

let arm_cpu =
  {
    name = "ARM CPU";
    peak_flops = 80e9;
    mem_bw = 40e9;
    ramp_flops = 2e4;
    min_kernel_s = 0.0;
    launch_overhead_s = 2e-6;
    host_speed = 2.5;
    transfer_bw = 0.0;
    is_gpu = false;
  }

let all = [ intel_cpu; nvidia_gpu; arm_cpu ]

(** Kernel efficiency ramp: a kernel with [flops] work achieves
    [flops / (flops + ramp)] of peak. *)
let efficiency t ~flops =
  let f = float_of_int flops in
  f /. (f +. t.ramp_flops)

(** Roofline cost of one kernel (before library-quality scaling). *)
let kernel_seconds t ~flops ~bytes =
  if flops = 0 && bytes = 0 then 0.0
  else
    let eff = Stdlib.max 1e-4 (efficiency t ~flops) in
    let compute = float_of_int flops /. (t.peak_flops *. eff) in
    let memory = float_of_int bytes /. t.mem_bw in
    Float.max t.min_kernel_s (Float.max compute memory)

let transfer_seconds t ~bytes =
  if t.transfer_bw <= 0.0 then 0.0 else float_of_int bytes /. t.transfer_bw

let pp ppf t = Fmt.string ppf t.name
