(** Element data types supported by the tensor runtime.

    Mirrors the dtypes Nimble inherits from TVM: 32/64-bit floats, 32/64-bit
    signed integers, and an 8-bit unsigned type doubling as boolean. *)

type t =
  | F32
  | F64
  | I32
  | I64
  | U8  (** also used for booleans: 0 = false, 1 = true *)

let all = [ F32; F64; I32; I64; U8 ]

let size_in_bytes = function
  | F32 | I32 -> 4
  | F64 | I64 -> 8
  | U8 -> 1

let is_float = function F32 | F64 -> true | I32 | I64 | U8 -> false
let is_int = function I32 | I64 | U8 -> true | F32 | F64 -> false

let to_string = function
  | F32 -> "float32"
  | F64 -> "float64"
  | I32 -> "int32"
  | I64 -> "int64"
  | U8 -> "uint8"

let of_string = function
  | "float32" | "f32" -> Some F32
  | "float64" | "f64" -> Some F64
  | "int32" | "i32" -> Some I32
  | "int64" | "i64" -> Some I64
  | "uint8" | "u8" | "bool" -> Some U8
  | _ -> None

let equal (a : t) (b : t) = a = b
let pp ppf t = Fmt.string ppf (to_string t)

(** Type promotion rule used by binary elementwise operators, following the
    NumPy/TVM convention: float beats int, wider beats narrower. *)
let promote a b =
  match (a, b) with
  | F64, _ | _, F64 -> F64
  | F32, _ | _, F32 -> F32
  | I64, _ | _, I64 -> I64
  | I32, _ | _, I32 -> I32
  | U8, U8 -> U8
