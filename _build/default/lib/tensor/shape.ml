(** Concrete (fully static) runtime shapes: arrays of non-negative dims.

    The compiler-side symbolic shapes (with [Any]) live in [Nimble_ir.Dim];
    this module is the runtime counterpart used by tensors, shape functions
    and the VM. *)

type t = int array

exception Shape_error of string

let err fmt = Fmt.kstr (fun s -> raise (Shape_error s)) fmt

let scalar : t = [||]
let of_list = Array.of_list
let to_list = Array.to_list
let rank (s : t) = Array.length s

let numel (s : t) = Array.fold_left ( * ) 1 s

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 ( = ) a b

let pp ppf (s : t) =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") int) s

let to_string s = Fmt.str "%a" pp s

let validate (s : t) =
  Array.iter (fun d -> if d < 0 then err "negative dimension in %a" pp s) s

(** Row-major strides, in elements. Size-0 dims get stride 0. *)
let strides (s : t) : int array =
  let n = Array.length s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

(** Convert a multi-index to a linear row-major offset. *)
let linear_index (s : t) (idx : int array) =
  let st = strides s in
  let acc = ref 0 in
  for i = 0 to Array.length s - 1 do
    if idx.(i) < 0 || idx.(i) >= s.(i) then
      err "index %d out of bounds for dim %d of %a" idx.(i) i pp s;
    acc := !acc + (idx.(i) * st.(i))
  done;
  !acc

(** Inverse of [linear_index]: decompose a linear offset into a multi-index. *)
let unravel (s : t) (lin : int) : int array =
  let n = Array.length s in
  let idx = Array.make n 0 in
  let rem = ref lin in
  let st = strides s in
  for i = 0 to n - 1 do
    if s.(i) > 0 then begin
      idx.(i) <- !rem / st.(i);
      rem := !rem mod st.(i)
    end
  done;
  idx

(** NumPy-style broadcast of two shapes; [None] if incompatible. *)
let broadcast (a : t) (b : t) : t option =
  let ra = rank a and rb = rank b in
  let r = max ra rb in
  let out = Array.make r 0 in
  let ok = ref true in
  for i = 0 to r - 1 do
    let da = if i < r - ra then 1 else a.(i - (r - ra)) in
    let db = if i < r - rb then 1 else b.(i - (r - rb)) in
    if da = db then out.(i) <- da
    else if da = 1 then out.(i) <- db
    else if db = 1 then out.(i) <- da
    else ok := false
  done;
  if !ok then Some out else None

let broadcast_exn a b =
  match broadcast a b with
  | Some s -> s
  | None -> err "cannot broadcast %a with %a" pp a pp b

(** Map an index in the broadcast output shape back to a linear offset in an
    input of shape [src] (dimensions of size 1 are repeated). *)
let broadcast_offset ~(src : t) ~(out : t) (out_idx : int array) =
  let rs = rank src and ro = rank out in
  let st = strides src in
  let acc = ref 0 in
  for i = 0 to rs - 1 do
    let oi = out_idx.(ro - rs + i) in
    let si = if src.(i) = 1 then 0 else oi in
    acc := !acc + (si * st.(i))
  done;
  !acc

(** Normalize a possibly-negative axis against a rank. *)
let normalize_axis ~rank:r axis =
  let a = if axis < 0 then axis + r else axis in
  if a < 0 || a >= r then err "axis %d out of range for rank %d" axis r;
  a

(** Drop the dimension at [axis]. *)
let remove_axis (s : t) axis =
  let axis = normalize_axis ~rank:(rank s) axis in
  Array.init (rank s - 1) (fun i -> if i < axis then s.(i) else s.(i + 1))

(** Insert a size-[1] dimension before position [axis]. *)
let insert_axis (s : t) axis =
  let r = rank s in
  let a = if axis < 0 then axis + r + 1 else axis in
  if a < 0 || a > r then err "axis %d out of range for rank %d" axis r;
  Array.init (r + 1) (fun i -> if i < a then s.(i) else if i = a then 1 else s.(i - 1))

(** Resolve a reshape target that may contain a single [-1] wildcard. *)
let resolve_reshape ~(from : t) (target : int array) : t =
  let total = numel from in
  let wilds = Array.fold_left (fun n d -> if d = -1 then n + 1 else n) 0 target in
  if wilds > 1 then err "reshape target has multiple -1 dims";
  if wilds = 0 then begin
    if numel target <> total then
      err "reshape from %a to %a changes element count" pp from pp target;
    Array.copy target
  end
  else begin
    let known = Array.fold_left (fun n d -> if d = -1 then n else n * d) 1 target in
    if known = 0 || total mod known <> 0 then
      err "cannot infer -1 in reshape of %a to %a" pp from pp target;
    Array.map (fun d -> if d = -1 then total / known else d) target
  end
