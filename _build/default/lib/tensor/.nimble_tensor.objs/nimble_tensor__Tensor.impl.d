lib/tensor/tensor.ml: Array Dtype Float Fmt List Rng Shape String
