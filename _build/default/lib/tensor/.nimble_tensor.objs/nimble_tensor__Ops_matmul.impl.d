lib/tensor/ops_matmul.ml: Array Dtype Shape Tensor
