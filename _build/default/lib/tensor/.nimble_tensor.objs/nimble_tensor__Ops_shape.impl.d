lib/tensor/ops_shape.ml: Array Dtype Float Hashtbl List Shape Stdlib Tensor
