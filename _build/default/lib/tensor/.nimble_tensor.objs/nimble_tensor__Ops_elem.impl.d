lib/tensor/ops_elem.ml: Array Dtype Float Shape Stdlib Tensor
