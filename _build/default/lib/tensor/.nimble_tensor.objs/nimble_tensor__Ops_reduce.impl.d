lib/tensor/ops_reduce.ml: Array Dtype Float Ops_elem Shape Stdlib Tensor
