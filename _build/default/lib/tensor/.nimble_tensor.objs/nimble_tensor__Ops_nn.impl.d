lib/tensor/ops_nn.ml: Array Dtype Float Fun List Ops_elem Ops_reduce Ops_shape Shape Tensor
