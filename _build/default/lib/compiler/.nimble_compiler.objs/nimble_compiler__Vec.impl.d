lib/compiler/vec.ml: Array
