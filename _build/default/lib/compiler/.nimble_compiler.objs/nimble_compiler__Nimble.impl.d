lib/compiler/nimble.ml: Anf Const_fold Cse Dce Device_place Emitter Fmt Fusion Inline Irmod List Manifest_alloc Memory_plan Nimble_ir Nimble_passes Nimble_typing Nimble_vm Static_exec Type_resolve
