lib/compiler/static_exec.ml: Array Expr Fmt Fusion Hashtbl Irmod List Nimble_codegen Nimble_ir Nimble_passes Nimble_tensor Stdlib Tensor
