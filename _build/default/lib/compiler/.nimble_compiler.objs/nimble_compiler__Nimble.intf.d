lib/compiler/nimble.mli: Format Nimble_ir Nimble_vm Static_exec
