(** Static graph executor — the stand-in for TVM's conventional runtime in
    the Table 4 comparison.

    It executes a fused module by walking the dataflow in topological order
    with direct closure calls: no bytecode dispatch, no shape functions, no
    dynamic allocation instructions, no device bookkeeping. It only works
    when the model is static (no control flow, no ADTs) — exactly the
    limitation the paper ascribes to conventional deep-learning runtimes. *)

open Nimble_tensor
open Nimble_ir
open Nimble_passes

exception Static_error of string

let err fmt = Fmt.kstr (fun s -> raise (Static_error s)) fmt

type step =
  | Run of {
      kernel : Nimble_codegen.Kernel.t;
      arg_slots : int array;
      out_slot : int;
    }
  | Project of { src_slot : int; index : int; out_slot : int }
  | Tuple_of of { src_slots : int array; out_slot : int }

type t = {
  n_slots : int;
  input_slots : int array;
  const_slots : (int * Tensor.t) list;
  steps : step list;
  result_slot : int;
}

type value = VT of Tensor.t | VTup of value list

(** Compile a fused module's main function into a static schedule. *)
let plan (m : Irmod.t) : t =
  let fn = Irmod.func_exn m "main" in
  let slots = Hashtbl.create 64 in
  let n = ref 0 in
  let slot_of vid =
    match Hashtbl.find_opt slots vid with
    | Some s -> s
    | None ->
        let s = !n in
        incr n;
        Hashtbl.replace slots vid s;
        s
  in
  let consts = ref [] in
  let fresh_slot () =
    let s = !n in
    incr n;
    s
  in
  let atom_slot = function
    | Expr.Var v -> slot_of v.Expr.vid
    | Expr.Const t ->
        let s = fresh_slot () in
        consts := (s, t) :: !consts;
        s
    | e -> err "static executor: unsupported atom %a" Expr.pp e
  in
  let input_slots =
    Array.of_list (List.map (fun (p : Expr.var) -> slot_of p.Expr.vid) fn.Expr.params)
  in
  let steps = ref [] in
  let rec go (e : Expr.t) : int =
    match e with
    | Expr.Let (v, Expr.Call { callee = Expr.Fn prim; args; _ }, body)
      when Fusion.is_primitive prim ->
        (* static shapes: dense lowers to the same residue-specialized
           kernels Nimble's symbolic codegen produces, so the Table 4
           comparison isolates runtime overhead, not kernel quality *)
        let dispatch =
          if List.mem "dense" (Fusion.primitive_ops prim) then
            Some (Nimble_codegen.Dispatch.create ~num_kernels:8 ())
          else None
        in
        let kernel =
          Nimble_codegen.Lower.lower ?dispatch ~name:(Fusion.primitive_name prim) prim
        in
        let arg_slots = Array.of_list (List.map atom_slot args) in
        let out_slot = slot_of v.Expr.vid in
        steps := Run { kernel; arg_slots; out_slot } :: !steps;
        go body
    | Expr.Let (v, Expr.Proj (src, i), body) ->
        steps :=
          Project { src_slot = atom_slot src; index = i; out_slot = slot_of v.Expr.vid }
          :: !steps;
        go body
    | Expr.Let (v, Expr.Tuple es, body) ->
        steps :=
          Tuple_of
            { src_slots = Array.of_list (List.map atom_slot es); out_slot = slot_of v.Expr.vid }
          :: !steps;
        go body
    | Expr.Let (v, Expr.Var w, body) ->
        Hashtbl.replace slots v.Expr.vid (slot_of w.Expr.vid);
        go body
    | Expr.Var _ | Expr.Const _ -> atom_slot e
    | Expr.If _ | Expr.Match _ ->
        err "static executor cannot run dynamic control flow (use the VM)"
    | e -> err "static executor: unsupported construct %a" Expr.pp e
  in
  let result_slot = go fn.Expr.body in
  { n_slots = !n; input_slots; const_slots = !consts; steps = List.rev !steps; result_slot }

(** Execute the schedule. *)
let run (t : t) (inputs : Tensor.t list) : Tensor.t =
  if List.length inputs <> Array.length t.input_slots then
    err "static executor: expected %d inputs" (Array.length t.input_slots);
  let env : value option array = Array.make (Stdlib.max 1 t.n_slots) None in
  List.iteri (fun i x -> env.(t.input_slots.(i)) <- Some (VT x)) inputs;
  List.iter (fun (s, c) -> env.(s) <- Some (VT c)) t.const_slots;
  let get s =
    match env.(s) with Some v -> v | None -> err "static executor: empty slot %d" s
  in
  let get_t s = match get s with VT x -> x | VTup _ -> err "expected tensor" in
  List.iter
    (fun step ->
      match step with
      | Run { kernel; arg_slots; out_slot } -> (
          let args = Array.to_list (Array.map get_t arg_slots) in
          match Nimble_codegen.Kernel.run kernel args with
          | [ out ] -> env.(out_slot) <- Some (VT out)
          | outs -> env.(out_slot) <- Some (VTup (List.map (fun o -> VT o) outs)))
      | Project { src_slot; index; out_slot } -> (
          match get src_slot with
          | VTup vs -> env.(out_slot) <- Some (List.nth vs index)
          | VT _ -> err "projection from tensor")
      | Tuple_of { src_slots; out_slot } ->
          env.(out_slot) <- Some (VTup (Array.to_list (Array.map get src_slots))))
    t.steps;
  get_t t.result_slot
