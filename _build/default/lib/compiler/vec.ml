(** Minimal growable array with indexed update, used by the bytecode emitter
    for jump patching. (The stdlib's Dynarray arrives only in OCaml 5.2.) *)

type 'a t = { mutable arr : 'a option array; mutable len : int }

let create () = { arr = Array.make 16 None; len = 0 }

let length t = t.len

let add_last t x =
  if t.len = Array.length t.arr then begin
    let bigger = Array.make (2 * Array.length t.arr) None in
    Array.blit t.arr 0 bigger 0 t.len;
    t.arr <- bigger
  end;
  t.arr.(t.len) <- Some x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  match t.arr.(i) with Some x -> x | None -> assert false

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.arr.(i) <- Some x

let to_array t = Array.init t.len (fun i -> get t i)
