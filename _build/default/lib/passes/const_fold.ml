(** Constant folding: evaluate operator calls whose arguments are all
    constants at compile time, using the same kernels the runtime uses. *)

open Nimble_tensor
open Nimble_ir

(* Ops that must not fold: runtime/device semantics, or memory dialect. *)
let never_fold name =
  String.length name > 7 && String.sub name 0 7 = "memory."
  || List.mem name [ "device_copy" ]

let fold_expr (e : Expr.t) : Expr.t =
  Expr.map_bottom_up
    (function
      | Expr.Call { callee = Expr.Op name; args; attrs } as call
        when (not (never_fold name))
             && List.for_all (function Expr.Const _ -> true | _ -> false) args -> (
          let tensors =
            List.map (function Expr.Const t -> t | _ -> assert false) args
          in
          match Nimble_codegen.Op_eval.eval name ~attrs tensors with
          | [ out ] -> Expr.Const out
          | outs -> Expr.Tuple (List.map (fun t -> Expr.Const t) outs)
          | exception _ -> call)
      | Expr.Proj (Expr.Tuple es, i) when i >= 0 && i < List.length es ->
          (* tuple forwarding exposed by folding multi-output ops *)
          List.nth es i
      | Expr.If (Expr.Const c, t, f) when Tensor.numel c = 1 ->
          if Tensor.get_float c 0 <> 0.0 then t else f
      | e -> e)
    e

let run (m : Irmod.t) : Irmod.t =
  Irmod.map_funcs m (fun _name fn -> { fn with Expr.body = fold_expr fn.Expr.body });
  m
