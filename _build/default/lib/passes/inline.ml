(** Inlining of non-recursive global functions.

    Call sites of small, non-recursive globals are replaced by the callee's
    body with parameters let-bound to the arguments; bound variables are
    freshened so the module keeps globally-unique variable ids. Functions
    left unreachable from [main] are pruned (fewer VM functions, smaller
    executables). Recursive functions — the encoding of dynamic control
    flow — are never inlined. *)

open Nimble_ir

let default_max_size = 120

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)
(* ------------------------------------------------------------------ *)

let callees_of (fn : Expr.fn) : string list =
  let acc = ref [] in
  Expr.iter
    (function Expr.Global g -> acc := g :: !acc | _ -> ())
    fn.Expr.body;
  List.sort_uniq compare !acc

(* Functions on a cycle (including self-loops) are recursive. *)
let recursive_set (m : Irmod.t) : (string, unit) Hashtbl.t =
  let funcs = Irmod.functions m in
  let edges = List.map (fun (name, fn) -> (name, callees_of fn)) funcs in
  let rec reachable seen target name =
    if List.mem name seen then false
    else
      match List.assoc_opt name edges with
      | None -> false
      | Some cs ->
          List.exists (fun c -> c = target || reachable (name :: seen) target c) cs
  in
  let result = Hashtbl.create 8 in
  List.iter
    (fun (name, _) -> if reachable [] name name then Hashtbl.replace result name ())
    funcs;
  result

(* ------------------------------------------------------------------ *)
(* Freshening                                                          *)
(* ------------------------------------------------------------------ *)

(* Rebuild an expression with fresh ids for every variable bound inside it,
   applying [mapping] (old vid -> replacement expression) at use sites. *)
let rec freshen (mapping : (int * Expr.t) list) (e : Expr.t) : Expr.t =
  match e with
  | Expr.Var v -> (
      match List.assoc_opt v.Expr.vid mapping with Some r -> r | None -> e)
  | Expr.Global _ | Expr.Op _ | Expr.Ctor _ | Expr.Const _ -> e
  | Expr.Tuple es -> Expr.Tuple (List.map (freshen mapping) es)
  | Expr.Proj (e1, i) -> Expr.Proj (freshen mapping e1, i)
  | Expr.Call { callee; args; attrs } ->
      Expr.Call
        { callee = freshen mapping callee; args = List.map (freshen mapping) args; attrs }
  | Expr.Fn fn ->
      let fresh_params =
        List.map (fun (p : Expr.var) -> Expr.fresh_var ?ty:p.Expr.vty p.Expr.vname) fn.Expr.params
      in
      let mapping =
        List.map2
          (fun (p : Expr.var) (f : Expr.var) -> (p.Expr.vid, Expr.Var f))
          fn.Expr.params fresh_params
        @ mapping
      in
      Expr.Fn { fn with Expr.params = fresh_params; Expr.body = freshen mapping fn.Expr.body }
  | Expr.Let (v, bound, body) ->
      let bound = freshen mapping bound in
      let fresh = Expr.fresh_var ?ty:v.Expr.vty v.Expr.vname in
      Expr.Let (fresh, bound, freshen ((v.Expr.vid, Expr.Var fresh) :: mapping) body)
  | Expr.If (c, t, f) ->
      Expr.If (freshen mapping c, freshen mapping t, freshen mapping f)
  | Expr.Match (scrut, clauses) ->
      let scrut = freshen mapping scrut in
      let clauses =
        List.map
          (fun { Expr.pat; rhs } ->
            let pat, mapping = freshen_pat mapping pat in
            { Expr.pat; rhs = freshen mapping rhs })
          clauses
      in
      Expr.Match (scrut, clauses)

and freshen_pat mapping (p : Expr.pat) : Expr.pat * (int * Expr.t) list =
  match p with
  | Expr.Pwild -> (p, mapping)
  | Expr.Pvar v ->
      let fresh = Expr.fresh_var ?ty:v.Expr.vty v.Expr.vname in
      (Expr.Pvar fresh, (v.Expr.vid, Expr.Var fresh) :: mapping)
  | Expr.Pctor (c, ps) ->
      let ps, mapping =
        List.fold_right
          (fun sub (acc, mapping) ->
            let sub, mapping = freshen_pat mapping sub in
            (sub :: acc, mapping))
          ps ([], mapping)
      in
      (Expr.Pctor (c, ps), mapping)

(* Inline one call: let-bind arguments to fresh parameter names, then splice
   the freshened body. *)
let splice (fn : Expr.fn) (args : Expr.t list) : Expr.t =
  let fresh_params =
    List.map (fun (p : Expr.var) -> Expr.fresh_var ?ty:p.Expr.vty p.Expr.vname) fn.Expr.params
  in
  let mapping =
    List.map2
      (fun (p : Expr.var) (f : Expr.var) -> (p.Expr.vid, Expr.Var f))
      fn.Expr.params fresh_params
  in
  let body = freshen mapping fn.Expr.body in
  List.fold_right2
    (fun param arg acc -> Expr.Let (param, arg, acc))
    fresh_params args body

(* ------------------------------------------------------------------ *)

type stats = { mutable inlined : int; mutable pruned : int }

(** Inline eligible calls across the module; prune unreachable functions.
    [max_size] bounds the callee body (in IR nodes) to avoid blowup. *)
let run ?(max_size = default_max_size) (m : Irmod.t) : stats =
  let stats = { inlined = 0; pruned = 0 } in
  let recursive = recursive_set m in
  let eligible name =
    (not (Hashtbl.mem recursive name))
    && name <> "main"
    &&
    match Irmod.find_func m name with
    | Some fn -> Expr.size fn.Expr.body <= max_size
    | None -> false
  in
  Irmod.map_funcs m (fun _name fn ->
      let body =
        Expr.map_bottom_up
          (function
            | Expr.Call { callee = Expr.Global g; args; _ } when eligible g ->
                stats.inlined <- stats.inlined + 1;
                splice (Irmod.func_exn m g) args
            | e -> e)
          fn.Expr.body
      in
      { fn with Expr.body });
  (* prune functions unreachable from main *)
  (match Irmod.find_func m "main" with
  | None -> ()
  | Some _ ->
      let reachable = Hashtbl.create 8 in
      let rec visit name =
        if not (Hashtbl.mem reachable name) then begin
          Hashtbl.replace reachable name ();
          match Irmod.find_func m name with
          | Some fn -> List.iter visit (callees_of fn)
          | None -> ()
        end
      in
      visit "main";
      let keep = List.filter (fun (n, _) -> Hashtbl.mem reachable n) (Irmod.functions m) in
      if List.length keep < List.length (Irmod.functions m) then begin
        stats.pruned <- List.length (Irmod.functions m) - List.length keep;
        let names = List.map fst (Irmod.functions m) in
        List.iter
          (fun n -> if not (Hashtbl.mem reachable n) then Hashtbl.remove m.Irmod.funcs n)
          names;
        m.Irmod.func_order <- List.filter (Hashtbl.mem reachable) m.Irmod.func_order
      end);
  stats
