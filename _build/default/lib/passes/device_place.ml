(** Heterogeneous device placement (paper §4.4).

    Assigns every IR value a device domain and inserts [device_copy] where a
    value is used on a device other than the one it lives on. The rules
    mirror the paper's:

    - [shape_of] outputs live on CPU;
    - shape-function inputs and outputs live on CPU (the host computes
      allocation sizes with cheap scalar arithmetic);
    - storage from [memory.alloc_storage] lives on the device designated in
      the allocation, and tensors allocated from it inherit that domain;
    - all [memory.invoke_mut] arguments share the kernel's device;
    - control-flow scalars (if conditions) and ADTs live on CPU;
    - everything else is unconstrained until first required (late binding —
      the unification default of the paper's empty domain).

    Values are propagated forward through the ANF chain; a use-site conflict
    between two concrete devices materializes a copy (cached per value and
    target device, so a value is uploaded at most once per region). *)

open Nimble_ir

type stats = { mutable copies_inserted : int }

type env = {
  domains : (int, int) Hashtbl.t;  (** vid -> device id (concrete only) *)
  copies : (int * int, Expr.var) Hashtbl.t;  (** (vid, device) -> copied var *)
  shape_func_device : int;
      (** where shape functions run: CPU per the paper's rule; the
          misplacement ablation sets the kernel device instead *)
  cache_copies : bool;
      (** false = naive placement ablation: re-copy at every conflicting use
          instead of unifying domains and reusing uploads *)
  stats : stats;
}

let domain env (v : Expr.var) = Hashtbl.find_opt env.domains v.Expr.vid
let set_domain env (v : Expr.var) d = Hashtbl.replace env.domains v.Expr.vid d

let cpu = 0

(* Require atom [a] on device [d]; returns the (possibly copied) atom plus
   bindings to prepend. *)
let require env (a : Expr.t) (d : int) : Expr.t * (Expr.var * Expr.t) list =
  match a with
  | Expr.Var v -> (
      match domain env v with
      | None ->
          (* unconstrained: late-bind to the requiring device *)
          set_domain env v d;
          (a, [])
      | Some d' when d' = d -> (a, [])
      | Some d' -> (
          match
            if env.cache_copies then Hashtbl.find_opt env.copies (v.Expr.vid, d)
            else None
          with
          | Some cv -> (Expr.Var cv, [])
          | None ->
              let cv = Expr.fresh_var ?ty:v.Expr.vty (v.Expr.vname ^ "_d" ^ string_of_int d) in
              set_domain env cv d;
              Hashtbl.replace env.copies (v.Expr.vid, d) cv;
              env.stats.copies_inserted <- env.stats.copies_inserted + 1;
              let copy =
                Expr.op_call
                  ~attrs:[ ("src_device", Attrs.Int d'); ("dst_device", Attrs.Int d) ]
                  "device_copy" [ a ]
              in
              (Expr.Var cv, [ (cv, copy) ])))
  | Expr.Const _ when d <> cpu ->
      (* constants load on the host; copy them to the requiring device *)
      let cv = Expr.fresh_var "c" in
      set_domain env cv d;
      env.stats.copies_inserted <- env.stats.copies_inserted + 1;
      let copy =
        Expr.op_call
          ~attrs:[ ("src_device", Attrs.Int cpu); ("dst_device", Attrs.Int d) ]
          "device_copy" [ a ]
      in
      (Expr.Var cv, [ (cv, copy) ])
  | _ -> (a, [])

let require_all env args d =
  List.fold_right
    (fun a (atoms, binds) ->
      let a', bs = require env a d in
      (a' :: atoms, bs @ binds))
    args ([], [])

let rec place env (e : Expr.t) : Expr.t =
  match e with
  | Expr.Let (v, bound, body) ->
      let pre, bound = place_binding env v bound in
      let rest = place env body in
      List.fold_right
        (fun (cv, ce) acc -> Expr.Let (cv, ce, acc))
        pre
        (Expr.Let (v, bound, rest))
  | Expr.If (c, t, f) ->
      (* condition is read by the host dispatch loop *)
      let c', pre = require env c cpu in
      List.fold_right
        (fun (cv, ce) acc -> Expr.Let (cv, ce, acc))
        pre
        (Expr.If (c', place env t, place env f))
  | Expr.Match (s, clauses) ->
      Expr.Match (s, List.map (fun cl -> { cl with Expr.rhs = place env cl.Expr.rhs }) clauses)
  | _ -> e

(* Returns (copy bindings to prepend, rewritten rhs); updates domains. *)
and place_binding env (v : Expr.var) (bound : Expr.t) : (Expr.var * Expr.t) list * Expr.t =
  match bound with
  | Expr.Call { callee = Expr.Op "shape_of"; args; attrs } ->
      set_domain env v cpu;
      ([], Expr.Call { callee = Expr.Op "shape_of"; args; attrs })
  | Expr.Call { callee = Expr.Op "memory.invoke_shape_func"; args = prim :: ins; attrs } ->
      let ins', pre = require_all env ins env.shape_func_device in
      set_domain env v cpu;
      (pre, Expr.Call { callee = Expr.Op "memory.invoke_shape_func"; args = prim :: ins'; attrs })
  | Expr.Call { callee = Expr.Op "memory.alloc_storage"; args; attrs } ->
      let dev = Attrs.get_int ~default:0 attrs "device" in
      let args', pre = require_all env args cpu in
      set_domain env v dev;
      (pre, Expr.Call { callee = Expr.Op "memory.alloc_storage"; args = args'; attrs })
  | Expr.Call { callee = Expr.Op "memory.alloc_tensor"; args = storage :: more; attrs } ->
      (match storage with
      | Expr.Var sv -> (
          match domain env sv with Some d -> set_domain env v d | None -> ())
      | _ -> ());
      let more', pre = require_all env more cpu in
      (pre, Expr.Call { callee = Expr.Op "memory.alloc_tensor"; args = storage :: more'; attrs })
  | Expr.Call { callee = Expr.Op "memory.invoke_mut"; args = prim :: rest; attrs } ->
      let dev = Attrs.get_int ~default:0 attrs "device" in
      let rest', pre = require_all env rest dev in
      set_domain env v cpu;
      (pre, Expr.Call { callee = Expr.Op "memory.invoke_mut"; args = prim :: rest'; attrs })
  | Expr.Call { callee = Expr.Op "device_copy"; args; attrs } ->
      set_domain env v (Attrs.get_int ~default:0 attrs "dst_device");
      ([], Expr.Call { callee = Expr.Op "device_copy"; args; attrs })
  | Expr.Call { callee = Expr.Ctor _; _ } ->
      (* dynamic data structures are host objects *)
      set_domain env v cpu;
      ([], bound)
  | Expr.Var w ->
      (match domain env w with Some d -> set_domain env v d | None -> ());
      ([], bound)
  | Expr.If (c, t, f) ->
      let c', pre = require env c cpu in
      (pre, Expr.If (c', place env t, place env f))
  | Expr.Match (s, clauses) ->
      ( [],
        Expr.Match (s, List.map (fun cl -> { cl with Expr.rhs = place env cl.Expr.rhs }) clauses)
      )
  | Expr.Fn fn when not (Fusion.is_primitive fn) ->
      ([], Expr.Fn { fn with Expr.body = place env fn.Expr.body })
  | _ -> ([], bound)

(** Run placement over a module. Returns the number of copies inserted.
    [cache_copies = false] is the naive-placement ablation. *)
let run ?(cache_copies = true) ?(shape_func_device = cpu) (m : Irmod.t) : stats =
  let stats = { copies_inserted = 0 } in
  Irmod.map_funcs m (fun _name fn ->
      let env =
        {
          domains = Hashtbl.create 64;
          copies = Hashtbl.create 8;
          shape_func_device;
          cache_copies;
          stats;
        }
      in
      (* function arguments arrive from the host *)
      List.iter (fun (p : Expr.var) -> set_domain env p cpu) fn.Expr.params;
      { fn with Expr.body = place env fn.Expr.body });
  stats

(** Count [device_copy] nodes, for tests and the placement ablation. *)
let count_copies (m : Irmod.t) =
  let n = ref 0 in
  List.iter
    (fun (_, (fn : Expr.fn)) ->
      Expr.iter
        (function
          | Expr.Call { callee = Expr.Op "device_copy"; _ } -> incr n
          | _ -> ())
        fn.Expr.body)
    (Irmod.functions m);
  !n
