(** Manifest allocation (paper §4.3).

    Rewrites the implicit-allocation IR into the explicit memory dialect:
    every primitive call [let v = prim(args)] becomes explicit
    [memory.alloc_storage] / [memory.alloc_tensor] bindings plus a
    destination-passing [memory.invoke_mut]. Dynamic output shapes insert
    shape-function invocations first — including explicit allocation of the
    shape tensors themselves, the fixed point the paper describes.
    Data-dependent shape functions receive argument values; upper-bound ones
    allocate the bound and the VM slices to the kernel-reported extent. *)

open Nimble_ir

exception Alloc_error of string

(** Rewrite every function. [device] is the id of the target device kernels
    run on (heterogeneous placement may move bookkeeping to the CPU
    afterwards; see {!Device_place}). Requires typed IR (run inference and
    {!Type_resolve} first). *)
val run : ?device:int -> Irmod.t -> Irmod.t

(** [(storage_allocs, tensor_allocs)] appearing in an expression. *)
val count_allocs : Expr.t -> int * int
