(** Resolve symbolic dimension classes in every variable annotation to their
    most specific known value, after type inference has run. Downstream
    passes (manifest alloc) then see [Static]/[Sym]/[Any] dims directly. *)

open Nimble_ir
open Nimble_typing

let resolve_var solver (v : Expr.var) =
  match v.Expr.vty with
  | Some ty -> v.Expr.vty <- Some (Dim_solver.apply solver ty)
  | None -> ()

let rec resolve_pat solver = function
  | Expr.Pwild -> ()
  | Expr.Pvar v -> resolve_var solver v
  | Expr.Pctor (_, ps) -> List.iter (resolve_pat solver) ps

let run (m : Irmod.t) (solver : Dim_solver.t) : Irmod.t =
  Irmod.map_funcs m (fun _name fn ->
      List.iter (resolve_var solver) fn.Expr.params;
      Expr.iter
        (function
          | Expr.Var v -> resolve_var solver v
          | Expr.Let (v, _, _) -> resolve_var solver v
          | Expr.Fn { params; _ } -> List.iter (resolve_var solver) params
          | Expr.Match (_, clauses) ->
              List.iter (fun cl -> resolve_pat solver cl.Expr.pat) clauses
          | _ -> ())
        fn.Expr.body;
      fn);
  m
