(** Heterogeneous device placement (paper §4.4).

    Assigns every IR value a device domain — shape functions, control-flow
    scalars and ADTs on the host; kernel operands on the kernel's device;
    everything else late-bound — and inserts [device_copy] exactly where a
    value is used on a device other than the one it lives on, caching
    uploads so a value crosses the bus at most once per region. *)

open Nimble_ir

type stats = { mutable copies_inserted : int }

(** Run placement over a module.

    @param cache_copies [false] re-copies at every conflicting use instead
    of reusing uploads — the naive-placement ablation.
    @param shape_func_device where shape functions run (default CPU, the
    paper's rule; pointing it at the kernel device reproduces the
    cross-device ping-pong the paper warns about). *)
val run : ?cache_copies:bool -> ?shape_func_device:int -> Irmod.t -> stats

(** Count [device_copy] nodes in a module (tests, ablations). *)
val count_copies : Irmod.t -> int
