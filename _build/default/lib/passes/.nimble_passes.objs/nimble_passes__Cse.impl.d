lib/passes/cse.ml: Adt Attrs Expr Fmt Hashtbl Irmod List Nimble_ir Nimble_tensor Stdlib String Tensor
