lib/passes/fusion.ml: Anf Attrs Expr Fmt Irmod List Nimble_ir Nimble_shape Nimble_tensor Op Option String Ty
