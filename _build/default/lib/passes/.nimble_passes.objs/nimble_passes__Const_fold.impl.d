lib/passes/const_fold.ml: Expr Irmod List Nimble_codegen Nimble_ir Nimble_tensor String Tensor
