lib/passes/memory_plan.ml: Array Attrs Dtype Expr Fusion Hashtbl Int Irmod List Nimble_ir Nimble_tensor Option Set Stdlib Tensor Ty
