lib/passes/memory_plan.mli: Expr Irmod Nimble_ir
