lib/passes/manifest_alloc.ml: Array Attrs Dim Dtype Expr Fmt Fusion Irmod List Nimble_ir Nimble_shape Nimble_tensor Option String Tensor Ty
