lib/passes/inline.mli: Irmod Nimble_ir
