lib/passes/manifest_alloc.mli: Expr Irmod Nimble_ir
