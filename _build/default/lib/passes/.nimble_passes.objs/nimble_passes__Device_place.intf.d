lib/passes/device_place.mli: Irmod Nimble_ir
