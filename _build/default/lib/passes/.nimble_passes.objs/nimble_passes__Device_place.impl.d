lib/passes/device_place.ml: Attrs Expr Fusion Hashtbl Irmod List Nimble_ir
