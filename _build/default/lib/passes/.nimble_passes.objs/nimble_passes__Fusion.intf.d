lib/passes/fusion.mli: Expr Irmod Nimble_ir Op
