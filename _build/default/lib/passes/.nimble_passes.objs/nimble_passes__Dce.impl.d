lib/passes/dce.ml: Expr Int Irmod List Nimble_ir Set
