lib/passes/anf.ml: Expr Hashtbl Irmod List Nimble_ir
