lib/passes/inline.ml: Expr Hashtbl Irmod List Nimble_ir
