lib/passes/anf.mli: Expr Irmod Nimble_ir
