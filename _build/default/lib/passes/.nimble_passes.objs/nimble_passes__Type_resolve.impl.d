lib/passes/type_resolve.ml: Dim_solver Expr Irmod List Nimble_ir Nimble_typing
