(** Dead-code elimination: drop let bindings whose variable is unused and
    whose right-hand side is pure.

    Memory-dialect operations ([invoke_mut], [kill], allocations feeding
    them) are effectful and survive; everything else in the IR is pure. *)

open Nimble_ir

let is_effectful_call name =
  List.mem name
    [ "memory.invoke_mut"; "memory.invoke_shape_func"; "memory.kill"; "device_copy" ]

let rec is_pure (e : Expr.t) : bool =
  match e with
  | Expr.Var _ | Expr.Const _ | Expr.Global _ | Expr.Op _ | Expr.Ctor _ -> true
  | Expr.Tuple es -> List.for_all is_pure es
  | Expr.Proj (e1, _) -> is_pure e1
  | Expr.Call { callee = Expr.Op name; _ } -> not (is_effectful_call name)
  | Expr.Call { callee = Expr.Ctor _; _ } -> true
  | Expr.Call _ -> false (* user function calls may allocate/recurse: keep *)
  | Expr.Fn _ -> true
  | Expr.Let (_, bound, body) -> is_pure bound && is_pure body
  | Expr.If (c, t, f) -> is_pure c && is_pure t && is_pure f
  | Expr.Match (s, clauses) ->
      is_pure s && List.for_all (fun cl -> is_pure cl.Expr.rhs) clauses

module Int_set = Set.Make (Int)

let rec used_vars acc (e : Expr.t) =
  match e with
  | Expr.Var v -> Int_set.add v.Expr.vid acc
  | _ -> List.fold_left used_vars acc (Expr.children e)

(** One bottom-up sweep; iterate to fixpoint for chains of dead bindings. *)
let rec sweep (e : Expr.t) : Expr.t =
  match e with
  | Expr.Let (v, bound, body) ->
      let body = sweep body in
      let bound = sweep_inside bound in
      let used = used_vars Int_set.empty body in
      if (not (Int_set.mem v.Expr.vid used)) && is_pure bound then body
      else Expr.Let (v, bound, body)
  | Expr.If (c, t, f) -> Expr.If (c, sweep t, sweep f)
  | Expr.Match (s, clauses) ->
      Expr.Match (s, List.map (fun cl -> { cl with Expr.rhs = sweep cl.Expr.rhs }) clauses)
  | _ -> sweep_inside e

and sweep_inside (e : Expr.t) : Expr.t =
  match e with
  | Expr.Fn fn -> Expr.Fn { fn with Expr.body = sweep fn.Expr.body }
  | Expr.If (c, t, f) -> Expr.If (c, sweep t, sweep f)
  | Expr.Match (s, clauses) ->
      Expr.Match (s, List.map (fun cl -> { cl with Expr.rhs = sweep cl.Expr.rhs }) clauses)
  | Expr.Call { callee = Expr.Fn fn; args; attrs } ->
      Expr.Call { callee = Expr.Fn { fn with Expr.body = sweep fn.Expr.body }; args; attrs }
  | _ -> e

let rec fix e =
  let e' = sweep e in
  if Expr.size e' = Expr.size e then e' else fix e'

let run_fn (fn : Expr.fn) : Expr.fn = { fn with Expr.body = fix fn.Expr.body }

let run (m : Irmod.t) : Irmod.t =
  Irmod.map_funcs m (fun _name fn -> run_fn fn);
  m
