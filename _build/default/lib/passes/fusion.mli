(** Operator fusion with the dynamic-shape fusion policy (paper §4.2).

    Kernel-op calls are wrapped into {e primitives} (functions marked
    [Primitive] containing pure operator dataflow — the unit the VM invokes
    via [InvokePacked]); pairwise merging to fixpoint then fuses a producer
    primitive into its single consumer when the TVM-style operator-pattern
    lattice allows it {e and} every op on both sides has a data-independent
    shape function — an op whose shape function needs values (arange,
    unique, nms) would need access to intermediate results of the fused
    group, so it must stay un-fused. *)

open Nimble_ir

(** Can a producer group with pattern [producer] fuse into a consumer with
    pattern [consumer]? Returns the combined pattern. *)
val combine : producer:Op.pattern -> consumer:Op.pattern -> Op.pattern option

(** Whether a function is a fusion-produced primitive. *)
val is_primitive : Expr.fn -> bool

(** The primitive's unique kernel name. *)
val primitive_name : Expr.fn -> string

(** The operator names fused into the primitive, in dataflow order. *)
val primitive_ops : Expr.fn -> string list

(** The primitive's combined operator pattern. *)
val primitive_pattern : Expr.fn -> Op.pattern

(** Every op in the primitive has a data-independent shape function. *)
val data_independent : Expr.fn -> bool

(** Run fusion over a function body (expects ANF). [merge = false] only
    wraps ops into singleton primitives without fusing — the no-fusion
    ablation. *)
val run_fn : ?merge:bool -> Expr.fn -> Expr.fn

(** Run fusion over every function in a module. *)
val run : ?merge:bool -> Irmod.t -> Irmod.t

(** All primitives appearing in an expression, in occurrence order. *)
val primitives_of : Expr.t -> Expr.fn list
