(** Common-subexpression elimination on ANF.

    Model builders construct IR as expression trees, so a value referenced
    several times (an LSTM's gate pre-activation, say) appears as duplicated
    subtrees; after ANF these become sequences of structurally identical
    bindings. CSE walks each straight-line region, keys every pure binding
    by a canonical string (operator, attributes, representative argument
    ids, constant identity) and rewrites later duplicates to reuse the first
    binding. Branches are processed with isolated tables seeded from their
    prefix, so nothing leaks across control flow. *)

open Nimble_tensor
open Nimble_ir

(* Stable identity for constants: physical equality on the tensor. *)
let const_ids : (Stdlib.Obj.t * int) list ref = ref []
let const_counter = ref 0

let const_id (t : Tensor.t) =
  let repr = Stdlib.Obj.repr t in
  match List.find_opt (fun (o, _) -> o == repr) !const_ids with
  | Some (_, id) -> id
  | None ->
      incr const_counter;
      const_ids := (repr, !const_counter) :: !const_ids;
      !const_counter

type env = {
  table : (string, Expr.var) Hashtbl.t;  (** canonical key -> binding *)
  repr : (int, Expr.var) Hashtbl.t;  (** vid -> representative var *)
}

let copy_env env = { table = Hashtbl.copy env.table; repr = Hashtbl.copy env.repr }

let rep env (v : Expr.var) =
  match Hashtbl.find_opt env.repr v.Expr.vid with Some r -> r | None -> v

let atom_key env = function
  | Expr.Var v -> Fmt.str "v%d" (rep env v).Expr.vid
  | Expr.Const t -> Fmt.str "c%d" (const_id t)
  | Expr.Global g -> "g:" ^ g
  | Expr.Op o -> "o:" ^ o
  | Expr.Ctor c -> Fmt.str "k:%s.%s" c.Adt.adt_name c.Adt.ctor_name
  | _ -> raise Exit

(* Canonical key of a pure ANF right-hand side; raises Exit when the RHS is
   not CSE-able (control flow, functions, effects). *)
let rhs_key env (e : Expr.t) : string =
  match e with
  | Expr.Call { callee = Expr.Op name; args; attrs } ->
      if String.length name > 7 && String.sub name 0 7 = "memory." then raise Exit;
      if List.mem name [ "device_copy" ] then raise Exit;
      Fmt.str "call:%s%a(%s)" name Attrs.pp attrs
        (String.concat "," (List.map (atom_key env) args))
  | Expr.Call { callee = Expr.Ctor c; args; _ } ->
      Fmt.str "ctor:%s.%s(%s)" c.Adt.adt_name c.Adt.ctor_name
        (String.concat "," (List.map (atom_key env) args))
  | Expr.Tuple es -> Fmt.str "tuple(%s)" (String.concat "," (List.map (atom_key env) es))
  | Expr.Proj (e1, i) -> Fmt.str "proj:%d(%s)" i (atom_key env e1)
  | Expr.Var _ | Expr.Const _ -> atom_key env e
  | _ -> raise Exit

let subst_atom env = function
  | Expr.Var v -> Expr.Var (rep env v)
  | a -> a

let rec rewrite env (e : Expr.t) : Expr.t =
  match e with
  | Expr.Let (v, bound, body) -> (
      let bound = rewrite_rhs env bound in
      match rhs_key env bound with
      | key -> (
          match Hashtbl.find_opt env.table key with
          | Some existing ->
              Hashtbl.replace env.repr v.Expr.vid existing;
              rewrite env body
          | None ->
              Hashtbl.replace env.table key v;
              Expr.Let (v, bound, rewrite env body))
      | exception Exit -> Expr.Let (v, bound, rewrite env body))
  | Expr.If (c, t, f) ->
      Expr.If (subst_atom env c, rewrite (copy_env env) t, rewrite (copy_env env) f)
  | Expr.Match (s, clauses) ->
      Expr.Match
        ( subst_atom env s,
          List.map
            (fun cl -> { cl with Expr.rhs = rewrite (copy_env env) cl.Expr.rhs })
            clauses )
  | Expr.Var v -> Expr.Var (rep env v)
  | _ -> rewrite_rhs env e

and rewrite_rhs env (e : Expr.t) : Expr.t =
  match e with
  | Expr.Tuple es -> Expr.Tuple (List.map (subst_atom env) es)
  | Expr.Proj (e1, i) -> Expr.Proj (subst_atom env e1, i)
  | Expr.Call { callee; args; attrs } ->
      let callee =
        match callee with
        | Expr.Fn fn -> Expr.Fn { fn with Expr.body = rewrite (copy_env env) fn.Expr.body }
        | c -> subst_atom env c
      in
      Expr.Call { callee; args = List.map (subst_atom env) args; attrs }
  | Expr.Fn fn -> Expr.Fn { fn with Expr.body = rewrite (copy_env env) fn.Expr.body }
  | Expr.If (c, t, f) ->
      Expr.If (subst_atom env c, rewrite (copy_env env) t, rewrite (copy_env env) f)
  | Expr.Match (s, clauses) ->
      Expr.Match
        ( subst_atom env s,
          List.map
            (fun cl -> { cl with Expr.rhs = rewrite (copy_env env) cl.Expr.rhs })
            clauses )
  | Expr.Var v -> Expr.Var (rep env v)
  | _ -> e

let run_fn (fn : Expr.fn) : Expr.fn =
  let env = { table = Hashtbl.create 64; repr = Hashtbl.create 64 } in
  { fn with Expr.body = rewrite env fn.Expr.body }

let run (m : Irmod.t) : Irmod.t =
  Irmod.map_funcs m (fun _name fn -> run_fn fn);
  m
