(** A-normal form conversion.

    Every compound subexpression is let-bound so later passes see flat
    chains of lets whose right-hand sides are single operations over atoms.
    Conversion is {e DAG-aware}: model builders reuse OCaml expression nodes
    wherever a value is reused, and memoizing on physical identity keeps the
    output linear where a tree walk would explode exponentially (a 12-layer
    BERT reuses each layer output ~5 times). Branch conversions get a copy
    of the memo, so bindings never leak across control-flow scopes. *)

open Nimble_ir

(** Atoms: variables, constants, globals, operators, constructors. *)
val is_atom : Expr.t -> bool

(** Convert an expression to ANF. *)
val convert : Expr.t -> Expr.t

(** Convert a function body to ANF. *)
val convert_fn : Expr.fn -> Expr.fn

(** Convert every function in a module. *)
val run : Irmod.t -> Irmod.t

(** Validate ANF shape (pass precondition; used by tests). *)
val is_anf : Expr.t -> bool
