(** A-normal form conversion.

    Every compound subexpression is let-bound so later passes (fusion,
    manifest alloc, memory planning, the bytecode emitter) see a flat chain
    of lets whose right-hand sides are single operations over atoms.

    Model builders construct expression {e DAGs}: the same OCaml node is
    referenced wherever its value is reused (a transformer layer's output
    feeds both the next layer's attention and its residual add). Walking the
    DAG as a tree would duplicate work exponentially, so conversion memoizes
    on *physical identity*: the first occurrence of a shared node produces
    its binding, later occurrences reuse the variable. Branch conversions
    get a copy of the memo, so bindings created inside an [if]/[match] arm
    never leak out of their scope. *)

open Nimble_ir

let is_atom = function
  | Expr.Var _ | Expr.Const _ | Expr.Global _ | Expr.Op _ | Expr.Ctor _ -> true
  | Expr.Tuple _ | Expr.Proj _ | Expr.Call _ | Expr.Fn _ | Expr.Let _
  | Expr.If _ | Expr.Match _ ->
      false

(* Physical-identity memo: structural Hashtbl.hash for bucketing (bounded
   traversal, so cheap even on big DAGs), physical equality within buckets. *)
module Memo = struct
  type t = (int, (Expr.t * Expr.t) list ref) Hashtbl.t

  let create () : t = Hashtbl.create 256

  let copy (t : t) : t =
    let fresh = Hashtbl.create (Hashtbl.length t * 2) in
    Hashtbl.iter (fun h bucket -> Hashtbl.replace fresh h (ref !bucket)) t;
    fresh

  let find (t : t) (e : Expr.t) : Expr.t option =
    match Hashtbl.find_opt t (Hashtbl.hash e) with
    | None -> None
    | Some bucket ->
        List.find_map (fun (key, atom) -> if key == e then Some atom else None) !bucket

  let add (t : t) (e : Expr.t) (atom : Expr.t) =
    let h = Hashtbl.hash e in
    match Hashtbl.find_opt t h with
    | Some bucket -> bucket := (e, atom) :: !bucket
    | None -> Hashtbl.replace t h (ref [ (e, atom) ])
end

(* Nodes worth memoizing: pure dataflow that would be recomputed if
   duplicated. Control flow and functions are scope-sensitive; atoms are
   free to duplicate. *)
let memoizable = function
  | Expr.Call _ | Expr.Tuple _ | Expr.Proj _ -> true
  | _ -> false

(* [norm memo e k]: normalize [e]; [k] receives an atom for [e]. *)
let rec norm memo (e : Expr.t) (k : Expr.t -> Expr.t) : Expr.t =
  match if memoizable e then Memo.find memo e else None with
  | Some atom -> k atom
  | None -> (
      match e with
      | Expr.Var _ | Expr.Const _ | Expr.Global _ | Expr.Op _ | Expr.Ctor _ -> k e
      | Expr.Tuple es -> norm_list memo es (fun atoms -> bind memo e (Expr.Tuple atoms) k)
      | Expr.Proj (e1, i) -> norm memo e1 (fun a -> bind memo e (Expr.Proj (a, i)) k)
      | Expr.Call { callee; args; attrs } ->
          let norm_callee f =
            match callee with
            | Expr.Op _ | Expr.Ctor _ | Expr.Global _ -> f callee
            | _ -> norm memo callee f
          in
          norm_callee (fun c ->
              norm_list memo args (fun atoms ->
                  bind memo e (Expr.Call { callee = c; args = atoms; attrs }) k))
      | Expr.Fn fn ->
          bind memo e (Expr.Fn { fn with Expr.body = convert fn.Expr.body }) k
      | Expr.Let (v, bound, body) -> norm_named memo v bound (fun () -> norm memo body k)
      | Expr.If (c, t, f) ->
          norm memo c (fun ca ->
              bind memo e
                (Expr.If (ca, convert_scoped memo t, convert_scoped memo f))
                k)
      | Expr.Match (scrut, clauses) ->
          norm memo scrut (fun sa ->
              let clauses =
                List.map
                  (fun cl -> { cl with Expr.rhs = convert_scoped memo cl.Expr.rhs })
                  clauses
              in
              bind memo e (Expr.Match (sa, clauses)) k))

(* Bind a normalized compound node [rebuilt] (for original node [orig]). *)
and bind memo (orig : Expr.t) (rebuilt : Expr.t) (k : Expr.t -> Expr.t) : Expr.t =
  if is_atom rebuilt then k rebuilt
  else begin
    let v = Expr.fresh_var "t" in
    if memoizable orig then Memo.add memo orig (Expr.Var v);
    Expr.Let (v, rebuilt, k (Expr.Var v))
  end

(* Normalize [bound] into the RHS of a let that keeps the user's name. *)
and norm_named memo v (bound : Expr.t) (k : unit -> Expr.t) : Expr.t =
  let remember () = if memoizable bound then Memo.add memo bound (Expr.Var v) in
  match bound with
  | Expr.Let (v2, b2, body2) -> norm_named memo v2 b2 (fun () -> norm_named memo v body2 k)
  | _ when is_atom bound -> Expr.Let (v, bound, k ())
  | _ -> (
      match Memo.find memo bound with
      | Some atom -> Expr.Let (v, atom, k ())
      | None -> (
          match bound with
          | Expr.Tuple es ->
              norm_list memo es (fun atoms ->
                  remember ();
                  Expr.Let (v, Expr.Tuple atoms, k ()))
          | Expr.Proj (e1, i) ->
              norm memo e1 (fun a ->
                  remember ();
                  Expr.Let (v, Expr.Proj (a, i), k ()))
          | Expr.Call { callee; args; attrs } ->
              let norm_callee f =
                match callee with
                | Expr.Op _ | Expr.Ctor _ | Expr.Global _ -> f callee
                | _ -> norm memo callee f
              in
              norm_callee (fun c ->
                  norm_list memo args (fun atoms ->
                      remember ();
                      Expr.Let (v, Expr.Call { callee = c; args = atoms; attrs }, k ())))
          | Expr.Fn fn ->
              Expr.Let (v, Expr.Fn { fn with Expr.body = convert fn.Expr.body }, k ())
          | Expr.If (c, t, f) ->
              norm memo c (fun ca ->
                  Expr.Let
                    (v, Expr.If (ca, convert_scoped memo t, convert_scoped memo f), k ()))
          | Expr.Match (scrut, clauses) ->
              norm memo scrut (fun sa ->
                  let clauses =
                    List.map
                      (fun cl -> { cl with Expr.rhs = convert_scoped memo cl.Expr.rhs })
                      clauses
                  in
                  Expr.Let (v, Expr.Match (sa, clauses), k ()))
          | _ -> Expr.Let (v, bound, k ())))

and norm_list memo es k =
  match es with
  | [] -> k []
  | e :: rest -> norm memo e (fun a -> norm_list memo rest (fun atoms -> k (a :: atoms)))

(* Convert a branch body: outer bindings are visible, inner ones don't leak. *)
and convert_scoped memo (e : Expr.t) : Expr.t = norm (Memo.copy memo) e (fun a -> a)

(** Convert an expression to ANF. *)
and convert (e : Expr.t) : Expr.t = norm (Memo.create ()) e (fun a -> a)

(** Convert a function body to ANF. *)
let convert_fn (fn : Expr.fn) : Expr.fn = { fn with Expr.body = convert fn.Expr.body }

(** Convert every function in a module. *)
let run (m : Irmod.t) : Irmod.t =
  Irmod.map_funcs m (fun _name fn -> convert_fn fn);
  m

(** Validate ANF: every let RHS is a single operation over atoms; useful in
    tests and as a pass precondition. *)
let rec is_anf (e : Expr.t) : bool =
  match e with
  | _ when is_atom e -> true
  | Expr.Let (_, bound, body) -> is_anf_rhs bound && is_anf body
  | Expr.If (c, t, f) -> is_atom c && is_anf t && is_anf f
  | Expr.Match (s, clauses) ->
      is_atom s && List.for_all (fun cl -> is_anf cl.Expr.rhs) clauses
  | _ -> is_anf_rhs e

and is_anf_rhs = function
  | Expr.Tuple es -> List.for_all is_atom es
  | Expr.Proj (e, _) -> is_atom e
  | Expr.Call { callee; args; _ } ->
      (is_atom callee || match callee with Expr.Fn _ -> true | _ -> false)
      && List.for_all is_atom args
  | Expr.Fn fn -> is_anf fn.Expr.body
  | Expr.If (c, t, f) -> is_atom c && is_anf t && is_anf f
  | Expr.Match (s, clauses) ->
      is_atom s && List.for_all (fun cl -> is_anf cl.Expr.rhs) clauses
  | e -> is_atom e
