(** Synthetic stand-in for the Microsoft Research Paraphrase Corpus (MRPC),
    the paper's variable-length input set for LSTM and BERT.

    Only the sentence-*length* distribution matters to the systems under
    test (it drives the dynamic shapes); token identities are random. The
    histogram below approximates MRPC's token-length distribution (most
    sentences 15-35 tokens, tails to ~60). *)

open Nimble_tensor

(* (length bucket center, relative frequency) *)
let length_histogram =
  [| (8, 2.0); (12, 5.0); (16, 9.0); (20, 13.0); (24, 15.0); (28, 14.0);
     (32, 12.0); (36, 9.0); (40, 7.0); (44, 5.0); (48, 4.0); (52, 2.5);
     (56, 1.5); (60, 1.0) |]

(** Sample a sentence length. *)
let sample_length rng =
  let weights = Array.map snd length_histogram in
  let bucket = Rng.categorical rng weights in
  let center = fst length_histogram.(bucket) in
  Stdlib.max 1 (center - 2 + Rng.int rng 5)

(** A deterministic corpus of [n] sentence lengths. *)
let lengths ?(seed = 2021) n =
  let rng = Rng.create ~seed in
  List.init n (fun _ -> sample_length rng)

(** Mean tokens per sentence over a sampled corpus (used to report
    microseconds per token, the paper's Tables 1-3 unit). *)
let mean_length ?(seed = 2021) n =
  let ls = lengths ~seed n in
  float_of_int (List.fold_left ( + ) 0 ls) /. float_of_int (Stdlib.max 1 n)

(** Embedded LSTM inputs for a sampled corpus. *)
let lstm_inputs ?(seed = 2021) (config : Nimble_models.Lstm.config) n :
    Tensor.t list list =
  let rng = Rng.create ~seed in
  List.map
    (fun len ->
      List.init len (fun _ ->
          Tensor.randn ~scale:0.5 rng [| 1; config.Nimble_models.Lstm.input_size |]))
    (lengths ~seed:(seed + 1) n)

(** Embedded BERT inputs ([(len, H)] matrices) for a sampled corpus. *)
let bert_inputs ?(seed = 2021) (w : Nimble_models.Bert.weights) n : Tensor.t list =
  List.map
    (fun len -> Nimble_models.Bert.embed w (Nimble_models.Bert.random_ids ~seed w ~len))
    (lengths ~seed:(seed + 2) n)
