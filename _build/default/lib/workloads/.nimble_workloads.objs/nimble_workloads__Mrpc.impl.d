lib/workloads/mrpc.ml: Array List Nimble_models Nimble_tensor Rng Stdlib Tensor
