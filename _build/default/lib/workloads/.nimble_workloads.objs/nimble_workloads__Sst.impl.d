lib/workloads/sst.ml: Array List Nimble_models Nimble_tensor Rng Stdlib Tensor Tree_lstm
