(** Synthetic stand-in for the Stanford Sentiment Treebank (SST), the
    paper's tree-structured input set for Tree-LSTM.

    SST sentences average ~19 tokens with binary constituency trees; only
    the tree *shapes* matter to the systems under test. Trees are sampled
    with random (seeded) splits, producing realistic depth variation. *)

open Nimble_tensor
open Nimble_models

let length_histogram =
  [| (6, 4.0); (10, 8.0); (14, 12.0); (18, 15.0); (22, 14.0); (26, 11.0);
     (30, 8.0); (34, 5.0); (38, 3.0); (42, 2.0) |]

let sample_tokens rng =
  let weights = Array.map snd length_histogram in
  let bucket = Rng.categorical rng weights in
  Stdlib.max 1 (fst length_histogram.(bucket) - 2 + Rng.int rng 5)

(** Sample a random binary tree with [tokens] leaves carrying embeddings. *)
let sample_tree rng (config : Tree_lstm.config) ~tokens : Tree_lstm.tree =
  let leaf () =
    Tree_lstm.Leaf (Tensor.randn ~scale:0.5 rng [| 1; config.Tree_lstm.input_size |])
  in
  let rec build n =
    if n <= 1 then leaf ()
    else
      let left = 1 + Rng.int rng (n - 1) in
      Tree_lstm.Node (build left, build (n - left))
  in
  build tokens

(** A deterministic corpus of [n] trees. *)
let trees ?(seed = 2013) (config : Tree_lstm.config) n : Tree_lstm.tree list =
  let rng = Rng.create ~seed in
  List.init n (fun _ -> sample_tree rng config ~tokens:(sample_tokens rng))

let total_tokens ts =
  List.fold_left (fun acc t -> acc + Tree_lstm.num_tokens t) 0 ts
