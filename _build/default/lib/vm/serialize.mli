(** Binary (de)serialization of VM executables.

    Only the platform-independent part is stored (bytecode in a
    variable-length instruction encoding, constants, packed-function names);
    kernel implementations are relinked by name on load, mirroring the
    paper's split between portable bytecode and platform-dependent kernels. *)

exception Format_error of string

val magic : string

val to_bytes : Exe.t -> string

(** Decode an executable; packed functions come back unlinked.
    @raise Format_error on bad magic, truncation, or implausible counts. *)
val of_bytes : string -> Exe.t

val save_file : Exe.t -> string -> unit
val load_file : string -> Exe.t
