(** Storage regions produced by the [AllocStorage] instruction.

    A storage is a device-resident byte region from which tensors are
    (sub-)allocated by [AllocTensor]/[AllocTensorReg]. Suballocation is
    tracked for accounting — the memory-planning experiment measures
    allocation counts and peak footprint through {!Nimble_device.Pool}. *)

type buffer = (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  id : int;
  device : Nimble_device.Device.t;
  bytes : int;
  is_arena : bool;  (** produced by the memory planner's coalescing *)
  buffer : buffer;  (** really allocated, so allocation latency is real *)
  suballocs : (int * int array * Nimble_tensor.Dtype.t, Nimble_tensor.Tensor.t) Hashtbl.t;
      (** arena suballocation: a tensor at a planned (offset, shape, dtype)
          is materialized once and reused — allocating from a planned arena
          costs a lookup, not a malloc, which is what the memory-planning
          latency experiment measures *)
  mutable live : bool;
}

let counter = ref 0

let create ~device ~bytes ~is_arena =
  incr counter;
  let buffer = Bigarray.(Array1.create int8_unsigned c_layout (Stdlib.max 1 bytes)) in
  {
    id = !counter;
    device;
    bytes;
    is_arena;
    buffer;
    suballocs = Hashtbl.create (if is_arena then 32 else 1);
    live = true;
  }

(** Allocate — or, when this storage instance is being reused by the
    runtime pool, re-materialize — a tensor at [offset]. The planner
    guarantees tensors sharing a (storage, offset) have disjoint lifetimes,
    so reuse is the intended semantics of suballocation. *)
let alloc_tensor t ~offset ~(shape : int array) ~dtype =
  let key = (offset, shape, dtype) in
  match Hashtbl.find_opt t.suballocs key with
  | Some cached -> cached
  | None ->
      let fresh = Nimble_tensor.Tensor.empty ~dtype shape in
      Hashtbl.replace t.suballocs key fresh;
      fresh

let pp ppf t =
  Fmt.pf ppf "storage#%d(%dB on %a%s)" t.id t.bytes Nimble_device.Device.pp t.device
    (if t.is_arena then ", arena" else "")
