lib/vm/exe.mli: Format Isa Nimble_tensor Tensor
