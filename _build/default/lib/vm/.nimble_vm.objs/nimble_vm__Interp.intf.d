lib/vm/interp.mli: Exe Isa Nimble_tensor Obj Profiler
