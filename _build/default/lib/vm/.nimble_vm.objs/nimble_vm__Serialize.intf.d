lib/vm/serialize.mli: Exe
