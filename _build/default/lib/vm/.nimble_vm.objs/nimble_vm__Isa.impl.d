lib/vm/isa.ml: Dtype Fmt Nimble_tensor Shape
