lib/vm/profiler.ml: Array Float Fmt Hashtbl Isa List Nimble_device Stdlib
