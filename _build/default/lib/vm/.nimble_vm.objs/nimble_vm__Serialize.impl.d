lib/vm/serialize.ml: Array Buffer Char Dtype Exe Fmt Fun Int32 Int64 Isa Nimble_tensor String Tensor
