lib/vm/exe.ml: Array Fmt Isa List Nimble_tensor Option String Tensor
