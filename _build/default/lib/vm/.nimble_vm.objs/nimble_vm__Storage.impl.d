lib/vm/storage.ml: Array1 Bigarray Fmt Hashtbl Nimble_device Nimble_tensor Stdlib
