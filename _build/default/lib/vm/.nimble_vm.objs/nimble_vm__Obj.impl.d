lib/vm/obj.ml: Array Fmt Int64 Nimble_device Nimble_tensor Storage Tensor
