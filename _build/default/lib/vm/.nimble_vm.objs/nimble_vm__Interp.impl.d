lib/vm/interp.ml: Array Dtype Exe Fmt Hashtbl Isa List Nimble_device Nimble_tensor Obj Option Profiler Shape Stdlib Storage Tensor Unix
