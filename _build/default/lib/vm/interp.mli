(** The VM interpreter (paper §5.2): a dispatch loop over the 20-instruction
    ISA with tagged objects, storage pooling, profiling, and QoS hooks. *)

exception Vm_error of string

type t

(** Raised out of {!set_instruction_hook} callbacks to abort the current
    inference (the paper's §5.3 QoS scenario). *)
exception Preempted

(** [create exe] builds an interpreter over a fully linked executable.

    @param max_depth recursion guard for [Invoke] (default 100k frames).
    @param pooling reuse already-allocated storage chunks across top-level
    invocations — the runtime half of memory planning (default true).
    Result tensors are copied out of the pool at the API boundary.
    @raise Vm_error if the executable has unlinked packed functions. *)
val create : ?max_depth:int -> ?pooling:bool -> Exe.t -> t

(** Install (or clear, with [None]) a hook called before every instruction:
    a QoS scheduler can count, pause, or abort (raise {!Preempted}) the
    running inference. *)
val set_instruction_hook : t -> (Isa.t -> unit) option -> unit

(** Invoke a VM function (default ["main"]) with the given arguments.
    @raise Vm_error on any runtime fault (bad operands, device mismatch,
    shape-check failure, recursion overflow). *)
val invoke : ?func:string -> t -> Obj.t list -> Obj.t

(** Convenience wrapper: tensor inputs, tensor output. *)
val run_tensors :
  ?func:string -> t -> Nimble_tensor.Tensor.t list -> Nimble_tensor.Tensor.t

(** The interpreter's profiler: instruction counts, kernel vs other time,
    allocation time, per-kernel statistics, memory-pool accounting. *)
val profiler : t -> Profiler.t
