(** VM execution profiler.

    Separates kernel-invocation time from everything else (the breakdown of
    the paper's Table 4), counts instructions per opcode, times allocation
    instructions (the memory-planning latency study), and owns the memory
    pool accounting. *)

type t = {
  instr_counts : int array;
  mutable kernel_seconds : float;
  mutable alloc_seconds : float;
  mutable total_seconds : float;
  mutable kernel_invocations : int;
  mutable shape_func_invocations : int;
  per_kernel : (string, kernel_stat) Hashtbl.t;
      (** cumulative time and call count per packed function *)
  pool : Nimble_device.Pool.t;
}

and kernel_stat = { mutable calls : int; mutable seconds : float }

let create () =
  {
    instr_counts = Array.make Isa.num_opcodes 0;
    kernel_seconds = 0.0;
    alloc_seconds = 0.0;
    total_seconds = 0.0;
    kernel_invocations = 0;
    shape_func_invocations = 0;
    per_kernel = Hashtbl.create 32;
    pool = Nimble_device.Pool.create ();
  }

let reset t =
  Array.fill t.instr_counts 0 Isa.num_opcodes 0;
  t.kernel_seconds <- 0.0;
  t.alloc_seconds <- 0.0;
  t.total_seconds <- 0.0;
  t.kernel_invocations <- 0;
  t.shape_func_invocations <- 0;
  Hashtbl.reset t.per_kernel;
  Nimble_device.Pool.reset t.pool

let record_kernel t name ~seconds =
  let stat =
    match Hashtbl.find_opt t.per_kernel name with
    | Some s -> s
    | None ->
        let s = { calls = 0; seconds = 0.0 } in
        Hashtbl.replace t.per_kernel name s;
        s
  in
  stat.calls <- stat.calls + 1;
  stat.seconds <- stat.seconds +. seconds

(** The [k] packed functions with the largest cumulative time. *)
let top_kernels ?(k = 10) t : (string * kernel_stat) list =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.per_kernel []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b.seconds a.seconds)
  |> List.filteri (fun i _ -> i < k)

let count t instr =
  let op = Isa.opcode instr in
  t.instr_counts.(op) <- t.instr_counts.(op) + 1

let total_instrs t = Array.fold_left ( + ) 0 t.instr_counts

(** Time spent outside kernels: the VM's dynamism-handling overhead
    (Table 4's "others" column). *)
let other_seconds t = Stdlib.max 0.0 (t.total_seconds -. t.kernel_seconds)

let allocs t = Nimble_device.Pool.total_allocs t.pool
let transfers t = Nimble_device.Pool.total_transfers t.pool

let pp ppf t =
  Fmt.pf ppf "total=%.6fs kernels=%.6fs (%d calls) other=%.6fs alloc=%.6fs@."
    t.total_seconds t.kernel_seconds t.kernel_invocations (other_seconds t)
    t.alloc_seconds;
  Array.iteri
    (fun op n -> if n > 0 then Fmt.pf ppf "  %-16s %d@." (Isa.opcode_name op) n)
    t.instr_counts;
  match top_kernels ~k:5 t with
  | [] -> ()
  | top ->
      Fmt.pf ppf "top kernels:@.";
      List.iter
        (fun (name, s) ->
          Fmt.pf ppf "  %-48s %6d calls %10.3f ms@." name s.calls (1e3 *. s.seconds))
        top
