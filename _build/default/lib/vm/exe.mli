(** VM executables (paper §5): platform-independent bytecode (functions,
    constant pool, packed-function names) plus the platform-dependent kernel
    implementations, linked in by name after compilation or deserialization. *)

open Nimble_tensor

type vmfunc = {
  name : string;
  arity : int;
  register_count : int;
  code : Isa.t array;
}

(** A packed function: a compiled kernel or a compiled shape function.
    [run] computes fresh outputs; the interpreter blits them into the
    pre-allocated destinations of [InvokePacked]. *)
type packed = {
  packed_name : string;
  kind : [ `Kernel | `Shape_func ];
  run : Tensor.t list -> Tensor.t list;
}

type t = {
  funcs : vmfunc array;
  constants : Tensor.t array;
  packed_names : (string * [ `Kernel | `Shape_func ]) array;
  mutable packed : packed option array;  (** linked implementations *)
}

val create :
  funcs:vmfunc array ->
  constants:Tensor.t array ->
  packed_names:(string * [ `Kernel | `Shape_func ]) array ->
  t

(** Index of a VM function by name. @raise Invalid_argument if absent. *)
val func_index : t -> string -> int

val packed_index : t -> string -> int option

(** Link one packed implementation by name.
    @raise Invalid_argument for names the executable does not declare. *)
val link : t -> packed -> unit

(** Every declared packed function has an implementation. *)
val linked : t -> bool

val get_packed : t -> int -> packed

(** Static well-formedness checks: register bounds, jump targets, constant /
    function / packed indices, arity agreement, no fallthrough. Returns the
    violations (empty = valid); run after deserialization. *)
val validate : t -> string list

(** Human-readable disassembly. *)
val disassemble : Format.formatter -> t -> unit

val instruction_count : t -> int
