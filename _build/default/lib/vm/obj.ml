(** The VM's tagged object representation (paper §5.2).

    Coarse-grained values: tensors (with device placement), storages, ADTs
    (tuples are the tag-0 ADT), closures, and small integers used by tag
    tests. *)

open Nimble_tensor

type t =
  | Tensor of placed
  | Storage of Storage.t
  | Adt of { tag : int; fields : t array }
  | Closure of { func_index : int; captured : t array }
  | Int of int64

and placed = { data : Tensor.t; device : Nimble_device.Device.t }

let tuple_tag = 0

let unit = Adt { tag = tuple_tag; fields = [||] }
let tuple fields = Adt { tag = tuple_tag; fields }
let tensor ?(device = Nimble_device.Device.cpu) data = Tensor { data; device }
let int i = Int (Int64.of_int i)

exception Object_error of string

let err fmt = Fmt.kstr (fun s -> raise (Object_error s)) fmt

let to_tensor = function
  | Tensor p -> p.data
  | o -> err "expected a tensor, got %s"
           (match o with
           | Storage _ -> "storage"
           | Adt _ -> "adt"
           | Closure _ -> "closure"
           | Int _ -> "int"
           | Tensor _ -> assert false)

let to_placed = function
  | Tensor p -> p
  | _ -> err "expected a tensor object"

let to_storage = function
  | Storage s -> s
  | _ -> err "expected a storage object"

let to_adt = function
  | Adt { tag; fields } -> (tag, fields)
  | _ -> err "expected an ADT object"

let to_closure = function
  | Closure { func_index; captured } -> (func_index, captured)
  | _ -> err "expected a closure object"

(** Scalar value used by the [If] instruction's equality test. *)
let scalar_value = function
  | Int i -> Int64.to_int i
  | Tensor { data; _ } when Tensor.numel data = 1 -> Tensor.item_int data
  | _ -> err "If condition must be a scalar"

let rec pp ppf = function
  | Tensor { data; device } ->
      Fmt.pf ppf "%a@%a" Tensor.pp data Nimble_device.Device.pp device
  | Storage s -> Storage.pp ppf s
  | Adt { tag; fields } ->
      Fmt.pf ppf "adt<%d>(%a)" tag Fmt.(array ~sep:(any ", ") pp) fields
  | Closure { func_index; captured } ->
      Fmt.pf ppf "closure<fn%d,%d captured>" func_index (Array.length captured)
  | Int i -> Fmt.pf ppf "%Ld" i
