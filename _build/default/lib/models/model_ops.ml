(** The operator interface model definitions are written against.

    Each model's math is defined once as a functor over [OPS]; the reference
    executor instantiates it with direct tensor kernels, and every baseline
    framework instantiates it with its own dispatch semantics (eager with
    per-op overhead, static graph construction, ...). The Nimble IR builders
    instantiate it with IR expression construction. *)

open Nimble_tensor

module type OPS = sig
  type t

  val const : Tensor.t -> t
  val dense : t -> t -> t
  val bias_add : t -> t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val sigmoid : t -> t
  val tanh : t -> t
  val gelu : t -> t
  val softmax : axis:int -> t -> t
  val layer_norm : t -> gamma:t -> beta:t -> t
  val split : axis:int -> sections:int -> t -> t list
  val slice : begins:int array -> ends:int array -> t -> t
  val reshape : int array -> t -> t
  val transpose : axes:int array -> t -> t
  val batch_matmul : t -> t -> t
  val mul_scalar : float -> t -> t
  val concat : axis:int -> t list -> t
  val relu : t -> t
  val conv2d : stride:int -> padding:int -> t -> t -> t
  val max_pool2d : window:int -> stride:int -> t -> t
  val global_avg_pool2d : t -> t
  val batch_norm : t -> gamma:t -> beta:t -> mean:t -> var:t -> t
end

(** The reference instantiation: direct kernel calls, no framework. *)
module Tensor_ops : OPS with type t = Tensor.t = struct
  type t = Tensor.t

  let const t = t
  let dense = Ops_matmul.dense
  let bias_add = Ops_elem.add
  let add = Ops_elem.add
  let sub = Ops_elem.sub
  let mul = Ops_elem.mul
  let sigmoid = Ops_elem.sigmoid
  let tanh = Ops_elem.tanh
  let gelu = Ops_elem.gelu
  let softmax ~axis t = Ops_nn.softmax ~axis t
  let layer_norm t ~gamma ~beta = Ops_nn.layer_norm t ~gamma ~beta
  let split ~axis ~sections t = Ops_shape.split ~axis ~sections t
  let slice ~begins ~ends t = Ops_shape.strided_slice ~begins ~ends t
  let reshape s t = Tensor.reshape t s
  let transpose ~axes t = Ops_shape.transpose ~axes t
  let batch_matmul = Ops_matmul.batch_matmul
  let mul_scalar c t = Ops_elem.mul_scalar t c
  let concat ~axis ts = Ops_shape.concat ~axis ts
  let relu = Ops_elem.relu
  let conv2d ~stride ~padding d w = Ops_nn.conv2d ~stride ~padding d w
  let max_pool2d ~window ~stride t = Ops_nn.max_pool2d ~stride ~window t
  let global_avg_pool2d = Ops_nn.global_avg_pool2d
  let batch_norm t ~gamma ~beta ~mean ~var = Ops_nn.batch_norm t ~gamma ~beta ~mean ~var
end

(** IR-expression instantiation, used by the model-to-IR builders. *)
module Ir_ops : OPS with type t = Nimble_ir.Expr.t = struct
  open Nimble_ir

  type t = Expr.t

  let const t = Expr.Const t
  let dense a b = Expr.op_call "dense" [ a; b ]
  let bias_add a b = Expr.op_call "bias_add" [ a; b ]
  let add a b = Expr.op_call "add" [ a; b ]
  let sub a b = Expr.op_call "subtract" [ a; b ]
  let mul a b = Expr.op_call "multiply" [ a; b ]
  let sigmoid a = Expr.op_call "sigmoid" [ a ]
  let tanh a = Expr.op_call "tanh" [ a ]
  let gelu a = Expr.op_call "gelu" [ a ]
  let softmax ~axis a = Expr.op_call ~attrs:[ ("axis", Attrs.Int axis) ] "softmax" [ a ]

  let layer_norm a ~gamma ~beta = Expr.op_call "layer_norm" [ a; gamma; beta ]

  let split ~axis ~sections a =
    let v = Expr.fresh_var "split" in
    ignore v;
    let call =
      Expr.op_call
        ~attrs:[ ("axis", Attrs.Int axis); ("sections", Attrs.Int sections) ]
        "split" [ a ]
    in
    List.init sections (fun i -> Expr.Proj (call, i))

  let slice ~begins ~ends a =
    Expr.op_call
      ~attrs:
        [
          ("begins", Attrs.Ints (Array.to_list begins));
          ("ends", Attrs.Ints (Array.to_list ends));
        ]
      "strided_slice" [ a ]

  let reshape s a =
    Expr.op_call ~attrs:[ ("newshape", Attrs.Ints (Array.to_list s)) ] "reshape" [ a ]

  let transpose ~axes a =
    Expr.op_call ~attrs:[ ("axes", Attrs.Ints (Array.to_list axes)) ] "transpose" [ a ]

  let batch_matmul a b = Expr.op_call "batch_matmul" [ a; b ]
  let mul_scalar c a = Expr.op_call "multiply" [ a; Expr.const_scalar c ]
  let concat ~axis ts = Expr.op_call ~attrs:[ ("axis", Attrs.Int axis) ] "concat" ts
  let relu a = Expr.op_call "relu" [ a ]

  let conv2d ~stride ~padding d w =
    Expr.op_call
      ~attrs:[ ("stride", Attrs.Int stride); ("padding", Attrs.Int padding) ]
      "conv2d" [ d; w ]

  let max_pool2d ~window ~stride a =
    Expr.op_call
      ~attrs:[ ("window", Attrs.Int window); ("stride", Attrs.Int stride) ]
      "max_pool2d" [ a ]

  let global_avg_pool2d a = Expr.op_call "global_avg_pool2d" [ a ]

  let batch_norm a ~gamma ~beta ~mean ~var =
    Expr.op_call "batch_norm" [ a; gamma; beta; mean; var ]
end
