(** Sequence-to-sequence model (Sutskever et al., the paper's canonical
    dynamic-control-flow citation): a GRU encoder consumes a runtime-length
    [TensorList], and a greedy decoder emits a runtime-length output matrix
    — both directions of dynamism in one executable:

    - input length unknown (recursion over an ADT),
    - output length data-dependent (grow-tensor loop with a confidence
      stop). *)

open Nimble_tensor
open Nimble_ir

type config = {
  input_size : int;
  hidden_size : int;
  vocab_size : int;
  max_steps : int;
  confidence : float;
}

let default_config =
  { input_size = 24; hidden_size = 32; vocab_size = 20; max_steps = 10; confidence = 0.3 }

type weights = {
  config : config;
  encoder : Gru.weights;
  decoder : Decoder.weights;
}

let init_weights ?(seed = 12) (config : config) : weights =
  {
    config;
    encoder =
      Gru.init_weights ~seed
        { Gru.input_size = config.input_size; hidden_size = config.hidden_size };
    decoder =
      Decoder.init_weights ~seed:(seed + 1)
        {
          Decoder.hidden_size = config.hidden_size;
          vocab_size = config.vocab_size;
          max_steps = config.max_steps;
          confidence = config.confidence;
        };
  }

(** Reference: encode the sequence, then decode greedily. *)
let reference (w : weights) (xs : Tensor.t list) : Tensor.t =
  Decoder.reference w.decoder (Gru.reference w.encoder xs)

(** Build the IR module: the encoder's [scan] and the decoder's [decode]
    recursion live side by side; [main] chains them. *)
let ir_module (w : weights) : Irmod.t =
  let enc = Gru.ir_module w.encoder in
  let dec = Decoder.ir_module w.decoder in
  let m = Irmod.create () in
  List.iter (Irmod.add_adt m) (Irmod.adts enc);
  (* pull in both recursions under their original names *)
  Irmod.add_func m "scan" (Irmod.func_exn enc "scan");
  Irmod.add_func m "decode" (Irmod.func_exn dec "decode");
  let hs = w.config.hidden_size in
  let input = Expr.fresh_var ~ty:(Ty.Adt "TensorList") "input" in
  let h = Expr.fresh_var "h" in
  Irmod.add_func m "main"
    (Expr.fn_def [ input ]
       (Expr.Let
          ( h,
            Expr.call (Expr.Global "scan")
              [ Expr.Var input; Expr.Const (Tensor.zeros [| 1; hs |]) ],
            Expr.call (Expr.Global "decode")
              [
                Expr.Var h;
                Expr.Const (Tensor.zeros [| 0; w.config.vocab_size |]);
                Expr.const_scalar (float_of_int w.config.max_steps);
              ] )));
  m

let random_sequence ?(seed = 19) (config : config) ~len : Tensor.t list =
  let rng = Rng.create ~seed:(seed + len) in
  List.init len (fun _ -> Tensor.randn ~scale:0.6 rng [| 1; config.input_size |])
