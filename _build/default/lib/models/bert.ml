(** BERT encoder (Devlin et al.) — the paper's dynamic-shape benchmark
    model: a transformer stack whose sequence length varies per input
    (the [Any] dimension). Paper configuration: BERT-base (12 layers,
    hidden 768, 12 heads). The [small_config] keeps real measured runs
    tractable in pure OCaml; the trace-driven cost model scales to base. *)

open Nimble_tensor
open Nimble_ir

type config = {
  num_layers : int;
  hidden_size : int;
  num_heads : int;
  ffn_size : int;
  vocab_size : int;
}

let base_config =
  { num_layers = 12; hidden_size = 768; num_heads = 12; ffn_size = 3072; vocab_size = 30522 }

let small_config =
  { num_layers = 2; hidden_size = 64; num_heads = 4; ffn_size = 128; vocab_size = 1000 }

type layer_weights = {
  w_qkv : Tensor.t;  (** (3H, H) *)
  b_qkv : Tensor.t;  (** (3H) *)
  w_attn_out : Tensor.t;  (** (H, H) *)
  b_attn_out : Tensor.t;
  ln1_gamma : Tensor.t;
  ln1_beta : Tensor.t;
  w_ffn1 : Tensor.t;  (** (F, H) *)
  b_ffn1 : Tensor.t;
  w_ffn2 : Tensor.t;  (** (H, F) *)
  b_ffn2 : Tensor.t;
  ln2_gamma : Tensor.t;
  ln2_beta : Tensor.t;
}

type weights = { config : config; layers : layer_weights list; embedding : Tensor.t }

let init_weights ?(seed = 3) (config : config) : weights =
  let rng = Rng.create ~seed in
  let scale = 0.05 in
  let h = config.hidden_size and f = config.ffn_size in
  let layer _ =
    {
      w_qkv = Tensor.randn ~scale rng [| 3 * h; h |];
      b_qkv = Tensor.randn ~scale rng [| 3 * h |];
      w_attn_out = Tensor.randn ~scale rng [| h; h |];
      b_attn_out = Tensor.randn ~scale rng [| h |];
      ln1_gamma = Tensor.ones [| h |];
      ln1_beta = Tensor.zeros [| h |];
      w_ffn1 = Tensor.randn ~scale rng [| f; h |];
      b_ffn1 = Tensor.randn ~scale rng [| f |];
      w_ffn2 = Tensor.randn ~scale rng [| h; f |];
      b_ffn2 = Tensor.randn ~scale rng [| h |];
      ln2_gamma = Tensor.ones [| h |];
      ln2_beta = Tensor.zeros [| h |];
    }
  in
  {
    config;
    layers = List.init config.num_layers layer;
    embedding = Tensor.randn ~scale rng [| config.vocab_size; h |];
  }

(* ------------------------------------------------------------------ *)
(* Encoder math, shared by every executor                              *)
(* ------------------------------------------------------------------ *)

module Encoder (O : Model_ops.OPS) = struct
  (** One transformer layer over [x : (s, H)]. *)
  let layer (cfg : config) (w : layer_weights) x =
    let h = cfg.hidden_size and heads = cfg.num_heads in
    let d = h / heads in
    let qkv = O.bias_add (O.dense x (O.const w.w_qkv)) (O.const w.b_qkv) in
    let q, k, v =
      match O.split ~axis:1 ~sections:3 qkv with
      | [ q; k; v ] -> (q, k, v)
      | _ -> assert false
    in
    (* (s, H) -> (heads, s, d) *)
    let to_heads t = O.transpose ~axes:[| 1; 0; 2 |] (O.reshape [| -1; heads; d |] t) in
    let qh = to_heads q and vh = to_heads v in
    let kh = O.transpose ~axes:[| 1; 2; 0 |] (O.reshape [| -1; heads; d |] k) in
    let scores = O.mul_scalar (1.0 /. sqrt (float_of_int d)) (O.batch_matmul qh kh) in
    let probs = O.softmax ~axis:(-1) scores in
    let ctx = O.batch_matmul probs vh in
    (* (heads, s, d) -> (s, H) *)
    let merged = O.reshape [| -1; h |] (O.transpose ~axes:[| 1; 0; 2 |] ctx) in
    let attn_out = O.bias_add (O.dense merged (O.const w.w_attn_out)) (O.const w.b_attn_out) in
    let x1 =
      O.layer_norm (O.add x attn_out) ~gamma:(O.const w.ln1_gamma) ~beta:(O.const w.ln1_beta)
    in
    let ffn =
      O.bias_add
        (O.dense
           (O.gelu (O.bias_add (O.dense x1 (O.const w.w_ffn1)) (O.const w.b_ffn1)))
           (O.const w.w_ffn2))
        (O.const w.b_ffn2)
    in
    O.layer_norm (O.add x1 ffn) ~gamma:(O.const w.ln2_gamma) ~beta:(O.const w.ln2_beta)

  let encode (w : weights) x = List.fold_left (fun x lw -> layer w.config lw x) x w.layers
end

module Ref_encoder = Encoder (Model_ops.Tensor_ops)

(** Reference execution over an embedded sequence [(s, H)]. *)
let reference (w : weights) (x : Tensor.t) : Tensor.t = Ref_encoder.encode w x

(** Embed a token-id sequence. *)
let embed (w : weights) (ids : int array) : Tensor.t =
  let ids_t = Tensor.of_int_array ~dtype:Dtype.I64 [| Array.length ids |] ids in
  Ops_nn.embedding w.embedding ids_t

(* ------------------------------------------------------------------ *)
(* Nimble IR build                                                     *)
(* ------------------------------------------------------------------ *)

module Ir_encoder = Encoder (Model_ops.Ir_ops)

(** Build the IR module: main takes an embedded sequence [(Any, H)]. *)
let ir_module (w : weights) : Irmod.t =
  let h = w.config.hidden_size in
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static h ]) "x" in
  Irmod.of_main (Expr.fn_def [ x ] (Ir_encoder.encode w (Expr.Var x)))

(** Build an IR module specialized to a static sequence length (the TVM
    static-compilation baseline of Table 4). *)
let ir_module_static (w : weights) ~seq_len : Irmod.t =
  let h = w.config.hidden_size in
  let x = Expr.fresh_var ~ty:(Ty.tensor_of_shape [| seq_len; h |]) "x" in
  Irmod.of_main (Expr.fn_def [ x ] (Ir_encoder.encode w (Expr.Var x)))

(** Random token ids of a given length. *)
let random_ids ?(seed = 17) (w : weights) ~len : int array =
  let rng = Rng.create ~seed:(seed + len) in
  Array.init len (fun _ -> Rng.int rng w.config.vocab_size)
