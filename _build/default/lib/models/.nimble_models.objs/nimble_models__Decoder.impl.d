lib/models/decoder.ml: Attrs Dim Expr Irmod Model_ops Nimble_ir Nimble_tensor Ops_reduce Ops_shape Rng Tensor Ty
