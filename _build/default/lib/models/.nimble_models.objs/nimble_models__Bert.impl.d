lib/models/bert.ml: Array Dim Dtype Expr Irmod List Model_ops Nimble_ir Nimble_tensor Ops_nn Rng Tensor Ty
