lib/models/lstm.ml: Adt Dim Expr Fmt Fun Irmod List Model_ops Nimble_ir Nimble_tensor Rng Tensor Ty
