lib/models/seq2seq.ml: Decoder Expr Gru Irmod List Nimble_ir Nimble_tensor Rng Tensor Ty
