lib/models/vision.ml: Expr Irmod Model_ops Nimble_ir Nimble_tensor Rng Tensor Ty
