lib/models/gru.ml: Adt Dim Expr Irmod List Model_ops Nimble_ir Nimble_tensor Rng Tensor Ty
