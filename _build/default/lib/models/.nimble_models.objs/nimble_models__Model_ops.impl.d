lib/models/model_ops.ml: Array Attrs Expr List Nimble_ir Nimble_tensor Ops_elem Ops_matmul Ops_nn Ops_shape Tensor
