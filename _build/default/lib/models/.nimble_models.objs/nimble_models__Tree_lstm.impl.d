lib/models/tree_lstm.ml: Adt Expr Irmod Model_ops Nimble_ir Nimble_tensor Rng Tensor Ty
