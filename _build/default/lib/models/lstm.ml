(** LSTM (Hochreiter & Schmidhuber) — the paper's dynamic-control-flow
    benchmark model. Paper configuration: input 300, hidden 512, 1 or 2
    layers, batch 1, variable-length token sequences.

    The sequence is a [TensorList] ADT, so its length is only known at
    runtime; the Nimble build compiles the recursion over it into VM control
    flow, while baselines drive it from the host language. *)

open Nimble_tensor
open Nimble_ir

type config = { input_size : int; hidden_size : int; num_layers : int }

let default_config = { input_size = 300; hidden_size = 512; num_layers = 1 }
let small_config = { input_size = 32; hidden_size = 48; num_layers = 1 }

type layer_weights = {
  wx : Tensor.t;  (** (4H, I) *)
  wh : Tensor.t;  (** (4H, H) *)
  b : Tensor.t;  (** (4H) *)
}

type weights = { config : config; layers : layer_weights list }

let init_weights ?(seed = 1) (config : config) : weights =
  let rng = Rng.create ~seed in
  let scale = 0.08 in
  let layer l =
    let input = if l = 0 then config.input_size else config.hidden_size in
    {
      wx = Tensor.randn ~scale rng [| 4 * config.hidden_size; input |];
      wh = Tensor.randn ~scale rng [| 4 * config.hidden_size; config.hidden_size |];
      b = Tensor.randn ~scale rng [| 4 * config.hidden_size |];
    }
  in
  { config; layers = List.init config.num_layers layer }

(* ------------------------------------------------------------------ *)
(* Cell math, shared by every executor                                 *)
(* ------------------------------------------------------------------ *)

module Cell (O : Model_ops.OPS) = struct
  (** One LSTM step: [x : (1, I)], [h c : (1, H)] -> [(h', c')]. *)
  let step (w : layer_weights) ~hidden_size x (h, c) =
    let gates =
      O.bias_add (O.add (O.dense x (O.const w.wx)) (O.dense h (O.const w.wh))) (O.const w.b)
    in
    let hs = hidden_size in
    let part i = O.slice ~begins:[| 0; i * hs |] ~ends:[| 1; (i + 1) * hs |] gates in
    let i_gate = O.sigmoid (part 0) in
    let f_gate = O.sigmoid (part 1) in
    let g_gate = O.tanh (part 2) in
    let o_gate = O.sigmoid (part 3) in
    let c' = O.add (O.mul f_gate c) (O.mul i_gate g_gate) in
    let h' = O.mul o_gate (O.tanh c') in
    (h', c')
end

module Ref_cell = Cell (Model_ops.Tensor_ops)

(** Reference execution over a token sequence; returns the last hidden state
    of the top layer. *)
let reference (w : weights) (xs : Tensor.t list) : Tensor.t =
  let hs = w.config.hidden_size in
  let zero () = Tensor.zeros [| 1; hs |] in
  let run_layer lw seq =
    let _, outputs =
      List.fold_left
        (fun ((h, c), acc) x ->
          let h', c' = Ref_cell.step lw ~hidden_size:hs x (h, c) in
          ((h', c'), h' :: acc))
        ((zero (), zero ()), [])
        seq
    in
    List.rev outputs
  in
  let final = List.fold_left (fun seq lw -> run_layer lw seq) xs w.layers in
  match List.rev final with
  | last :: _ -> last
  | [] -> Tensor.zeros [| 1; hs |]

(* ------------------------------------------------------------------ *)
(* Nimble IR build                                                     *)
(* ------------------------------------------------------------------ *)

module Ir_cell = Cell (Model_ops.Ir_ops)

(** Build the IR module. The main function takes a [TensorList] of
    embeddings [(1, I)] and returns the last top-layer hidden state. *)
let ir_module (w : weights) : Irmod.t =
  let hs = w.config.hidden_size in
  let elem_ty = Ty.tensor [ Dim.static 1; Dim.Any ] in
  let list_adt = Adt.tensor_list ~elem_ty in
  let nil = Adt.ctor_exn list_adt "Nil" in
  let cons = Adt.ctor_exn list_adt "Cons" in
  let list_ty = Ty.Adt "TensorList" in
  let state_ty = Ty.tensor_of_shape [| 1; hs |] in
  let m = Irmod.create () in
  Irmod.add_adt m list_adt;
  (* Per-layer recursive scan: layer_l(xs, h, c) -> TensorList of hiddens. *)
  List.iteri
    (fun l lw ->
      let fname = Fmt.str "layer%d" l in
      let in_ty = Ty.tensor [ Dim.static 1; Dim.Any ] in
      let xs = Expr.fresh_var ~ty:list_ty "xs" in
      let h = Expr.fresh_var ~ty:state_ty "h" in
      let c = Expr.fresh_var ~ty:state_ty "c" in
      let x = Expr.fresh_var ~ty:in_ty "x" in
      let rest = Expr.fresh_var ~ty:list_ty "rest" in
      let hc = Expr.fresh_var "hc" in
      let h' = Expr.fresh_var ~ty:state_ty "h2" in
      let c' = Expr.fresh_var ~ty:state_ty "c2" in
      let step_h, step_c = Ir_cell.step lw ~hidden_size:hs (Expr.Var x) (Expr.Var h, Expr.Var c) in
      let body =
        Expr.Match
          ( Expr.Var xs,
            [
              { Expr.pat = Expr.Pctor (nil, []); rhs = Expr.ctor_call nil [] };
              {
                Expr.pat = Expr.Pctor (cons, [ Expr.Pvar x; Expr.Pvar rest ]);
                rhs =
                  Expr.Let
                    ( hc,
                      Expr.Tuple [ step_h; step_c ],
                      Expr.Let
                        ( h',
                          Expr.Proj (Expr.Var hc, 0),
                          Expr.Let
                            ( c',
                              Expr.Proj (Expr.Var hc, 1),
                              Expr.ctor_call cons
                                [
                                  Expr.Var h';
                                  Expr.call (Expr.Global fname)
                                    [ Expr.Var rest; Expr.Var h'; Expr.Var c' ];
                                ] ) ) );
              };
            ] )
      in
      Irmod.add_func m fname (Expr.fn_def ~ret_ty:list_ty [ xs; h; c ] body))
    w.layers;
  (* last(xs, acc): the final element of a TensorList. *)
  let xs = Expr.fresh_var ~ty:list_ty "xs" in
  let acc = Expr.fresh_var ~ty:(Ty.tensor [ Dim.static 1; Dim.Any ]) "acc" in
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.static 1; Dim.Any ]) "x" in
  let rest = Expr.fresh_var ~ty:list_ty "rest" in
  Irmod.add_func m "last"
    (Expr.fn_def
       ~ret_ty:(Ty.tensor [ Dim.static 1; Dim.Any ])
       [ xs; acc ]
       (Expr.Match
          ( Expr.Var xs,
            [
              { Expr.pat = Expr.Pctor (nil, []); rhs = Expr.Var acc };
              {
                Expr.pat = Expr.Pctor (cons, [ Expr.Pvar x; Expr.Pvar rest ]);
                rhs = Expr.call (Expr.Global "last") [ Expr.Var rest; Expr.Var x ];
              };
            ] )));
  (* main: chain the layers, then take the last hidden state. *)
  let input = Expr.fresh_var ~ty:list_ty "input" in
  let zero = Expr.Const (Tensor.zeros [| 1; hs |]) in
  let chained =
    List.fold_left
      (fun seq l -> Expr.call (Expr.Global (Fmt.str "layer%d" l)) [ seq; zero; zero ])
      (Expr.Var input)
      (List.init w.config.num_layers Fun.id)
  in
  Irmod.add_func m "main"
    (Expr.fn_def [ input ] (Expr.call (Expr.Global "last") [ chained; zero ]));
  m

(** Encode a token sequence as the VM's TensorList object. *)
let input_of_sequence ~(nil_tag : int) ~(cons_tag : int) (wrap : Tensor.t -> 'a)
    (mk_adt : int -> 'a array -> 'a) (xs : Tensor.t list) : 'a =
  List.fold_right
    (fun x acc -> mk_adt cons_tag [| wrap x; acc |])
    xs
    (mk_adt nil_tag [||])

(** Generate a random embedded sequence of the given length. *)
let random_sequence ?(seed = 11) (config : config) ~len : Tensor.t list =
  let rng = Rng.create ~seed:(seed + len) in
  List.init len (fun _ -> Tensor.randn ~scale:0.5 rng [| 1; config.input_size |])
