(** Greedy auto-regressive decoder — the paper's motivating example of a
    program that "grows a tensor on each loop iteration (a case existing in
    the decoder of many NLP models)", which is "impossible to type and
    compile without proper type system support" (§4.1).

    Each step appends one vocabulary distribution to the accumulated output
    (so the result's leading dimension is [Any] and grows per iteration) and
    stops either on a confidence threshold (data-dependent control flow) or
    when the step budget runs out. *)

open Nimble_tensor
open Nimble_ir

type config = {
  hidden_size : int;
  vocab_size : int;
  max_steps : int;
  confidence : float;  (** stop when the best token's probability exceeds this *)
}

let default_config = { hidden_size = 32; vocab_size = 24; max_steps = 12; confidence = 0.35 }

type weights = {
  config : config;
  w_out : Tensor.t;  (** (V, H): state -> logits *)
  b_out : Tensor.t;  (** (V) *)
  w_in : Tensor.t;  (** (H, V): emitted distribution -> next state *)
  b_in : Tensor.t;  (** (H) *)
}

let init_weights ?(seed = 6) (config : config) : weights =
  let rng = Rng.create ~seed in
  let scale = 0.35 in
  {
    config;
    w_out = Tensor.randn ~scale rng [| config.vocab_size; config.hidden_size |];
    b_out = Tensor.randn ~scale rng [| config.vocab_size |];
    w_in = Tensor.randn ~scale rng [| config.hidden_size; config.vocab_size |];
    b_in = Tensor.randn ~scale rng [| config.hidden_size |];
  }

(* ------------------------------------------------------------------ *)
(* Step math, shared by reference and IR                               *)
(* ------------------------------------------------------------------ *)

module Step (O : Model_ops.OPS) = struct
  (** state [(1, H)] -> emitted distribution [(1, V)]. *)
  let emit (w : weights) h =
    O.softmax ~axis:(-1) (O.bias_add (O.dense h (O.const w.w_out)) (O.const w.b_out))

  (** emitted distribution [(1, V)] -> next state [(1, H)]. *)
  let next_state (w : weights) dist =
    O.tanh (O.bias_add (O.dense dist (O.const w.w_in)) (O.const w.b_in))
end

module Ref_step = Step (Model_ops.Tensor_ops)

(** Reference execution: returns the [(steps, V)] matrix of emitted
    distributions. The number of rows is input-dependent. *)
let reference (w : weights) (h0 : Tensor.t) : Tensor.t =
  let rec go h acc steps_left =
    let dist = Ref_step.emit w h in
    let acc = acc @ [ dist ] in
    let best = Tensor.item (Ops_reduce.max dist) in
    if steps_left <= 1 || best > w.config.confidence then acc
    else go (Ref_step.next_state w dist) acc (steps_left - 1)
  in
  Ops_shape.concat ~axis:0 (go h0 [] w.config.max_steps)

(* ------------------------------------------------------------------ *)
(* Nimble IR build                                                     *)
(* ------------------------------------------------------------------ *)

module Ir_step = Step (Model_ops.Ir_ops)

(** Build the IR module: [main : (1, H) -> (Any, V)] — the output's leading
    dimension only exists at runtime. *)
let ir_module (w : weights) : Irmod.t =
  let h_ty = Ty.tensor_of_shape [| 1; w.config.hidden_size |] in
  let acc_ty = Ty.tensor [ Dim.Any; Dim.static w.config.vocab_size ] in
  let scalar_ty = Ty.scalar () in
  let m = Irmod.create () in
  (* decode(h, acc, steps_left) -> (Any, V) *)
  let h = Expr.fresh_var ~ty:h_ty "h" in
  let acc = Expr.fresh_var ~ty:acc_ty "acc" in
  let steps = Expr.fresh_var ~ty:scalar_ty "steps" in
  let dist = Expr.fresh_var "dist" in
  let acc2 = Expr.fresh_var "acc2" in
  let recurse =
    Expr.call (Expr.Global "decode")
      [
        Ir_step.next_state w (Expr.Var dist);
        Expr.Var acc2;
        Expr.op_call "subtract" [ Expr.Var steps; Expr.const_scalar 1.0 ];
      ]
  in
  let body =
    Expr.Let
      ( dist,
        Ir_step.emit w (Expr.Var h),
        Expr.Let
          ( acc2,
            Expr.op_call ~attrs:[ ("axis", Attrs.Int 0) ] "concat"
              [ Expr.Var acc; Expr.Var dist ],
            Expr.If
              ( Expr.op_call "less" [ Expr.Var steps; Expr.const_scalar 1.5 ],
                Expr.Var acc2,
                Expr.If
                  ( Expr.op_call "greater"
                      [ Expr.op_call "max" [ Expr.Var dist ];
                        Expr.const_scalar w.config.confidence ],
                    Expr.Var acc2,
                    recurse ) ) ) )
  in
  Irmod.add_func m "decode" (Expr.fn_def ~ret_ty:acc_ty [ h; acc; steps ] body);
  let h0 = Expr.fresh_var ~ty:h_ty "h0" in
  Irmod.add_func m "main"
    (Expr.fn_def [ h0 ]
       (Expr.call (Expr.Global "decode")
          [
            Expr.Var h0;
            Expr.Const (Tensor.zeros [| 0; w.config.vocab_size |]);
            Expr.const_scalar (float_of_int w.config.max_steps);
          ]));
  m

(** A random initial state. *)
let random_state ?(seed = 23) (config : config) : Tensor.t =
  Tensor.randn ~scale:1.0 (Rng.create ~seed) [| 1; config.hidden_size |]
