(** Static computer-vision models for the memory-planning footprint study
    (paper §6.3 compares Nimble's planner against TVM's static planning on
    ResNet, MobileNet, VGG and SqueezeNet).

    The graphs are faithful in topology (blocks, skip connections, fire
    modules) but scaled to CIFAR-sized inputs so pure-OCaml convolution
    stays tractable; the memory-planning measurements are structural
    (allocation counts, liveness, footprint), which the scaling preserves.
    MobileNet's depthwise convolutions are modelled as grouped = 1 standard
    convolutions of matching channel counts (no depthwise kernel in the
    tensor substrate); the allocation pattern per block is identical. *)

open Nimble_tensor
open Nimble_ir
module O = Model_ops.Ir_ops

type builder = { rng : Rng.t; mutable n_params : int }

let conv_w b ~out_c ~in_c ~k =
  b.n_params <- b.n_params + (out_c * in_c * k * k);
  Tensor.randn ~scale:0.1 b.rng [| out_c; in_c; k; k |]

let bn_params b ~c =
  ignore b;
  ( Tensor.ones [| c |],
    Tensor.zeros [| c |],
    Tensor.zeros [| c |],
    Tensor.ones [| c |] )

let conv_bn_relu b x ~in_c ~out_c ~k ~stride ~padding =
  let w = conv_w b ~out_c ~in_c ~k in
  let gamma, beta, mean, var = bn_params b ~c:out_c in
  O.relu
    (O.batch_norm
       (O.conv2d ~stride ~padding x (O.const w))
       ~gamma:(O.const gamma) ~beta:(O.const beta) ~mean:(O.const mean)
       ~var:(O.const var))

let dense_head b x ~in_c ~classes =
  let w = Tensor.randn ~scale:0.1 b.rng [| classes; in_c |] in
  let bias = Tensor.zeros [| classes |] in
  O.bias_add (O.dense x (O.const w)) (O.const bias)

let make_module body_fn ~input_shape =
  let x = Expr.fresh_var ~ty:(Ty.tensor_of_shape input_shape) "image" in
  Irmod.of_main (Expr.fn_def [ x ] (body_fn (Expr.Var x)))

(** ResNet-style network: stem + 4 residual blocks. *)
let resnet ?(seed = 31) ?(classes = 10) () : Irmod.t =
  let b = { rng = Rng.create ~seed; n_params = 0 } in
  let block x ~c ~stride =
    let in_c = c / if stride = 2 then 2 else 1 in
    let y = conv_bn_relu b x ~in_c ~out_c:c ~k:3 ~stride ~padding:1 in
    let y = conv_bn_relu b y ~in_c:c ~out_c:c ~k:3 ~stride:1 ~padding:1 in
    let shortcut =
      if stride = 1 then x else conv_bn_relu b x ~in_c ~out_c:c ~k:1 ~stride ~padding:0
    in
    O.relu (O.add y shortcut)
  in
  make_module ~input_shape:[| 1; 3; 32; 32 |] (fun x ->
      let x = conv_bn_relu b x ~in_c:3 ~out_c:16 ~k:3 ~stride:1 ~padding:1 in
      let x = block x ~c:16 ~stride:1 in
      let x = block x ~c:16 ~stride:1 in
      let x = block x ~c:32 ~stride:2 in
      let x = block x ~c:64 ~stride:2 in
      let x = O.global_avg_pool2d x in
      dense_head b x ~in_c:64 ~classes)

(** MobileNetV1-style network: depthwise-separable blocks (see module doc
    for the depthwise substitution). *)
let mobilenet ?(seed = 32) ?(classes = 10) () : Irmod.t =
  let b = { rng = Rng.create ~seed; n_params = 0 } in
  let sep_block x ~in_c ~out_c ~stride =
    (* "depthwise" 3x3 then pointwise 1x1 *)
    let y = conv_bn_relu b x ~in_c ~out_c:in_c ~k:3 ~stride ~padding:1 in
    conv_bn_relu b y ~in_c ~out_c ~k:1 ~stride:1 ~padding:0
  in
  make_module ~input_shape:[| 1; 3; 32; 32 |] (fun x ->
      let x = conv_bn_relu b x ~in_c:3 ~out_c:16 ~k:3 ~stride:1 ~padding:1 in
      let x = sep_block x ~in_c:16 ~out_c:32 ~stride:1 in
      let x = sep_block x ~in_c:32 ~out_c:64 ~stride:2 in
      let x = sep_block x ~in_c:64 ~out_c:64 ~stride:1 in
      let x = sep_block x ~in_c:64 ~out_c:128 ~stride:2 in
      let x = O.global_avg_pool2d x in
      dense_head b x ~in_c:128 ~classes)

(** VGG-style network: conv stacks with max pooling. *)
let vgg ?(seed = 33) ?(classes = 10) () : Irmod.t =
  let b = { rng = Rng.create ~seed; n_params = 0 } in
  make_module ~input_shape:[| 1; 3; 32; 32 |] (fun x ->
      let x = conv_bn_relu b x ~in_c:3 ~out_c:32 ~k:3 ~stride:1 ~padding:1 in
      let x = O.max_pool2d ~window:2 ~stride:2 x in
      let x = conv_bn_relu b x ~in_c:32 ~out_c:64 ~k:3 ~stride:1 ~padding:1 in
      let x = O.max_pool2d ~window:2 ~stride:2 x in
      let x = conv_bn_relu b x ~in_c:64 ~out_c:128 ~k:3 ~stride:1 ~padding:1 in
      let x = conv_bn_relu b x ~in_c:128 ~out_c:128 ~k:3 ~stride:1 ~padding:1 in
      let x = O.max_pool2d ~window:2 ~stride:2 x in
      let x = O.global_avg_pool2d x in
      dense_head b x ~in_c:128 ~classes)

(** SqueezeNet-style network: fire modules (squeeze 1x1, expand 1x1 + 3x3
    concatenated). *)
let squeezenet ?(seed = 34) ?(classes = 10) () : Irmod.t =
  let b = { rng = Rng.create ~seed; n_params = 0 } in
  let fire x ~in_c ~squeeze ~expand =
    let s = conv_bn_relu b x ~in_c ~out_c:squeeze ~k:1 ~stride:1 ~padding:0 in
    let e1 = conv_bn_relu b s ~in_c:squeeze ~out_c:expand ~k:1 ~stride:1 ~padding:0 in
    let e3 = conv_bn_relu b s ~in_c:squeeze ~out_c:expand ~k:3 ~stride:1 ~padding:1 in
    O.concat ~axis:1 [ e1; e3 ]
  in
  make_module ~input_shape:[| 1; 3; 32; 32 |] (fun x ->
      let x = conv_bn_relu b x ~in_c:3 ~out_c:32 ~k:3 ~stride:2 ~padding:1 in
      let x = fire x ~in_c:32 ~squeeze:8 ~expand:16 in
      let x = fire x ~in_c:32 ~squeeze:8 ~expand:16 in
      let x = O.max_pool2d ~window:2 ~stride:2 x in
      let x = fire x ~in_c:32 ~squeeze:16 ~expand:32 in
      let x = O.max_pool2d ~window:2 ~stride:2 x in
      let x = O.global_avg_pool2d x in
      dense_head b x ~in_c:64 ~classes)

let all : (string * (unit -> Irmod.t)) list =
  [
    ("resnet", fun () -> resnet ());
    ("mobilenet", fun () -> mobilenet ());
    ("vgg", fun () -> vgg ());
    ("squeezenet", fun () -> squeezenet ());
  ]

(** A random input image for the vision models. *)
let random_input ?(seed = 5) () =
  Tensor.randn ~scale:1.0 (Rng.create ~seed) [| 1; 3; 32; 32 |]
