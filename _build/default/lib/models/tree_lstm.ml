(** Child-sum Tree-LSTM (Tai et al.) — the paper's dynamic-data-structure
    benchmark model. Paper configuration: input 300, hidden 150, batch 1,
    SST constituency trees.

    Leaves carry word embeddings; internal nodes combine their two children.
    The tree is a [TensorTree] ADT, and evaluation is a recursive match —
    the structure of the computation differs per input. *)

open Nimble_tensor
open Nimble_ir

type config = { input_size : int; hidden_size : int; num_classes : int }

let default_config = { input_size = 300; hidden_size = 150; num_classes = 5 }
let small_config = { input_size = 24; hidden_size = 32; num_classes = 5 }

type weights = {
  config : config;
  w_leaf : Tensor.t;  (** (4H, I): leaf transform producing i,o,u,(unused) *)
  b_leaf : Tensor.t;  (** (4H) *)
  u_iou : Tensor.t;  (** (3H, H): node gates from summed child hiddens *)
  b_iou : Tensor.t;  (** (3H) *)
  u_f : Tensor.t;  (** (H, H): per-child forget gate *)
  b_f : Tensor.t;  (** (H) *)
  w_out : Tensor.t;  (** (classes, H) *)
  b_out : Tensor.t;  (** (classes) *)
}

let init_weights ?(seed = 2) (config : config) : weights =
  let rng = Rng.create ~seed in
  let scale = 0.08 in
  let h = config.hidden_size in
  {
    config;
    w_leaf = Tensor.randn ~scale rng [| 4 * h; config.input_size |];
    b_leaf = Tensor.randn ~scale rng [| 4 * h |];
    u_iou = Tensor.randn ~scale rng [| 3 * h; h |];
    b_iou = Tensor.randn ~scale rng [| 3 * h |];
    u_f = Tensor.randn ~scale rng [| h; h |];
    b_f = Tensor.randn ~scale rng [| h |];
    w_out = Tensor.randn ~scale rng [| config.num_classes; h |];
    b_out = Tensor.randn ~scale rng [| config.num_classes |];
  }

(** Input trees. *)
type tree = Leaf of Tensor.t | Node of tree * tree

let rec num_tokens = function
  | Leaf _ -> 1
  | Node (l, r) -> num_tokens l + num_tokens r

(* ------------------------------------------------------------------ *)
(* Cell math, shared by every executor                                 *)
(* ------------------------------------------------------------------ *)

module Cell (O : Model_ops.OPS) = struct
  let slice_h ~h x i = O.slice ~begins:[| 0; i * h |] ~ends:[| 1; (i + 1) * h |] x

  (** Leaf: embedding [(1, I)] -> (h, c). *)
  let leaf (w : weights) x =
    let h = w.config.hidden_size in
    let pre = O.bias_add (O.dense x (O.const w.w_leaf)) (O.const w.b_leaf) in
    let i = O.sigmoid (slice_h ~h pre 0) in
    let o = O.sigmoid (slice_h ~h pre 1) in
    let u = O.tanh (slice_h ~h pre 2) in
    let c = O.mul i u in
    let hid = O.mul o (O.tanh c) in
    (hid, c)

  (** Internal node: children states -> (h, c). *)
  let node (w : weights) (hl, cl) (hr, cr) =
    let h = w.config.hidden_size in
    let h_sum = O.add hl hr in
    let pre = O.bias_add (O.dense h_sum (O.const w.u_iou)) (O.const w.b_iou) in
    let i = O.sigmoid (slice_h ~h pre 0) in
    let o = O.sigmoid (slice_h ~h pre 1) in
    let u = O.tanh (slice_h ~h pre 2) in
    let fl = O.sigmoid (O.bias_add (O.dense hl (O.const w.u_f)) (O.const w.b_f)) in
    let fr = O.sigmoid (O.bias_add (O.dense hr (O.const w.u_f)) (O.const w.b_f)) in
    let c = O.add (O.mul i u) (O.add (O.mul fl cl) (O.mul fr cr)) in
    let hid = O.mul o (O.tanh c) in
    (hid, c)

  (** Sentiment head over the root hidden state. *)
  let classify (w : weights) hid =
    O.softmax ~axis:(-1) (O.bias_add (O.dense hid (O.const w.w_out)) (O.const w.b_out))
end

module Ref_cell = Cell (Model_ops.Tensor_ops)

(** Reference execution: evaluate the tree bottom-up, classify the root. *)
let reference (w : weights) (t : tree) : Tensor.t =
  let rec eval = function
    | Leaf x -> Ref_cell.leaf w x
    | Node (l, r) -> Ref_cell.node w (eval l) (eval r)
  in
  let hid, _ = eval t in
  Ref_cell.classify w hid

(* ------------------------------------------------------------------ *)
(* Nimble IR build                                                     *)
(* ------------------------------------------------------------------ *)

module Ir_cell = Cell (Model_ops.Ir_ops)

(** Build the IR module: a recursive [eval : TensorTree -> (h, c)] plus a
    classifying [main]. *)
let ir_module (w : weights) : Irmod.t =
  let h = w.config.hidden_size in
  let leaf_ty = Ty.tensor_of_shape [| 1; w.config.input_size |] in
  let tree_adt = Adt.tensor_tree ~leaf_ty in
  let leaf_ctor = Adt.ctor_exn tree_adt "Leaf" in
  let node_ctor = Adt.ctor_exn tree_adt "Node" in
  let tree_ty = Ty.Adt "TensorTree" in
  let state_ty = Ty.Tuple [ Ty.tensor_of_shape [| 1; h |]; Ty.tensor_of_shape [| 1; h |] ] in
  let m = Irmod.create () in
  Irmod.add_adt m tree_adt;
  let t = Expr.fresh_var ~ty:tree_ty "t" in
  let x = Expr.fresh_var ~ty:leaf_ty "x" in
  let l = Expr.fresh_var ~ty:tree_ty "l" in
  let r = Expr.fresh_var ~ty:tree_ty "r" in
  let sl = Expr.fresh_var "sl" in
  let sr = Expr.fresh_var "sr" in
  let leaf_h, leaf_c = Ir_cell.leaf w (Expr.Var x) in
  let node_rhs =
    Expr.Let
      ( sl,
        Expr.call (Expr.Global "eval") [ Expr.Var l ],
        Expr.Let
          ( sr,
            Expr.call (Expr.Global "eval") [ Expr.Var r ],
            let node_h, node_c =
              Ir_cell.node w
                (Expr.Proj (Expr.Var sl, 0), Expr.Proj (Expr.Var sl, 1))
                (Expr.Proj (Expr.Var sr, 0), Expr.Proj (Expr.Var sr, 1))
            in
            Expr.Tuple [ node_h; node_c ] ) )
  in
  let body =
    Expr.Match
      ( Expr.Var t,
        [
          {
            Expr.pat = Expr.Pctor (leaf_ctor, [ Expr.Pvar x ]);
            rhs = Expr.Tuple [ leaf_h; leaf_c ];
          };
          { Expr.pat = Expr.Pctor (node_ctor, [ Expr.Pvar l; Expr.Pvar r ]); rhs = node_rhs };
        ] )
  in
  Irmod.add_func m "eval" (Expr.fn_def ~ret_ty:state_ty [ t ] body);
  let input = Expr.fresh_var ~ty:tree_ty "input" in
  let s = Expr.fresh_var "s" in
  Irmod.add_func m "main"
    (Expr.fn_def [ input ]
       (Expr.Let
          ( s,
            Expr.call (Expr.Global "eval") [ Expr.Var input ],
            Ir_cell.classify w (Expr.Proj (Expr.Var s, 0)) )));
  (m, leaf_ctor, node_ctor) |> fun (m, _, _) -> m

let ctors (w : weights) =
  let leaf_ty = Ty.tensor_of_shape [| 1; w.config.input_size |] in
  let tree_adt = Adt.tensor_tree ~leaf_ty in
  (Adt.ctor_exn tree_adt "Leaf", Adt.ctor_exn tree_adt "Node")
