(** GRU (Cho et al.) — a second recurrent architecture over the same
    dynamic-length [TensorList] encoding as the LSTM, demonstrating that the
    dynamic-control-flow machinery is model-agnostic. *)

open Nimble_tensor
open Nimble_ir

type config = { input_size : int; hidden_size : int }

let default_config = { input_size = 300; hidden_size = 512 }
let small_config = { input_size = 24; hidden_size = 40 }

type weights = {
  config : config;
  wx : Tensor.t;  (** (3H, I): z, r, candidate from input *)
  wh : Tensor.t;  (** (3H, H): z, r, candidate from state *)
  b : Tensor.t;  (** (3H) *)
}

let init_weights ?(seed = 9) (config : config) : weights =
  let rng = Rng.create ~seed in
  let scale = 0.08 in
  {
    config;
    wx = Tensor.randn ~scale rng [| 3 * config.hidden_size; config.input_size |];
    wh = Tensor.randn ~scale rng [| 3 * config.hidden_size; config.hidden_size |];
    b = Tensor.randn ~scale rng [| 3 * config.hidden_size |];
  }

module Cell (O : Model_ops.OPS) = struct
  (** One GRU step: [x : (1, I)], [h : (1, H)] -> [h']. *)
  let step (w : weights) ~hidden_size x h =
    let hs = hidden_size in
    let gx = O.bias_add (O.dense x (O.const w.wx)) (O.const w.b) in
    let gh = O.dense h (O.const w.wh) in
    let part t i = O.slice ~begins:[| 0; i * hs |] ~ends:[| 1; (i + 1) * hs |] t in
    let z = O.sigmoid (O.add (part gx 0) (part gh 0)) in
    let r = O.sigmoid (O.add (part gx 1) (part gh 1)) in
    (* candidate uses the reset-gated recurrent contribution *)
    let cand = O.tanh (O.add (part gx 2) (O.mul r (part gh 2))) in
    (* h' = (1 - z) * h + z * cand *)
    O.add (O.mul (O.sub (O.const (Tensor.ones [| 1; hs |])) z) h) (O.mul z cand)
end

module Ref_cell = Cell (Model_ops.Tensor_ops)

(** Reference execution: last hidden state over the sequence. *)
let reference (w : weights) (xs : Tensor.t list) : Tensor.t =
  let hs = w.config.hidden_size in
  List.fold_left
    (fun h x -> Ref_cell.step w ~hidden_size:hs x h)
    (Tensor.zeros [| 1; hs |])
    xs

module Ir_cell = Cell (Model_ops.Ir_ops)

(** Build the IR module over a [TensorList] of embeddings. *)
let ir_module (w : weights) : Irmod.t =
  let hs = w.config.hidden_size in
  let elem_ty = Ty.tensor [ Dim.static 1; Dim.Any ] in
  let list_adt = Adt.tensor_list ~elem_ty in
  let nil = Adt.ctor_exn list_adt "Nil" in
  let cons = Adt.ctor_exn list_adt "Cons" in
  let list_ty = Ty.Adt "TensorList" in
  let state_ty = Ty.tensor_of_shape [| 1; hs |] in
  let m = Irmod.create () in
  Irmod.add_adt m list_adt;
  let xs = Expr.fresh_var ~ty:list_ty "xs" in
  let h = Expr.fresh_var ~ty:state_ty "h" in
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.static 1; Dim.Any ]) "x" in
  let rest = Expr.fresh_var ~ty:list_ty "rest" in
  let body =
    Expr.Match
      ( Expr.Var xs,
        [
          { Expr.pat = Expr.Pctor (nil, []); rhs = Expr.Var h };
          {
            Expr.pat = Expr.Pctor (cons, [ Expr.Pvar x; Expr.Pvar rest ]);
            rhs =
              Expr.call (Expr.Global "scan")
                [ Expr.Var rest; Ir_cell.step w ~hidden_size:hs (Expr.Var x) (Expr.Var h) ];
          };
        ] )
  in
  Irmod.add_func m "scan" (Expr.fn_def ~ret_ty:state_ty [ xs; h ] body);
  let input = Expr.fresh_var ~ty:list_ty "input" in
  Irmod.add_func m "main"
    (Expr.fn_def [ input ]
       (Expr.call (Expr.Global "scan")
          [ Expr.Var input; Expr.Const (Tensor.zeros [| 1; hs |]) ]));
  m

let random_sequence ?(seed = 15) (config : config) ~len : Tensor.t list =
  let rng = Rng.create ~seed:(seed + len) in
  List.init len (fun _ -> Tensor.randn ~scale:0.5 rng [| 1; config.input_size |])
