(** Execution trace hook.

    Every executor in the repo (the VM's lowered kernels, the baseline
    frameworks' eager dispatch) reports the operators it actually runs
    through this sink. The performance simulator installs a listener and
    replays the trace against per-platform cost models; when no listener is
    installed the overhead is a single ref read. *)

open Nimble_tensor

type event =
  | Op_exec of {
      op : string;
      in_shapes : Shape.t list;
      out_shapes : Shape.t list;
      flops : int;
      bytes : int;  (** memory traffic estimate: inputs + outputs *)
    }
  | Framework of { kind : string; amount : int }
      (** framework-side action: graph node built, op dispatched,
          recompilation unit, control-flow primitive executed, ... *)

type listener = event -> unit

let sink : listener option ref = ref None

let install l = sink := Some l
let remove () = sink := None

let with_listener l f =
  let saved = !sink in
  sink := Some l;
  Fun.protect ~finally:(fun () -> sink := saved) f

let enabled () = !sink <> None

let emit ev = match !sink with Some f -> f ev | None -> ()

let tensor_bytes ts =
  List.fold_left (fun acc t -> acc + Tensor.size_in_bytes t) 0 ts

(** Record execution of operator [op] on concrete tensors. *)
let record_op op ~attrs (ins : Tensor.t list) (outs : Tensor.t list) =
  match !sink with
  | None -> ()
  | Some f ->
      let in_shapes = List.map Tensor.shape ins in
      let out_shapes = List.map Tensor.shape outs in
      let flops = Op_eval.flops op ~attrs in_shapes out_shapes in
      f
        (Op_exec
           {
             op;
             in_shapes;
             out_shapes;
             flops;
             bytes = tensor_bytes ins + tensor_bytes outs;
           })

let record_framework kind ?(amount = 1) () =
  match !sink with None -> () | Some f -> f (Framework { kind; amount })

(** Run an operator through {!Op_eval} and trace it: the standard entry
    point for every interpreter in the repo. *)
let eval_op op ~attrs ins =
  let outs = Op_eval.eval op ~attrs ins in
  record_op op ~attrs ins outs;
  outs
