(** Shape-based kernel dispatch (paper §4.5).

    For a kernel with one symbolic dimension tiled by factor [tile], codegen
    emits up to [tile] residue-specialized kernels; the dispatch function
    selects one from the runtime value [m mod tile], falling back to the
    guarded (boundary-checked) kernel for uncovered residues. The dispatcher
    can also route to an extern library kernel when profiling marked it
    faster. *)

open Nimble_tensor

type dense_fn = Tensor.t -> Tensor.t -> Tensor.t

type t = {
  tile : int;
  covered : (int * dense_fn) list;  (** residue -> specialized kernel *)
  fallback : dense_fn;
  mutable extern : dense_fn option;  (** profiling-selected library kernel *)
  mutable hits : int;
  mutable misses : int;
}

(** [create ~num_kernels] builds a dispatcher generating [num_kernels]
    residue-specialized kernels out of the [tile] possible ones; residues
    are chosen evenly spaced, matching the paper's "dispatch/k" settings. *)
let create ?(tile = Dense_kernels.tile) ~num_kernels () =
  if num_kernels < 0 || num_kernels > tile then
    Fmt.invalid_arg "Dispatch.create: num_kernels %d out of [0, %d]" num_kernels tile;
  let covered =
    if num_kernels = 0 then []
    else
      let step = tile / num_kernels in
      List.init num_kernels (fun i ->
          let r = i * step in
          (r, Dense_kernels.residue_kernel ~residue:r))
  in
  {
    tile;
    covered;
    fallback = Dense_kernels.guarded_kernel;
    extern = None;
    hits = 0;
    misses = 0;
  }

let set_extern t fn = t.extern <- Some fn

(** Pick the kernel for runtime extent [m]. *)
let select t ~m : dense_fn =
  match t.extern with
  | Some fn -> fn
  | None -> (
      let r = m mod t.tile in
      match List.assoc_opt r t.covered with
      | Some fn ->
          t.hits <- t.hits + 1;
          fn
      | None ->
          t.misses <- t.misses + 1;
          t.fallback)

(** Run a dense call through the dispatcher. *)
let run t a w =
  let m = (Tensor.shape a).(0) in
  (select t ~m) a w

let stats t = (t.hits, t.misses)

(** Number of generated kernel bodies (code-size cost of dispatch, which the
    paper discusses as the trade-off knob). *)
let code_size t = List.length t.covered + 1
