lib/codegen/dispatch.ml: Array Dense_kernels Fmt List Nimble_tensor Tensor
