lib/codegen/dense_kernels.ml: Array Dtype Nimble_tensor Ops_matmul Shape Stdlib Tensor
