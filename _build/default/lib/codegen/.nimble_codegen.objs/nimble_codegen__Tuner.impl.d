lib/codegen/tuner.ml: Dense_kernels Float List Nimble_tensor Rng Tensor Unix
