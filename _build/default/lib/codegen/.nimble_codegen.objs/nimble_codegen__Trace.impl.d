lib/codegen/trace.ml: Fun List Nimble_tensor Op_eval Shape Tensor
