lib/codegen/op_eval.ml: Array Attrs Dtype Fmt List Nimble_ir Nimble_tensor Ops_elem Ops_matmul Ops_nn Ops_reduce Ops_shape Option Shape Tensor
