lib/codegen/trace.mli: Nimble_ir Nimble_tensor Shape Tensor
