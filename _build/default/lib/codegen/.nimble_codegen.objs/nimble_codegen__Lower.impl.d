lib/codegen/lower.ml: Dispatch Expr Fmt Hashtbl Kernel List Nimble_ir Nimble_shape Nimble_tensor Option Shape Tensor Trace
