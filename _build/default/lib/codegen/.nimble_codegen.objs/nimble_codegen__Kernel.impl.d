lib/codegen/kernel.ml: Fmt List Nimble_tensor Shape Tensor
