lib/codegen/dispatch.mli: Nimble_tensor Tensor
