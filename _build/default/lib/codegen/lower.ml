(** Lowering fused primitive functions to executable kernels.

    A primitive function (produced by the fusion pass) is a straight-line
    dataflow of operator calls. Lowering turns it into a {!Kernel.t} closure.
    [dense] calls inside the primitive are routed through the symbolic
    residue {!Dispatch} when one is configured — this is where symbolic
    codegen plugs into the pipeline. Every executed op reports to {!Trace}. *)

open Nimble_tensor
open Nimble_ir

exception Lower_error of string

let err fmt = Fmt.kstr (fun s -> raise (Lower_error s)) fmt

type value = VTensor of Tensor.t | VTuple of value list

let as_tensor = function
  | VTensor t -> t
  | VTuple _ -> err "expected a tensor value inside a primitive body"

(** Operators a primitive body may contain. Control flow never appears in
    primitives: fusion groups only dataflow. *)
let rec eval_body ~dense_impl env (e : Expr.t) : value =
  match e with
  | Expr.Var v -> (
      match Hashtbl.find_opt env v.Expr.vid with
      | Some value -> value
      | None -> err "unbound variable %%%s in primitive body" v.Expr.vname)
  | Expr.Const t -> VTensor t
  | Expr.Tuple es -> VTuple (List.map (eval_body ~dense_impl env) es)
  | Expr.Proj (e1, i) -> (
      match eval_body ~dense_impl env e1 with
      | VTuple vs -> List.nth vs i
      | VTensor _ -> err "projection from tensor in primitive body")
  | Expr.Let (v, bound, body) ->
      Hashtbl.replace env v.Expr.vid (eval_body ~dense_impl env bound);
      eval_body ~dense_impl env body
  | Expr.Call { callee = Expr.Op "dense"; args; attrs } -> (
      let ins = List.map (fun a -> as_tensor (eval_body ~dense_impl env a)) args in
      match (dense_impl, ins) with
      | Some impl, [ a; w ] ->
          let out = impl a w in
          Trace.record_op "dense" ~attrs [ a; w ] [ out ];
          VTensor out
      | _, ins -> (
          match Trace.eval_op "dense" ~attrs ins with
          | [ out ] -> VTensor out
          | _ -> err "dense produced multiple outputs"))
  | Expr.Call { callee = Expr.Op name; args; attrs } -> (
      let ins = List.map (fun a -> as_tensor (eval_body ~dense_impl env a)) args in
      match Trace.eval_op name ~attrs ins with
      | [ out ] -> VTensor out
      | outs -> VTuple (List.map (fun t -> VTensor t) outs))
  | Expr.Call _ -> err "primitive body may only call operators"
  | Expr.Global _ | Expr.Op _ | Expr.Ctor _ | Expr.Fn _ | Expr.If _ | Expr.Match _ ->
      err "control flow or function values inside a primitive body"

let rec flatten_value = function
  | VTensor t -> [ t ]
  | VTuple vs -> List.concat_map flatten_value vs

(** [lower ~name fn] compiles primitive [fn] into a kernel. *)
let lower ?dispatch ~name (fn : Expr.fn) : Kernel.t =
  let dense_impl = Option.map (fun d a w -> Dispatch.run d a w) dispatch in
  let run (args : Tensor.t list) : Tensor.t list =
    if List.length args <> List.length fn.Expr.params then
      err "%s: expected %d arguments, got %d" name (List.length fn.Expr.params)
        (List.length args);
    let env = Hashtbl.create 16 in
    List.iter2
      (fun (p : Expr.var) a -> Hashtbl.replace env p.Expr.vid (VTensor a))
      fn.Expr.params args;
    flatten_value (eval_body ~dense_impl env fn.Expr.body)
  in
  Kernel.make ~name run

(** Compose the shape functions of the ops inside a primitive (§4.2): the
    shape function of a fused operator is the composition of its members'
    shape functions, which is only well-defined when every member is
    data-independent — guaranteed by the fusion policy. *)
let shape_func_of_primitive ~name (fn : Expr.fn) : Shape.t list -> Shape.t list =
 fun in_shapes ->
  if List.length in_shapes <> List.length fn.Expr.params then
    err "%s shape func: expected %d input shapes" name (List.length fn.Expr.params);
  let env : (int, Shape.t list) Hashtbl.t = Hashtbl.create 16 in
  List.iter2
    (fun (p : Expr.var) s -> Hashtbl.replace env p.Expr.vid [ s ])
    fn.Expr.params in_shapes;
  let rec go (e : Expr.t) : Shape.t list =
    match e with
    | Expr.Var v -> (
        match Hashtbl.find_opt env v.Expr.vid with
        | Some s -> s
        | None -> err "%s shape func: unbound variable" name)
    | Expr.Const t -> [ Tensor.shape t ]
    | Expr.Tuple es -> List.concat_map go es
    | Expr.Proj (e1, i) ->
        let shapes = go e1 in
        if i >= List.length shapes then err "%s shape func: bad projection" name;
        [ List.nth shapes i ]
    | Expr.Let (v, bound, body) ->
        Hashtbl.replace env v.Expr.vid (go bound);
        go body
    | Expr.Call { callee = Expr.Op op; args; attrs } ->
        let inputs =
          List.concat_map
            (fun a -> List.map Nimble_shape.Shape_func.shape_only (go a))
            args
        in
        Nimble_shape.Shape_func.run op ~attrs inputs
    | _ -> err "%s shape func: unsupported construct" name
  in
  go fn.Expr.body

(** Whether every op in a primitive has a data-independent shape function —
    the precondition for the composition above. *)
let all_data_independent (fn : Expr.fn) =
  let ok = ref true in
  Expr.iter
    (function
      | Expr.Call { callee = Expr.Op name; _ } ->
          if not (Nimble_shape.Shape_func.fusible_as_consumer name) then ok := false
      | _ -> ())
    fn.Expr.body;
  !ok
