(** Executable kernels: the platform-dependent half of a Nimble executable.

    A kernel is a named closure from input tensors to output tensors plus
    metadata (origin, flop estimator) used by the profiler and the cost
    models. Kernels are produced by {!Lower} from fused primitive functions
    and stored in the executable's primitive table, invoked by the VM's
    [InvokePacked] instruction. *)

open Nimble_tensor

type source =
  | Generated  (** compiler-generated (this repo's loop nests) *)
  | Extern of string  (** third-party library kernel (simulated) *)
  | Dispatcher  (** shape-based dispatch wrapper over other kernels *)

type t = {
  name : string;
  source : source;
  run : Tensor.t list -> Tensor.t list;
  flops : Shape.t list -> int;  (** estimate from input shapes *)
}

let make ?(source = Generated) ?(flops = fun _ -> 0) ~name run =
  { name; source; run; flops }

let run t args = t.run args

let run1 t args =
  match t.run args with
  | [ out ] -> out
  | outs ->
      Fmt.invalid_arg "Kernel.run1: %s produced %d outputs" t.name (List.length outs)

let source_to_string = function
  | Generated -> "generated"
  | Extern lib -> "extern:" ^ lib
  | Dispatcher -> "dispatcher"

let pp ppf t = Fmt.pf ppf "%s[%s]" t.name (source_to_string t.source)
