(** Shape-based kernel dispatch for symbolic codegen (paper §4.5).

    For a dense kernel whose row extent [m] is symbolic, codegen emits up to
    [tile] residue-specialized kernels; at runtime the dispatcher selects
    one from [m mod tile], falling back to the boundary-guarded kernel for
    uncovered residues — trading code size against the boundary-check cost
    Figure 3 measures. It can also route to a profiled third-party library
    kernel. *)

open Nimble_tensor

type dense_fn = Tensor.t -> Tensor.t -> Tensor.t

type t

(** [create ~num_kernels ()] generates [num_kernels] of the [tile] (default
    8) possible residue kernels, evenly spaced — the paper's "dispatch/k".
    [num_kernels = 0] means no dispatch: every call takes the guarded
    fallback. *)
val create : ?tile:int -> num_kernels:int -> unit -> t

(** Route every call to a third-party library kernel (the §4.5 extension for
    profiling-selected extern kernels). *)
val set_extern : t -> dense_fn -> unit

(** Select the kernel for runtime extent [m]. *)
val select : t -> m:int -> dense_fn

(** Run a dense call through the dispatcher. *)
val run : t -> Tensor.t -> Tensor.t -> Tensor.t

(** [(hits, misses)]: calls served by a specialized kernel vs the fallback. *)
val stats : t -> int * int

(** Number of generated kernel bodies — the code-size cost of dispatch. *)
val code_size : t -> int
