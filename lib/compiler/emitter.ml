(** Bytecode emitter: lowers a fully-processed IR module (post fusion,
    manifest alloc, device placement, memory planning) into a VM executable.

    Virtual registers are allocated fresh per value (the paper's "infinite
    set of virtual registers" that simplifies allocation, SSA-style).
    Nested non-primitive functions are lambda-lifted into closures. *)

open Nimble_tensor
open Nimble_ir
open Nimble_passes
open Nimble_vm

exception Emit_error of string

let err fmt = Fmt.kstr (fun s -> raise (Emit_error s)) fmt

type options = {
  dense_dispatch : int option;
      (** [Some k]: symbolic residue dispatch with [k] generated kernels for
          dense ops; [None]: reference (library-style) dense kernel *)
  profile_extern : bool;
      (** profile generated vs third-party-library kernels at compile time
          and let the dispatch function route to whichever is faster
          (paper SS4.5) *)
  guards : bool;
      (** emit gradual-typing entry guards (paper §4.1): residual checks on
          each named function's tensor parameters — concrete dims, identical-
          [Any] equalities, dtypes — enforced by the VM at the API boundary *)
}

let default_options =
  { dense_dispatch = Some 8; profile_extern = false; guards = true }

type state = {
  opts : options;
  constants : Tensor.t list ref;  (** reversed *)
  mutable n_constants : int;
  packed : (string, int) Hashtbl.t;  (** name -> index *)
  packed_list : (string * [ `Kernel | `Shape_func ]) list ref;  (** reversed *)
  packed_impls : (string, Exe.packed) Hashtbl.t;
  mutable funcs : (string * Expr.fn option) list;
      (** function slots, in index order; [None] = being compiled *)
  compiled : (string, Exe.vmfunc) Hashtbl.t;
  mutable closure_counter : int;
  mutable plans : Exe.plan list;  (** symbolic memory plans, reversed *)
  mutable n_plans : int;
}

let create_state opts =
  {
    opts;
    constants = ref [];
    n_constants = 0;
    packed = Hashtbl.create 32;
    packed_list = ref [];
    packed_impls = Hashtbl.create 32;
    funcs = [];
    compiled = Hashtbl.create 8;
    closure_counter = 0;
    plans = [];
    n_plans = 0;
  }

(* Constants are deduplicated by physical identity: model builders share
   weight tensors across call sites (an LSTM cell's weights appear once per
   recursive function), so the pool stores each once. *)
let add_constant st t =
  let rec find i = function
    | [] -> None
    | c :: _ when c == t -> Some (st.n_constants - 1 - i)
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 !(st.constants) with
  | Some idx -> idx
  | None ->
      st.constants := t :: !(st.constants);
      let idx = st.n_constants in
      st.n_constants <- st.n_constants + 1;
      idx

let func_index st name =
  let rec go i = function
    | [] -> err "unknown function @%s" name
    | (n, _) :: _ when String.equal n name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 st.funcs

(* ------------------------------------------------------------------ *)
(* Packed function registration                                        *)
(* ------------------------------------------------------------------ *)

let register_packed ?mode st name kind (impl : Tensor.t list -> Tensor.t list) =
  match Hashtbl.find_opt st.packed name with
  | Some idx -> idx
  | None ->
      let idx = List.length !(st.packed_list) in
      Hashtbl.replace st.packed name idx;
      st.packed_list := (name, kind) :: !(st.packed_list);
      Hashtbl.replace st.packed_impls name
        { Exe.packed_name = name; kind; mode; run = impl };
      idx

(* The op call at the root of a singleton primitive, for shape functions. *)
let rec singleton_op (e : Expr.t) : (string * Attrs.t) option =
  match e with
  | Expr.Call { callee = Expr.Op name; attrs; _ } -> Some (name, attrs)
  | Expr.Let (_, _, body) -> singleton_op body
  | _ -> None

let kernel_of_primitive st (prim : Expr.fn) =
  let name = Fusion.primitive_name prim in
  let dispatch =
    match st.opts.dense_dispatch with
    | Some k when List.mem "dense" (Fusion.primitive_ops prim) ->
        let d = Nimble_codegen.Dispatch.create ~name ~num_kernels:k () in
        if
          st.opts.profile_extern
          && Nimble_codegen.Tuner.profile_extern ~n:64 ~k:64 () = `Extern
        then
          Nimble_codegen.Dispatch.set_extern d
            Nimble_codegen.Dense_kernels.extern_library_kernel;
        Some d
    | _ -> None
  in
  let kernel = Nimble_codegen.Lower.lower ?dispatch ~name prim in
  register_packed st name `Kernel (Nimble_codegen.Kernel.run kernel)

let shape_func_of_primitive st (prim : Expr.fn) ~(mode : string) =
  let name = Fusion.primitive_name prim ^ "$shape" in
  let impl (ins : Tensor.t list) : Tensor.t list =
    let shapes_to_tensors shapes =
      List.map
        (fun s -> Tensor.of_int_array ~dtype:Dtype.I64 [| Array.length s |] s)
        shapes
    in
    match mode with
    | "data_indep" ->
        let in_shapes = List.map Tensor.to_shape ins in
        let f = Nimble_codegen.Lower.shape_func_of_primitive ~name prim in
        shapes_to_tensors (f in_shapes)
    | "proven" ->
        (* dominance-proven group: inputs are the primitive's argument
           values; the composed function forces only the scalar chains the
           proofs need *)
        let f = Nimble_codegen.Lower.shape_func_of_primitive_values ~name prim in
        shapes_to_tensors (f ins)
    | "data_dep" -> (
        match singleton_op prim.Expr.body with
        | Some (op, attrs) ->
            shapes_to_tensors
              (Nimble_shape.Shape_func.run op ~attrs
                 (List.map Nimble_shape.Shape_func.with_data ins))
        | None -> err "data-dependent shape function on a fused primitive")
    | "upper_bound" -> (
        match singleton_op prim.Expr.body with
        | Some (op, attrs) ->
            let in_shapes = List.map Tensor.to_shape ins in
            shapes_to_tensors
              (Nimble_shape.Shape_func.run op ~attrs
                 (List.map Nimble_shape.Shape_func.shape_only in_shapes))
        | None -> err "upper-bound shape function on a fused primitive")
    | m -> err "unknown shape function mode %s" m
  in
  register_packed ~mode st name `Shape_func impl

(* ------------------------------------------------------------------ *)
(* Function compilation                                                *)
(* ------------------------------------------------------------------ *)

type fctx = {
  st : state;
  fname : string;
  regs : (int, int) Hashtbl.t;  (** vid -> register *)
  mutable next_reg : int;
  code : Isa.t Vec.t;
  mutable plan_regs : (int * int) list;
      (** register holding a [BindArena] result -> its plan index, so
          [plan_slot] tensor allocations can name their plan *)
}

let fresh_reg ctx =
  let r = ctx.next_reg in
  ctx.next_reg <- r + 1;
  r

let bind_var ctx (v : Expr.var) r = Hashtbl.replace ctx.regs v.Expr.vid r

let var_reg ctx (v : Expr.var) =
  match Hashtbl.find_opt ctx.regs v.Expr.vid with
  | Some r -> r
  | None -> err "%s: unbound variable %%%s#%d" ctx.fname v.Expr.vname v.Expr.vid

let emit ctx i = Vec.add_last ctx.code i
let here ctx = Vec.length ctx.code

let patch ctx idx f = Vec.set ctx.code idx (f (Vec.get ctx.code idx))

let dtype_attr attrs =
  match Attrs.find_str attrs "dtype" with
  | Some s -> Option.value ~default:Dtype.F32 (Dtype.of_string s)
  | None -> Dtype.F32

let rec compile_expr ctx (e : Expr.t) : int =
  match e with
  | Expr.Var v -> var_reg ctx v
  | Expr.Const t ->
      let idx = add_constant ctx.st t in
      let r = fresh_reg ctx in
      emit ctx (Isa.LoadConst { index = idx; dst = r });
      r
  | Expr.Global g ->
      (* a bare global used as a value becomes a capture-free closure *)
      let fi = func_index ctx.st g in
      let r = fresh_reg ctx in
      emit ctx (Isa.AllocClosure { func_index = fi; captured = [||]; dst = r });
      r
  | Expr.Op name -> err "%s: bare operator %s has no runtime value" ctx.fname name
  | Expr.Ctor c -> err "%s: bare constructor %s has no runtime value" ctx.fname c.Adt.ctor_name
  | Expr.Tuple es ->
      let fields = Array.of_list (List.map (compile_expr ctx) es) in
      let r = fresh_reg ctx in
      emit ctx (Isa.AllocADT { tag = Obj.tuple_tag; fields; dst = r });
      r
  | Expr.Proj (e1, i) ->
      let ro = compile_expr ctx e1 in
      let r = fresh_reg ctx in
      emit ctx (Isa.GetField { obj = ro; index = i; dst = r });
      r
  | Expr.Call { callee = Expr.Op name; args; attrs } -> compile_op ctx name args attrs
  | Expr.Call { callee = Expr.Ctor c; args; _ } ->
      let fields = Array.of_list (List.map (compile_expr ctx) args) in
      let r = fresh_reg ctx in
      emit ctx (Isa.AllocADT { tag = c.Adt.tag; fields; dst = r });
      r
  | Expr.Call { callee = Expr.Global g; args; _ } ->
      let argv = Array.of_list (List.map (compile_expr ctx) args) in
      let fi = func_index ctx.st g in
      let r = fresh_reg ctx in
      emit ctx (Isa.Invoke { func_index = fi; args = argv; dst = r });
      r
  | Expr.Call { callee = Expr.Fn prim; _ } when Fusion.is_primitive prim ->
      err "%s: primitive call outside invoke_mut (run manifest_alloc first)" ctx.fname
  | Expr.Call { callee; args; _ } ->
      let rc = compile_expr ctx callee in
      let argv = Array.of_list (List.map (compile_expr ctx) args) in
      let r = fresh_reg ctx in
      emit ctx (Isa.InvokeClosure { closure = rc; args = argv; dst = r });
      r
  | Expr.Fn fn -> compile_closure ctx fn
  | Expr.Let (v, Expr.Var w, body) ->
      (* alias: copy so kills on [w] cannot clobber [v] *)
      let r = fresh_reg ctx in
      emit ctx (Isa.Move { src = var_reg ctx w; dst = r });
      bind_var ctx v r;
      compile_expr ctx body
  | Expr.Let (v, bound, body) ->
      let r = compile_expr ctx bound in
      bind_var ctx v r;
      compile_expr ctx body
  | Expr.If (c, t, f) -> compile_if ctx c t f
  | Expr.Match (scrut, clauses) -> compile_match ctx scrut clauses

and compile_if ctx c t f =
  let rc = compile_expr ctx c in
  let rz = fresh_reg ctx in
  emit ctx (Isa.LoadConsti { value = 0L; dst = rz });
  let r_out = fresh_reg ctx in
  let if_idx = here ctx in
  (* test == 0 -> false branch; placeholder offsets patched below *)
  emit ctx (Isa.If { test = rc; target = rz; true_offset = 0; false_offset = 1 });
  (* false==0 means condition is false: true_offset jumps to the ELSE code *)
  let rt = compile_expr ctx t in
  emit ctx (Isa.Move { src = rt; dst = r_out });
  let goto_idx = here ctx in
  emit ctx (Isa.Goto 0);
  let else_start = here ctx in
  let rf = compile_expr ctx f in
  emit ctx (Isa.Move { src = rf; dst = r_out });
  let end_idx = here ctx in
  patch ctx if_idx (function
    | Isa.If { test; target; _ } ->
        Isa.If { test; target; true_offset = else_start - if_idx; false_offset = 1 }
    | i -> i);
  patch ctx goto_idx (function Isa.Goto _ -> Isa.Goto (end_idx - goto_idx) | i -> i);
  r_out

and compile_match ctx scrut clauses =
  let rs = compile_expr ctx scrut in
  let rtag = fresh_reg ctx in
  emit ctx (Isa.GetTag { obj = rs; dst = rtag });
  let r_out = fresh_reg ctx in
  let exit_gotos = ref [] in
  let pending_test = ref None in
  (* patch the previous clause's failing test to jump here *)
  let land_here () =
    match !pending_test with
    | Some test_idx ->
        let target = here ctx in
        patch ctx test_idx (function
          | Isa.If { test; target = tr; true_offset; _ } ->
              Isa.If { test; target = tr; true_offset; false_offset = target - test_idx }
          | i -> i);
        pending_test := None
    | None -> ()
  in
  List.iter
    (fun { Expr.pat; rhs } ->
      land_here ();
      (match pat with
      | Expr.Pwild -> ()
      | Expr.Pvar v ->
          let r = fresh_reg ctx in
          emit ctx (Isa.Move { src = rs; dst = r });
          bind_var ctx v r
      | Expr.Pctor (c, ps) ->
          let rt = fresh_reg ctx in
          emit ctx (Isa.LoadConsti { value = Int64.of_int c.Adt.tag; dst = rt });
          let test_idx = here ctx in
          emit ctx (Isa.If { test = rtag; target = rt; true_offset = 1; false_offset = 0 });
          pending_test := Some test_idx;
          List.iteri
            (fun i p ->
              match p with
              | Expr.Pwild -> ()
              | Expr.Pvar v ->
                  let r = fresh_reg ctx in
                  emit ctx (Isa.GetField { obj = rs; index = i; dst = r });
                  bind_var ctx v r
              | Expr.Pctor _ ->
                  err "%s: nested constructor patterns are not supported" ctx.fname)
            ps);
      let rr = compile_expr ctx rhs in
      emit ctx (Isa.Move { src = rr; dst = r_out });
      let g = here ctx in
      emit ctx (Isa.Goto 0);
      exit_gotos := g :: !exit_gotos)
    clauses;
  land_here ();
  emit ctx (Isa.Fatal "match failure: no clause matched");
  let end_idx = here ctx in
  List.iter
    (fun g -> patch ctx g (function Isa.Goto _ -> Isa.Goto (end_idx - g) | i -> i))
    !exit_gotos;
  r_out

and compile_op ctx name args attrs : int =
  match name with
  | "memory.alloc_storage" -> (
      match args with
      | [ size ] ->
          let rsize = compile_expr ctx size in
          let r = fresh_reg ctx in
          emit ctx
            (Isa.AllocStorage
               {
                 size = rsize;
                 alignment = Attrs.get_int ~default:64 attrs "alignment";
                 dtype = dtype_attr attrs;
                 device_id = Attrs.get_int ~default:0 attrs "device";
                 arena = Attrs.get_bool attrs "arena";
                 dst = r;
               });
          r
      | _ -> err "alloc_storage: expected 1 argument")
  | "memory.alloc_tensor" -> (
      match args with
      | [ storage; shape ] -> (
          let rstorage = compile_expr ctx storage in
          let r = fresh_reg ctx in
          match Attrs.find_ints attrs "const_shape" with
          | Some s ->
              emit ctx
                (Isa.AllocTensor
                   {
                     storage = rstorage;
                     offset = Attrs.get_int ~default:0 attrs "offset";
                     shape = Array.of_list s;
                     dtype = dtype_attr attrs;
                     dst = r;
                   });
              r
          | None ->
              let rshape = compile_expr ctx shape in
              let slot = Attrs.get_int ~default:(-1) attrs "plan_slot" in
              let plan =
                if slot < 0 then -1
                else
                  match List.assoc_opt rstorage ctx.plan_regs with
                  | Some p -> p
                  | None ->
                      err "%s: plan_slot %d on a storage that is not a bind_arena result"
                        ctx.fname slot
              in
              emit ctx
                (Isa.AllocTensorReg
                   {
                     storage = rstorage;
                     offset = Attrs.get_int ~default:0 attrs "offset";
                     shape = rshape;
                     dtype = dtype_attr attrs;
                     plan;
                     slot;
                     dst = r;
                   });
              r)
      | _ -> err "alloc_tensor: expected 2 arguments")
  | "memory.bind_arena" -> (
      match args with
      | [] ->
          let parse_expr what s =
            try Nimble_shape.Sym_expr.of_string s
            with Nimble_shape.Sym_expr.Parse_error msg ->
              err "%s: bind_arena %s: %s" ctx.fname what msg
          in
          let rec triples = function
            | [] -> []
            | a :: d :: s :: rest ->
                { Exe.b_arg = a; b_dim = d; b_sym = s } :: triples rest
            | _ -> err "%s: bind_arena binders are not (arg, dim, sym) triples" ctx.fname
          in
          let binders =
            triples (Option.value ~default:[] (Attrs.find_ints attrs "binders"))
          in
          let slots =
            match Attrs.find_str attrs "slots" with
            | None | Some "" -> err "%s: bind_arena without slots" ctx.fname
            | Some s ->
                String.split_on_char ';' s
                |> List.map (fun pair ->
                       match String.index_opt pair '|' with
                       | Some i ->
                           {
                             Exe.s_offset =
                               parse_expr "slot offset"
                                 (String.sub pair 0 i);
                             s_size =
                               parse_expr "slot size"
                                 (String.sub pair (i + 1)
                                    (String.length pair - i - 1));
                           }
                       | None -> err "%s: bind_arena slot %S" ctx.fname pair)
          in
          let total =
            match Attrs.find_str attrs "total" with
            | Some s -> parse_expr "total" s
            | None -> err "%s: bind_arena without total" ctx.fname
          in
          let plan =
            {
              Exe.p_func = func_index ctx.st ctx.fname;
              p_device = Attrs.get_int ~default:0 attrs "device";
              p_align = Attrs.get_int ~default:64 attrs "alignment";
              p_binders = Array.of_list binders;
              p_slots = Array.of_list slots;
              p_total = total;
            }
          in
          let plan_index = ctx.st.n_plans in
          ctx.st.plans <- plan :: ctx.st.plans;
          ctx.st.n_plans <- ctx.st.n_plans + 1;
          let r = fresh_reg ctx in
          emit ctx (Isa.BindArena { plan_index; dst = r });
          ctx.plan_regs <- (r, plan_index) :: ctx.plan_regs;
          r
      | _ -> err "bind_arena: expected no arguments")
  | "memory.invoke_mut" -> (
      match args with
      | Expr.Fn prim :: rest when Fusion.is_primitive prim ->
          let n_in = Attrs.get_int attrs "num_inputs" in
          let ins = List.filteri (fun i _ -> i < n_in) rest in
          let outs = List.filteri (fun i _ -> i >= n_in) rest in
          let pidx = kernel_of_primitive ctx.st prim in
          let rins = Array.of_list (List.map (compile_expr ctx) ins) in
          let routs = Array.of_list (List.map (compile_expr ctx) outs) in
          emit ctx
            (Isa.InvokePacked
               {
                 packed_index = pidx;
                 args = rins;
                 outs = routs;
                 upper_bound = Attrs.get_bool attrs "upper_bound";
               });
          unit_reg ctx
      | _ -> err "invoke_mut: first argument must be a primitive function")
  | "memory.invoke_shape_func" -> (
      match args with
      | Expr.Fn prim :: rest when Fusion.is_primitive prim ->
          let n_in = Attrs.get_int attrs "num_inputs" in
          let ins = List.filteri (fun i _ -> i < n_in) rest in
          let outs = List.filteri (fun i _ -> i >= n_in) rest in
          let mode = Option.value ~default:"data_indep" (Attrs.find_str attrs "mode") in
          let pidx = shape_func_of_primitive ctx.st prim ~mode in
          let rins = Array.of_list (List.map (compile_expr ctx) ins) in
          let routs = Array.of_list (List.map (compile_expr ctx) outs) in
          emit ctx
            (Isa.InvokePacked
               { packed_index = pidx; args = rins; outs = routs; upper_bound = false });
          unit_reg ctx
      | _ -> err "invoke_shape_func: first argument must be a primitive function")
  | "memory.kill" -> (
      match args with
      | [ Expr.Var v ] ->
          (* drop the register's reference; the VM releases the object *)
          emit ctx (Isa.LoadConsti { value = 0L; dst = var_reg ctx v });
          unit_reg ctx
      | _ -> err "kill: expected a variable argument")
  | "shape_of" -> (
      match args with
      | [ t ] ->
          let rt = compile_expr ctx t in
          let r = fresh_reg ctx in
          emit ctx (Isa.ShapeOf { tensor = rt; dst = r });
          r
      | _ -> err "shape_of: expected 1 argument")
  | "reshape_tensor" -> (
      match args with
      | [ t; s ] ->
          let rt = compile_expr ctx t in
          let rshape = compile_expr ctx s in
          let r = fresh_reg ctx in
          emit ctx (Isa.ReshapeTensor { tensor = rt; shape = rshape; dst = r });
          r
      | _ -> err "reshape_tensor: expected 2 arguments")
  | "device_copy" -> (
      match args with
      | [ t ] ->
          let rt = compile_expr ctx t in
          let r = fresh_reg ctx in
          emit ctx
            (Isa.DeviceCopy
               {
                 src = rt;
                 dst_device_id = Attrs.get_int ~default:0 attrs "dst_device";
                 dst = r;
               });
          r
      | _ -> err "device_copy: expected 1 argument")
  | name ->
      err "%s: operator %s survived to emission (pipeline bug: fusion should have wrapped it)"
        ctx.fname name

and unit_reg ctx =
  let r = fresh_reg ctx in
  emit ctx (Isa.AllocADT { tag = Obj.tuple_tag; fields = [||]; dst = r });
  r

(* Lambda-lift a nested function into a fresh VM function; the closure's
   captured environment is prepended to its parameters. *)
and compile_closure ctx (fn : Expr.fn) : int =
  let free = Expr.free_vars (Expr.Fn fn) in
  ctx.st.closure_counter <- ctx.st.closure_counter + 1;
  let name = Fmt.str "%s$closure%d" ctx.fname ctx.st.closure_counter in
  let lifted =
    { fn with Expr.params = free @ fn.Expr.params; Expr.fn_attrs = Attrs.empty }
  in
  ctx.st.funcs <- ctx.st.funcs @ [ (name, Some lifted) ];
  compile_function ctx.st name lifted;
  let fi = func_index ctx.st name in
  let captured = Array.of_list (List.map (fun v -> var_reg ctx v) free) in
  let r = fresh_reg ctx in
  emit ctx (Isa.AllocClosure { func_index = fi; captured; dst = r });
  r

and compile_function st name (fn : Expr.fn) : unit =
  if Hashtbl.mem st.compiled name then ()
  else begin
    let ctx =
      {
        st;
        fname = name;
        regs = Hashtbl.create 32;
        next_reg = 0;
        code = Vec.create ();
        plan_regs = [];
      }
    in
    List.iter
      (fun (p : Expr.var) ->
        let r = fresh_reg ctx in
        bind_var ctx p r)
      fn.Expr.params;
    let r = compile_expr ctx fn.Expr.body in
    emit ctx (Isa.Ret { result = r });
    Hashtbl.replace st.compiled name
      {
        Exe.name;
        arity = List.length fn.Expr.params;
        register_count = ctx.next_reg;
        code = Vec.to_array ctx.code;
      }
  end

(* ------------------------------------------------------------------ *)

(* Entry guards (paper §4.1): the residual checks that type inference
   could not discharge statically, attached to each named function's
   tensor parameters. [Static n] dims become exact checks, [Any] is
   unconstrained, and [Sym s] dims — identical-[Any] classes the
   inference proved equal — become cross-argument equality checks on
   symbol [s]. Parameters without a resolved tensor type (tuples,
   functions, unresolved) are left unguarded. *)
let guard_of_param i (p : Expr.var) : Exe.guard option =
  match p.Expr.vty with
  | Some (Ty.Tensor { dims; dtype }) ->
      Some
        {
          Exe.g_arg = i;
          g_name = p.Expr.vname;
          g_dims =
            Array.map
              (function
                | Dim.Static n -> Exe.Check_exact n
                | Dim.Any -> Exe.Check_any
                | Dim.Sym s -> Exe.Check_eq s)
              dims;
          g_dtype = Some dtype;
        }
  | _ -> None

(** Emit a processed module into a linked executable. *)
let emit_module ?(options = default_options) (m : Irmod.t) : Exe.t =
  let st = create_state options in
  let named = List.map fst (Irmod.functions m) in
  st.funcs <- List.map (fun (name, fn) -> (name, Some fn)) (Irmod.functions m);
  List.iter
    (fun (name, fn) ->
      match fn with Some fn -> compile_function st name fn | None -> ())
    st.funcs;
  (* The function list may have grown with lifted closures; compile order
     guarantees they are all in [st.compiled] now. *)
  let funcs =
    Array.of_list (List.map (fun (name, _) -> Hashtbl.find st.compiled name) st.funcs)
  in
  let exe =
    Exe.create ~funcs
      ~constants:(Array.of_list (List.rev !(st.constants)))
      ~packed_names:(Array.of_list (List.rev !(st.packed_list)))
  in
  (if options.guards then
     (* guard only the module's named entry functions: lifted closures are
        internal (never invoked at the API boundary) and their captured
        parameters have no declared types *)
     let guards =
       Array.of_list
         (List.map
            (fun (name, fn) ->
              match fn with
              | Some fn when List.mem name named ->
                  Array.of_list
                    (List.filter_map Fun.id
                       (List.mapi guard_of_param fn.Expr.params))
              | _ -> [||])
            st.funcs)
     in
     Exe.set_guards exe guards);
  Exe.set_plans exe (Array.of_list (List.rev st.plans));
  Hashtbl.iter (fun _ p -> Exe.link exe p) st.packed_impls;
  exe

(** The kernel/shape-function implementations keyed by name, for relinking a
    deserialized executable. *)
let link_table ?(options = default_options) (m : Irmod.t) : Exe.packed list =
  let exe = emit_module ~options m in
  Array.to_list exe.Exe.packed
  |> List.filter_map (fun p -> p)
