(** Public compiler facade: the end-to-end pipeline of the paper's Figure 2.

    {[
      let exe = Nimble.compile my_module in
      let vm = Nimble.vm exe in
      Nimble_vm.Interp.run_tensors vm [ input ]
    ]} *)

(** Compilation options. Every switch corresponds to a pass or codegen
    strategy evaluated in the paper; defaults enable everything. *)
type options = {
  target_device : int;  (** 0 = host CPU, 1 = simulated GPU *)
  fuse : bool;  (** operator fusion (dynamic policy, §4.2) *)
  classify : bool;
      (** shape-value dominance classification ([Nimble_analysis.Classify]):
          prove data-dependent sites static at compile time so fusion and
          memory planning can cross formerly dynamic boundaries; results
          land in the report's classification table. On by default *)
  memory_plan : bool;  (** storage coalescing + kill insertion (§4.3) *)
  symbolic_plan : bool;
      (** fold bindable dynamic allocations into per-device symbolic memory
          plans — offsets/sizes as expressions over the function's symbolic
          dims, bound once per request by the VM's [BindArena] and reused
          via a persistent arena when serving (see [docs/MEMORY.md]); only
          meaningful with [memory_plan] on *)
  device_placement : bool;  (** heterogeneous placement (§4.4) *)
  dense_dispatch : int option;
      (** residue-dispatch kernel count for dense (§4.5); [None] = reference
          library-style kernel *)
  profile_extern : bool;
      (** profile generated vs third-party kernels and route dense to
          whichever is faster (§4.5) *)
  runtime_guards : bool;
      (** emit gradual-typing entry guards (§4.1): residual checks on the
          entry functions' tensor parameters — concrete dims, identical-Any
          equalities, dtypes — enforced by the VM at the API boundary and
          surfaced as [Shape_guard] failures (see [docs/ROBUSTNESS.md]) *)
  verify_passes : bool;
      (** run the [Nimble_analysis] dialect lints after each lowering pass
          (fusion policy, memory dialect, device placement) and the
          bytecode verifier on the emitted executable; violations land in
          {!report.verify} / {!report.verify_diags}. On by default; see
          [docs/ANALYSIS.md] *)
  compact_registers : bool;
      (** run verifier-driven dead-register compaction after emission
          ([Nimble_analysis.Compact]) so frames carry no dead slots; the
          removed-slot delta lands in {!report.registers_before} /
          {!report.registers_after}. On by default *)
  autotune : bool;
      (** serve-time online shape specialization: track hot extents while
          serving and re-tune live dispatch tables in the background
          ([Nimble_codegen.Autotune]; see [docs/TUNING.md]). Off by
          default — it is a serving policy, not a compile pass; the serve
          layer and CLI read it to decide whether to attach a tuner *)
  autotune_threshold : int;
      (** dispatch count at which an extent counts as hot *)
  autotune_interval : int;  (** serve batches between hotness scans *)
}

val default_options : options

(** One pipeline stage's contribution to the compile report: its wall time
    and the IR-size delta it caused. IR size is the total expression-node
    count over the module's functions ({!ir_size}) — fusion grows it,
    DCE/CSE shrink it, pure analyses (inference, inlining stats) leave it
    unchanged. *)
type pass_stat = {
  pass_name : string;  (** e.g. ["anf"], ["fusion"]; ["dce"] appears twice *)
  pass_seconds : float;  (** wall-clock time of the pass *)
  nodes_before : int;
  nodes_after : int;
}

(** One verification check's contribution to the report: the check name
    (["fusion"], ["memory"], ["device"], ["memory_planned"], ["bytecode"]),
    its wall time, and how many violations it found — zero everywhere on a
    healthy pipeline. *)
type verify_stat = {
  verify_name : string;
  verify_seconds : float;
  violations : int;
}

(** One function's row in the operator-classification table: how many call
    sites have data-dependent/upper-bound shape functions, how many of
    those the dominance pass proved static, and how many fused groups ended
    up crossing a proven boundary. *)
type classify_stat = {
  cls_fn : string;
  cls_sites : int;  (** data-dependent / upper-bound op call sites *)
  cls_proven : int;  (** sites proven static by shape-value dominance *)
  cls_fused : int;  (** fused groups crossing a proven dynamic boundary *)
}

(** Per-compile statistics surfaced for tests, benches and the CLI. *)
type report = {
  residual_checks : int;  (** runtime type checks deferred by gradual typing *)
  primitives : int;  (** fused kernels after the fusion pass *)
  sites_total : int;  (** classification candidates across all functions *)
  classified_static : int;  (** dominance-proven sites across all functions *)
  fused_across_dynamic : int;
      (** fused groups containing a proven formerly-dynamic site *)
  classify_table : classify_stat list;  (** per-function classification *)
  storages_before_planning : int;
  storages_after_planning : int;
  arena_bytes : int;  (** coalesced arena footprint *)
  unplanned_bytes : int;  (** what the un-coalesced storages added up to *)
  kills_inserted : int;
  device_copies : int;
  instructions : int;  (** emitted bytecode size *)
  registers_before : int;
      (** register slots across all functions as emitted, before
          dead-register compaction *)
  registers_after : int;
      (** register slots after compaction; equals [registers_before] when
          [compact_registers] is off or nothing shrank *)
  passes : pass_stat list;  (** per-pass timings and deltas, pipeline order *)
  verify : verify_stat list;
      (** per-check verification stats in run order; empty when
          [verify_passes] is off *)
  verify_diags : Nimble_analysis.Diag.t list;
      (** every violation the checks found, for diagnostics printing *)
}

(** Total expression nodes across the module's functions — the "IR size"
    tracked by {!pass_stat} deltas. *)
val ir_size : Nimble_ir.Irmod.t -> int

(** Run the pass pipeline only (no bytecode emission): ANF, inlining, CSE,
    constant folding, DCE, type inference with [Any], fusion, manifest
    allocation, device placement, memory planning. *)
val optimize : ?options:options -> Nimble_ir.Irmod.t -> Nimble_ir.Irmod.t * report

(** Compile a module to a linked VM executable, with the report. *)
val compile_with_report :
  ?options:options -> Nimble_ir.Irmod.t -> Nimble_vm.Exe.t * report

(** Compile a module to a linked VM executable. *)
val compile : ?options:options -> Nimble_ir.Irmod.t -> Nimble_vm.Exe.t

(** Create an interpreter over a linked executable. *)
val vm : Nimble_vm.Exe.t -> Nimble_vm.Interp.t

(** Compile and invoke [main] in one step (convenience). *)
val run :
  ?options:options -> Nimble_ir.Irmod.t -> Nimble_vm.Obj.t list -> Nimble_vm.Obj.t

(** Compile for the TVM-style static graph executor (static models only —
    the Table 4 baseline). *)
val compile_static : Nimble_ir.Irmod.t -> Static_exec.t

val pp_report : Format.formatter -> report -> unit

(** Render the per-pass table (pass, ms, nodes after, node delta). *)
val pp_passes : Format.formatter -> report -> unit

(** Render the per-function classification table (sites, proven, fused). *)
val pp_classify : Format.formatter -> report -> unit

(** The compile report as [nimble-compile/v1] JSON: the scalar fields of
    {!report} plus a [passes] array of
    [{name, seconds, nodes_before, nodes_after}] objects and a [verify]
    array of [{name, seconds, violations}] objects. See
    [docs/OBSERVABILITY.md]. *)
val report_to_json : report -> Nimble_vm.Json.t
