(** Public compiler facade: the end-to-end pipeline of Figure 2.

    {[
      let exe = Nimble.compile my_module in
      let vm = Nimble.vm exe in
      let out = Nimble_vm.Interp.run_tensors vm [ input ]
    ]}

    Pipeline: constant folding -> ANF -> type inference (with Any) -> type
    resolution -> fusion (dynamic policy) -> manifest alloc -> device
    placement -> memory planning -> DCE -> bytecode emission. *)

open Nimble_ir
open Nimble_passes

type options = {
  target_device : int;  (** 0 = host CPU, 1 = simulated GPU *)
  fuse : bool;
  classify : bool;
      (** shape-value dominance classification ([Nimble_analysis.Classify]):
          prove data-dependent sites static so fusion and memory planning
          can cross formerly dynamic boundaries *)
  memory_plan : bool;
  symbolic_plan : bool;
      (** fold bindable dynamic allocations into per-device symbolic memory
          plans bound per request by [BindArena] (see [docs/MEMORY.md]);
          only meaningful with [memory_plan] on *)
  device_placement : bool;
  dense_dispatch : int option;  (** residue-dispatch kernel count for dense *)
  profile_extern : bool;  (** route dense to a profiled library kernel when faster *)
  runtime_guards : bool;
      (** emit gradual-typing entry guards: the §4.1 residual checks on
          entry-function tensor parameters, enforced by the VM *)
  verify_passes : bool;
      (** run the dialect lints after each lowering pass and the bytecode
          verifier on the emitted executable (see [docs/ANALYSIS.md]) *)
  compact_registers : bool;
      (** run verifier-driven dead-register compaction after emission so
          frames carry no dead slots ([Nimble_analysis.Compact]) *)
  autotune : bool;
      (** serve-time online shape specialization: track hot extents and
          re-tune live dispatch tables in the background
          (see [docs/TUNING.md]) *)
  autotune_threshold : int;
      (** dispatch count at which an extent counts as hot *)
  autotune_interval : int;  (** serve batches between hotness scans *)
}

let default_options =
  {
    target_device = 0;
    fuse = true;
    classify = true;
    memory_plan = true;
    symbolic_plan = true;
    device_placement = true;
    dense_dispatch = Some 8;
    profile_extern = false;
    runtime_guards = true;
    verify_passes = true;
    compact_registers = true;
    autotune = false;
    autotune_threshold = Nimble_codegen.Autotune.default_config.hot_threshold;
    autotune_interval = Nimble_codegen.Autotune.default_config.scan_interval;
  }

(** One pipeline stage's contribution to the compile report: wall time and
    the IR-size delta it caused (expression nodes before/after — fusion
    grows the module, DCE shrinks it, analyses leave it unchanged). *)
type pass_stat = {
  pass_name : string;
  pass_seconds : float;
  nodes_before : int;
  nodes_after : int;
}

(** One verification check's contribution: which check ran, its wall time
    and how many violations it reported (zero on a healthy pipeline). *)
type verify_stat = {
  verify_name : string;
  verify_seconds : float;
  violations : int;
}

(** One function's row in the operator-classification table. *)
type classify_stat = {
  cls_fn : string;
  cls_sites : int;  (** data-dependent / upper-bound op call sites *)
  cls_proven : int;  (** sites proven static by shape-value dominance *)
  cls_fused : int;  (** fused groups crossing a proven dynamic boundary *)
}

type report = {
  residual_checks : int;  (** runtime type checks deferred by gradual typing *)
  primitives : int;
  sites_total : int;  (** classification candidates, all functions *)
  classified_static : int;  (** dominance-proven sites, all functions *)
  fused_across_dynamic : int;
      (** fused groups containing a proven formerly-dynamic site *)
  classify_table : classify_stat list;  (** per-function classification *)
  storages_before_planning : int;
  storages_after_planning : int;
  arena_bytes : int;
  unplanned_bytes : int;
  kills_inserted : int;
  device_copies : int;
  instructions : int;
  registers_before : int;  (** register slots as emitted, all functions *)
  registers_after : int;  (** register slots after dead-register compaction *)
  passes : pass_stat list;  (** per-pass timings and deltas, pipeline order *)
  verify : verify_stat list;  (** per-check verification stats, run order *)
  verify_diags : Nimble_analysis.Diag.t list;  (** the violations themselves *)
}

(** Total expression nodes across a module's functions — the "IR size" the
    per-pass deltas track. *)
let ir_size (m : Irmod.t) : int =
  List.fold_left
    (fun acc (_, (fn : Nimble_ir.Expr.fn)) ->
      acc + Nimble_ir.Expr.size (Nimble_ir.Expr.Fn fn))
    0 (Irmod.functions m)

(** Run the pass pipeline, returning the processed module and a report. *)
let optimize ?(options = default_options) (m : Irmod.t) : Irmod.t * report =
  let passes = ref [] in
  let record name seconds before after =
    passes :=
      { pass_name = name; pass_seconds = seconds; nodes_before = before; nodes_after = after }
      :: !passes
  in
  let verify_stats = ref [] in
  let verify_diags = ref [] in
  (* run one dialect lint (when verification is on), timing it and folding
     its violations into the report *)
  let lint name check m =
    if options.verify_passes then begin
      let t0 = Unix.gettimeofday () in
      let ds = check m in
      verify_stats :=
        {
          verify_name = name;
          verify_seconds = Unix.gettimeofday () -. t0;
          violations = List.length ds;
        }
        :: !verify_stats;
      verify_diags := !verify_diags @ ds
    end
  in
  (* time a transform returning a new module *)
  let timed name f m =
    let before = ir_size m in
    let t0 = Unix.gettimeofday () in
    let m' = f m in
    record name (Unix.gettimeofday () -. t0) before (ir_size m');
    m'
  in
  (* time a pass that mutates the module in place and returns statistics *)
  let timed_stats name f m =
    let before = ir_size m in
    let t0 = Unix.gettimeofday () in
    let r = f m in
    record name (Unix.gettimeofday () -. t0) before (ir_size m);
    r
  in
  (* ANF first: it is the only pass that understands builder DAG sharing;
     everything after walks linear let-chains. *)
  let m = timed "anf" Anf.run m in
  ignore (timed_stats "inline" (fun m -> Inline.run m) m);
  let m = timed "anf" Anf.run m in
  let m = timed "cse" Cse.run m in
  let m = timed "const_fold" Const_fold.run m in
  let m = timed "dce" Dce.run m in
  let infer_result = timed_stats "infer" Nimble_typing.Infer.infer_module m in
  let m =
    timed "type_resolve"
      (fun m -> Type_resolve.run m infer_result.Nimble_typing.Infer.solver)
      m
  in
  (* shape-value dominance: stamp proven data-dependent sites and refine
     their binding types before fusion consults the site classification *)
  let cls_summary =
    if options.classify then
      timed_stats "classify" (fun m -> Nimble_analysis.Classify.run m) m
    else
      { Nimble_analysis.Classify.per_fn = []; sites_total = 0; classified_static = 0 }
  in
  let m = timed "fusion" (Fusion.run ~merge:options.fuse) m in
  lint "fusion" Nimble_analysis.Lint.fusion m;
  let fused_per_fn =
    List.map
      (fun (name, (fn : Nimble_ir.Expr.fn)) ->
        (name, Nimble_analysis.Classify.fn_fused_across_dynamic fn))
      (Irmod.functions m)
  in
  let classify_table =
    List.map
      (fun (s : Nimble_analysis.Classify.fn_stat) ->
        {
          cls_fn = s.Nimble_analysis.Classify.cs_fn;
          cls_sites = s.Nimble_analysis.Classify.cs_sites;
          cls_proven = s.Nimble_analysis.Classify.cs_proven;
          cls_fused =
            Option.value ~default:0
              (List.assoc_opt s.Nimble_analysis.Classify.cs_fn fused_per_fn);
        })
      cls_summary.Nimble_analysis.Classify.per_fn
  in
  let primitives =
    List.fold_left
      (fun acc (_, (fn : Nimble_ir.Expr.fn)) ->
        acc + List.length (Fusion.primitives_of fn.Nimble_ir.Expr.body))
      0 (Irmod.functions m)
  in
  let m = timed "manifest_alloc" (Manifest_alloc.run ~device:options.target_device) m in
  lint "memory" (Nimble_analysis.Lint.memory ~planned:false) m;
  let dp_stats =
    if options.device_placement then begin
      let s = timed_stats "device_place" (fun m -> Device_place.run m) m in
      lint "device" (Nimble_analysis.Lint.device ~shape_func_device:0) m;
      s
    end
    else { Device_place.copies_inserted = 0 }
  in
  let mp_stats =
    if options.memory_plan then begin
      let s =
        timed_stats "memory_plan"
          (Memory_plan.run ~symbolic:options.symbolic_plan)
          m
      in
      lint "memory_planned" (Nimble_analysis.Lint.memory ~planned:true) m;
      s
    end
    else Memory_plan.fresh_stats ()
  in
  let m = timed "dce" Dce.run m in
  ( m,
    {
      residual_checks = infer_result.Nimble_typing.Infer.residual_checks;
      primitives;
      sites_total = cls_summary.Nimble_analysis.Classify.sites_total;
      classified_static = cls_summary.Nimble_analysis.Classify.classified_static;
      fused_across_dynamic =
        List.fold_left (fun a (_, n) -> a + n) 0 fused_per_fn;
      classify_table;
      storages_before_planning = mp_stats.Memory_plan.storages_before;
      storages_after_planning = mp_stats.Memory_plan.storages_after;
      arena_bytes = mp_stats.Memory_plan.arena_bytes;
      unplanned_bytes = mp_stats.Memory_plan.sum_bytes;
      kills_inserted = mp_stats.Memory_plan.kills_inserted;
      device_copies = dp_stats.Device_place.copies_inserted;
      instructions = 0;
      registers_before = 0;
      registers_after = 0;
      passes = List.rev !passes;
      verify = List.rev !verify_stats;
      verify_diags = !verify_diags;
    } )

(** Compile a module to a linked VM executable. *)
let compile_with_report ?(options = default_options) (m : Irmod.t) :
    Nimble_vm.Exe.t * report =
  let m, report = optimize ~options m in
  let exe =
    Emitter.emit_module
      ~options:
        {
          Emitter.dense_dispatch = options.dense_dispatch;
          profile_extern = options.profile_extern;
          guards = options.runtime_guards;
        }
      m
  in
  (* dead-register compaction: rename away dead frame slots before the
     verifier sees the final bytecode *)
  let registers_before = Nimble_analysis.Compact.register_count exe in
  let report =
    if options.compact_registers then begin
      let t0 = Unix.gettimeofday () in
      ignore (Nimble_analysis.Compact.run exe);
      {
        report with
        passes =
          report.passes
          @ [
              {
                pass_name = "compact_regs";
                pass_seconds = Unix.gettimeofday () -. t0;
                nodes_before = registers_before;
                nodes_after = Nimble_analysis.Compact.register_count exe;
              };
            ];
      }
    end
    else report
  in
  let registers_after = Nimble_analysis.Compact.register_count exe in
  let report =
    if options.verify_passes then begin
      let t0 = Unix.gettimeofday () in
      let ds = Nimble_analysis.Verifier.verify exe in
      {
        report with
        verify =
          report.verify
          @ [
              {
                verify_name = "bytecode";
                verify_seconds = Unix.gettimeofday () -. t0;
                violations = List.length ds;
              };
            ];
        verify_diags = report.verify_diags @ ds;
      }
    end
    else report
  in
  ( exe,
    {
      report with
      instructions = Nimble_vm.Exe.instruction_count exe;
      registers_before;
      registers_after;
    } )

let compile ?options m = fst (compile_with_report ?options m)

(** Create an interpreter over a linked executable. *)
let vm exe = Nimble_vm.Interp.create exe

(** Compile and run in one step (convenience for examples and tests). *)
let run ?options (m : Irmod.t) (inputs : Nimble_vm.Obj.t list) : Nimble_vm.Obj.t =
  let exe = compile ?options m in
  Nimble_vm.Interp.invoke (vm exe) inputs

(** Compile for the static executor (fusion only; static models only). *)
let compile_static (m : Irmod.t) : Static_exec.t =
  let m = Anf.run m in
  let m = Cse.run m in
  let m = Const_fold.run m in
  let infer_result = Nimble_typing.Infer.infer_module m in
  let m = Type_resolve.run m infer_result.Nimble_typing.Infer.solver in
  let m = Fusion.run m in
  let m = Dce.run m in
  Static_exec.plan m

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "residual_checks=%d primitives=%d classified=%d/%d fused_across_dynamic=%d \
     storages=%d->%d arena=%dB (vs %dB) kills=%d copies=%d instrs=%d violations=%d"
    r.residual_checks r.primitives r.classified_static r.sites_total
    r.fused_across_dynamic r.storages_before_planning r.storages_after_planning
    r.arena_bytes r.unplanned_bytes r.kills_inserted r.device_copies r.instructions
    (List.length r.verify_diags)

let pp_classify ppf (r : report) =
  Fmt.pf ppf "%-24s %8s %8s %8s@." "function" "sites" "proven" "fused";
  List.iter
    (fun c -> Fmt.pf ppf "%-24s %8d %8d %8d@." c.cls_fn c.cls_sites c.cls_proven c.cls_fused)
    r.classify_table;
  Fmt.pf ppf "%-24s %8d %8d %8d@." "total" r.sites_total r.classified_static
    r.fused_across_dynamic

let pp_passes ppf (r : report) =
  Fmt.pf ppf "%-14s %9s %8s %8s@." "pass" "ms" "nodes" "delta";
  List.iter
    (fun p ->
      Fmt.pf ppf "%-14s %9.3f %8d %+8d@." p.pass_name (p.pass_seconds *. 1e3)
        p.nodes_after
        (p.nodes_after - p.nodes_before))
    r.passes

let report_to_json (r : report) : Nimble_vm.Json.t =
  let open Nimble_vm.Json in
  Obj
    [
      ("schema", String "nimble-compile/v1");
      ("residual_checks", Int r.residual_checks);
      ("primitives", Int r.primitives);
      ("sites_total", Int r.sites_total);
      ("classified_static", Int r.classified_static);
      ("fused_across_dynamic", Int r.fused_across_dynamic);
      ( "classify",
        List
          (List.map
             (fun c ->
               Obj
                 [
                   ("fn", String c.cls_fn);
                   ("sites_total", Int c.cls_sites);
                   ("classified_static", Int c.cls_proven);
                   ("fused_across_dynamic", Int c.cls_fused);
                 ])
             r.classify_table) );
      ("storages_before_planning", Int r.storages_before_planning);
      ("storages_after_planning", Int r.storages_after_planning);
      ("arena_bytes", Int r.arena_bytes);
      ("unplanned_bytes", Int r.unplanned_bytes);
      ("kills_inserted", Int r.kills_inserted);
      ("device_copies", Int r.device_copies);
      ("instructions", Int r.instructions);
      ("registers_before", Int r.registers_before);
      ("registers_after", Int r.registers_after);
      ( "passes",
        List
          (List.map
             (fun p ->
               Obj
                 [
                   ("name", String p.pass_name);
                   ("seconds", Float p.pass_seconds);
                   ("nodes_before", Int p.nodes_before);
                   ("nodes_after", Int p.nodes_after);
                 ])
             r.passes) );
      ( "verify",
        List
          (List.map
             (fun v ->
               Obj
                 [
                   ("name", String v.verify_name);
                   ("seconds", Float v.verify_seconds);
                   ("violations", Int v.violations);
                 ])
             r.verify) );
    ]
