(** Binary (de)serialization of VM executables.

    Only the platform-independent part is stored (bytecode in a
    variable-length instruction encoding, constants, packed-function names,
    and the per-function gradual-typing entry guards); kernel
    implementations are relinked by name on load, mirroring the paper's
    split between portable bytecode and platform-dependent kernels. *)

(** Raised by {!of_bytes}/{!load_file} when the input is not a valid
    serialized executable (bad magic, truncated stream, implausible
    section counts). *)
exception Format_error of string

(** The file-format magic the byte stream must start with. Exposed so
    external tooling can sniff executables without decoding them. *)
val magic : string

(** Encode an executable to its portable byte representation. Kernel
    implementations are {e not} stored — only their names, for relinking
    on load. *)
val to_bytes : Exe.t -> string

(** Decode an executable; packed functions come back unlinked. Evaluates
    the ["deserialize"] fault-injection point (see [Nimble_fault.Fault]).
    @raise Format_error on bad magic, truncation, or implausible counts. *)
val of_bytes : string -> Exe.t

(** {!to_bytes} written to a file (the [.nimble] artifact produced by
    [nimble_cli compile]). *)
val save_file : Exe.t -> string -> unit

(** {!of_bytes} over a file's contents.
    @raise Format_error as {!of_bytes}; I/O errors propagate as [Sys_error]. *)
val load_file : string -> Exe.t
