(** VM executables (paper §5): platform-independent bytecode (functions,
    constant pool, ADT layouts, packed-function names) plus the
    platform-dependent kernel implementations, which are linked in by name
    after compilation or deserialization. *)

open Nimble_tensor

type vmfunc = {
  name : string;
  arity : int;
  register_count : int;
  code : Isa.t array;
}

(** One per-dimension residual check of a gradual-typing entry guard
    (paper §4.1): [Check_any] accepts any extent, [Check_exact n] requires
    exactly [n], and [Check_eq s] requires the extent to equal every other
    dimension guarded with the same symbol [s] in the same call — the
    "identical Any" cross-argument equality that inference proved but
    could not resolve to a constant. *)
type dim_check = Check_any | Check_exact of int | Check_eq of int

(** An entry guard for one argument of a VM function: the declared rank,
    per-dimension checks and (optionally) the declared element type of
    parameter [g_name] at position [g_arg]. Emitted by the compiler from
    the resolved parameter types; enforced by the interpreter at the API
    boundary (depth-0 invocations only). *)
type guard = {
  g_arg : int;  (** argument position *)
  g_name : string;  (** source parameter name, for diagnostics *)
  g_dims : dim_check array;  (** one check per declared dimension *)
  g_dtype : Dtype.t option;  (** declared element type, when known *)
}

(** A packed function: a compiled kernel or a compiled shape function.
    [run] takes input tensors and freshly computes outputs; the interpreter
    blits them into the pre-allocated destinations of [InvokePacked]. *)
type packed = {
  packed_name : string;
  kind : [ `Kernel | `Shape_func ];
  mode : string option;
      (** shape-function mode ("data_indep" / "data_dep" / "upper_bound" /
          "proven"), carried for trace tagging; [None] for kernels *)
  run : Tensor.t list -> Tensor.t list;
}

(** One symbolic-dim binding of a memory plan: at bind time the VM reads
    dimension [b_dim] of argument [b_arg]'s shape as the value of symbolic
    dim [b_sym]. *)
type binder = { b_arg : int; b_dim : int; b_sym : int }

(** One arena slot of a symbolic memory plan: byte offset and size as
    expressions over the bound symbolic dims. *)
type slot = {
  s_offset : Nimble_shape.Sym_expr.t;
  s_size : Nimble_shape.Sym_expr.t;
}

(** A symbolic memory plan (paper §4.3, BladeDISC++-style): emitted by the
    memory planner for one function x device, bound per request by
    [BindArena] (see [docs/MEMORY.md]). *)
type plan = {
  p_func : int;  (** function the plan belongs to *)
  p_device : int;  (** device the arena lives on *)
  p_align : int;  (** arena alignment *)
  p_binders : binder array;  (** how to bind each free symbolic dim *)
  p_slots : slot array;  (** slot offsets/sizes, [AllocTensorReg.slot]-indexed *)
  p_total : Nimble_shape.Sym_expr.t;  (** total arena bytes *)
}

(** One persisted tune decision (paper §4.5 online specialization): install
    a [tn_tile_m]-tiled kernel for exact extent [tn_extent] into the
    dispatcher of packed kernel [tn_kernel]. Written by
    [Serve.Cache.persist_tunes] from the live dispatch tables, applied after
    relink on warm restart so the executable starts pre-specialized (see
    [docs/TUNING.md]). *)
type tune = { tn_kernel : string; tn_extent : int; tn_tile_m : int }

type t = {
  funcs : vmfunc array;
  constants : Tensor.t array;
  packed_names : (string * [ `Kernel | `Shape_func ]) array;
  mutable packed : packed option array;  (** linked implementations *)
  mutable guards : guard array array;
      (** entry guards per function, indexed like [funcs]; [[||]] means the
          function was compiled unguarded *)
  mutable plans : plan array;
      (** symbolic memory plans, [BindArena.plan_index]-indexed *)
  mutable tunes : tune array;
      (** persisted autotune decisions (NMBLEXE4 tune table) *)
}

let create ~funcs ~constants ~packed_names =
  {
    funcs;
    constants;
    packed_names;
    packed = Array.make (Array.length packed_names) None;
    guards = Array.make (Array.length funcs) [||];
    plans = [||];
    tunes = [||];
  }

(** Attach the compiler-emitted symbolic memory plans ([BindArena] operand
    table). *)
let set_plans t plans = t.plans <- plans

(** Attach persisted autotune decisions (the NMBLEXE4 tune table). *)
let set_tunes t tunes = t.tunes <- tunes

(** Attach compiler-emitted entry guards, one (possibly empty) array per
    function in [funcs] order. *)
let set_guards t guards =
  if Array.length guards <> Array.length t.funcs then
    Fmt.invalid_arg "Exe.set_guards: %d guard entries for %d functions"
      (Array.length guards) (Array.length t.funcs);
  t.guards <- guards

let guards t = t.guards

let func_index t name =
  let found = ref None in
  Array.iteri (fun i f -> if String.equal f.name name then found := Some i) t.funcs;
  match !found with
  | Some i -> i
  | None -> Fmt.invalid_arg "Exe.func_index: no function %s" name

let packed_index t name =
  let found = ref None in
  Array.iteri
    (fun i (n, _) -> if String.equal n name then found := Some i)
    t.packed_names;
  !found

(** Link one packed implementation by name. *)
let link t (p : packed) =
  match packed_index t p.packed_name with
  | Some i -> t.packed.(i) <- Some p
  | None -> Fmt.invalid_arg "Exe.link: executable has no packed function %s" p.packed_name

let linked t =
  Array.for_all Option.is_some t.packed

let get_packed t i =
  match t.packed.(i) with
  | Some p -> p
  | None ->
      let name, _ = t.packed_names.(i) in
      Fmt.invalid_arg "Exe.get_packed: %s not linked" name

(** Static well-formedness checks on an executable: register indices within
    each function's register file, jump targets inside the code, constant and
    function and packed indices within their tables, and every path ending in
    a control transfer. Returns the list of violations (empty = valid). Run
    after deserialization to reject malformed or truncated bytecode early. *)
let validate (t : t) : string list =
  let problems = ref [] in
  let bad fmt = Fmt.kstr (fun s -> problems := s :: !problems) fmt in
  Array.iteri
    (fun fi (f : vmfunc) ->
      let n = Array.length f.code in
      let check_reg pc r what =
        if r < 0 || r >= f.register_count then
          bad "fn%d %s pc=%d: %s register %d out of [0,%d)" fi f.name pc what r
            f.register_count
      in
      let check_regs pc rs what = Array.iter (fun r -> check_reg pc r what) rs in
      let check_jump pc off =
        let target = pc + off in
        if target < 0 || target >= n then
          bad "fn%d %s pc=%d: jump target %d out of [0,%d)" fi f.name pc target n
      in
      if f.arity > f.register_count then
        bad "fn%d %s: arity %d exceeds register count %d" fi f.name f.arity
          f.register_count;
      if n = 0 then bad "fn%d %s: empty code" fi f.name;
      Array.iteri
        (fun pc instr ->
          match instr with
          | Isa.Move { src; dst } ->
              check_reg pc src "src";
              check_reg pc dst "dst"
          | Isa.Ret { result } -> check_reg pc result "result"
          | Isa.Invoke { func_index; args; dst } ->
              if func_index < 0 || func_index >= Array.length t.funcs then
                bad "fn%d %s pc=%d: bad function index %d" fi f.name pc func_index
              else if Array.length args <> t.funcs.(func_index).arity then
                bad "fn%d %s pc=%d: %d args for fn%d (arity %d)" fi f.name pc
                  (Array.length args) func_index t.funcs.(func_index).arity;
              check_regs pc args "arg";
              check_reg pc dst "dst"
          | Isa.InvokeClosure { closure; args; dst } ->
              check_reg pc closure "closure";
              check_regs pc args "arg";
              check_reg pc dst "dst"
          | Isa.InvokePacked { packed_index; args; outs; _ } ->
              if packed_index < 0 || packed_index >= Array.length t.packed_names then
                bad "fn%d %s pc=%d: bad packed index %d" fi f.name pc packed_index;
              check_regs pc args "arg";
              check_regs pc outs "out"
          | Isa.AllocStorage { size; dst; _ } ->
              check_reg pc size "size";
              check_reg pc dst "dst"
          | Isa.AllocTensor { storage; dst; _ } ->
              check_reg pc storage "storage";
              check_reg pc dst "dst"
          | Isa.AllocTensorReg { storage; shape; plan; slot; dst; _ } ->
              check_reg pc storage "storage";
              check_reg pc shape "shape";
              check_reg pc dst "dst";
              if plan >= 0 then begin
                if plan >= Array.length t.plans then
                  bad "fn%d %s pc=%d: bad plan index %d" fi f.name pc plan
                else if slot < 0 || slot >= Array.length t.plans.(plan).p_slots then
                  bad "fn%d %s pc=%d: slot %d outside plan%d's %d slots" fi f.name pc
                    slot plan
                    (Array.length t.plans.(plan).p_slots)
              end
              else if slot >= 0 then
                bad "fn%d %s pc=%d: slot %d without a plan" fi f.name pc slot
          | Isa.AllocADT { fields; dst; _ } ->
              check_regs pc fields "field";
              check_reg pc dst "dst"
          | Isa.AllocClosure { func_index; captured; dst } ->
              if func_index < 0 || func_index >= Array.length t.funcs then
                bad "fn%d %s pc=%d: bad closure function index %d" fi f.name pc func_index;
              check_regs pc captured "captured";
              check_reg pc dst "dst"
          | Isa.GetField { obj; dst; _ } | Isa.GetTag { obj; dst } ->
              check_reg pc obj "obj";
              check_reg pc dst "dst"
          | Isa.If { test; target; true_offset; false_offset } ->
              check_reg pc test "test";
              check_reg pc target "target";
              check_jump pc true_offset;
              check_jump pc false_offset
          | Isa.Goto off -> check_jump pc off
          | Isa.LoadConst { index; dst } ->
              if index < 0 || index >= Array.length t.constants then
                bad "fn%d %s pc=%d: bad constant index %d" fi f.name pc index;
              check_reg pc dst "dst"
          | Isa.LoadConsti { dst; _ } -> check_reg pc dst "dst"
          | Isa.DeviceCopy { src; dst; _ } ->
              check_reg pc src "src";
              check_reg pc dst "dst"
          | Isa.ShapeOf { tensor; dst } ->
              check_reg pc tensor "tensor";
              check_reg pc dst "dst"
          | Isa.ReshapeTensor { tensor; shape; dst } ->
              check_reg pc tensor "tensor";
              check_reg pc shape "shape";
              check_reg pc dst "dst"
          | Isa.Fatal _ -> ()
          | Isa.BindArena { plan_index; dst } ->
              check_reg pc dst "dst";
              if plan_index < 0 || plan_index >= Array.length t.plans then
                bad "fn%d %s pc=%d: bad plan index %d" fi f.name pc plan_index
              else begin
                let p = t.plans.(plan_index) in
                if p.p_func <> fi then
                  bad "fn%d %s pc=%d: plan%d belongs to fn%d" fi f.name pc plan_index
                    p.p_func;
                Array.iter
                  (fun b ->
                    if b.b_arg < 0 || b.b_arg >= f.arity then
                      bad "fn%d %s pc=%d: plan%d binder reads argument %d outside arity %d"
                        fi f.name pc plan_index b.b_arg f.arity)
                  p.p_binders
              end)
        f.code;
      (* entry guards must name real argument positions *)
      Array.iter
        (fun g ->
          if g.g_arg < 0 || g.g_arg >= f.arity then
            bad "fn%d %s: guard on argument %d outside arity %d" fi f.name g.g_arg
              f.arity)
        (if fi < Array.length t.guards then t.guards.(fi) else [||]);
      (* the last instruction must not fall off the end *)
      if n > 0 then
        match f.code.(n - 1) with
        | Isa.Ret _ | Isa.Goto _ | Isa.Fatal _ | Isa.If _ -> ()
        | _ -> bad "fn%d %s: falls off the end of the code" fi f.name)
    t.funcs;
  (* tune-table rows must target real packed kernels with sane parameters
     and no duplicate (kernel, extent) decisions *)
  let seen_tunes = Hashtbl.create 8 in
  Array.iteri
    (fun i tn ->
      (match
         Array.find_opt (fun (n, _) -> String.equal n tn.tn_kernel) t.packed_names
       with
      | Some (_, `Kernel) -> ()
      | Some (_, `Shape_func) ->
          bad "tune%d: %s is a shape function, not a kernel" i tn.tn_kernel
      | None -> bad "tune%d: no packed kernel named %s" i tn.tn_kernel);
      if tn.tn_extent <= 0 then bad "tune%d: extent %d not positive" i tn.tn_extent;
      if tn.tn_tile_m <= 0 || tn.tn_tile_m > 256 then
        bad "tune%d: tile_m %d out of [1,256]" i tn.tn_tile_m;
      let key = (tn.tn_kernel, tn.tn_extent) in
      if Hashtbl.mem seen_tunes key then
        bad "tune%d: duplicate decision for %s extent %d" i tn.tn_kernel tn.tn_extent
      else Hashtbl.replace seen_tunes key ())
    t.tunes;
  List.rev !problems

(** Human-readable disassembly. *)
let disassemble ppf t =
  Fmt.pf ppf "constants: %d@." (Array.length t.constants);
  Array.iteri
    (fun i (name, kind) ->
      Fmt.pf ppf "packed%d: %s (%s)@." i name
        (match kind with `Kernel -> "kernel" | `Shape_func -> "shape_func"))
    t.packed_names;
  Array.iter
    (fun f ->
      Fmt.pf ppf "@.fn %s(arity=%d, regs=%d):@." f.name f.arity f.register_count;
      Array.iteri (fun pc instr -> Fmt.pf ppf "  %3d: %a@." pc Isa.pp instr) f.code)
    t.funcs

let instruction_count t =
  Array.fold_left (fun acc f -> acc + Array.length f.code) 0 t.funcs
