(** Minimal JSON values: the wire format of the observability layer.

    The container ships no JSON library, so the telemetry surface (VM
    traces, profiler reports, compile reports, bench tables — see
    [docs/OBSERVABILITY.md]) carries its own emitter and parser. The
    emitter produces strict RFC 8259 JSON; the parser accepts exactly what
    the emitter produces (plus insignificant whitespace), which is all the
    round-trip tests and trajectory scrapers need. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let err fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  (* NaN / infinities are not JSON; null keeps the document valid *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Fmt.str "%.1f" f
  else Fmt.str "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        vs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  write b v;
  Buffer.contents b

(* Indented emission, for files a human will open. *)
let rec write_pretty b indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write b v
  | List [] -> Buffer.add_string b "[]"
  | Obj [] -> Buffer.add_string b "{}"
  | List vs ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string b "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad';
          write_pretty b (indent + 2) v)
        vs;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b ']'
  | Obj fields ->
      let pad = String.make indent ' ' and pad' = String.make (indent + 2) ' ' in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b pad';
          escape_string b k;
          Buffer.add_string b ": ";
          write_pretty b (indent + 2) v)
        fields;
      Buffer.add_char b '\n';
      Buffer.add_string b pad;
      Buffer.add_char b '}'

let to_string_pretty v =
  let b = Buffer.create 4096 in
  write_pretty b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let save_file v path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string_pretty v))

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> err "expected %C at offset %d, found %C" c p.pos c'
  | None -> err "expected %C at offset %d, found end of input" c p.pos

let parse_literal p lit value =
  if
    p.pos + String.length lit <= String.length p.src
    && String.sub p.src p.pos (String.length lit) = lit
  then begin
    p.pos <- p.pos + String.length lit;
    value
  end
  else err "bad literal at offset %d" p.pos

let parse_string_body p =
  expect p '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> err "unterminated string at offset %d" p.pos
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | Some '"' -> advance p; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance p; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance p; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance p; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance p; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance p; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance p; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance p; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance p;
            if p.pos + 4 > String.length p.src then err "truncated \\u escape";
            let hex = String.sub p.src p.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> err "bad \\u escape %S" hex
            in
            p.pos <- p.pos + 4;
            (* UTF-8 encode the code point (BMP only, like the emitter) *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> err "bad escape at offset %d" p.pos)
    | Some c ->
        advance p;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c -> is_num_char c | None -> false) do
    advance p
  done;
  let s = String.sub p.src start (p.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> err "bad number %S at offset %d" s start
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> err "bad number %S at offset %d" s start)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> err "unexpected end of input"
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' -> String (parse_string_body p)
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        List []
      end
      else
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              items (v :: acc)
          | Some ']' ->
              advance p;
              List (List.rev (v :: acc))
          | _ -> err "expected ',' or ']' at offset %d" p.pos
        in
        items []
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else
        let rec fields acc =
          skip_ws p;
          let k = parse_string_body p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance p;
              Obj (List.rev ((k, v) :: acc))
          | _ -> err "expected ',' or '}' at offset %d" p.pos
        in
        fields []
  | Some c -> err "unexpected character %C at offset %d" c p.pos

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then err "trailing garbage at offset %d" p.pos;
  v

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and scrapers)                                  *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let member_exn key v =
  match member key v with
  | Some x -> x
  | None -> err "no member %S" key

let to_list_exn = function List vs -> vs | _ -> err "expected an array"

let to_int_exn = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> err "expected an integer"

let to_float_exn = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> err "expected a number"

let to_string_exn = function String s -> s | _ -> err "expected a string"

let keys = function Obj fields -> List.map fst fields | _ -> []
