(** Minimal JSON values — the wire format of the observability layer.

    The container ships no JSON library, so the telemetry surface (VM
    traces, profiler reports, compile reports, bench tables) carries its
    own emitter and parser. See [docs/OBSERVABILITY.md] for the schemas
    built on top of this module. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Compact single-line rendering (NDJSON-friendly). Non-finite floats
    render as [null] to keep the document strictly valid. *)
val to_string : t -> string

(** Two-space-indented rendering with a trailing newline, for files a
    human will open. Parses back to the same value as {!to_string}. *)
val to_string_pretty : t -> string

(** [save_file v path] writes {!to_string_pretty}[ v] to [path]. *)
val save_file : t -> string -> unit

(** Parse a JSON document. Accepts everything the emitter produces plus
    insignificant whitespace; [\u] escapes are decoded to UTF-8 (BMP only).
    @raise Parse_error on malformed input or trailing garbage. *)
val of_string : string -> t

(** {2 Accessors} — for tests and trajectory scrapers. *)

(** Field lookup on an [Obj]; [None] on missing keys or non-objects. *)
val member : string -> t -> t option

(** @raise Parse_error when the member is absent. *)
val member_exn : string -> t -> t

(** @raise Parse_error on a non-array. *)
val to_list_exn : t -> t list

(** Accepts [Int] and integral [Float]. @raise Parse_error otherwise. *)
val to_int_exn : t -> int

(** Accepts [Float] and [Int]. @raise Parse_error otherwise. *)
val to_float_exn : t -> float

(** @raise Parse_error on a non-string. *)
val to_string_exn : t -> string

(** Field names of an [Obj], in order; [[]] for any other value. *)
val keys : t -> string list
