(** VM executables (paper §5): platform-independent bytecode (functions,
    constant pool, packed-function names) plus the platform-dependent kernel
    implementations, linked in by name after compilation or deserialization. *)

open Nimble_tensor

(** One lowered VM function: straight-line {!Isa} bytecode over a
    frame-local register file of [register_count] virtual registers, the
    first [arity] of which hold the arguments on entry. *)
type vmfunc = {
  name : string;
  arity : int;
  register_count : int;
  code : Isa.t array;
}

(** A packed function: a compiled kernel or a compiled shape function.
    [run] computes fresh outputs; the interpreter blits them into the
    pre-allocated destinations of [InvokePacked]. Packed implementations
    are platform-dependent and therefore never serialized; {!Serialize}
    stores only [packed_names] and {!link} reattaches implementations by
    name. *)
type packed = {
  packed_name : string;
  kind : [ `Kernel | `Shape_func ];
  mode : string option;
      (** shape-function mode ("data_indep" / "data_dep" / "upper_bound"),
          carried for trace tagging; [None] for kernels *)
  run : Tensor.t list -> Tensor.t list;
}

(** An executable: the serializable, platform-independent part (bytecode
    functions, constant pool, packed-function names) plus the linked-in
    platform-dependent implementations. *)
type t = {
  funcs : vmfunc array;
  constants : Tensor.t array;
  packed_names : (string * [ `Kernel | `Shape_func ]) array;
  mutable packed : packed option array;  (** linked implementations *)
}

(** Assemble an executable with every packed slot unlinked; call {!link}
    for each name in [packed_names] before handing it to the interpreter. *)
val create :
  funcs:vmfunc array ->
  constants:Tensor.t array ->
  packed_names:(string * [ `Kernel | `Shape_func ]) array ->
  t

(** Index of a VM function by name. @raise Invalid_argument if absent. *)
val func_index : t -> string -> int

(** Index of a declared packed function by name; [None] if undeclared. *)
val packed_index : t -> string -> int option

(** Link one packed implementation by name.
    @raise Invalid_argument for names the executable does not declare. *)
val link : t -> packed -> unit

(** Every declared packed function has an implementation. *)
val linked : t -> bool

(** The linked implementation at a packed index.
    @raise Invalid_argument if that slot was never {!link}ed. *)
val get_packed : t -> int -> packed

(** Static well-formedness checks: register bounds, jump targets, constant /
    function / packed indices, arity agreement, no fallthrough. Returns the
    violations (empty = valid); run after deserialization. *)
val validate : t -> string list

(** Human-readable disassembly. *)
val disassemble : Format.formatter -> t -> unit

(** Total bytecode instructions across all functions (the [instructions]
    field of the compile report). *)
val instruction_count : t -> int
