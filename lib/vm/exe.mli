(** VM executables (paper §5): platform-independent bytecode (functions,
    constant pool, packed-function names) plus the platform-dependent kernel
    implementations, linked in by name after compilation or deserialization. *)

open Nimble_tensor

(** One lowered VM function: straight-line {!Isa} bytecode over a
    frame-local register file of [register_count] virtual registers, the
    first [arity] of which hold the arguments on entry. *)
type vmfunc = {
  name : string;
  arity : int;
  register_count : int;
  code : Isa.t array;
}

(** One per-dimension residual check of a gradual-typing entry guard
    (paper §4.1): [Check_any] accepts any extent, [Check_exact n] requires
    exactly [n], and [Check_eq s] requires the extent to equal every other
    dimension guarded with symbol [s] in the same call (the "identical
    Any" cross-argument equality). *)
type dim_check = Check_any | Check_exact of int | Check_eq of int

(** An entry guard for one argument of a VM function: declared rank,
    per-dimension checks, and optionally the declared element type of
    parameter [g_name] at position [g_arg]. Emitted by the compiler from
    resolved parameter types; enforced by {!Interp} at the API boundary.
    See [docs/ROBUSTNESS.md]. *)
type guard = {
  g_arg : int;  (** argument position *)
  g_name : string;  (** source parameter name, for diagnostics *)
  g_dims : dim_check array;  (** one check per declared dimension *)
  g_dtype : Dtype.t option;  (** declared element type, when known *)
}

(** A packed function: a compiled kernel or a compiled shape function.
    [run] computes fresh outputs; the interpreter blits them into the
    pre-allocated destinations of [InvokePacked]. Packed implementations
    are platform-dependent and therefore never serialized; {!Serialize}
    stores only [packed_names] and {!link} reattaches implementations by
    name. *)
type packed = {
  packed_name : string;
  kind : [ `Kernel | `Shape_func ];
  mode : string option;
      (** shape-function mode ("data_indep" / "data_dep" / "upper_bound"),
          carried for trace tagging; [None] for kernels *)
  run : Tensor.t list -> Tensor.t list;
}

(** One symbolic-dim binding of a memory plan: at bind time the VM reads
    dimension [b_dim] of argument [b_arg]'s shape as the value of symbolic
    dim [b_sym]. *)
type binder = { b_arg : int; b_dim : int; b_sym : int }

(** One arena slot of a symbolic memory plan: byte offset and size as
    expressions over the bound symbolic dims. *)
type slot = {
  s_offset : Nimble_shape.Sym_expr.t;
  s_size : Nimble_shape.Sym_expr.t;
}

(** A symbolic memory plan (paper §4.3, BladeDISC++-style): emitted by the
    memory planner for one function x device, bound per request by the
    [BindArena] instruction, with tensor slots suballocated by
    [AllocTensorReg]. See [docs/MEMORY.md]. *)
type plan = {
  p_func : int;  (** function the plan belongs to *)
  p_device : int;  (** device the arena lives on *)
  p_align : int;  (** arena alignment *)
  p_binders : binder array;  (** how to bind each free symbolic dim *)
  p_slots : slot array;  (** slot offsets/sizes, [AllocTensorReg.slot]-indexed *)
  p_total : Nimble_shape.Sym_expr.t;  (** total arena bytes *)
}

(** One persisted tune decision (paper §4.5 online specialization): install
    a [tn_tile_m]-tiled kernel for exact extent [tn_extent] into the
    dispatcher of packed kernel [tn_kernel]. Written by
    [Serve.Cache.persist_tunes] from the live dispatch tables and applied
    after relink on warm restart, so the executable starts pre-specialized.
    See [docs/TUNING.md]. *)
type tune = { tn_kernel : string; tn_extent : int; tn_tile_m : int }

(** An executable: the serializable, platform-independent part (bytecode
    functions, constant pool, packed-function names, guards, memory plans,
    tune decisions) plus the linked-in platform-dependent implementations. *)
type t = {
  funcs : vmfunc array;
  constants : Tensor.t array;
  packed_names : (string * [ `Kernel | `Shape_func ]) array;
  mutable packed : packed option array;  (** linked implementations *)
  mutable guards : guard array array;
      (** entry guards per function, indexed like [funcs]; [[||]] = the
          function was compiled unguarded *)
  mutable plans : plan array;
      (** symbolic memory plans, [BindArena.plan_index]-indexed *)
  mutable tunes : tune array;
      (** persisted autotune decisions (NMBLEXE4 tune table) *)
}

(** Assemble an executable with every packed slot unlinked; call {!link}
    for each name in [packed_names] before handing it to the interpreter. *)
val create :
  funcs:vmfunc array ->
  constants:Tensor.t array ->
  packed_names:(string * [ `Kernel | `Shape_func ]) array ->
  t

(** Attach compiler-emitted entry guards, one (possibly empty) array per
    function in [funcs] order.
    @raise Invalid_argument when the array length disagrees with [funcs]. *)
val set_guards : t -> guard array array -> unit

(** The executable's entry guards, indexed like [funcs]. *)
val guards : t -> guard array array

(** Attach the compiler-emitted symbolic memory plans (the [BindArena]
    operand table). *)
val set_plans : t -> plan array -> unit

(** Attach persisted autotune decisions (the NMBLEXE4 tune table). *)
val set_tunes : t -> tune array -> unit

(** Index of a VM function by name. @raise Invalid_argument if absent. *)
val func_index : t -> string -> int

(** Index of a declared packed function by name; [None] if undeclared. *)
val packed_index : t -> string -> int option

(** Link one packed implementation by name.
    @raise Invalid_argument for names the executable does not declare. *)
val link : t -> packed -> unit

(** Every declared packed function has an implementation. *)
val linked : t -> bool

(** The linked implementation at a packed index.
    @raise Invalid_argument if that slot was never {!link}ed. *)
val get_packed : t -> int -> packed

(** Static well-formedness checks: register bounds, jump targets, constant /
    function / packed indices, arity agreement, no fallthrough. Returns the
    violations (empty = valid); run after deserialization. *)
val validate : t -> string list

(** Human-readable disassembly. *)
val disassemble : Format.formatter -> t -> unit

(** Total bytecode instructions across all functions (the [instructions]
    field of the compile report). *)
val instruction_count : t -> int
