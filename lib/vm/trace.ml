(** Structured VM event recorder.

    A bounded ring buffer of timed spans fed by the interpreter when a
    trace is installed ({!Interp.set_trace}): instruction dispatch, kernel
    invocations (with resolved runtime shapes and the residue-dispatch
    specialization that fired), shape-function calls tagged by mode,
    storage/tensor allocations (with pool-hit flags), and [device_copy]s.

    Exports Chrome [trace_event] JSON loadable by [chrome://tracing] and
    Perfetto; see [docs/OBSERVABILITY.md] for the schema and a worked
    example. When the buffer fills, the oldest spans are overwritten and
    the drop count is reported in the export's [otherData]. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type span = {
  name : string;
  cat : string;
  ts_us : float;  (** start, µs since the trace was created *)
  dur_us : float;
  args : (string * arg) list;
}

(* Span categories. Kept as strings so the Chrome export is direct and
   downstream consumers can filter with plain string matches. *)
let cat_instr = "instr"
let cat_invoke = "invoke"
let cat_kernel = "kernel"
let cat_shape_func = "shape_func"
let cat_alloc = "alloc"
let cat_device_copy = "device_copy"
let cat_serve = "serve"

let dummy = { name = ""; cat = ""; ts_us = 0.0; dur_us = 0.0; args = [] }

type t = {
  buf : span array;
  capacity : int;
  mutable next : int;  (** ring write cursor *)
  mutable total : int;  (** spans ever recorded (>= capacity means drops) *)
  epoch : float;  (** [Unix.gettimeofday] at creation, seconds *)
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then Fmt.invalid_arg "Trace.create: capacity %d" capacity;
  {
    buf = Array.make capacity dummy;
    capacity;
    next = 0;
    total = 0;
    epoch = Unix.gettimeofday ();
  }

(** Current timestamp in trace time (µs since creation). *)
let now_us t = (Unix.gettimeofday () -. t.epoch) *. 1e6

let record t ~name ~cat ~ts_us ~dur_us args =
  t.buf.(t.next) <- { name; cat; ts_us; dur_us; args };
  t.next <- (t.next + 1) mod t.capacity;
  t.total <- t.total + 1

let total_recorded t = t.total
let dropped t = Stdlib.max 0 (t.total - t.capacity)

(** Retained spans, oldest first. *)
let spans t : span list =
  let n = Stdlib.min t.total t.capacity in
  let start = if t.total <= t.capacity then 0 else t.next in
  List.init n (fun i -> t.buf.((start + i) mod t.capacity))

let count_cat t cat =
  List.fold_left
    (fun acc s -> if String.equal s.cat cat then acc + 1 else acc)
    0 (spans t)

let clear t =
  t.next <- 0;
  t.total <- 0

(* --------------------- Chrome trace_event export --------------------- *)

let json_of_arg = function
  | Str s -> Json.String s
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b

(* One complete ("ph":"X") event per span. A single pid/tid is enough: the
   VM interpreter is single-threaded, and Perfetto renders nested spans
   (instruction wrapping kernel) as a flame stack on one track. *)
let json_of_span s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("ph", Json.String "X");
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("ts", Json.Float s.ts_us);
      ("dur", Json.Float s.dur_us);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) s.args));
    ]

(** Export as a Chrome [trace_event] document (object format). [meta]
    key/values are merged into [otherData] alongside the drop counters. *)
let to_json ?(meta = []) t =
  Json.Obj
    [
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          ([
             ("tool", Json.String "nimble");
             ("schema", Json.String "nimble-trace/v1");
             ("spans_recorded", Json.Int t.total);
             ("spans_dropped", Json.Int (dropped t));
           ]
          @ List.map (fun (k, v) -> (k, Json.String v)) meta) );
      ("traceEvents", Json.List (List.map json_of_span (spans t)));
    ]

let save_file ?meta t path = Json.save_file (to_json ?meta t) path
