(** The VM interpreter (paper §5.2).

    A dispatch loop over the coarse-grained ISA: it checks the opcode,
    executes the corresponding logic and repeats. Kernel invocations
    dominate; everything else is bookkeeping whose cost the profiler
    separates out (Table 4). *)

open Nimble_tensor
module Fault = Nimble_fault.Fault

exception Vm_error of string

let err fmt = Fmt.kstr (fun s -> raise (Vm_error s)) fmt

(* ------------------------- typed failures ------------------------- *)

type failure_kind = Shape_guard | Alloc | Kernel_trap | Shape_func | Internal

type failure = {
  fail_kind : failure_kind;
  fail_func : string;  (** VM function that was executing *)
  fail_pc : int;  (** program counter, [-1] for entry (guards, arity) *)
  fail_instr : string;  (** faulting instruction summary, [""] at entry *)
  fail_msg : string;
  fail_transient : bool;
      (** the fault was injected in transient mode: a retry may succeed *)
}

exception Vm_failure of failure

let kind_name = function
  | Shape_guard -> "shape_guard"
  | Alloc -> "alloc"
  | Kernel_trap -> "kernel_trap"
  | Shape_func -> "shape_func"
  | Internal -> "internal"

let pp_failure ppf f =
  Fmt.pf ppf "%s failure in %s%s: %s" (kind_name f.fail_kind) f.fail_func
    (if f.fail_pc < 0 then " at entry"
     else Fmt.str " at pc %d (%s)" f.fail_pc f.fail_instr)
    f.fail_msg

let internal_failure ~func msg =
  {
    fail_kind = Internal;
    fail_func = func;
    fail_pc = -1;
    fail_instr = "";
    fail_msg = msg;
    fail_transient = false;
  }

type t = {
  exe : Exe.t;
  profiler : Profiler.t;
  max_depth : int;  (** recursion guard for Invoke *)
  pooling : bool;
      (** reuse already-allocated chunks across top-level invocations — the
          runtime half of memory planning (paper: "reuse the already
          allocated memory chunks") *)
  arenas : (string, Storage.t) Hashtbl.t;
      (** storages reused across top-level invocations, keyed by allocation
          site; recursive frames always allocate fresh so concurrently-live
          frames never alias *)
  plan_arenas : (int, Storage.t) Hashtbl.t;
      (** persistent symbolic-plan arenas, keyed by plan index: [BindArena]
          reuses the retained storage whenever it is large enough for the
          request's bound dims, so steady-state serving allocates nothing
          (see [docs/MEMORY.md]) *)
  mutable on_instruction : (Isa.t -> unit) option;
      (** QoS hook (paper SS5.3): called before every instruction, letting a
          scheduler pause, deprioritize, or abort this inference in favor of
          a time-critical one (raise {!Preempted} to abort) *)
  mutable trace : Trace.t option;
      (** event recorder; when set, the dispatch loop emits spans for every
          instruction, kernel, shape function, allocation and device copy *)
  guards_on : bool;
      (** run the compiler-emitted gradual-typing entry guards (paper §4.1)
          on depth-0 invocations *)
  max_pool_bytes : int option;
      (** byte cap on pooled storage retained across invocations; exceeding
          it is an [Alloc] failure rather than an abort *)
  mutable pool_bytes : int;  (** bytes currently retained in [arenas] *)
}

exception Preempted

let create ?(max_depth = 100_000) ?(pooling = true) ?(guards = true)
    ?max_pool_bytes exe =
  if not (Exe.linked exe) then err "executable has unlinked packed functions";
  {
    exe;
    profiler = Profiler.create ();
    max_depth;
    pooling;
    arenas = Hashtbl.create 4;
    plan_arenas = Hashtbl.create 4;
    on_instruction = None;
    trace = None;
    guards_on = guards;
    max_pool_bytes;
    pool_bytes = 0;
  }

(** Install (or clear) the QoS instruction hook. *)
let set_instruction_hook vm hook = vm.on_instruction <- hook

(** Install (or clear) a structured event recorder. Tracing is off by
    default; with no trace installed the dispatch loop takes no extra
    clock reads. *)
let set_trace vm trace = vm.trace <- trace

let trace vm = vm.trace

(* Trace-span helpers: every [record_*] is a no-op when no trace is
   installed, so the hot loop only pays for observability when asked. *)

let shapes_arg tensors =
  String.concat ";" (List.map (fun t -> Shape.to_string (Tensor.shape t)) tensors)

let dispatch_args () =
  match Nimble_codegen.Dispatch.last_selection () with
  | None -> []
  | Some (dname, sel) ->
      let which, residue, extent =
        match sel with
        | Nimble_codegen.Dispatch.Hit r -> ("hit", Some r, None)
        | Nimble_codegen.Dispatch.Miss r -> ("miss", Some r, None)
        | Nimble_codegen.Dispatch.Extern -> ("extern", None, None)
        | Nimble_codegen.Dispatch.Tuned m -> ("tuned", None, Some m)
      in
      ("dispatch", Trace.Str which)
      :: ("dispatch_table", Trace.Str dname)
      :: ((match residue with Some r -> [ ("residue", Trace.Int r) ] | None -> [])
         @ match extent with Some m -> [ ("extent", Trace.Int m) ] | None -> [])

let now () = Unix.gettimeofday ()

(* Copy a kernel result into a pre-allocated destination tensor (the
   destination-passing half of invoke_mut). Upper-bound outputs may be
   smaller than the destination: the exact-extent result replaces it. *)
let store_output ~upper_bound (dst : Obj.placed) (res : Tensor.t) : Obj.t =
  if Shape.equal (Tensor.shape res) (Tensor.shape dst.Obj.data) then begin
    (* blit into the pre-allocated buffer *)
    Tensor.blit ~src:res ~dst:dst.Obj.data;
    Obj.Tensor dst
  end
  else if upper_bound then
    (* the kernel reported the true extent; use the exact-shape result *)
    if Tensor.numel res <= Tensor.numel dst.Obj.data then
      Obj.Tensor { dst with Obj.data = res }
    else err "upper-bound output larger than its bound"
  else
    err "kernel output shape %a does not match allocation %a" Shape.pp
      (Tensor.shape res) Shape.pp
      (Tensor.shape dst.Obj.data)

let storage_bytes (shape_t : Tensor.t) (dtype : Dtype.t) ~alignment =
  let dims = Tensor.to_shape shape_t in
  let n = Array.fold_left ( * ) 1 dims in
  let b = n * Dtype.size_in_bytes dtype in
  (b + alignment - 1) / alignment * alignment

(* ------------- symbolic memory plans (docs/MEMORY.md) ------------- *)

(* Evaluate a plan's binders against argument shapes ([shape_of_arg i] is
   argument [i]'s shape when it is a tensor). Returns a dim lookup for
   [Sym_expr.eval], or a message naming the binder that could not be
   satisfied. *)
let bind_plan_dims (p : Exe.plan) (shape_of_arg : int -> int array option) :
    (int -> int, string) result =
  let env = Hashtbl.create 4 in
  let missing = ref None in
  Array.iter
    (fun (b : Exe.binder) ->
      if !missing = None then
        match shape_of_arg b.Exe.b_arg with
        | Some shape when b.Exe.b_dim < Array.length shape ->
            Hashtbl.replace env b.Exe.b_sym shape.(b.Exe.b_dim)
        | Some shape ->
            missing :=
              Some
                (Fmt.str "plan binder: argument %d has rank %d, needs dim %d"
                   b.Exe.b_arg (Array.length shape) b.Exe.b_dim)
        | None ->
            missing :=
              Some (Fmt.str "plan binder: argument %d is not a tensor" b.Exe.b_arg))
    p.Exe.p_binders;
  match !missing with
  | Some msg -> Error msg
  | None ->
      Ok
        (fun s ->
          match Hashtbl.find_opt env s with
          | Some v -> v
          | None -> err "plan references unbound symbolic dim s%d" s)

(* Acquire the arena behind [plan_index]: with [persistent] (pooling,
   depth 0), reuse the retained per-plan storage whenever it is already
   large enough — the serve-time fast path that allocates nothing — and
   grow or create it otherwise; without, allocate fresh. Returns the
   storage and whether it was a reuse. *)
let acquire_plan_arena vm ~persistent ~plan_index ~device ~bytes :
    Storage.t * bool =
  if persistent then
    match Hashtbl.find_opt vm.plan_arenas plan_index with
    | Some cached when cached.Storage.bytes >= bytes -> (cached, true)
    | prev ->
        Fault.check "storage_alloc";
        let retained =
          match prev with
          | Some old -> vm.pool_bytes - old.Storage.bytes
          | None -> vm.pool_bytes
        in
        (match vm.max_pool_bytes with
        | Some cap when retained + bytes > cap ->
            err "storage pool byte cap exceeded: %d retained + %d > %d" retained
              bytes cap
        | _ -> ());
        Nimble_device.Pool.record_alloc vm.profiler.Profiler.pool device ~bytes;
        let fresh = Storage.create ~device ~bytes ~is_arena:true in
        vm.pool_bytes <- retained + bytes;
        Hashtbl.replace vm.plan_arenas plan_index fresh;
        (fresh, false)
  else begin
    Fault.check "storage_alloc";
    Nimble_device.Pool.record_alloc vm.profiler.Profiler.pool device ~bytes;
    (Storage.create ~device ~bytes ~is_arena:true, false)
  end

(** A reusable execution context: the top-level register frame for each
    entry function, kept across invocations so a steady-state caller (the
    serving engine's VM workers, the bench loops) re-enters without
    allocating a fresh frame. Frames are keyed by function index, so a
    context is only meaningful against the interpreter it was handed to
    first. Recursive [Invoke] frames are always fresh — only the depth-0
    frame is reused. *)
type ctx = {
  frames : (int, Obj.t array) Hashtbl.t;
  mutable frame_reuses : int;  (** invocations that skipped the frame alloc *)
}

let context () = { frames = Hashtbl.create 2; frame_reuses = 0 }

let frame_reuses c = c.frame_reuses

(* -------------------- gradual-typing entry guards -------------------- *)

(* Residual runtime checks for what static inference could not resolve
   (paper §4.1): concrete dims must match exactly, [Any] dims pass, and
   identical-[Any] dims ([Check_eq s]) must agree across every argument
   that shares symbol [s]. Violations surface as [Shape_guard] failures
   naming the argument and dimension. Only depth-0 (API-boundary)
   invocations are guarded: internal calls were checked by the compiler. *)
let check_guards (f : Exe.vmfunc) (gs : Exe.guard array) (args : Obj.t array) =
  (* symbol -> first observed (extent, parameter name, dim index) *)
  let syms : (int, int * string * int) Hashtbl.t = Hashtbl.create 4 in
  let guard_fail fmt =
    Fmt.kstr
      (fun msg ->
        raise
          (Vm_failure
             {
               fail_kind = Shape_guard;
               fail_func = f.Exe.name;
               fail_pc = -1;
               fail_instr = "entry";
               fail_msg = msg;
               fail_transient = false;
             }))
      fmt
  in
  Array.iter
    (fun (g : Exe.guard) ->
      match args.(g.Exe.g_arg) with
      | Obj.Tensor p ->
          let shape = Tensor.shape p.Obj.data in
          let declared = Array.length g.Exe.g_dims in
          if Array.length shape <> declared then
            guard_fail "argument %d (%s): rank %d where %d was declared"
              g.Exe.g_arg g.Exe.g_name (Array.length shape) declared;
          (match g.Exe.g_dtype with
          | Some dt when not (Dtype.equal dt (Tensor.dtype p.Obj.data)) ->
              guard_fail "argument %d (%s): dtype %a where %a was declared"
                g.Exe.g_arg g.Exe.g_name Dtype.pp
                (Tensor.dtype p.Obj.data)
                Dtype.pp dt
          | _ -> ());
          Array.iteri
            (fun i check ->
              let n = shape.(i) in
              match check with
              | Exe.Check_any -> ()
              | Exe.Check_exact m ->
                  if n <> m then
                    guard_fail "argument %d (%s): dim %d is %d where %d was declared"
                      g.Exe.g_arg g.Exe.g_name i n m
              | Exe.Check_eq s -> (
                  match Hashtbl.find_opt syms s with
                  | None -> Hashtbl.replace syms s (n, g.Exe.g_name, i)
                  | Some (m, name0, i0) ->
                      if n <> m then
                        guard_fail
                          "argument %d (%s): dim %d is %d but must equal dim %d \
                           of %s (= %d)"
                          g.Exe.g_arg g.Exe.g_name i n i0 name0 m))
            g.Exe.g_dims
      | _ -> () (* non-tensor arguments (ADTs, closures) are not guarded *))
    gs

let rec exec_func (vm : t) ?ctx ~depth (fi : int) (args : Obj.t array) : Obj.t =
  if depth > vm.max_depth then err "VM recursion limit exceeded";
  let f = vm.exe.Exe.funcs.(fi) in
  if Array.length args <> f.Exe.arity then
    err "fn %s: expected %d arguments, got %d" f.Exe.name f.Exe.arity
      (Array.length args);
  (if depth = 0 && vm.guards_on then
     let gs = vm.exe.Exe.guards in
     if fi < Array.length gs && Array.length gs.(fi) > 0 then
       check_guards f gs.(fi) args);
  let nregs = Stdlib.max f.Exe.register_count (f.Exe.arity + 1) in
  let regs =
    match ctx with
    | Some c when depth = 0 -> (
        match Hashtbl.find_opt c.frames fi with
        | Some cached when Array.length cached = nregs ->
            (* refill, don't reallocate: behavior is identical to a fresh
               frame (every slot starts as [Obj.unit]) at zero allocation *)
            c.frame_reuses <- c.frame_reuses + 1;
            Array.fill cached 0 nregs Obj.unit;
            cached
        | _ ->
            let fresh = Array.make nregs Obj.unit in
            Hashtbl.replace c.frames fi fresh;
            fresh)
    | _ -> Array.make nregs Obj.unit
  in
  Array.blit args 0 regs 0 (Array.length args);
  (* per-frame slot offsets of bound symbolic plans: filled by [BindArena],
     read by planned [AllocTensorReg]; frame-local so recursive frames with
     different bound dims never see each other's offsets *)
  let plan_offsets : (int, int array) Hashtbl.t Lazy.t = lazy (Hashtbl.create 2) in
  let prof = vm.profiler in
  let set_reg i (o : Obj.t) =
    (* overwriting the last reference releases the old object *)
    (match regs.(i) with
    | Obj.Tensor p ->
        Nimble_device.Pool.record_free prof.Profiler.pool p.Obj.device
          ~bytes:(Tensor.size_in_bytes p.Obj.data)
    | Obj.Storage s when s.Storage.live -> ()
    | _ -> ());
    regs.(i) <- o
  in
  let get i = regs.(i) in
  let code = f.Exe.code in
  let pc = ref 0 in
  let result = ref None in
  while !result = None do
    if !pc < 0 || !pc >= Array.length code then
      err "fn %s: program counter %d out of bounds" f.Exe.name !pc;
    let instr = code.(!pc) in
    (match vm.on_instruction with Some hook -> hook instr | None -> ());
    Profiler.count prof instr;
    let instr_ts = match vm.trace with Some tr -> Trace.now_us tr | None -> 0.0 in
    (* classify anything the current instruction throws into a typed
       [failure]; the QoS hook above runs outside this so [Preempted]
       (and hook exceptions) propagate unwrapped, per the hook contract *)
    let fail_here ?(transient = false) kind msg =
      raise
        (Vm_failure
           {
             fail_kind = kind;
             fail_func = f.Exe.name;
             fail_pc = !pc;
             fail_instr = Fmt.str "%a" Isa.pp instr;
             fail_msg = msg;
             fail_transient = transient;
           })
    in
    let instr_kind () =
      match instr with
      | Isa.InvokePacked { packed_index; _ } -> (
          match (Exe.get_packed vm.exe packed_index).Exe.kind with
          | `Kernel -> Kernel_trap
          | `Shape_func -> Shape_func
          | exception _ -> Internal)
      | Isa.AllocStorage _ | Isa.AllocTensor _ | Isa.AllocTensorReg _
      | Isa.BindArena _ ->
          Alloc
      | _ -> Internal
    in
    (try
       match instr with
    | Isa.Move { src; dst } ->
        regs.(dst) <- get src;
        incr pc
    | Isa.Ret { result = r } -> result := Some (get r)
    | Isa.Invoke { func_index; args; dst } ->
        let argv = Array.map get args in
        regs.(dst) <- exec_func vm ~depth:(depth + 1) func_index argv;
        incr pc
    | Isa.InvokeClosure { closure; args; dst } ->
        let func_index, captured = Obj.to_closure (get closure) in
        let argv = Array.append captured (Array.map get args) in
        regs.(dst) <- exec_func vm ~depth:(depth + 1) func_index argv;
        incr pc
    | Isa.InvokePacked { packed_index; args; outs; upper_bound } ->
        let packed = Exe.get_packed vm.exe packed_index in
        Fault.check
          (match packed.Exe.kind with
          | `Kernel -> "kernel_launch"
          | `Shape_func -> "shape_func");
        let placed_ins = Array.map (fun r -> Obj.to_placed (get r)) args in
        let placed_outs = Array.map (fun r -> Obj.to_placed (get r)) outs in
        (* all operands of a packed call share one device (paper §4.4) *)
        let dev =
          if Array.length placed_outs > 0 then placed_outs.(0).Obj.device
          else Nimble_device.Device.cpu
        in
        Array.iteri
          (fun i (p : Obj.placed) ->
            if not (Nimble_device.Device.equal p.Obj.device dev) then
              err "packed %s: input %d on %a but kernel on %a (missing device_copy?)"
                packed.Exe.packed_name i Nimble_device.Device.pp p.Obj.device
                Nimble_device.Device.pp dev)
          placed_ins;
        let ts_us =
          match vm.trace with
          | Some tr ->
              Nimble_codegen.Dispatch.clear_last_selection ();
              Trace.now_us tr
          | None -> 0.0
        in
        let par_before = Nimble_parallel.Parallel.snapshot () in
        let t0 = now () in
        let results = packed.Exe.run (Array.to_list (Array.map (fun p -> p.Obj.data) placed_ins)) in
        let dt = now () -. t0 in
        let par =
          Nimble_parallel.Parallel.diff ~before:par_before
            ~after:(Nimble_parallel.Parallel.snapshot ())
        in
        (match packed.Exe.kind with
        | `Kernel ->
            prof.Profiler.kernel_seconds <- prof.Profiler.kernel_seconds +. dt;
            prof.Profiler.kernel_invocations <- prof.Profiler.kernel_invocations + 1
        | `Shape_func ->
            prof.Profiler.shape_func_invocations <-
              prof.Profiler.shape_func_invocations + 1);
        Profiler.record_kernel ~par prof packed.Exe.packed_name ~seconds:dt;
        (match vm.trace with
        | Some tr ->
            let par_args =
              if par.Nimble_parallel.Parallel.sn_par_runs > 0 then
                [
                  ("parallel", Trace.Bool true);
                  ("par_workers", Trace.Int par.Nimble_parallel.Parallel.sn_workers);
                  ("par_chunks", Trace.Int par.Nimble_parallel.Parallel.sn_chunks);
                  ("par_runs", Trace.Int par.Nimble_parallel.Parallel.sn_par_runs);
                ]
              else [ ("parallel", Trace.Bool false) ]
            in
            let cat, extra =
              match packed.Exe.kind with
              | `Kernel -> (Trace.cat_kernel, par_args @ dispatch_args ())
              | `Shape_func ->
                  ( Trace.cat_shape_func,
                    [
                      ( "mode",
                        Trace.Str (Option.value ~default:"?" packed.Exe.mode) );
                    ] )
            in
            Trace.record tr ~name:packed.Exe.packed_name ~cat ~ts_us
              ~dur_us:(dt *. 1e6)
              ([
                 ( "in_shapes",
                   Trace.Str
                     (shapes_arg
                        (Array.to_list (Array.map (fun p -> p.Obj.data) placed_ins))) );
                 ("out_shapes", Trace.Str (shapes_arg results));
                 ("upper_bound", Trace.Bool upper_bound);
               ]
              @ extra)
        | None -> ());
        if List.length results <> Array.length outs then
          err "packed %s: %d results for %d outputs" packed.Exe.packed_name
            (List.length results) (Array.length outs);
        List.iteri
          (fun i res -> regs.(outs.(i)) <- store_output ~upper_bound placed_outs.(i) res)
          results;
        incr pc
    | Isa.AllocStorage { size; alignment; dtype; device_id; arena; dst } ->
        let t0 = now () in
        Fault.check "storage_alloc";
        let shape_t = Obj.to_tensor (get size) in
        let bytes = storage_bytes shape_t dtype ~alignment in
        let device = Nimble_device.Device.of_id device_id in
        (* every allocation request is counted; pooled hits just cost less *)
        Nimble_device.Pool.record_alloc prof.Profiler.pool device ~bytes;
        let storage, pool_hit =
          if vm.pooling && depth = 0 then begin
            let key = Fmt.str "%d:%d:%d:%d" fi !pc device_id bytes in
            match Hashtbl.find_opt vm.arenas key with
            | Some cached -> (cached, true)
            | None ->
                (match vm.max_pool_bytes with
                | Some cap when vm.pool_bytes + bytes > cap ->
                    err "storage pool byte cap exceeded: %d retained + %d > %d"
                      vm.pool_bytes bytes cap
                | _ -> ());
                let fresh = Storage.create ~device ~bytes ~is_arena:arena in
                vm.pool_bytes <- vm.pool_bytes + bytes;
                Hashtbl.replace vm.arenas key fresh;
                (fresh, false)
          end
          else (Storage.create ~device ~bytes ~is_arena:arena, false)
        in
        if pool_hit then prof.Profiler.pool_hits <- prof.Profiler.pool_hits + 1;
        let dt = now () -. t0 in
        prof.Profiler.alloc_seconds <- prof.Profiler.alloc_seconds +. dt;
        (match vm.trace with
        | Some tr ->
            Trace.record tr ~name:"alloc_storage" ~cat:Trace.cat_alloc
              ~ts_us:instr_ts ~dur_us:(dt *. 1e6)
              [
                ("bytes", Trace.Int bytes);
                ("device", Trace.Int device_id);
                ("pool_hit", Trace.Bool pool_hit);
                ("arena", Trace.Bool arena);
              ]
        | None -> ());
        set_reg dst (Obj.Storage storage);
        incr pc
    | Isa.AllocTensor { storage; offset; shape; dtype; dst } ->
        let t0 = now () in
        let s = Obj.to_storage (get storage) in
        let data = Storage.alloc_tensor s ~offset ~shape ~dtype in
        let dt = now () -. t0 in
        prof.Profiler.alloc_seconds <- prof.Profiler.alloc_seconds +. dt;
        (match vm.trace with
        | Some tr ->
            Trace.record tr ~name:"alloc_tensor" ~cat:Trace.cat_alloc
              ~ts_us:instr_ts ~dur_us:(dt *. 1e6)
              [
                ("bytes", Trace.Int (Tensor.size_in_bytes data));
                ("shape", Trace.Str (Shape.to_string (Tensor.shape data)));
              ]
        | None -> ());
        set_reg dst (Obj.Tensor { Obj.data; device = s.Storage.device });
        incr pc
    | Isa.AllocTensorReg { storage; offset; shape; dtype; plan; slot; dst } ->
        let t0 = now () in
        let s = Obj.to_storage (get storage) in
        let dims = Tensor.to_shape (Obj.to_tensor (get shape)) in
        let offset =
          if plan < 0 then offset
          else
            match Hashtbl.find_opt (Lazy.force plan_offsets) plan with
            | Some offs when slot >= 0 && slot < Array.length offs -> offs.(slot)
            | Some offs ->
                err "AllocTensorReg: slot %d outside plan%d's %d slots" slot plan
                  (Array.length offs)
            | None -> err "AllocTensorReg: plan%d used before bind_arena" plan
        in
        let data = Storage.alloc_tensor s ~offset ~shape:dims ~dtype in
        let dt = now () -. t0 in
        prof.Profiler.alloc_seconds <- prof.Profiler.alloc_seconds +. dt;
        (match vm.trace with
        | Some tr ->
            Trace.record tr ~name:"alloc_tensor_reg" ~cat:Trace.cat_alloc
              ~ts_us:instr_ts ~dur_us:(dt *. 1e6)
              [
                ("bytes", Trace.Int (Tensor.size_in_bytes data));
                ("shape", Trace.Str (Shape.to_string (Tensor.shape data)));
              ]
        | None -> ());
        set_reg dst (Obj.Tensor { Obj.data; device = s.Storage.device });
        incr pc
    | Isa.AllocADT { tag; fields; dst } ->
        set_reg dst (Obj.Adt { tag; fields = Array.map get fields });
        incr pc
    | Isa.AllocClosure { func_index; captured; dst } ->
        set_reg dst (Obj.Closure { func_index; captured = Array.map get captured });
        incr pc
    | Isa.GetField { obj; index; dst } ->
        let _, fields = Obj.to_adt (get obj) in
        if index < 0 || index >= Array.length fields then
          err "GetField: index %d out of bounds" index;
        regs.(dst) <- fields.(index);
        incr pc
    | Isa.GetTag { obj; dst } ->
        let tag, _ = Obj.to_adt (get obj) in
        regs.(dst) <- Obj.int tag;
        incr pc
    | Isa.If { test; target; true_offset; false_offset } ->
        if Obj.scalar_value (get test) = Obj.scalar_value (get target) then
          pc := !pc + true_offset
        else pc := !pc + false_offset
    | Isa.Goto off -> pc := !pc + off
    | Isa.LoadConst { index; dst } ->
        if index < 0 || index >= Array.length vm.exe.Exe.constants then
          err "LoadConst: bad constant index %d" index;
        (* constants stay in the pool; loading shares, no copy (paper §5.2) *)
        regs.(dst) <- Obj.tensor vm.exe.Exe.constants.(index);
        incr pc
    | Isa.LoadConsti { value; dst } ->
        set_reg dst (Obj.Int value);
        incr pc
    | Isa.DeviceCopy { src; dst_device_id; dst } ->
        let p = Obj.to_placed (get src) in
        let device = Nimble_device.Device.of_id dst_device_id in
        let data = Tensor.copy p.Obj.data in
        Nimble_device.Pool.record_transfer prof.Profiler.pool ~dst:device
          ~bytes:(Tensor.size_in_bytes data);
        (match vm.trace with
        | Some tr ->
            Trace.record tr ~name:"device_copy" ~cat:Trace.cat_device_copy
              ~ts_us:instr_ts
              ~dur_us:(Trace.now_us tr -. instr_ts)
              [
                ("bytes", Trace.Int (Tensor.size_in_bytes data));
                ("src_device", Trace.Int p.Obj.device.Nimble_device.Device.id);
                ("dst_device", Trace.Int dst_device_id);
              ]
        | None -> ());
        set_reg dst (Obj.Tensor { Obj.data; device });
        incr pc
    | Isa.ShapeOf { tensor; dst } ->
        let p = Obj.to_placed (get tensor) in
        (* shape metadata is host-accessible regardless of placement *)
        set_reg dst (Obj.tensor (Tensor.shape_tensor p.Obj.data));
        incr pc
    | Isa.ReshapeTensor { tensor; shape; dst } ->
        let p = Obj.to_placed (get tensor) in
        let dims = Tensor.to_shape (Obj.to_tensor (get shape)) in
        set_reg dst (Obj.Tensor { Obj.data = Tensor.reshape p.Obj.data dims; device = p.Obj.device });
        incr pc
    | Isa.Fatal msg -> err "fatal: %s" msg
    | Isa.BindArena { plan_index; dst } ->
        let t0 = now () in
        if plan_index < 0 || plan_index >= Array.length vm.exe.Exe.plans then
          err "BindArena: bad plan index %d" plan_index;
        let p = vm.exe.Exe.plans.(plan_index) in
        let shape_of_arg i =
          if i < 0 || i >= Array.length args then None
          else
            match args.(i) with
            | Obj.Tensor pl -> Some (Tensor.shape pl.Obj.data)
            | _ -> None
        in
        let lookup =
          match bind_plan_dims p shape_of_arg with
          | Ok f -> f
          | Error msg -> err "%s" msg
        in
        let bytes = Nimble_shape.Sym_expr.eval lookup p.Exe.p_total in
        if bytes < 0 then err "BindArena: negative arena size %d" bytes;
        let offsets =
          Array.map
            (fun (s : Exe.slot) -> Nimble_shape.Sym_expr.eval lookup s.Exe.s_offset)
            p.Exe.p_slots
        in
        Hashtbl.replace (Lazy.force plan_offsets) plan_index offsets;
        let device = Nimble_device.Device.of_id p.Exe.p_device in
        let persistent = vm.pooling && depth = 0 in
        let storage, reused =
          acquire_plan_arena vm ~persistent ~plan_index ~device ~bytes
        in
        if reused then
          prof.Profiler.arena_rebinds <- prof.Profiler.arena_rebinds + 1;
        let dt = now () -. t0 in
        prof.Profiler.alloc_seconds <- prof.Profiler.alloc_seconds +. dt;
        (match vm.trace with
        | Some tr ->
            Trace.record tr ~name:"bind_arena" ~cat:Trace.cat_alloc
              ~ts_us:instr_ts ~dur_us:(dt *. 1e6)
              [
                ("bytes", Trace.Int bytes);
                ("device", Trace.Int p.Exe.p_device);
                ("reused", Trace.Bool reused);
                ("plan", Trace.Int plan_index);
              ]
        | None -> ());
        set_reg dst (Obj.Storage storage);
        incr pc
     with
     | (Vm_failure _ | Preempted) as e -> raise e
     | Fault.Injected { point; mode } ->
         fail_here
           ~transient:(mode = Fault.Transient)
           (instr_kind ())
           (Fmt.str "injected fault at %s" point)
     | Nimble_shape.Shape_func.Shape_func_error msg ->
         fail_here Shape_func msg
     | Vm_error msg -> fail_here (instr_kind ()) msg
     | Obj.Object_error msg -> fail_here Internal msg
     | (Stack_overflow | Out_of_memory) as e ->
         (* resource exhaustion stays fatal *)
         raise e
     | e -> fail_here (instr_kind ()) (Printexc.to_string e));
    (match vm.trace with
    | Some tr ->
        Trace.record tr
          ~name:(Isa.opcode_name (Isa.opcode instr))
          ~cat:Trace.cat_instr ~ts_us:instr_ts
          ~dur_us:(Trace.now_us tr -. instr_ts)
          []
    | None -> ())
  done;
  Option.get !result

(* With pooling, result tensors may alias pooled buffers that the next
   invocation will overwrite; copy them out at the API boundary. *)
let rec escape_pool (o : Obj.t) : Obj.t =
  match o with
  | Obj.Tensor p -> Obj.Tensor { p with Obj.data = Tensor.copy p.Obj.data }
  | Obj.Adt { tag; fields } -> Obj.Adt { tag; fields = Array.map escape_pool fields }
  | Obj.Storage _ | Obj.Closure _ | Obj.Int _ -> o

(** Invoke a VM function by name, surfacing failures as typed values:
    [Error failure] instead of an exception. Anything that escapes the
    dispatch loop (including pre-loop arity / recursion errors) is
    classified; [Preempted] and caller API misuse (unknown function name)
    still raise. Records a [vm.fail] trace span on the error path. *)
let invoke_result ?(func = "main") ?ctx vm (args : Obj.t list) :
    (Obj.t, failure) result =
  let fi = Exe.func_index vm.exe func in
  let ts_us = match vm.trace with Some tr -> Trace.now_us tr | None -> 0.0 in
  let t0 = now () in
  let finish_failure fl =
    let dt = now () -. t0 in
    vm.profiler.Profiler.total_seconds <-
      vm.profiler.Profiler.total_seconds +. dt;
    (match vm.trace with
    | Some tr ->
        Trace.record tr ~name:"vm.fail" ~cat:Trace.cat_invoke ~ts_us
          ~dur_us:(dt *. 1e6)
          [
            ("kind", Trace.Str (kind_name fl.fail_kind));
            ("func", Trace.Str fl.fail_func);
            ("pc", Trace.Int fl.fail_pc);
            ("instr", Trace.Str fl.fail_instr);
            ("transient", Trace.Bool fl.fail_transient);
            ("msg", Trace.Str fl.fail_msg);
          ]
    | None -> ());
    Error fl
  in
  match exec_func vm ?ctx ~depth:0 fi (Array.of_list args) with
  | result ->
      let result = if vm.pooling then escape_pool result else result in
      let dt = now () -. t0 in
      vm.profiler.Profiler.total_seconds <-
        vm.profiler.Profiler.total_seconds +. dt;
      (match vm.trace with
      | Some tr ->
          Trace.record tr ~name:("invoke:" ^ func) ~cat:Trace.cat_invoke ~ts_us
            ~dur_us:(dt *. 1e6) []
      | None -> ());
      Ok result
  | exception Vm_failure fl -> finish_failure fl
  | exception Vm_error msg ->
      (* pre-loop entry errors: bad arity, recursion limit at depth 0 *)
      finish_failure (internal_failure ~func msg)

(** Invoke a VM function by name.
    @raise Vm_error on any execution failure (the [fail_msg] of the
    underlying typed failure, verbatim); use {!invoke_result} for the
    structured channel. *)
let invoke ?func ?ctx vm (args : Obj.t list) : Obj.t =
  match invoke_result ?func ?ctx vm args with
  | Ok result -> result
  | Error fl -> raise (Vm_error fl.fail_msg)

(** Convenience: tensor inputs, tensor output, typed failures. *)
let run_tensors_result ?func ?ctx vm inputs :
    (Tensor.t, failure) result =
  let args = List.map (fun t -> Obj.tensor t) inputs in
  match invoke_result ?func ?ctx vm args with
  | Ok o -> Ok (Obj.to_tensor o)
  | Error fl -> Error fl

(** Convenience: tensor inputs, tensor output. @raise Vm_error on failure. *)
let run_tensors ?func ?ctx vm inputs =
  let args = List.map (fun t -> Obj.tensor t) inputs in
  Obj.to_tensor (invoke ?func ?ctx vm args)

(** Pre-bind the persistent arenas of [func]'s symbolic plans against the
    shapes [shape_of_arg] yields (e.g. a serve bucket's upper bound), so
    subsequent invocations whose bound dims fit rebind instead of
    allocating. Plans whose binders the shapes cannot satisfy are skipped,
    and warming failures (byte-cap, injected faults) are swallowed — the
    actual [BindArena] will surface them through the typed channel.
    Returns the number of arenas bound. No-op (0) when pooling is off. *)
let warm_arenas ?(func = "main") vm (shape_of_arg : int -> int array option) :
    int =
  if not vm.pooling then 0
  else begin
    let fi = Exe.func_index vm.exe func in
    let bound = ref 0 in
    Array.iteri
      (fun plan_index (p : Exe.plan) ->
        if p.Exe.p_func = fi then
          match bind_plan_dims p shape_of_arg with
          | Error _ -> ()
          | Ok lookup -> (
              try
                let bytes = Nimble_shape.Sym_expr.eval lookup p.Exe.p_total in
                if bytes >= 0 then begin
                  let device = Nimble_device.Device.of_id p.Exe.p_device in
                  let (_ : Storage.t * bool) =
                    acquire_plan_arena vm ~persistent:true ~plan_index ~device
                      ~bytes
                  in
                  incr bound
                end
              with Vm_error _ | Fault.Injected _ -> ()))
      vm.exe.Exe.plans;
    !bound
  end

let profiler vm = vm.profiler
