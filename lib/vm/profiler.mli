(** VM execution profiler.

    Separates kernel-invocation time from everything else (the breakdown
    of the paper's Table 4 — kernels vs the VM's dynamism-handling
    overhead), counts instructions per opcode, times allocation
    instructions (the §6.3 memory-planning latency study), and owns the
    per-device memory-pool accounting.

    The interpreter increments the mutable counters directly from its
    dispatch loop; they are exposed here so harnesses (e.g.
    [bench/nimble_runner.ml]) can snapshot deltas around an invocation.
    {!report} freezes everything into a typed record and
    {!report_to_json} renders the machine-readable [nimble-profile/v1]
    document consumed by [nimble_cli], the bench harness, and future
    [BENCH_*.json] trajectories (schema: [docs/OBSERVABILITY.md]). *)

type t = {
  instr_counts : int array;  (** executed-instruction count per opcode *)
  mutable kernel_seconds : float;  (** wall time inside packed kernels *)
  mutable alloc_seconds : float;  (** wall time inside Alloc* instructions *)
  mutable total_seconds : float;  (** wall time of whole invocations *)
  mutable kernel_invocations : int;
  mutable shape_func_invocations : int;
  mutable pool_hits : int;
      (** storage requests served by the interpreter's cross-invocation
          storage pool instead of a fresh allocation *)
  mutable arena_rebinds : int;
      (** [BindArena] executions that rebound a persistent symbolic-plan
          arena instead of allocating one — the serve-time arena-reuse
          counter (see [docs/MEMORY.md]) *)
  per_kernel : (string, kernel_stat) Hashtbl.t;
      (** cumulative time and call count per packed function *)
  pool : Nimble_device.Pool.t;
}

and kernel_stat = {
  mutable calls : int;
  mutable seconds : float;
  mutable par_runs : int;
      (** domain-pool fan-outs executed inside this kernel's calls *)
  mutable seq_runs : int;
      (** [parallel_for] calls that stayed sequential (grain-gated) *)
  mutable par_chunks : int;  (** chunks executed across those fan-outs *)
  mutable par_workers : int;
      (** participating domains, summed over fan-outs (so
          [par_workers / par_runs] is the mean worker utilization) *)
}

(** A fresh profiler with all counters at zero and an empty pool. *)
val create : unit -> t

(** Zero every counter and reset the pool accounting. *)
val reset : t -> unit

(** Add one timed call to [name]'s per-kernel statistics.
    @param par the {!Nimble_parallel.Parallel} counter delta observed
    around the call, accumulated into the kernel's worker-utilization
    counters. *)
val record_kernel :
  ?par:Nimble_parallel.Parallel.snapshot -> t -> string -> seconds:float -> unit

(** The [k] (default 10) packed functions with the largest cumulative
    time, hottest first. *)
val top_kernels : ?k:int -> t -> (string * kernel_stat) list

(** Count one executed instruction under its opcode. *)
val count : t -> Isa.t -> unit

(** Total instructions executed, across all opcodes. *)
val total_instrs : t -> int

(** Time spent outside kernels: the VM's dynamism-handling overhead
    (Table 4's "others" column). *)
val other_seconds : t -> float

(** Total allocation requests across devices (pool hits included — a
    pooled request still asks for memory; it just costs less). *)
val allocs : t -> int

(** Total cross-device transfers recorded by [DeviceCopy]. *)
val transfers : t -> int

(** Human-readable dump: totals, per-opcode counts, top-5 kernels. *)
val pp : Format.formatter -> t -> unit

(** {2 Typed report} *)

(** One packed function's aggregate in the report, including its
    domain-pool utilization counters. *)
type kernel_row = {
  kr_name : string;
  kr_calls : int;
  kr_seconds : float;
  kr_par_runs : int;
  kr_seq_runs : int;
  kr_par_chunks : int;
  kr_par_workers : int;
}

(** Process-wide domain-pool statistics embedded in the report. *)
type parallel_stats = {
  pr_num_domains : int;  (** configured pool width (caller included) *)
  pr_seq_runs : int;  (** [parallel_for] calls that ran sequentially *)
  pr_par_runs : int;  (** calls that fanned out *)
  pr_chunks : int;  (** chunks executed across parallel runs *)
  pr_workers : int;  (** participating domains, summed per run *)
}

(** One device's pool accounting in the report. *)
type device_row = {
  dr_device : int;
  dr_allocs : int;
  dr_frees : int;
  dr_bytes_allocated : int;
  dr_live_bytes : int;
  dr_peak_bytes : int;  (** pool high-water mark *)
  dr_transfers_in : int;
  dr_transfer_bytes_in : int;
}

(** Frozen snapshot of the profiler — the [nimble-profile/v1] schema,
    field for field. *)
type report = {
  r_total_seconds : float;
  r_kernel_seconds : float;
  r_other_seconds : float;
  r_alloc_seconds : float;
  r_kernel_invocations : int;
  r_shape_func_invocations : int;
  r_total_instructions : int;
  r_pool_hits : int;
  r_arena_rebinds : int;  (** persistent symbolic-plan arena reuses *)
  r_instructions : (string * int) list;  (** opcode name -> count, nonzero *)
  r_kernels : kernel_row list;  (** every packed function, hottest first *)
  r_devices : device_row list;  (** per-device pool accounting, by id *)
  r_dispatch : Nimble_codegen.Dispatch.snapshot list;
      (** residue-dispatch table statistics *)
  r_parallel : parallel_stats;
      (** domain-pool width and cumulative worker utilization *)
}

(** Snapshot the profiler into a typed report.
    @param dispatch dispatch-table rows to embed; defaults to
    {!Nimble_codegen.Dispatch.snapshots}[ ()] (every dispatcher the
    process created — pass an explicit list to narrow the scope). *)
val report : ?dispatch:Nimble_codegen.Dispatch.snapshot list -> t -> report

(** The [autotune] member of the profile document, rendered from an
    online-specialization summary (see [docs/TUNING.md]). *)
val json_of_autotune : Nimble_codegen.Autotune.summary -> Json.t

(** Render a report as the [nimble-profile/v1] JSON document. When fault
    injection is configured ([Nimble_fault.Fault.enabled]), a [faults]
    member carries the active spec and per-point attempt/hit counters;
    without a spec the document is unchanged from earlier builds.
    @param server a serving-engine statistics object
    ([Nimble_serve.Stats.summary_to_json]) embedded as the document's
    [server] member; absent for non-serving runs
    (schema: [docs/OBSERVABILITY.md])
    @param autotune an online-specialization summary embedded as the
    document's [autotune] member; absent when autotuning is off
    @param fleet a multi-model fleet statistics object
    ([Nimble_serve.Fleet.fleet_json]: per-model server sections and
    breaker counters) embedded as the document's [fleet] member; absent
    outside the fleet tier. *)
val report_to_json :
  ?server:Json.t -> ?fleet:Json.t ->
  ?autotune:Nimble_codegen.Autotune.summary -> report -> Json.t

(** {!report} and {!report_to_json} composed: one-call JSON snapshot. *)
val to_json :
  ?dispatch:Nimble_codegen.Dispatch.snapshot list ->
  ?server:Json.t ->
  ?fleet:Json.t ->
  ?autotune:Nimble_codegen.Autotune.summary ->
  t ->
  Json.t
