(** The VM interpreter (paper §5.2): a dispatch loop over the 21-instruction
    ISA with tagged objects, storage pooling, symbolic-plan arenas,
    profiling, and QoS hooks. *)

exception Vm_error of string

(** What went wrong, at the granularity the serving layer routes on:
    [Shape_guard] — a gradual-typing entry guard rejected an input
    (paper §4.1); [Alloc] — storage allocation failed or exceeded the
    pool byte cap; [Kernel_trap] — a kernel invocation trapped;
    [Shape_func] — a shape function failed; [Internal] — anything else
    (bad operands, recursion overflow, malformed bytecode). *)
type failure_kind = Shape_guard | Alloc | Kernel_trap | Shape_func | Internal

(** A typed execution failure: what happened, where (function, program
    counter, instruction), and whether a retry may succeed. Entry-level
    failures (guards, arity) carry [fail_pc = -1]. *)
type failure = {
  fail_kind : failure_kind;
  fail_func : string;  (** VM function that was executing *)
  fail_pc : int;  (** program counter, [-1] for entry (guards, arity) *)
  fail_instr : string;  (** faulting instruction summary, [""] at entry *)
  fail_msg : string;
  fail_transient : bool;
      (** the fault was injected in transient mode: a retry may succeed *)
}

(** Stable lower-case name of a {!failure_kind} (["shape_guard"],
    ["alloc"], ...), used in trace spans and stats JSON. *)
val kind_name : failure_kind -> string

(** One-line human rendering of a {!failure}. *)
val pp_failure : Format.formatter -> failure -> unit

(** A synthetic [Internal] failure at entry of [func] — for layers above
    the VM (the serving engine's worker supervisor) that must convert a
    non-VM exception into the typed channel. *)
val internal_failure : func:string -> string -> failure

type t

(** Raised out of {!set_instruction_hook} callbacks to abort the current
    inference (the paper's §5.3 QoS scenario). *)
exception Preempted

(** [create exe] builds an interpreter over a fully linked executable.

    @param max_depth recursion guard for [Invoke] (default 100k frames).
    @param pooling reuse already-allocated storage chunks across top-level
    invocations — the runtime half of memory planning (default true).
    Result tensors are copied out of the pool at the API boundary.
    @param guards run the compiler-emitted gradual-typing entry guards on
    depth-0 invocations (default true; see [docs/ROBUSTNESS.md]).
    @param max_pool_bytes cap on storage bytes retained in the pool across
    invocations; an allocation that would exceed it fails with an [Alloc]
    {!failure} instead of growing the pool (default: unlimited).
    @raise Vm_error if the executable has unlinked packed functions. *)
val create :
  ?max_depth:int -> ?pooling:bool -> ?guards:bool -> ?max_pool_bytes:int ->
  Exe.t -> t

(** Install (or clear, with [None]) the QoS preemption hook (paper §5.3).

    Contract: the hook is called synchronously from the dispatch loop
    {e before} every instruction executes, with the instruction about to
    run. Returning normally lets execution continue; raising {!Preempted}
    (or any exception) aborts the inference — the exception propagates out
    of {!invoke} and no further instructions run. Because the VM blocks in
    the hook, a scheduler may also {e pause} the inference by simply not
    returning until the resource is free. The hook must not re-enter this
    interpreter instance. Hook time is attributed to the VM's "other"
    (non-kernel) time by the profiler.

    QoS example — abort a long batch job after 10 ms so a latency-critical
    request can take over, then restart it later:
    {[
      let deadline = Unix.gettimeofday () +. 0.010 in
      Interp.set_instruction_hook vm
        (Some (fun _instr ->
           if Unix.gettimeofday () > deadline then raise Interp.Preempted));
      match Interp.invoke vm args with
      | result -> result
      | exception Interp.Preempted -> (* re-enqueue at lower priority *) ...
    ]} *)
val set_instruction_hook : t -> (Isa.t -> unit) option -> unit

(** Install (or clear, with [None]) a structured event recorder: with a
    trace installed, the dispatch loop emits one span per instruction plus
    detailed spans for kernels (resolved shapes, residue-dispatch
    selection), shape functions (tagged by mode), allocations (bytes,
    pool hits) and device copies. Tracing is off by default and costs
    nothing when off; see {!Trace} and [docs/OBSERVABILITY.md]. *)
val set_trace : t -> Trace.t option -> unit

(** The currently installed event recorder, if any. *)
val trace : t -> Trace.t option

(** A reusable execution context: caches the top-level register frame per
    entry function so repeated invocations of the same function allocate
    nothing for the frame (the serving engine's steady-state path; the
    bench loops use one too). Behavior is identical to context-free
    invocation — the cached frame is refilled with unit values before
    every run — and only the depth-0 frame is reused; recursive frames
    stay fresh. A context indexes frames by function index, so use each
    context against a single interpreter (one per VM worker). Contexts
    are not thread-safe: one domain at a time. *)
type ctx

(** A fresh, empty execution context. *)
val context : unit -> ctx

(** Invocations that reused a cached frame instead of allocating one. *)
val frame_reuses : ctx -> int

(** Invoke a VM function (default ["main"]) with the given arguments,
    surfacing execution failures as typed [Error] values. Guard
    rejections, allocation failures, kernel traps, shape-function errors
    and internal faults all land in the {!failure}; {!Preempted} (the QoS
    abort) and API misuse (unknown function name: [Invalid_argument])
    still raise. Records a [vm.fail] trace span on the error path.
    @param ctx reuse this execution context's cached register frame
    (see {!ctx}). *)
val invoke_result :
  ?func:string -> ?ctx:ctx -> t -> Obj.t list -> (Obj.t, failure) result

(** Invoke a VM function (default ["main"]) with the given arguments.
    @param ctx reuse this execution context's cached register frame
    (see {!ctx}).
    @raise Vm_error on any runtime fault (bad operands, device mismatch,
    shape-check failure, recursion overflow) — the [fail_msg] of the
    underlying typed failure, verbatim. *)
val invoke : ?func:string -> ?ctx:ctx -> t -> Obj.t list -> Obj.t

(** {!invoke_result} for tensor inputs and a tensor output. *)
val run_tensors_result :
  ?func:string -> ?ctx:ctx -> t -> Nimble_tensor.Tensor.t list ->
  (Nimble_tensor.Tensor.t, failure) result

(** Convenience wrapper: tensor inputs, tensor output. *)
val run_tensors :
  ?func:string -> ?ctx:ctx -> t -> Nimble_tensor.Tensor.t list -> Nimble_tensor.Tensor.t

(** Pre-bind the persistent arenas of [func]'s symbolic memory plans
    (default ["main"]) against the shapes [shape_of_arg] yields per
    argument position — typically a serve bucket's upper-bound shapes —
    so subsequent invocations whose bound dims fit the warmed arenas
    rebind them instead of allocating (counted by the profiler's
    [arena_rebinds]). Plans whose binders the shapes cannot satisfy are
    skipped; warming failures (pool byte cap, injected faults) are
    swallowed — the invocation's own [BindArena] will surface them through
    the typed failure channel. Returns the number of arenas bound; [0]
    without pooling. See [docs/MEMORY.md]. *)
val warm_arenas : ?func:string -> t -> (int -> int array option) -> int

(** The interpreter's profiler: instruction counts, kernel vs other time,
    allocation time, per-kernel statistics, memory-pool accounting. *)
val profiler : t -> Profiler.t
