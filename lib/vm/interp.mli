(** The VM interpreter (paper §5.2): a dispatch loop over the 20-instruction
    ISA with tagged objects, storage pooling, profiling, and QoS hooks. *)

exception Vm_error of string

type t

(** Raised out of {!set_instruction_hook} callbacks to abort the current
    inference (the paper's §5.3 QoS scenario). *)
exception Preempted

(** [create exe] builds an interpreter over a fully linked executable.

    @param max_depth recursion guard for [Invoke] (default 100k frames).
    @param pooling reuse already-allocated storage chunks across top-level
    invocations — the runtime half of memory planning (default true).
    Result tensors are copied out of the pool at the API boundary.
    @raise Vm_error if the executable has unlinked packed functions. *)
val create : ?max_depth:int -> ?pooling:bool -> Exe.t -> t

(** Install (or clear, with [None]) the QoS preemption hook (paper §5.3).

    Contract: the hook is called synchronously from the dispatch loop
    {e before} every instruction executes, with the instruction about to
    run. Returning normally lets execution continue; raising {!Preempted}
    (or any exception) aborts the inference — the exception propagates out
    of {!invoke} and no further instructions run. Because the VM blocks in
    the hook, a scheduler may also {e pause} the inference by simply not
    returning until the resource is free. The hook must not re-enter this
    interpreter instance. Hook time is attributed to the VM's "other"
    (non-kernel) time by the profiler.

    QoS example — abort a long batch job after 10 ms so a latency-critical
    request can take over, then restart it later:
    {[
      let deadline = Unix.gettimeofday () +. 0.010 in
      Interp.set_instruction_hook vm
        (Some (fun _instr ->
           if Unix.gettimeofday () > deadline then raise Interp.Preempted));
      match Interp.invoke vm args with
      | result -> result
      | exception Interp.Preempted -> (* re-enqueue at lower priority *) ...
    ]} *)
val set_instruction_hook : t -> (Isa.t -> unit) option -> unit

(** Install (or clear, with [None]) a structured event recorder: with a
    trace installed, the dispatch loop emits one span per instruction plus
    detailed spans for kernels (resolved shapes, residue-dispatch
    selection), shape functions (tagged by mode), allocations (bytes,
    pool hits) and device copies. Tracing is off by default and costs
    nothing when off; see {!Trace} and [docs/OBSERVABILITY.md]. *)
val set_trace : t -> Trace.t option -> unit

(** The currently installed event recorder, if any. *)
val trace : t -> Trace.t option

(** A reusable execution context: caches the top-level register frame per
    entry function so repeated invocations of the same function allocate
    nothing for the frame (the serving engine's steady-state path; the
    bench loops use one too). Behavior is identical to context-free
    invocation — the cached frame is refilled with unit values before
    every run — and only the depth-0 frame is reused; recursive frames
    stay fresh. A context indexes frames by function index, so use each
    context against a single interpreter (one per VM worker). Contexts
    are not thread-safe: one domain at a time. *)
type ctx

(** A fresh, empty execution context. *)
val context : unit -> ctx

(** Invocations that reused a cached frame instead of allocating one. *)
val frame_reuses : ctx -> int

(** Invoke a VM function (default ["main"]) with the given arguments.
    @param ctx reuse this execution context's cached register frame
    (see {!ctx}).
    @raise Vm_error on any runtime fault (bad operands, device mismatch,
    shape-check failure, recursion overflow). *)
val invoke : ?func:string -> ?ctx:ctx -> t -> Obj.t list -> Obj.t

(** Convenience wrapper: tensor inputs, tensor output. *)
val run_tensors :
  ?func:string -> ?ctx:ctx -> t -> Nimble_tensor.Tensor.t list -> Nimble_tensor.Tensor.t

(** The interpreter's profiler: instruction counts, kernel vs other time,
    allocation time, per-kernel statistics, memory-pool accounting. *)
val profiler : t -> Profiler.t
