(** The Nimble VM instruction set — the 20 CISC-style instructions of the
    paper's Table A.1 plus [BindArena], the symbolic-memory-plan binder
    (see [docs/MEMORY.md]). Registers are frame-local indices into an
    unbounded virtual register file. *)

open Nimble_tensor

type reg = int

type t =
  | Move of { src : reg; dst : reg }
      (** moves data from one register to another *)
  | Ret of { result : reg }  (** returns to the caller's register *)
  | Invoke of { func_index : int; args : reg array; dst : reg }
      (** invokes a global VM function *)
  | InvokeClosure of { closure : reg; args : reg array; dst : reg }
      (** invokes a closure *)
  | InvokePacked of {
      packed_index : int;
      args : reg array;  (** input tensors *)
      outs : reg array;  (** pre-allocated output tensors (in-out) *)
      upper_bound : bool;
          (** outputs were allocated from an upper-bound shape function; the
              kernel reports the exact extent and the result is sliced *)
    }  (** invokes an optimized operator kernel (or a shape function) *)
  | AllocStorage of {
      size : reg;
      alignment : int;
      dtype : Dtype.t;
      device_id : int;
      arena : bool;  (** coalesced region from the memory planner *)
      dst : reg;
    }
      (** allocates a storage block on a specified device; [size] holds a
          shape tensor (i64) whose element count times dtype width gives
          the byte size *)
  | AllocTensor of { storage : reg; offset : int; shape : int array; dtype : Dtype.t; dst : reg }
      (** allocates a tensor with a static shape from a storage *)
  | AllocTensorReg of {
      storage : reg;
      offset : int;
      shape : reg;
      dtype : Dtype.t;
      plan : int;  (** symbolic plan index, [-1] when unplanned *)
      slot : int;
          (** arena slot whose bound offset overrides [offset]; [-1] when
              unplanned *)
      dst : reg;
    }  (** allocates a tensor given the shape in a register *)
  | AllocADT of { tag : int; fields : reg array; dst : reg }
      (** allocates a data type (tuples use tag 0) *)
  | AllocClosure of { func_index : int; captured : reg array; dst : reg }
      (** allocates a closure over a lowered VM function *)
  | GetField of { obj : reg; index : int; dst : reg }
  | GetTag of { obj : reg; dst : reg }
  | If of { test : reg; target : reg; true_offset : int; false_offset : int }
      (** jumps by [true_offset] when the scalars in [test] and [target]
          are equal, else by [false_offset] *)
  | Goto of int  (** unconditional relative jump *)
  | LoadConst of { index : int; dst : reg }
      (** loads from the constant pool *)
  | LoadConsti of { value : int64; dst : reg }  (** loads an immediate *)
  | DeviceCopy of { src : reg; dst_device_id : int; dst : reg }
  | ShapeOf of { tensor : reg; dst : reg }
  | ReshapeTensor of { tensor : reg; shape : reg; dst : reg }
  | Fatal of string
  | BindArena of { plan_index : int; dst : reg }
      (** evaluates symbolic plan [plan_index] against the dims bound from
          the current frame's arguments and produces the arena storage
          (reusing a persistent arena when pooling); tensor slots are
          suballocated by [AllocTensorReg] with [plan]/[slot] set *)

let opcode = function
  | Move _ -> 0
  | Ret _ -> 1
  | Invoke _ -> 2
  | InvokeClosure _ -> 3
  | InvokePacked _ -> 4
  | AllocStorage _ -> 5
  | AllocTensor _ -> 6
  | AllocTensorReg _ -> 7
  | AllocADT _ -> 8
  | AllocClosure _ -> 9
  | GetField _ -> 10
  | GetTag _ -> 11
  | If _ -> 12
  | Goto _ -> 13
  | LoadConst _ -> 14
  | LoadConsti _ -> 15
  | DeviceCopy _ -> 16
  | ShapeOf _ -> 17
  | ReshapeTensor _ -> 18
  | Fatal _ -> 19
  | BindArena _ -> 20

let num_opcodes = 21

let opcode_name = function
  | 0 -> "Move"
  | 1 -> "Ret"
  | 2 -> "Invoke"
  | 3 -> "InvokeClosure"
  | 4 -> "InvokePacked"
  | 5 -> "AllocStorage"
  | 6 -> "AllocTensor"
  | 7 -> "AllocTensorReg"
  | 8 -> "AllocADT"
  | 9 -> "AllocClosure"
  | 10 -> "GetField"
  | 11 -> "GetTag"
  | 12 -> "If"
  | 13 -> "Goto"
  | 14 -> "LoadConst"
  | 15 -> "LoadConsti"
  | 16 -> "DeviceCopy"
  | 17 -> "ShapeOf"
  | 18 -> "ReshapeTensor"
  | 19 -> "Fatal"
  | 20 -> "BindArena"
  | n -> Fmt.str "op%d" n

let pp_regs ppf rs = Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any " ") int) rs

let pp ppf = function
  | Move { src; dst } -> Fmt.pf ppf "move $%d -> $%d" src dst
  | Ret { result } -> Fmt.pf ppf "ret $%d" result
  | Invoke { func_index; args; dst } ->
      Fmt.pf ppf "invoke fn%d %a -> $%d" func_index pp_regs args dst
  | InvokeClosure { closure; args; dst } ->
      Fmt.pf ppf "invoke_closure $%d %a -> $%d" closure pp_regs args dst
  | InvokePacked { packed_index; args; outs; upper_bound } ->
      Fmt.pf ppf "invoke_packed packed%d %a -> %a%s" packed_index pp_regs args pp_regs
        outs
        (if upper_bound then " (upper_bound)" else "")
  | AllocStorage { size; alignment; dtype; device_id; arena; dst } ->
      Fmt.pf ppf "alloc_storage $%d align=%d %a dev=%d%s -> $%d" size alignment
        Dtype.pp dtype device_id
        (if arena then " (arena)" else "")
        dst
  | AllocTensor { storage; offset; shape; dtype; dst } ->
      Fmt.pf ppf "alloc_tensor $%d+%d %a %a -> $%d" storage offset Shape.pp shape
        Dtype.pp dtype dst
  | AllocTensorReg { storage; offset; shape; dtype; plan; slot; dst } ->
      if plan >= 0 then
        Fmt.pf ppf "alloc_tensor_reg $%d@@plan%d.%d shape=$%d %a -> $%d" storage plan
          slot shape Dtype.pp dtype dst
      else
        Fmt.pf ppf "alloc_tensor_reg $%d+%d shape=$%d %a -> $%d" storage offset shape
          Dtype.pp dtype dst
  | AllocADT { tag; fields; dst } ->
      Fmt.pf ppf "alloc_adt tag=%d %a -> $%d" tag pp_regs fields dst
  | AllocClosure { func_index; captured; dst } ->
      Fmt.pf ppf "alloc_closure fn%d %a -> $%d" func_index pp_regs captured dst
  | GetField { obj; index; dst } -> Fmt.pf ppf "get_field $%d.%d -> $%d" obj index dst
  | GetTag { obj; dst } -> Fmt.pf ppf "get_tag $%d -> $%d" obj dst
  | If { test; target; true_offset; false_offset } ->
      Fmt.pf ppf "if $%d==$%d +%d else +%d" test target true_offset false_offset
  | Goto off -> Fmt.pf ppf "goto +%d" off
  | LoadConst { index; dst } -> Fmt.pf ppf "load_const #%d -> $%d" index dst
  | LoadConsti { value; dst } -> Fmt.pf ppf "load_consti %Ld -> $%d" value dst
  | DeviceCopy { src; dst_device_id; dst } ->
      Fmt.pf ppf "device_copy $%d -> dev%d $%d" src dst_device_id dst
  | ShapeOf { tensor; dst } -> Fmt.pf ppf "shape_of $%d -> $%d" tensor dst
  | ReshapeTensor { tensor; shape; dst } ->
      Fmt.pf ppf "reshape_tensor $%d shape=$%d -> $%d" tensor shape dst
  | Fatal msg -> Fmt.pf ppf "fatal %S" msg
  | BindArena { plan_index; dst } -> Fmt.pf ppf "bind_arena plan%d -> $%d" plan_index dst
