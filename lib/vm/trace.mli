(** Structured VM event recorder (the runtime half of the observability
    layer; [docs/OBSERVABILITY.md] is the full surface spec).

    A bounded ring buffer of timed spans fed by the interpreter when a
    trace is installed with {!Interp.set_trace}:

    - [instr] — one span per executed VM instruction, named by opcode;
    - [kernel] — one span per packed kernel invocation, carrying the
      resolved runtime shapes, which residue-dispatch specialization
      fired (args [residue], [dispatch]), and the domain-pool fan-out
      (arg [parallel], plus [par_workers]/[par_chunks]/[par_runs] when
      the kernel went parallel);
    - [shape_func] — shape-function invocations tagged by mode
      (data-independent / data-dependent / upper-bound);
    - [alloc] — storage and tensor allocations, with bytes, device and
      whether the storage pool served the request ([pool_hit]);
    - [device_copy] — cross-device transfers with byte counts.

    Exports Chrome [trace_event] JSON loadable in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. When the buffer fills, the
    oldest spans are overwritten; the export reports the drop count. *)

(** Span argument values, rendered into the Chrome event's [args] object. *)
type arg = Str of string | Int of int | Float of float | Bool of bool

type span = {
  name : string;  (** event name, e.g. the opcode or packed-function name *)
  cat : string;  (** one of the [cat_*] constants below *)
  ts_us : float;  (** start, µs since the trace was created *)
  dur_us : float;  (** duration in µs (0 for effectively-instant events) *)
  args : (string * arg) list;
}

(** Per-instruction spans, named by opcode. *)
val cat_instr : string

(** Top-level VM invocations ([invoke:<func>] root spans), plus one
    [vm.fail] span per typed execution failure (args [kind], [func],
    [pc], [instr], [transient], [msg]). *)
val cat_invoke : string

(** Packed kernel invocations (shapes + residue-dispatch selection). *)
val cat_kernel : string

(** Shape-function invocations, tagged by mode in the [mode] arg. *)
val cat_shape_func : string

(** Storage and tensor allocations ([alloc_storage], [alloc_tensor],
    [alloc_tensor_reg] spans). *)
val cat_alloc : string

(** Cross-device transfers emitted by the [DeviceCopy] instruction. *)
val cat_device_copy : string

(** Serving-engine events ([Nimble_serve]): request admission, batch
    formation ([serve.batch], with [bucket]/[size] args), per-request
    execution ([serve.exec], with [bucket]/[outcome]/[worker] args), and
    the resilience path — [serve.retry] (a transient failure about to be
    retried; [bucket]/[worker]/[attempt]/[kind]), [serve.fail] (a request
    completing with a typed failure; [bucket]/[worker]/[kind]/
    [transient]/[msg]) and [serve.worker_restart] (a worker rebuilding
    its interpreter after an escape from the typed channel;
    [worker]/[reason]). *)
val cat_serve : string

type t

(** [create ()] makes an empty trace. @param capacity ring size in spans
    (default 65536); the oldest spans are dropped beyond it. *)
val create : ?capacity:int -> unit -> t

(** Current timestamp in trace time (µs since {!create}); pass the result
    as [ts_us] when recording a span started now. *)
val now_us : t -> float

(** Append one span (overwriting the oldest if the ring is full). *)
val record :
  t ->
  name:string ->
  cat:string ->
  ts_us:float ->
  dur_us:float ->
  (string * arg) list ->
  unit

(** Spans ever recorded, including ones the ring has since dropped. *)
val total_recorded : t -> int

(** Spans lost to ring overflow ([total_recorded - capacity], floored). *)
val dropped : t -> int

(** Retained spans, oldest first. *)
val spans : t -> span list

(** Number of retained spans in category [cat]. *)
val count_cat : t -> string -> int

(** Forget all spans (the ring and counters reset; the epoch is kept). *)
val clear : t -> unit

(** Export as a Chrome [trace_event] document (object format, one complete
    ["ph":"X"] event per span). [meta] key/values are merged into the
    document's [otherData]. *)
val to_json : ?meta:(string * string) list -> t -> Json.t

(** {!to_json} pretty-printed to a file — the artifact behind
    [nimble_cli run --trace out.json]. *)
val save_file : ?meta:(string * string) list -> t -> string -> unit
