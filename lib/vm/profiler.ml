(** VM execution profiler.

    Separates kernel-invocation time from everything else (the breakdown of
    the paper's Table 4), counts instructions per opcode, times allocation
    instructions (the memory-planning latency study), and owns the memory
    pool accounting. {!report} snapshots all of it into a typed record and
    {!report_to_json} renders the machine-readable [nimble-profile/v1]
    document (see [docs/OBSERVABILITY.md]). *)

type t = {
  instr_counts : int array;
  mutable kernel_seconds : float;
  mutable alloc_seconds : float;
  mutable total_seconds : float;
  mutable kernel_invocations : int;
  mutable shape_func_invocations : int;
  mutable pool_hits : int;
      (** storage requests served by the interpreter's cross-invocation pool *)
  mutable arena_rebinds : int;
      (** [BindArena] executions that rebound a persistent symbolic-plan
          arena instead of allocating one (see [docs/MEMORY.md]) *)
  per_kernel : (string, kernel_stat) Hashtbl.t;
      (** cumulative time and call count per packed function *)
  pool : Nimble_device.Pool.t;
}

and kernel_stat = {
  mutable calls : int;
  mutable seconds : float;
  mutable par_runs : int;
      (** parallel_for fan-outs executed inside this kernel's calls *)
  mutable seq_runs : int;  (** parallel_for calls that stayed sequential *)
  mutable par_chunks : int;  (** chunks executed across those fan-outs *)
  mutable par_workers : int;  (** participating domains, summed per fan-out *)
}

let create () =
  {
    instr_counts = Array.make Isa.num_opcodes 0;
    kernel_seconds = 0.0;
    alloc_seconds = 0.0;
    total_seconds = 0.0;
    kernel_invocations = 0;
    shape_func_invocations = 0;
    pool_hits = 0;
    arena_rebinds = 0;
    per_kernel = Hashtbl.create 32;
    pool = Nimble_device.Pool.create ();
  }

let reset t =
  Array.fill t.instr_counts 0 Isa.num_opcodes 0;
  t.kernel_seconds <- 0.0;
  t.alloc_seconds <- 0.0;
  t.total_seconds <- 0.0;
  t.kernel_invocations <- 0;
  t.shape_func_invocations <- 0;
  t.pool_hits <- 0;
  t.arena_rebinds <- 0;
  Hashtbl.reset t.per_kernel;
  Nimble_device.Pool.reset t.pool

let record_kernel ?par t name ~seconds =
  let stat =
    match Hashtbl.find_opt t.per_kernel name with
    | Some s -> s
    | None ->
        let s =
          {
            calls = 0;
            seconds = 0.0;
            par_runs = 0;
            seq_runs = 0;
            par_chunks = 0;
            par_workers = 0;
          }
        in
        Hashtbl.replace t.per_kernel name s;
        s
  in
  stat.calls <- stat.calls + 1;
  stat.seconds <- stat.seconds +. seconds;
  match (par : Nimble_parallel.Parallel.snapshot option) with
  | None -> ()
  | Some d ->
      stat.par_runs <- stat.par_runs + d.Nimble_parallel.Parallel.sn_par_runs;
      stat.seq_runs <- stat.seq_runs + d.Nimble_parallel.Parallel.sn_seq_runs;
      stat.par_chunks <- stat.par_chunks + d.Nimble_parallel.Parallel.sn_chunks;
      stat.par_workers <- stat.par_workers + d.Nimble_parallel.Parallel.sn_workers

(** The [k] packed functions with the largest cumulative time. *)
let top_kernels ?(k = 10) t : (string * kernel_stat) list =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.per_kernel []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b.seconds a.seconds)
  |> List.filteri (fun i _ -> i < k)

let count t instr =
  let op = Isa.opcode instr in
  t.instr_counts.(op) <- t.instr_counts.(op) + 1

let total_instrs t = Array.fold_left ( + ) 0 t.instr_counts

(** Time spent outside kernels: the VM's dynamism-handling overhead
    (Table 4's "others" column). *)
let other_seconds t = Stdlib.max 0.0 (t.total_seconds -. t.kernel_seconds)

let allocs t = Nimble_device.Pool.total_allocs t.pool
let transfers t = Nimble_device.Pool.total_transfers t.pool

let pp ppf t =
  Fmt.pf ppf "total=%.6fs kernels=%.6fs (%d calls) other=%.6fs alloc=%.6fs@."
    t.total_seconds t.kernel_seconds t.kernel_invocations (other_seconds t)
    t.alloc_seconds;
  (let par = Nimble_parallel.Parallel.snapshot () in
   if par.Nimble_parallel.Parallel.sn_par_runs > 0 then
     Fmt.pf ppf
       "parallel: %d domains, %d fan-outs (%d chunks, %d worker slots), %d sequential@."
       (Nimble_parallel.Parallel.num_domains ())
       par.Nimble_parallel.Parallel.sn_par_runs
       par.Nimble_parallel.Parallel.sn_chunks
       par.Nimble_parallel.Parallel.sn_workers
       par.Nimble_parallel.Parallel.sn_seq_runs);
  Array.iteri
    (fun op n -> if n > 0 then Fmt.pf ppf "  %-16s %d@." (Isa.opcode_name op) n)
    t.instr_counts;
  match top_kernels ~k:5 t with
  | [] -> ()
  | top ->
      Fmt.pf ppf "top kernels:@.";
      List.iter
        (fun (name, s) ->
          Fmt.pf ppf "  %-48s %6d calls %10.3f ms@." name s.calls (1e3 *. s.seconds))
        top

(* ------------------------- typed report ------------------------- *)

type kernel_row = {
  kr_name : string;
  kr_calls : int;
  kr_seconds : float;
  kr_par_runs : int;
  kr_seq_runs : int;
  kr_par_chunks : int;
  kr_par_workers : int;
}

type parallel_stats = {
  pr_num_domains : int;
  pr_seq_runs : int;
  pr_par_runs : int;
  pr_chunks : int;
  pr_workers : int;
}

type device_row = {
  dr_device : int;
  dr_allocs : int;
  dr_frees : int;
  dr_bytes_allocated : int;
  dr_live_bytes : int;
  dr_peak_bytes : int;  (** pool high-water mark *)
  dr_transfers_in : int;
  dr_transfer_bytes_in : int;
}

type report = {
  r_total_seconds : float;
  r_kernel_seconds : float;
  r_other_seconds : float;
  r_alloc_seconds : float;
  r_kernel_invocations : int;
  r_shape_func_invocations : int;
  r_total_instructions : int;
  r_pool_hits : int;
  r_arena_rebinds : int;  (** persistent symbolic-plan arena reuses *)
  r_instructions : (string * int) list;  (** opcode name -> count, nonzero *)
  r_kernels : kernel_row list;  (** every packed function, hottest first *)
  r_devices : device_row list;  (** per-device pool accounting, by id *)
  r_dispatch : Nimble_codegen.Dispatch.snapshot list;
  r_parallel : parallel_stats;  (** domain-pool worker utilization *)
}

(** Snapshot the profiler (and, by default, every residue dispatcher in
    the process) into a typed report. *)
let report ?dispatch t : report =
  let instructions =
    Array.to_list t.instr_counts
    |> List.mapi (fun op n -> (Isa.opcode_name op, n))
    |> List.filter (fun (_, n) -> n > 0)
  in
  let kernels =
    Hashtbl.fold
      (fun name s acc ->
        {
          kr_name = name;
          kr_calls = s.calls;
          kr_seconds = s.seconds;
          kr_par_runs = s.par_runs;
          kr_seq_runs = s.seq_runs;
          kr_par_chunks = s.par_chunks;
          kr_par_workers = s.par_workers;
        }
        :: acc)
      t.per_kernel []
    |> List.sort (fun a b -> Float.compare b.kr_seconds a.kr_seconds)
  in
  let devices =
    Hashtbl.fold
      (fun id (s : Nimble_device.Pool.stats) acc ->
        {
          dr_device = id;
          dr_allocs = s.Nimble_device.Pool.allocs;
          dr_frees = s.Nimble_device.Pool.frees;
          dr_bytes_allocated = s.Nimble_device.Pool.bytes_allocated;
          dr_live_bytes = s.Nimble_device.Pool.live_bytes;
          dr_peak_bytes = s.Nimble_device.Pool.peak_bytes;
          dr_transfers_in = s.Nimble_device.Pool.transfers_in;
          dr_transfer_bytes_in = s.Nimble_device.Pool.transfer_bytes_in;
        }
        :: acc)
      t.pool.Nimble_device.Pool.per_device []
    |> List.sort (fun a b -> Int.compare a.dr_device b.dr_device)
  in
  let dispatch =
    match dispatch with
    | Some d -> d
    | None -> Nimble_codegen.Dispatch.snapshots ()
  in
  let par = Nimble_parallel.Parallel.snapshot () in
  let parallel =
    {
      pr_num_domains = Nimble_parallel.Parallel.num_domains ();
      pr_seq_runs = par.Nimble_parallel.Parallel.sn_seq_runs;
      pr_par_runs = par.Nimble_parallel.Parallel.sn_par_runs;
      pr_chunks = par.Nimble_parallel.Parallel.sn_chunks;
      pr_workers = par.Nimble_parallel.Parallel.sn_workers;
    }
  in
  {
    r_total_seconds = t.total_seconds;
    r_kernel_seconds = t.kernel_seconds;
    r_other_seconds = other_seconds t;
    r_alloc_seconds = t.alloc_seconds;
    r_kernel_invocations = t.kernel_invocations;
    r_shape_func_invocations = t.shape_func_invocations;
    r_total_instructions = total_instrs t;
    r_pool_hits = t.pool_hits;
    r_arena_rebinds = t.arena_rebinds;
    r_instructions = instructions;
    r_kernels = kernels;
    r_devices = devices;
    r_dispatch = dispatch;
    r_parallel = parallel;
  }

let json_of_dispatch (d : Nimble_codegen.Dispatch.snapshot) =
  Json.Obj
    [
      ("name", Json.String d.Nimble_codegen.Dispatch.snap_name);
      ("tile", Json.Int d.snap_tile);
      ("kernels", Json.Int d.snap_kernels);
      ("hits", Json.Int d.snap_hits);
      ("misses", Json.Int d.snap_misses);
      ("extern_calls", Json.Int d.snap_extern_calls);
      ("tuned_calls", Json.Int d.snap_tuned_calls);
      ("installs", Json.Int d.snap_installs);
      ("evictions", Json.Int d.snap_evictions);
      ( "residue_hits",
        Json.Obj
          (List.map
             (fun (r, n) -> (string_of_int r, Json.Int n))
             d.snap_residue_hits) );
      ( "tuned",
        Json.Obj
          (List.map (fun (m, tile) -> (string_of_int m, Json.Int tile)) d.snap_tuned)
      );
    ]

(** The [autotune] report member: online-specialization activity from an
    [Autotune.summary] (see [docs/TUNING.md]). *)
let json_of_autotune (s : Nimble_codegen.Autotune.summary) : Json.t =
  Json.Obj
    [
      ("observations", Json.Int s.Nimble_codegen.Autotune.au_observations);
      ("scans", Json.Int s.au_scans);
      ("queued", Json.Int s.au_queued);
      ("evictions", Json.Int s.au_evictions);
      ("pending", Json.Int s.au_pending);
      ( "installs",
        Json.List
          (List.map
             (fun (i : Nimble_codegen.Autotune.install) ->
               Json.Obj
                 [
                   ("kernel", Json.String i.Nimble_codegen.Autotune.in_kernel);
                   ("extent", Json.Int i.in_extent);
                   ("tile_m", Json.Int i.in_tile_m);
                   ("hit_rate_before", Json.Float i.in_hit_rate_before);
                   ("seconds", Json.Float i.in_seconds);
                 ])
             s.au_installs) );
    ]

(** Render a report as the [nimble-profile/v1] JSON document.
    @param server serving-engine statistics ([Nimble_serve.Stats]) to embed
    as the document's [server] member — present only when serving.
    @param autotune online-specialization summary to embed as the
    document's [autotune] member — present only when autotuning.
    @param fleet multi-model fleet statistics ([Nimble_serve.Fleet])
    embedded as the document's [fleet] member — present only when the
    fleet tier is serving. *)
let report_to_json ?server ?fleet ?autotune (r : report) : Json.t =
  let server_member =
    match server with Some s -> [ ("server", s) ] | None -> []
  in
  let fleet_member =
    match fleet with Some f -> [ ("fleet", f) ] | None -> []
  in
  let autotune_member =
    match autotune with
    | Some s -> [ ("autotune", json_of_autotune s) ]
    | None -> []
  in
  (* fault-injection accounting is embedded only when a spec is active,
     so reports from normal runs are byte-identical to pre-fault builds *)
  let fault_member =
    if not (Nimble_fault.Fault.enabled ()) then []
    else
      let point_objs =
        let hits = Nimble_fault.Fault.hits () in
        List.map
          (fun (point, att) ->
            let h =
              match List.assoc_opt point hits with Some h -> h | None -> 0
            in
            ( point,
              Json.Obj [ ("attempts", Json.Int att); ("hits", Json.Int h) ] ))
          (Nimble_fault.Fault.attempts ())
      in
      [
        ( "faults",
          Json.Obj
            (("spec",
              Json.String
                (Option.value ~default:"" (Nimble_fault.Fault.spec ())))
            :: point_objs) );
      ]
  in
  Json.Obj
    ([
      ("schema", Json.String "nimble-profile/v1");
      ("total_seconds", Json.Float r.r_total_seconds);
      ("kernel_seconds", Json.Float r.r_kernel_seconds);
      ("other_seconds", Json.Float r.r_other_seconds);
      ("alloc_seconds", Json.Float r.r_alloc_seconds);
      ("kernel_invocations", Json.Int r.r_kernel_invocations);
      ("shape_func_invocations", Json.Int r.r_shape_func_invocations);
      ("total_instructions", Json.Int r.r_total_instructions);
      ("pool_hits", Json.Int r.r_pool_hits);
      ("arena_rebinds", Json.Int r.r_arena_rebinds);
      ( "instructions",
        Json.Obj (List.map (fun (op, n) -> (op, Json.Int n)) r.r_instructions) );
      ( "parallel",
        Json.Obj
          [
            ("num_domains", Json.Int r.r_parallel.pr_num_domains);
            ("seq_runs", Json.Int r.r_parallel.pr_seq_runs);
            ("par_runs", Json.Int r.r_parallel.pr_par_runs);
            ("chunks", Json.Int r.r_parallel.pr_chunks);
            ("workers", Json.Int r.r_parallel.pr_workers);
          ] );
      ( "kernels",
        Json.List
          (List.map
             (fun k ->
               Json.Obj
                 [
                   ("name", Json.String k.kr_name);
                   ("calls", Json.Int k.kr_calls);
                   ("seconds", Json.Float k.kr_seconds);
                   ("par_runs", Json.Int k.kr_par_runs);
                   ("seq_runs", Json.Int k.kr_seq_runs);
                   ("par_chunks", Json.Int k.kr_par_chunks);
                   ("par_workers", Json.Int k.kr_par_workers);
                 ])
             r.r_kernels) );
      ( "devices",
        Json.List
          (List.map
             (fun d ->
               Json.Obj
                 [
                   ("device", Json.Int d.dr_device);
                   ("allocs", Json.Int d.dr_allocs);
                   ("frees", Json.Int d.dr_frees);
                   ("bytes_allocated", Json.Int d.dr_bytes_allocated);
                   ("live_bytes", Json.Int d.dr_live_bytes);
                   ("peak_bytes", Json.Int d.dr_peak_bytes);
                   ("transfers_in", Json.Int d.dr_transfers_in);
                   ("transfer_bytes_in", Json.Int d.dr_transfer_bytes_in);
                 ])
             r.r_devices) );
      ("dispatch", Json.List (List.map json_of_dispatch r.r_dispatch));
    ]
    @ fault_member @ server_member @ fleet_member @ autotune_member)

(** [report] and [report_to_json] composed: the one-call JSON snapshot. *)
let to_json ?dispatch ?server ?fleet ?autotune t =
  report_to_json ?server ?fleet ?autotune (report ?dispatch t)
