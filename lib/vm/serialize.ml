(** Binary (de)serialization of VM executables.

    Only the platform-independent part is stored (bytecode, constants,
    packed-function names); kernel implementations are relinked by name on
    load, mirroring the paper's split between portable bytecode and
    platform-dependent kernel code. Variable-length instruction encoding:
    one opcode byte followed by operand fields. *)

open Nimble_tensor
module Fault = Nimble_fault.Fault

exception Format_error of string

let err fmt = Fmt.kstr (fun s -> raise (Format_error s)) fmt

(* version 2 appended the entry-guard tables after each function's code;
   version 3 adds the symbolic memory-plan table after the functions and
   extends AllocTensorReg with plan/slot fields; version 4 appends the
   autotune tune table (persisted online-specialization decisions) after
   the plans *)
let magic = "NMBLEXE4"

(* ---------------- writer ---------------- *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_i32 b v = Buffer.add_int32_le b (Int32.of_int v)
let w_i64 b v = Buffer.add_int64_le b v

let w_string b s =
  w_i32 b (String.length s);
  Buffer.add_string b s

let w_regs b (rs : int array) =
  w_i32 b (Array.length rs);
  Array.iter (w_i32 b) rs

let dtype_code = function
  | Dtype.F32 -> 0
  | Dtype.F64 -> 1
  | Dtype.I32 -> 2
  | Dtype.I64 -> 3
  | Dtype.U8 -> 4

let dtype_of_code = function
  | 0 -> Dtype.F32
  | 1 -> Dtype.F64
  | 2 -> Dtype.I32
  | 3 -> Dtype.I64
  | 4 -> Dtype.U8
  | c -> err "bad dtype code %d" c

let w_tensor b (t : Tensor.t) =
  w_u8 b (dtype_code (Tensor.dtype t));
  let s = Tensor.shape t in
  w_i32 b (Array.length s);
  Array.iter (w_i32 b) s;
  let n = Tensor.numel t in
  match Tensor.dtype t with
  | Dtype.F32 ->
      for i = 0 to n - 1 do
        Buffer.add_int32_le b (Int32.bits_of_float (Tensor.get_float t i))
      done
  | Dtype.F64 ->
      for i = 0 to n - 1 do
        Buffer.add_int64_le b (Int64.bits_of_float (Tensor.get_float t i))
      done
  | Dtype.I32 ->
      for i = 0 to n - 1 do
        Buffer.add_int32_le b (Int32.of_int (Tensor.get_int t i))
      done
  | Dtype.I64 ->
      for i = 0 to n - 1 do
        Buffer.add_int64_le b (Int64.of_int (Tensor.get_int t i))
      done
  | Dtype.U8 ->
      for i = 0 to n - 1 do
        w_u8 b (Tensor.get_int t i)
      done

let w_instr b (i : Isa.t) =
  w_u8 b (Isa.opcode i);
  match i with
  | Isa.Move { src; dst } ->
      w_i32 b src;
      w_i32 b dst
  | Isa.Ret { result } -> w_i32 b result
  | Isa.Invoke { func_index; args; dst } ->
      w_i32 b func_index;
      w_regs b args;
      w_i32 b dst
  | Isa.InvokeClosure { closure; args; dst } ->
      w_i32 b closure;
      w_regs b args;
      w_i32 b dst
  | Isa.InvokePacked { packed_index; args; outs; upper_bound } ->
      w_i32 b packed_index;
      w_regs b args;
      w_regs b outs;
      w_u8 b (if upper_bound then 1 else 0)
  | Isa.AllocStorage { size; alignment; dtype; device_id; arena; dst } ->
      w_i32 b size;
      w_i32 b alignment;
      w_u8 b (dtype_code dtype);
      w_i32 b device_id;
      w_u8 b (if arena then 1 else 0);
      w_i32 b dst
  | Isa.AllocTensor { storage; offset; shape; dtype; dst } ->
      w_i32 b storage;
      w_i32 b offset;
      w_regs b shape;
      w_u8 b (dtype_code dtype);
      w_i32 b dst
  | Isa.AllocTensorReg { storage; offset; shape; dtype; plan; slot; dst } ->
      w_i32 b storage;
      w_i32 b offset;
      w_i32 b shape;
      w_u8 b (dtype_code dtype);
      w_i32 b plan;
      w_i32 b slot;
      w_i32 b dst
  | Isa.AllocADT { tag; fields; dst } ->
      w_i32 b tag;
      w_regs b fields;
      w_i32 b dst
  | Isa.AllocClosure { func_index; captured; dst } ->
      w_i32 b func_index;
      w_regs b captured;
      w_i32 b dst
  | Isa.GetField { obj; index; dst } ->
      w_i32 b obj;
      w_i32 b index;
      w_i32 b dst
  | Isa.GetTag { obj; dst } ->
      w_i32 b obj;
      w_i32 b dst
  | Isa.If { test; target; true_offset; false_offset } ->
      w_i32 b test;
      w_i32 b target;
      w_i32 b true_offset;
      w_i32 b false_offset
  | Isa.Goto off -> w_i32 b off
  | Isa.LoadConst { index; dst } ->
      w_i32 b index;
      w_i32 b dst
  | Isa.LoadConsti { value; dst } ->
      w_i64 b value;
      w_i32 b dst
  | Isa.DeviceCopy { src; dst_device_id; dst } ->
      w_i32 b src;
      w_i32 b dst_device_id;
      w_i32 b dst
  | Isa.ShapeOf { tensor; dst } ->
      w_i32 b tensor;
      w_i32 b dst
  | Isa.ReshapeTensor { tensor; shape; dst } ->
      w_i32 b tensor;
      w_i32 b shape;
      w_i32 b dst
  | Isa.Fatal msg -> w_string b msg
  | Isa.BindArena { plan_index; dst } ->
      w_i32 b plan_index;
      w_i32 b dst

let w_guard b (g : Exe.guard) =
  w_i32 b g.Exe.g_arg;
  w_string b g.Exe.g_name;
  (match g.Exe.g_dtype with
  | None -> w_u8 b 0
  | Some dt ->
      w_u8 b 1;
      w_u8 b (dtype_code dt));
  w_i32 b (Array.length g.Exe.g_dims);
  Array.iter
    (fun check ->
      match check with
      | Exe.Check_any -> w_u8 b 0
      | Exe.Check_exact n ->
          w_u8 b 1;
          w_i32 b n
      | Exe.Check_eq s ->
          w_u8 b 2;
          w_i32 b s)
    g.Exe.g_dims

let w_sym_expr b (e : Nimble_shape.Sym_expr.t) =
  w_string b (Nimble_shape.Sym_expr.to_string e)

let w_plan b (p : Exe.plan) =
  w_i32 b p.Exe.p_func;
  w_i32 b p.Exe.p_device;
  w_i32 b p.Exe.p_align;
  w_i32 b (Array.length p.Exe.p_binders);
  Array.iter
    (fun (bd : Exe.binder) ->
      w_i32 b bd.Exe.b_arg;
      w_i32 b bd.Exe.b_dim;
      w_i32 b bd.Exe.b_sym)
    p.Exe.p_binders;
  w_i32 b (Array.length p.Exe.p_slots);
  Array.iter
    (fun (s : Exe.slot) ->
      w_sym_expr b s.Exe.s_offset;
      w_sym_expr b s.Exe.s_size)
    p.Exe.p_slots;
  w_sym_expr b p.Exe.p_total

let to_bytes (exe : Exe.t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  w_i32 b (Array.length exe.Exe.constants);
  Array.iter (w_tensor b) exe.Exe.constants;
  w_i32 b (Array.length exe.Exe.packed_names);
  Array.iter
    (fun (name, kind) ->
      w_string b name;
      w_u8 b (match kind with `Kernel -> 0 | `Shape_func -> 1))
    exe.Exe.packed_names;
  let guards = Exe.guards exe in
  w_i32 b (Array.length exe.Exe.funcs);
  Array.iteri
    (fun fi (f : Exe.vmfunc) ->
      w_string b f.Exe.name;
      w_i32 b f.Exe.arity;
      w_i32 b f.Exe.register_count;
      w_i32 b (Array.length f.Exe.code);
      Array.iter (w_instr b) f.Exe.code;
      let gs = if fi < Array.length guards then guards.(fi) else [||] in
      w_i32 b (Array.length gs);
      Array.iter (w_guard b) gs)
    exe.Exe.funcs;
  w_i32 b (Array.length exe.Exe.plans);
  Array.iter (w_plan b) exe.Exe.plans;
  w_i32 b (Array.length exe.Exe.tunes);
  Array.iter
    (fun (tn : Exe.tune) ->
      w_string b tn.Exe.tn_kernel;
      w_i32 b tn.Exe.tn_extent;
      w_i32 b tn.Exe.tn_tile_m)
    exe.Exe.tunes;
  Buffer.contents b

(* ---------------- reader ---------------- *)

type reader = { buf : string; mutable pos : int }

let r_u8 r =
  if r.pos >= String.length r.buf then err "truncated input";
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_i32 r =
  if r.pos + 4 > String.length r.buf then err "truncated input";
  let v = Int32.to_int (String.get_int32_le r.buf r.pos) in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  if r.pos + 8 > String.length r.buf then err "truncated input";
  let v = String.get_int64_le r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let r_string r =
  let n = r_i32 r in
  if n < 0 || r.pos + n > String.length r.buf then err "bad string length %d" n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_regs r =
  let n = r_i32 r in
  if n < 0 || n > 1_000_000 then err "bad register array length %d" n;
  Array.init n (fun _ -> r_i32 r)

let r_tensor r =
  let dt = dtype_of_code (r_u8 r) in
  let rank = r_i32 r in
  if rank < 0 || rank > 32 then err "bad tensor rank %d" rank;
  let shape = Array.init rank (fun _ -> r_i32 r) in
  Array.iter (fun d -> if d < 0 || d > 100_000_000 then err "bad tensor dim %d" d) shape;
  let t = try Tensor.empty ~dtype:dt shape with _ -> err "implausible tensor shape" in
  let n = Tensor.numel t in
  (match dt with
  | Dtype.F32 ->
      for i = 0 to n - 1 do
        Tensor.set_float t i (Int32.float_of_bits (Int32.of_int (r_i32 r)))
      done
  | Dtype.F64 ->
      for i = 0 to n - 1 do
        Tensor.set_float t i (Int64.float_of_bits (r_i64 r))
      done
  | Dtype.I32 ->
      for i = 0 to n - 1 do
        Tensor.set_int t i (r_i32 r)
      done
  | Dtype.I64 ->
      for i = 0 to n - 1 do
        Tensor.set_int t i (Int64.to_int (r_i64 r))
      done
  | Dtype.U8 ->
      for i = 0 to n - 1 do
        Tensor.set_int t i (r_u8 r)
      done);
  t

let r_instr r : Isa.t =
  let op = r_u8 r in
  match op with
  | 0 ->
      let src = r_i32 r in
      let dst = r_i32 r in
      Isa.Move { src; dst }
  | 1 -> Isa.Ret { result = r_i32 r }
  | 2 ->
      let func_index = r_i32 r in
      let args = r_regs r in
      let dst = r_i32 r in
      Isa.Invoke { func_index; args; dst }
  | 3 ->
      let closure = r_i32 r in
      let args = r_regs r in
      let dst = r_i32 r in
      Isa.InvokeClosure { closure; args; dst }
  | 4 ->
      let packed_index = r_i32 r in
      let args = r_regs r in
      let outs = r_regs r in
      let upper_bound = r_u8 r = 1 in
      Isa.InvokePacked { packed_index; args; outs; upper_bound }
  | 5 ->
      let size = r_i32 r in
      let alignment = r_i32 r in
      let dtype = dtype_of_code (r_u8 r) in
      let device_id = r_i32 r in
      let arena = r_u8 r = 1 in
      let dst = r_i32 r in
      Isa.AllocStorage { size; alignment; dtype; device_id; arena; dst }
  | 6 ->
      let storage = r_i32 r in
      let offset = r_i32 r in
      let shape = r_regs r in
      let dtype = dtype_of_code (r_u8 r) in
      let dst = r_i32 r in
      Isa.AllocTensor { storage; offset; shape; dtype; dst }
  | 7 ->
      let storage = r_i32 r in
      let offset = r_i32 r in
      let shape = r_i32 r in
      let dtype = dtype_of_code (r_u8 r) in
      let plan = r_i32 r in
      let slot = r_i32 r in
      let dst = r_i32 r in
      Isa.AllocTensorReg { storage; offset; shape; dtype; plan; slot; dst }
  | 8 ->
      let tag = r_i32 r in
      let fields = r_regs r in
      let dst = r_i32 r in
      Isa.AllocADT { tag; fields; dst }
  | 9 ->
      let func_index = r_i32 r in
      let captured = r_regs r in
      let dst = r_i32 r in
      Isa.AllocClosure { func_index; captured; dst }
  | 10 ->
      let obj = r_i32 r in
      let index = r_i32 r in
      let dst = r_i32 r in
      Isa.GetField { obj; index; dst }
  | 11 ->
      let obj = r_i32 r in
      let dst = r_i32 r in
      Isa.GetTag { obj; dst }
  | 12 ->
      let test = r_i32 r in
      let target = r_i32 r in
      let true_offset = r_i32 r in
      let false_offset = r_i32 r in
      Isa.If { test; target; true_offset; false_offset }
  | 13 -> Isa.Goto (r_i32 r)
  | 14 ->
      let index = r_i32 r in
      let dst = r_i32 r in
      Isa.LoadConst { index; dst }
  | 15 ->
      let value = r_i64 r in
      let dst = r_i32 r in
      Isa.LoadConsti { value; dst }
  | 16 ->
      let src = r_i32 r in
      let dst_device_id = r_i32 r in
      let dst = r_i32 r in
      Isa.DeviceCopy { src; dst_device_id; dst }
  | 17 ->
      let tensor = r_i32 r in
      let dst = r_i32 r in
      Isa.ShapeOf { tensor; dst }
  | 18 ->
      let tensor = r_i32 r in
      let shape = r_i32 r in
      let dst = r_i32 r in
      Isa.ReshapeTensor { tensor; shape; dst }
  | 19 -> Isa.Fatal (r_string r)
  | 20 ->
      let plan_index = r_i32 r in
      let dst = r_i32 r in
      Isa.BindArena { plan_index; dst }
  | op -> err "bad opcode %d" op

let check_count what n =
  if n < 0 || n > 10_000_000 then err "implausible %s count %d" what n;
  n

let r_guard r : Exe.guard =
  let g_arg = r_i32 r in
  let g_name = r_string r in
  let g_dtype =
    match r_u8 r with
    | 0 -> None
    | 1 -> Some (dtype_of_code (r_u8 r))
    | c -> err "bad guard dtype tag %d" c
  in
  let ndims = r_i32 r in
  if ndims < 0 || ndims > 32 then err "bad guard rank %d" ndims;
  let g_dims =
    Array.init ndims (fun _ ->
        match r_u8 r with
        | 0 -> Exe.Check_any
        | 1 -> Exe.Check_exact (r_i32 r)
        | 2 -> Exe.Check_eq (r_i32 r)
        | c -> err "bad guard dim tag %d" c)
  in
  { Exe.g_arg; g_name; g_dims; g_dtype }

let r_sym_expr r : Nimble_shape.Sym_expr.t =
  let s = r_string r in
  try Nimble_shape.Sym_expr.of_string s
  with Nimble_shape.Sym_expr.Parse_error msg -> err "bad plan expression: %s" msg

let r_plan r : Exe.plan =
  let p_func = r_i32 r in
  let p_device = r_i32 r in
  let p_align = r_i32 r in
  let nbinders = r_i32 r in
  if nbinders < 0 || nbinders > 1024 then err "bad plan binder count %d" nbinders;
  let p_binders =
    Array.init nbinders (fun _ ->
        let b_arg = r_i32 r in
        let b_dim = r_i32 r in
        let b_sym = r_i32 r in
        { Exe.b_arg; b_dim; b_sym })
  in
  let nslots = r_i32 r in
  if nslots < 0 || nslots > 1_000_000 then err "bad plan slot count %d" nslots;
  let p_slots =
    Array.init nslots (fun _ ->
        let s_offset = r_sym_expr r in
        let s_size = r_sym_expr r in
        { Exe.s_offset; s_size })
  in
  let p_total = r_sym_expr r in
  { Exe.p_func; p_device; p_align; p_binders; p_slots; p_total }

let of_bytes (s : string) : Exe.t =
  Fault.check "deserialize";
  let r = { buf = s; pos = 0 } in
  let m = String.sub s 0 (min (String.length magic) (String.length s)) in
  if not (String.equal m magic) then err "bad magic %S" m;
  r.pos <- String.length magic;
  let nconst = check_count "constant" (r_i32 r) in
  let constants = Array.init nconst (fun _ -> r_tensor r) in
  let npacked = check_count "packed" (r_i32 r) in
  let packed_names =
    Array.init npacked (fun _ ->
        let name = r_string r in
        let kind = if r_u8 r = 0 then `Kernel else `Shape_func in
        (name, kind))
  in
  let nfuncs = check_count "function" (r_i32 r) in
  let guards = Array.make nfuncs [||] in
  let funcs =
    Array.init nfuncs (fun fi ->
        let name = r_string r in
        let arity = r_i32 r in
        let register_count = r_i32 r in
        let ninstr = check_count "instruction" (r_i32 r) in
        let code = Array.init ninstr (fun _ -> r_instr r) in
        let nguards = check_count "guard" (r_i32 r) in
        guards.(fi) <- Array.init nguards (fun _ -> r_guard r);
        { Exe.name; arity; register_count; code })
  in
  let nplans = check_count "plan" (r_i32 r) in
  let plans = Array.init nplans (fun _ -> r_plan r) in
  let ntunes = check_count "tune" (r_i32 r) in
  let tunes =
    Array.init ntunes (fun _ ->
        let tn_kernel = r_string r in
        let tn_extent = r_i32 r in
        let tn_tile_m = r_i32 r in
        { Exe.tn_kernel; tn_extent; tn_tile_m })
  in
  let exe = Exe.create ~funcs ~constants ~packed_names in
  Exe.set_guards exe guards;
  Exe.set_plans exe plans;
  Exe.set_tunes exe tunes;
  exe

let save_file exe path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_bytes exe))

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_bytes (really_input_string ic (in_channel_length ic)))
