(** Verifier-driven dead-register compaction (see [compact.mli]):
    backward liveness over the [If]/[Goto] CFG, an interference graph from
    live-across-definition pairs, greedy coloring with arguments precolored
    to their calling-convention slots, then an in-place register rename. *)

open Nimble_vm

(* Backward liveness to fixpoint: live_in[pc] = reads ∪ (live_out \ writes),
   live_out[pc] = ∪ live_in[succ]. Registers out of [0, nregs) are ignored
   (malformed code is the verifier's business, not ours). Hosted on the
   shared [Dataflow] engine in [Backward] mode: the engine's per-node state
   is live_out (the in-state in flow direction), and every pc is seeded
   with bottom because dead code still gets its registers renamed. *)
let liveness (f : Exe.vmfunc) : bool array array =
  let code = f.Exe.code in
  let len = Array.length code in
  let nregs = f.Exe.register_count in
  let in_bounds r = r >= 0 && r < nregs in
  let transfer pc (out : bool array) : bool array =
    let st = Array.copy out in
    List.iter (fun r -> if in_bounds r then st.(r) <- false) (Verifier.writes code.(pc));
    List.iter (fun r -> if in_bounds r then st.(r) <- true) (Verifier.reads code.(pc));
    st
  in
  let live_out =
    Dataflow.solve ~direction:Dataflow.Backward ~num_nodes:len
      ~successors:(fun pc -> Verifier.successors pc code.(pc))
      ~transfer ~copy:Array.copy
      ~join_into:(fun ~into out ->
        let changed = ref false in
        Array.iteri
          (fun r v ->
            if v && not into.(r) then begin
              into.(r) <- true;
              changed := true
            end)
          out;
        !changed)
      ~seeds:(List.init len (fun pc -> (pc, Array.make nregs false)))
  in
  Array.init len (fun pc ->
      match live_out.(pc) with
      | Some out -> transfer pc out
      | None -> Array.make nregs false)

(* live_out[pc] recomputed from the fixpoint live_in sets. *)
let live_out_at (f : Exe.vmfunc) live_in pc =
  let nregs = f.Exe.register_count in
  let out = Array.make nregs false in
  List.iter
    (fun succ ->
      if succ >= 0 && succ < Array.length f.Exe.code then
        Array.iteri (fun r v -> if v then out.(r) <- true) live_in.(succ))
    (Verifier.successors pc f.Exe.code.(pc));
  out

let map_regs (m : int -> int) : Isa.t -> Isa.t =
  let ma = Array.map m in
  function
  | Isa.Move { src; dst } -> Isa.Move { src = m src; dst = m dst }
  | Isa.Ret { result } -> Isa.Ret { result = m result }
  | Isa.Invoke { func_index; args; dst } ->
      Isa.Invoke { func_index; args = ma args; dst = m dst }
  | Isa.InvokeClosure { closure; args; dst } ->
      Isa.InvokeClosure { closure = m closure; args = ma args; dst = m dst }
  | Isa.InvokePacked { packed_index; args; outs; upper_bound } ->
      Isa.InvokePacked { packed_index; args = ma args; outs = ma outs; upper_bound }
  | Isa.AllocStorage { size; alignment; dtype; device_id; arena; dst } ->
      Isa.AllocStorage { size = m size; alignment; dtype; device_id; arena; dst = m dst }
  | Isa.AllocTensor { storage; offset; shape; dtype; dst } ->
      Isa.AllocTensor { storage = m storage; offset; shape; dtype; dst = m dst }
  | Isa.AllocTensorReg { storage; offset; shape; dtype; plan; slot; dst } ->
      Isa.AllocTensorReg
        { storage = m storage; offset; shape = m shape; dtype; plan; slot; dst = m dst }
  | Isa.AllocADT { tag; fields; dst } -> Isa.AllocADT { tag; fields = ma fields; dst = m dst }
  | Isa.AllocClosure { func_index; captured; dst } ->
      Isa.AllocClosure { func_index; captured = ma captured; dst = m dst }
  | Isa.GetField { obj; index; dst } -> Isa.GetField { obj = m obj; index; dst = m dst }
  | Isa.GetTag { obj; dst } -> Isa.GetTag { obj = m obj; dst = m dst }
  | Isa.If { test; target; true_offset; false_offset } ->
      Isa.If { test = m test; target = m target; true_offset; false_offset }
  | Isa.Goto off -> Isa.Goto off
  | Isa.LoadConst { index; dst } -> Isa.LoadConst { index; dst = m dst }
  | Isa.LoadConsti { value; dst } -> Isa.LoadConsti { value; dst = m dst }
  | Isa.DeviceCopy { src; dst_device_id; dst } ->
      Isa.DeviceCopy { src = m src; dst_device_id; dst = m dst }
  | Isa.ShapeOf { tensor; dst } -> Isa.ShapeOf { tensor = m tensor; dst = m dst }
  | Isa.ReshapeTensor { tensor; shape; dst } ->
      Isa.ReshapeTensor { tensor = m tensor; shape = m shape; dst = m dst }
  | Isa.Fatal msg -> Isa.Fatal msg
  | Isa.BindArena { plan_index; dst } -> Isa.BindArena { plan_index; dst = m dst }

(** Compact one function: returns the renamed function, or [None] when
    nothing shrinks. *)
let compact_func (f : Exe.vmfunc) : Exe.vmfunc option =
  let code = f.Exe.code in
  let len = Array.length code in
  let nregs = f.Exe.register_count in
  let arity = f.Exe.arity in
  if len = 0 || nregs <= arity then None
  else begin
    let live_in = liveness f in
    (* Interference: a definition clobbers its slot, so the defined register
       must not share a slot with anything live across the instruction. The
       entry "instruction" defines the argument registers with live_in[0]
       live across it. *)
    let interf = Array.init nregs (fun _ -> Array.make nregs false) in
    let edge a b =
      if a <> b && a >= 0 && b >= 0 && a < nregs && b < nregs then begin
        interf.(a).(b) <- true;
        interf.(b).(a) <- true
      end
    in
    for p = 0 to arity - 1 do
      Array.iteri (fun r v -> if v then edge p r) live_in.(0)
    done;
    for pc = 0 to len - 1 do
      let out = live_out_at f live_in pc in
      List.iter
        (fun d -> Array.iteri (fun r v -> if v then edge d r) out)
        (Verifier.writes code.(pc))
    done;
    (* Greedy coloring, arguments precolored to their entry slots. *)
    let color = Array.make nregs (-1) in
    for p = 0 to arity - 1 do
      color.(p) <- p
    done;
    for r = arity to nregs - 1 do
      let taken = Array.make nregs false in
      for o = 0 to nregs - 1 do
        if interf.(r).(o) && color.(o) >= 0 then taken.(color.(o)) <- true
      done;
      let c = ref 0 in
      while taken.(!c) do incr c done;
      color.(r) <- !c
    done;
    let new_count =
      Array.fold_left (fun acc c -> max acc (c + 1)) arity color
    in
    if new_count >= nregs then None
    else
      Some
        {
          f with
          Exe.register_count = new_count;
          code = Array.map (map_regs (fun r -> if r >= 0 && r < nregs then color.(r) else r)) code;
        }
  end

(** Compact every function of [exe] in place; returns the total number of
    register slots removed. *)
let run (exe : Exe.t) : int =
  let removed = ref 0 in
  Array.iteri
    (fun i f ->
      match compact_func f with
      | None -> ()
      | Some f' ->
          removed := !removed + (f.Exe.register_count - f'.Exe.register_count);
          exe.Exe.funcs.(i) <- f')
    exe.Exe.funcs;
  !removed

(** Total register slots across all functions (the before/after metric of
    the compile report). *)
let register_count (exe : Exe.t) : int =
  Array.fold_left (fun acc f -> acc + f.Exe.register_count) 0 exe.Exe.funcs
