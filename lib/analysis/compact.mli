(** Verifier-driven dead-register compaction (the ROADMAP's PR 5
    follow-up): a post-emission pass shrinking each function's virtual
    register file so frames — including the specialized frames the online
    tuner re-links — carry no dead slots.

    Per function it runs a backward liveness analysis over the same
    [If]/[Goto] CFG facts as {!Verifier} ([reads]/[writes]/[successors]),
    builds an interference graph (a definition interferes with everything
    live across it, and the entry point defines the argument registers),
    and greedily colors it with arguments precolored to their
    calling-convention slots [0 .. arity-1]. Renaming never reorders or
    removes instructions, so compacted code is observationally identical —
    the verifier is re-run on the compacted executable by
    [Nimble.compile_with_report], and the register delta is reported in
    [nimble-compile/v1] ([registers_before]/[registers_after]). *)

(** Compact one function: [Some f'] with renamed registers and a smaller
    [register_count], or [None] when nothing shrinks. *)
val compact_func : Nimble_vm.Exe.vmfunc -> Nimble_vm.Exe.vmfunc option

(** Compact every function of the executable in place (function bodies are
    replaced; constants, guards, plans and tune table are untouched).
    Returns the total number of register slots removed. *)
val run : Nimble_vm.Exe.t -> int

(** Total register slots across all functions — the
    [registers_before]/[registers_after] metric of the compile report. *)
val register_count : Nimble_vm.Exe.t -> int
