(** Shape-value dominance classification (paper §4.2, SoD-style).

    A forward abstract interpretation — hosted on the shared {!Dataflow}
    engine — tracks tensor values that are statically known at compile
    time: constants, [shape_of] results over resolved ([Static]/[Sym])
    dims, and scalars sliced out of such shape vectors. A call site whose
    shape function is registered data-dependent but whose value inputs are
    all dominated by this knowledge is {e proven}: it behaves like a
    static site for fusion, manifest allocation and memory planning.

    The pass mutates the module in place:
    - proven sites get a {!Nimble_shape.Shape_func.proven_attr} attribute
      ([Attrs.Str "static"] or [Attrs.Str "sym"]) that downstream passes
      read through {!Nimble_shape.Shape_func.classify};
    - binding types are refined where the interpretation is sharper than
      inference (replacing [Any] dims only, never resolved ones), which
      lets the symbolic memory planner assign arena slots to tensors that
      were previously unplannable.

    Only [Data_dep] sites are ever proven. [Upper_bound] sites are counted
    but never stamped: their registered shape is a bound, not the exact
    runtime extent, so fusing across one would be unsound. *)

open Nimble_ir

(** Per-function classification counts. *)
type fn_stat = {
  cs_fn : string;
  cs_sites : int;  (** data-dependent / upper-bound op call sites *)
  cs_proven : int;  (** sites upgraded to proven-static *)
}

type summary = { per_fn : fn_stat list; sites_total : int; classified_static : int }

(** Run the pass over a module (in place — stamps attributes, refines
    binding types) and return the classification counts. Idempotent. *)
val run : Irmod.t -> summary

(** Post-fusion: fused groups (>1 op) whose body contains a proven
    formerly-dynamic site — the fusions the dominance pass unlocked. *)
val fused_across_dynamic : Irmod.t -> int

(** {!fused_across_dynamic} for a single function — the per-row value of
    the report's classification table. *)
val fn_fused_across_dynamic : Expr.fn -> int

(** Render the per-function table (sites, proven) with a totals row. *)
val pp_summary : Format.formatter -> summary -> unit
