(** Bytecode verifier (see [verifier.mli]): structural index checks plus a
    worklist dataflow over the [If]/[Goto] CFG proving def-before-use and
    alloc-backed kernel destinations on every path. *)

open Nimble_vm

exception Verify_error of Diag.t list

(* Abstract register value for the must-analysis. [Unset] = not defined on
   every path reaching this point; the join of two different defined values
   degrades to the generic [Val]. [Adt] tracks the field count of a locally
   visible allocation site so [GetField] indices can be bounds-checked. *)
type aval = Unset | Val | Storage | Talloc | Adt of int

let join a b =
  match (a, b) with
  | Unset, _ | _, Unset -> Unset
  | Val, Val -> Val
  | Storage, Storage -> Storage
  | Talloc, Talloc -> Talloc
  | Adt n, Adt m when n = m -> Adt n
  | _ -> Val

(* Keep in sync with the [Isa.t] constructor count; the exhaustiveness pin
   in [test/test_analysis.ml] fails the suite when they drift. *)
let handled_opcodes = 21

let num_devices = List.length Nimble_device.Device.all

(* Registers an instruction reads / writes, for bounds and liveness. *)
let reads : Isa.t -> int list = function
  | Isa.Move { src; _ } -> [ src ]
  | Isa.Ret { result } -> [ result ]
  | Isa.Invoke { args; _ } -> Array.to_list args
  | Isa.InvokeClosure { closure; args; _ } -> closure :: Array.to_list args
  | Isa.InvokePacked { args; outs; _ } -> Array.to_list args @ Array.to_list outs
  | Isa.AllocStorage { size; _ } -> [ size ]
  | Isa.AllocTensor { storage; _ } -> [ storage ]
  | Isa.AllocTensorReg { storage; shape; _ } -> [ storage; shape ]
  | Isa.AllocADT { fields; _ } -> Array.to_list fields
  | Isa.AllocClosure { captured; _ } -> Array.to_list captured
  | Isa.GetField { obj; _ } -> [ obj ]
  | Isa.GetTag { obj; _ } -> [ obj ]
  | Isa.If { test; target; _ } -> [ test; target ]
  | Isa.Goto _ -> []
  | Isa.LoadConst _ -> []
  | Isa.LoadConsti _ -> []
  | Isa.DeviceCopy { src; _ } -> [ src ]
  | Isa.ShapeOf { tensor; _ } -> [ tensor ]
  | Isa.ReshapeTensor { tensor; shape; _ } -> [ tensor; shape ]
  | Isa.Fatal _ -> []
  | Isa.BindArena _ -> []

let writes : Isa.t -> int list = function
  | Isa.Move { dst; _ }
  | Isa.Invoke { dst; _ }
  | Isa.InvokeClosure { dst; _ }
  | Isa.AllocStorage { dst; _ }
  | Isa.AllocTensor { dst; _ }
  | Isa.AllocTensorReg { dst; _ }
  | Isa.AllocADT { dst; _ }
  | Isa.AllocClosure { dst; _ }
  | Isa.GetField { dst; _ }
  | Isa.GetTag { dst; _ }
  | Isa.LoadConst { dst; _ }
  | Isa.LoadConsti { dst; _ }
  | Isa.DeviceCopy { dst; _ }
  | Isa.ShapeOf { dst; _ }
  | Isa.BindArena { dst; _ } ->
      [ dst ]
  | Isa.ReshapeTensor { dst; _ } -> [ dst ]
  | Isa.Ret _ | Isa.InvokePacked _ | Isa.If _ | Isa.Goto _ | Isa.Fatal _ -> []

(* Relative successors; [None] entries mean fallthrough to [pc + 1]. *)
let successors pc : Isa.t -> int list = function
  | Isa.Ret _ | Isa.Fatal _ -> []
  | Isa.Goto off -> [ pc + off ]
  | Isa.If { true_offset; false_offset; _ } ->
      [ pc + true_offset; pc + false_offset ]
  | _ -> [ pc + 1 ]

(* ------------------------------------------------------------------ *)

(* Transfer function of the register must-analysis, shared by the
   per-function verification and the cross-function ADT summaries. *)
let transfer_instr ~nregs instr (st : aval array) : aval array =
  let st = Array.copy st in
  let in_bounds r = r >= 0 && r < nregs in
  let set r v = if in_bounds r then st.(r) <- v in
  (match instr with
  | Isa.Move { src; dst } -> set dst (if in_bounds src then st.(src) else Val)
  | Isa.AllocStorage { dst; _ } | Isa.BindArena { dst; _ } -> set dst Storage
  | Isa.AllocTensor { dst; _ } | Isa.AllocTensorReg { dst; _ } -> set dst Talloc
  | Isa.AllocADT { fields; dst; _ } -> set dst (Adt (Array.length fields))
  | Isa.GetTag { obj; dst } ->
      (* the tag is being dispatched on: downstream field reads are
         guarded by a tag test this analysis cannot see, so forget the
         allocation-site field count to avoid false positives *)
      (if in_bounds obj then match st.(obj) with Adt _ -> st.(obj) <- Val | _ -> ());
      set dst Val
  | _ -> List.iter (fun r -> set r Val) (writes instr));
  st

(* Entry state with the given abstract values for the argument registers
   (callers pass all-[Val] when nothing is known about the caller). *)
let entry_state (f : Exe.vmfunc) (params : aval array) : aval array =
  let nregs = f.Exe.register_count in
  let entry = Array.make (max nregs 1) Unset in
  for r = 0 to min f.Exe.arity nregs - 1 do
    entry.(r) <- (if r < Array.length params then params.(r) else Val)
  done;
  entry

(* Fixpoint in-states of one function under the given entry; [None] =
   unreachable. Empty array for an empty body. *)
let func_states (exe : Exe.t) (fi : int) (entry : aval array) :
    aval array option array =
  let f = exe.Exe.funcs.(fi) in
  let code = f.Exe.code in
  let len = Array.length code in
  let nregs = f.Exe.register_count in
  if len = 0 then [||]
  else
    Dataflow.solve ~direction:Dataflow.Forward ~num_nodes:len
      ~successors:(fun pc -> successors pc code.(pc))
      ~transfer:(fun pc st -> transfer_instr ~nregs code.(pc) st)
      ~copy:Array.copy
      ~join_into:(fun ~into out ->
        let changed = ref false in
        Array.iteri
          (fun r v ->
            let j = join v out.(r) in
            if j <> v then begin
              into.(r) <- j;
              changed := true
            end)
          into;
        !changed)
      ~seeds:[ (0, entry) ]

let verify_func (exe : Exe.t) (fi : int) : Diag.t list =
  let f = exe.Exe.funcs.(fi) in
  let code = f.Exe.code in
  let len = Array.length code in
  let nregs = f.Exe.register_count in
  let diags = ref [] in
  let report pc fmt =
    Fmt.kstr
      (fun reason ->
        diags := Diag.v ~check:"bytecode" ~where_:f.Exe.name ~pc reason :: !diags)
      fmt
  in
  if len = 0 then report (-1) "empty function body (no terminating Ret)";
  if f.Exe.arity > nregs then
    report (-1) "arity %d exceeds register count %d" f.Exe.arity nregs;
  (* ---- structural checks: operand bounds, jump targets, indices ---- *)
  Array.iteri
    (fun pc instr ->
      List.iter
        (fun r ->
          if r < 0 || r >= nregs then
            report pc "register $%d out of bounds (register_count %d) in %a" r
              nregs Isa.pp instr)
        (reads instr @ writes instr);
      List.iter
        (fun t ->
          if t < 0 || t >= len then
            report pc "jump target %d out of bounds (code length %d)" t len)
        (successors pc instr);
      (match instr with
      | _ when successors pc instr = [ pc + 1 ] && pc + 1 >= len ->
          report pc "falls through the end of the function (%a)" Isa.pp instr
      | _ -> ());
      match instr with
      | Isa.Invoke { func_index; args; _ } ->
          if func_index < 0 || func_index >= Array.length exe.Exe.funcs then
            report pc "function index %d out of bounds (%d functions)"
              func_index (Array.length exe.Exe.funcs)
          else begin
            let callee = exe.Exe.funcs.(func_index) in
            if Array.length args <> callee.Exe.arity then
              report pc "calls %s with %d arguments (arity %d)" callee.Exe.name
                (Array.length args) callee.Exe.arity
          end
      | Isa.AllocClosure { func_index; captured; _ } ->
          if func_index < 0 || func_index >= Array.length exe.Exe.funcs then
            report pc "closure function index %d out of bounds (%d functions)"
              func_index (Array.length exe.Exe.funcs)
          else begin
            let callee = exe.Exe.funcs.(func_index) in
            if Array.length captured > callee.Exe.arity then
              report pc "closure captures %d values but %s has arity %d"
                (Array.length captured) callee.Exe.name callee.Exe.arity
          end
      | Isa.InvokePacked { packed_index; _ } ->
          if packed_index < 0 || packed_index >= Array.length exe.Exe.packed_names
          then
            report pc "packed index %d out of bounds (%d packed functions)"
              packed_index
              (Array.length exe.Exe.packed_names)
      | Isa.LoadConst { index; _ } ->
          if index < 0 || index >= Array.length exe.Exe.constants then
            report pc "constant index %d out of bounds (%d constants)" index
              (Array.length exe.Exe.constants)
      | Isa.AllocStorage { device_id; _ } ->
          if device_id < 0 || device_id >= num_devices then
            report pc "device id %d out of bounds (%d devices)" device_id
              num_devices
      | Isa.DeviceCopy { dst_device_id; _ } ->
          if dst_device_id < 0 || dst_device_id >= num_devices then
            report pc "device id %d out of bounds (%d devices)" dst_device_id
              num_devices
      | Isa.GetField { index; _ } ->
          if index < 0 then report pc "negative field index %d" index
      | Isa.AllocTensorReg { plan; slot; _ } ->
          if plan >= 0 then begin
            if plan >= Array.length exe.Exe.plans then
              report pc "plan index %d out of bounds (%d plans)" plan
                (Array.length exe.Exe.plans)
            else if slot < 0 || slot >= Array.length exe.Exe.plans.(plan).Exe.p_slots
            then
              report pc "slot %d out of bounds (plan%d has %d slots)" slot plan
                (Array.length exe.Exe.plans.(plan).Exe.p_slots)
          end
          else if slot >= 0 then report pc "slot %d without a plan" slot
      | Isa.BindArena { plan_index; _ } ->
          if plan_index < 0 || plan_index >= Array.length exe.Exe.plans then
            report pc "plan index %d out of bounds (%d plans)" plan_index
              (Array.length exe.Exe.plans)
          else begin
            let p = exe.Exe.plans.(plan_index) in
            if p.Exe.p_func <> fi then
              report pc "plan%d belongs to fn%d" plan_index p.Exe.p_func;
            Array.iter
              (fun (b : Exe.binder) ->
                if b.Exe.b_arg < 0 || b.Exe.b_arg >= f.Exe.arity then
                  report pc "plan%d binder reads argument %d (arity %d)"
                    plan_index b.Exe.b_arg f.Exe.arity
                else if b.Exe.b_dim < 0 then
                  report pc "plan%d binder reads negative dim %d" plan_index
                    b.Exe.b_dim)
              p.Exe.p_binders
          end
      | _ -> ())
    code;
  (* ---- dataflow: def-before-use and alloc-backing on every path ---- *)
  let in_bounds r = r >= 0 && r < nregs in
  if len > 0 && nregs >= 0 then begin
    let entry = entry_state f (Array.make f.Exe.arity Val) in
    let in_states = func_states exe fi entry in
    (* final pass over reachable instructions with their fixpoint states *)
    Array.iteri
      (fun pc instr ->
        match in_states.(pc) with
        | None -> () (* unreachable: nothing can go wrong at runtime *)
        | Some st ->
            List.iter
              (fun r ->
                if in_bounds r && st.(r) = Unset then
                  report pc "read of register $%d not defined on every path (%a)"
                    r Isa.pp instr)
              (reads instr);
            (match instr with
            | Isa.InvokePacked { outs; _ } ->
                Array.iter
                  (fun r ->
                    if in_bounds r && st.(r) <> Unset && st.(r) <> Talloc then
                      report pc
                        "out register $%d is not backed by a prior tensor \
                         allocation"
                        r)
                  outs
            | Isa.AllocTensor { storage; _ } | Isa.AllocTensorReg { storage; _ }
              ->
                if
                  in_bounds storage
                  && (match st.(storage) with
                     | Talloc | Adt _ -> true
                     | _ -> false)
                then
                  report pc "storage operand $%d does not hold a storage" storage
            | Isa.GetField { obj; index; _ } -> (
                if in_bounds obj then
                  match st.(obj) with
                  | Adt n when index >= n ->
                      report pc "field index %d out of bounds for a %d-field ADT"
                        index n
                  | _ -> ())
            | _ -> ()))
      code
  end;
  (* ---- entry guards must name real argument positions ---- *)
  let gs = Exe.guards exe in
  if fi < Array.length gs then
    Array.iter
      (fun (g : Exe.guard) ->
        if g.Exe.g_arg < 0 || g.Exe.g_arg >= f.Exe.arity then
          report (-1) "guard on %s names argument %d (arity %d)" g.Exe.g_name
            g.Exe.g_arg f.Exe.arity)
      gs.(fi);
  List.rev !diags

(* ---- cross-function ADT arity (Invoke / closure boundaries) ------- *)

(* What a callee's parameter is known to hold, joined over every visible
   call site. [PBot] = no visible call site reaches this parameter — the
   function is only invocable externally (the interpreter accepts any
   function by name), so nothing may be assumed. The per-function pass
   above checks [GetField] against locally visible [AllocADT] sites only;
   here allocation-site field counts are propagated through [Invoke]
   arguments and [AllocClosure] captured prefixes so a field read of a
   constructor built in the caller is bounds-checked too. Parameters past
   a closure's captured prefix are filled at [InvokeClosure] sites whose
   arguments this summary does not track, so they degrade to [PVal]. *)
type psum = PBot | PVal | PAdt of int

let pjoin a b =
  match (a, b) with
  | PBot, x | x, PBot -> x
  | PAdt n, PAdt m when n = m -> PAdt n
  | _ -> PVal

let psum_of_aval = function Adt n -> PAdt n | _ -> PVal

(* One collection sweep: join every visible call site's argument values
   into the callee summaries, reading each caller's fixpoint in-states. *)
let collect_summaries (exe : Exe.t) (states_of : int -> aval array option array)
    : psum array array =
  let nf = Array.length exe.Exe.funcs in
  let sums =
    Array.map (fun (f : Exe.vmfunc) -> Array.make (max f.Exe.arity 0) PBot)
      exe.Exe.funcs
  in
  Array.iteri
    (fun fi (f : Exe.vmfunc) ->
      let sts = states_of fi in
      let arg_val st r =
        if r >= 0 && r < Array.length st then psum_of_aval st.(r) else PVal
      in
      Array.iteri
        (fun pc instr ->
          if pc < Array.length sts then
            match sts.(pc) with
            | None -> () (* unreachable call site *)
            | Some st -> (
                match instr with
                | Isa.Invoke { func_index; args; _ }
                  when func_index >= 0 && func_index < nf ->
                    let cs = sums.(func_index) in
                    Array.iteri
                      (fun k a ->
                        if k < Array.length cs then
                          cs.(k) <- pjoin cs.(k) (arg_val st a))
                      args
                | Isa.AllocClosure { func_index; captured; _ }
                  when func_index >= 0 && func_index < nf ->
                    let cs = sums.(func_index) in
                    Array.iteri
                      (fun k a ->
                        if k < Array.length cs then
                          cs.(k) <- pjoin cs.(k) (arg_val st a))
                      captured;
                    for k = Array.length captured to Array.length cs - 1 do
                      cs.(k) <- PVal
                    done
                | _ -> ()))
        f.Exe.code)
    exe.Exe.funcs;
  sums

let refined_entry (f : Exe.vmfunc) (sum : psum array) : aval array =
  entry_state f
    (Array.map (function PAdt n -> Adt n | _ -> Val) sum)

(* How many collection rounds to run. One round sees direct caller →
   callee edges; each further round lets allocation-site facts flow one
   call deeper (f builds the ADT, passes it to g, g forwards it to h).
   Summaries only sharpen entries that the baseline treated as [Val], so
   a small bound is enough in practice. *)
let summary_rounds = 3

let verify_cross_adt (exe : Exe.t) : Diag.t list =
  let nf = Array.length exe.Exe.funcs in
  let baseline =
    Array.init nf (fun fi ->
        lazy
          (func_states exe fi
             (entry_state exe.Exe.funcs.(fi)
                (Array.make exe.Exe.funcs.(fi).Exe.arity Val))))
  in
  let sums = ref (collect_summaries exe (fun fi -> Lazy.force baseline.(fi))) in
  for _ = 2 to summary_rounds do
    sums :=
      collect_summaries exe (fun fi ->
          func_states exe fi (refined_entry exe.Exe.funcs.(fi) !sums.(fi)))
  done;
  let sums = !sums in
  let diags = ref [] in
  Array.iteri
    (fun fi (f : Exe.vmfunc) ->
      if Array.exists (function PAdt _ -> true | _ -> false) sums.(fi) then begin
        let base = Lazy.force baseline.(fi) in
        let refined = func_states exe fi (refined_entry f sums.(fi)) in
        let nregs = f.Exe.register_count in
        Array.iteri
          (fun pc instr ->
            match instr with
            | Isa.GetField { obj; index; _ }
              when obj >= 0 && obj < nregs && pc < Array.length refined -> (
                match (refined.(pc), base.(pc)) with
                | Some rst, Some bst -> (
                    match (rst.(obj), bst.(obj)) with
                    | Adt _, Adt _ ->
                        () (* locally visible: the per-function pass owns it *)
                    | Adt n, _ when index >= n ->
                        diags :=
                          Diag.v ~check:"bytecode" ~where_:f.Exe.name ~pc
                            (Fmt.str
                               "field index %d out of bounds for a %d-field \
                                ADT constructed by a caller"
                               index n)
                          :: !diags
                    | _ -> ())
                | _ -> ())
            | _ -> ())
          f.Exe.code
      end)
    exe.Exe.funcs;
  List.rev !diags

(* ---- symbolic memory plans: the dialect's soundness obligations ---- *)

module Sym_expr = Nimble_shape.Sym_expr

(* Admissible-binding samples for the plan checks. Exhaustive proof over
   all dims is undecidable in general; the planner only emits products and
   alignments of dims (monotone by construction), for which this grid —
   zero, the units, a small prime, a large power of two — exercises every
   interesting regime (empty tensors, aliasing at equal sizes, alignment
   boundaries). *)
let dim_grid = [ 0; 1; 2; 7; 64 ]

let rec grid_product = function
  | [] -> [ [] ]
  | d :: rest ->
      let tails = grid_product rest in
      List.concat_map (fun v -> List.map (fun tl -> (d, v) :: tl) tails) dim_grid

let pp_asn ppf asn =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ", ") (fun ppf (d, v) -> pf ppf "s%d=%d" d v))
    asn

let verify_plans (exe : Exe.t) : Diag.t list =
  let diags = ref [] in
  Array.iteri
    (fun pi (p : Exe.plan) ->
      let report fmt =
        Fmt.kstr
          (fun reason ->
            diags :=
              Diag.v ~check:"memory_plan" ~where_:(Fmt.str "plan%d" pi) ~pc:(-1)
                reason
              :: !diags)
          fmt
      in
      if p.Exe.p_func < 0 || p.Exe.p_func >= Array.length exe.Exe.funcs then
        report "function index %d out of bounds (%d functions)" p.Exe.p_func
          (Array.length exe.Exe.funcs);
      if p.Exe.p_device < 0 || p.Exe.p_device >= num_devices then
        report "device %d out of bounds (%d devices)" p.Exe.p_device num_devices;
      if p.Exe.p_align < 1 then report "alignment %d is not positive" p.Exe.p_align;
      let slots = Array.to_list p.Exe.p_slots in
      let free =
        List.sort_uniq compare
          (List.concat_map
             (fun (s : Exe.slot) ->
               Sym_expr.free_dims s.Exe.s_offset @ Sym_expr.free_dims s.Exe.s_size)
             slots
          @ Sym_expr.free_dims p.Exe.p_total)
      in
      let bound =
        Array.to_list (Array.map (fun (b : Exe.binder) -> b.Exe.b_sym) p.Exe.p_binders)
      in
      List.iter
        (fun s ->
          if not (List.mem s bound) then
            report "symbolic dim s%d has no binder" s)
        free;
      List.iteri
        (fun si (s : Exe.slot) ->
          if not (Sym_expr.monotone s.Exe.s_size) then
            report "slot %d size %s is not monotone in its dims" si
              (Sym_expr.to_string s.Exe.s_size))
        slots;
      if not (Sym_expr.monotone p.Exe.p_total) then
        report "total %s is not monotone in its dims"
          (Sym_expr.to_string p.Exe.p_total);
      (* no overlap (and no escape past the arena total) under sampled
         admissible bindings: full grid up to 3 dims, diagonal beyond *)
      let assignments =
        if List.length free <= 3 then grid_product free
        else List.map (fun v -> List.map (fun d -> (d, v)) free) dim_grid
      in
      List.iter
        (fun asn ->
          let env s = match List.assoc_opt s asn with Some v -> v | None -> 0 in
          let total = Sym_expr.eval env p.Exe.p_total in
          let evaled =
            List.mapi
              (fun si (s : Exe.slot) ->
                (si, Sym_expr.eval env s.Exe.s_offset, Sym_expr.eval env s.Exe.s_size))
              slots
          in
          List.iter
            (fun (si, off, size) ->
              if size < 0 then report "slot %d has negative size under %a" si pp_asn asn;
              if off < 0 || off + size > total then
                report "slot %d [%d, %d) escapes the arena total %d under %a" si
                  off (off + size) total pp_asn asn)
            evaled;
          List.iteri
            (fun i (si, oi, zi) ->
              List.iteri
                (fun j (sj, oj, zj) ->
                  if j > i && zi > 0 && zj > 0 && oi < oj + zj && oj < oi + zi
                  then
                    report "slots %d and %d overlap ([%d,%d) vs [%d,%d)) under %a"
                      si sj oi (oi + zi) oj (oj + zj) pp_asn asn)
                evaled)
            evaled)
        assignments)
    exe.Exe.plans;
  List.rev !diags

(* ---- persisted autotune decisions (NMBLEXE4 tune table) ---- *)

let verify_tunes (exe : Exe.t) : Diag.t list =
  let diags = ref [] in
  let seen = Hashtbl.create 8 in
  Array.iteri
    (fun ti (tn : Exe.tune) ->
      let report fmt =
        Fmt.kstr
          (fun reason ->
            diags :=
              Diag.v ~check:"tune_table" ~where_:(Fmt.str "tune%d" ti) ~pc:(-1)
                reason
              :: !diags)
          fmt
      in
      (match
         Array.find_opt
           (fun (n, _) -> String.equal n tn.Exe.tn_kernel)
           exe.Exe.packed_names
       with
      | Some (_, `Kernel) -> ()
      | Some (_, `Shape_func) ->
          report "%s is a shape function, not a kernel" tn.Exe.tn_kernel
      | None -> report "no packed kernel named %s" tn.Exe.tn_kernel);
      if tn.Exe.tn_extent <= 0 then
        report "extent %d is not positive" tn.Exe.tn_extent;
      if tn.Exe.tn_tile_m <= 0 || tn.Exe.tn_tile_m > 256 then
        report "tile_m %d out of [1, 256]" tn.Exe.tn_tile_m;
      let key = (tn.Exe.tn_kernel, tn.Exe.tn_extent) in
      if Hashtbl.mem seen key then
        report "duplicate decision for %s extent %d" tn.Exe.tn_kernel
          tn.Exe.tn_extent
      else Hashtbl.replace seen key ())
    exe.Exe.tunes;
  List.rev !diags

let verify (exe : Exe.t) : Diag.t list =
  List.concat
    (List.init (Array.length exe.Exe.funcs) (fun fi -> verify_func exe fi))
  @ verify_cross_adt exe @ verify_plans exe @ verify_tunes exe

let verify_exn exe =
  match verify exe with [] -> () | diags -> raise (Verify_error diags)

let of_bytes bytes =
  let exe = Serialize.of_bytes bytes in
  verify_exn exe;
  exe

let load_file path =
  let ic = open_in_bin path in
  let bytes =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_bytes bytes

let to_failure (diags : Diag.t list) : Interp.failure =
  match diags with
  | [] -> Interp.internal_failure ~func:"?" "verifier reported no diagnostics"
  | d :: rest ->
      {
        Interp.fail_kind = Interp.Internal;
        fail_func = d.Diag.d_where;
        fail_pc = d.Diag.d_pc;
        fail_instr = "";
        fail_msg =
          (if rest = [] then Diag.to_string d
           else Fmt.str "%a (+%d more)" Diag.pp d (List.length rest));
        fail_transient = false;
      }
