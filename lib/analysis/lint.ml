(** IR-dialect lints (see [lint.mli]): fusion policy, memory dialect,
    device placement. Each lint replays the invariant its pass establishes
    and reports violations as located {!Diag.t} values. *)

open Nimble_ir

(* ------------------------------------------------------------------ *)
(* Fusion policy (§4.2)                                                *)
(* ------------------------------------------------------------------ *)

let fusion (m : Irmod.t) : Diag.t list =
  let diags = ref [] in
  List.iter
    (fun (fname, (fn : Expr.fn)) ->
      List.iter
        (fun prim ->
          let ops = Nimble_passes.Fusion.primitive_ops prim in
          if List.length ops > 1 && not (Nimble_passes.Fusion.data_independent prim)
          then
            diags :=
              Diag.v ~check:"fusion"
                ~where_:(fname ^ "/" ^ Nimble_passes.Fusion.primitive_name prim)
                (Fmt.str
                   "fused group [%s] contains an op whose shape function is \
                    not data-independent"
                   (String.concat ", " ops))
              :: !diags)
        (Nimble_passes.Fusion.primitives_of fn.Expr.body))
    (Irmod.functions m);
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Memory dialect (§4.3)                                               *)
(* ------------------------------------------------------------------ *)

(* What a let-bound value is, as far as the memory dialect cares. *)
type mkind =
  | Kstorage of bool  (** a [memory.alloc_storage] result; [true] = arena *)
  | Ktensor of int  (** a [memory.alloc_tensor] result; payload = storage vid *)
  | Kother

module Int_set = Set.Make (Int)

let chain_of (e : Expr.t) =
  let rec go acc = function
    | Expr.Let (v, bound, body) -> go ((v, bound) :: acc) body
    | term -> (List.rev acc, term)
  in
  go [] e

(* Alias-aware liveness, replicating the planner's notion: the set of vids
   through which a tensor's buffer stays reachable. *)
let rhs_may_alias = function
  | Expr.Var _ | Expr.Tuple _ | Expr.Proj _ | Expr.If _ | Expr.Match _ -> true
  | Expr.Call { callee = Expr.Ctor _; _ }
  | Expr.Call { callee = Expr.Global _; _ }
  | Expr.Call { callee = Expr.Fn _; _ } ->
      true
  | _ -> false

let uses_any vids e =
  let found = ref false in
  Expr.iter
    (function
      | Expr.Var v when Int_set.mem v.Expr.vid vids -> found := true | _ -> ())
    e;
  !found

let alias_closure (barr : (Expr.var * Expr.t) array) start_vid =
  let set = ref (Int_set.singleton start_vid) in
  Array.iter
    (fun ((v : Expr.var), bound) ->
      if rhs_may_alias bound && uses_any !set bound then
        set := Int_set.add v.Expr.vid !set)
    barr;
  !set

(* Split the operands of a memory.invoke_* call into inputs and outs. *)
let split_outs attrs rest =
  let n = Nimble_ir.Attrs.get_int ~default:(List.length rest) attrs "num_inputs" in
  if n < 0 || n > List.length rest then None
  else
    let rec drop k l = if k = 0 then l else match l with [] -> [] | _ :: t -> drop (k - 1) t in
    Some (drop n rest)

let memory ?(planned = false) (m : Irmod.t) : Diag.t list =
  let diags = ref [] in
  let report fname fmt =
    Fmt.kstr
      (fun reason -> diags := Diag.v ~check:"memory" ~where_:fname reason :: !diags)
      fmt
  in
  (* vid of a [memory.bind_arena] result -> its slot count, so [plan_slot]
     tensor allocations can be bounds-checked *)
  let plan_slots : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let module Sx = Nimble_shape.Sym_expr in
  (* The symbolic dialect's soundness obligations on one bind_arena plan:
     parseable offset/size/total expressions, a binder for every free dim,
     monotone sizes (a larger dim never shrinks a slot — upper-bound
     evaluation stays sound), and no slot overlap or arena escape under
     sampled admissible bindings (zero, the units, a prime, an alignment
     boundary). *)
  let check_bind_arena fname (v : Expr.var) attrs =
    let parse what s =
      match Sx.of_string s with
      | e -> Some e
      | exception Sx.Parse_error msg ->
          report fname "bind_arena %%%s: unparseable %s: %s" v.Expr.vname what msg;
          None
    in
    let binder_ints =
      Option.value ~default:[] (Nimble_ir.Attrs.find_ints attrs "binders")
    in
    if List.length binder_ints mod 3 <> 0 then
      report fname "bind_arena %%%s: binders are not (arg, dim, sym) triples"
        v.Expr.vname;
    let rec syms_of = function
      | _ :: _ :: s :: rest -> s :: syms_of rest
      | _ -> []
    in
    let bound = syms_of binder_ints in
    let slot_pairs =
      match Nimble_ir.Attrs.find_str attrs "slots" with
      | None | Some "" ->
          report fname "bind_arena %%%s: missing slots" v.Expr.vname;
          []
      | Some s ->
          String.split_on_char ';' s
          |> List.filter_map (fun pair ->
                 match String.index_opt pair '|' with
                 | Some i -> (
                     match
                       ( parse "slot offset" (String.sub pair 0 i),
                         parse "slot size"
                           (String.sub pair (i + 1) (String.length pair - i - 1))
                       )
                     with
                     | Some o, Some s -> Some (o, s)
                     | _ -> None)
                 | None ->
                     report fname "bind_arena %%%s: malformed slot %S" v.Expr.vname
                       pair;
                     None)
    in
    let total =
      match Nimble_ir.Attrs.find_str attrs "total" with
      | Some s -> parse "total" s
      | None ->
          report fname "bind_arena %%%s: missing total" v.Expr.vname;
          None
    in
    let free =
      List.sort_uniq compare
        (List.concat_map (fun (o, s) -> Sx.free_dims o @ Sx.free_dims s) slot_pairs
        @ (match total with Some t -> Sx.free_dims t | None -> []))
    in
    List.iter
      (fun s ->
        if not (List.mem s bound) then
          report fname "bind_arena %%%s: symbolic dim s%d has no binder"
            v.Expr.vname s)
      free;
    List.iteri
      (fun i (_, size) ->
        if not (Sx.monotone size) then
          report fname "bind_arena %%%s: slot %d size %s is not monotone in its dims"
            v.Expr.vname i (Sx.to_string size))
      slot_pairs;
    (match total with
    | Some t when not (Sx.monotone t) ->
        report fname "bind_arena %%%s: total %s is not monotone in its dims"
          v.Expr.vname (Sx.to_string t)
    | _ -> ());
    (match total with
    | None -> ()
    | Some t ->
        let grid = [ 0; 1; 2; 7; 64 ] in
        let rec product = function
          | [] -> [ [] ]
          | d :: rest ->
              let tails = product rest in
              List.concat_map (fun g -> List.map (fun tl -> (d, g) :: tl) tails) grid
        in
        let assignments =
          if List.length free <= 3 then product free
          else List.map (fun g -> List.map (fun d -> (d, g)) free) grid
        in
        List.iter
          (fun asn ->
            let env s = Option.value ~default:0 (List.assoc_opt s asn) in
            let tot = Sx.eval env t in
            let evaled =
              List.mapi (fun i (o, s) -> (i, Sx.eval env o, Sx.eval env s)) slot_pairs
            in
            List.iter
              (fun (i, o, s) ->
                if o < 0 || s < 0 || o + s > tot then
                  report fname
                    "bind_arena %%%s: slot %d [%d,%d) escapes the arena total %d"
                    v.Expr.vname i o (o + s) tot)
              evaled;
            List.iter
              (fun (i, oi, zi) ->
                List.iter
                  (fun (j, oj, zj) ->
                    if j > i && zi > 0 && zj > 0 && oi < oj + zj && oj < oi + zi
                    then
                      report fname
                        "bind_arena %%%s: slots %d and %d overlap under a \
                         sampled binding"
                        v.Expr.vname i j)
                  evaled)
              evaled)
          assignments);
    Hashtbl.replace plan_slots v.Expr.vid (List.length slot_pairs)
  in
  (* [env] maps vid -> mkind; [killed] holds vids of killed tensors. Both
     are copied into branch sub-regions so branches check independently. *)
  let rec check_region ~planned fname (env : (int, mkind) Hashtbl.t)
      (killed : (int, unit) Hashtbl.t) (e : Expr.t) : unit =
    let bindings, term = chain_of e in
    let barr = Array.of_list bindings in
    let n = Array.length barr in
    let kind_of = function
      | Expr.Var v -> Hashtbl.find_opt env v.Expr.vid
      | _ -> None
    in
    let check_killed_uses what e =
      Hashtbl.iter
        (fun k () ->
          if Expr.uses_var k e then
            report fname "%s uses tensor #%d after memory.kill" what k)
        killed
    in
    let sub e = check_region ~planned fname (Hashtbl.copy env) (Hashtbl.copy killed) e in
    (* The planner does not descend into a terminal If/Match, so its
       leak/overlap contract does not apply there. *)
    let sub_unplanned e =
      check_region ~planned:false fname (Hashtbl.copy env) (Hashtbl.copy killed) e
    in
    Array.iter
      (fun ((v : Expr.var), bound) ->
        (match bound with
        | Expr.If (c, t, f) ->
            check_killed_uses ("binding of %" ^ v.Expr.vname) c;
            sub t;
            sub f;
            Hashtbl.replace env v.Expr.vid Kother
        | Expr.Match (s, clauses) ->
            check_killed_uses ("binding of %" ^ v.Expr.vname) s;
            List.iter (fun cl -> sub cl.Expr.rhs) clauses;
            Hashtbl.replace env v.Expr.vid Kother
        | Expr.Fn fn when not (Nimble_passes.Fusion.is_primitive fn) ->
            sub fn.Expr.body;
            Hashtbl.replace env v.Expr.vid Kother
        | _ -> (
            check_killed_uses ("binding of %" ^ v.Expr.vname) bound;
            match bound with
            | Expr.Call { callee = Expr.Op "memory.alloc_storage"; attrs; _ } ->
                Hashtbl.replace env v.Expr.vid
                  (Kstorage (Nimble_ir.Attrs.get_bool attrs "arena"))
            | Expr.Call { callee = Expr.Op "memory.bind_arena"; args; attrs } ->
                if args <> [] then
                  report fname "bind_arena %%%s takes no operands" v.Expr.vname;
                check_bind_arena fname v attrs;
                Hashtbl.replace env v.Expr.vid (Kstorage true)
            | Expr.Call
                { callee = Expr.Op "memory.alloc_tensor"; args = storage :: _; _ }
              -> (
                match storage with
                | Expr.Var sv -> (
                    match Hashtbl.find_opt env sv.Expr.vid with
                    | Some (Kstorage _) | None ->
                        (* None: storage from an enclosing region *)
                        Hashtbl.replace env v.Expr.vid (Ktensor sv.Expr.vid)
                    | Some (Ktensor _) | Some Kother ->
                        report fname
                          "alloc_tensor %%%s: storage operand %%%s is not a \
                           memory.alloc_storage result"
                          v.Expr.vname sv.Expr.vname)
                | _ ->
                    report fname
                      "alloc_tensor %%%s: storage operand is not a variable"
                      v.Expr.vname)
            | Expr.Call { callee = Expr.Op "memory.alloc_tensor"; _ } ->
                report fname "alloc_tensor %%%s has no storage operand" v.Expr.vname
            | Expr.Call
                {
                  callee = Expr.Op (("memory.invoke_mut" | "memory.invoke_shape_func") as opn);
                  args = _prim :: rest;
                  attrs;
                } -> (
                match split_outs attrs rest with
                | None ->
                    report fname "%s: num_inputs out of range (%d operands)" opn
                      (List.length rest)
                | Some outs ->
                    if outs = [] then
                      report fname "%s has no destination operands" opn;
                    List.iter
                      (fun out ->
                        match kind_of out with
                        | Some (Ktensor _) -> ()
                        | Some _ ->
                            report fname
                              "%s destination is not a manifestly allocated \
                               tensor"
                              opn
                        | None -> (
                            match out with
                            | Expr.Var ov ->
                                report fname
                                  "%s destination %%%s is not a manifestly \
                                   allocated tensor"
                                  opn ov.Expr.vname
                            | _ ->
                                report fname "%s destination is not a variable"
                                  opn))
                      outs)
            | Expr.Call { callee = Expr.Op "memory.kill"; args; _ } -> (
                match args with
                | [ Expr.Var kv ] -> (
                    (match Hashtbl.find_opt env kv.Expr.vid with
                    | Some (Ktensor _) | None -> ()
                    | Some _ ->
                        report fname "memory.kill of non-tensor %%%s" kv.Expr.vname);
                    match Hashtbl.find_opt killed kv.Expr.vid with
                    | Some () ->
                        report fname "double memory.kill of %%%s" kv.Expr.vname
                    | None -> Hashtbl.replace killed kv.Expr.vid ())
                | _ -> report fname "memory.kill expects a single variable operand")
            | Expr.Var w ->
                Hashtbl.replace env v.Expr.vid
                  (Option.value ~default:Kother (Hashtbl.find_opt env w.Expr.vid))
            | _ -> Hashtbl.replace env v.Expr.vid Kother)))
      barr;
    (match term with
    | Expr.If (c, t, f) ->
        check_killed_uses "terminal" c;
        sub_unplanned t;
        sub_unplanned f
    | Expr.Match (s, clauses) ->
        check_killed_uses "terminal" s;
        List.iter (fun cl -> sub_unplanned cl.Expr.rhs) clauses
    | _ -> check_killed_uses "terminal" term);
    if planned then begin
      (* -- planner contract (this region was planned) ---------------- *)
      (* (a) non-arena tensors that do not escape must be killed *)
      Array.iter
        (fun ((v : Expr.var), bound) ->
          match bound with
          | Expr.Call
              { callee = Expr.Op "memory.alloc_tensor"; args = Expr.Var sv :: _; _ }
            when (match Hashtbl.find_opt env sv.Expr.vid with
                 | Some (Kstorage true) -> false
                 | _ -> true)
                 && not (Expr.uses_var v.Expr.vid term)
                 && not (Hashtbl.mem killed v.Expr.vid) ->
              report fname
                "dynamically allocated tensor %%%s neither escapes nor is \
                 killed (leak)"
                v.Expr.vname
          | _ -> ())
        barr;
      (* (b) arena offsets must not overlap for live-range-intersecting
         tensors. Liveness is recomputed conservatively (alias-aware, like
         the planner), so a reported collision is a real one. *)
      let arena_tensors = ref [] in
      Array.iteri
        (fun i ((v : Expr.var), bound) ->
          match bound with
          | Expr.Call
              {
                callee = Expr.Op "memory.alloc_tensor";
                args = Expr.Var sv :: _;
                attrs;
              }
            when Hashtbl.find_opt env sv.Expr.vid = Some (Kstorage true) -> (
              match
                (Nimble_ir.Attrs.find_int attrs "offset",
                 Nimble_ir.Attrs.find_ints attrs "const_shape")
              with
              | Some offset, Some shape ->
                  let size =
                    Nimble_passes.Memory_plan.storage_size_bytes ~attrs
                      (Array.of_list shape)
                  in
                  let aliases = alias_closure barr v.Expr.vid in
                  let last = ref i in
                  Array.iteri
                    (fun j (_, b) ->
                      if j > i && uses_any aliases b then last := j)
                    barr;
                  if uses_any aliases term then last := n;
                  arena_tensors :=
                    (v, sv.Expr.vid, offset, size, i, !last) :: !arena_tensors
              | _ -> (
                  match Nimble_ir.Attrs.find_int attrs "plan_slot" with
                  | Some slot -> (
                      (* a symbolic slot: its overlap/escape obligations are
                         checked on the plan itself by [check_bind_arena] *)
                      match Hashtbl.find_opt plan_slots sv.Expr.vid with
                      | Some nslots when slot < 0 || slot >= nslots ->
                          report fname
                            "arena tensor %%%s names slot %d outside its \
                             plan's %d slots"
                            v.Expr.vname slot nslots
                      | _ -> ())
                  | None ->
                      report fname
                        "arena tensor %%%s lacks offset/const_shape attributes"
                        v.Expr.vname))
          | _ -> ())
        barr;
      let ts = List.rev !arena_tensors in
      List.iteri
        (fun i (v1, a1, o1, s1, b1, l1) ->
          List.iteri
            (fun j (v2, a2, o2, s2, b2, l2) ->
              if
                j > i && a1 = a2
                && o1 < o2 + s2 && o2 < o1 + s1 (* byte ranges intersect *)
                && b1 <= l2 && b2 <= l1 (* live ranges intersect *)
              then
                report fname
                  "arena tensors %%%s [%d,%d) and %%%s [%d,%d) overlap while \
                   both live"
                  (v1 : Expr.var).Expr.vname o1 (o1 + s1) (v2 : Expr.var).Expr.vname
                  o2 (o2 + s2))
            ts)
        ts
    end
  in
  List.iter
    (fun (fname, (fn : Expr.fn)) ->
      let env = Hashtbl.create 64 in
      let killed = Hashtbl.create 8 in
      check_region ~planned fname env killed fn.Expr.body)
    (Irmod.functions m);
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Device placement (§4.4)                                             *)
(* ------------------------------------------------------------------ *)

let cpu = 0

let device ?(shape_func_device = cpu) (m : Irmod.t) : Diag.t list =
  let diags = ref [] in
  let report fname fmt =
    Fmt.kstr
      (fun reason -> diags := Diag.v ~check:"device" ~where_:fname reason :: !diags)
      fmt
  in
  List.iter
    (fun (fname, (fn : Expr.fn)) ->
      (* vid -> concrete device; shared across branches, like the pass. *)
      let domains : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let dom (v : Expr.var) = Hashtbl.find_opt domains v.Expr.vid in
      let set (v : Expr.var) d = Hashtbl.replace domains v.Expr.vid d in
      (* A use of [a] on device [d]: concrete conflicting domains are
         violations (the pass would have materialized a device_copy);
         unconstrained values late-bind, mirroring the pass. *)
      let check what a d =
        match a with
        | Expr.Var v -> (
            match dom v with
            | Some d' when d' <> d ->
                report fname
                  "%s: %%%s lives on device %d but is used on device %d \
                   without a device_copy"
                  what v.Expr.vname d' d
            | Some _ -> ()
            | None -> set v d)
        | Expr.Const _ when d <> cpu ->
            report fname
              "%s: constant reaches device %d without a device_copy" what d
        | _ -> ()
      in
      let rec walk e =
        match e with
        | Expr.Let (v, bound, body) ->
            walk_binding v bound;
            walk body
        | Expr.If (c, t, f) ->
            check "if condition" c cpu;
            walk t;
            walk f
        | Expr.Match (_, clauses) ->
            (* the pass places no constraint on the scrutinee *)
            List.iter (fun cl -> walk cl.Expr.rhs) clauses
        | _ -> ()
      and walk_binding (v : Expr.var) bound =
        match bound with
        | Expr.Call { callee = Expr.Op "shape_of"; _ } -> set v cpu
        | Expr.Call
            { callee = Expr.Op "memory.invoke_shape_func"; args = _ :: ins; _ } ->
            List.iter (fun a -> check "shape-function operand" a shape_func_device) ins;
            set v cpu
        | Expr.Call { callee = Expr.Op "memory.alloc_storage"; args; attrs } ->
            List.iter (fun a -> check "alloc_storage operand" a cpu) args;
            set v (Nimble_ir.Attrs.get_int ~default:0 attrs "device")
        | Expr.Call { callee = Expr.Op "memory.bind_arena"; attrs; _ } ->
            set v (Nimble_ir.Attrs.get_int ~default:0 attrs "device")
        | Expr.Call
            { callee = Expr.Op "memory.alloc_tensor"; args = storage :: more; _ }
          ->
            (match storage with
            | Expr.Var sv -> ( match dom sv with Some d -> set v d | None -> ())
            | _ -> ());
            List.iter (fun a -> check "alloc_tensor operand" a cpu) more
        | Expr.Call { callee = Expr.Op "memory.invoke_mut"; args = _ :: rest; attrs }
          ->
            let dev = Nimble_ir.Attrs.get_int ~default:0 attrs "device" in
            List.iter (fun a -> check "kernel operand" a dev) rest;
            set v cpu
        | Expr.Call { callee = Expr.Op "device_copy"; args; attrs } ->
            let src = Nimble_ir.Attrs.get_int ~default:0 attrs "src_device" in
            List.iter (fun a -> check "device_copy source" a src) args;
            set v (Nimble_ir.Attrs.get_int ~default:0 attrs "dst_device")
        | Expr.Call { callee = Expr.Ctor _; _ } -> set v cpu
        | Expr.Var w -> ( match dom w with Some d -> set v d | None -> ())
        | Expr.If (c, t, f) ->
            check "if condition" c cpu;
            walk t;
            walk f
        | Expr.Match (_, clauses) ->
            List.iter (fun cl -> walk cl.Expr.rhs) clauses
        | Expr.Fn f when not (Nimble_passes.Fusion.is_primitive f) ->
            List.iter (fun (p : Expr.var) -> set p cpu) f.Expr.params;
            walk f.Expr.body
        | _ -> ()
      in
      List.iter (fun (p : Expr.var) -> set p cpu) fn.Expr.params;
      walk fn.Expr.body)
    (Irmod.functions m);
  List.rev !diags
