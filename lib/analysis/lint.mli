(** IR-dialect lints: well-formedness checks for the mid-level dialects the
    lowering passes introduce, run after each pass when
    [Nimble.options.verify_passes] is on. Each lint re-checks the invariant
    its pass is supposed to establish, so a pass regression surfaces as a
    located diagnostic right after the pass instead of as a miscompiled
    executable three passes later. See [docs/ANALYSIS.md]. *)

open Nimble_ir

(** Fusion-policy lint (run after [Fusion], paper §4.2): every fused
    primitive with more than one member op must be data-independent — an op
    whose shape function needs {e values} may not be grouped, because the
    shape function would need access to intermediate results of the fused
    group. Diagnostics are located at [function/primitive_name]. *)
val fusion : Irmod.t -> Diag.t list

(** Memory-dialect lint (run after [Manifest_alloc] and again, with
    [planned:true], after [Memory_plan]; paper §4.3):

    - [memory.alloc_tensor] storage operands name a [memory.alloc_storage]
      (or arena) binding;
    - [memory.invoke_mut] / [memory.invoke_shape_func] destination operands
      (the arguments past the [num_inputs] prefix) name manifestly
      allocated tensors;
    - no tensor is used after a [memory.kill] of its binding, no tensor is
      killed twice, and only tensors are killed.

    With [planned:true] it additionally checks the planner's contract:

    - every dynamically-allocated (non-arena) tensor that does not escape
      the region is killed after its last use (no leaks);
    - arena offsets do not overlap for tensors whose (alias-aware) liveness
      intervals intersect — the first-fit packing is collision-free.

    Branches are checked as sub-regions, mirroring the planner. *)
val memory : ?planned:bool -> Irmod.t -> Diag.t list

(** Device-placement lint (run after [Device_place], paper §4.4): replays
    the placement rules over the placed module and reports any value used
    on a device other than the one it lives on without an intervening
    [device_copy] — shape functions and their operands on
    [shape_func_device] (default CPU, matching the pass), kernel operands
    on the kernel's device, storage on its designated device, control-flow
    scalars and constants on CPU. *)
val device : ?shape_func_device:int -> Irmod.t -> Diag.t list
