(** Located diagnostics for the verifier and lints (see [diag.mli]). *)

type t = {
  d_check : string;
  d_where : string;
  d_pc : int;
  d_reason : string;
}

let v ~check ~where_ ?(pc = -1) reason =
  { d_check = check; d_where = where_; d_pc = pc; d_reason = reason }

let pp ppf d =
  if d.d_pc >= 0 then
    Fmt.pf ppf "%s:%s@%d: %s" d.d_check d.d_where d.d_pc d.d_reason
  else Fmt.pf ppf "%s:%s: %s" d.d_check d.d_where d.d_reason

let to_string d = Fmt.str "%a" pp d
