(** Shape-value dominance classification (see [classify.mli]).

    The pass walks each function's let chains with a forward abstract
    interpretation hosted on the shared {!Dataflow} engine and tracks which
    tensor *values* are statically known — constants, shape vectors of
    tensors whose dims are resolved ([Static]/[Sym]), and scalars sliced
    out of such vectors. An operator call site whose shape function is
    registered [Data_dep] but whose value inputs are all dominated by this
    static knowledge is *proven*: its attributes get a
    {!Nimble_shape.Shape_func.proven_attr} stamp, and the binding's type is
    refined from [Any] dims to the proven [Static]/[Sym] dims. Fusion,
    manifest allocation, memory planning and the emitter all consult the
    stamp through {!Nimble_shape.Shape_func.classify}. *)

open Nimble_tensor
open Nimble_ir
module Shape_func = Nimble_shape.Shape_func

(* ------------------------------------------------------------------ *)
(* Abstract domain                                                     *)
(* ------------------------------------------------------------------ *)

(** What we know about a tensor's *value* at compile time. Absence from the
    environment means "unknown" (top). *)
type aval =
  | Known of Tensor.t  (** a compile-time constant *)
  | Dims of Dim.t array
      (** a rank-1 integer vector equal to these dims (a [shape_of] result
          or a slice of one); every element is [Static] or [Sym] *)
  | Scalar_dim of Dim.t  (** a rank-0 scalar equal to this dim *)

module Int_map = Map.Make (Int)

(** Per-program-point state: value knowledge plus dim refinements that are
    strictly sharper than the inferred [vty] (e.g. an [arange] output whose
    extent is proven to be a parameter's [Sym] dim). *)
type st = { vals : aval Int_map.t; dims : Dim.t array Int_map.t }

let empty_st = { vals = Int_map.empty; dims = Int_map.empty }

let aval_equal a b =
  match (a, b) with
  | Known x, Known y -> x == y
  | Dims x, Dims y -> x = y
  | Scalar_dim x, Scalar_dim y -> x = y
  | (Known _ | Dims _ | Scalar_dim _), _ -> false

let st_equal a b =
  Int_map.equal aval_equal a.vals b.vals && Int_map.equal ( = ) a.dims b.dims

(* Must-knowledge: the join keeps only facts both paths agree on. Let
   chains are join-free (each binding has one flow predecessor), but the
   engine contract requires a real lattice join. *)
let join_st a b =
  let keep eq _ x y = match (x, y) with Some v, Some w when eq v w -> Some v | _ -> None in
  {
    vals = Int_map.merge (keep aval_equal) a.vals b.vals;
    dims = Int_map.merge (keep ( = )) a.dims b.dims;
  }

(* ------------------------------------------------------------------ *)
(* Queries on atoms                                                    *)
(* ------------------------------------------------------------------ *)

let static_dims t = Array.map (fun n -> Dim.Static n) (Tensor.shape t)

(** Best known dims of an atom: the refinement table first, the inferred
    type otherwise. *)
let atom_dims st = function
  | Expr.Const t -> Some (static_dims t)
  | Expr.Var v -> (
      match Int_map.find_opt v.Expr.vid st.dims with
      | Some d -> Some d
      | None -> (
          match v.Expr.vty with
          | Some (Ty.Tensor { dims; _ }) -> Some dims
          | _ -> None))
  | _ -> None

let atom_val st = function
  | Expr.Const t -> Some (Known t)
  | Expr.Var v -> Int_map.find_opt v.Expr.vid st.vals
  | _ -> None

(** Scalar knowledge of an atom: a concrete float, or a symbolic dim. *)
let scalar_of st a =
  match atom_val st a with
  | Some (Known t) when Tensor.numel t = 1 -> Some (`F (Tensor.item t))
  | Some (Scalar_dim (Dim.Static n)) | Some (Dims [| Dim.Static n |]) ->
      Some (`F (float_of_int n))
  | Some (Scalar_dim d) | Some (Dims [| d |]) -> Some (`D d)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Conservative dim propagation for data-independent ops               *)
(* ------------------------------------------------------------------ *)

let identity_shape_ops =
  [
    "negative"; "abs"; "exp"; "log"; "sqrt"; "tanh"; "sigmoid"; "relu"; "gelu";
    "erf"; "cast"; "softmax"; "log_softmax"; "logical_not"; "layer_norm";
    "batch_norm"; "bias_add"; "device_copy";
  ]

let broadcast_ops =
  [
    "add"; "subtract"; "multiply"; "divide"; "maximum"; "minimum"; "power";
    "equal"; "less"; "greater"; "less_equal"; "greater_equal"; "not_equal";
    "logical_and"; "logical_or";
  ]

let broadcast_dims a b =
  let ra = Array.length a and rb = Array.length b in
  let r = Stdlib.max ra rb in
  let ok = ref true in
  let out =
    Array.init r (fun i ->
        let da = if i + ra >= r then a.(i + ra - r) else Dim.Static 1 in
        let db = if i + rb >= r then b.(i + rb - r) else Dim.Static 1 in
        match Dim.broadcast da db with
        | Some d -> d
        | None ->
            ok := false;
            Dim.Any)
  in
  if !ok then Some out else None

let norm_axis ~rank axis = if axis < 0 then axis + rank else axis

(* Refined output dims of a [Data_indep] op call, from refined input dims.
   This deliberately re-derives only the rules the dominance pass needs —
   the full typing relations already ran; here we only sharpen [Any]. *)
let indep_out_dims st name args attrs : Dim.t array option =
  let d0 () = match args with a :: _ -> atom_dims st a | [] -> None in
  match name with
  | _ when List.mem name identity_shape_ops -> d0 ()
  | _ when List.mem name broadcast_ops -> (
      match args with
      | [ a; b ] -> (
          match (atom_dims st a, atom_dims st b) with
          | Some da, Some db -> broadcast_dims da db
          | _ -> None)
      | _ -> None)
  | "where" -> (
      match args with
      | [ c; a; b ] -> (
          match (atom_dims st c, atom_dims st a, atom_dims st b) with
          | Some dc, Some da, Some db ->
              Option.bind (broadcast_dims dc da) (fun d -> broadcast_dims d db)
          | _ -> None)
      | _ -> None)
  | "expand_dims" ->
      Option.bind (d0 ()) (fun d ->
          let r = Array.length d in
          let a = norm_axis ~rank:(r + 1) (Attrs.get_int ~default:0 attrs "axis") in
          if a < 0 || a > r then None
          else
            Some
              (Array.init (r + 1) (fun i ->
                   if i < a then d.(i) else if i = a then Dim.Static 1 else d.(i - 1))))
  | "squeeze" ->
      Option.bind (d0 ()) (fun d ->
          let r = Array.length d in
          let a = norm_axis ~rank:r (Attrs.get_int ~default:0 attrs "axis") in
          if a < 0 || a >= r then None
          else
            Some (Array.init (r - 1) (fun i -> if i < a then d.(i) else d.(i + 1))))
  | "transpose" ->
      Option.bind (d0 ()) (fun d ->
          let r = Array.length d in
          let axes =
            match Attrs.find_ints attrs "axes" with
            | Some a -> Array.of_list a
            | None -> Array.init r (fun i -> r - 1 - i)
          in
          if Array.length axes <> r then None
          else
            let ok = ref true in
            let out =
              Array.map
                (fun ax ->
                  let ax = norm_axis ~rank:r ax in
                  if ax < 0 || ax >= r then begin
                    ok := false;
                    Dim.Any
                  end
                  else d.(ax))
                axes
            in
            if !ok then Some out else None)
  | "dense" -> (
      match args with
      | [ a; w ] -> (
          match (atom_dims st a, atom_dims st w) with
          | Some da, Some dw when Array.length da = 2 && Array.length dw = 2 ->
              Some [| da.(0); dw.(0) |]
          | _ -> None)
      | _ -> None)
  | "matmul" -> (
      match args with
      | [ a; b ] -> (
          match (atom_dims st a, atom_dims st b) with
          | Some da, Some db when Array.length da = 2 && Array.length db = 2 ->
              Some [| da.(0); db.(1) |]
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Dominance proofs for data-dependent sites                           *)
(* ------------------------------------------------------------------ *)

(** Try to prove a [Data_dep] call site's output shape without runtime
    values. Returns the proof name and the proven output dims. *)
let prove st name args attrs : (string * Dim.t array) option =
  match (name, args) with
  | "arange", [ a; b; c ] -> (
      match (scalar_of st a, scalar_of st b, scalar_of st c) with
      | Some (`F start), Some (`F stop), Some (`F step) when step <> 0.0 ->
          let n = Stdlib.max 0 (int_of_float (Float.ceil ((stop -. start) /. step))) in
          Some ("static", [| Dim.Static n |])
      | Some (`F start), Some (`D (Dim.Sym _ as d)), Some (`F step)
        when start = 0.0 && step = 1.0 ->
          (* arange(0, n, 1) has exactly n elements for n >= 0 *)
          Some ("sym", [| d |])
      | _ -> None)
  | _ -> (
      (* generic fallback: every input value is a compile-time constant, so
         the shape function itself can run now *)
      let vals = List.map (atom_val st) args in
      if
        vals <> []
        && List.for_all (function Some (Known _) -> true | _ -> false) vals
      then
        let ins =
          List.map
            (function Some (Known t) -> Shape_func.with_data t | _ -> assert false)
            vals
        in
        match Shape_func.run name ~attrs ins with
        | [ shape ] -> Some ("static", Array.map (fun n -> Dim.Static n) shape)
        | _ -> None
        | exception Shape_func.Shape_func_error _ -> None
      else None)

(* Sites the classification table counts: kernel ops whose registered shape
   function needs runtime values. [reshape_tensor] is a VM dialect op (it
   becomes its own instruction), so it is not a classification candidate. *)
let dialect_sites = [ "reshape_tensor" ]

let countable_site name =
  (not (List.mem name dialect_sites))
  &&
  match Shape_func.find name with
  | Some { Shape_func.mode = Shape_func.Data_dep | Shape_func.Upper_bound; _ } -> true
  | Some { Shape_func.mode = Shape_func.Data_indep; _ } | None -> false

(* ------------------------------------------------------------------ *)
(* Transfer function                                                   *)
(* ------------------------------------------------------------------ *)

let bind_st st (v : Expr.var) (value : aval option) (dims : Dim.t array option) =
  let vals =
    match value with Some a -> Int_map.add v.Expr.vid a st.vals | None -> st.vals
  in
  let dims =
    match dims with Some d -> Int_map.add v.Expr.vid d st.dims | None -> st.dims
  in
  { vals; dims }

(** Abstract effect of one binding, shared by the engine's transfer and the
    stamping sweep. Pure: only reads [st]. *)
let eval_bound st (bound : Expr.t) : aval option * Dim.t array option =
  match bound with
  | Expr.Const t -> (Some (Known t), Some (static_dims t))
  | Expr.Var _ -> (atom_val st bound, atom_dims st bound)
  | Expr.Call { callee = Expr.Op "shape_of"; args = [ x ]; _ } ->
      let value =
        match atom_dims st x with
        | Some d when Array.for_all (fun dd -> dd <> Dim.Any) d -> Some (Dims d)
        | _ -> None
      in
      let dims =
        match atom_dims st x with
        | Some d -> Some [| Dim.Static (Array.length d) |]
        | None -> None
      in
      (value, dims)
  | Expr.Call { callee = Expr.Op name; args; attrs } ->
      let value =
        match (name, args) with
        | "strided_slice", [ x ] -> (
            match (atom_val st x, Attrs.get_ints ~default:[] attrs "begins", Attrs.get_ints ~default:[] attrs "ends") with
            | Some (Dims dv), [ b ], [ e ] ->
                let len = Array.length dv in
                let norm i = if i < 0 then i + len else i in
                let lo = Stdlib.max 0 (Stdlib.min (norm b) len) in
                let hi = Stdlib.max lo (Stdlib.min (norm e) len) in
                Some (Dims (Array.sub dv lo (hi - lo)))
            | _ -> None)
        | "squeeze", [ x ] -> (
            match atom_val st x with
            | Some (Dims [| d |]) when norm_axis ~rank:1 (Attrs.get_int ~default:0 attrs "axis") = 0 ->
                Some (Scalar_dim d)
            | _ -> None)
        | "expand_dims", [ x ] -> (
            match atom_val st x with
            | Some (Scalar_dim d) when Attrs.get_int ~default:0 attrs "axis" = 0 -> Some (Dims [| d |])
            | _ -> None)
        | "cast", [ x ] -> (
            match atom_val st x with
            | Some ((Dims _ | Scalar_dim _) as k) -> Some k
            | _ -> None)
        | _ -> None
      in
      let dims =
        match Shape_func.find name with
        | Some { Shape_func.mode = Shape_func.Data_indep; _ } ->
            indep_out_dims st name args attrs
        | Some { Shape_func.mode = Shape_func.Data_dep; _ }
          when not (List.mem name dialect_sites) ->
            Option.map snd (prove st name args attrs)
        | _ -> None
      in
      (value, dims)
  | _ -> (None, None)

let step st ((v : Expr.var), bound) =
  let value, dims = eval_bound st bound in
  bind_st st v value dims

(* ------------------------------------------------------------------ *)
(* The pass: solve each chain on the engine, then stamp and refine     *)
(* ------------------------------------------------------------------ *)

type fn_stat = {
  cs_fn : string;
  cs_sites : int;  (** data-dependent / upper-bound op call sites *)
  cs_proven : int;  (** sites upgraded to proven-static *)
}

type summary = { per_fn : fn_stat list; sites_total : int; classified_static : int }

type acc = { mutable a_sites : int; mutable a_proven : int }

let rec chain_of (e : Expr.t) =
  match e with
  | Expr.Let (v, bound, body) ->
      let bs, term = chain_of body in
      ((v, bound) :: bs, term)
  | _ -> ([], e)

let rec rebuild bindings term =
  match bindings with
  | [] -> term
  | (v, bound) :: rest -> Expr.Let (v, bound, rebuild rest term)

(** Refine a binding's inferred type in place: replace [Any] dims with the
    proven dims; never override what inference already resolved. *)
let refine_vty (v : Expr.var) (odims : Dim.t array) =
  match v.Expr.vty with
  | Some (Ty.Tensor { dims; dtype }) when Array.length dims = Array.length odims ->
      let sharper = ref false in
      let merged =
        Array.mapi
          (fun i d ->
            match d with
            | Dim.Any when odims.(i) <> Dim.Any ->
                sharper := true;
                odims.(i)
            | d -> d)
          dims
      in
      if !sharper then v.Expr.vty <- Some (Ty.Tensor { dims = merged; dtype })
  | _ -> ()

let rec process_region acc (entry : st) (e : Expr.t) : Expr.t =
  let bindings, term = chain_of e in
  match bindings with
  | [] -> process_tail acc entry term
  | _ ->
      let barr = Array.of_list bindings in
      let n = Array.length barr in
      (* A let chain is a linear CFG over binding indices; the engine's
         fixpoint degenerates to one forward sweep, which is exactly the
         abstract interpretation we want — and branches below re-enter
         [process_region] with a state snapshot, keeping regions join-free. *)
      let states =
        Dataflow.solve ~direction:Dataflow.Forward ~num_nodes:n
          ~successors:(fun i -> if i + 1 < n then [ i + 1 ] else [])
          ~transfer:(fun i r -> ref (step !r barr.(i)))
          ~copy:(fun r -> ref !r)
          ~join_into:(fun ~into out ->
            let joined = join_st !into !out in
            if st_equal joined !into then false
            else begin
              into := joined;
              true
            end)
          ~seeds:[ (0, ref entry) ]
      in
      let state_at i = match states.(i) with Some r -> !r | None -> entry in
      let rebuilt =
        List.mapi
          (fun i (v, bound) -> (v, sweep_binding acc (state_at i) v bound))
          bindings
      in
      let final = step (state_at (n - 1)) barr.(n - 1) in
      rebuild rebuilt (process_tail acc final term)

(* Rebuild one binding with its in-state: stamp proven sites, refine the
   binding's type from anything the abstract interpretation sharpened, and
   recurse into nested regions. *)
and sweep_binding acc st (v : Expr.var) (bound : Expr.t) : Expr.t =
  match bound with
  | Expr.If (c, t, f) -> Expr.If (c, process_region acc st t, process_region acc st f)
  | Expr.Match (s, clauses) ->
      Expr.Match
        ( s,
          List.map
            (fun cl -> { cl with Expr.rhs = process_region acc st cl.Expr.rhs })
            clauses )
  | Expr.Fn fn ->
      Expr.Fn { fn with Expr.body = process_region acc st fn.Expr.body }
  | Expr.Call { callee = Expr.Op name; args; attrs } when countable_site name ->
      acc.a_sites <- acc.a_sites + 1;
      let data_dep = Shape_func.mode_of name = Shape_func.Data_dep in
      (match (if data_dep then prove st name args attrs else None) with
      | Some (proof, odims) ->
          acc.a_proven <- acc.a_proven + 1;
          refine_vty v odims;
          Expr.Call
            {
              callee = Expr.Op name;
              args;
              attrs = Attrs.set attrs Shape_func.proven_attr (Attrs.Str proof);
            }
      | None -> bound)
  | _ ->
      (match snd (eval_bound st bound) with
      | Some odims -> refine_vty v odims
      | None -> ());
      bound

and process_tail acc st (term : Expr.t) : Expr.t =
  match term with
  | Expr.If (c, t, f) -> Expr.If (c, process_region acc st t, process_region acc st f)
  | Expr.Match (s, clauses) ->
      Expr.Match
        ( s,
          List.map
            (fun cl -> { cl with Expr.rhs = process_region acc st cl.Expr.rhs })
            clauses )
  | Expr.Call { callee = Expr.Op name; _ } when countable_site name ->
      (* a terminal call site is never let-bound, so there is nothing to
         refine or stamp usefully; count it as an (unproven) site *)
      acc.a_sites <- acc.a_sites + 1;
      term
  | _ -> term

(** Run the pass over a module (in place): stamps proven sites, refines
    binding types, and returns the per-function classification counts. *)
let run (m : Irmod.t) : summary =
  let per_fn = ref [] in
  Irmod.map_funcs m (fun name fn ->
      let acc = { a_sites = 0; a_proven = 0 } in
      let body = process_region acc empty_st fn.Expr.body in
      per_fn := { cs_fn = name; cs_sites = acc.a_sites; cs_proven = acc.a_proven } :: !per_fn;
      { fn with Expr.body = body });
  let per_fn = List.rev !per_fn in
  {
    per_fn;
    sites_total = List.fold_left (fun a s -> a + s.cs_sites) 0 per_fn;
    classified_static = List.fold_left (fun a s -> a + s.cs_proven) 0 per_fn;
  }

(* ------------------------------------------------------------------ *)
(* Post-fusion accounting                                              *)
(* ------------------------------------------------------------------ *)

(** Fused groups (>1 op) containing a proven formerly-dynamic site — the
    fusions the dominance pass unlocked. *)
let fn_fused_across_dynamic (fn : Expr.fn) : int =
  List.length
    (List.filter
       (fun (prim : Expr.fn) ->
         List.length (Nimble_passes.Fusion.primitive_ops prim) > 1
         &&
         let proven = ref false in
         Expr.iter
           (function
             | Expr.Call { callee = Expr.Op _; attrs; _ }
               when Attrs.find_str attrs Shape_func.proven_attr <> None ->
                 proven := true
             | _ -> ())
           prim.Expr.body;
         !proven)
       (Nimble_passes.Fusion.primitives_of fn.Expr.body))

let fused_across_dynamic (m : Irmod.t) : int =
  List.fold_left
    (fun a (_, fn) -> a + fn_fused_across_dynamic fn)
    0 (Irmod.functions m)

let pp_summary ppf (s : summary) =
  Fmt.pf ppf "%-24s %12s %12s@." "function" "sites" "proven";
  List.iter
    (fun f -> Fmt.pf ppf "%-24s %12d %12d@." f.cs_fn f.cs_sites f.cs_proven)
    s.per_fn;
  Fmt.pf ppf "%-24s %12d %12d@." "total" s.sites_total s.classified_static
