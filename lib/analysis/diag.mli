(** Located diagnostics shared by the bytecode verifier and the IR-dialect
    lints: every violation names the check that produced it, the function
    (or IR path) it was found in, and — for bytecode — the program counter,
    so a report reads like [bytecode:main@7: read of undefined register $3].
    See [docs/ANALYSIS.md] for how to read (and provoke) them. *)

(** One violation. [d_pc] is an instruction index for bytecode diagnostics
    and [-1] for IR-level ones, mirroring the [-1]-at-entry convention of
    [Nimble_vm.Interp.failure]. *)
type t = {
  d_check : string;  (** producing check: ["bytecode"], ["memory"], ... *)
  d_where : string;  (** function name, possibly with an IR path suffix *)
  d_pc : int;  (** instruction index, [-1] for IR-level diagnostics *)
  d_reason : string;  (** human-readable description of the violation *)
}

(** Build a diagnostic; [pc] defaults to [-1] (IR-level). *)
val v : check:string -> where_:string -> ?pc:int -> string -> t

(** One-line rendering: [check:where@pc: reason] (the [@pc] part is
    omitted for IR-level diagnostics). *)
val pp : Format.formatter -> t -> unit

(** {!pp} as a string, for error payloads and tests. *)
val to_string : t -> string
