(** Generic worklist dataflow engine (see [dataflow.mli]): the fixpoint
    skeleton shared by the bytecode verifier's forward must-analysis, the
    register compactor's backward liveness, and the shape-value dominance
    classifier. Clients supply the lattice operations ([join_into], [copy]),
    the per-node [transfer], the CFG ([successors]) and the seed states;
    the engine owns the worklist and the convergence argument (any monotone
    transfer over a finite-height join semilattice reaches the unique least
    fixpoint regardless of iteration order). *)

type direction = Forward | Backward

let solve (type st) ~(direction : direction) ~(num_nodes : int)
    ~(successors : int -> int list) ~(transfer : int -> st -> st)
    ~(copy : st -> st) ~(join_into : into:st -> st -> bool)
    ~(seeds : (int * st) list) : st option array =
  let n = max num_nodes 1 in
  (* Flow edges: in [Forward] mode information moves along CFG edges; in
     [Backward] mode it moves against them, so invert the successor map
     once up front instead of asking clients for a predecessor function. *)
  let flow_succs =
    match direction with
    | Forward ->
        fun node ->
          List.filter (fun s -> s >= 0 && s < num_nodes) (successors node)
    | Backward ->
        let preds = Array.make n [] in
        for node = 0 to num_nodes - 1 do
          List.iter
            (fun s -> if s >= 0 && s < num_nodes then preds.(s) <- node :: preds.(s))
            (successors node)
        done;
        fun node -> preds.(node)
  in
  let states : st option array = Array.make n None in
  let work = Queue.create () in
  let enqueue node = Queue.add node work in
  List.iter
    (fun (node, st) ->
      if node >= 0 && node < num_nodes then begin
        (match states.(node) with
        | None -> states.(node) <- Some (copy st)
        | Some old -> ignore (join_into ~into:old st : bool));
        enqueue node
      end)
    seeds;
  while not (Queue.is_empty work) do
    let node = Queue.pop work in
    match states.(node) with
    | None -> ()
    | Some st ->
        let out = transfer node st in
        List.iter
          (fun succ ->
            match states.(succ) with
            | None ->
                states.(succ) <- Some (copy out);
                enqueue succ
            | Some old -> if join_into ~into:old out then enqueue succ)
          (flow_succs node)
  done;
  states
