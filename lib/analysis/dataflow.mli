(** Reusable forward/backward worklist dataflow engine.

    The engine computes, for every node of a CFG given as [successors] over
    node indices [0 .. num_nodes-1], the least fixpoint of

    {[ state(n) = join over flow-predecessors p of transfer(p, state(p)) ]}

    starting from the [seeds]. [state(n)] is the {e in}-state of node [n] in
    the direction of information flow: for a [Forward] analysis that is the
    usual in-state (what holds before executing [n]); for a [Backward]
    analysis it is the out-state in program order (e.g. live-out for
    liveness), since flow there enters a node from its CFG successors.

    Client obligations for the fixpoint to exist and be unique:
    - [join_into ~into s] must compute the lattice join of [into] and [s]
      {e in place} in [into], returning [true] iff [into] changed — the
      engine re-enqueues a node only when its state grew;
    - [transfer] must be monotone and must {e not} mutate its input state
      (return a fresh value; [copy] is how the engine duplicates states it
      stores);
    - the lattice must have finite height (no infinite ascending chains).

    Nodes never reached from a seed keep state [None] — for a must-analysis
    that reads as "unreachable, nothing to check"; a client that wants every
    node processed (liveness does: dead code still renames registers) seeds
    all nodes with bottom. Successor indices outside the node range are
    ignored; structurally invalid edges are the verifier's business. *)

type direction = Forward | Backward

(** [solve ~direction ~num_nodes ~successors ~transfer ~copy ~join_into
    ~seeds] runs the worklist to fixpoint and returns the per-node states.
    [successors] always describes CFG (program-order) successors; in
    [Backward] mode the engine inverts the edge map once internally. *)
val solve :
  direction:direction ->
  num_nodes:int ->
  successors:(int -> int list) ->
  transfer:(int -> 'st -> 'st) ->
  copy:('st -> 'st) ->
  join_into:(into:'st -> 'st -> bool) ->
  seeds:(int * 'st) list ->
  'st option array
