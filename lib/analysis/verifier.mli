(** Bytecode verifier: a classic dataflow verification pass over the VM's
    20-instruction ISA, run on every compiler-emitted executable (when
    [Nimble.options.verify_passes] is on) and on every deserialized one
    (via {!of_bytes} / {!load_file}, the loading path [Serve.Cache] and
    the CLI use).

    Per function it proves, over the control-flow graph formed by the
    [If]/[Goto] relative jumps:

    - every register read is {e defined on every path} reaching the read
      (must-analysis: the defined-register set at a join is the
      intersection of the incoming sets; the first [arity] registers are
      defined at entry);
    - every jump target is in bounds and no path falls off the end of the
      code — every path terminates in [Ret] or [Fatal];
    - every embedded index is valid: [func_index] (with [Invoke] arity
      agreement and [AllocClosure] capture counts), [packed_index],
      constant-pool indices, [device_id]s against the device registry, and
      [GetField] indices against the field count where the object's
      allocation site is statically known;
    - [InvokePacked] out-registers hold tensors defined by a prior
      [AllocTensor]/[AllocTensorReg] on every path (the §4.3 invariant
      that kernels write only into manifestly-allocated destinations), and
      [AllocTensor] storage operands come from a prior [AllocStorage].

    Beyond the per-function checks it validates the executable's symbolic
    memory plans and its persisted tune table (NMBLEXE4): every decision
    must target a declared packed {e kernel} with a positive extent, a
    tile width in [1, 256], and no duplicate (kernel, extent) rows — a
    corrupt tune table is rejected at load instead of silently steering
    live dispatch.

    This subsumes the structural checks of [Nimble_vm.Exe.validate] with
    path-sensitive ones; see [docs/ANALYSIS.md]. *)

(** Raised by {!verify_exn} (and the loading wrappers) with the full list
    of located violations — the typed rejection the loader surfaces
    instead of letting a corrupt executable reach the interpreter. *)
exception Verify_error of Diag.t list

(** All violations in an executable, in (function, pc) order; [[]] means
    the executable verifies. Runs on the platform-independent part only,
    so it works on unlinked (freshly deserialized) executables. *)
val verify : Nimble_vm.Exe.t -> Diag.t list

(** The cross-function slice of {!verify} on its own: ADT arity checking
    across [Invoke] and closure boundaries. Each function parameter is
    summarized by the join over every visible call site of what the
    argument register holds ([Invoke] arguments; [AllocClosure] captured
    prefixes — parameters past the prefix are filled at [InvokeClosure]
    sites this summary does not track and degrade to unknown), and the
    register must-analysis reruns with the refined entry so a [GetField]
    whose object is a constructor built in a {e caller} is bounds-checked
    too. Parameters with no visible call site stay unconstrained: the
    interpreter can invoke any function by name, so external entry points
    must not be speculated about. Only violations invisible to the
    per-function pass are reported. *)
val verify_cross_adt : Nimble_vm.Exe.t -> Diag.t list

(** @raise Verify_error when {!verify} finds any violation. *)
val verify_exn : Nimble_vm.Exe.t -> unit

(** [Nimble_vm.Serialize.of_bytes] followed by {!verify_exn}: the verified
    load path. @raise Verify_error on a decodable-but-invalid executable;
    [Nimble_vm.Serialize.Format_error] propagates for undecodable bytes. *)
val of_bytes : string -> Nimble_vm.Exe.t

(** {!of_bytes} over a file's contents.
    @raise Verify_error as {!of_bytes}; I/O errors raise [Sys_error]. *)
val load_file : string -> Nimble_vm.Exe.t

(** Convert verifier violations into the typed VM failure channel
    (an [Internal] failure located at the first diagnostic), for layers
    that report load failures alongside execution failures. *)
val to_failure : Diag.t list -> Nimble_vm.Interp.failure

(** Number of opcodes the verifier's transfer function handles; pinned to
    [Nimble_vm.Isa.num_opcodes] by [test/test_analysis.ml] so adding an
    instruction without teaching the verifier about it fails the suite. *)
val handled_opcodes : int

(** {2 Instruction facts}

    The register/control facts the dataflow runs on, shared with
    {!Compact}'s liveness analysis so the two passes can never disagree
    about what an instruction touches. *)

(** Registers an instruction reads ([InvokePacked] outs count as reads:
    they carry pre-allocated destination tensors). *)
val reads : Nimble_vm.Isa.t -> int list

(** Registers an instruction writes. *)
val writes : Nimble_vm.Isa.t -> int list

(** Absolute successor pcs of the instruction at [pc]. *)
val successors : int -> Nimble_vm.Isa.t -> int list
