(** Symbolic size/offset expressions for memory planning (paper §4.3,
    BladeDISC++-style symbolic arena layout).

    A [t] is an integer expression over symbolic dimensions ([Dim.Sym]
    identifiers): constants, dimension references, sums, products and
    alignment round-ups. The memory planner emits arena slot offsets and
    sizes as these expressions; the VM evaluates them once per request
    against the dims bound by the actual argument shapes, so one plan
    serves every shape in a serve bucket. *)

type t =
  | Const of int  (** a concrete byte count or element count *)
  | Dim of int  (** the value of symbolic dimension [Sym id] *)
  | Add of t * t
  | Mul of t * t
  | Align of t * int  (** round the operand up to a multiple of [n] (n >= 1) *)

let const n = Const n
let dim s = Dim s
let add a b =
  match (a, b) with
  | Const 0, e | e, Const 0 -> e
  | Const x, Const y -> Const (x + y)
  | _ -> Add (a, b)

let mul a b =
  match (a, b) with
  | Const 1, e | e, Const 1 -> e
  | Const 0, _ | _, Const 0 -> Const 0
  | Const x, Const y -> Const (x * y)
  | _ -> Mul (a, b)

let align e n =
  if n <= 1 then e
  else
    match e with
    | Const x -> Const ((x + n - 1) / n * n)
    | Align (_, m) when m mod n = 0 -> e
    | _ -> Align (e, n)

let rec eval (env : int -> int) = function
  | Const n -> n
  | Dim s -> env s
  | Add (a, b) -> eval env a + eval env b
  | Mul (a, b) -> eval env a * eval env b
  | Align (e, n) -> (eval env e + n - 1) / n * n

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Dim x, Dim y -> x = y
  | Add (a1, a2), Add (b1, b2) | Mul (a1, a2), Mul (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | Align (e1, n1), Align (e2, n2) -> n1 = n2 && equal e1 e2
  | _ -> false

let free_dims e =
  let rec go acc = function
    | Const _ -> acc
    | Dim s -> if List.mem s acc then acc else s :: acc
    | Add (a, b) | Mul (a, b) -> go (go acc a) b
    | Align (e, _) -> go acc e
  in
  List.sort compare (go [] e)

(* Structural monotonicity: with only non-negative constants,
   multiplication and alignment, the expression is nondecreasing in every
   dimension (dims themselves are shape extents, hence >= 0). *)
let rec monotone = function
  | Const n -> n >= 0
  | Dim _ -> true
  | Add (a, b) | Mul (a, b) -> monotone a && monotone b
  | Align (e, n) -> n >= 1 && monotone e

(* ------------------------- concrete syntax -------------------------
   A compact prefix s-expression, used by the executable serializer:
   "42" is Const 42, "s3" is Dim 3, "(+ a b)" is Add, "(* a b)" is Mul,
   "(^ 64 e)" is Align (e, 64). *)

let rec to_string = function
  | Const n -> string_of_int n
  | Dim s -> "s" ^ string_of_int s
  | Add (a, b) -> "(+ " ^ to_string a ^ " " ^ to_string b ^ ")"
  | Mul (a, b) -> "(* " ^ to_string a ^ " " ^ to_string b ^ ")"
  | Align (e, n) -> "(^ " ^ string_of_int n ^ " " ^ to_string e ^ ")"

exception Parse_error of string

let of_string s : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d in %S" msg !pos s)) in
  let skip () = while !pos < n && s.[!pos] = ' ' do incr pos done in
  let int_lit () =
    let start = !pos in
    if !pos < n && s.[!pos] = '-' then incr pos;
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
    if !pos = start then fail "expected integer";
    int_of_string (String.sub s start (!pos - start))
  in
  let rec expr () =
    skip ();
    if !pos >= n then fail "unexpected end"
    else if s.[!pos] = '(' then begin
      incr pos;
      skip ();
      if !pos >= n then fail "unexpected end";
      let op = s.[!pos] in
      incr pos;
      let e =
        match op with
        | '+' ->
            let a = expr () in
            let b = expr () in
            Add (a, b)
        | '*' ->
            let a = expr () in
            let b = expr () in
            Mul (a, b)
        | '^' ->
            skip ();
            let align_to = int_lit () in
            let e = expr () in
            Align (e, align_to)
        | c -> fail (Printf.sprintf "unknown operator %c" c)
      in
      skip ();
      if !pos >= n || s.[!pos] <> ')' then fail "expected ')'";
      incr pos;
      e
    end
    else if s.[!pos] = 's' then begin
      incr pos;
      Dim (int_lit ())
    end
    else Const (int_lit ())
  in
  let e = expr () in
  skip ();
  if !pos <> n then fail "trailing input";
  e

let rec pp ppf = function
  | Const n -> Fmt.int ppf n
  | Dim s -> Fmt.pf ppf "s%d" s
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Align (e, n) -> Fmt.pf ppf "align(%a, %d)" pp e n
