(** Runtime shape functions (paper §4.2).

    Each operator registers a function computing its concrete output
    shape(s) at runtime, in one of three modes; the fusion pass consults the
    mode to enforce the paper's fusion policy (an op whose shape function
    needs values cannot take fused intermediate results as inputs). *)

open Nimble_tensor
open Nimble_ir

exception Shape_func_error of string

type mode =
  | Data_indep  (** output shapes depend only on input shapes (dense, ...) *)
  | Data_dep  (** output shapes need input values (arange, unique) *)
  | Upper_bound
      (** exact output shape is as expensive as the op itself (nms): the
          function returns a bound, the kernel reports the true extent *)

val mode_to_string : mode -> string

type input = { shape : Shape.t; data : Tensor.t option }

type fn = attrs:Attrs.t -> input list -> Shape.t list

type def = { op_name : string; mode : mode; fn : fn }

(** Register a shape function for an operator already in {!Op}. *)
val register : name:string -> mode:mode -> fn -> unit

val find : string -> def option
val get : string -> def
val mode_of : string -> mode

(** Run an operator's shape function.
    @raise Shape_func_error when a data-dependent function is invoked
    without values, a residual shape check fails, or the registered
    function itself throws (the exception is rewrapped with the operator
    name so shape failures surface through one typed channel). *)
val run : string -> attrs:Attrs.t -> input list -> Shape.t list

val shape_only : Shape.t -> input
val with_data : Tensor.t -> input

(** The fusion-policy predicate: may this op consume fused intermediates? *)
val fusible_as_consumer : string -> bool
