(** Runtime shape functions (paper §4.2).

    Each operator registers a function computing its concrete output
    shape(s) at runtime, in one of three modes; the fusion pass consults the
    mode to enforce the paper's fusion policy (an op whose shape function
    needs values cannot take fused intermediate results as inputs). *)

open Nimble_tensor
open Nimble_ir

exception Shape_func_error of string

type mode =
  | Data_indep  (** output shapes depend only on input shapes (dense, ...) *)
  | Data_dep  (** output shapes need input values (arange, unique) *)
  | Upper_bound
      (** exact output shape is as expensive as the op itself (nms): the
          function returns a bound, the kernel reports the true extent *)

val mode_to_string : mode -> string

type input = { shape : Shape.t; data : Tensor.t option }

type fn = attrs:Attrs.t -> input list -> Shape.t list

type def = { op_name : string; mode : mode; fn : fn }

(** Register a shape function for an operator already in {!Op}. *)
val register : name:string -> mode:mode -> fn -> unit

val find : string -> def option
val get : string -> def
val mode_of : string -> mode

(** Run an operator's shape function.
    @raise Shape_func_error when a data-dependent function is invoked
    without values, a residual shape check fails, or the registered
    function itself throws (the exception is rewrapped with the operator
    name so shape failures surface through one typed channel). *)
val run : string -> attrs:Attrs.t -> input list -> Shape.t list

val shape_only : Shape.t -> input
val with_data : Tensor.t -> input

(** The fusion-policy predicate: may this op consume fused intermediates?
    Registry-only (per-op mode); see {!fusible_site} for the site-aware
    variant that also honours dominance proofs. *)
val fusible_as_consumer : string -> bool

(** Attribute key ([="proven"]) stamped on a call site by the Classify
    shape-value dominance pass; its payload names the proof
    ([static] / [sym] / [bound]). *)
val proven_attr : string

(** Per-call-site classification: the registry mode refined by any
    dominance proof stamped on the site's attributes. *)
type site =
  | Site_static  (** registered [Data_indep]: static by construction *)
  | Site_proven of string
      (** [Data_dep]/[Upper_bound] whose value inputs Classify proved known
          at compile/binding time; payload names the proof *)
  | Site_dynamic of mode  (** genuinely dynamic [Data_dep]/[Upper_bound] *)
  | Site_unknown  (** no shape function registered *)

val site_to_string : site -> string

(** Classify one operator call site — the single source of truth consulted
    by fusion, memory planning and the lints. *)
val classify : name:string -> attrs:Attrs.t -> site

(** Site-aware fusion predicate: true iff the site's output shape never
    needs runtime values ([Site_static] or [Site_proven]). *)
val fusible_site : name:string -> attrs:Attrs.t -> bool
