(** Runtime shape functions (paper §4.2).

    Each operator registers a function that computes its concrete output
    shape(s) at runtime, in one of three modes:

    - [Data_indep]: output shapes depend only on input shapes (e.g. dense);
    - [Data_dep]: output shapes need input *values* (e.g. arange, unique);
    - [Upper_bound]: computing the exact output shape is as expensive as the
      op itself (e.g. nms), so the function returns an upper bound and the
      kernel reports the true shape alongside its output.

    The fusion pass consults [mode] to enforce the paper's fusion policy:
    an op with a data-dependent or upper-bound shape function must not fuse
    with producers, because its shape function would need access to
    intermediate values of the fused group. *)

open Nimble_tensor
open Nimble_ir

exception Shape_func_error of string

let err fmt = Fmt.kstr (fun s -> raise (Shape_func_error s)) fmt

type mode = Data_indep | Data_dep | Upper_bound

let mode_to_string = function
  | Data_indep -> "data_independent"
  | Data_dep -> "data_dependent"
  | Upper_bound -> "upper_bound"

type input = { shape : Shape.t; data : Tensor.t option }

type fn = attrs:Attrs.t -> input list -> Shape.t list

type def = { op_name : string; mode : mode; fn : fn }

let registry : (string, def) Hashtbl.t = Hashtbl.create 64

let register ~name ~mode fn =
  if not (Op.exists name) then
    Fmt.invalid_arg "Shape_func.register: unknown op %s" name;
  Hashtbl.replace registry name { op_name = name; mode; fn }

let find name = Hashtbl.find_opt registry name

let get name =
  match find name with
  | Some d -> d
  | None -> err "no shape function registered for operator %s" name

let mode_of name = (get name).mode

(** Run an operator's shape function. Data-independent functions are given
    shapes only; passing [data] is allowed but ignored. Anything the
    registered function throws beyond {!Shape_func_error} — an
    out-of-bounds dimension index, a missing attribute — is rewrapped as
    a {!Shape_func_error} naming the operator, so shape-function failures
    always surface through one typed channel. *)
let run name ~attrs inputs =
  let def = get name in
  (match def.mode with
  | Data_dep | Upper_bound ->
      List.iteri
        (fun i inp ->
          if inp.data = None && def.mode = Data_dep then
            err "%s: data-dependent shape function needs value of input %d" name i)
        inputs
  | Data_indep -> ());
  try def.fn ~attrs inputs with
  | Shape_func_error _ as e -> raise e
  | (Stack_overflow | Out_of_memory) as e -> raise e
  | e -> err "%s: shape function raised %s" name (Printexc.to_string e)

let shape_only s = { shape = s; data = None }
let with_data t = { shape = Tensor.shape t; data = Some t }

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let in_shape op n inputs =
  match List.nth_opt inputs n with
  | Some i -> i.shape
  | None -> err "%s: missing input %d" op n

let in_data op n inputs =
  match List.nth_opt inputs n with
  | Some { data = Some t; _ } -> t
  | Some { data = None; _ } -> err "%s: input %d value unavailable" op n
  | None -> err "%s: missing input %d" op n

(* ------------------------------------------------------------------ *)
(* Registrations                                                       *)
(* ------------------------------------------------------------------ *)

let identity name =
  register ~name ~mode:Data_indep (fun ~attrs inputs ->
      ignore attrs;
      [ in_shape name 0 inputs ])

let () =
  List.iter identity
    [
      "negative"; "abs"; "exp"; "log"; "sqrt"; "tanh"; "sigmoid"; "relu";
      "gelu"; "erf"; "cast"; "softmax"; "log_softmax"; "logical_not";
      "device_copy"; "layer_norm"; "batch_norm"; "bias_add";
    ]

let () =
  List.iter
    (fun name ->
      register ~name ~mode:Data_indep (fun ~attrs inputs ->
          ignore attrs;
          let a = in_shape name 0 inputs and b = in_shape name 1 inputs in
          match Shape.broadcast a b with
          | Some s -> [ s ]
          | None -> err "%s: cannot broadcast %a with %a" name Shape.pp a Shape.pp b))
    [
      "add"; "subtract"; "multiply"; "divide"; "maximum"; "minimum"; "power";
      "equal"; "less"; "greater"; "less_equal"; "greater_equal"; "not_equal";
      "logical_and"; "logical_or";
    ]

let () =
  register ~name:"where" ~mode:Data_indep (fun ~attrs inputs ->
      ignore attrs;
      let c = in_shape "where" 0 inputs in
      let a = in_shape "where" 1 inputs in
      let b = in_shape "where" 2 inputs in
      match Shape.broadcast c a with
      | None -> err "where: cannot broadcast"
      | Some s1 -> (
          match Shape.broadcast s1 b with
          | Some s -> [ s ]
          | None -> err "where: cannot broadcast"))

let () =
  register ~name:"dense" ~mode:Data_indep (fun ~attrs inputs ->
      ignore attrs;
      let d = in_shape "dense" 0 inputs and w = in_shape "dense" 1 inputs in
      if Shape.rank d <> 2 || Shape.rank w <> 2 then err "dense: rank mismatch";
      if d.(1) <> w.(1) then
        err "dense: reduction mismatch %d vs %d (residual check failed)" d.(1) w.(1);
      [ [| d.(0); w.(0) |] ]);
  register ~name:"matmul" ~mode:Data_indep (fun ~attrs inputs ->
      ignore attrs;
      let a = in_shape "matmul" 0 inputs and b = in_shape "matmul" 1 inputs in
      if a.(1) <> b.(0) then err "matmul: inner mismatch %d vs %d" a.(1) b.(0);
      [ [| a.(0); b.(1) |] ]);
  register ~name:"batch_matmul" ~mode:Data_indep (fun ~attrs inputs ->
      ignore attrs;
      let a = in_shape "batch_matmul" 0 inputs and b = in_shape "batch_matmul" 1 inputs in
      if a.(0) <> b.(0) then err "batch_matmul: batch mismatch";
      if a.(2) <> b.(1) then err "batch_matmul: inner mismatch";
      [ [| a.(0); a.(1); b.(2) |] ])

let () =
  register ~name:"conv2d" ~mode:Data_indep (fun ~attrs inputs ->
      let d = in_shape "conv2d" 0 inputs and w = in_shape "conv2d" 1 inputs in
      let stride = Attrs.get_int ~default:1 attrs "stride" in
      let padding = Attrs.get_int ~default:0 attrs "padding" in
      if d.(1) <> w.(1) then err "conv2d: channel mismatch";
      let oh = ((d.(2) + (2 * padding) - w.(2)) / stride) + 1 in
      let ow = ((d.(3) + (2 * padding) - w.(3)) / stride) + 1 in
      [ [| d.(0); w.(0); oh; ow |] ]);
  List.iter
    (fun name ->
      register ~name ~mode:Data_indep (fun ~attrs inputs ->
          let d = in_shape name 0 inputs in
          let window = Attrs.get_int attrs "window" in
          let stride = Attrs.get_int ~default:2 attrs "stride" in
          [ [| d.(0); d.(1); ((d.(2) - window) / stride) + 1; ((d.(3) - window) / stride) + 1 |] ]))
    [ "max_pool2d"; "avg_pool2d" ];
  register ~name:"global_avg_pool2d" ~mode:Data_indep (fun ~attrs inputs ->
      ignore attrs;
      let d = in_shape "global_avg_pool2d" 0 inputs in
      [ [| d.(0); d.(1) |] ])

let () =
  register ~name:"reshape" ~mode:Data_indep (fun ~attrs inputs ->
      let d = in_shape "reshape" 0 inputs in
      let target = Array.of_list (Attrs.get_ints attrs "newshape") in
      [ Shape.resolve_reshape ~from:d target ]);
  register ~name:"transpose" ~mode:Data_indep (fun ~attrs inputs ->
      let d = in_shape "transpose" 0 inputs in
      let r = Shape.rank d in
      let axes =
        match Attrs.find_ints attrs "axes" with
        | Some a -> Array.of_list a
        | None -> Array.init r (fun i -> r - 1 - i)
      in
      [ Array.map (fun ax -> d.(Shape.normalize_axis ~rank:r ax)) axes ]);
  register ~name:"expand_dims" ~mode:Data_indep (fun ~attrs inputs ->
      let d = in_shape "expand_dims" 0 inputs in
      [ Shape.insert_axis d (Attrs.get_int attrs "axis") ]);
  register ~name:"squeeze" ~mode:Data_indep (fun ~attrs inputs ->
      let d = in_shape "squeeze" 0 inputs in
      let axis = Shape.normalize_axis ~rank:(Shape.rank d) (Attrs.get_int attrs "axis") in
      if d.(axis) <> 1 then err "squeeze: axis %d has extent %d" axis d.(axis);
      [ Shape.remove_axis d axis ]);
  register ~name:"concat" ~mode:Data_indep (fun ~attrs inputs ->
      match inputs with
      | [] -> err "concat: no inputs"
      | first :: rest ->
          let axis = Shape.normalize_axis ~rank:(Shape.rank first.shape) (Attrs.get_int attrs "axis") in
          let total =
            List.fold_left (fun acc i -> acc + i.shape.(axis)) first.shape.(axis) rest
          in
          [ Array.mapi (fun i d -> if i = axis then total else d) first.shape ]);
  register ~name:"split" ~mode:Data_indep (fun ~attrs inputs ->
      let d = in_shape "split" 0 inputs in
      let axis = Shape.normalize_axis ~rank:(Shape.rank d) (Attrs.get_int attrs "axis") in
      let sections = Attrs.get_int attrs "sections" in
      if d.(axis) mod sections <> 0 then err "split: not divisible";
      let piece = Array.mapi (fun i v -> if i = axis then v / sections else v) d in
      List.init sections (fun _ -> Array.copy piece));
  register ~name:"strided_slice" ~mode:Data_indep (fun ~attrs inputs ->
      let d = in_shape "strided_slice" 0 inputs in
      let begins = Array.of_list (Attrs.get_ints attrs "begins") in
      let ends = Array.of_list (Attrs.get_ints attrs "ends") in
      [ Array.init (Shape.rank d) (fun i ->
            let norm v = if v < 0 then v + d.(i) else v in
            let lo = Stdlib.max 0 (Stdlib.min (norm begins.(i)) d.(i)) in
            let hi = Stdlib.max lo (Stdlib.min (norm ends.(i)) d.(i)) in
            hi - lo) ]);
  register ~name:"take" ~mode:Data_indep (fun ~attrs inputs ->
      let d = in_shape "take" 0 inputs and i = in_shape "take" 1 inputs in
      let axis = Shape.normalize_axis ~rank:(Shape.rank d) (Attrs.get_int ~default:0 attrs "axis") in
      [ Array.concat [ Array.sub d 0 axis; i; Array.sub d (axis + 1) (Shape.rank d - axis - 1) ] ]);
  register ~name:"tile" ~mode:Data_indep (fun ~attrs inputs ->
      let d = in_shape "tile" 0 inputs in
      let reps = Array.of_list (Attrs.get_ints attrs "reps") in
      [ Array.mapi (fun i v -> v * reps.(i)) d ]);
  register ~name:"embedding" ~mode:Data_indep (fun ~attrs inputs ->
      ignore attrs;
      let t = in_shape "embedding" 0 inputs and ids = in_shape "embedding" 1 inputs in
      [ Array.append ids [| t.(1) |] ])

let () =
  List.iter
    (fun name ->
      register ~name ~mode:Data_indep (fun ~attrs inputs ->
          let d = in_shape name 0 inputs in
          match Attrs.find_int attrs "axis" with
          | None -> [ [||] ]
          | Some axis ->
              let axis = Shape.normalize_axis ~rank:(Shape.rank d) axis in
              if Attrs.get_bool attrs "keepdims" then
                [ Array.mapi (fun i v -> if i = axis then 1 else v) d ]
              else [ Shape.remove_axis d axis ]))
    [ "sum"; "max"; "min"; "mean" ];
  register ~name:"argmax" ~mode:Data_indep (fun ~attrs inputs ->
      let d = in_shape "argmax" 0 inputs in
      let axis = Shape.normalize_axis ~rank:(Shape.rank d) (Attrs.get_int attrs "axis") in
      [ Shape.remove_axis d axis ])

(* Data-dependent shape functions: the paper's arange/unique examples. *)
let () =
  register ~name:"arange" ~mode:Data_dep (fun ~attrs inputs ->
      ignore attrs;
      let start = Tensor.item (in_data "arange" 0 inputs) in
      let stop = Tensor.item (in_data "arange" 1 inputs) in
      let step = Tensor.item (in_data "arange" 2 inputs) in
      if step = 0.0 then err "arange: zero step";
      [ [| Stdlib.max 0 (int_of_float (Float.ceil ((stop -. start) /. step))) |] ]);
  register ~name:"unique" ~mode:Data_dep (fun ~attrs inputs ->
      ignore attrs;
      let t = in_data "unique" 0 inputs in
      let seen = Hashtbl.create 16 in
      let count = ref 0 in
      for i = 0 to Tensor.numel t - 1 do
        let v = Tensor.get_float t i in
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          incr count
        end
      done;
      [ [| !count |] ])

(* Upper-bound shape function: nms keeps at most all boxes (paper §4.2). *)
let () =
  register ~name:"nms" ~mode:Upper_bound (fun ~attrs inputs ->
      ignore attrs;
      let d = in_shape "nms" 0 inputs in
      [ [| d.(0); 5 |] ]);
  register ~name:"shape_of" ~mode:Data_indep (fun ~attrs inputs ->
      ignore attrs;
      let d = in_shape "shape_of" 0 inputs in
      [ [| Shape.rank d |] ]);
  register ~name:"reshape_tensor" ~mode:Data_dep (fun ~attrs inputs ->
      ignore attrs;
      let shape_val = in_data "reshape_tensor" 1 inputs in
      let from = in_shape "reshape_tensor" 0 inputs in
      [ Shape.resolve_reshape ~from (Tensor.to_shape shape_val) ])

(** The fusion policy predicate (paper §4.2): ops whose shape function needs
    values cannot take fused intermediate results as inputs. *)
let fusible_as_consumer name =
  match find name with
  | Some { mode = Data_indep; _ } -> true
  | Some { mode = Data_dep | Upper_bound; _ } -> false
  | None -> false

(* ------------------------------------------------------------------ *)
(* Per-site classification (shape-value dominance, SoD²-style)         *)
(* ------------------------------------------------------------------ *)

let proven_attr = "proven"

type site =
  | Site_static  (** registered [Data_indep]: static by construction *)
  | Site_proven of string
      (** [Data_dep]/[Upper_bound] whose inputs the Classify pass proved
          known at compile/binding time; payload names the proof *)
  | Site_dynamic of mode  (** genuinely dynamic [Data_dep]/[Upper_bound] *)
  | Site_unknown  (** no shape function registered *)

let site_to_string = function
  | Site_static -> "static"
  | Site_proven p -> "proven:" ^ p
  | Site_dynamic m -> mode_to_string m
  | Site_unknown -> "unknown"

(** Classify one operator call site. This is the single source of truth the
    fusion pass, the memory planner and the lints all consult: the
    registry gives the per-op mode, and a [proven] attribute stamped by the
    Classify dominance pass upgrades a dynamic site. *)
let classify ~name ~attrs =
  match find name with
  | None -> Site_unknown
  | Some { mode = Data_indep; _ } -> Site_static
  | Some { mode = (Data_dep | Upper_bound) as m; _ } -> (
      match Attrs.find_str attrs proven_attr with
      | Some proof -> Site_proven proof
      | None -> Site_dynamic m)

(** Site-aware fusion predicate: a call site may consume fused intermediate
    results iff its output shape never needs runtime values — either the
    op is [Data_indep] or the Classify pass proved this particular site's
    value inputs statically known. *)
let fusible_site ~name ~attrs =
  match classify ~name ~attrs with
  | Site_static | Site_proven _ -> true
  | Site_dynamic _ | Site_unknown -> false
