(** Symbolic size/offset expressions for memory planning (paper §4.3,
    BladeDISC++-style symbolic arena layout).

    A [t] is an integer expression over symbolic dimensions ([Dim.Sym]
    identifiers). The memory planner emits arena slot offsets and sizes as
    these expressions; the VM evaluates them once per request against the
    dims bound by the actual argument shapes, so one plan serves every
    shape in a serve bucket (see [docs/MEMORY.md]). *)

(** The expression language: constants, symbolic-dimension references,
    sums, products, and round-up-to-multiple alignment. *)
type t =
  | Const of int  (** a concrete byte count or element count *)
  | Dim of int  (** the value of symbolic dimension [Sym id] *)
  | Add of t * t
  | Mul of t * t
  | Align of t * int  (** round the operand up to a multiple of [n] (n >= 1) *)

(** [const n] is [Const n]. *)
val const : int -> t

(** [dim s] references symbolic dimension [s]. *)
val dim : int -> t

(** Smart sum: folds constants and drops zero operands. *)
val add : t -> t -> t

(** Smart product: folds constants, absorbs zero, drops unit operands. *)
val mul : t -> t -> t

(** [align e n] rounds [e] up to a multiple of [n]; identity for [n <= 1]
    and folded when the operand is constant or already aligned. *)
val align : t -> int -> t

(** [eval env e] evaluates [e] with [env s] giving the concrete value of
    symbolic dimension [s].
    @raise Not_found (or whatever [env] raises) on an unbound dim. *)
val eval : (int -> int) -> t -> int

(** Structural equality. *)
val equal : t -> t -> bool

(** The distinct symbolic dimensions appearing in the expression, sorted. *)
val free_dims : t -> int list

(** Structural monotonicity check: [true] when the expression is
    nondecreasing in every dimension because it uses only non-negative
    constants, addition, multiplication and valid alignment — the planner's
    upper-bound-soundness precondition (sizes evaluated at a bucket's upper
    bound dominate every admissible shape in the bucket). *)
val monotone : t -> bool

(** Render to the compact prefix syntax used by the executable format:
    ["42"], ["s3"], ["(+ a b)"], a star-headed form for products, and
    ["(^ 64 e)"] for [Align (e, 64)]. *)
val to_string : t -> string

(** Raised by {!of_string} on malformed input, with position context. *)
exception Parse_error of string

(** Parse the {!to_string} syntax back.
    @raise Parse_error on malformed input. *)
val of_string : string -> t

(** Human-readable infix printer for diagnostics. *)
val pp : Format.formatter -> t -> unit
