(** Positional-encoding head — the shape-value dominance demo model.

    [main] takes an embedded sequence [x : (Any, H)] and computes

    {[
      pos = arange(0, x.shape[0], 1)          (* data-dependent shape! *)
      pe  = tanh (expand_dims pos 1 * freq)   (* (n, H) *)
      out = relu (dense (x + pe) w_out)       (* (n, C) *)
    ]}

    The [arange] extent is the runtime sequence length, so its shape
    function is data-dependent and classic §4.2 fusion must stop at it.
    But the extent flows from [shape_of x] through a scalar chain
    (slice/squeeze/cast), so the Classify pass proves the site's output
    shape is exactly [x]'s symbolic leading dim — unlocking one fused
    group across the boundary and a fully symbolic memory plan. *)

open Nimble_tensor
open Nimble_ir

type config = { hidden_size : int; out_size : int }

let default_config = { hidden_size = 32; out_size = 16 }

type weights = {
  config : config;
  freq : Tensor.t;  (** (1, H) per-channel frequencies *)
  w_out : Tensor.t;  (** (C, H) output projection *)
}

let init_weights ?(seed = 11) (config : config) : weights =
  let rng = Rng.create ~seed in
  {
    config;
    freq = Tensor.randn ~scale:0.1 rng [| 1; config.hidden_size |];
    w_out = Tensor.randn ~scale:0.1 rng [| config.out_size; config.hidden_size |];
  }

(** Reference execution over [x : (n, H)]. *)
let reference (w : weights) (x : Tensor.t) : Tensor.t =
  let n = (Tensor.shape x).(0) in
  let pos = Ops_shape.arange ~start:0.0 ~stop:(float_of_int n) ~step:1.0 () in
  let pe = Ops_elem.tanh (Ops_elem.mul (Tensor.reshape pos [| n; 1 |]) w.freq) in
  Ops_elem.relu (Ops_matmul.dense (Ops_elem.add x pe) w.w_out)

(** Build the IR module: main takes an embedded sequence [(Any, H)]. *)
let ir_module (w : weights) : Irmod.t =
  let h = w.config.hidden_size in
  let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static h ]) "x" in
  let sh = Expr.op_call "shape_of" [ Expr.Var x ] in
  let n_vec =
    Expr.op_call
      ~attrs:[ ("begins", Attrs.Ints [ 0 ]); ("ends", Attrs.Ints [ 1 ]) ]
      "strided_slice" [ sh ]
  in
  let n_scalar = Expr.op_call ~attrs:[ ("axis", Attrs.Int 0) ] "squeeze" [ n_vec ] in
  let n_f32 =
    Expr.op_call ~attrs:[ ("dtype", Attrs.Str "float32") ] "cast" [ n_scalar ]
  in
  let pos =
    Expr.op_call "arange" [ Expr.const_scalar 0.0; n_f32; Expr.const_scalar 1.0 ]
  in
  let pos_col = Expr.op_call ~attrs:[ ("axis", Attrs.Int 1) ] "expand_dims" [ pos ] in
  let pe = Expr.op_call "tanh" [ Expr.op_call "multiply" [ pos_col; Expr.Const w.freq ] ] in
  let xa = Expr.op_call "add" [ Expr.Var x; pe ] in
  let out = Expr.op_call "relu" [ Expr.op_call "dense" [ xa; Expr.Const w.w_out ] ] in
  Irmod.of_main (Expr.fn_def [ x ] out)

(** Random embedded input of a given sequence length. *)
let random_input ?(seed = 23) (w : weights) ~len : Tensor.t =
  let rng = Rng.create ~seed:(seed + len) in
  Tensor.randn ~scale:0.5 rng [| max 1 len; w.config.hidden_size |]
