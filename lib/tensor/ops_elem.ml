(** Elementwise operators with NumPy-style broadcasting.

    Binary ops take a fast path when both operands are same-shape floats
    (the overwhelmingly common case in the models we run) and fall back to a
    generic broadcasting loop otherwise. The fast paths run over the
    {!Nimble_parallel.Parallel} domain pool, chunked so each element is
    written by exactly one domain (bitwise-identical to sequential);
    small tensors stay under the grain and never synchronize. *)

module Parallel = Nimble_parallel.Parallel

(* Elementwise maps cost ~1 scalar op per index, so the grain is simply
   the minimum chunk work. *)
let elem_grain = Parallel.default_min_work

let same_shape_floats a b =
  match (a.Tensor.buf, b.Tensor.buf) with
  | Tensor.Floats ba, Tensor.Floats bb
    when Shape.equal (Tensor.shape a) (Tensor.shape b) ->
      Some (ba, bb)
  | _ -> None

(** Apply [f] elementwise over the broadcast of [a] and [b]. *)
let binop ?out_dtype name f a b =
  let out_shape =
    match Shape.broadcast (Tensor.shape a) (Tensor.shape b) with
    | Some s -> s
    | None ->
        Tensor.type_err "%s: cannot broadcast %a with %a" name Shape.pp
          (Tensor.shape a) Shape.pp (Tensor.shape b)
  in
  let dt =
    match out_dtype with
    | Some dt -> dt
    | None -> Dtype.promote (Tensor.dtype a) (Tensor.dtype b)
  in
  let out = Tensor.empty ~dtype:dt out_shape in
  (match (same_shape_floats a b, out.Tensor.buf, out_dtype) with
  | Some (ba, bb), Tensor.Floats bo, None ->
      Parallel.parallel_for ~grain:elem_grain (Array.length bo) (fun lo hi ->
          for i = lo to hi - 1 do
            Array.unsafe_set bo i (f (Array.unsafe_get ba i) (Array.unsafe_get bb i))
          done)
  | _ ->
      let n = Shape.numel out_shape in
      for i = 0 to n - 1 do
        let idx = Shape.unravel out_shape i in
        let ia = Shape.broadcast_offset ~src:(Tensor.shape a) ~out:out_shape idx in
        let ib = Shape.broadcast_offset ~src:(Tensor.shape b) ~out:out_shape idx in
        Tensor.set_float out i (f (Tensor.get_float a ia) (Tensor.get_float b ib))
      done);
  out

(** Apply [f] elementwise. *)
let unop ?out_dtype name f a =
  ignore name;
  let dt = match out_dtype with Some dt -> dt | None -> Tensor.dtype a in
  let out = Tensor.empty ~dtype:dt (Tensor.shape a) in
  (match (a.Tensor.buf, out.Tensor.buf) with
  | Tensor.Floats ba, Tensor.Floats bo ->
      Parallel.parallel_for ~grain:elem_grain (Array.length bo) (fun lo hi ->
          for i = lo to hi - 1 do
            Array.unsafe_set bo i (f (Array.unsafe_get ba i))
          done)
  | _ ->
      for i = 0 to Tensor.numel a - 1 do
        Tensor.set_float out i (f (Tensor.get_float a i))
      done);
  out

let add a b = binop "add" ( +. ) a b
let sub a b = binop "subtract" ( -. ) a b
let mul a b = binop "multiply" ( *. ) a b

let div a b =
  binop "divide" (fun x y -> if y = 0.0 then Float.nan else x /. y) a b

let maximum a b = binop "maximum" Float.max a b
let minimum a b = binop "minimum" Float.min a b
let pow a b = binop "power" Float.pow a b

let neg a = unop "negative" Float.neg a
let abs a = unop "abs" Float.abs a
let exp a = unop "exp" Stdlib.exp a
let log a = unop "log" Stdlib.log a
let sqrt a = unop "sqrt" Stdlib.sqrt a
let tanh a = unop "tanh" Stdlib.tanh a
let sigmoid a = unop "sigmoid" (fun x -> 1.0 /. (1.0 +. Stdlib.exp (-.x))) a
let relu a = unop "relu" (fun x -> Float.max 0.0 x) a

(** Gaussian error linear unit (the tanh approximation used by BERT). *)
let gelu a =
  let c = Stdlib.sqrt (2.0 /. Float.pi) in
  unop "gelu"
    (fun x -> 0.5 *. x *. (1.0 +. Stdlib.tanh (c *. (x +. (0.044715 *. x *. x *. x)))))
    a

let erf_approx x =
  (* Abramowitz & Stegun 7.1.26; enough precision for tests and models. *)
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let poly =
    (((((1.061405429 *. t) -. 1.453152027) *. t) +. 1.421413741) *. t
    -. 0.284496736)
    *. t
    +. 0.254829592
  in
  sign *. (1.0 -. (poly *. t *. Stdlib.exp (-.x *. x)))

let erf a = unop "erf" erf_approx a

let scalar_op name f a (c : float) = unop name (fun x -> f x c) a

let add_scalar a c = scalar_op "add_scalar" ( +. ) a c
let mul_scalar a c = scalar_op "mul_scalar" ( *. ) a c

let bool_binop name f a b =
  binop ~out_dtype:Dtype.U8 name (fun x y -> if f x y then 1.0 else 0.0) a b

let equal a b = bool_binop "equal" (fun x y -> x = y) a b
let not_equal a b = bool_binop "not_equal" (fun x y -> x <> y) a b
let less a b = bool_binop "less" ( < ) a b
let less_equal a b = bool_binop "less_equal" ( <= ) a b
let greater a b = bool_binop "greater" ( > ) a b
let greater_equal a b = bool_binop "greater_equal" ( >= ) a b

let logical_and a b = bool_binop "logical_and" (fun x y -> x <> 0.0 && y <> 0.0) a b
let logical_or a b = bool_binop "logical_or" (fun x y -> x <> 0.0 || y <> 0.0) a b
let logical_not a = unop ~out_dtype:Dtype.U8 "logical_not" (fun x -> if x = 0.0 then 1.0 else 0.0) a

(** [where cond a b] selects elementwise from [a] where [cond] is nonzero. *)
let where cond a b =
  let s1 = Shape.broadcast_exn (Tensor.shape cond) (Tensor.shape a) in
  let out_shape = Shape.broadcast_exn s1 (Tensor.shape b) in
  let dt = Dtype.promote (Tensor.dtype a) (Tensor.dtype b) in
  let out = Tensor.empty ~dtype:dt out_shape in
  for i = 0 to Shape.numel out_shape - 1 do
    let idx = Shape.unravel out_shape i in
    let ic = Shape.broadcast_offset ~src:(Tensor.shape cond) ~out:out_shape idx in
    let ia = Shape.broadcast_offset ~src:(Tensor.shape a) ~out:out_shape idx in
    let ib = Shape.broadcast_offset ~src:(Tensor.shape b) ~out:out_shape idx in
    let v =
      if Tensor.get_float cond ic <> 0.0 then Tensor.get_float a ia
      else Tensor.get_float b ib
    in
    Tensor.set_float out i v
  done;
  out
