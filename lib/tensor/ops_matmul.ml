(** Matrix multiplication and dense (fully-connected) kernels.

    [dense] follows the TVM convention the paper uses: data is [(m, k)],
    weight is [(n, k)] (i.e. already transposed), output is [(m, n)].
    The float path is a cache-blocked loop nest over raw float arrays,
    partitioned over output rows across the {!Nimble_parallel.Parallel}
    domain pool (each row is written by exactly one domain, so results
    are bitwise identical at any pool width); everything else goes
    through a generic (slow, correct) reference loop. *)

module Parallel = Nimble_parallel.Parallel

let block = 32

(* Blocked C[m,n] += A[m,k] * B^T[n,k] on raw float buffers, for output
   rows [row_lo, row_hi) only. Row-range partitioning never changes the
   per-element accumulation order (always ascending p), so any split is
   bitwise identical to the full sequential sweep. *)
let dense_rows ~(row_lo : int) ~(row_hi : int) ~(n : int) ~(k : int)
    (a : float array) (b : float array) (c : float array) =
  Array.fill c (row_lo * n) ((row_hi - row_lo) * n) 0.0;
  let ib = ref row_lo in
  while !ib < row_hi do
    let i_hi = min (!ib + block) row_hi in
    let jb = ref 0 in
    while !jb < n do
      let j_hi = min (!jb + block) n in
      let pb = ref 0 in
      while !pb < k do
        let p_hi = min (!pb + block) k in
        for i = !ib to i_hi - 1 do
          let arow = i * k and crow = i * n in
          for j = !jb to j_hi - 1 do
            let brow = j * k in
            let acc = ref (Array.unsafe_get c (crow + j)) in
            for p = !pb to p_hi - 1 do
              acc :=
                !acc
                +. (Array.unsafe_get a (arow + p) *. Array.unsafe_get b (brow + p))
            done;
            Array.unsafe_set c (crow + j) !acc
          done
        done;
        pb := p_hi
      done;
      jb := j_hi
    done;
    ib := i_hi
  done

let dense_floats ~m ~n ~k a b c =
  let grain =
    Parallel.grain_for ~work_per_item:(n * k) ~min_work:Parallel.default_min_work
  in
  Parallel.parallel_for ~grain m (fun lo hi -> dense_rows ~row_lo:lo ~row_hi:hi ~n ~k a b c)

let dense_generic ~m ~n ~k a b c =
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        acc := !acc +. (Tensor.get_float a ((i * k) + p) *. Tensor.get_float b ((j * k) + p))
      done;
      Tensor.set_float c ((i * n) + j) !acc
    done
  done

(** [dense data weight] with [data : (m, k)], [weight : (n, k)] -> [(m, n)]. *)
let dense data weight =
  let ds = Tensor.shape data and ws = Tensor.shape weight in
  if Shape.rank ds <> 2 || Shape.rank ws <> 2 then
    Tensor.type_err "dense: expected rank-2 inputs, got %a and %a" Shape.pp ds
      Shape.pp ws;
  let m = ds.(0) and k = ds.(1) in
  let n = ws.(0) in
  if ws.(1) <> k then
    Tensor.type_err "dense: reduction dims differ (%d vs %d)" k ws.(1);
  let out = Tensor.empty ~dtype:Dtype.F32 [| m; n |] in
  (match (data.Tensor.buf, weight.Tensor.buf, out.Tensor.buf) with
  | Tensor.Floats a, Tensor.Floats b, Tensor.Floats c -> dense_floats ~m ~n ~k a b c
  | _ -> dense_generic ~m ~n ~k data weight out);
  out

(* Blocked [(k, n)] -> [(n, k)] transpose on raw float buffers: walks
   square tiles so both the read and the write stream stay within a
   cache-sized window. *)
let transpose_floats ~(k : int) ~(n : int) (src : float array) (dst : float array) =
  let pb = ref 0 in
  while !pb < k do
    let p_hi = min (!pb + block) k in
    let jb = ref 0 in
    while !jb < n do
      let j_hi = min (!jb + block) n in
      for p = !pb to p_hi - 1 do
        let srow = p * n in
        for j = !jb to j_hi - 1 do
          Array.unsafe_set dst ((j * k) + p) (Array.unsafe_get src (srow + j))
        done
      done;
      jb := j_hi
    done;
    pb := p_hi
  done

(** Plain [matmul a b] with [a : (m, k)], [b : (k, n)]. *)
let matmul a b =
  let sa = Tensor.shape a and sb = Tensor.shape b in
  if Shape.rank sa <> 2 || Shape.rank sb <> 2 then
    Tensor.type_err "matmul: expected rank-2 inputs, got %a and %a" Shape.pp sa
      Shape.pp sb;
  if sa.(1) <> sb.(0) then
    Tensor.type_err "matmul: inner dims differ (%a vs %a)" Shape.pp sa Shape.pp sb;
  (* Transpose b into weight layout and reuse the dense kernel. *)
  let k = sb.(0) and n = sb.(1) in
  let bt = Tensor.empty ~dtype:(Tensor.dtype b) [| n; k |] in
  (match (b.Tensor.buf, bt.Tensor.buf) with
  | Tensor.Floats src, Tensor.Floats dst -> transpose_floats ~k ~n src dst
  | _ ->
      for p = 0 to k - 1 do
        for j = 0 to n - 1 do
          Tensor.set_float bt ((j * k) + p) (Tensor.get_float b ((p * n) + j))
        done
      done);
  dense a bt

(* One output row [i] of batch [bi]: out[bi,i,:] = a[bi,i,:] * b[bi]. *)
let batch_row ~(m : int) ~(n : int) ~(k : int) (ba : float array) (bb : float array)
    (bo : float array) ~(bi : int) ~(i : int) =
  let offa = bi * m * k and offb = bi * k * n and offo = bi * m * n in
  for j = 0 to n - 1 do
    let acc = ref 0.0 in
    for p = 0 to k - 1 do
      acc :=
        !acc
        +. Array.unsafe_get ba (offa + (i * k) + p)
           *. Array.unsafe_get bb (offb + (p * n) + j)
    done;
    Array.unsafe_set bo (offo + (i * n) + j) !acc
  done

(** Batched matmul: [(b, m, k)] x [(b, k, n)] -> [(b, m, n)]. *)
let batch_matmul a b =
  let sa = Tensor.shape a and sb = Tensor.shape b in
  if Shape.rank sa <> 3 || Shape.rank sb <> 3 then
    Tensor.type_err "batch_matmul: expected rank-3 inputs, got %a and %a"
      Shape.pp sa Shape.pp sb;
  if sa.(0) <> sb.(0) then
    Tensor.type_err "batch_matmul: batch dims differ (%a vs %a)" Shape.pp sa
      Shape.pp sb;
  if sa.(2) <> sb.(1) then
    Tensor.type_err "batch_matmul: inner dims differ (%a vs %a)" Shape.pp sa
      Shape.pp sb;
  let bsz = sa.(0) and m = sa.(1) and k = sa.(2) and n = sb.(2) in
  let out = Tensor.empty ~dtype:Dtype.F32 [| bsz; m; n |] in
  (match (a.Tensor.buf, b.Tensor.buf, out.Tensor.buf) with
  | Tensor.Floats ba, Tensor.Floats bb, Tensor.Floats bo ->
      (* partition over batch x row so uneven batch counts still spread *)
      let grain =
        Parallel.grain_for ~work_per_item:(n * k)
          ~min_work:Parallel.default_min_work
      in
      Parallel.parallel_for ~grain (bsz * m) (fun lo hi ->
          for r = lo to hi - 1 do
            batch_row ~m ~n ~k ba bb bo ~bi:(r / m) ~i:(r mod m)
          done)
  | _ ->
      for bi = 0 to bsz - 1 do
        for i = 0 to m - 1 do
          for j = 0 to n - 1 do
            let acc = ref 0.0 in
            for p = 0 to k - 1 do
              acc :=
                !acc
                +. Tensor.get_float a ((bi * m * k) + (i * k) + p)
                   *. Tensor.get_float b ((bi * k * n) + (p * n) + j)
            done;
            Tensor.set_float out ((bi * m * n) + (i * n) + j) !acc
          done
        done
      done);
  out

(** Dense followed by bias add: [(m,k) x (n,k) + (n,) -> (m,n)]. *)
let dense_bias data weight bias =
  let out = dense data weight in
  let s = Tensor.shape out in
  let m = s.(0) and n = s.(1) in
  if not (Shape.equal (Tensor.shape bias) [| n |]) then
    Tensor.type_err "dense_bias: bias shape %a does not match output cols %d"
      Shape.pp (Tensor.shape bias) n;
  (match (out.Tensor.buf, bias.Tensor.buf) with
  | Tensor.Floats bo, Tensor.Floats bb ->
      let grain = Parallel.grain_for ~work_per_item:n ~min_work:Parallel.default_min_work in
      Parallel.parallel_for ~grain m (fun lo hi ->
          for i = lo to hi - 1 do
            let row = i * n in
            for j = 0 to n - 1 do
              Array.unsafe_set bo (row + j)
                (Array.unsafe_get bo (row + j) +. Array.unsafe_get bb j)
            done
          done)
  | _ ->
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          Tensor.set_float out ((i * n) + j)
            (Tensor.get_float out ((i * n) + j) +. Tensor.get_float bias j)
        done
      done);
  out
