(** Reductions over one axis or the whole tensor.

    Single-axis reductions over float buffers are restructured so every
    output element is accumulated by exactly one domain, in ascending
    axis order — the same per-element order as the sequential sweep —
    then partitioned over the {!Nimble_parallel.Parallel} pool. Results
    are bitwise identical at any pool width. Whole-tensor reductions
    stay sequential: splitting one accumulator would reassociate
    floating-point addition. *)

module Parallel = Nimble_parallel.Parallel

let reduce_all name init f a =
  ignore name;
  let acc = ref init in
  for i = 0 to Tensor.numel a - 1 do
    acc := f !acc (Tensor.get_float a i)
  done;
  Tensor.scalar ~dtype:(Tensor.dtype a) !acc

(** Reduce along [axis]; [keepdims] keeps it as size 1. *)
let reduce_axis name init f ?(keepdims = false) ~axis a =
  ignore name;
  let s = Tensor.shape a in
  let axis = Shape.normalize_axis ~rank:(Shape.rank s) axis in
  let out_shape =
    if keepdims then Array.mapi (fun i d -> if i = axis then 1 else d) s
    else Shape.remove_axis s axis
  in
  let out = Tensor.full ~dtype:(Tensor.dtype a) out_shape init in
  (match (a.Tensor.buf, out.Tensor.buf) with
  | Tensor.Floats src, Tensor.Floats dst ->
      (* Each output element o = (outer, inner) reduces the [len] input
         elements at [outer*len*inner_sz + inner + j*inner_sz], j
         ascending — the same order the linear sweep below visits them
         in, so this path is bitwise-identical to it. *)
      let len = s.(axis) in
      let inner_sz =
        let p = ref 1 in
        for j = axis + 1 to Shape.rank s - 1 do
          p := !p * s.(j)
        done;
        !p
      in
      let grain =
        Parallel.grain_for ~work_per_item:len ~min_work:Parallel.default_min_work
      in
      Parallel.parallel_for ~grain (Array.length dst) (fun lo hi ->
          for o = lo to hi - 1 do
            let outer = o / inner_sz and inner = o mod inner_sz in
            let base = (outer * len * inner_sz) + inner in
            let acc = ref init in
            for j = 0 to len - 1 do
              acc := f !acc (Array.unsafe_get src (base + (j * inner_sz)))
            done;
            Array.unsafe_set dst o !acc
          done)
  | _ ->
      (* Offset in output for each input element: drop the axis coordinate. *)
      let n = Tensor.numel a in
      for i = 0 to n - 1 do
        let idx = Shape.unravel s i in
        let out_idx =
          if keepdims then Array.mapi (fun j v -> if j = axis then 0 else v) idx
          else
            Array.init (Array.length idx - 1) (fun j ->
                if j < axis then idx.(j) else idx.(j + 1))
        in
        let o = Shape.linear_index out_shape out_idx in
        Tensor.set_float out o (f (Tensor.get_float out o) (Tensor.get_float a i))
      done);
  out

let sum ?axis ?(keepdims = false) a =
  match axis with
  | None -> reduce_all "sum" 0.0 ( +. ) a
  | Some axis -> reduce_axis "sum" 0.0 ( +. ) ~keepdims ~axis a

let max ?axis ?(keepdims = false) a =
  match axis with
  | None -> reduce_all "max" Float.neg_infinity Float.max a
  | Some axis -> reduce_axis "max" Float.neg_infinity Float.max ~keepdims ~axis a

let min ?axis ?(keepdims = false) a =
  match axis with
  | None -> reduce_all "min" Float.infinity Float.min a
  | Some axis -> reduce_axis "min" Float.infinity Float.min ~keepdims ~axis a

let mean ?axis ?(keepdims = false) a =
  let s = Tensor.shape a in
  match axis with
  | None ->
      let n = Stdlib.max 1 (Tensor.numel a) in
      Ops_elem.mul_scalar (sum a) (1.0 /. float_of_int n)
  | Some axis ->
      let ax = Shape.normalize_axis ~rank:(Shape.rank s) axis in
      let n = Stdlib.max 1 s.(ax) in
      Ops_elem.mul_scalar (sum ~axis ~keepdims a) (1.0 /. float_of_int n)

(** Index of the max element along [axis]; output dtype i64. *)
let argmax ~axis a =
  let s = Tensor.shape a in
  let axis = Shape.normalize_axis ~rank:(Shape.rank s) axis in
  let out_shape = Shape.remove_axis s axis in
  let out = Tensor.zeros ~dtype:Dtype.I64 out_shape in
  let best = Tensor.full ~dtype:Dtype.F64 out_shape Float.neg_infinity in
  for i = 0 to Tensor.numel a - 1 do
    let idx = Shape.unravel s i in
    let out_idx =
      Array.init (Array.length idx - 1) (fun j -> if j < axis then idx.(j) else idx.(j + 1))
    in
    let o = Shape.linear_index out_shape out_idx in
    let v = Tensor.get_float a i in
    if v > Tensor.get_float best o then begin
      Tensor.set_float best o v;
      Tensor.set_int out o idx.(axis)
    end
  done;
  out
