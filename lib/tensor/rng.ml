(** Deterministic splitmix64 RNG.

    Every stochastic component of the repo (weight init, synthetic workloads,
    property tests that need auxiliary randomness) goes through this module so
    results are reproducible across runs and platforms. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform integer, 0 inclusive to [bound] exclusive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* mask to 62 bits so the value stays non-negative after Int64.to_int *)
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

(** Uniform float, 0 inclusive to 1 exclusive. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(** Uniform float, [lo] inclusive to [hi] exclusive. *)
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

(** Standard normal via Box-Muller. *)
let normal t =
  let u1 = Stdlib.max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

(** Pick an index according to non-negative weights. *)
let categorical t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.categorical: weights sum to zero";
  let x = float t *. total in
  let rec go i acc =
    if i = Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0
